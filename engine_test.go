package mdbgp

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mdbgp/internal/partition"
)

// builtinEngines filters out engines registered by tests (test- prefix):
// the registry is process-global with no unregister, so suites pinning the
// built-in set must stay correct at any test order and -count.
func builtinEngines() []EngineInfo {
	var infos []EngineInfo
	for _, info := range Engines() {
		if !strings.HasPrefix(info.Name, "test-") {
			infos = append(infos, info)
		}
	}
	return infos
}

// engineTestGraph is a 4-community social graph big enough that every
// engine has real work to do but small enough to solve in milliseconds.
func engineTestGraph(t testing.TB) *Graph {
	t.Helper()
	g, _ := GenerateSocialGraph(SocialGraphConfig{
		N: 600, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 99,
	})
	return g
}

func TestEngineRegistry(t *testing.T) {
	want := []string{"blp", "fennel", "gd", "metis", "multilevel", "shp"}
	var got []string
	for _, info := range builtinEngines() {
		got = append(got, info.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("built-in engines = %v, want %v", got, want)
	}
	for _, info := range builtinEngines() {
		e, err := LookupEngine(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Info() != info {
			t.Fatalf("Engines() info %+v != LookupEngine info %+v", info, e.Info())
		}
		if info.Description == "" {
			t.Errorf("engine %q has no description", info.Name)
		}
		if !info.Deterministic {
			t.Errorf("built-in engine %q must be deterministic", info.Name)
		}
	}
	// "" resolves to the default engine.
	e, err := LookupEngine("")
	if err != nil {
		t.Fatal(err)
	}
	if e.Info().Name != DefaultEngine {
		t.Fatalf("empty name resolved to %q, want %q", e.Info().Name, DefaultEngine)
	}
	if _, err := LookupEngine("nope"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine error = %v", err)
	}
	if err := RegisterEngine(gdEngine{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// TestEngineCapabilityMatrix pins the documented capability matrix: a silent
// capability flip would change server-side validation and warm routing.
func TestEngineCapabilityMatrix(t *testing.T) {
	warm := map[string]bool{"gd": true, "multilevel": true}
	weighted := map[string]bool{"gd": true, "multilevel": true, "blp": true, "metis": true}
	for _, info := range builtinEngines() {
		if info.WarmStart != warm[info.Name] {
			t.Errorf("engine %q WarmStart = %t, want %t", info.Name, info.WarmStart, warm[info.Name])
		}
		if info.Weighted != weighted[info.Name] {
			t.Errorf("engine %q Weighted = %t, want %t", info.Name, info.Weighted, weighted[info.Name])
		}
	}
}

// TestEveryEngineSolves runs each registered engine end to end and checks
// the result is a valid k-way partition with sane quality: every engine must
// beat random assignment (locality ≈ 1/k) on a community-structured graph
// and respect its own balance semantics on vertex count.
func TestEveryEngineSolves(t *testing.T) {
	g := engineTestGraph(t)
	const k = 4
	for _, info := range builtinEngines() {
		t.Run(info.Name, func(t *testing.T) {
			res, err := Partition(g, Options{Engine: info.Name, K: k, Seed: 42, Iterations: 40})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Assignment.Validate(); err != nil {
				t.Fatal(err)
			}
			if res.Assignment.K != k {
				t.Fatalf("K = %d, want %d", res.Assignment.K, k)
			}
			if res.EdgeLocality < 0.35 {
				t.Errorf("locality %.3f barely beats random (1/k = 0.25)", res.EdgeLocality)
			}
			// Vertex-count balance: weighted engines promise ε (repair slack
			// included); the 1-D baselines still cannot be wildly lopsided.
			vertexImb := res.Imbalances[0]
			limit := 0.10
			if !info.Weighted {
				limit = 0.50
			}
			if vertexImb > limit {
				t.Errorf("vertex imbalance %.3f exceeds %.2f", vertexImb, limit)
			}
		})
	}
}

// TestEngineDeterminism re-solves with each engine at several Parallelism
// values and asserts bit-identical assignments — the invariant that lets the
// result cache exclude Parallelism from its keys for every engine, not just
// GD.
func TestEngineDeterminism(t *testing.T) {
	g := engineTestGraph(t)
	for _, info := range builtinEngines() {
		t.Run(info.Name, func(t *testing.T) {
			var golden []int32
			for _, p := range []int{1, 2, 8} {
				res, err := Partition(g, Options{Engine: info.Name, K: 3, Seed: 7, Iterations: 30, Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				if golden == nil {
					golden = res.Assignment.Parts
					continue
				}
				for v := range golden {
					if golden[v] != res.Assignment.Parts[v] {
						t.Fatalf("p=%d diverged from p=1 at vertex %d", p, v)
					}
				}
			}
		})
	}
}

// TestMultilevelAliasSolvesIdentically locks the deprecation contract: the
// old Multilevel flag and the explicit engine name are the same solve, byte
// for byte.
func TestMultilevelAliasSolvesIdentically(t *testing.T) {
	g := engineTestGraph(t)
	a, err := Partition(g, Options{Multilevel: true, K: 2, Seed: 42, Iterations: 30, CoarsenTo: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{Engine: "multilevel", K: 2, Seed: 42, Iterations: 30, CoarsenTo: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Assignment.Parts, b.Assignment.Parts) {
		t.Fatal("Multilevel alias and engine=multilevel produced different partitions")
	}
}

func TestUnknownEngineFailsPartition(t *testing.T) {
	g := engineTestGraph(t)
	if _, err := Partition(g, Options{Engine: "simulated-annealing", K: 2}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestWarmStartRejectedByColdOnlyEngines: a warm assignment handed to an
// engine without warm-start capability is an explicit error at the library
// level — silent degradation is the server's policy decision, not the
// library's.
func TestWarmStartRejectedByColdOnlyEngines(t *testing.T) {
	g := engineTestGraph(t)
	warm := make([]int32, g.N())
	for _, info := range builtinEngines() {
		_, err := Partition(g, Options{Engine: info.Name, K: 2, Seed: 1, Iterations: 20, WarmAssignment: warm})
		if info.WarmStart && err != nil {
			t.Errorf("engine %q rejected a warm start it claims to support: %v", info.Name, err)
		}
		if !info.WarmStart {
			if err == nil || !strings.Contains(err.Error(), "does not support warm starts") {
				t.Errorf("engine %q: warm start error = %v, want capability rejection", info.Name, err)
			}
		}
	}
}

// TestEngineEpsilonThreading: Epsilon reaches every engine's own balance
// knob (Fennel's cap slack, SHP's tolerance, METIS's UBFactor), so tight and
// loose requests produce different partitions.
func TestEngineEpsilonThreading(t *testing.T) {
	g := engineTestGraph(t)
	for _, name := range []string{"fennel", "metis"} {
		tight, err := Partition(g, Options{Engine: name, K: 4, Seed: 42, Epsilon: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		loose, err := Partition(g, Options{Engine: name, K: 4, Seed: 42, Epsilon: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(tight.Assignment.Parts, loose.Assignment.Parts) {
			t.Errorf("engine %q ignored Epsilon entirely", name)
		}
	}
}

// registerStripeOnce registers the test engine exactly once per process:
// the registry has no unregister, so re-registering under -count>1 would
// fail spuriously.
var registerStripeOnce sync.Once

// TestRegisterCustomEngine exercises the extension point end to end: a
// third-party engine registers, dispatches through Partition, and
// fingerprints distinctly from every built-in.
func TestRegisterCustomEngine(t *testing.T) {
	var regErr error
	registerStripeOnce.Do(func() { regErr = RegisterEngine(stripeEngine{}) })
	if regErr != nil {
		t.Fatal(regErr)
	}
	g := engineTestGraph(t)
	res, err := Partition(g, Options{Engine: "test-stripe", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	fp := Options{Engine: "test-stripe", K: 3}.Fingerprint()
	for _, name := range []string{"gd", "multilevel", "fennel", "blp", "shp", "metis"} {
		if fp == (Options{Engine: name, K: 3}).Fingerprint() {
			t.Fatalf("custom engine fingerprint collides with %q", name)
		}
	}
}

// stripeEngine is the test-only custom engine: contiguous vertex stripes.
type stripeEngine struct{}

func (stripeEngine) Info() EngineInfo {
	return EngineInfo{Name: "test-stripe", Deterministic: true, Description: "contiguous stripes (test only)"}
}

func (stripeEngine) Solve(g *Graph, opts Options) (*Result, error) {
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	a := partition.NewAssignment(g.N(), opts.K)
	per := (g.N() + opts.K - 1) / opts.K
	if per == 0 {
		per = 1
	}
	for v := 0; v < g.N(); v++ {
		p := v / per
		if p >= opts.K {
			p = opts.K - 1
		}
		a.Parts[v] = int32(p)
	}
	return buildResult(g, ws, a), nil
}
