// Command mdbgp partitions an edge-list graph into k multi-dimensionally
// balanced parts using the projected-gradient-descent partitioner.
//
// Usage:
//
//	mdbgp -in graph.txt -out parts.txt -k 8 -eps 0.05 -dims vertices,edges
//
//	# any registered engine: gd (default), multilevel, fennel, blp, shp, metis
//	mdbgp -in graph.txt -out parts.txt -k 8 -engine shp
//
//	# incremental repartitioning: apply an edge delta ("+u v"/"-u v" lines)
//	# to the input graph and warm-start from a previous assignment
//	mdbgp -in graph.txt -delta delta.txt -base parts.txt -out parts2.txt -k 8
//
// The input is a whitespace-separated "u v" edge list ('#' comments allowed;
// "-" reads stdin) or a binary wire-format file (docs/WIRE_FORMAT.md),
// auto-detected by its magic bytes. Binary inputs may embed balance-dimension
// weights (see cmd/mdbgp-convert -weights); they are used unless -dims is
// passed explicitly. The output has one "vertex part" line per vertex.
// Quality metrics are printed to stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mdbgp"
	"mdbgp/internal/wire"
)

// config collects the CLI's knobs; flags map onto it 1:1.
type config struct {
	in, out    string
	k          int
	eps        float64
	dims       string
	iters      int
	projection string
	seed       int64
	par        int
	engine     string
	multilevel bool
	coarsenTo  int
	refineIter int
	deltaPath  string // edge delta applied to the input graph before solving
	basePath   string // prior assignment to warm-start from
	warmIters  int
	reorder    string
	incGrad    bool
	resync     int
	tracePath  string // span-tree JSON destination ("" = tracing off, "-" = stderr)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "-", "input edge list file, or - for stdin")
	flag.StringVar(&cfg.out, "out", "-", "output assignment file, or - for stdout")
	flag.IntVar(&cfg.k, "k", 2, "number of parts")
	flag.Float64Var(&cfg.eps, "eps", 0.05, "balance tolerance per dimension")
	flag.StringVar(&cfg.dims, "dims", "vertices,edges", "comma-separated balance dimensions: vertices, edges, neighbor-degrees, pagerank")
	flag.IntVar(&cfg.iters, "iters", 100, "gradient iterations per bisection")
	flag.StringVar(&cfg.projection, "projection", "", "projection method: alternating-oneshot (default), alternating, dykstra, exact, nested")
	flag.Int64Var(&cfg.seed, "seed", 42, "random seed")
	flag.IntVar(&cfg.par, "p", 0, "worker parallelism: 0 = all cores, 1 = serial (results are seed-deterministic either way)")
	flag.StringVar(&cfg.engine, "engine", "", "solver engine: "+strings.Join(mdbgp.EngineNames(), ", ")+" (default gd)")
	flag.BoolVar(&cfg.multilevel, "multilevel", false, "deprecated alias for -engine multilevel (the V-cycle GD path)")
	flag.IntVar(&cfg.coarsenTo, "coarsento", 0, "multilevel: stop coarsening at this many vertices (0 = default)")
	flag.IntVar(&cfg.refineIter, "refineiters", 0, "multilevel: finest-level refinement iterations (0 = default)")
	flag.StringVar(&cfg.deltaPath, "delta", "", "edge delta file ('+u v'/'-u v' lines) applied to the input graph before solving")
	flag.StringVar(&cfg.basePath, "base", "", "prior assignment file ('vertex part' lines) to warm-start from")
	flag.IntVar(&cfg.warmIters, "warmiters", 0, "warm-started gradient iterations per bisection (0 = a quarter of -iters)")
	flag.StringVar(&cfg.reorder, "reorder", "", "vertex reordering for the gradient kernels: "+strings.Join(mdbgp.ReorderNames(), ", ")+" (results are byte-identical either way)")
	flag.BoolVar(&cfg.incGrad, "incgrad", false, "incremental gradient updates: scatter only moved-coordinate deltas between exact resyncs")
	flag.IntVar(&cfg.resync, "resync", 0, "incremental-gradient exact-recompute period (0 = default 16; only with -incgrad)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write the solve's span tree (JSON) to this file, or - for stderr; also prints convergence telemetry")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mdbgp: %v\n", err)
		os.Exit(1)
	}
}

// writeTrace prints the solve's convergence telemetry to stderr and writes
// the full span tree as indented JSON to path ("-" = stderr).
func writeTrace(path string, v *mdbgp.SpanView) error {
	gdRuns, maxTo90 := 0, 0.0
	minLoc := -1.0
	v.Walk(func(sp *mdbgp.SpanView) {
		if sp.Name != "gd" {
			return
		}
		final, ok := sp.Float("final_locality")
		if !ok {
			return
		}
		gdRuns++
		if to90, _ := sp.Float("iters_to_90"); to90 > maxTo90 {
			maxTo90 = to90
		}
		if minLoc < 0 || final < minLoc {
			minLoc = final
		}
	})
	if gdRuns > 0 {
		fmt.Fprintf(os.Stderr, "convergence: %d gd runs, worst iters-to-90%%: %d, weakest final locality: %.4f\n",
			gdRuns, int(maxTo90), minLoc)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// open maps "-" to stdin and anything else to the named file; the returned
// closer is a no-op for stdin.
func open(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(cfg config) error {
	if cfg.multilevel && cfg.engine != "" && cfg.engine != "multilevel" {
		return fmt.Errorf("conflicting -engine %s and -multilevel (the latter is an alias for -engine multilevel)", cfg.engine)
	}
	if _, err := mdbgp.LookupEngine(cfg.engine); err != nil {
		return err
	}
	if err := mdbgp.ValidateReorder(cfg.reorder); err != nil {
		return err
	}
	reader, closeIn, err := open(cfg.in)
	if err != nil {
		return err
	}
	defer closeIn()
	start := time.Now()
	// Codec sniffing: the wire format opens with fixed magic bytes, which no
	// text edge list can start with, so Peek decides without consuming input.
	br := bufio.NewReaderSize(reader, 1<<20)
	var g *mdbgp.Graph
	var embedded [][]float64
	if head, _ := br.Peek(len(wire.Magic)); wire.Sniff(head) {
		g, embedded, err = wire.Decode(br)
		if err != nil {
			return fmt.Errorf("reading binary graph: %w", err)
		}
		if err := g.Validate(); err != nil {
			// The wire decoder does not enforce symmetry (docs/WIRE_FORMAT.md);
			// the solver's invariants require it, so check before solving.
			return fmt.Errorf("binary graph invalid: %w", err)
		}
	} else if g, err = mdbgp.ReadEdgeList(br); err != nil {
		return fmt.Errorf("reading graph: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loaded graph: n=%d m=%d (%.1fs)\n", g.N(), g.M(), time.Since(start).Seconds())

	if cfg.deltaPath != "" {
		dr, closeDelta, err := open(cfg.deltaPath)
		if err != nil {
			return err
		}
		d, err := mdbgp.ParseEdgeDelta(dr, 0)
		closeDelta()
		if err != nil {
			return fmt.Errorf("reading delta: %w", err)
		}
		var stats mdbgp.DeltaStats
		baseEdges := g.M()
		g, stats = mdbgp.ApplyEdgeDelta(g, d)
		fmt.Fprintf(os.Stderr, "applied delta: +%d -%d edges, %d new vertices (churn %.2f%%) -> n=%d m=%d\n",
			stats.AddedNew, stats.RemovedExisting, stats.NewVertices,
			100*stats.Churn(baseEdges), g.N(), g.M())
	}

	var warm []int32
	if cfg.basePath != "" {
		br, closeBase, err := open(cfg.basePath)
		if err != nil {
			return err
		}
		warm, err = mdbgp.ReadAssignment(br, 0)
		closeBase()
		if err != nil {
			return fmt.Errorf("reading base assignment: %w", err)
		}
		if len(warm) > g.N() {
			return fmt.Errorf("base assignment has %d entries, graph has %d vertices", len(warm), g.N())
		}
	}

	// Embedded wire weights serve as the balance dimensions unless the user
	// asked for specific dims (-dims on the command line wins), or a delta
	// changed the vertex set the weights were computed over.
	dimsExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dims" {
			dimsExplicit = true
		}
	})
	var ws [][]float64
	var dimNames string
	switch {
	case embedded != nil && cfg.deltaPath != "":
		fmt.Fprintf(os.Stderr, "note: embedded weights ignored (-delta changed the vertex set); using -dims %s\n", cfg.dims)
		embedded = nil
	case embedded != nil && dimsExplicit:
		fmt.Fprintf(os.Stderr, "note: embedded weights ignored (-dims given explicitly)\n")
		embedded = nil
	}
	if embedded != nil {
		ws = embedded
		names := make([]string, len(embedded))
		for j := range names {
			names[j] = fmt.Sprintf("embedded:%d", j)
		}
		dimNames = strings.Join(names, ",")
	} else {
		dimList, names, err := mdbgp.ParseWeightDims(cfg.dims)
		if err != nil {
			return err
		}
		dimNames = names
		if ws, err = mdbgp.StandardWeights(g, dimList...); err != nil {
			return err
		}
	}

	start = time.Now()
	opts := mdbgp.Options{
		Engine: cfg.engine,
		K:      cfg.k, Epsilon: cfg.eps, Weights: ws, Iterations: cfg.iters,
		Projection: cfg.projection, Seed: cfg.seed, Parallelism: cfg.par,
		Multilevel: cfg.multilevel, CoarsenTo: cfg.coarsenTo, RefineIterations: cfg.refineIter,
		WarmAssignment: warm, WarmIterations: cfg.warmIters,
		Reorder: cfg.reorder, IncrementalGradient: cfg.incGrad, ResyncEvery: cfg.resync,
	}
	var trace *mdbgp.Span
	if cfg.tracePath != "" {
		trace = mdbgp.NewTrace("solve")
		opts.Observer = trace
	}
	res, err := mdbgp.Partition(g, opts)
	if err != nil {
		return err
	}
	mode := "cold"
	if warm != nil {
		mode = "warm"
	}
	fmt.Fprintf(os.Stderr, "partitioned into k=%d in %.1fs (engine=%s, %s)\n",
		cfg.k, time.Since(start).Seconds(), opts.Canonical().Engine, mode)
	fmt.Fprintf(os.Stderr, "edge locality: %.2f%%  cut edges: %d\n", 100*res.EdgeLocality, res.CutEdges)
	for j, im := range res.Imbalances {
		fmt.Fprintf(os.Stderr, "imbalance dim %d (%s): %.3f%%\n", j, strings.Split(dimNames, ",")[j], 100*im)
	}
	if trace != nil {
		trace.End()
		if err := writeTrace(cfg.tracePath, trace.Snapshot()); err != nil {
			return err
		}
	}

	var writer *os.File
	if cfg.out == "-" {
		writer = os.Stdout
	} else {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		writer = f
	}
	bw := bufio.NewWriterSize(writer, 1<<20)
	for v, p := range res.Assignment.Parts {
		fmt.Fprintf(bw, "%d %d\n", v, p)
	}
	return bw.Flush()
}
