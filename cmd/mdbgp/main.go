// Command mdbgp partitions an edge-list graph into k multi-dimensionally
// balanced parts using the projected-gradient-descent partitioner.
//
// Usage:
//
//	mdbgp -in graph.txt -out parts.txt -k 8 -eps 0.05 -dims vertices,edges
//
// The input is a whitespace-separated "u v" edge list ('#' comments allowed;
// "-" reads stdin). The output has one "vertex part" line per vertex.
// Quality metrics are printed to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mdbgp"
)

func main() {
	var (
		in         = flag.String("in", "-", "input edge list file, or - for stdin")
		out        = flag.String("out", "-", "output assignment file, or - for stdout")
		k          = flag.Int("k", 2, "number of parts")
		eps        = flag.Float64("eps", 0.05, "balance tolerance per dimension")
		dims       = flag.String("dims", "vertices,edges", "comma-separated balance dimensions: vertices, edges, neighbor-degrees, pagerank")
		iters      = flag.Int("iters", 100, "gradient iterations per bisection")
		projection = flag.String("projection", "", "projection method: alternating-oneshot (default), alternating, dykstra, exact, nested")
		seed       = flag.Int64("seed", 42, "random seed")
		par        = flag.Int("p", 0, "worker parallelism: 0 = all cores, 1 = serial (results are seed-deterministic either way)")
		multilevel = flag.Bool("multilevel", false, "use the V-cycle multilevel GD path (coarsen, solve coarse, warm-started refinement)")
		coarsenTo  = flag.Int("coarsento", 0, "multilevel: stop coarsening at this many vertices (0 = default)")
		refineIter = flag.Int("refineiters", 0, "multilevel: finest-level refinement iterations (0 = default)")
	)
	flag.Parse()
	if err := run(*in, *out, *k, *eps, *dims, *iters, *projection, *seed, *par, *multilevel, *coarsenTo, *refineIter); err != nil {
		fmt.Fprintf(os.Stderr, "mdbgp: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, k int, eps float64, dims string, iters int, projection string, seed int64, par int, multilevel bool, coarsenTo, refineIter int) error {
	var reader *os.File
	if in == "-" {
		reader = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		reader = f
	}
	start := time.Now()
	g, err := mdbgp.ReadEdgeList(reader)
	if err != nil {
		return fmt.Errorf("reading graph: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loaded graph: n=%d m=%d (%.1fs)\n", g.N(), g.M(), time.Since(start).Seconds())

	dimList, dimNames, err := mdbgp.ParseWeightDims(dims)
	if err != nil {
		return err
	}
	ws, err := mdbgp.StandardWeights(g, dimList...)
	if err != nil {
		return err
	}

	start = time.Now()
	res, err := mdbgp.Partition(g, mdbgp.Options{
		K: k, Epsilon: eps, Weights: ws, Iterations: iters,
		Projection: projection, Seed: seed, Parallelism: par,
		Multilevel: multilevel, CoarsenTo: coarsenTo, RefineIterations: refineIter,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "partitioned into k=%d in %.1fs\n", k, time.Since(start).Seconds())
	fmt.Fprintf(os.Stderr, "edge locality: %.2f%%  cut edges: %d\n", 100*res.EdgeLocality, res.CutEdges)
	for j, im := range res.Imbalances {
		fmt.Fprintf(os.Stderr, "imbalance dim %d (%s): %.3f%%\n", j, strings.Split(dimNames, ",")[j], 100*im)
	}

	var writer *os.File
	if out == "-" {
		writer = os.Stdout
	} else {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		writer = f
	}
	bw := bufio.NewWriterSize(writer, 1<<20)
	for v, p := range res.Assignment.Parts {
		fmt.Fprintf(bw, "%d %d\n", v, p)
	}
	return bw.Flush()
}
