package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mdbgp"
)

func writeTestGraph(t *testing.T, dir string) (string, *mdbgp.Graph) {
	t.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 600, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 3,
	})
	path := filepath.Join(dir, "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := mdbgp.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in, g := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	if err := run(in, out, 4, 0.05, "vertices,edges", 60, "", 42, 2, false, 0, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	asgn := &mdbgp.Assignment{Parts: make([]int32, g.N()), K: 4}
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("bad output line %q", sc.Text())
		}
		v, _ := strconv.Atoi(fields[0])
		p, _ := strconv.Atoi(fields[1])
		asgn.Parts[v] = int32(p)
		lines++
	}
	if lines != g.N() {
		t.Fatalf("output has %d lines, want %d", lines, g.N())
	}
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
	ws, _ := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if !mdbgp.IsBalanced(asgn, ws, 0.08) {
		t.Fatalf("CLI output imbalance %.4f", mdbgp.MaxImbalance(asgn, ws))
	}
	if mdbgp.EdgeLocality(g, asgn) < 0.3 {
		t.Fatalf("CLI output locality %.3f", mdbgp.EdgeLocality(g, asgn))
	}
}

func TestRunAllDimensions(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	err := run(in, out, 2, 0.05, "vertices,edges,neighbor-degrees,pagerank", 30, "dykstra", 1, 0, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	if err := run(filepath.Join(dir, "missing.txt"), out, 2, 0.05, "vertices", 10, "", 1, 1, false, 0, 0); err == nil {
		t.Fatal("missing input should error")
	}
	if err := run(in, out, 2, 0.05, "bogus-dim", 10, "", 1, 1, false, 0, 0); err == nil {
		t.Fatal("unknown dimension should error")
	}
	if err := run(in, out, 2, 0.05, "vertices", 10, "bogus-projection", 1, 1, false, 0, 0); err == nil {
		t.Fatal("unknown projection should error")
	}
}

func TestRunMultilevel(t *testing.T) {
	dir := t.TempDir()
	in, g := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	// Small graphs fall back to direct GD inside the V-cycle; force a real
	// hierarchy with a low coarsening threshold.
	if err := run(in, out, 2, 0.05, "vertices,edges", 60, "", 42, 1, true, 150, 8); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
	}
	if lines != g.N() {
		t.Fatalf("output has %d lines, want %d", lines, g.N())
	}
}
