package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mdbgp"
	"mdbgp/internal/gen"
	"mdbgp/internal/wire"
)

func writeTestGraph(t *testing.T, dir string) (string, *mdbgp.Graph) {
	t.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 600, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 3,
	})
	path := filepath.Join(dir, "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := mdbgp.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path, g
}

// readParts loads a "vertex part" output file.
func readParts(t *testing.T, path string, n, k int) *mdbgp.Assignment {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	asgn := &mdbgp.Assignment{Parts: make([]int32, n), K: k}
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("bad output line %q", sc.Text())
		}
		v, _ := strconv.Atoi(fields[0])
		p, _ := strconv.Atoi(fields[1])
		asgn.Parts[v] = int32(p)
		lines++
	}
	if lines != n {
		t.Fatalf("output has %d lines, want %d", lines, n)
	}
	return asgn
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in, g := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	if err := run(config{in: in, out: out, k: 4, eps: 0.05, dims: "vertices,edges", iters: 60, seed: 42, par: 2}); err != nil {
		t.Fatal(err)
	}
	asgn := readParts(t, out, g.N(), 4)
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
	ws, _ := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if !mdbgp.IsBalanced(asgn, ws, 0.08) {
		t.Fatalf("CLI output imbalance %.4f", mdbgp.MaxImbalance(asgn, ws))
	}
	if mdbgp.EdgeLocality(g, asgn) < 0.3 {
		t.Fatalf("CLI output locality %.3f", mdbgp.EdgeLocality(g, asgn))
	}
}

// TestRunTrace: -trace writes the solve's span tree as JSON, populated down
// to the per-bisection gd spans with convergence attributes.
func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(config{in: in, out: out, k: 4, eps: 0.05, dims: "vertices,edges", iters: 40, seed: 42, tracePath: tracePath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var v mdbgp.SpanView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if v.Name != "solve" || v.CountSpans() < 4 {
		t.Fatalf("trace is not a populated span tree: %s", v.Structure())
	}
	gd := 0
	v.Walk(func(sp *mdbgp.SpanView) {
		if sp.Name == "gd" {
			gd++
			if _, ok := sp.Float("final_locality"); !ok {
				t.Fatal("gd span lacks final_locality")
			}
		}
	})
	if gd < 3 {
		t.Fatalf("k=4 trace has %d gd spans, want >= 3", gd)
	}
}

func TestRunAllDimensions(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	err := run(config{in: in, out: out, k: 2, eps: 0.05, dims: "vertices,edges,neighbor-degrees,pagerank", iters: 30, projection: "dykstra", seed: 1})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	base := config{in: in, out: out, k: 2, eps: 0.05, dims: "vertices", iters: 10, seed: 1, par: 1}

	c := base
	c.in = filepath.Join(dir, "missing.txt")
	if err := run(c); err == nil {
		t.Fatal("missing input should error")
	}
	c = base
	c.dims = "bogus-dim"
	if err := run(c); err == nil {
		t.Fatal("unknown dimension should error")
	}
	c = base
	c.projection = "bogus-projection"
	if err := run(c); err == nil {
		t.Fatal("unknown projection should error")
	}
	c = base
	c.deltaPath = filepath.Join(dir, "missing-delta.txt")
	if err := run(c); err == nil {
		t.Fatal("missing delta file should error")
	}
	c = base
	c.basePath = filepath.Join(dir, "missing-base.txt")
	if err := run(c); err == nil {
		t.Fatal("missing base file should error")
	}
	badDelta := filepath.Join(dir, "bad-delta.txt")
	if err := os.WriteFile(badDelta, []byte("1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c = base
	c.deltaPath = badDelta
	if err := run(c); err == nil {
		t.Fatal("unsigned delta line should error")
	}
}

func TestRunMultilevel(t *testing.T) {
	dir := t.TempDir()
	in, g := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	// Small graphs fall back to direct GD inside the V-cycle; force a real
	// hierarchy with a low coarsening threshold.
	if err := run(config{in: in, out: out, k: 2, eps: 0.05, dims: "vertices,edges", iters: 60, seed: 42, par: 1, multilevel: true, coarsenTo: 150, refineIter: 8}); err != nil {
		t.Fatal(err)
	}
	readParts(t, out, g.N(), 2)
}

// TestRunEngines drives every registered engine through the CLI and checks
// each writes a valid full assignment (the `mdbgp -engine shp` acceptance
// path).
func TestRunEngines(t *testing.T) {
	dir := t.TempDir()
	in, g := writeTestGraph(t, dir)
	for _, name := range mdbgp.EngineNames() {
		out := filepath.Join(dir, "parts-"+name+".txt")
		if err := run(config{in: in, out: out, k: 4, eps: 0.05, dims: "vertices,edges", iters: 40, seed: 42, engine: name}); err != nil {
			t.Fatalf("engine %s: %v", name, err)
		}
		asgn := readParts(t, out, g.N(), 4)
		if err := asgn.Validate(); err != nil {
			t.Fatalf("engine %s: %v", name, err)
		}
		if loc := mdbgp.EdgeLocality(g, asgn); loc < 0.3 {
			t.Fatalf("engine %s: locality %.3f", name, loc)
		}
	}
}

func TestRunEngineErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "parts.txt")
	base := config{in: in, out: out, k: 2, eps: 0.05, dims: "vertices", iters: 10, seed: 1}

	c := base
	c.engine = "bogus-engine"
	if err := run(c); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine error = %v", err)
	}
	c = base
	c.engine = "fennel"
	c.multilevel = true
	if err := run(c); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting -engine/-multilevel error = %v", err)
	}
	// A cold-only engine cannot warm-start from -base.
	parts1 := filepath.Join(dir, "parts1.txt")
	if err := run(config{in: in, out: parts1, k: 2, eps: 0.05, dims: "vertices", iters: 10, seed: 1}); err != nil {
		t.Fatal(err)
	}
	c = base
	c.engine = "shp"
	c.basePath = parts1
	if err := run(c); err == nil || !strings.Contains(err.Error(), "warm starts") {
		t.Fatalf("cold-only engine with -base error = %v", err)
	}
}

// TestRunIncremental drives the full offline incremental flow: cold solve,
// write a delta, warm-start the updated graph from the previous assignment.
func TestRunIncremental(t *testing.T) {
	dir := t.TempDir()
	in, g := writeTestGraph(t, dir)
	parts1 := filepath.Join(dir, "parts1.txt")
	cold := config{in: in, out: parts1, k: 4, eps: 0.05, dims: "vertices,edges", iters: 60, seed: 42}
	if err := run(cold); err != nil {
		t.Fatal(err)
	}

	// A small delta: remove one edge per 100, add a fresh one per removal.
	deltaPath := filepath.Join(dir, "delta.txt")
	df, err := os.Create(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mdbgp.WriteEdgeDelta(df, gen.PerturbDelta(g, 100, 7, 13)); err != nil {
		t.Fatal(err)
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}

	parts2 := filepath.Join(dir, "parts2.txt")
	warm := cold
	warm.out = parts2
	warm.deltaPath = deltaPath
	warm.basePath = parts1
	if err := run(warm); err != nil {
		t.Fatal(err)
	}
	prior := readParts(t, parts1, g.N(), 4)
	next := readParts(t, parts2, g.N(), 4)
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	// The warm solve must track the prior assignment, not re-derive an
	// arbitrary relabeled one.
	same := 0
	for v := range prior.Parts {
		if prior.Parts[v] == next.Parts[v] {
			same++
		}
	}
	if frac := float64(same) / float64(g.N()); frac < 0.8 {
		t.Fatalf("warm CLI solve kept only %.1f%% of the base assignment", 100*frac)
	}
}

// TestRunBinaryInput: the CLI auto-detects a wire-format input by its magic
// bytes, and a binary input solves byte-identically to its text twin. When
// the file embeds weight dims they take over from -dims (unless the delta
// path changed the vertex set).
func TestRunBinaryInput(t *testing.T) {
	dir := t.TempDir()
	textIn, g := writeTestGraph(t, dir)

	binIn := filepath.Join(dir, "graph.mdbgp")
	f, err := os.Create(binIn)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Encode(f, g, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()

	textOut := filepath.Join(dir, "parts-text.txt")
	binOut := filepath.Join(dir, "parts-bin.txt")
	base := config{out: textOut, k: 4, eps: 0.05, dims: "vertices,edges", iters: 60, seed: 42, par: 2}
	base.in = textIn
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	base.in, base.out = binIn, binOut
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(textOut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(binOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("binary input solved differently than its text twin")
	}

	// Embedded weights matching the default dims solve identically too — the
	// weights drive the solve, not the codec.
	ws, err := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if err != nil {
		t.Fatal(err)
	}
	wIn := filepath.Join(dir, "weighted.mdbgp")
	wf, err := os.Create(wIn)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Encode(wf, g, ws); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	wOut := filepath.Join(dir, "parts-weighted.txt")
	base.in, base.out = wIn, wOut
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(wOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatal("embedded default-dim weights solved differently than -dims vertices,edges")
	}
}
