// Command benchgate turns the repo's BENCH_*.json performance-trajectory
// files into a CI gate: it fails the build when a benchmark metric falls
// below an absolute floor or regresses past a tolerance against a committed
// baseline. The bench jobs have always published these files; benchgate is
// what makes them binding.
//
// Usage:
//
//	# absolute floors on a fresh candidate file
//	benchgate -candidate BENCH_incremental.json \
//	  -min BenchmarkIncrementalE2E.speedup=2 \
//	  -min BenchmarkIncrementalE2E.locality_delta=0
//
//	# regression tolerance against the committed baseline
//	benchgate -baseline BENCH_multilevel.json -candidate BENCH_multilevel.new.json \
//	  -drop BenchmarkMultilevelVsDirect.locality_multilevel=0.02
//
//	# absolute ceiling (lower-is-better metrics such as latency)
//	benchgate -candidate BENCH_engines.json -max BenchmarkEnginesE2E.p50_ms_fennel=15000
//
// -min requires candidate >= value and -drop requires candidate >=
// baseline − tolerance for the same benchmark/metric in the baseline file
// (both address higher-is-better metrics such as locality or speedup).
// -max requires candidate <= value, for lower-is-better metrics — use it
// only as a generous completion ceiling: tight wall-clock gates jitter
// across CI hosts. Specs are repeatable. A spec whose benchmark or metric is
// absent from the file it addresses fails the gate — a silently skipped
// check is how gates rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// record mirrors cmd/benchjson's output schema. Metrics values are pointers
// so a JSON null stays distinguishable from a real zero: with a plain
// float64 map, {"locality_delta": null} decodes to 0 and silently passes a
// `-min locality_delta=0` gate — the exact silent-skip failure mode gates
// exist to prevent. metricValue is the one place that converts an entry to a
// usable number, failing closed on null/NaN/Inf.
type record struct {
	Name    string              `json:"name"`
	Runs    int64               `json:"runs"`
	Metrics map[string]*float64 `json:"metrics"`
}

// metricValue extracts a gated metric, failing closed: a missing key, a JSON
// null, or a non-finite value each return a distinct reason instead of a
// defaulted number. (A string or other non-numeric JSON type already fails
// the whole file at decode time.)
func metricValue(rec record, metric string) (float64, string) {
	p, ok := rec.Metrics[metric]
	if !ok {
		return 0, "metric missing"
	}
	if p == nil {
		return 0, "metric is null"
	}
	if math.IsNaN(*p) || math.IsInf(*p, 0) {
		return 0, fmt.Sprintf("metric is non-finite (%g)", *p)
	}
	return *p, ""
}

// spec is one "Benchmark.metric=value" gate from the command line.
type spec struct {
	bench, metric string
	value         float64
}

// specList collects repeatable -min/-drop flags.
type specList []spec

func (s *specList) String() string {
	parts := make([]string, len(*s))
	for i, sp := range *s {
		parts[i] = fmt.Sprintf("%s.%s=%g", sp.bench, sp.metric, sp.value)
	}
	return strings.Join(parts, ",")
}

func (s *specList) Set(v string) error {
	name, valStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want Benchmark.metric=value, got %q", v)
	}
	bench, metric, ok := strings.Cut(name, ".")
	if !ok || bench == "" || metric == "" {
		return fmt.Errorf("want Benchmark.metric=value, got %q", v)
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", v, err)
	}
	*s = append(*s, spec{bench: bench, metric: metric, value: val})
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "committed baseline BENCH_*.json (required by -drop)")
	candidatePath := fs.String("candidate", "", "fresh BENCH_*.json to gate")
	var mins, drops, maxes specList
	fs.Var(&mins, "min", "absolute floor: Benchmark.metric=value (candidate must be >= value); repeatable")
	fs.Var(&drops, "drop", "regression tolerance: Benchmark.metric=tol (candidate must be >= baseline-tol); repeatable")
	fs.Var(&maxes, "max", "absolute ceiling: Benchmark.metric=value (candidate must be <= value); repeatable")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candidatePath == "" {
		return fmt.Errorf("-candidate is required")
	}
	if len(mins)+len(drops)+len(maxes) == 0 {
		return fmt.Errorf("no gates given: pass at least one -min, -max or -drop")
	}
	if len(drops) > 0 && *baselinePath == "" {
		return fmt.Errorf("-drop requires -baseline")
	}

	candidate, err := load(*candidatePath)
	if err != nil {
		return err
	}
	var baseline map[string]record
	if *baselinePath != "" {
		if baseline, err = load(*baselinePath); err != nil {
			return err
		}
	}

	var failures []string
	// lookup fails closed: a spec addressing an absent benchmark, an absent
	// metric, or a present-but-non-numeric metric (null, NaN, ±Inf) is a
	// gate failure, never a skip.
	lookup := func(kind string, sp spec) (float64, bool) {
		rec, ok := candidate[sp.bench]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s %s.%s: benchmark missing from %s", kind, sp.bench, sp.metric, *candidatePath))
			return 0, false
		}
		got, reason := metricValue(rec, sp.metric)
		if reason != "" {
			failures = append(failures, fmt.Sprintf("%s %s.%s: %s in %s", kind, sp.bench, sp.metric, reason, *candidatePath))
			return 0, false
		}
		return got, true
	}
	check := func(kind string, sp spec, floor float64) {
		got, ok := lookup(kind, sp)
		if !ok {
			return
		}
		if got < floor {
			failures = append(failures, fmt.Sprintf("%s %s.%s: %g < required %g", kind, sp.bench, sp.metric, got, floor))
			return
		}
		fmt.Fprintf(out, "PASS %s %s.%s: %g >= %g\n", kind, sp.bench, sp.metric, got, floor)
	}
	for _, sp := range mins {
		check("min", sp, sp.value)
	}
	for _, sp := range maxes {
		got, ok := lookup("max", sp)
		if !ok {
			continue
		}
		if got > sp.value {
			failures = append(failures, fmt.Sprintf("max %s.%s: %g > allowed %g", sp.bench, sp.metric, got, sp.value))
			continue
		}
		fmt.Fprintf(out, "PASS max %s.%s: %g <= %g\n", sp.bench, sp.metric, got, sp.value)
	}
	for _, sp := range drops {
		rec, ok := baseline[sp.bench]
		if !ok {
			failures = append(failures, fmt.Sprintf("drop %s.%s: benchmark missing from baseline %s", sp.bench, sp.metric, *baselinePath))
			continue
		}
		base, reason := metricValue(rec, sp.metric)
		if reason != "" {
			failures = append(failures, fmt.Sprintf("drop %s.%s: %s in baseline %s", sp.bench, sp.metric, reason, *baselinePath))
			continue
		}
		check("drop", sp, base-sp.value)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d gate(s) failed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

func load(path string) (map[string]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	byName := make(map[string]record, len(recs))
	for _, r := range recs {
		byName[r.Name] = r
	}
	return byName, nil
}
