package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const candidateJSON = `[
  {"name": "BenchmarkIncrementalE2E", "runs": 1,
   "metrics": {"speedup": 3.5, "locality_delta": 0.01, "ns/op": 1e9}},
  {"name": "BenchmarkOther", "runs": 1, "metrics": {"locality": 0.85}}
]`

const baselineJSON = `[
  {"name": "BenchmarkOther", "runs": 1, "metrics": {"locality": 0.86}}
]`

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	cand := writeJSON(t, dir, "cand.json", candidateJSON)
	base := writeJSON(t, dir, "base.json", baselineJSON)

	err := run([]string{
		"-candidate", cand,
		"-min", "BenchmarkIncrementalE2E.speedup=2",
		"-min", "BenchmarkIncrementalE2E.locality_delta=0",
		"-max", "BenchmarkIncrementalE2E.ns/op=2e9", // 1e9 <= 2e9
		"-baseline", base,
		"-drop", "BenchmarkOther.locality=0.02", // 0.85 >= 0.86-0.02
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGateFailures(t *testing.T) {
	dir := t.TempDir()
	cand := writeJSON(t, dir, "cand.json", candidateJSON)
	base := writeJSON(t, dir, "base.json", baselineJSON)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"below absolute floor",
			[]string{"-candidate", cand, "-min", "BenchmarkIncrementalE2E.speedup=5"},
			"5"},
		{"regression past tolerance",
			[]string{"-candidate", cand, "-baseline", base, "-drop", "BenchmarkOther.locality=0.005"},
			"0.855"},
		{"above absolute ceiling",
			[]string{"-candidate", cand, "-max", "BenchmarkIncrementalE2E.ns/op=1e8"},
			"allowed"},
		{"max on missing metric fails closed",
			[]string{"-candidate", cand, "-max", "BenchmarkOther.ns/op=1"},
			"missing"},
		{"missing benchmark fails closed",
			[]string{"-candidate", cand, "-min", "BenchmarkNope.speedup=1"},
			"missing"},
		{"missing metric fails closed",
			[]string{"-candidate", cand, "-min", "BenchmarkOther.speedup=1"},
			"missing"},
		{"missing baseline benchmark fails closed",
			[]string{"-candidate", cand, "-baseline", base, "-drop", "BenchmarkIncrementalE2E.speedup=1"},
			"baseline"},
	}
	for _, tc := range cases {
		err := run(tc.args, os.Stdout)
		if err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestGateNonNumericFailsClosed: a gated metric that is present but not a
// usable number — JSON null, or a value that only parses as NaN/Inf — must
// fail the gate, not silently satisfy it. Before records held
// map[string]float64, {"locality_delta": null} decoded to 0 and passed
// `-min locality_delta=0`.
func TestGateNonNumericFailsClosed(t *testing.T) {
	dir := t.TempDir()
	nullCand := writeJSON(t, dir, "null.json", `[
	  {"name": "BenchmarkIncrementalE2E", "runs": 1,
	   "metrics": {"speedup": 3.5, "locality_delta": null}}
	]`)
	nullBase := writeJSON(t, dir, "nullbase.json", `[
	  {"name": "BenchmarkOther", "runs": 1, "metrics": {"locality": null}}
	]`)
	okCand := writeJSON(t, dir, "ok.json", candidateJSON)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"null metric under -min",
			[]string{"-candidate", nullCand, "-min", "BenchmarkIncrementalE2E.locality_delta=0"},
			"null"},
		{"null metric under -max",
			[]string{"-candidate", nullCand, "-max", "BenchmarkIncrementalE2E.locality_delta=1"},
			"null"},
		{"null metric in baseline under -drop",
			[]string{"-candidate", okCand, "-baseline", nullBase, "-drop", "BenchmarkOther.locality=0.02"},
			"null"},
	}
	for _, tc := range cases {
		err := run(tc.args, os.Stdout)
		if err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// An ungated null is fine — only metrics a spec addresses are checked.
	if err := run([]string{"-candidate", nullCand, "-min", "BenchmarkIncrementalE2E.speedup=2"}, os.Stdout); err != nil {
		t.Errorf("null in an ungated metric failed the gate: %v", err)
	}

	// NaN and string values are not valid JSON numbers: the whole file is
	// rejected at decode time, which is also fail-closed.
	for _, body := range []string{
		`[{"name": "B", "runs": 1, "metrics": {"m": NaN}}]`,
		`[{"name": "B", "runs": 1, "metrics": {"m": "fast"}}]`,
	} {
		bad := writeJSON(t, dir, "bad.json", body)
		if err := run([]string{"-candidate", bad, "-min", "B.m=1"}, os.Stdout); err == nil {
			t.Errorf("non-numeric metric value %q accepted", body)
		}
	}
}

// TestMetricValue pins the fail-closed extraction rules at the unit level,
// including non-finite values that can't be written in a JSON file but could
// arrive through future producers.
func TestMetricValue(t *testing.T) {
	v := 1.5
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		rec    record
		want   float64
		reason string
	}{
		{"present", record{Metrics: map[string]*float64{"m": &v}}, 1.5, ""},
		{"missing", record{Metrics: map[string]*float64{}}, 0, "missing"},
		{"null", record{Metrics: map[string]*float64{"m": nil}}, 0, "null"},
		{"nan", record{Metrics: map[string]*float64{"m": &nan}}, 0, "non-finite"},
		{"inf", record{Metrics: map[string]*float64{"m": &inf}}, 0, "non-finite"},
	}
	for _, tc := range cases {
		got, reason := metricValue(tc.rec, "m")
		if tc.reason == "" {
			if reason != "" || got != tc.want {
				t.Errorf("%s: got (%g, %q), want (%g, ok)", tc.name, got, reason, tc.want)
			}
			continue
		}
		if !strings.Contains(reason, tc.reason) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, reason, tc.reason)
		}
	}
}

func TestGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	cand := writeJSON(t, dir, "cand.json", candidateJSON)
	cases := [][]string{
		{},                   // no candidate
		{"-candidate", cand}, // no gates
		{"-candidate", cand, "-drop", "BenchmarkOther.locality=0.1"},     // -drop without -baseline
		{"-candidate", cand, "-min", "garbage"},                          // malformed spec
		{"-candidate", cand, "-min", "NoMetric=1"},                       // no metric part
		{"-candidate", cand, "-min", "Bench.metric=notanumber"},          // bad value
		{"-candidate", filepath.Join(dir, "nope.json"), "-min", "A.b=1"}, // unreadable file
	}
	for _, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v: gate passed, want usage error", args)
		}
	}
	bad := writeJSON(t, dir, "bad.json", "{not json")
	if err := run([]string{"-candidate", bad, "-min", "A.b=1"}, os.Stdout); err == nil {
		t.Error("malformed JSON accepted")
	}
}
