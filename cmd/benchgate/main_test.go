package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const candidateJSON = `[
  {"name": "BenchmarkIncrementalE2E", "runs": 1,
   "metrics": {"speedup": 3.5, "locality_delta": 0.01, "ns/op": 1e9}},
  {"name": "BenchmarkOther", "runs": 1, "metrics": {"locality": 0.85}}
]`

const baselineJSON = `[
  {"name": "BenchmarkOther", "runs": 1, "metrics": {"locality": 0.86}}
]`

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	cand := writeJSON(t, dir, "cand.json", candidateJSON)
	base := writeJSON(t, dir, "base.json", baselineJSON)

	err := run([]string{
		"-candidate", cand,
		"-min", "BenchmarkIncrementalE2E.speedup=2",
		"-min", "BenchmarkIncrementalE2E.locality_delta=0",
		"-max", "BenchmarkIncrementalE2E.ns/op=2e9", // 1e9 <= 2e9
		"-baseline", base,
		"-drop", "BenchmarkOther.locality=0.02", // 0.85 >= 0.86-0.02
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGateFailures(t *testing.T) {
	dir := t.TempDir()
	cand := writeJSON(t, dir, "cand.json", candidateJSON)
	base := writeJSON(t, dir, "base.json", baselineJSON)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"below absolute floor",
			[]string{"-candidate", cand, "-min", "BenchmarkIncrementalE2E.speedup=5"},
			"5"},
		{"regression past tolerance",
			[]string{"-candidate", cand, "-baseline", base, "-drop", "BenchmarkOther.locality=0.005"},
			"0.855"},
		{"above absolute ceiling",
			[]string{"-candidate", cand, "-max", "BenchmarkIncrementalE2E.ns/op=1e8"},
			"allowed"},
		{"max on missing metric fails closed",
			[]string{"-candidate", cand, "-max", "BenchmarkOther.ns/op=1"},
			"missing"},
		{"missing benchmark fails closed",
			[]string{"-candidate", cand, "-min", "BenchmarkNope.speedup=1"},
			"missing"},
		{"missing metric fails closed",
			[]string{"-candidate", cand, "-min", "BenchmarkOther.speedup=1"},
			"missing"},
		{"missing baseline benchmark fails closed",
			[]string{"-candidate", cand, "-baseline", base, "-drop", "BenchmarkIncrementalE2E.speedup=1"},
			"baseline"},
	}
	for _, tc := range cases {
		err := run(tc.args, os.Stdout)
		if err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	cand := writeJSON(t, dir, "cand.json", candidateJSON)
	cases := [][]string{
		{},                   // no candidate
		{"-candidate", cand}, // no gates
		{"-candidate", cand, "-drop", "BenchmarkOther.locality=0.1"},     // -drop without -baseline
		{"-candidate", cand, "-min", "garbage"},                          // malformed spec
		{"-candidate", cand, "-min", "NoMetric=1"},                       // no metric part
		{"-candidate", cand, "-min", "Bench.metric=notanumber"},          // bad value
		{"-candidate", filepath.Join(dir, "nope.json"), "-min", "A.b=1"}, // unreadable file
	}
	for _, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v: gate passed, want usage error", args)
		}
	}
	bad := writeJSON(t, dir, "bad.json", "{not json")
	if err := run([]string{"-candidate", bad, "-min", "A.b=1"}, os.Stdout); err == nil {
		t.Error("malformed JSON accepted")
	}
}
