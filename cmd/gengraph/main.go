// Command gengraph emits synthetic graphs in edge-list format for use with
// cmd/mdbgp and external tools.
//
// Usage:
//
//	gengraph -type social -n 100000 -avgdeg 40 -communities 50 > graph.txt
//	gengraph -type rmat -scale 18 -edgefactor 16 > rmat.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"mdbgp"
)

func main() {
	var (
		typ         = flag.String("type", "social", "graph type: social, rmat")
		n           = flag.Int("n", 100000, "vertices (social)")
		avgDeg      = flag.Float64("avgdeg", 30, "average degree (social)")
		communities = flag.Int("communities", 50, "planted communities (social)")
		inFrac      = flag.Float64("infrac", 0.5, "intra-community edge fraction (social)")
		microSize   = flag.Int("microsize", 20, "micro-community size, 0 disables (social)")
		microFrac   = flag.Float64("microfrac", 0.25, "micro-community edge fraction (social)")
		exponent    = flag.Float64("exponent", 2.5, "degree-skew Pareto exponent, 0 disables (social)")
		scale       = flag.Int("scale", 16, "log2 vertices (rmat)")
		edgeFactor  = flag.Int("edgefactor", 16, "edges per vertex (rmat)")
		seed        = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var g *mdbgp.Graph
	switch *typ {
	case "social":
		g, _ = mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
			N: *n, Communities: *communities, AvgDegree: *avgDeg,
			InFraction: *inFrac, MicroSize: *microSize, MicroFraction: *microFrac,
			DegreeExponent: *exponent, Seed: *seed,
		})
	case "rmat":
		g = mdbgp.GenerateRMAT(*scale, *edgeFactor, 0.57, 0.19, 0.19, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown type %q\n", *typ)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: n=%d m=%d\n", *typ, g.N(), g.M())
	if err := mdbgp.WriteEdgeList(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}
