// Command gengraph emits synthetic graphs in edge-list format for use with
// cmd/mdbgp and external tools.
//
// Usage:
//
//	gengraph -model social -n 100000 -avgdeg 40 -communities 50 > graph.txt
//	gengraph -model rmat -scale 18 -edgefactor 16 > rmat.txt
//	gengraph -model ba -n 200000 -edgefactor 8 > powerlaw.txt
//	gengraph -model chunglu -n 100000 -avgdeg 20 -exponent 1.8 > skewed.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"mdbgp"
	"mdbgp/internal/gen"
)

func main() {
	var (
		model       = flag.String("model", "", "graph model: social, rmat, ba (powerlaw), chunglu, er, grid")
		typ         = flag.String("type", "", "deprecated alias for -model")
		n           = flag.Int("n", 100000, "vertices (social, ba, chunglu, er)")
		avgDeg      = flag.Float64("avgdeg", 30, "average degree (social, chunglu, er)")
		communities = flag.Int("communities", 50, "planted communities (social)")
		inFrac      = flag.Float64("infrac", 0.5, "intra-community edge fraction (social)")
		microSize   = flag.Int("microsize", 20, "micro-community size, 0 disables (social)")
		microFrac   = flag.Float64("microfrac", 0.25, "micro-community edge fraction (social)")
		exponent    = flag.Float64("exponent", 2.5, "degree-skew Pareto exponent, 0 disables (social, chunglu)")
		scale       = flag.Int("scale", 16, "log2 vertices (rmat)")
		edgeFactor  = flag.Int("edgefactor", 16, "edges per vertex (rmat, ba)")
		rows        = flag.Int("rows", 512, "grid rows")
		cols        = flag.Int("cols", 512, "grid cols")
		torus       = flag.Bool("torus", false, "wrap the grid into a torus")
		seed        = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	m := *model
	if m == "" {
		m = *typ
	}
	if m == "" {
		m = "social"
	}

	var g *mdbgp.Graph
	switch m {
	case "social":
		g, _ = mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
			N: *n, Communities: *communities, AvgDegree: *avgDeg,
			InFraction: *inFrac, MicroSize: *microSize, MicroFraction: *microFrac,
			DegreeExponent: *exponent, Seed: *seed,
		})
	case "rmat":
		g = mdbgp.GenerateRMAT(*scale, *edgeFactor, 0.57, 0.19, 0.19, *seed)
	case "ba", "powerlaw":
		g = gen.BarabasiAlbert(*n, *edgeFactor, *seed)
	case "chunglu":
		g = gen.ChungLu(*n, *avgDeg, *exponent, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, int(float64(*n)**avgDeg/2), *seed)
	case "grid":
		g = gen.Grid(*rows, *cols, *torus)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown model %q (want social, rmat, ba, chunglu, er, grid)\n", m)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: n=%d m=%d\n", m, g.N(), g.M())
	if err := mdbgp.WriteEdgeList(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}
