// Command gengraph emits synthetic graphs for use with cmd/mdbgp, cmd/mdbgpd
// and external tools, as text edge lists (default) or in the binary wire
// format (docs/WIRE_FORMAT.md).
//
// Usage:
//
//	gengraph -model social -n 100000 -avgdeg 40 -communities 50 > graph.txt
//	gengraph -model rmat -scale 18 -edgefactor 16 > rmat.txt
//	gengraph -model ba -n 200000 -edgefactor 8 > powerlaw.txt
//	gengraph -model chunglu -n 100000 -avgdeg 20 -exponent 1.8 > skewed.txt
//	gengraph -model rmat -scale 22 -format binary > rmat.mdbgp
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mdbgp"
	"mdbgp/internal/gen"
	"mdbgp/internal/wire"
)

// genParams carries every generator knob; each model reads the subset it
// documents.
type genParams struct {
	n           int
	avgDeg      float64
	communities int
	inFrac      float64
	microSize   int
	microFrac   float64
	exponent    float64
	scale       int
	edgeFactor  int
	rows, cols  int
	torus       bool
	seed        int64
	format      string
}

// parseFlags maps the command line onto a model name and its parameters.
func parseFlags(args []string) (string, genParams, error) {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		model       = fs.String("model", "", "graph model: social, rmat, ba (powerlaw), chunglu, er, grid")
		typ         = fs.String("type", "", "deprecated alias for -model")
		n           = fs.Int("n", 100000, "vertices (social, ba, chunglu, er)")
		avgDeg      = fs.Float64("avgdeg", 30, "average degree (social, chunglu, er)")
		communities = fs.Int("communities", 50, "planted communities (social)")
		inFrac      = fs.Float64("infrac", 0.5, "intra-community edge fraction (social)")
		microSize   = fs.Int("microsize", 20, "micro-community size, 0 disables (social)")
		microFrac   = fs.Float64("microfrac", 0.25, "micro-community edge fraction (social)")
		exponent    = fs.Float64("exponent", 2.5, "degree-skew Pareto exponent, 0 disables (social, chunglu)")
		scale       = fs.Int("scale", 16, "log2 vertices (rmat)")
		edgeFactor  = fs.Int("edgefactor", 16, "edges per vertex (rmat, ba)")
		rows        = fs.Int("rows", 512, "grid rows")
		cols        = fs.Int("cols", 512, "grid cols")
		torus       = fs.Bool("torus", false, "wrap the grid into a torus")
		seed        = fs.Int64("seed", 42, "random seed")
		format      = fs.String("format", "text", "output codec: text (edge list) or binary (wire format, docs/WIRE_FORMAT.md)")
	)
	if err := fs.Parse(args); err != nil {
		return "", genParams{}, err
	}
	if fs.NArg() > 0 {
		return "", genParams{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	m := *model
	if m == "" {
		m = *typ
	}
	if m == "" {
		m = "social"
	}
	if *format != "text" && *format != "binary" {
		return "", genParams{}, fmt.Errorf("bad -format %q (want text or binary)", *format)
	}
	return m, genParams{
		n: *n, avgDeg: *avgDeg, communities: *communities, inFrac: *inFrac,
		microSize: *microSize, microFrac: *microFrac, exponent: *exponent,
		scale: *scale, edgeFactor: *edgeFactor, rows: *rows, cols: *cols,
		torus: *torus, seed: *seed, format: *format,
	}, nil
}

// generate materializes the requested model.
func generate(model string, p genParams) (*mdbgp.Graph, error) {
	switch model {
	case "social":
		g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
			N: p.n, Communities: p.communities, AvgDegree: p.avgDeg,
			InFraction: p.inFrac, MicroSize: p.microSize, MicroFraction: p.microFrac,
			DegreeExponent: p.exponent, Seed: p.seed,
		})
		return g, nil
	case "rmat":
		return mdbgp.GenerateRMAT(p.scale, p.edgeFactor, 0.57, 0.19, 0.19, p.seed), nil
	case "ba", "powerlaw":
		return gen.BarabasiAlbert(p.n, p.edgeFactor, p.seed), nil
	case "chunglu":
		return gen.ChungLu(p.n, p.avgDeg, p.exponent, p.seed), nil
	case "er":
		return gen.ErdosRenyi(p.n, int(float64(p.n)*p.avgDeg/2), p.seed), nil
	case "grid":
		return gen.Grid(p.rows, p.cols, p.torus), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want social, rmat, ba, chunglu, er, grid)", model)
	}
}

// run generates the graph and writes it to out in the selected codec, logging
// a one-line summary to logw. Both codecs carry the same canonical CSR, so
// the server hashes either output to the same content address.
func run(model string, p genParams, out, logw io.Writer) error {
	g, err := generate(model, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "generated %s graph: n=%d m=%d format=%s\n", model, g.N(), g.M(), p.format)
	if p.format == "binary" {
		return wire.Encode(out, g, nil)
	}
	return mdbgp.WriteEdgeList(out, g)
}

func main() {
	model, p, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(2)
	}
	if err := run(model, p, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}
