package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"mdbgp"
	"mdbgp/internal/wire"
)

func TestParseFlagsModelSelection(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "social"},                                 // default
		{[]string{"-model", "rmat"}, "rmat"},            //
		{[]string{"-type", "grid"}, "grid"},             // deprecated alias
		{[]string{"-model", "ba", "-type", "er"}, "ba"}, // -model wins
	}
	for _, tc := range cases {
		m, _, err := parseFlags(tc.args)
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if m != tc.want {
			t.Errorf("%v: model %q, want %q", tc.args, m, tc.want)
		}
	}
}

func TestParseFlagsParams(t *testing.T) {
	_, p, err := parseFlags([]string{"-n", "500", "-avgdeg", "6.5", "-seed", "9", "-torus", "-rows", "3", "-cols", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if p.n != 500 || p.avgDeg != 6.5 || p.seed != 9 || !p.torus || p.rows != 3 || p.cols != 4 {
		t.Fatalf("params %+v", p)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp (main exits 0 on it)", err)
	}
	if _, _, err := parseFlags([]string{"positional"}); err == nil {
		t.Fatal("positional argument accepted")
	}
}

func TestGenerateAllModels(t *testing.T) {
	base := genParams{
		n: 200, avgDeg: 6, communities: 4, inFrac: 0.6, microSize: 10,
		microFrac: 0.2, exponent: 2.5, scale: 7, edgeFactor: 4,
		rows: 8, cols: 9, seed: 3,
	}
	for _, model := range []string{"social", "rmat", "ba", "powerlaw", "chunglu", "er", "grid"} {
		g, err := generate(model, base)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph (n=%d m=%d)", model, g.N(), g.M())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", model, err)
		}
	}
	if _, err := generate("mystery", base); err == nil {
		t.Fatal("unknown model accepted")
	}
	// "ba" and "powerlaw" are the same model.
	a, _ := generate("ba", base)
	b, _ := generate("powerlaw", base)
	if a.Hash() != b.Hash() {
		t.Fatal("ba and powerlaw aliases diverged")
	}
}

// TestRunSmoke runs the whole pipeline on a tiny graph: flags → generator →
// edge-list output that mdbgp.ReadEdgeList parses back to the same graph.
func TestRunSmoke(t *testing.T) {
	model, p, err := parseFlags([]string{"-model", "social", "-n", "300", "-avgdeg", "8", "-communities", "3", "-seed", "11"})
	if err != nil {
		t.Fatal(err)
	}
	var out, logs bytes.Buffer
	if err := run(model, p, &out, &logs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), "generated social graph") {
		t.Fatalf("missing summary line, got %q", logs.String())
	}
	g, err := mdbgp.ReadEdgeList(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("output does not round-trip: %v", err)
	}
	want, _ := generate(model, p)
	if g.Hash() != want.Hash() {
		t.Fatal("written edge list does not match the generated graph")
	}
	// Determinism: the same flags produce byte-identical output.
	var out2 bytes.Buffer
	if err := run(model, p, &out2, &logs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("gengraph output is not deterministic for a fixed seed")
	}
}

// TestRunBinaryFormat: -format binary emits the wire format carrying the
// exact same canonical graph (same content hash) as the text output.
func TestRunBinaryFormat(t *testing.T) {
	model, p, err := parseFlags([]string{"-model", "social", "-n", "300", "-avgdeg", "8", "-communities", "3", "-seed", "11", "-format", "binary"})
	if err != nil {
		t.Fatal(err)
	}
	var out, logs bytes.Buffer
	if err := run(model, p, &out, &logs); err != nil {
		t.Fatal(err)
	}
	if !wire.Sniff(out.Bytes()) {
		t.Fatal("binary output does not start with the wire magic")
	}
	g, weights, err := wire.Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("binary output does not decode: %v", err)
	}
	if weights != nil {
		t.Fatal("gengraph must not embed weights")
	}
	want, _ := generate(model, p)
	if g.Hash() != want.Hash() {
		t.Fatal("binary output decodes to a different graph than the generator produced")
	}
	if _, _, err := parseFlags([]string{"-format", "csv"}); err == nil {
		t.Fatal("bad -format accepted")
	}
}
