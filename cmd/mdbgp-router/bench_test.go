package main

import (
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"mdbgp/internal/server"
)

// BenchmarkShardedE2E is the sharded-serving benchmark CI gates on: a
// 2-replica fleet behind the router, mixed traffic to warm the caches, then
// a replica dies (losing its disk), fails over, restarts empty and
// self-warms from its peer. Reported metrics:
//
//	hit_rate_pre    cache hit rate resubmitting every graph before the restart
//	hit_rate_post   the same resubmission pass after restart + warming
//	recovery        hit_rate_post / hit_rate_pre — the gate (>= 0.8)
//	router_p50_ms   router-path latency for cache-hit requests
//	router_p99_ms
//	added_p50_ms    router p50 minus direct-to-replica p50 (the tier's cost)
//
//	go test -run '^$' -bench BenchmarkShardedE2E -benchtime 1x ./cmd/mdbgp-router \
//	  | go run ./cmd/benchjson -out BENCH_sharded.json
func BenchmarkShardedE2E(b *testing.B) {
	const graphs = 8
	bodies := make([][]byte, graphs)
	for i := range bodies {
		bodies[i] = testBody(b, int64(300+i))
	}
	post := func(url string, body []byte) (map[string]any, time.Duration) {
		start := time.Now()
		code, m := postJSON(b, url, body)
		if code != http.StatusOK && code != http.StatusAccepted {
			b.Fatalf("submit: status %d (%v)", code, m)
		}
		if m["status"] != "done" {
			b.Fatalf("request did not finish synchronously: %v", m)
		}
		return m, time.Since(start)
	}
	percentile := func(lat []time.Duration, p int) float64 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*p/100].Seconds() * 1e3
	}

	var hitRatePre, hitRatePost, routerP50, routerP99, addedP50 float64
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		replicaCfg := func(dir string) server.Config {
			return server.Config{Workers: 2, QueueDepth: 64, CacheDir: dir, TrustHashHeader: true}
		}
		h0 := newReplicaHost(replicaCfg(b.TempDir()))
		h1 := newReplicaHost(replicaCfg(b.TempDir()))
		_, rts := startRouter(b, []string{h0.ts.URL, h1.ts.URL})

		// Warm: every graph solved once through the router; remember owners.
		ids := make([]string, graphs)
		for i, body := range bodies {
			m, _ := post(rts.URL+"/v1/partition?seed=1&wait=true", body)
			ids[i] = m["job_id"].(string)
		}

		// Pre-restart hit pass: rate + router-path hit latency.
		var routerLat []time.Duration
		hitsPre := 0.0
		for _, body := range bodies {
			m, d := post(rts.URL+"/v1/partition?seed=1&wait=true", body)
			if m["cache"] == "hit" {
				hitsPre++
			}
			routerLat = append(routerLat, d)
		}
		hitRatePre = hitsPre / graphs
		routerP50 = percentile(routerLat, 50)
		routerP99 = percentile(routerLat, 99)

		// The same hit requests straight to the owning replica price what the
		// routing tier adds (edge hashing + proxy + id rewrite).
		var directLat []time.Duration
		for i, body := range bodies {
			replica := h0
			if strings.HasPrefix(ids[i], "r1-") {
				replica = h1
			}
			m, d := post(replica.ts.URL+"/v1/partition?seed=1&wait=true", body)
			if m["cache"] != "hit" {
				b.Fatalf("direct resubmit missed: %v", m)
			}
			directLat = append(directLat, d)
		}
		addedP50 = routerP50 - percentile(directLat, 50)

		// Disk spills must land before the "disk is lost" restart below, or
		// the benchmark measures the write-behind race instead of recovery.
		var r0Keys, r1Keys float64
		for _, id := range ids {
			if strings.HasPrefix(id, "r0-") {
				r0Keys++
			} else {
				r1Keys++
			}
		}
		waitMetricAtLeast(b, h0.ts.URL, "mdbgpd_cache_disk_entries", r0Keys)
		waitMetricAtLeast(b, h1.ts.URL, "mdbgpd_cache_disk_entries", r1Keys)

		// Replica 0 dies; its traffic fails over (cold solves on r1, which
		// spills them durably — the entries the restarted r0 will pull back).
		if old := h0.swap(nil); old != nil {
			old.Close()
		}
		var failedOver float64
		for i, body := range bodies {
			if !strings.HasPrefix(ids[i], "r0-") {
				continue
			}
			post(rts.URL+"/v1/partition?seed=1&wait=true", body)
			failedOver++
		}
		waitMetricAtLeast(b, h1.ts.URL, "mdbgpd_cache_disk_entries", r1Keys+failedOver)

		// Restart with an empty disk, then self-warm from the peer.
		s0b := server.New(replicaCfg(b.TempDir()))
		h0.swap(s0b)
		if st := s0b.WarmFromPeers(h0.ts.URL, []string{h1.ts.URL}, 4); st.Errors != 0 {
			b.Fatalf("warming errors: %+v", st)
		}

		// Post-restart hit pass over the original traffic.
		hitsPost := 0.0
		for _, body := range bodies {
			m, _ := post(rts.URL+"/v1/partition?seed=1&wait=true", body)
			if m["cache"] == "hit" {
				hitsPost++
			}
		}
		hitRatePost = hitsPost / graphs

		h0.close()
		h1.close()
	}
	b.StopTimer()

	b.ReportMetric(hitRatePre, "hit_rate_pre")
	b.ReportMetric(hitRatePost, "hit_rate_post")
	b.ReportMetric(hitRatePost/hitRatePre, "recovery")
	b.ReportMetric(routerP50, "router_p50_ms")
	b.ReportMetric(routerP99, "router_p99_ms")
	b.ReportMetric(addedP50, "added_p50_ms")
	b.ReportMetric(graphs, "graphs")
}
