package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdbgp"
	"mdbgp/internal/server"
	"mdbgp/internal/wire"
)

// replicaHost is a restartable replica slot: the httptest listener (and so
// the URL the router knows) survives while the server behind it is killed
// and replaced — the e2e analogue of a daemon restarting on a stable address.
type replicaHost struct {
	mu sync.Mutex
	s  *server.Server
	ts *httptest.Server
}

func newReplicaHost(cfg server.Config) *replicaHost {
	h := &replicaHost{s: server.New(cfg)}
	h.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		s := h.s
		h.mu.Unlock()
		if s == nil {
			// Dead replica: connection-level realism is not needed — the
			// router treats 503 and a refused connection identically.
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		s.ServeHTTP(w, r)
	}))
	return h
}

// swap replaces the server behind the URL (nil = dead) and returns the old one.
func (h *replicaHost) swap(s *server.Server) *server.Server {
	h.mu.Lock()
	old := h.s
	h.s = s
	h.mu.Unlock()
	return old
}

func (h *replicaHost) close() {
	if old := h.swap(nil); old != nil {
		old.Close()
	}
	h.ts.Close()
}

func testBody(tb testing.TB, seed int64) []byte {
	tb.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 400, Communities: 4, AvgDegree: 8, InFraction: 0.85, Seed: seed,
	})
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&buf, g); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(tb testing.TB, url string, body []byte) (int, map[string]any) {
	tb.Helper()
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		tb.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, m
}

func getBody(tb testing.TB, url string) (int, []byte) {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, b
}

// scrapeMetric reads one unlabeled metric value from url+"/metrics".
func scrapeMetric(tb testing.TB, baseURL, name string) float64 {
	tb.Helper()
	code, body := getBody(tb, baseURL+"/metrics")
	if code != http.StatusOK {
		tb.Fatalf("metrics scrape: status %d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(line, name+" %g", &v)
			return v
		}
	}
	return 0
}

// waitMetricAtLeast polls a metric until it reaches want (write-behind disk
// spills land asynchronously).
func waitMetricAtLeast(tb testing.TB, baseURL, name string, want float64) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if scrapeMetric(tb, baseURL, name) >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("%s never reached %g on %s", name, want, baseURL)
}

func startRouter(tb testing.TB, replicas []string) (*router, *httptest.Server) {
	tb.Helper()
	rt := newRouter(routerOptions{
		replicas:       replicas,
		vnodes:         0, // ring default — must match WarmFromPeers' ring
		healthInterval: 50 * time.Millisecond,
		maxBodyBytes:   64 << 20,
	}, slog.New(slog.DiscardHandler))
	ts := httptest.NewServer(rt)
	tb.Cleanup(func() { ts.Close(); rt.close() })
	return rt, ts
}

// TestShardedRouterE2E drives the full sharded-serving story through real
// HTTP: ring routing with edge hashing, id-prefixed job polling, delta
// routing, replica failure with ring failover, restart with an empty cache
// dir, peer self-warming, and byte-identical results throughout.
func TestShardedRouterE2E(t *testing.T) {
	const graphs = 10
	replicaCfg := func(dir string) server.Config {
		return server.Config{Workers: 2, QueueDepth: 64, CacheDir: dir, TrustHashHeader: true}
	}
	h0 := newReplicaHost(replicaCfg(t.TempDir()))
	h1 := newReplicaHost(replicaCfg(t.TempDir()))
	t.Cleanup(func() { h0.close(); h1.close() })
	_, rts := startRouter(t, []string{h0.ts.URL, h1.ts.URL})

	// Phase 1: distinct graphs shard across the fleet; record who owns what
	// and the exact result bytes.
	bodies := make([][]byte, graphs)
	ids := make([]string, graphs)
	asn := make([][]byte, graphs)
	perReplica := map[string]int{}
	for i := range bodies {
		bodies[i] = testBody(t, int64(100+i))
		code, m := postJSON(t, rts.URL+"/v1/partition?seed=1&wait=true", bodies[i])
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("graph %d: status %d (%v)", i, code, m)
		}
		if m["status"] != "done" {
			t.Fatalf("graph %d did not finish synchronously: %v", i, m)
		}
		ids[i] = m["job_id"].(string)
		if !strings.HasPrefix(ids[i], "r0-") && !strings.HasPrefix(ids[i], "r1-") {
			t.Fatalf("job id %q lacks a replica prefix", ids[i])
		}
		perReplica[ids[i][:3]]++
		code, body := getBody(t, rts.URL+"/v1/jobs/"+ids[i]+"/assignment")
		if code != http.StatusOK {
			t.Fatalf("assignment %s: status %d", ids[i], code)
		}
		asn[i] = body
	}
	if perReplica["r0-"] == 0 || perReplica["r1-"] == 0 {
		t.Fatalf("routing is degenerate: %v — every graph landed on one replica", perReplica)
	}

	// Phase 2: repeats are cache hits on the same replica (stable routing).
	for i := range bodies {
		code, m := postJSON(t, rts.URL+"/v1/partition?seed=1&wait=true", bodies[i])
		if code != http.StatusOK || m["cache"] != "hit" {
			t.Fatalf("repeat %d: status %d cache %v, want 200 hit", i, code, m["cache"])
		}
		if got := m["job_id"].(string)[:3]; got != ids[i][:3] {
			t.Fatalf("repeat %d routed to %s, originally %s", i, got, ids[i][:3])
		}
	}

	// Phase 3: a delta against a router-prefixed base id routes to the
	// replica retaining the base job.
	code, dm := postJSON(t, rts.URL+"/v1/partition?seed=1&wait=true&base="+ids[0], []byte("+0 399\n"))
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("delta submit: status %d (%v)", code, dm)
	}
	if dm["status"] != "done" {
		t.Fatalf("delta did not finish: %v", dm)
	}
	deltaID := dm["job_id"].(string)
	if deltaID[:3] != ids[0][:3] {
		t.Fatalf("delta routed to %s, base job lives on %s", deltaID[:3], ids[0][:3])
	}
	// Polling an unknown/unprefixed id fails cleanly at the edge.
	if code, _ := getBody(t, rts.URL+"/v1/jobs/nonsense"); code != http.StatusNotFound {
		t.Fatalf("unknown job id: status %d, want 404", code)
	}

	// Wait for write-behind spills to land before killing anything.
	var r0Keys, r1Keys float64
	for i := range ids {
		if strings.HasPrefix(ids[i], "r0-") {
			r0Keys++
		} else {
			r1Keys++
		}
	}
	deltaOnR0 := strings.HasPrefix(deltaID, "r0-")
	if deltaOnR0 {
		r0Keys++
	} else {
		r1Keys++
	}
	waitMetricAtLeast(t, h0.ts.URL, "mdbgpd_cache_disk_entries", r0Keys)
	waitMetricAtLeast(t, h1.ts.URL, "mdbgpd_cache_disk_entries", r1Keys)

	// Phase 4: kill replica 0. Its traffic fails over to the next ring node
	// and — determinism — produces byte-identical results there.
	if old := h0.swap(nil); old != nil {
		old.Close()
	}
	retriesBefore := scrapeMetric(t, rts.URL, "mdbgp_router_retries_total")
	var failedOver float64
	for i := range bodies {
		if !strings.HasPrefix(ids[i], "r0-") {
			continue
		}
		code, m := postJSON(t, rts.URL+"/v1/partition?seed=1&wait=true", bodies[i])
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("failover submit %d: status %d (%v)", i, code, m)
		}
		fid := m["job_id"].(string)
		if !strings.HasPrefix(fid, "r1-") {
			t.Fatalf("failover solve %d landed on %s, want r1-", i, fid[:3])
		}
		if _, body := getBody(t, rts.URL+"/v1/jobs/"+fid+"/assignment"); !bytes.Equal(body, asn[i]) {
			t.Fatalf("failover result for graph %d is not byte-identical", i)
		}
		failedOver++
	}
	if failedOver == 0 {
		t.Fatal("no graph was owned by replica 0; routing fixture is degenerate")
	}
	if got := scrapeMetric(t, rts.URL, "mdbgp_router_retries_total"); got <= retriesBefore {
		t.Fatalf("router reported no retries across a dead replica (%g -> %g)", retriesBefore, got)
	}
	// The failover solves landed on r1's durable tier (they are r0's keys on
	// the ring — exactly what the restarted r0 will pull back).
	waitMetricAtLeast(t, h1.ts.URL, "mdbgpd_cache_disk_entries", r1Keys+failedOver)

	// Phase 5: replica 0 restarts with an EMPTY cache dir (disk lost, the
	// worst case) and self-warms its ring-owned keys from its peer.
	s0b := server.New(replicaCfg(t.TempDir()))
	h0.swap(s0b)
	st := s0b.WarmFromPeers(h0.ts.URL, []string{h1.ts.URL}, 4)
	if st.Errors != 0 {
		t.Fatalf("warming errors: %+v", st)
	}
	if float64(st.Fetched) < failedOver {
		t.Fatalf("warming fetched %d entries, want at least the %g failed-over keys", st.Fetched, failedOver)
	}
	// Health is advisory but ordering-relevant: until the router's next probe
	// sees the restarted replica, its traffic would still prefer the peer.
	waitMetricAtLeast(t, rts.URL, fmt.Sprintf("mdbgp_router_replica_up{replica=%q}", h0.ts.URL), 1)

	// Post-restart: every original graph is a cache hit — r0's from the
	// warmed disk tier, r1's untouched — and results match bit for bit.
	hits := 0
	for i := range bodies {
		code, m := postJSON(t, rts.URL+"/v1/partition?seed=1&wait=true", bodies[i])
		if code == http.StatusOK && m["cache"] == "hit" {
			hits++
		}
		if got := m["job_id"].(string)[:3]; got != ids[i][:3] {
			t.Fatalf("post-restart graph %d routed to %s, originally %s", i, got, ids[i][:3])
		}
		if _, body := getBody(t, rts.URL+"/v1/jobs/"+m["job_id"].(string)+"/assignment"); !bytes.Equal(body, asn[i]) {
			t.Fatalf("post-restart result for graph %d is not byte-identical", i)
		}
	}
	if float64(hits) < 0.8*graphs {
		t.Fatalf("post-restart hit rate %d/%d, want >= 80%%", hits, graphs)
	}
	if diskHits := scrapeMetric(t, h0.ts.URL, "mdbgpd_cache_disk_hits_total"); diskHits == 0 {
		t.Fatal("restarted replica served no disk-tier hits; warming did not take")
	}
}

// TestRouterSpooledBinarySubmit: a binary submission of unknown length (the
// client streams chunked, so ContentLength is -1) must spool to disk instead
// of buffering, hash correctly from the spool's two read passes, replay the
// spool on failover after a replica answers 503, and delete the spool file
// when the request finishes. Corrupt spooled streams still die at the edge
// with a 400.
func TestRouterSpooledBinarySubmit(t *testing.T) {
	// One-shot 503: whichever replica receives the first solve POST refuses
	// it, so the router must retry — replaying the spooled body — on the
	// other replica, regardless of ring order.
	var failedOnce atomic.Bool
	var urls []string
	for i := 0; i < 2; i++ {
		s := server.New(server.Config{Workers: 2, TrustHashHeader: true})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/partition") &&
				failedOnce.CompareAndSwap(false, true) {
				http.Error(w, "restarting", http.StatusServiceUnavailable)
				return
			}
			s.ServeHTTP(w, r)
		}))
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls = append(urls, ts.URL)
	}
	spoolDir := t.TempDir()
	rt := newRouter(routerOptions{
		replicas:       urls,
		healthInterval: time.Hour, // no probes: both replicas stay "healthy" so ring order is the failover order
		maxBodyBytes:   64 << 20,
		spoolDir:       spoolDir,
	}, slog.New(slog.DiscardHandler))
	ts := httptest.NewServer(rt)
	t.Cleanup(func() { ts.Close(); rt.close() })

	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 400, Communities: 4, AvgDegree: 8, InFraction: 0.85, Seed: 33,
	})
	var bin bytes.Buffer
	if err := wire.Encode(&bin, g, nil); err != nil {
		t.Fatal(err)
	}

	// Hide the length from net/http: anything but bytes/strings readers is
	// sent chunked, which is exactly the "multi-GB pipe" shape at the edge.
	chunked := func(b []byte) io.Reader { return struct{ io.Reader }{bytes.NewReader(b)} }

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/partition?k=4&seed=1&wait=true", chunked(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || m["status"] != "done" {
		t.Fatalf("spooled submit: status %d (%v)", resp.StatusCode, m)
	}
	if m["graph_hash"] != g.HashString() {
		t.Fatalf("spooled edge hash %v != local hash %s", m["graph_hash"], g.HashString())
	}
	if !failedOnce.Load() {
		t.Fatal("fixture bug: no replica refused the first POST")
	}
	if got := scrapeMetric(t, ts.URL, "mdbgp_router_retries_total"); got != 1 {
		t.Fatalf("retries_total = %g, want 1 (spool replayed on failover)", got)
	}
	if got := scrapeMetric(t, ts.URL, "mdbgp_router_spooled_total"); got != 1 {
		t.Fatalf("spooled_total = %g, want 1", got)
	}
	if got := scrapeMetric(t, ts.URL, "mdbgp_router_spool_bytes_total"); got != float64(bin.Len()) {
		t.Fatalf("spool_bytes_total = %g, want %d", got, bin.Len())
	}
	_, asnSpooled := getBody(t, ts.URL+"/v1/jobs/"+m["job_id"].(string)+"/assignment")

	// The same body with a known small length takes the buffered path (no new
	// spool) and — determinism — solves byte-identically on the other replica.
	code, m2 := func() (int, map[string]any) {
		resp, err := http.Post(ts.URL+"/v1/partition?k=4&seed=1&wait=true", wire.ContentType, bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}()
	if code != http.StatusOK || m2["status"] != "done" {
		t.Fatalf("buffered repeat: status %d (%v)", code, m2)
	}
	if got := scrapeMetric(t, ts.URL, "mdbgp_router_spooled_total"); got != 1 {
		t.Fatalf("buffered repeat spooled a body: spooled_total = %g, want 1", got)
	}
	if _, asn := getBody(t, ts.URL+"/v1/jobs/"+m2["job_id"].(string)+"/assignment"); !bytes.Equal(asn, asnSpooled) {
		t.Fatal("spooled and buffered submissions of the same graph are not byte-identical")
	}

	// Corrupt chunked stream: CRC failure surfaces as 400 from the spool path.
	bad := append([]byte(nil), bin.Bytes()...)
	bad[len(bad)-1] ^= 0xFF
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/partition?k=4", chunked(bad))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt spooled binary: status %d, want 400", resp.StatusCode)
	}

	// Spool files are per-request scratch: the dir drains once requests end.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(spoolDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d spool files leaked in %s", len(ents), spoolDir)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterFlagValidation covers the edge cases of parseFlags.
func TestRouterFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{}); err == nil {
		t.Fatal("missing -replicas accepted")
	}
	if _, err := parseFlags([]string{"-replicas", "http://a:1,http://b:2", "extra"}); err == nil {
		t.Fatal("stray arguments accepted")
	}
	o, err := parseFlags([]string{"-replicas", " http://a:1/ , http://b:2 "})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.replicas) != 2 || o.replicas[0] != "http://a:1" || o.replicas[1] != "http://b:2" {
		t.Fatalf("replica list not normalized: %v", o.replicas)
	}
}

// TestSplitPrefixed pins the router's job-id namespace parsing.
func TestSplitPrefixed(t *testing.T) {
	rt := &router{opts: routerOptions{replicas: []string{"a", "b"}}}
	cases := []struct {
		id   string
		i    int
		rest string
		ok   bool
	}{
		{"r0-j1-abcd", 0, "j1-abcd", true},
		{"r1-j22-gd2:ab12", 1, "j22-gd2:ab12", true},
		{"r2-j1-abcd", 0, "", false}, // no replica 2
		{"j1-abcd", 0, "", false},
		{"r-j1", 0, "", false},
		{"r0-", 0, "", false},
		{"", 0, "", false},
	}
	for _, c := range cases {
		i, rest, ok := rt.splitPrefixed(c.id)
		if i != c.i || rest != c.rest || ok != c.ok {
			t.Fatalf("splitPrefixed(%q) = (%d, %q, %v), want (%d, %q, %v)", c.id, i, rest, ok, c.i, c.rest, c.ok)
		}
	}
}

// TestRouterBinarySubmit: the edge hashes binary wire-format uploads itself,
// so either codec of the same graph routes to the same replica, forwards the
// same trusted hash, and shares one cache entry. Corrupt streams and binary
// deltas die at the edge without a replica round trip.
func TestRouterBinarySubmit(t *testing.T) {
	var replicas []*replicaHost
	var urls []string
	for i := 0; i < 2; i++ {
		h := newReplicaHost(server.Config{Workers: 2, TrustHashHeader: true})
		defer h.close()
		replicas = append(replicas, h)
		urls = append(urls, h.ts.URL)
	}
	_, ts := startRouter(t, urls)

	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 400, Communities: 4, AvgDegree: 8, InFraction: 0.85, Seed: 21,
	})
	text := testBody(t, 21)
	var bin bytes.Buffer
	if err := wire.Encode(&bin, g, nil); err != nil {
		t.Fatal(err)
	}

	code, m1 := postJSON(t, ts.URL+"/v1/partition?k=4&seed=1&wait=true", text)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("text submit: status %d (%v)", code, m1)
	}

	resp, err := http.Post(ts.URL+"/v1/partition?k=4&seed=1&wait=true", wire.ContentType, bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var m2 map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary submit after text: status %d (%v), want 200 cache hit", resp.StatusCode, m2)
	}
	if m2["cache"] != "hit" {
		t.Fatalf("binary submit cache = %v, want hit (same graph, same replica)", m2["cache"])
	}
	if m1["graph_hash"] != m2["graph_hash"] {
		t.Fatalf("codecs hashed differently at the edge: %v vs %v", m1["graph_hash"], m2["graph_hash"])
	}
	if m1["graph_hash"] != g.HashString() {
		t.Fatalf("edge hash %v != local hash %s", m1["graph_hash"], g.HashString())
	}

	// Corruption dies at the edge with 400 (CRC), no replica involved.
	bad := append([]byte(nil), bin.Bytes()...)
	bad[len(bad)-1] ^= 0xFF
	resp, err = http.Post(ts.URL+"/v1/partition?k=4", wire.ContentType, bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt binary: status %d, want 400", resp.StatusCode)
	}

	// Binary deltas are rejected at the edge too.
	resp, err = http.Post(ts.URL+"/v1/partition?k=4&base="+g.HashString(), wire.ContentType, bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("binary delta: status %d, want 400", resp.StatusCode)
	}
}
