// Command mdbgp-router is the thin routing tier in front of a fleet of
// mdbgpd replicas: it consistent-hashes each submission's canonical graph
// hash onto the replica ring, so every request for the same graph lands on
// the same replica and the fleet's caches shard instead of duplicating.
//
//	mdbgp-router -addr :9090 -replicas http://a:8080,http://b:8080,http://c:8080
//
// The router computes the canonical graph hash ONCE at the edge and forwards
// it via the X-Mdbgp-Graph-Hash header; replicas started with
// -trust-hash-header skip re-hashing. Job ids returned to clients are
// prefixed with the replica index ("r1-j42-ab12cd34"), which is all the
// state polling needs — the router itself is stateless and restarts freely.
//
// Failure handling: a submission that cannot reach its owner (transport
// error, 502/503/504) retries on the next ring node, so results stay
// available — at the cost of a cold solve — while a replica restarts; the
// restarted replica meanwhile refills its cache from disk and peers
// (see mdbgpd -cache-dir/-peers). 429 backpressure is passed through
// untouched: shedding load is the replica's decision, not a failure.
//
// Deployment note: -replicas order and -vnodes must be identical across
// router instances and match the member lists given to the replicas'
// -self/-peers flags — the ring is deterministic, shared agreement on it is
// what makes edge routing and peer warming pick the same owners.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mdbgp"
	"mdbgp/internal/obs"
	"mdbgp/internal/ring"
	"mdbgp/internal/server"
	"mdbgp/internal/wire"
)

func main() {
	o, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdbgp-router: %v\n", err)
		os.Exit(2)
	}
	if err := run(o, nil); err != nil {
		fmt.Fprintf(os.Stderr, "mdbgp-router: %v\n", err)
		os.Exit(1)
	}
}

type routerOptions struct {
	addr           string
	replicas       []string
	vnodes         int
	healthInterval time.Duration
	maxBodyBytes   int64
	spoolDir       string // where large binary bodies spool while hashing ("" = os.TempDir())
	logFormat      string
}

func parseFlags(args []string) (routerOptions, error) {
	fs := flag.NewFlagSet("mdbgp-router", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":9090", "listen address")
		replicas  = fs.String("replicas", "", "comma-separated replica base URLs (required); order defines the r<i>- job-id prefixes and must match across router instances")
		vnodes    = fs.Int("vnodes", ring.DefaultVNodes, "virtual nodes per replica on the consistent-hash ring; must match the replicas' warming configuration")
		health    = fs.Duration("health-interval", 2*time.Second, "how often to probe each replica's /readyz")
		maxBodyMB = fs.Int64("max-body-mb", 256, "request body limit in MiB (text bodies are buffered; large binary bodies spool to disk)")
		spoolDir  = fs.String("spool-dir", "", "directory where large binary submissions spool while being hashed and retried (empty = OS temp dir)")
		logFormat = fs.String("log-format", "text", "structured log encoding: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return routerOptions{}, err
	}
	if fs.NArg() > 0 {
		return routerOptions{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	var list []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
			list = append(list, r)
		}
	}
	if len(list) == 0 {
		return routerOptions{}, errors.New("-replicas is required")
	}
	if *logFormat != "text" && *logFormat != "json" {
		return routerOptions{}, fmt.Errorf("bad -log-format %q (want text or json)", *logFormat)
	}
	if *spoolDir != "" {
		// Fail fast on an unusable spool dir: it would otherwise surface as a
		// 500 on the first large binary submission, long after startup.
		if err := os.MkdirAll(*spoolDir, 0o755); err != nil {
			return routerOptions{}, fmt.Errorf("-spool-dir: %w", err)
		}
	}
	return routerOptions{
		addr: *addr, replicas: list, vnodes: *vnodes,
		healthInterval: *health, maxBodyBytes: *maxBodyMB << 20,
		spoolDir: *spoolDir, logFormat: *logFormat,
	}, nil
}

// routerMetrics is the router's own observability: proxy counters plus the
// latency the router ADDS (hashing + proxying) on top of replica time.
type routerMetrics struct {
	requests    atomic.Int64 // requests received on proxied routes
	proxied     atomic.Int64 // upstream calls attempted
	retries     atomic.Int64 // failovers to the next ring node
	errors      atomic.Int64 // requests that exhausted every candidate replica
	badRequests atomic.Int64 // rejected at the edge (parse errors, unknown ids)
	spooled     atomic.Int64 // binary submissions spooled to disk instead of buffered
	spoolBytes  atomic.Int64 // cumulative bytes written to edge spool files

	hashHist    *obs.Histogram // edge hashing (canonicalize + hash) per submission
	requestHist *obs.Histogram // total router-side time per proxied request
}

type router struct {
	opts    routerOptions
	ring    *ring.Ring
	index   map[string]int // replica URL -> position in opts.replicas
	healthy []atomic.Bool
	client  *http.Client
	log     *slog.Logger
	met     routerMetrics
	mux     *http.ServeMux
	quit    chan struct{}
}

func newRouter(o routerOptions, logger *slog.Logger) *router {
	rt := &router{
		opts:    o,
		ring:    ring.New(o.replicas, o.vnodes),
		index:   make(map[string]int, len(o.replicas)),
		healthy: make([]atomic.Bool, len(o.replicas)),
		client:  &http.Client{Timeout: 5 * time.Minute},
		log:     logger,
		mux:     http.NewServeMux(),
		quit:    make(chan struct{}),
	}
	for i, r := range o.replicas {
		rt.index[r] = i
		rt.healthy[i].Store(true) // optimistic until the first probe says otherwise
	}
	rt.met.hashHist = obs.NewHistogram(nil)
	rt.met.requestHist = obs.NewHistogram(nil)
	rt.mux.HandleFunc("POST /v1/partition", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/jobs/", rt.handleJobs)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	go rt.healthLoop()
	return rt
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *router) close() { close(rt.quit) }

// healthLoop probes every replica's /readyz on a fixed cadence. Health is
// advisory — it reorders candidates so the first try usually succeeds — not
// load-bearing: the per-request failover handles the probe being stale.
func (rt *router) healthLoop() {
	probe := &http.Client{Timeout: 2 * time.Second}
	tick := time.NewTicker(rt.opts.healthInterval)
	defer tick.Stop()
	for {
		for i, replica := range rt.opts.replicas {
			up := false
			if resp, err := probe.Get(replica + "/readyz"); err == nil {
				up = resp.StatusCode == http.StatusOK
				resp.Body.Close()
			}
			if rt.healthy[i].Swap(up) != up {
				rt.log.Info("replica health changed", slog.String("replica", replica), slog.Bool("up", up))
			}
		}
		select {
		case <-rt.quit:
			return
		case <-tick.C:
		}
	}
}

// jobPrefix is the router-side job-id namespace: r<i>- identifies which
// replica issued the id, which is all polling needs to route.
func jobPrefix(i int) string { return fmt.Sprintf("r%d-", i) }

// splitPrefixed parses "r<i>-<replica job id>"; ok is false when the id does
// not carry a router prefix naming a known replica.
func (rt *router) splitPrefixed(id string) (i int, rest string, ok bool) {
	if !strings.HasPrefix(id, "r") {
		return 0, "", false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 2 {
		return 0, "", false
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil || n < 0 || n >= len(rt.opts.replicas) || dash+1 >= len(id) {
		return 0, "", false
	}
	return n, id[dash+1:], true
}

// candidates is the failover order for a graph hash: the ring sequence with
// unhealthy replicas demoted to the back — tried only after every healthy
// candidate failed, because a stale "down" must never make a request
// unroutable.
func (rt *router) candidates(hash string) []string {
	seq := rt.ring.Seq(hash)
	out := make([]string, 0, len(seq))
	var down []string
	for _, m := range seq {
		if rt.healthy[rt.index[m]].Load() {
			out = append(out, m)
		} else {
			down = append(down, m)
		}
	}
	return append(out, down...)
}

// retryableStatus reports upstream statuses that mean "this replica cannot
// serve right now" rather than "this request is wrong": the failover cases.
// 429 is deliberately NOT here — backpressure is a replica-owned decision
// that must reach the client untouched.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// bodySource yields a fresh reader over the submission body each time it is
// called: once per hash pass and once per failover attempt. The two variants
// are the router's memory strategy — small bodies replay from RAM, large
// binary bodies replay from a disk spool.
type bodySource func() (io.ReadCloser, error)

func memoryBody(b []byte) bodySource {
	return func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(b)), nil }
}

func fileBody(path string) bodySource {
	return func() (io.ReadCloser, error) { return os.Open(path) }
}

// spoolThreshold is where binary submissions stop being buffered in RAM and
// start spooling to disk. Text bodies always buffer: they must be parsed into
// a Graph to canonicalize anyway, which dwarfs the body buffer.
const spoolThreshold = 8 << 20

// readAll buffers a request body under the configured limit, writing the 400
// or 413 itself on failure; ok is false when a response has been written.
func (rt *router) readAll(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		code := http.StatusBadRequest
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		rt.met.badRequests.Add(1)
		httpError(w, code, err.Error())
		return nil, false
	}
	return body, true
}

func (rt *router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rt.met.requests.Add(1)
	start := time.Now()
	defer func() { rt.met.requestHist.Observe(time.Since(start)) }()

	q := r.URL.Query()
	binary := wire.IsContentType(r.Header.Get("Content-Type"))
	if base := q.Get("base"); base != "" {
		if binary {
			// Same contract as the daemon, enforced at the edge so the
			// contradiction never burns a replica round trip.
			rt.met.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "binary edge deltas are not supported: ?base= takes the text \"+u v\"/\"-u v\" codec only")
			return
		}
		body, ok := rt.readAll(w, r)
		if !ok {
			return
		}
		rt.proxyDelta(w, r, base, body)
		return
	}

	// Full submission: canonicalize + hash once, here at the edge. The hash
	// both picks the replica and rides the trusted header so the replica
	// skips its own hash pass — critically, text and binary uploads of the
	// same graph hash identically, so either codec lands on the same replica
	// and the same cache entries. Parse errors (including wire CRC failures)
	// die at the edge with a 400 instead of burning a replica round trip.
	//
	// Binary bodies above spoolThreshold (or of unknown length) never live in
	// router memory: they spool to disk and every later pass — the codec's
	// two hash passes, one upstream send per failover attempt — re-reads the
	// spool file.
	if binary && (r.ContentLength < 0 || r.ContentLength > spoolThreshold) {
		rt.submitSpooled(w, r)
		return
	}
	body, ok := rt.readAll(w, r)
	if !ok {
		return
	}
	hashStart := time.Now()
	var hash string
	if binary {
		h, hdr, err := wire.HashGraph(memoryBody(body))
		if err != nil {
			rt.met.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if hdr.N == 0 || hdr.Arcs == 0 {
			rt.met.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "empty graph: the wire stream must carry at least one edge")
			return
		}
		hash = h
	} else {
		b := mdbgp.NewBuilder(0)
		if err := mdbgp.ReadEdgeListInto(b, bytes.NewReader(body), 0); err != nil {
			rt.met.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		g := b.Build()
		if g.N() == 0 || g.M() == 0 {
			rt.met.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "empty graph: body must contain at least one 'u v' edge line")
			return
		}
		hash = g.HashString()
	}
	rt.met.hashHist.Observe(time.Since(hashStart))

	header := http.Header{server.GraphHashHeader: []string{hash}}
	rt.forwardWithFailover(w, r, rt.candidates(hash), "/v1/partition?"+r.URL.RawQuery, memoryBody(body), int64(len(body)), header)
}

// submitSpooled handles a binary full submission too large (or of unknown
// length) to buffer. The network bytes are read exactly once — a single
// io.Copy into a temp file under -spool-dir — so router memory stays bounded
// by the copy buffer no matter how large the graph is. Hashing and each
// forward attempt then replay the spool, which is deleted when the request
// finishes.
func (rt *router) submitSpooled(w http.ResponseWriter, r *http.Request) {
	spool, err := os.CreateTemp(rt.opts.spoolDir, "mdbgp-router-spool-*.bin")
	if err != nil {
		rt.met.errors.Add(1)
		httpError(w, http.StatusInternalServerError, "spool: "+err.Error())
		return
	}
	defer func() {
		spool.Close()
		os.Remove(spool.Name())
	}()
	n, err := io.Copy(spool, http.MaxBytesReader(w, r.Body, rt.opts.maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		code := http.StatusBadRequest
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		rt.met.badRequests.Add(1)
		httpError(w, code, err.Error())
		return
	}
	rt.met.spooled.Add(1)
	rt.met.spoolBytes.Add(n)

	hashStart := time.Now()
	hash, hdr, err := wire.HashGraph(fileBody(spool.Name()))
	if err != nil {
		rt.met.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if hdr.N == 0 || hdr.Arcs == 0 {
		rt.met.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "empty graph: the wire stream must carry at least one edge")
		return
	}
	rt.met.hashHist.Observe(time.Since(hashStart))

	header := http.Header{server.GraphHashHeader: []string{hash}}
	rt.forwardWithFailover(w, r, rt.candidates(hash), "/v1/partition?"+r.URL.RawQuery, fileBody(spool.Name()), n, header)
}

// proxyDelta routes a ?base= submission. A router-prefixed base pins the
// request to the replica that retains the base job (and its cached graph);
// a bare canonical hash routes by ring like a full submission — the owner is
// where the base graph lives.
func (rt *router) proxyDelta(w http.ResponseWriter, r *http.Request, base string, body []byte) {
	q := r.URL.Query()
	if i, rest, ok := rt.splitPrefixed(base); ok {
		q.Set("base", rest)
		// No failover: only this replica holds the retained base job. If it
		// is down the client gets the replica's error and resubmits the full
		// graph — exactly what the daemon's own 404/410 contract says.
		rt.forwardWithFailover(w, r, []string{rt.opts.replicas[i]}, "/v1/partition?"+q.Encode(), memoryBody(body), int64(len(body)), nil)
		return
	}
	if len(base) == 64 {
		rt.forwardWithFailover(w, r, rt.candidates(strings.ToLower(base)), "/v1/partition?"+q.Encode(), memoryBody(body), int64(len(body)), nil)
		return
	}
	rt.met.badRequests.Add(1)
	httpError(w, http.StatusBadRequest, fmt.Sprintf("base %q is not a router job id (r<i>-...) or a 64-hex graph hash", base))
}

// forwardWithFailover tries each candidate replica in order until one
// answers with a non-retryable status, then rewrites the response's job ids
// into the router's prefixed namespace. open is called once per attempt so
// a retry replays the same body — from RAM or from the spool file — without
// the router ever holding more than one copy.
func (rt *router) forwardWithFailover(w http.ResponseWriter, r *http.Request, cands []string, pathAndQuery string, open bodySource, length int64, header http.Header) {
	var lastErr string
	for attempt, replica := range cands {
		if attempt > 0 {
			rt.met.retries.Add(1)
		}
		rt.met.proxied.Add(1)
		body, err := open()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, replica+pathAndQuery, body)
		if err != nil {
			body.Close()
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		req.ContentLength = length
		for k, vs := range header {
			req.Header[k] = vs
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err.Error()
			rt.log.Warn("replica unreachable", slog.String("replica", replica), slog.String("error", lastErr))
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err.Error()
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Sprintf("%s answered %d", replica, resp.StatusCode)
			continue
		}
		rt.writeProxied(w, resp, respBody, rt.index[replica])
		return
	}
	rt.met.errors.Add(1)
	httpError(w, http.StatusBadGateway, "no replica could serve the request: "+lastErr)
}

// writeProxied relays an upstream response, translating the replica's job id
// into the router's prefixed namespace everywhere it appears (the id field
// itself plus the assignment/trace URLs that embed it).
func (rt *router) writeProxied(w http.ResponseWriter, resp *http.Response, body []byte, replica int) {
	var probe struct {
		JobID string `json:"job_id"`
		ID    string `json:"id"`
	}
	if err := json.Unmarshal(body, &probe); err == nil {
		id := probe.JobID
		if id == "" {
			id = probe.ID
		}
		if id != "" && !strings.HasPrefix(id, jobPrefix(replica)) {
			body = bytes.ReplaceAll(body, []byte(id), []byte(jobPrefix(replica)+id))
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// handleJobs proxies the polling surface: /v1/jobs/{rid}[/assignment|/trace]
// where rid = r<i>-<replica job id>. The prefix alone picks the replica.
func (rt *router) handleJobs(w http.ResponseWriter, r *http.Request) {
	rt.met.requests.Add(1)
	start := time.Now()
	defer func() { rt.met.requestHist.Observe(time.Since(start)) }()

	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, tail, _ := strings.Cut(rest, "/")
	i, realID, ok := rt.splitPrefixed(id)
	if !ok {
		rt.met.badRequests.Add(1)
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q: router job ids look like r<i>-j...", id))
		return
	}
	path := "/v1/jobs/" + realID
	if tail != "" {
		path += "/" + tail
	}
	rt.met.proxied.Add(1)
	resp, err := rt.client.Get(rt.opts.replicas[i] + path)
	if err != nil {
		rt.met.errors.Add(1)
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		rt.met.errors.Add(1)
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	// The replica talks about its own id; the client knows the prefixed one.
	body = bytes.ReplaceAll(body, []byte(realID), []byte(id))
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// handleHealthz is liveness: the router process itself.
func (rt *router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "replicas": len(rt.opts.replicas)})
}

// handleReadyz is readiness: the router can serve only if some replica can.
func (rt *router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for i := range rt.healthy {
		if rt.healthy[i].Load() {
			up++
		}
	}
	status, code := "ready", http.StatusOK
	if up == 0 {
		status, code = "no healthy replicas", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "replicas_up": up, "replicas": len(rt.opts.replicas)})
}

func (rt *router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("mdbgp_router_requests_total", "Requests received on proxied routes.", rt.met.requests.Load())
	counter("mdbgp_router_proxied_total", "Upstream replica calls attempted.", rt.met.proxied.Load())
	counter("mdbgp_router_retries_total", "Failovers to the next ring node.", rt.met.retries.Load())
	counter("mdbgp_router_errors_total", "Requests that exhausted every candidate replica.", rt.met.errors.Load())
	counter("mdbgp_router_bad_requests_total", "Requests rejected at the edge (parse errors, unknown ids).", rt.met.badRequests.Load())
	counter("mdbgp_router_spooled_total", "Binary submissions spooled to disk instead of buffered in memory.", rt.met.spooled.Load())
	counter("mdbgp_router_spool_bytes_total", "Cumulative bytes written to edge spool files.", rt.met.spoolBytes.Load())
	fmt.Fprintf(&b, "# HELP mdbgp_router_replica_up Replica readiness as of the last probe.\n# TYPE mdbgp_router_replica_up gauge\n")
	for i, replica := range rt.opts.replicas {
		up := 0
		if rt.healthy[i].Load() {
			up = 1
		}
		fmt.Fprintf(&b, "mdbgp_router_replica_up{replica=%q} %d\n", replica, up)
	}
	fmt.Fprintf(&b, "# HELP mdbgp_router_hash_seconds Edge-side canonicalize+hash time per full submission.\n# TYPE mdbgp_router_hash_seconds histogram\n")
	obs.WritePromHistogram(&b, "mdbgp_router_hash_seconds", "", rt.met.hashHist.Snapshot())
	fmt.Fprintf(&b, "# HELP mdbgp_router_request_seconds Router-side time per proxied request (hashing + upstream + rewrite).\n# TYPE mdbgp_router_request_seconds histogram\n")
	obs.WritePromHistogram(&b, "mdbgp_router_request_seconds", "", rt.met.requestHist.Snapshot())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

// run boots the router and blocks until SIGINT/SIGTERM or a serve error.
// ready, when non-nil, receives the bound address once listening.
func run(o routerOptions, ready chan<- string) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if o.logFormat == "json" {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	rt := newRouter(o, logger)
	defer rt.close()
	httpSrv := &http.Server{Addr: o.addr, Handler: rt}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	logger.Info("routing", slog.String("addr", ln.Addr().String()), slog.Int("replicas", len(o.replicas)), slog.Int("vnodes", o.vnodes))
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		logger.Info("shutting down", slog.String("signal", s.String()))
		return httpSrv.Close()
	}
}
