// Command benchjson converts `go test -bench` output read from stdin into a
// JSON benchmark record, seeding the repo's performance trajectory files
// (BENCH_*.json). Standard benchmark lines look like
//
//	BenchmarkMultilevelVsDirect-8   1   86933661 ns/op   0.88 locality_direct   3.1 speedup
//
// i.e. a name, an iteration count, then value/unit pairs; everything else
// (headers, PASS/ok lines) is passed through to stderr untouched.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkMultilevel' -benchtime 1x . | go run ./cmd/benchjson -out BENCH_multilevel.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result: the run count plus every reported metric
// (ns/op, MB/s, and b.ReportMetric custom units) keyed by unit.
type Record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine decodes one "BenchmarkName-P  N  v unit  v unit ..." line.
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix if present.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	rec := Record{Name: name, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	if len(rec.Metrics) == 0 {
		return Record{}, false
	}
	return rec, true
}
