package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	rec, ok := parseBenchLine("BenchmarkServingE2E-8 \t 1\t  95454133 ns/op\t 0.8750 cache_hit_rate\t 20.49 p50_ms")
	if !ok {
		t.Fatal("valid bench line rejected")
	}
	if rec.Name != "BenchmarkServingE2E" {
		t.Fatalf("name %q (GOMAXPROCS suffix should be stripped)", rec.Name)
	}
	if rec.Runs != 1 {
		t.Fatalf("runs %d", rec.Runs)
	}
	want := map[string]float64{"ns/op": 95454133, "cache_hit_rate": 0.875, "p50_ms": 20.49}
	for unit, v := range want {
		if rec.Metrics[unit] != v {
			t.Fatalf("metric %s = %v, want %v", unit, rec.Metrics[unit], v)
		}
	}

	rejected := []string{
		"",
		"PASS",
		"ok  \tmdbgp\t0.1s",
		"goos: linux",
		"BenchmarkBroken x 1 ns/op",   // non-numeric run count
		"BenchmarkNoMetrics 5",        // no value/unit pairs
		"BenchmarkBadValue 5 x ns/op", // non-numeric value
		"NotABenchmark 5 100 ns/op",   // wrong prefix
	}
	for _, line := range rejected {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestParseBenchLineKeepsNonNumericSuffix(t *testing.T) {
	// A trailing -suffix that is not a number is part of the name.
	rec, ok := parseBenchLine("BenchmarkFoo-bar 2 10 ns/op")
	if !ok || rec.Name != "BenchmarkFoo-bar" {
		t.Fatalf("rec %+v ok=%v", rec, ok)
	}
}
