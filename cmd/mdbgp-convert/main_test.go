package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdbgp"
	"mdbgp/internal/wire"
)

func testGraphText(t *testing.T) (*mdbgp.Graph, string) {
	t.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 300, Communities: 3, AvgDegree: 8, InFraction: 0.8, Seed: 5,
	})
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return g, path
}

// TestConvertRoundTrip: text -> binary -> text preserves the canonical graph
// hash at every hop, and -format auto flips the codec.
func TestConvertRoundTrip(t *testing.T) {
	g, textPath := testGraphText(t)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.mdbgp")
	backPath := filepath.Join(dir, "back.txt")

	var logs bytes.Buffer
	if err := run(config{in: textPath, out: binPath, format: "auto"}, &logs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), "converted text -> binary") {
		t.Fatalf("summary: %q", logs.String())
	}
	raw, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Sniff(raw) {
		t.Fatal("binary output lacks the wire magic")
	}
	dec, weights, err := wire.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if weights != nil {
		t.Fatal("unexpected embedded weights")
	}
	if dec.Hash() != g.Hash() {
		t.Fatal("text -> binary changed the canonical graph")
	}

	logs.Reset()
	if err := run(config{in: binPath, out: backPath, format: "auto"}, &logs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), "converted binary -> text") {
		t.Fatalf("summary: %q", logs.String())
	}
	f, err := os.Open(backPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := mdbgp.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != g.Hash() {
		t.Fatal("binary -> text changed the canonical graph")
	}
}

// TestConvertEmbedsWeights: -weights computes the named standard dims and
// embeds them; binary -> text warns that it drops them.
func TestConvertEmbedsWeights(t *testing.T) {
	g, textPath := testGraphText(t)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "w.mdbgp")

	var logs bytes.Buffer
	if err := run(config{in: textPath, out: binPath, format: "binary", weights: "vertices,pagerank"}, &logs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	dec, weights, err := wire.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 2 {
		t.Fatalf("embedded %d weight dims, want 2", len(weights))
	}
	// The weight section sits outside the content address.
	if dec.Hash() != g.Hash() {
		t.Fatal("weight section changed the canonical graph hash")
	}
	dims, _, err := mdbgp.ParseWeightDims("vertices,pagerank")
	if err != nil {
		t.Fatal(err)
	}
	want, err := mdbgp.StandardWeights(g, dims...)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		for v := range want[j] {
			if weights[j][v] != want[j][v] {
				t.Fatalf("dim %d vertex %d: weight %v, want %v", j, v, weights[j][v], want[j][v])
			}
		}
	}

	logs.Reset()
	if err := run(config{in: binPath, out: filepath.Join(dir, "drop.txt"), format: "text"}, &logs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logs.String(), "dropping 2 embedded weight dimension(s)") {
		t.Fatalf("missing drop warning: %q", logs.String())
	}

	// -weights with text output is a contradiction, not a silent no-op.
	if err := run(config{in: textPath, out: filepath.Join(dir, "x.txt"), format: "text", weights: "vertices"}, &logs); err == nil {
		t.Fatal("-weights with text output accepted")
	}
}

func TestParseFlagsConvert(t *testing.T) {
	cfg, err := parseFlags([]string{"-in", "a", "-out", "b", "-format", "binary", "-weights", "edges"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.in != "a" || cfg.out != "b" || cfg.format != "binary" || cfg.weights != "edges" {
		t.Fatalf("cfg %+v", cfg)
	}
	if _, err := parseFlags([]string{"-format", "xml"}); err == nil {
		t.Fatal("bad -format accepted")
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Fatal("positional argument accepted")
	}
}
