// Command mdbgp-convert converts graphs between the text edge-list codec and
// the binary wire format (docs/WIRE_FORMAT.md). Both codecs carry the same
// canonical CSR, so converting never changes a graph's content address — the
// server hashes either form to the same key.
//
// Usage:
//
//	# text -> binary (input codec auto-detected by magic bytes)
//	mdbgp-convert -in graph.txt -out graph.mdbgp
//
//	# binary -> text
//	mdbgp-convert -in graph.mdbgp -out graph.txt -format text
//
//	# embed standard balance-dimension weights in the binary output; cmd/mdbgp
//	# picks them up automatically (the HTTP endpoint rejects weighted files)
//	mdbgp-convert -in graph.txt -out graph.mdbgp -weights vertices,pagerank
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mdbgp"
	"mdbgp/internal/wire"
)

type config struct {
	in, out string
	format  string // output codec: text, binary, or auto (flip the input's)
	weights string // dims to embed as a weight section on binary output
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("mdbgp-convert", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.in, "in", "-", "input graph (text edge list or wire format, auto-detected), or - for stdin")
	fs.StringVar(&cfg.out, "out", "-", "output file, or - for stdout")
	fs.StringVar(&cfg.format, "format", "auto", "output codec: text, binary, or auto (the opposite of the input's)")
	fs.StringVar(&cfg.weights, "weights", "", "comma-separated dims to embed as a weight section on binary output (vertices, edges, neighbor-degrees, pagerank); empty carries input weights through")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	switch cfg.format {
	case "text", "binary", "auto":
	default:
		return config{}, fmt.Errorf("bad -format %q (want text, binary or auto)", cfg.format)
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdbgp-convert: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mdbgp-convert: %v\n", err)
		os.Exit(1)
	}
}

func openIn(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(cfg config, logw io.Writer) error {
	in, closeIn, err := openIn(cfg.in)
	if err != nil {
		return err
	}
	defer closeIn()

	br := bufio.NewReaderSize(in, 1<<20)
	head, _ := br.Peek(len(wire.Magic))
	inBinary := wire.Sniff(head)

	var g *mdbgp.Graph
	var weights [][]float64
	if inBinary {
		if g, weights, err = wire.Decode(br); err != nil {
			return fmt.Errorf("reading binary graph: %w", err)
		}
	} else if g, err = mdbgp.ReadEdgeList(br); err != nil {
		return fmt.Errorf("reading edge list: %w", err)
	}

	outFormat := cfg.format
	if outFormat == "auto" {
		if inBinary {
			outFormat = "text"
		} else {
			outFormat = "binary"
		}
	}

	if cfg.weights != "" {
		if outFormat != "binary" {
			return errors.New("-weights requires binary output (the text codec has no weight section)")
		}
		dims, names, err := mdbgp.ParseWeightDims(cfg.weights)
		if err != nil {
			return err
		}
		if weights, err = mdbgp.StandardWeights(g, dims...); err != nil {
			return err
		}
		fmt.Fprintf(logw, "embedding weight dims: %s\n", names)
	}

	var out *os.File
	if cfg.out == "-" {
		out = os.Stdout
	} else {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	switch outFormat {
	case "binary":
		if err := wire.Encode(bw, g, weights); err != nil {
			return err
		}
	case "text":
		if weights != nil {
			// Not an error: the graph converts fine, but the lossy part must
			// not pass silently.
			fmt.Fprintf(logw, "warning: dropping %d embedded weight dimension(s) — the text codec cannot carry them\n", len(weights))
		}
		if err := mdbgp.WriteEdgeList(bw, g); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(logw, "converted %s -> %s: n=%d m=%d hash=%s\n",
		codecName(inBinary), outFormat, g.N(), g.M(), g.HashString())
	return nil
}

func codecName(binary bool) string {
	if binary {
		return "binary"
	}
	return "text"
}
