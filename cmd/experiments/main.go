// Command experiments regenerates the tables and figures of the paper's
// evaluation section on synthetic dataset analogs (see DESIGN.md §4 for the
// substitution table and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	experiments -list
//	experiments -run fig5,fig6            # specific experiments
//	experiments -run all -scale quick     # everything, 8× smaller datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mdbgp/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment names, or 'all'")
		scale   = flag.String("scale", "full", "dataset scale: full (paper-analog sizes) or quick (8x smaller)")
		seed    = flag.Int64("seed", 42, "random seed")
		par     = flag.Int("p", 0, "GD worker parallelism: 0 = all cores, 1 = serial (results are seed-deterministic either way)")
		ml      = flag.Bool("multilevel", false, "run GD partitions through the V-cycle multilevel path")
		list    = flag.Bool("list", false, "list experiments and exit")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-26s %s\n", e.Name, e.Paper, e.Desc)
		}
		return
	}

	scaleDiv := 1
	switch *scale {
	case "full":
	case "quick":
		scaleDiv = 8
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want full or quick)\n", *scale)
		os.Exit(1)
	}

	var selected []experiments.Experiment
	if *runList == "all" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*runList, ",") {
			e, err := experiments.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	logSink := os.Stderr
	if *quiet {
		logSink = nil
	}
	var ctx *experiments.Context
	if logSink != nil {
		ctx = experiments.NewContext(scaleDiv, *seed, logSink)
	} else {
		ctx = experiments.NewContext(scaleDiv, *seed, nil)
	}
	ctx.Parallelism = *par
	ctx.Multilevel = *ml

	grandStart := time.Now()
	for _, e := range selected {
		fmt.Printf("\n================ %s — %s ================\n", e.Paper, e.Name)
		fmt.Println(e.Desc)
		start := time.Now()
		tables, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("\n[%s completed in %.1fs]\n", e.Name, time.Since(start).Seconds())
	}
	fmt.Printf("\nAll done in %.1fs (scale=%s, seed=%d)\n", time.Since(grandStart).Seconds(), *scale, *seed)
}
