// Command experiments regenerates the tables and figures of the paper's
// evaluation section on synthetic dataset analogs (see DESIGN.md §4 for the
// substitution table and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	experiments -list
//	experiments -run fig5,fig6            # specific experiments
//	experiments -run all -scale quick     # everything, 8× smaller datasets
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mdbgp"
	"mdbgp/internal/experiments"
)

// parseScale maps the -scale flag onto a dataset divisor.
func parseScale(s string) (int, error) {
	switch s {
	case "full":
		return 1, nil
	case "quick":
		return 8, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want full or quick)", s)
	}
}

// selectExperiments resolves a comma-separated -run list ("all" included).
func selectExperiments(runList string) ([]experiments.Experiment, error) {
	if runList == "all" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, err := experiments.ByName(name)
		if err != nil {
			return nil, err
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("empty -run list")
	}
	return selected, nil
}

func listExperiments(w io.Writer) {
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "%-8s %-26s %s\n", e.Name, e.Paper, e.Desc)
	}
}

// runExperiments executes the selection in order, rendering every table to w.
func runExperiments(ctx *experiments.Context, selected []experiments.Experiment, w io.Writer) error {
	grandStart := time.Now()
	for _, e := range selected {
		fmt.Fprintf(w, "\n================ %s — %s ================\n", e.Paper, e.Name)
		fmt.Fprintln(w, e.Desc)
		start := time.Now()
		tables, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s failed: %w", e.Name, err)
		}
		for _, t := range tables {
			t.Render(w)
		}
		fmt.Fprintf(w, "\n[%s completed in %.1fs]\n", e.Name, time.Since(start).Seconds())
	}
	fmt.Fprintf(w, "\nAll done in %.1fs (seed=%d)\n", time.Since(grandStart).Seconds(), ctx.Seed)
	return nil
}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment names, or 'all'")
		scale   = flag.String("scale", "full", "dataset scale: full (paper-analog sizes) or quick (8x smaller)")
		seed    = flag.Int64("seed", 42, "random seed")
		par     = flag.Int("p", 0, "GD worker parallelism: 0 = all cores, 1 = serial (results are seed-deterministic either way)")
		ml      = flag.Bool("multilevel", false, "deprecated alias for -engine multilevel")
		engine  = flag.String("engine", "", "solver engine for the GD role: "+strings.Join(mdbgp.EngineNames(), ", ")+" (default gd)")
		reord   = flag.String("reorder", "", "vertex reordering for the gradient kernels: "+strings.Join(mdbgp.ReorderNames(), ", ")+" (results are byte-identical either way)")
		list    = flag.Bool("list", false, "list experiments and exit")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}

	scaleDiv, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	selected, err := selectExperiments(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var logSink io.Writer
	if !*quiet {
		logSink = os.Stderr
	}
	if *ml && *engine != "" && *engine != "multilevel" {
		fmt.Fprintf(os.Stderr, "experiments: conflicting -engine %s and -multilevel (the latter is an alias for -engine multilevel)\n", *engine)
		os.Exit(1)
	}
	if _, err := mdbgp.LookupEngine(*engine); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if err := mdbgp.ValidateReorder(*reord); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	ctx := experiments.NewContext(scaleDiv, *seed, logSink)
	ctx.Parallelism = *par
	ctx.Multilevel = *ml || *engine == "multilevel"
	ctx.Engine = *engine
	ctx.EngineSolve = func(g *mdbgp.Graph, ws [][]float64, k int) (*mdbgp.Assignment, error) {
		res, err := mdbgp.Partition(g, mdbgp.Options{
			Engine: *engine, K: k, Weights: ws,
			Seed: *seed, Parallelism: *par, Reorder: *reord,
		})
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}

	if err := runExperiments(ctx, selected, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
