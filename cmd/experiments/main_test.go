package main

import (
	"bytes"
	"strings"
	"testing"

	"mdbgp/internal/experiments"
)

func TestParseScale(t *testing.T) {
	if d, err := parseScale("full"); err != nil || d != 1 {
		t.Fatalf("full: %d %v", d, err)
	}
	if d, err := parseScale("quick"); err != nil || d != 8 {
		t.Fatalf("quick: %d %v", d, err)
	}
	if _, err := parseScale("tiny"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty registry")
	}

	first := all[0].Name
	one, err := selectExperiments(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Name != first {
		t.Fatalf("selected %v, want [%s]", one, first)
	}

	// Comma lists with whitespace and trailing separators.
	two, err := selectExperiments(" " + all[0].Name + " , " + all[1].Name + ", ")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("selected %d experiments, want 2", len(two))
	}

	if _, err := selectExperiments("no-such-experiment"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := selectExperiments(" , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	listExperiments(&buf)
	out := buf.String()
	for _, e := range experiments.All() {
		if !strings.Contains(out, e.Name) {
			t.Fatalf("listing lacks %q:\n%s", e.Name, out)
		}
	}
}

// TestRunExperimentsSmoke drives the real CLI path — selection, context,
// run, table rendering — on one experiment over heavily scaled-down
// datasets.
func TestRunExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke run in -short mode")
	}
	selected, err := selectExperiments("fig5")
	if err != nil {
		t.Fatal(err)
	}
	ctx := experiments.NewContext(32, 42, nil) // 32× smaller than paper-analog
	var out bytes.Buffer
	if err := runExperiments(ctx, selected, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "fig5") || !strings.Contains(text, "completed in") {
		t.Fatalf("unexpected output:\n%s", text)
	}
}
