package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"mdbgp"
	"mdbgp/internal/gen"
	"mdbgp/internal/server"
)

// BenchmarkServingE2E boots the daemon and drives it with concurrent mixed
// traffic (a few distinct graphs, many repeats), reporting the serving
// latency distribution and the cache hit rate. CI converts the output into
// BENCH_serving.json via cmd/benchjson:
//
//	go test -run '^$' -bench BenchmarkServingE2E -benchtime 1x ./cmd/mdbgpd \
//	  | go run ./cmd/benchjson -out BENCH_serving.json
func BenchmarkServingE2E(b *testing.B) {
	const (
		distinctGraphs = 4
		repeatsPer     = 8
		concurrency    = 8
	)
	bodies := make([][]byte, distinctGraphs)
	for i := range bodies {
		g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
			N: 2000, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: int64(100 + i),
		})
		var buf bytes.Buffer
		if err := mdbgp.WriteEdgeList(&buf, g); err != nil {
			b.Fatal(err)
		}
		bodies[i] = buf.Bytes()
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runDaemon(server.Config{Workers: 4, QueueDepth: 256}, "127.0.0.1:0", ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		b.Fatalf("daemon failed to boot: %v", err)
	}

	var latencies []time.Duration
	var mu sync.Mutex
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		requests := make(chan int, distinctGraphs*repeatsPer)
		for i := 0; i < distinctGraphs*repeatsPer; i++ {
			requests <- i % distinctGraphs
		}
		close(requests)
		var wg sync.WaitGroup
		for c := 0; c < concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for gi := range requests {
					start := time.Now()
					resp, err := http.Post(
						fmt.Sprintf("%s/v1/partition?k=4&iters=40&seed=3&wait=true", base),
						"text/plain", bytes.NewReader(bodies[gi]))
					if err != nil {
						b.Error(err)
						return
					}
					var m map[string]any
					json.NewDecoder(resp.Body).Decode(&m)
					resp.Body.Close()
					if m["status"] != "done" {
						b.Errorf("request did not finish synchronously: %v", m)
						return
					}
					mu.Lock()
					latencies = append(latencies, time.Since(start))
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		p50 := latencies[len(latencies)/2]
		p99 := latencies[len(latencies)*99/100]
		b.ReportMetric(p50.Seconds()*1e3, "p50_ms")
		b.ReportMetric(p99.Seconds()*1e3, "p99_ms")
	}

	// Scrape the daemon's own accounting for the hit rate.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	var hits, misses float64
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		fmt.Sscanf(string(line), "mdbgpd_cache_hits_total %g", &hits)
		fmt.Sscanf(string(line), "mdbgpd_cache_misses_total %g", &misses)
	}
	if hits+misses > 0 {
		b.ReportMetric(hits/(hits+misses), "cache_hit_rate")
	}
	b.ReportMetric(float64(len(latencies)), "requests")

	stopDaemon(b, errc)
}

// BenchmarkIncrementalE2E measures the incremental-repartitioning payoff on
// a ≥100k-edge graph with ≤1% edge churn, through the daemon's real HTTP
// surface: a cold solve of the delta-materialized target graph versus the
// same target submitted as an edge delta (?base=) warm-started from the
// cached base solution. It reports the warm/cold speedup and the uncut
// (edge-locality) delta; CI publishes the output as BENCH_incremental.json
// and gates on speedup >= 2 at locality_delta >= 0 via cmd/benchgate:
//
//	go test -run '^$' -bench BenchmarkIncrementalE2E -benchtime 1x ./cmd/mdbgpd \
//	  | go run ./cmd/benchjson -out BENCH_incremental.json
func BenchmarkIncrementalE2E(b *testing.B) {
	base, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 25000, Communities: 8, AvgDegree: 10, InFraction: 0.85, Seed: 7,
	})
	var baseBody bytes.Buffer
	if err := mdbgp.WriteEdgeList(&baseBody, base); err != nil {
		b.Fatal(err)
	}

	// ~1% churn: remove one existing edge and add one fresh edge per ~200
	// base edges.
	d := gen.PerturbDelta(base, int(base.M())/600, 17, 31)
	var deltaBody bytes.Buffer
	if err := mdbgp.WriteEdgeDelta(&deltaBody, d); err != nil {
		b.Fatal(err)
	}
	target, stats := mdbgp.ApplyEdgeDelta(base, d)
	var targetBody bytes.Buffer
	if err := mdbgp.WriteEdgeList(&targetBody, target); err != nil {
		b.Fatal(err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runDaemon(server.Config{Workers: 1, QueueDepth: 16}, "127.0.0.1:0", ready) }()
	var baseURL string
	select {
	case addr := <-ready:
		baseURL = "http://" + addr
	case err := <-errc:
		b.Fatalf("daemon failed to boot: %v", err)
	}

	post := func(query string, body []byte) (map[string]any, time.Duration) {
		start := time.Now()
		resp, err := http.Post(baseURL+"/v1/partition?"+query, "text/plain", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if m["status"] != "done" {
			b.Fatalf("request did not finish synchronously: %v", m)
		}
		return m, elapsed
	}
	locality := func(m map[string]any) float64 {
		resp, err := http.Get(baseURL + "/v1/jobs/" + m["job_id"].(string))
		if err != nil {
			b.Fatal(err)
		}
		var j map[string]any
		json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		res, _ := j["result"].(map[string]any)
		if res == nil {
			b.Fatalf("job has no result: %v", j)
		}
		return res["edge_locality"].(float64)
	}

	var coldMs, warmMs, coldLoc, warmLoc float64
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		// The seed varies per iteration so repeat iterations (b.N > 1) are
		// distinct requests instead of result-cache hits.
		params := fmt.Sprintf("k=8&seed=%d&wait=true", 42+iter)
		// Base cold solve seeds the graph and result caches (not timed).
		mBase, _ := post(params, baseBody.Bytes())
		baseID := mBase["job_id"].(string)

		// Cold solve of the full target graph.
		mCold, coldDur := post(params, targetBody.Bytes())
		if mCold["cache"] != "miss" {
			b.Fatalf("cold solve unexpectedly cached: %v", mCold)
		}
		// The same target as a delta, warm-started from the base solution.
		mWarm, warmDur := post(params+"&base="+baseID, deltaBody.Bytes())
		dv, _ := mWarm["delta"].(map[string]any)
		if dv == nil || dv["mode"] != "warm" {
			b.Fatalf("delta solve was not warm: %v", mWarm)
		}
		coldMs = coldDur.Seconds() * 1e3
		warmMs = warmDur.Seconds() * 1e3
		coldLoc = locality(mCold)
		warmLoc = locality(mWarm)
	}
	b.StopTimer()

	b.ReportMetric(float64(target.M()), "edges")
	b.ReportMetric(stats.Churn(base.M()), "churn")
	b.ReportMetric(coldMs, "cold_ms")
	b.ReportMetric(warmMs, "warm_ms")
	b.ReportMetric(coldMs/warmMs, "speedup")
	b.ReportMetric(coldLoc, "locality_cold")
	b.ReportMetric(warmLoc, "locality_warm")
	b.ReportMetric(warmLoc-coldLoc, "locality_delta")

	stopDaemon(b, errc)
}

// BenchmarkEnginesE2E is the cross-engine quality/latency shootout on one
// fixed clustered graph, through the daemon's real HTTP surface: every
// registered engine solves the same graph and reports its edge locality and
// p50 serving latency as locality_<engine> / p50_ms_<engine>. CI publishes
// the output as BENCH_engines.json and gates via cmd/benchgate that gd and
// multilevel locality stay within the committed baseline while every engine
// completes under a latency ceiling:
//
//	go test -run '^$' -bench BenchmarkEnginesE2E -benchtime 1x ./cmd/mdbgpd \
//	  | go run ./cmd/benchjson -out BENCH_engines.json
func BenchmarkEnginesE2E(b *testing.B) {
	const repeats = 3 // timed solves per engine, distinct seeds so none hits the cache
	// Many small communities (~25 vertices each): the regime where cluster
	// coarsening genuinely absorbs structure, so the multilevel row measures
	// a real V-cycle instead of its direct-GD fallback.
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 20000, Communities: 800, AvgDegree: 12, InFraction: 0.85, Seed: 5,
	})
	var body bytes.Buffer
	if err := mdbgp.WriteEdgeList(&body, g); err != nil {
		b.Fatal(err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runDaemon(server.Config{Workers: 1, QueueDepth: 64}, "127.0.0.1:0", ready) }()
	var baseURL string
	select {
	case addr := <-ready:
		baseURL = "http://" + addr
	case err := <-errc:
		b.Fatalf("daemon failed to boot: %v", err)
	}

	solve := func(engine string, seed int) (map[string]any, time.Duration) {
		start := time.Now()
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/partition?k=8&seed=%d&engine=%s&wait=true", baseURL, seed, engine),
			"text/plain", bytes.NewReader(body.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if m["status"] != "done" {
			b.Fatalf("engine %s did not finish synchronously: %v", engine, m)
		}
		if m["cache"] != "miss" {
			b.Fatalf("engine %s seed %d was served from cache; latency would be meaningless", engine, seed)
		}
		return m, elapsed
	}
	locality := func(m map[string]any) float64 {
		resp, err := http.Get(baseURL + "/v1/jobs/" + m["job_id"].(string))
		if err != nil {
			b.Fatal(err)
		}
		var j map[string]any
		json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		res, _ := j["result"].(map[string]any)
		if res == nil {
			b.Fatalf("job has no result: %v", j)
		}
		return res["edge_locality"].(float64)
	}

	type outcome struct {
		locality float64
		p50      time.Duration
	}
	results := map[string]outcome{}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for _, engine := range mdbgp.EngineNames() {
			lats := make([]time.Duration, repeats)
			loc := results[engine].locality
			for rep := 0; rep < repeats; rep++ {
				// Seeds vary per repeat (and per b.N iteration) so repeats are
				// real solves; locality is always reported from the seed 42
				// run (iter 0, rep 0) so the CI gate compares like with like
				// across commits at any -benchtime.
				seed := 42 + rep + iter*repeats
				m, elapsed := solve(engine, seed)
				lats[rep] = elapsed
				if iter == 0 && rep == 0 {
					loc = locality(m)
				}
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			results[engine] = outcome{locality: loc, p50: lats[len(lats)/2]}
		}
	}
	b.StopTimer()

	for engine, r := range results {
		b.ReportMetric(r.locality, "locality_"+engine)
		b.ReportMetric(r.p50.Seconds()*1e3, "p50_ms_"+engine)
	}
	b.ReportMetric(float64(g.M()), "edges")
	b.ReportMetric(float64(len(results)), "engines")

	stopDaemon(b, errc)
}

// BenchmarkTraceOverhead prices the observability layer where it matters:
// solve wall time on the 573k-edge benchmark graph, with a span observer
// attached versus without. Traced and untraced solves alternate in pairs and
// each mode keeps its minimum (robust to scheduler noise on shared runners);
// CI records overhead_pct in BENCH_serving.json and gates it below 2 via
// cmd/benchgate:
//
//	go test -run '^$' -bench BenchmarkTraceOverhead -benchtime 1x ./cmd/mdbgpd \
//	  | go run ./cmd/benchjson -out BENCH_serving.json
func BenchmarkTraceOverhead(b *testing.B) {
	// The 573k-edge multilevel benchmark instance (m = 573104).
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 100000, Communities: 4000, AvgDegree: 14, InFraction: 0.8, Seed: 17,
	})
	ws, err := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if err != nil {
		b.Fatal(err)
	}
	opts := mdbgp.Options{K: 2, Epsilon: 0.05, Weights: ws, Iterations: 100, Seed: 42}

	var spanCount int
	solve := func(traced bool) time.Duration {
		o := opts
		var tr *mdbgp.Span
		if traced {
			tr = mdbgp.NewTrace("solve")
			o.Observer = tr
		}
		// A fresh GC boundary gives both modes identical heap headroom;
		// without it a collection cycle can phase-lock with the pair
		// alternation and land systematically in one mode's solves.
		runtime.GC()
		start := time.Now()
		if _, err := mdbgp.Partition(g, o); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		if traced {
			tr.End()
			spanCount = tr.Snapshot().CountSpans()
		}
		return elapsed
	}

	// Paired minima alone still inherit one process-wide accident: where the
	// allocator happens to place the solver's hot vectors relative to the
	// tracing structures, which can tax every traced (or every plain) solve
	// of a process via cache aliasing. Sampling several heap layouts — a
	// different-sized slab allocated between epochs shifts subsequent large
	// allocations — and taking minima across all of them isolates the
	// algorithmic tracing cost from that placement luck.
	const (
		epochs = 4
		pairs  = 3
	)
	solve(false) // warm the page cache and per-size buffer pools (not timed)
	solve(true)
	minPlain, minTraced := time.Duration(1<<62), time.Duration(1<<62)
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		for e := 0; e < epochs; e++ {
			perturb := make([]byte, 4096+(e*123457)%(512*1024))
			perturb[len(perturb)-1] = 1
			runtime.KeepAlive(perturb)
			for p := 0; p < pairs; p++ {
				if d := solve(false); d < minPlain {
					minPlain = d
				}
				if d := solve(true); d < minTraced {
					minTraced = d
				}
			}
		}
	}
	b.StopTimer()

	if spanCount < 2 {
		b.Fatalf("traced solve produced a trivial span tree (%d spans)", spanCount)
	}
	b.ReportMetric(minPlain.Seconds()*1e3, "plain_ms")
	b.ReportMetric(minTraced.Seconds()*1e3, "traced_ms")
	b.ReportMetric((minTraced.Seconds()/minPlain.Seconds()-1)*100, "overhead_pct")
	b.ReportMetric(float64(spanCount), "trace_spans")
	b.ReportMetric(float64(g.M()), "edges")
}

// stopDaemon terminates the daemon booted by run via the same signal path
// the operator would use.
func stopDaemon(b *testing.B, errc chan error) {
	b.Helper()
	if err := selfTerm(); err != nil {
		b.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			b.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		b.Fatal("daemon did not shut down")
	}
}
