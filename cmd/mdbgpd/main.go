// Command mdbgpd is the partitioning-as-a-service daemon: a long-running
// HTTP server wrapping the mdbgp engine with a bounded async job queue, a
// worker pool and a content-addressed LRU result cache (internal/server).
//
// Usage:
//
//	mdbgpd -addr :8080 -workers 4 -queue 128 -cache 512
//
//	# submit a job (body = edge list, options = query params)
//	curl -s --data-binary @graph.txt 'localhost:8080/v1/partition?k=8&seed=42'
//	# pick a solver engine per request (gd, multilevel, fennel, blp, shp, metis)
//	curl -s --data-binary @graph.txt 'localhost:8080/v1/partition?k=8&engine=fennel'
//	# poll it
//	curl -s localhost:8080/v1/jobs/j1-ab12cd34
//	# fetch the assignment ("vertex part" lines)
//	curl -s localhost:8080/v1/jobs/j1-ab12cd34/assignment
//	# fetch the request's span tree: ingest, queue wait, and the solve's
//	# internal phases with per-bisection convergence telemetry
//	curl -s localhost:8080/v1/jobs/j1-ab12cd34/trace
//	# or block until solved (bounded by -maxwait)
//	curl -s --data-binary @graph.txt 'localhost:8080/v1/partition?k=8&wait=true'
//	# incremental: submit an edge delta against a previous job; the solve
//	# warm-starts from the cached base solution
//	printf '+12 99\n-4 7\n' | curl -s --data-binary @- \
//	  'localhost:8080/v1/partition?k=8&seed=42&base=j1-ab12cd34&wait=true'
//
// Observability: structured logs go to stderr (-log-format json for
// machine-readable records, -slow to tune the slow-solve warning threshold),
// GET /metrics serves Prometheus counters, gauges and latency histograms,
// GET /readyz flips to 503 during the -drain-grace window after SIGTERM so
// load balancers stop routing before the listener closes, and -pprof-addr
// exposes net/http/pprof on a separate listener (off by default — profiling
// endpoints do not belong on the serving port).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mdbgp"
	"mdbgp/internal/server"
	"mdbgp/internal/wire"
)

func main() {
	d, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdbgpd: %v\n", err)
		os.Exit(2)
	}
	if err := run(d, nil); err != nil {
		fmt.Fprintf(os.Stderr, "mdbgpd: %v\n", err)
		os.Exit(1)
	}
}

// daemonOptions is the parsed command line: the server configuration plus
// the process-level knobs (listeners, logging, drain behavior) that live
// outside server.Config.
type daemonOptions struct {
	cfg        server.Config
	addr       string
	pprofAddr  string        // "" = pprof off
	logFormat  string        // "text" or "json"
	drainGrace time.Duration // how long /readyz says 503 before Shutdown starts
	self       string        // this replica's ring identity (its routable base URL)
	peers      []string      // peer base URLs to warm the disk tier from at startup
	warmConc   int           // concurrent peer fetches during warming
}

// parseFlags maps the command line onto daemonOptions.
func parseFlags(args []string) (daemonOptions, error) {
	fs := flag.NewFlagSet("mdbgpd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 2, "concurrent partition jobs")
		queue       = fs.Int("queue", 64, "pending-job queue depth (beyond it submissions get 429)")
		cache       = fs.Int("cache", 256, "result-cache capacity in entries (negative disables)")
		maxBodyMB   = fs.Int64("max-body-mb", 256, "request body limit in MiB")
		maxVertexID = fs.Int("max-vertex-id", 0, "largest accepted vertex id (0 = 16M default; negative = representation limit)")
		par         = fs.Int("p", 0, "solver parallelism per job: 0 = all cores (results are seed-deterministic either way)")
		retain      = fs.Int("retain", 1024, "completed jobs kept for polling")
		maxWait     = fs.Duration("maxwait", 30*time.Second, "cap on ?wait=true blocking")
		graphCache  = fs.Int("graph-cache", 64, "base graphs kept for delta (?base=) submissions (negative disables)")
		maxChurn    = fs.Float64("max-churn", 0.25, "edge-churn fraction above which delta solves go cold instead of warm-starting (0 never warm-starts)")
		maxChain    = fs.Int("max-chain-depth", 8, "warm delta-of-delta hops allowed before forcing a cold re-solve (<=0 lifts the limit)")
		reorderDef  = fs.String("reorder", "", "default vertex reordering for the gradient kernels ("+strings.Join(mdbgp.ReorderNames(), ", ")+"); per-request ?reorder= overrides")
		prepCache   = fs.Int64("prep-cache", 256, "prep-artifact cache budget in MiB: reorder layouts and coarsening hierarchies are retained per graph and reused by repeat solves (results are byte-identical either way; <=0 disables)")
		pprofAddr   = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
		slow        = fs.Duration("slow", 0, "solve duration above which a job is logged at Warn (0 = 2s default, negative disables)")
		noTrace     = fs.Bool("no-trace", false, "disable per-request span traces (and GET /v1/jobs/{id}/trace)")
		drainGrace  = fs.Duration("drain-grace", 0, "after SIGTERM, keep serving with /readyz=503 this long before closing the listener")
		cacheDir    = fs.String("cache-dir", "", "directory for the durable result-cache tier (empty = memory-only); completed results spill here and survive restarts")
		trustHash   = fs.Bool("trust-hash-header", false, "accept "+server.GraphHashHeader+" as the canonical graph hash; enable ONLY behind a trusted router (cmd/mdbgp-router)")
		self        = fs.String("self", "", "this replica's base URL as the routing tier knows it (its consistent-hash ring identity); required with -peers")
		peers       = fs.String("peers", "", "comma-separated peer base URLs to warm the -cache-dir tier from at startup")
		warmConc    = fs.Int("warm-concurrency", 4, "concurrent peer fetches during startup cache warming")
		maxResident = fs.Int64("max-resident-edges", 0, "largest graph (edges) materialized in memory; binary (Content-Type: "+wire.ContentType+") uploads above it spill to disk and solve out-of-core via a streaming engine (0 = unlimited)")
		spillDir    = fs.String("spill-dir", "", "directory for out-of-core spill files (empty = OS temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return daemonOptions{}, err
	}
	if fs.NArg() > 0 {
		return daemonOptions{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if err := mdbgp.ValidateReorder(*reorderDef); err != nil {
		return daemonOptions{}, err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return daemonOptions{}, fmt.Errorf("bad -log-format %q (want text or json)", *logFormat)
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	// Warming constraints fail fast at flag time, not as a silent no-op at
	// startup: peers without a ring identity cannot resolve ownership, and
	// without a durable tier there is nowhere to put what warming fetches.
	if len(peerList) > 0 && *self == "" {
		return daemonOptions{}, errors.New("-peers requires -self (this replica's ring identity)")
	}
	if len(peerList) > 0 && *cacheDir == "" {
		return daemonOptions{}, errors.New("-peers requires -cache-dir (warming fills the durable tier)")
	}
	if *cacheDir != "" {
		// Fail fast on an unusable cache dir (typo, permissions): the server
		// itself degrades to memory-only on open errors, which is right for a
		// library but wrong for an operator who explicitly asked for it.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			return daemonOptions{}, fmt.Errorf("-cache-dir: %w", err)
		}
	}
	if *spillDir != "" {
		// Same fail-fast: an unusable spill dir would otherwise surface as a
		// 500 on the first out-of-core submission, long after startup.
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			return daemonOptions{}, fmt.Errorf("-spill-dir: %w", err)
		}
	}
	d := daemonOptions{
		cfg: server.Config{
			Workers:           *workers,
			QueueDepth:        *queue,
			CacheEntries:      *cache,
			MaxBodyBytes:      *maxBodyMB << 20,
			MaxVertexID:       *maxVertexID,
			Parallelism:       *par,
			RetainJobs:        *retain,
			MaxWait:           *maxWait,
			GraphCacheEntries: *graphCache,
			MaxChurn:          *maxChurn,
			MaxChainDepth:     *maxChain,
			Reorder:           *reorderDef,
			PrepCacheBytes:    *prepCache << 20,
			SlowRequest:       *slow,
			DisableTracing:    *noTrace,
			CacheDir:          *cacheDir,
			TrustHashHeader:   *trustHash,
			MaxResidentEdges:  *maxResident,
			SpillDir:          *spillDir,
		},
		addr:       *addr,
		pprofAddr:  *pprofAddr,
		logFormat:  *logFormat,
		drainGrace: *drainGrace,
		self:       *self,
		peers:      peerList,
		warmConc:   *warmConc,
	}
	if *maxChurn == 0 {
		// The Config zero value means "use the 25% default"; an operator
		// passing an explicit 0 means "never warm-start", which the config
		// spells as negative.
		d.cfg.MaxChurn = -1
	}
	if *maxChain <= 0 {
		// Same zero-value dance: an explicit 0 (or below) lifts the depth
		// limit, which the config spells as negative.
		d.cfg.MaxChainDepth = -1
	}
	if *prepCache <= 0 {
		// And again: an explicit -prep-cache=0 disables the cache, which the
		// config spells as negative (its zero value means "256 MiB default").
		d.cfg.PrepCacheBytes = -1
	}
	return d, nil
}

// newLogger builds the daemon's structured logger on stderr.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// run boots the service and blocks until SIGINT/SIGTERM or a serve error.
// ready, when non-nil, receives the bound address once listening — the e2e
// harness uses it to drive a daemon bound to port 0.
func run(d daemonOptions, ready chan<- string) error {
	logger := newLogger(d.logFormat)
	d.cfg.Logger = logger
	svc := server.New(d.cfg)
	defer svc.Close()
	httpSrv := &http.Server{Addr: d.addr, Handler: svc}

	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return err
	}
	if d.pprofAddr != "" {
		// pprof gets its own mux and listener: the serving mux must never
		// grow profiling endpoints, and an operator can firewall the two
		// ports independently.
		pln, err := net.Listen("tcp", d.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go http.Serve(pln, pmux)
		logger.Info("pprof serving", slog.String("addr", pln.Addr().String()))
	}
	// The signal handler must be registered before readiness is announced:
	// a supervisor (or the e2e harness) may react to "ready" with an
	// immediate SIGTERM, and an unhandled one kills the process outright.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	eff := svc.Config()
	logger.Info("serving",
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", eff.Workers),
		slog.Int("queue", eff.QueueDepth),
		slog.Int("cache", eff.CacheEntries),
		slog.Bool("tracing", !eff.DisableTracing))
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if len(d.peers) > 0 {
		// Self-warming runs behind the listener, not before it: the replica
		// serves (read-through finds entries as they land) while it pulls its
		// ring-owned keys from neighbors.
		go svc.WarmFromPeers(d.self, d.peers, d.warmConc)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		// Graceful drain: readiness flips first so load balancers stop
		// routing, the grace window lets them act on it, then Shutdown stops
		// accepting and waits for active handlers.
		logger.Info("shutting down", slog.String("signal", s.String()), slog.Duration("drain_grace", d.drainGrace))
		svc.SetDraining(true)
		if d.drainGrace > 0 {
			time.Sleep(d.drainGrace)
		}
		// The drain must outlast the longest a handler can legitimately
		// block: a ?wait=true submission waits up to MaxWait.
		ctx, cancel := context.WithTimeout(context.Background(), svc.Config().MaxWait+5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
