// Command mdbgpd is the partitioning-as-a-service daemon: a long-running
// HTTP server wrapping the mdbgp engine with a bounded async job queue, a
// worker pool and a content-addressed LRU result cache (internal/server).
//
// Usage:
//
//	mdbgpd -addr :8080 -workers 4 -queue 128 -cache 512
//
//	# submit a job (body = edge list, options = query params)
//	curl -s --data-binary @graph.txt 'localhost:8080/v1/partition?k=8&seed=42'
//	# pick a solver engine per request (gd, multilevel, fennel, blp, shp, metis)
//	curl -s --data-binary @graph.txt 'localhost:8080/v1/partition?k=8&engine=fennel'
//	# poll it
//	curl -s localhost:8080/v1/jobs/j1-ab12cd34
//	# fetch the assignment ("vertex part" lines)
//	curl -s localhost:8080/v1/jobs/j1-ab12cd34/assignment
//	# or block until solved (bounded by -maxwait)
//	curl -s --data-binary @graph.txt 'localhost:8080/v1/partition?k=8&wait=true'
//	# incremental: submit an edge delta against a previous job; the solve
//	# warm-starts from the cached base solution
//	printf '+12 99\n-4 7\n' | curl -s --data-binary @- \
//	  'localhost:8080/v1/partition?k=8&seed=42&base=j1-ab12cd34&wait=true'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mdbgp"
	"mdbgp/internal/server"
)

func main() {
	cfg, addr, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return // usage already printed
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdbgpd: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg, addr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "mdbgpd: %v\n", err)
		os.Exit(1)
	}
}

// parseFlags maps the command line onto a server.Config plus listen address.
func parseFlags(args []string) (server.Config, string, error) {
	fs := flag.NewFlagSet("mdbgpd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 2, "concurrent partition jobs")
		queue       = fs.Int("queue", 64, "pending-job queue depth (beyond it submissions get 429)")
		cache       = fs.Int("cache", 256, "result-cache capacity in entries (negative disables)")
		maxBodyMB   = fs.Int64("max-body-mb", 256, "request body limit in MiB")
		maxVertexID = fs.Int("max-vertex-id", 0, "largest accepted vertex id (0 = 16M default; negative = representation limit)")
		par         = fs.Int("p", 0, "solver parallelism per job: 0 = all cores (results are seed-deterministic either way)")
		retain      = fs.Int("retain", 1024, "completed jobs kept for polling")
		maxWait     = fs.Duration("maxwait", 30*time.Second, "cap on ?wait=true blocking")
		graphCache  = fs.Int("graph-cache", 64, "base graphs kept for delta (?base=) submissions (negative disables)")
		maxChurn    = fs.Float64("max-churn", 0.25, "edge-churn fraction above which delta solves go cold instead of warm-starting (0 never warm-starts)")
		maxChain    = fs.Int("max-chain-depth", 8, "warm delta-of-delta hops allowed before forcing a cold re-solve (<=0 lifts the limit)")
		reorderDef  = fs.String("reorder", "", "default vertex reordering for the gradient kernels ("+strings.Join(mdbgp.ReorderNames(), ", ")+"); per-request ?reorder= overrides")
	)
	if err := fs.Parse(args); err != nil {
		return server.Config{}, "", err
	}
	if fs.NArg() > 0 {
		return server.Config{}, "", fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if err := mdbgp.ValidateReorder(*reorderDef); err != nil {
		return server.Config{}, "", err
	}
	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheEntries:      *cache,
		MaxBodyBytes:      *maxBodyMB << 20,
		MaxVertexID:       *maxVertexID,
		Parallelism:       *par,
		RetainJobs:        *retain,
		MaxWait:           *maxWait,
		GraphCacheEntries: *graphCache,
		MaxChurn:          *maxChurn,
		MaxChainDepth:     *maxChain,
		Reorder:           *reorderDef,
	}
	if *maxChurn == 0 {
		// The Config zero value means "use the 25% default"; an operator
		// passing an explicit 0 means "never warm-start", which the config
		// spells as negative.
		cfg.MaxChurn = -1
	}
	if *maxChain <= 0 {
		// Same zero-value dance: an explicit 0 (or below) lifts the depth
		// limit, which the config spells as negative.
		cfg.MaxChainDepth = -1
	}
	return cfg, *addr, nil
}

// run boots the service and blocks until SIGINT/SIGTERM or a serve error.
// ready, when non-nil, receives the bound address once listening — the e2e
// harness uses it to drive a daemon bound to port 0.
func run(cfg server.Config, addr string, ready chan<- string) error {
	svc := server.New(cfg)
	defer svc.Close()
	httpSrv := &http.Server{Addr: addr, Handler: svc}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	eff := svc.Config()
	log.Printf("mdbgpd: serving on %s (workers=%d queue=%d cache=%d)", ln.Addr(), eff.Workers, eff.QueueDepth, eff.CacheEntries)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		log.Printf("mdbgpd: %v, shutting down", s)
		// The drain must outlast the longest a handler can legitimately
		// block: a ?wait=true submission waits up to MaxWait.
		ctx, cancel := context.WithTimeout(context.Background(), svc.Config().MaxWait+5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
