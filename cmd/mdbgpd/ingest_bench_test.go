package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"mdbgp"
	"mdbgp/internal/server"
	"mdbgp/internal/wire"
)

// BenchmarkIngest measures the two ingest paths end to end. First it parses
// the same ~1.5M-edge graph from both codecs — text edge list versus the
// binary wire format — doing exactly what the server's ingest does (bytes ->
// CSR -> content hash) and reports the throughput of each plus their ratio.
// Then it boots the daemon with a deliberately small -max-resident-edges
// budget and submits the binary body over real HTTP, so the out-of-core
// spill-and-stream path (ingest_mode=out-of-core, fennel) is exercised and
// timed as users would see it. CI publishes the output as BENCH_ingest.json
// and gates on binary_speedup >= 3 via cmd/benchgate:
//
//	go test -run '^$' -bench BenchmarkIngest -benchtime 1x ./cmd/mdbgpd \
//	  | go run ./cmd/benchjson -out BENCH_ingest.json
//	go run ./cmd/benchgate -bench BENCH_ingest.json \
//	  -min BenchmarkIngest.binary_speedup=3
func BenchmarkIngest(b *testing.B) {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 100_000, Communities: 16, AvgDegree: 30, InFraction: 0.85, Seed: 77,
	})
	var textBuf, binBuf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&textBuf, g); err != nil {
		b.Fatal(err)
	}
	if err := wire.Encode(&binBuf, g, nil); err != nil {
		b.Fatal(err)
	}
	textBody, binBody := textBuf.Bytes(), binBuf.Bytes()
	edges := float64(g.M())
	wantHash := g.HashString()

	// Parse throughput: the full ingest computation (decode + content hash),
	// best of a few rounds so a stray scheduling hiccup doesn't skew the
	// gated ratio.
	const rounds = 3
	parseText := func() time.Duration {
		start := time.Now()
		bld := mdbgp.NewBuilder(0)
		if err := mdbgp.ReadEdgeListInto(bld, bytes.NewReader(textBody), 0); err != nil {
			b.Fatal(err)
		}
		pg := bld.Build()
		if pg.HashString() != wantHash {
			b.Fatal("text parse changed the graph")
		}
		return time.Since(start)
	}
	parseBinary := func() time.Duration {
		start := time.Now()
		pg, _, err := wire.Decode(bytes.NewReader(binBody))
		if err != nil {
			b.Fatal(err)
		}
		if pg.HashString() != wantHash {
			b.Fatal("binary parse changed the graph")
		}
		return time.Since(start)
	}

	var textBest, binBest time.Duration
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		textBest, binBest = 0, 0
		for r := 0; r < rounds; r++ {
			if d := parseText(); textBest == 0 || d < textBest {
				textBest = d
			}
			if d := parseBinary(); binBest == 0 || d < binBest {
				binBest = d
			}
		}
	}
	b.StopTimer()

	b.ReportMetric(edges/textBest.Seconds()/1e6, "text_medges_per_s")
	b.ReportMetric(edges/binBest.Seconds()/1e6, "binary_medges_per_s")
	b.ReportMetric(textBest.Seconds()/binBest.Seconds(), "binary_speedup")
	b.ReportMetric(float64(len(textBody))/float64(len(binBody)), "size_ratio")

	// Out-of-core solve through the real HTTP surface: the budget is far
	// below m, so the daemon must spill to disk and stream through fennel.
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- runDaemon(server.Config{
			Workers: 2, MaxResidentEdges: 100_000, SpillDir: b.TempDir(),
		}, "127.0.0.1:0", ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		b.Fatalf("daemon failed to boot: %v", err)
	}

	start := time.Now()
	resp, err := http.Post(base+"/v1/partition?k=8&seed=3&wait=true",
		wire.ContentType, bytes.NewReader(binBody))
	if err != nil {
		b.Fatal(err)
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	oocSolve := time.Since(start)
	if m["status"] != "done" {
		b.Fatalf("out-of-core solve did not finish: %v", m)
	}
	if m["ingest_mode"] != "out-of-core" {
		b.Fatalf("ingest_mode = %v, want out-of-core", m["ingest_mode"])
	}
	if m["graph_hash"] != wantHash {
		b.Fatalf("graph_hash = %v, want %v", m["graph_hash"], wantHash)
	}
	res, err := http.Get(fmt.Sprintf("%s/v1/jobs/%v", base, m["job_id"]))
	if err != nil {
		b.Fatal(err)
	}
	var jv struct {
		Result struct {
			EdgeLocality float64 `json:"edge_locality"`
		} `json:"result"`
	}
	json.NewDecoder(res.Body).Decode(&jv)
	res.Body.Close()

	b.ReportMetric(oocSolve.Seconds()*1e3, "ooc_solve_ms")
	b.ReportMetric(jv.Result.EdgeLocality, "ooc_locality")
	b.ReportMetric(edges, "edges")

	stopDaemon(b, errc)
}
