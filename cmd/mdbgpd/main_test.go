package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"mdbgp"
	"mdbgp/internal/obs"
	"mdbgp/internal/server"
)

func TestParseFlagsDefaults(t *testing.T) {
	d, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.addr != ":8080" {
		t.Fatalf("addr = %q, want :8080", d.addr)
	}
	want := server.Config{
		Workers: 2, QueueDepth: 64, CacheEntries: 256,
		MaxBodyBytes: 256 << 20, RetainJobs: 1024, MaxWait: 30 * time.Second,
		GraphCacheEntries: 64, MaxChurn: 0.25, MaxChainDepth: 8,
		PrepCacheBytes: 256 << 20,
	}
	if d.cfg != want {
		t.Fatalf("cfg = %+v, want %+v", d.cfg, want)
	}
	if d.pprofAddr != "" || d.logFormat != "text" || d.drainGrace != 0 {
		t.Fatalf("daemon defaults = %+v, want pprof off, text logs, no drain grace", d)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	d, err := parseFlags([]string{
		"-addr", "127.0.0.1:9999", "-workers", "8", "-queue", "16",
		"-cache", "-1", "-max-body-mb", "1", "-max-vertex-id", "1000",
		"-p", "4", "-retain", "10", "-maxwait", "5s",
		"-graph-cache", "7", "-max-churn", "0.1", "-max-chain-depth", "3",
		"-pprof-addr", "127.0.0.1:6060", "-log-format", "json",
		"-slow", "1s", "-no-trace", "-drain-grace", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.addr != "127.0.0.1:9999" {
		t.Fatalf("addr = %q", d.addr)
	}
	want := server.Config{
		Workers: 8, QueueDepth: 16, CacheEntries: -1, MaxBodyBytes: 1 << 20,
		MaxVertexID: 1000, Parallelism: 4, RetainJobs: 10, MaxWait: 5 * time.Second,
		GraphCacheEntries: 7, MaxChurn: 0.1, MaxChainDepth: 3,
		PrepCacheBytes: 256 << 20,
		SlowRequest:    time.Second, DisableTracing: true,
	}
	if d.cfg != want {
		t.Fatalf("cfg = %+v, want %+v", d.cfg, want)
	}
	if d.pprofAddr != "127.0.0.1:6060" || d.logFormat != "json" || d.drainGrace != 250*time.Millisecond {
		t.Fatalf("daemon options = %+v", d)
	}
}

func TestParseFlagsZeroChurnMeansNeverWarm(t *testing.T) {
	// An explicit -max-churn 0 means "never warm-start"; the Config zero
	// value would silently become the 25% default, so parseFlags maps it to
	// the config's negative spelling.
	d, err := parseFlags([]string{"-max-churn", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.MaxChurn >= 0 {
		t.Fatalf("MaxChurn = %g, want negative (force cold)", d.cfg.MaxChurn)
	}
}

func TestParseFlagsZeroPrepCacheDisables(t *testing.T) {
	// An explicit -prep-cache 0 disables prep-artifact caching; the Config
	// zero value would silently become the 256 MiB default, so parseFlags
	// maps it to the config's negative spelling.
	d, err := parseFlags([]string{"-prep-cache", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.PrepCacheBytes >= 0 {
		t.Fatalf("PrepCacheBytes = %d, want negative (disabled)", d.cfg.PrepCacheBytes)
	}
}

func TestParseFlagsZeroChainDepthLiftsLimit(t *testing.T) {
	// An explicit -max-chain-depth 0 lifts the warm-chain depth limit; the
	// Config zero value would silently become the default of 8, so
	// parseFlags maps it to the config's negative spelling.
	d, err := parseFlags([]string{"-max-chain-depth", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.MaxChainDepth >= 0 {
		t.Fatalf("MaxChainDepth = %d, want negative (unlimited)", d.cfg.MaxChainDepth)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp (main exits 0 on it)", err)
	}
	if _, err := parseFlags([]string{"stray-positional"}); err == nil {
		t.Fatal("positional argument accepted")
	}
	if _, err := parseFlags([]string{"-workers", "x"}); err == nil {
		t.Fatal("non-integer flag value accepted")
	}
	if _, err := parseFlags([]string{"-log-format", "xml"}); err == nil {
		t.Fatal("bad log format accepted")
	}
}

// bootDaemon starts the real daemon (TCP listener, HTTP server, signal
// handling) on an ephemeral port and returns its base URL plus a channel
// that yields run's error after shutdown.
func bootDaemon(t *testing.T, cfg server.Config) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- runDaemon(cfg, "127.0.0.1:0", ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, errc
	case err := <-errc:
		t.Fatalf("daemon failed to boot: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return "", nil
}

// runDaemon adapts the test and benchmark harness's (cfg, addr) convention
// onto run's daemonOptions.
func runDaemon(cfg server.Config, addr string, ready chan<- string) error {
	return run(daemonOptions{cfg: cfg, addr: addr, logFormat: "text"}, ready)
}

// selfTerm delivers SIGTERM to the test process; the daemon's signal
// handler consumes it and shuts down gracefully.
func selfTerm() error { return syscall.Kill(os.Getpid(), syscall.SIGTERM) }

func graphBody(t *testing.T, seed int64) []byte {
	t.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 300, Communities: 3, AvgDegree: 8, InFraction: 0.85, Seed: seed,
	})
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonEndToEnd boots mdbgpd, drives the full submit→poll→assignment
// flow over real TCP, verifies a repeat request is served from the cache
// byte-identically, and shuts the daemon down via SIGTERM.
func TestDaemonEndToEnd(t *testing.T) {
	base, errc := bootDaemon(t, server.Config{Workers: 2})
	body := graphBody(t, 17)

	postJSON := func(query string) (int, map[string]any) {
		resp, err := http.Post(base+"/v1/partition?"+query, "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	fetch := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	if code, b := fetch("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, b)
	}

	code, m := postJSON("k=4&seed=42&iters=30&wait=true")
	if code != http.StatusOK || m["status"] != "done" {
		t.Fatalf("submit: %d %v", code, m)
	}
	id := m["job_id"].(string)
	code, a1 := fetch("/v1/jobs/" + id + "/assignment")
	if code != http.StatusOK {
		t.Fatalf("assignment: %d", code)
	}

	// Identical request through a fresh TCP connection: cache hit,
	// byte-identical assignment.
	code, m2 := postJSON("k=4&seed=42&iters=30&wait=true")
	if code != http.StatusOK || m2["cache"] != "hit" {
		t.Fatalf("repeat submit: %d %v", code, m2)
	}
	_, a2 := fetch("/v1/jobs/" + m2["job_id"].(string) + "/assignment")
	if !bytes.Equal(a1, a2) {
		t.Fatal("daemon cache hit returned different bytes")
	}

	code, page := fetch("/metrics")
	if code != http.StatusOK || !bytes.Contains(page, []byte("mdbgpd_cache_hits_total 1")) {
		t.Fatalf("metrics after hit: %d\n%s", code, page)
	}
	// The live scrape must pass the exposition linter and carry the latency
	// histograms — this is the serving-e2e CI gate's in-process half.
	if errs := obs.LintExposition(string(page)); len(errs) > 0 {
		t.Fatalf("live /metrics page fails exposition lint: %v", errs)
	}
	for _, series := range []string{
		`mdbgpd_solve_duration_seconds_bucket{engine="gd",le="+Inf"}`,
		"mdbgpd_queue_wait_seconds_count",
		"mdbgpd_ingest_duration_seconds_count",
	} {
		if !bytes.Contains(page, []byte(series)) {
			t.Fatalf("metrics page lacks %q", series)
		}
	}

	// The solved job's trace must be a non-empty span tree rooted at the
	// request span.
	code, traceBody := fetch("/v1/jobs/" + id + "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: %d %s", code, traceBody)
	}
	var span obs.SpanView
	if err := json.Unmarshal(traceBody, &span); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if span.Name != "request" || span.CountSpans() < 4 {
		t.Fatalf("trace is not a populated span tree: %s", span.Structure())
	}

	if code, b := fetch("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d %s", code, b)
	}

	// Graceful shutdown on SIGTERM.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestDaemonPprofEndpoint: -pprof-addr serves net/http/pprof on its own
// listener, and the profiling endpoints never leak onto the serving mux.
func TestDaemonPprofEndpoint(t *testing.T) {
	// Reserve an ephemeral port for pprof; the tiny close-then-rebind window
	// is the standard test trade-off for a listener the daemon must open
	// itself.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := ln.Addr().String()
	ln.Close()

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(daemonOptions{
			cfg: server.Config{Workers: 1}, addr: "127.0.0.1:0",
			pprofAddr: pprofAddr, logFormat: "text",
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon failed to boot: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint unreachable: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", resp.StatusCode)
	}
	// The serving port must NOT expose pprof.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof leaked onto the serving mux")
	}

	if err := selfTerm(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonDrainGrace: after SIGTERM the daemon keeps serving during the
// drain-grace window with /readyz at 503 (so load balancers pull it) while
// /healthz stays 200 (so supervisors do not kill it mid-drain).
func TestDaemonDrainGrace(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(daemonOptions{
			cfg: server.Config{Workers: 1}, addr: "127.0.0.1:0",
			logFormat: "text", drainGrace: 600 * time.Millisecond,
		}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon failed to boot: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	if err := selfTerm(); err != nil {
		t.Fatal(err)
	}
	// Inside the grace window the listener is still up; readiness must say
	// 503 and liveness 200.
	time.Sleep(150 * time.Millisecond)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz during drain grace: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain grace: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", resp.StatusCode)
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after the drain grace")
	}
}

// TestDaemonEngineGoldenDeterminism is the baseline engines' counterpart of
// the gd/multilevel golden suites: the committed social-400 fixture is
// submitted with ?engine=fennel / ?engine=shp to daemons running 1, 2 and 8
// workers, and every response must be byte-identical to the committed golden
// partition (testdata/golden/<engine>-k4-seed42.parts) — worker-count
// invariance and fixture agreement in one check.
func TestDaemonEngineGoldenDeterminism(t *testing.T) {
	fixture, err := os.ReadFile("../../testdata/golden/social-400.txt")
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	goldens := map[string][]byte{}
	for _, engine := range []string{"fennel", "shp"} {
		g, err := os.ReadFile("../../testdata/golden/" + engine + "-k4-seed42.parts")
		if err != nil {
			t.Fatalf("missing golden partition (generate with go test -run TestGolden -update .): %v", err)
		}
		goldens[engine] = g
	}
	for _, w := range []int{1, 2, 8} {
		base, errc := bootDaemon(t, server.Config{Workers: w, Parallelism: w})
		for engine, want := range goldens {
			resp, err := http.Post(
				fmt.Sprintf("%s/v1/partition?k=4&seed=42&engine=%s&wait=true", base, engine),
				"text/plain", bytes.NewReader(fixture))
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if m["status"] != "done" {
				t.Fatalf("workers=%d engine=%s: %v", w, engine, m)
			}
			if m["engine"] != engine {
				t.Fatalf("workers=%d: submit response reports engine %v, want %s", w, m["engine"], engine)
			}
			ar, err := http.Get(base + "/v1/jobs/" + m["job_id"].(string) + "/assignment")
			if err != nil {
				t.Fatal(err)
			}
			a, _ := io.ReadAll(ar.Body)
			ar.Body.Close()
			if !bytes.Equal(a, want) {
				t.Fatalf("workers=%d engine=%s: daemon assignment diverged from the committed golden", w, engine)
			}
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("workers=%d shutdown: %v", w, err)
		}
	}
}

// TestDaemonDeterminismAcrossWorkerCounts is the binary-level golden check:
// daemons configured with 1, 2 and 8 workers (queue and solver) must serve
// byte-identical assignments for a fixed seed.
func TestDaemonDeterminismAcrossWorkerCounts(t *testing.T) {
	body := graphBody(t, 23)
	var golden []byte
	for _, w := range []int{1, 2, 8} {
		base, errc := bootDaemon(t, server.Config{Workers: w, Parallelism: w})
		resp, err := http.Post(base+"/v1/partition?k=4&seed=7&iters=40&wait=true", "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if m["status"] != "done" {
			t.Fatalf("workers=%d: %v", w, m)
		}
		ar, err := http.Get(base + "/v1/jobs/" + m["job_id"].(string) + "/assignment")
		if err != nil {
			t.Fatal(err)
		}
		a, _ := io.ReadAll(ar.Body)
		ar.Body.Close()
		if golden == nil {
			golden = a
		} else if !bytes.Equal(golden, a) {
			t.Fatalf("workers=%d daemon diverged from workers=1", w)
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("workers=%d shutdown: %v", w, err)
		}
	}
	if len(golden) == 0 {
		t.Fatal("no assignment collected")
	}
}
