package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"mdbgp"
	"mdbgp/internal/server"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, addr, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":8080" {
		t.Fatalf("addr = %q, want :8080", addr)
	}
	want := server.Config{
		Workers: 2, QueueDepth: 64, CacheEntries: 256,
		MaxBodyBytes: 256 << 20, RetainJobs: 1024, MaxWait: 30 * time.Second,
		GraphCacheEntries: 64, MaxChurn: 0.25, MaxChainDepth: 8,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, addr, err := parseFlags([]string{
		"-addr", "127.0.0.1:9999", "-workers", "8", "-queue", "16",
		"-cache", "-1", "-max-body-mb", "1", "-max-vertex-id", "1000",
		"-p", "4", "-retain", "10", "-maxwait", "5s",
		"-graph-cache", "7", "-max-churn", "0.1", "-max-chain-depth", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:9999" {
		t.Fatalf("addr = %q", addr)
	}
	want := server.Config{
		Workers: 8, QueueDepth: 16, CacheEntries: -1, MaxBodyBytes: 1 << 20,
		MaxVertexID: 1000, Parallelism: 4, RetainJobs: 10, MaxWait: 5 * time.Second,
		GraphCacheEntries: 7, MaxChurn: 0.1, MaxChainDepth: 3,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
}

func TestParseFlagsZeroChurnMeansNeverWarm(t *testing.T) {
	// An explicit -max-churn 0 means "never warm-start"; the Config zero
	// value would silently become the 25% default, so parseFlags maps it to
	// the config's negative spelling.
	cfg, _, err := parseFlags([]string{"-max-churn", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxChurn >= 0 {
		t.Fatalf("MaxChurn = %g, want negative (force cold)", cfg.MaxChurn)
	}
}

func TestParseFlagsZeroChainDepthLiftsLimit(t *testing.T) {
	// An explicit -max-chain-depth 0 lifts the warm-chain depth limit; the
	// Config zero value would silently become the default of 8, so
	// parseFlags maps it to the config's negative spelling.
	cfg, _, err := parseFlags([]string{"-max-chain-depth", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxChainDepth >= 0 {
		t.Fatalf("MaxChainDepth = %d, want negative (unlimited)", cfg.MaxChainDepth)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: err = %v, want flag.ErrHelp (main exits 0 on it)", err)
	}
	if _, _, err := parseFlags([]string{"stray-positional"}); err == nil {
		t.Fatal("positional argument accepted")
	}
	if _, _, err := parseFlags([]string{"-workers", "x"}); err == nil {
		t.Fatal("non-integer flag value accepted")
	}
}

// bootDaemon starts the real daemon (TCP listener, HTTP server, signal
// handling) on an ephemeral port and returns its base URL plus a channel
// that yields run's error after shutdown.
func bootDaemon(t *testing.T, cfg server.Config) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(cfg, "127.0.0.1:0", ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, errc
	case err := <-errc:
		t.Fatalf("daemon failed to boot: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return "", nil
}

// selfTerm delivers SIGTERM to the test process; the daemon's signal
// handler consumes it and shuts down gracefully.
func selfTerm() error { return syscall.Kill(os.Getpid(), syscall.SIGTERM) }

func graphBody(t *testing.T, seed int64) []byte {
	t.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 300, Communities: 3, AvgDegree: 8, InFraction: 0.85, Seed: seed,
	})
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonEndToEnd boots mdbgpd, drives the full submit→poll→assignment
// flow over real TCP, verifies a repeat request is served from the cache
// byte-identically, and shuts the daemon down via SIGTERM.
func TestDaemonEndToEnd(t *testing.T) {
	base, errc := bootDaemon(t, server.Config{Workers: 2})
	body := graphBody(t, 17)

	postJSON := func(query string) (int, map[string]any) {
		resp, err := http.Post(base+"/v1/partition?"+query, "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	fetch := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	if code, b := fetch("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, b)
	}

	code, m := postJSON("k=4&seed=42&iters=30&wait=true")
	if code != http.StatusOK || m["status"] != "done" {
		t.Fatalf("submit: %d %v", code, m)
	}
	id := m["job_id"].(string)
	code, a1 := fetch("/v1/jobs/" + id + "/assignment")
	if code != http.StatusOK {
		t.Fatalf("assignment: %d", code)
	}

	// Identical request through a fresh TCP connection: cache hit,
	// byte-identical assignment.
	code, m2 := postJSON("k=4&seed=42&iters=30&wait=true")
	if code != http.StatusOK || m2["cache"] != "hit" {
		t.Fatalf("repeat submit: %d %v", code, m2)
	}
	_, a2 := fetch("/v1/jobs/" + m2["job_id"].(string) + "/assignment")
	if !bytes.Equal(a1, a2) {
		t.Fatal("daemon cache hit returned different bytes")
	}

	if code, b := fetch("/metrics"); code != http.StatusOK || !bytes.Contains(b, []byte("mdbgpd_cache_hits_total 1")) {
		t.Fatalf("metrics after hit: %d\n%s", code, b)
	}

	// Graceful shutdown on SIGTERM.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestDaemonEngineGoldenDeterminism is the baseline engines' counterpart of
// the gd/multilevel golden suites: the committed social-400 fixture is
// submitted with ?engine=fennel / ?engine=shp to daemons running 1, 2 and 8
// workers, and every response must be byte-identical to the committed golden
// partition (testdata/golden/<engine>-k4-seed42.parts) — worker-count
// invariance and fixture agreement in one check.
func TestDaemonEngineGoldenDeterminism(t *testing.T) {
	fixture, err := os.ReadFile("../../testdata/golden/social-400.txt")
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	goldens := map[string][]byte{}
	for _, engine := range []string{"fennel", "shp"} {
		g, err := os.ReadFile("../../testdata/golden/" + engine + "-k4-seed42.parts")
		if err != nil {
			t.Fatalf("missing golden partition (generate with go test -run TestGolden -update .): %v", err)
		}
		goldens[engine] = g
	}
	for _, w := range []int{1, 2, 8} {
		base, errc := bootDaemon(t, server.Config{Workers: w, Parallelism: w})
		for engine, want := range goldens {
			resp, err := http.Post(
				fmt.Sprintf("%s/v1/partition?k=4&seed=42&engine=%s&wait=true", base, engine),
				"text/plain", bytes.NewReader(fixture))
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if m["status"] != "done" {
				t.Fatalf("workers=%d engine=%s: %v", w, engine, m)
			}
			if m["engine"] != engine {
				t.Fatalf("workers=%d: submit response reports engine %v, want %s", w, m["engine"], engine)
			}
			ar, err := http.Get(base + "/v1/jobs/" + m["job_id"].(string) + "/assignment")
			if err != nil {
				t.Fatal(err)
			}
			a, _ := io.ReadAll(ar.Body)
			ar.Body.Close()
			if !bytes.Equal(a, want) {
				t.Fatalf("workers=%d engine=%s: daemon assignment diverged from the committed golden", w, engine)
			}
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("workers=%d shutdown: %v", w, err)
		}
	}
}

// TestDaemonDeterminismAcrossWorkerCounts is the binary-level golden check:
// daemons configured with 1, 2 and 8 workers (queue and solver) must serve
// byte-identical assignments for a fixed seed.
func TestDaemonDeterminismAcrossWorkerCounts(t *testing.T) {
	body := graphBody(t, 23)
	var golden []byte
	for _, w := range []int{1, 2, 8} {
		base, errc := bootDaemon(t, server.Config{Workers: w, Parallelism: w})
		resp, err := http.Post(base+"/v1/partition?k=4&seed=7&iters=40&wait=true", "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if m["status"] != "done" {
			t.Fatalf("workers=%d: %v", w, m)
		}
		ar, err := http.Get(base + "/v1/jobs/" + m["job_id"].(string) + "/assignment")
		if err != nil {
			t.Fatal(err)
		}
		a, _ := io.ReadAll(ar.Body)
		ar.Body.Close()
		if golden == nil {
			golden = a
		} else if !bytes.Equal(golden, a) {
			t.Fatalf("workers=%d daemon diverged from workers=1", w)
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("workers=%d shutdown: %v", w, err)
		}
	}
	if len(golden) == 0 {
		t.Fatal("no assignment collected")
	}
}
