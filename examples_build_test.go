package mdbgp

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesCompile builds every example program so the examples/ tree
// cannot rot: they are runnable documentation, never imported by anything,
// and would otherwise only break when a reader tries them. CI additionally
// vets them (see .github/workflows/ci.yml).
func TestExamplesCompile(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			cmd := exec.Command(goBin, "build", "-o", os.DevNull, "./"+filepath.Join("examples", dir))
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("example %s does not compile: %v\n%s", dir, err, out)
			}
		})
		built++
	}
	if built == 0 {
		t.Fatal("no example programs found under examples/")
	}
}
