package mdbgp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"mdbgp/internal/gen"
)

// warmScenario builds an incremental-repartitioning scenario: a base graph,
// its cold solution, and a target graph one small edge delta away.
func warmScenario(t testing.TB, k int) (base, target *Graph, baseRes *Result, opts Options) {
	t.Helper()
	base, _ = GenerateSocialGraph(SocialGraphConfig{
		N: 1200, Communities: 6, AvgDegree: 10, InFraction: 0.85, Seed: 99,
	})
	opts = Options{K: k, Seed: 42, Iterations: 60}
	var err error
	baseRes, err = Partition(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	// ~1% churn: drop every 100th edge, add a fresh edge per drop.
	target, _ = ApplyEdgeDelta(base, gen.PerturbDelta(base, 100, 7, 13))
	return base, target, baseRes, opts
}

// TestWarmDeterminismAcrossWorkers is the incremental determinism contract:
// the same seed and the same base assignment produce byte-identical warm
// partitions at any worker count, for both the direct and multilevel paths.
func TestWarmDeterminismAcrossWorkers(t *testing.T) {
	_, target, baseRes, opts := warmScenario(t, 4)
	for _, multilevel := range []bool{false, true} {
		o := opts
		o.Multilevel = multilevel
		var golden []int32
		for _, p := range []int{1, 2, 8} {
			o.Parallelism = p
			res, err := PartitionWarm(target, baseRes.Assignment.Parts, o)
			if err != nil {
				t.Fatal(err)
			}
			if golden == nil {
				golden = res.Assignment.Parts
				continue
			}
			for v := range golden {
				if golden[v] != res.Assignment.Parts[v] {
					t.Fatalf("multilevel=%t workers=%d: warm partition diverged at vertex %d", multilevel, p, v)
				}
			}
		}
	}
}

// TestWarmSolveQualityAndBalance: a warm solve over a small delta must stay
// ε-balanced and retain the base's locality (the whole point of reusing it).
func TestWarmSolveQualityAndBalance(t *testing.T) {
	_, target, baseRes, opts := warmScenario(t, 4)
	coldRes, err := Partition(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := PartitionWarm(target, baseRes.Assignment.Parts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := warmRes.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	ws, err := StandardWeights(target, WeightVertices, WeightEdges)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBalanced(warmRes.Assignment, ws, 0.05+0.03) {
		t.Fatalf("warm solve imbalance %.4f exceeds ε+slack", MaxImbalance(warmRes.Assignment, ws))
	}
	if warmRes.EdgeLocality < coldRes.EdgeLocality-0.02 {
		t.Fatalf("warm locality %.4f regressed past cold locality %.4f",
			warmRes.EdgeLocality, coldRes.EdgeLocality)
	}
	// The warm solve must actually track the base solution: most vertices
	// keep their prior part (up to a global part relabeling, which recursive
	// bisection does not do when warm-started from those very parts).
	same := 0
	for v, p := range baseRes.Assignment.Parts {
		if v < len(warmRes.Assignment.Parts) && warmRes.Assignment.Parts[v] == p {
			same++
		}
	}
	if frac := float64(same) / float64(len(baseRes.Assignment.Parts)); frac < 0.9 {
		t.Fatalf("warm solve kept only %.1f%% of the base assignment; the warm start was ignored", 100*frac)
	}
}

// TestWarmAssignmentValidation: length and shape errors fail fast.
func TestWarmAssignmentValidation(t *testing.T) {
	g, _ := testGraph()
	warm := make([]int32, g.N()+1)
	if _, err := PartitionWarm(g, warm, Options{K: 2}); err == nil {
		t.Fatal("oversized warm assignment should error")
	}
	// Shorter is allowed: new vertices are padded neutral.
	short := make([]int32, g.N()/2)
	if _, err := PartitionWarm(g, short, Options{K: 2, Iterations: 20}); err != nil {
		t.Fatal(err)
	}
	// Negative part values are "no opinion", not an error.
	junk := make([]int32, g.N())
	for i := range junk {
		junk[i] = -1
	}
	if _, err := PartitionWarm(g, junk, Options{K: 2, Iterations: 20}); err != nil {
		t.Fatal(err)
	}
	// Part ids >= K mean the base was solved with a different K; silently
	// treating them as neutral would hand most of the graph a no-opinion
	// warm start at the reduced warm budget — fail fast instead.
	mismatched := make([]int32, g.N())
	for i := range mismatched {
		mismatched[i] = int32(i % 4)
	}
	if _, err := PartitionWarm(g, mismatched, Options{K: 2, Iterations: 20}); err == nil {
		t.Fatal("warm assignment from a larger K should error")
	}
	// Part ids below -1 are corrupt, not "no opinion": only -1 carries that
	// meaning, and anything further negative would silently flow into the
	// damped ±1 encoding.
	corrupt := make([]int32, g.N())
	corrupt[3] = -5
	if _, err := PartitionWarm(g, corrupt, Options{K: 2, Iterations: 20}); err == nil {
		t.Fatal("warm assignment with part id < -1 should error")
	}
}

// TestValidateWarmAssignmentTyped: validation failures carry the typed
// *WarmAssignmentError so front ends can classify them as client input
// errors (HTTP 400) rather than solver faults.
func TestValidateWarmAssignmentTyped(t *testing.T) {
	var wae *WarmAssignmentError
	if err := ValidateWarmAssignment([]int32{0, 1, 7}, 10, 4); !errors.As(err, &wae) {
		t.Fatalf("out-of-range part: got %T (%v), want *WarmAssignmentError", err, err)
	} else if wae.Vertex != 2 || wae.Part != 7 || wae.K != 4 {
		t.Fatalf("error fields %+v do not locate the violation", wae)
	}
	if err := ValidateWarmAssignment([]int32{-2}, 10, 4); !errors.As(err, &wae) {
		t.Fatalf("sub--1 part: got %T, want *WarmAssignmentError", err)
	}
	if err := ValidateWarmAssignment(make([]int32, 11), 10, 4); !errors.As(err, &wae) {
		t.Fatalf("oversized slice: got %T, want *WarmAssignmentError", err)
	} else if wae.Vertex != -1 || wae.Len != 11 || wae.N != 10 {
		t.Fatalf("length-error fields %+v", wae)
	}
	if err := ValidateWarmAssignment([]int32{-1, 0, 3}, 10, 4); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	// The library entry points surface the same typed error.
	g, _ := testGraph()
	bad := make([]int32, g.N())
	bad[0] = 99
	if _, err := PartitionWarm(g, bad, Options{K: 2, Iterations: 20}); !errors.As(err, &wae) {
		t.Fatalf("PartitionWarm: got %T (%v), want *WarmAssignmentError", err, err)
	}
}

func TestCanonicalWarmKnobs(t *testing.T) {
	c := Options{WarmAssignment: []int32{0, 1}}.Canonical()
	if c.WarmIterations != 25 {
		t.Fatalf("warm iterations default = %d, want 25 (a quarter of 100)", c.WarmIterations)
	}
	// WarmIterations without a warm assignment is inert and must be zeroed
	// so near-duplicate requests share a fingerprint.
	c = Options{WarmIterations: 30}.Canonical()
	if c.WarmIterations != 0 {
		t.Fatalf("inert WarmIterations survived canonicalization: %+v", c)
	}
}

func TestFingerprintWarmAssignment(t *testing.T) {
	cold := Options{}.Fingerprint()
	warmA := Options{WarmAssignment: []int32{0, 1, 0}}.Fingerprint()
	warmB := Options{WarmAssignment: []int32{0, 1, 1}}.Fingerprint()
	if warmA == cold {
		t.Fatal("warm-started options must not share the cold fingerprint (different trajectory, different result)")
	}
	if warmA == warmB {
		t.Fatal("different warm assignments must fingerprint differently")
	}
	if warmA != (Options{WarmAssignment: []int32{0, 1, 0}}).Fingerprint() {
		t.Fatal("equal warm assignments must fingerprint equally")
	}
}

func TestReadAssignment(t *testing.T) {
	parts, err := ReadAssignment(strings.NewReader("# header\n0 1\n2 0\n1 3\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 3, 0}
	if len(parts) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(parts), len(want))
	}
	for i, p := range want {
		if parts[i] != p {
			t.Fatalf("parts[%d] = %d, want %d", i, parts[i], p)
		}
	}
	// Gaps are -1 (no prior opinion).
	parts, err = ReadAssignment(strings.NewReader("0 1\n3 2\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 || parts[1] != -1 || parts[2] != -1 {
		t.Fatalf("gap handling: %v", parts)
	}
	for _, bad := range []string{"0\n", "0 x\n", "-1 0\n", "0 -2\n", "99 0\n"} {
		if _, err := ReadAssignment(strings.NewReader(bad), 50); err == nil {
			t.Errorf("ReadAssignment(%q) succeeded, want error", bad)
		}
	}
}

// TestWarmRoundTripThroughEdgeList: the exported delta + assignment IO and
// the warm path compose — the CLI flow (-delta, -base) in library form.
func TestWarmRoundTripThroughEdgeList(t *testing.T) {
	_, target, baseRes, opts := warmScenario(t, 2)
	var buf bytes.Buffer
	for v, p := range baseRes.Assignment.Parts {
		fmt.Fprintf(&buf, "%d %d\n", v, p)
	}
	warm, err := ReadAssignment(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartitionWarm(target, warm, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := PartitionWarm(target, baseRes.Assignment.Parts, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Assignment.Parts {
		if res.Assignment.Parts[v] != direct.Assignment.Parts[v] {
			t.Fatalf("assignment IO round trip changed the warm result at vertex %d", v)
		}
	}
}
