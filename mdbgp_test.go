package mdbgp

import (
	"bytes"
	"strings"
	"testing"
)

func testGraph() (*Graph, []int32) {
	return GenerateSocialGraph(SocialGraphConfig{
		N: 1000, Communities: 4, AvgDegree: 12, InFraction: 0.85,
		DegreeExponent: 2, Seed: 1,
	})
}

func TestPartitionDefaults(t *testing.T) {
	g, _ := testGraph()
	res, err := Partition(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.K != 2 {
		t.Fatalf("default K=%d, want 2", res.Assignment.K)
	}
	if res.EdgeLocality <= 0.5 {
		t.Fatalf("locality %.3f, want > 0.5", res.EdgeLocality)
	}
	if len(res.Imbalances) != 2 {
		t.Fatalf("imbalances %v, want 2 dims", res.Imbalances)
	}
	for j, im := range res.Imbalances {
		if im > 0.051 {
			t.Fatalf("dim %d imbalance %.4f > ε", j, im)
		}
	}
	if diff := float64(res.CutEdges) - float64(g.M())*(1-res.EdgeLocality); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("cut/locality inconsistent: %d vs %.3f", res.CutEdges, res.EdgeLocality)
	}
}

func TestPartitionKWay(t *testing.T) {
	g, _ := testGraph()
	res, err := Partition(g, Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := StandardWeights(g, WeightVertices, WeightEdges)
	if !IsBalanced(res.Assignment, ws, 0.08) {
		t.Fatalf("4-way imbalance %.4f", MaxImbalance(res.Assignment, ws))
	}
	if res.EdgeLocality < 0.4 {
		t.Fatalf("4-way locality %.3f", res.EdgeLocality)
	}
}

func TestPartitionCustomWeightsAndProjection(t *testing.T) {
	g, _ := testGraph()
	ws, err := StandardWeights(g, WeightVertices, WeightEdges, WeightNeighborDegrees, WeightPageRank)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{Weights: ws, Projection: "dykstra", Iterations: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if MaxImbalance(res.Assignment, ws) > 0.06 {
		t.Fatalf("d=4 imbalance %.4f", MaxImbalance(res.Assignment, ws))
	}
}

func TestPartitionDirect(t *testing.T) {
	g, _ := testGraph()
	res, err := PartitionDirect(g, Options{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := StandardWeights(g, WeightVertices, WeightEdges)
	if !IsBalanced(res.Assignment, ws, 0.051) {
		t.Fatalf("direct imbalance %.4f", MaxImbalance(res.Assignment, ws))
	}
	if res.EdgeLocality < 0.4 {
		t.Fatalf("direct locality %.3f", res.EdgeLocality)
	}
	if _, err := PartitionDirect(g, Options{K: -2}); err == nil {
		t.Fatal("negative K should error")
	}
}

func TestPartitionErrors(t *testing.T) {
	g, _ := testGraph()
	if _, err := Partition(g, Options{K: -1}); err == nil {
		t.Fatal("negative K should error")
	}
	if _, err := Partition(g, Options{Projection: "bogus"}); err == nil {
		t.Fatal("bogus projection should error")
	}
	if _, err := StandardWeights(g); err == nil {
		t.Fatal("no dims should error")
	}
	if _, err := StandardWeights(g, Weight(99)); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 2 {
		t.Fatalf("round trip m=%d", g2.M())
	}
	g3 := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if g3.M() != g.M() {
		t.Fatal("FromEdges mismatch")
	}
}

func TestClusterSimulation(t *testing.T) {
	g, blocks := testGraph()
	res, err := Partition(g, Options{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(g, res.Assignment, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	pr, stats := SimulatePageRank(cluster, 10, 0.85)
	if len(pr) != g.N() || stats.TotalWall() <= 0 {
		t.Fatal("PageRank sim broken")
	}
	labels, _ := SimulateConnectedComponents(cluster, 0)
	if len(labels) != g.N() {
		t.Fatal("CC sim broken")
	}
	counts, _ := SimulateMutualFriends(cluster, 0)
	if len(counts) != g.N() {
		t.Fatal("MF sim broken")
	}
	hc, _ := SimulateHypergraphClustering(cluster, 5)
	if len(hc) != g.N() {
		t.Fatal("HC sim broken")
	}
	_ = blocks
}

func TestGenerateRMAT(t *testing.T) {
	g := GenerateRMAT(10, 8, 0.57, 0.19, 0.19, 6)
	if g.N() != 1024 || g.M() == 0 {
		t.Fatalf("RMAT n=%d m=%d", g.N(), g.M())
	}
}
