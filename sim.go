package mdbgp

import (
	"mdbgp/internal/giraph"
)

// Cluster simulates a Giraph-style distributed processing cluster: vertices
// live on workers per the assignment, computation runs in bulk-synchronous
// supersteps, and a calibrated cost model charges workers for vertices,
// edges and local/remote messages. See internal/giraph for details.
type Cluster = giraph.Cluster

// RunStats aggregates the simulated cost of a job.
type RunStats = giraph.RunStats

// CostModel holds the simulator's per-operation costs.
type CostModel = giraph.CostModel

// DefaultCostModel returns the calibrated cost constants.
func DefaultCostModel() CostModel { return giraph.DefaultCostModel() }

// NewCluster builds a simulated cluster from a graph and an assignment; the
// number of workers is the assignment's K.
func NewCluster(g *Graph, a *Assignment, cost CostModel) (*Cluster, error) {
	return giraph.NewCluster(g, a, cost)
}

// SimulatePageRank runs PageRank on the cluster and returns the rank vector
// and run statistics.
func SimulatePageRank(c *Cluster, iters int, damping float64) ([]float64, *RunStats) {
	return giraph.PageRank(c, iters, damping)
}

// SimulateConnectedComponents runs min-label propagation to convergence.
func SimulateConnectedComponents(c *Cluster, maxSteps int) ([]int32, *RunStats) {
	return giraph.ConnectedComponents(c, maxSteps)
}

// SimulateMutualFriends runs the common-neighbor-count workload.
func SimulateMutualFriends(c *Cluster, capDegree int) ([]int64, *RunStats) {
	return giraph.MutualFriends(c, capDegree)
}

// SimulateHypergraphClustering runs the heavy-message clustering workload.
func SimulateHypergraphClustering(c *Cluster, rounds int) ([]int32, *RunStats) {
	return giraph.HypergraphClustering(c, rounds)
}
