// Benchmarks: one per table and figure of the paper's evaluation section.
// Each benchmark executes the corresponding experiment end to end on
// 16×-reduced datasets (the full paper-analog scale is run by
// cmd/experiments -scale full; see EXPERIMENTS.md for those results).
//
// Kernel microbenches for the gradient step and the projection algorithms
// follow at the end.
package mdbgp

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/core"
	"mdbgp/internal/experiments"
	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/multilevel"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
	"mdbgp/internal/reorder"
	"mdbgp/internal/vecmath"
	"mdbgp/internal/weights"
)

// runExperiment executes a registered experiment at 16× dataset reduction.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(16, 42, nil)
		e, err := experiments.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		tables, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", name)
		}
	}
}

// BenchmarkFig1PageRankHistogram regenerates Figure 1: per-worker PageRank
// iteration times under the four partitioning policies on 16 workers.
func BenchmarkFig1PageRankHistogram(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig4Imbalance regenerates Figure 4: vertex and edge imbalance of
// Spinner, BLP and SHP on the public networks, k ∈ {2, 8}.
func BenchmarkFig4Imbalance(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5LocalityPublic regenerates Figure 5: edge locality of Hash,
// BLP and GD on the public networks, k ∈ {2, 8}.
func BenchmarkFig5LocalityPublic(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6LocalityFB regenerates Figure 6: edge locality on the
// Facebook friendship analogs, k ∈ {16, 128}.
func BenchmarkFig6LocalityFB(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7GiraphSpeedup regenerates Figure 7: PR/CC/MF/HC speedups
// over hash for 1-D and 2-D partitionings on the small and large configs.
func BenchmarkFig7GiraphSpeedup(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable2PageRankDetail regenerates Table 2: per-superstep runtime
// and communication statistics of PageRank on fb400 across 128 workers.
func BenchmarkTable2PageRankDetail(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig8StepLength regenerates Figure 8: locality vs iteration for
// step lengths {1, 2, 5, 10}·√n/100.
func BenchmarkFig8StepLength(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Adaptivity regenerates Figure 9: nonadaptive vs adaptive vs
// adaptive+vertex-fixing GD.
func BenchmarkFig9Adaptivity(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Projection regenerates Figure 10: exact projection at
// ε ∈ {0.1, 0.01, 0.001} vs one-shot alternating projection.
func BenchmarkFig10Projection(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Scalability regenerates Figure 11: GD running time across
// the graph size ladder (linear in |E|).
func BenchmarkFig11Scalability(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable3MetisComparison regenerates Table 3: GD vs the multilevel
// multi-constraint partitioner for d ∈ {2, 3, 4}.
func BenchmarkTable3MetisComparison(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig15to17StackOverflow regenerates the Appendix C.2 figures on
// the sx-stackoverflow analog.
func BenchmarkFig15to17StackOverflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(16, 42, nil)
		for _, name := range []string{"fig15", "fig16", "fig17"} {
			e, err := experiments.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblations runs the component-ablation study (repair, noise,
// projection variants, vertex fixing, direct vs recursive k-way).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// --- Kernel microbenches -------------------------------------------------

func benchGraph() (*Graph, [][]float64) {
	g, _ := gen.SBM(gen.SBMConfig{
		N: 50000, Communities: 16, AvgDegree: 20, InFraction: 0.6,
		DegreeExponent: 2, Seed: 9,
	})
	ws, _ := weights.Standard(g, 2)
	return g, ws
}

// BenchmarkSpMV measures the gradient step Ax, the dominant per-iteration
// cost of GD (Theorem 1.1: O(|E|) per step).
func BenchmarkSpMV(b *testing.B) {
	g, _ := benchGraph()
	x := make([]float64, g.N())
	dst := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	b.SetBytes(8 * g.DirectedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecmath.SpMV(g, x, dst)
	}
}

// benchWorkerCounts is the worker sweep of the parallel benchmarks; the
// speedup trajectory across this ladder reproduces the Fig. 11-style
// scalability story on multicore hardware.
var benchWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkSpMVParallel measures the sharded CSR SpMV gradient step across
// worker counts (O(|E|/m) per step on m workers, Theorem 1.1).
func BenchmarkSpMVParallel(b *testing.B) {
	g, _ := benchGraph()
	x := make([]float64, g.N())
	dst := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := vecmath.NewPool(w)
			b.SetBytes(8 * g.DirectedSize())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vecmath.SpMVPool(g, x, dst, pool)
			}
		})
	}
}

// BenchmarkProjectionParallel measures the one-shot alternating projection
// (the paper's default inside GD iterations) across worker counts.
func BenchmarkProjectionParallel(b *testing.B) {
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchProjectionWorkers(b, 2, project.AlternatingOneShot, w)
		})
	}
}

// BenchmarkProjectionExact1D measures the O(n log n) exact single-slab
// projection.
func BenchmarkProjectionExact1D(b *testing.B) {
	benchProjection(b, 1, project.Exact)
}

// BenchmarkProjectionExact2D measures the strip-bisection + region-walk
// exact projection of Appendix A.2.
func BenchmarkProjectionExact2D(b *testing.B) {
	benchProjection(b, 2, project.Exact)
}

// BenchmarkProjectionOneShot measures the paper's default one-shot
// alternating projection.
func BenchmarkProjectionOneShot(b *testing.B) {
	benchProjection(b, 2, project.AlternatingOneShot)
}

// BenchmarkProjectionDykstra measures Dykstra's algorithm to convergence.
func BenchmarkProjectionDykstra(b *testing.B) {
	benchProjection(b, 2, project.DykstraMethod)
}

func benchProjection(b *testing.B, d int, m project.Method) {
	b.Helper()
	benchProjectionWorkers(b, d, m, 1)
}

func benchProjectionWorkers(b *testing.B, d int, m project.Method, workers int) {
	b.Helper()
	n := 50000
	rng := rand.New(rand.NewSource(11))
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64() * 1.5
	}
	cons := make([]project.Constraint, d)
	for j := range cons {
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = rng.Float64()*2 + 0.05
			total += w[i]
		}
		cons[j] = project.Constraint{W: w, Lo: -0.01 * total, Hi: 0.01 * total}
	}
	dst := make([]float64, n)
	st := &project.State{}
	opt := project.Options{Method: m, Center: true, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := project.Project(dst, y, cons, opt, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGDBisect measures a full 100-iteration GD bisection on a 50k /
// 500k synthetic social graph (the unit of Figure 11's scaling ladder).
func BenchmarkGDBisect(b *testing.B) {
	g, ws := benchGraph()
	opt := core.DefaultOptions()
	opt.Seed = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Bisect(g, ws, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGDBisectParallel measures the full GD bisection across worker
// counts on the 50k-vertex benchmark graph. The partition is bit-identical
// at every worker count (see TestBisectDeterministicAcrossWorkers), so the
// sweep isolates pure engine speedup.
func BenchmarkGDBisectParallel(b *testing.B) {
	g, ws := benchGraph()
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Seed = 42
			opt.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Bisect(g, ws, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKWayRecursiveParallel adds concurrent sibling bisection on top
// of the parallel kernels (k=8 gives up to 4 concurrent leaf bisections).
func BenchmarkKWayRecursiveParallel(b *testing.B) {
	g, ws := benchGraph()
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Seed = 42
			opt.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PartitionK(g, ws, 8, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKWayRecursive and BenchmarkKWayDirect compare the two k-way
// strategies of §3.3: recursive bisection (O(|E|) per iteration, log k
// rounds) against the direct O(k·|E|)-per-iteration relaxation.
func BenchmarkKWayRecursive(b *testing.B) {
	g, ws := benchGraph()
	opt := core.DefaultOptions()
	opt.Seed = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PartitionK(g, ws, 8, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKWayDirect(b *testing.B) {
	g, ws := benchGraph()
	opt := core.DefaultDirectKOptions()
	opt.Seed = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DirectKWay(g, ws, 8, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Multilevel benches --------------------------------------------------

// benchMLGraph is the multilevel benchmark instance: ≥ 500k edges with the
// tight-community structure of real social networks (the regime the V-cycle
// targets; see internal/multilevel). m = 573104 at these parameters.
func benchMLGraph() (*Graph, [][]float64) {
	g, _ := gen.SBM(gen.SBMConfig{
		N: 100000, Communities: 4000, AvgDegree: 14, InFraction: 0.8, Seed: 17,
	})
	ws, _ := weights.Standard(g, 2)
	return g, ws
}

// BenchmarkMultilevelBisect measures the V-cycle bisection end to end
// (hierarchy construction, coarsest solve, warm-started refinement,
// rounding) and reports the achieved uncut fraction.
func BenchmarkMultilevelBisect(b *testing.B) {
	g, ws := benchMLGraph()
	opt := core.DefaultOptions()
	opt.Seed = 42
	b.SetBytes(8 * g.DirectedSize())
	b.ResetTimer()
	var loc float64
	for i := 0; i < b.N; i++ {
		res, err := multilevel.Bisect(g, ws, multilevel.Options{GD: opt})
		if err != nil {
			b.Fatal(err)
		}
		loc = partition.EdgeLocality(g, res.Assignment)
	}
	b.ReportMetric(loc, "locality")
	b.ReportMetric(float64(g.M()), "edges")
}

// BenchmarkMultilevelVsDirect runs direct GD and multilevel GD back to back
// on the same ≥ 500k-edge graph and reports the acceptance metrics of the
// multilevel milestone: both uncut fractions, their gap, and the speedup.
// cmd/benchjson turns the output into BENCH_multilevel.json.
func BenchmarkMultilevelVsDirect(b *testing.B) {
	g, ws := benchMLGraph()
	opt := core.DefaultOptions()
	opt.Seed = 42
	b.ResetTimer()
	var direct, ml float64
	var directSecs, mlSecs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		dres, err := core.Bisect(g, ws, opt)
		if err != nil {
			b.Fatal(err)
		}
		directSecs += time.Since(start).Seconds()
		direct = partition.EdgeLocality(g, dres.Assignment)

		start = time.Now()
		mres, err := multilevel.Bisect(g, ws, multilevel.Options{GD: opt})
		if err != nil {
			b.Fatal(err)
		}
		mlSecs += time.Since(start).Seconds()
		ml = partition.EdgeLocality(g, mres.Assignment)
	}
	b.ReportMetric(float64(g.M()), "edges")
	b.ReportMetric(direct, "locality_direct")
	b.ReportMetric(ml, "locality_multilevel")
	b.ReportMetric(direct-ml, "locality_gap")
	b.ReportMetric(directSecs/float64(b.N)*1e3, "direct_ms")
	b.ReportMetric(mlSecs/float64(b.N)*1e3, "multilevel_ms")
	b.ReportMetric(directSecs/mlSecs, "speedup")
}

// --- Kernel roofline benches ---------------------------------------------
//
// BenchmarkKernels measures achieved memory bandwidth (GB/s) for the hot
// kernels of the GD iteration — the SpMV gradient step in its plain, masked,
// weighted, register-blocked and reordered-layout forms, plus the one-shot
// projection — on the 573k-edge multilevel benchmark graph. cmd/benchjson
// turns the output into BENCH_kernels.json and CI gates the floors with
// cmd/benchgate (see .github/workflows/ci.yml, kernels-bench job).

// benchKernelGraph is benchMLGraph under a random vertex relabeling: same
// topology (m = 573104 undirected), but arbitrary ingest ids, modeling real
// edge lists whose numbering carries no locality. This is the regime vertex
// reordering exists for; on the unshuffled SBM ids the ordering is already
// near-optimal and every kernel runs at the roofline.
func benchKernelGraph() *Graph {
	g, _ := gen.SBM(gen.SBMConfig{
		N: 100000, Communities: 4000, AvgDegree: 14, InFraction: 0.8, Seed: 17,
	})
	rng := rand.New(rand.NewSource(99))
	label := rng.Perm(g.N())
	nb := graph.NewBuilder(g.N())
	g.EachEdge(func(u, v int) bool {
		nb.AddEdge(label[u], label[v])
		return true
	})
	return nb.Build()
}

func BenchmarkKernels(b *testing.B) {
	g := benchKernelGraph()
	offsets, adj := g.CSR()
	n, nnz := g.N(), int(g.DirectedSize())
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	fixed := make([]bool, n)
	for i := range fixed {
		fixed[i] = i%16 == 0
	}
	ew := make([]float64, nnz)
	for i := range ew {
		ew[i] = 1
	}
	pool := vecmath.NewPool(1)
	// One SpMV touches the arc targets (4B) and gathered x values (8B) per
	// arc, plus the offsets array and a read+write pass over the vectors.
	spmvBytes := float64(12*nnz + 16*n + 8*(n+1))

	layDeg := reorder.NewLayout(offsets, adj, nil, reorder.Degree)
	layRCM := reorder.NewLayout(offsets, adj, nil, reorder.RCM)

	// Float32 variants gather 4B x values instead of 8B — the Kernel32 option's
	// bandwidth claim. The iterate converts once per call (the conversion is
	// part of the measured work, as it is per iteration in production).
	x32 := make([]float32, n)
	spmv32Bytes := float64(8*nnz + 12*n + 8*(n+1))

	gbps := func(bytes float64, fn func()) float64 {
		fn() // warm caches and pool
		const reps = 12
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		return bytes * reps / time.Since(start).Seconds() / 1e9
	}

	var plain, masked, weighted, blocked, layoutDeg, layoutRCM, proj float64
	var spmv32, blocked32 float64
	projBytes := float64(8 * n * 4) // y, dst, and two constraint weight rows
	py := make([]float64, n)
	copy(py, x)
	pdst := make([]float64, n)
	cons := make([]project.Constraint, 2)
	for j := range cons {
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = rng.Float64()*2 + 0.05
			total += w[i]
		}
		cons[j] = project.Constraint{W: w, Lo: -0.01 * total, Hi: 0.01 * total}
	}
	st := &project.State{}
	popt := project.Options{Method: project.AlternatingOneShot, Center: true, Workers: 1}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain = gbps(spmvBytes, func() { vecmath.SpMVWeightedMaskedPool(offsets, adj, nil, x, dst, nil, pool) })
		masked = gbps(spmvBytes, func() { vecmath.SpMVWeightedMaskedPool(offsets, adj, nil, x, dst, fixed, pool) })
		weighted = gbps(spmvBytes, func() { vecmath.SpMVWeightedMaskedPool(offsets, adj, ew, x, dst, nil, pool) })
		blocked = gbps(spmvBytes, func() { vecmath.SpMVBlockedPool(offsets, adj, nil, x, dst, nil, pool) })
		layoutDeg = gbps(spmvBytes, func() { layDeg.SpMVMasked(x, dst, nil, pool) })
		layoutRCM = gbps(spmvBytes, func() { layRCM.SpMVMasked(x, dst, nil, pool) })
		spmv32 = gbps(spmv32Bytes, func() {
			vecmath.Convert32Pool(x32, x, pool)
			vecmath.SpMV32WeightedMaskedPool(offsets, adj, nil, x32, dst, nil, pool)
		})
		blocked32 = gbps(spmv32Bytes, func() {
			vecmath.Convert32Pool(x32, x, pool)
			vecmath.SpMVBlocked32Pool(offsets, adj, nil, x32, dst, nil, pool)
		})
		proj = gbps(projBytes, func() {
			if err := project.Project(pdst, py, cons, popt, st); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ReportMetric(float64(nnz), "arcs")
	b.ReportMetric(plain, "spmv_gbps")
	b.ReportMetric(masked, "spmv_masked_gbps")
	b.ReportMetric(weighted, "spmv_weighted_gbps")
	b.ReportMetric(blocked, "spmv_blocked_gbps")
	b.ReportMetric(layoutDeg, "spmv_layout_degree_gbps")
	b.ReportMetric(layoutRCM, "spmv_layout_rcm_gbps")
	b.ReportMetric(spmv32, "spmv32_gbps")
	b.ReportMetric(blocked32, "spmv32_blocked_gbps")
	b.ReportMetric(proj, "projection_gbps")
	// The headline claim: the register-blocked kernel over the degree-sorted
	// layout — the exact production path selected by Options.Reorder — against
	// the plain kernel on the ingest-order CSR, both bit-identical results.
	b.ReportMetric(layoutDeg/plain, "blocked_speedup")
	b.ReportMetric(float64(reorder.Bandwidth(offsets, adj)), "bandwidth_ingest")
	b.ReportMetric(float64(layRCM.Bandwidth()), "bandwidth_rcm")
}

// BenchmarkPrepAmortization measures what the server's prep-artifact cache
// buys on repeat solves of the same graph: a cold multilevel solve (hierarchy
// coarsening + reorder layout built inside the engine) against a warm one
// with both artifacts injected via Options.PrepLayout/PrepHierarchy — the
// exact path internal/prep serves on a cache hit. The warm and cold solves
// must be byte-identical (injection amortizes work, never changes bits);
// the speedup floor is gated in CI (kernels-bench job).
func BenchmarkPrepAmortization(b *testing.B) {
	g, _ := benchMLGraph()
	opts := Options{K: 2, Seed: 42, Engine: "multilevel", Reorder: "degree"}.Canonical()

	buildPrep := func() (*PreparedLayout, *PreparedHierarchy) {
		pl, err := PrepareLayout(g, opts.Reorder)
		if err != nil {
			b.Fatal(err)
		}
		ph, err := PrepareHierarchy(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		return pl, ph
	}
	warmed := func(pl *PreparedLayout, ph *PreparedHierarchy) Options {
		o := opts
		o.PrepLayout, o.PrepHierarchy = pl, ph
		return o
	}

	// The byte-identity contract, asserted in-bench so the published numbers
	// can never come from divergent solves.
	cold0, err := Partition(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	pl, ph := buildPrep()
	warm0, err := Partition(g, warmed(pl, ph))
	if err != nil {
		b.Fatal(err)
	}
	if len(cold0.Assignment.Parts) != len(warm0.Assignment.Parts) {
		b.Fatal("cold and warm assignments differ in length")
	}
	for i := range cold0.Assignment.Parts {
		if cold0.Assignment.Parts[i] != warm0.Assignment.Parts[i] {
			b.Fatalf("cold and warm solves diverge at vertex %d: prep injection changed the result", i)
		}
	}

	var coldSecs, warmSecs, prepSecs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := Partition(g, opts); err != nil {
			b.Fatal(err)
		}
		coldSecs += time.Since(start).Seconds()

		start = time.Now()
		pl, ph := buildPrep()
		prepSecs += time.Since(start).Seconds()

		start = time.Now()
		if _, err := Partition(g, warmed(pl, ph)); err != nil {
			b.Fatal(err)
		}
		warmSecs += time.Since(start).Seconds()
	}
	b.ReportMetric(float64(g.M()), "edges")
	b.ReportMetric(coldSecs/float64(b.N)*1e3, "cold_ms")
	b.ReportMetric(warmSecs/float64(b.N)*1e3, "warm_ms")
	b.ReportMetric(prepSecs/float64(b.N)*1e3, "prep_ms")
	b.ReportMetric(coldSecs/warmSecs, "speedup")
}

// BenchmarkIncrementalGD compares full-gradient GD with the incremental
// (moved-coordinate delta) gradient path on the same bisection, in two
// regimes. With vertex fixing on (the default), the masked SpMV already
// skips fixed rows, so the delta gate rarely fires and the contract is
// simply "no overhead, no quality change". With vertex fixing off (the
// paper's Fig. 9 ablation configs), every row stays in the SpMV while the
// moved set collapses as coordinates saturate — the regime the delta
// scatter is built for. The quality guards locality_delta and
// locality_delta_nofix must stay ~0: the incremental path is an exact
// resync-corrected evaluation of the same iteration, not an approximation.
func BenchmarkIncrementalGD(b *testing.B) {
	g, _ := benchMLGraph()
	solve := func(o Options) (*Result, float64) {
		start := time.Now()
		res, err := Partition(g, o)
		if err != nil {
			b.Fatal(err)
		}
		return res, time.Since(start).Seconds()
	}
	opts := Options{K: 2, Seed: 42}
	nofix := opts
	nofix.DisableVertexFixing = true
	var fullSecs, incSecs, fullNofixSecs, incNofixSecs float64
	var full, inc, fullNofix, incNofix *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		full, s = solve(opts)
		fullSecs += s
		o := opts
		o.IncrementalGradient = true
		inc, s = solve(o)
		incSecs += s

		fullNofix, s = solve(nofix)
		fullNofixSecs += s
		o = nofix
		o.IncrementalGradient = true
		incNofix, s = solve(o)
		incNofixSecs += s
	}
	b.ReportMetric(full.EdgeLocality, "locality_full")
	b.ReportMetric(inc.EdgeLocality, "locality_incremental")
	b.ReportMetric(inc.EdgeLocality-full.EdgeLocality, "locality_delta")
	b.ReportMetric(fullSecs/float64(b.N)*1e3, "full_ms")
	b.ReportMetric(incSecs/float64(b.N)*1e3, "incremental_ms")
	b.ReportMetric(fullSecs/incSecs, "speedup")
	b.ReportMetric(incNofix.EdgeLocality-fullNofix.EdgeLocality, "locality_delta_nofix")
	b.ReportMetric(fullNofixSecs/float64(b.N)*1e3, "full_nofix_ms")
	b.ReportMetric(incNofixSecs/float64(b.N)*1e3, "incremental_nofix_ms")
	b.ReportMetric(fullNofixSecs/incNofixSecs, "speedup_nofix")
}

// BenchmarkMultilevelCoarsen isolates hierarchy construction (cluster
// coarsening + contraction per level), the fixed cost of every V-cycle.
func BenchmarkMultilevelCoarsen(b *testing.B) {
	g, ws := benchMLGraph()
	wg0 := coarsen.Wrap(g, ws)
	b.SetBytes(8 * g.DirectedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		levels, _ := coarsen.Hierarchy(wg0, coarsen.HierarchyOptions{
			CoarsenTo: 8000,
			Clusters:  true,
			Cluster:   coarsen.ClusterOptions{MaxClusterVertices: 32},
		}, rng, nil)
		if len(levels) < 2 {
			b.Fatal("no hierarchy")
		}
	}
}
