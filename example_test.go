package mdbgp_test

import (
	"fmt"

	"mdbgp"
)

// ExamplePartition partitions a small community graph into two parts that
// are balanced on vertices and edges simultaneously.
func ExamplePartition() {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 400, Communities: 2, AvgDegree: 12, InFraction: 0.9, Seed: 1,
	})
	res, err := mdbgp.Partition(g, mdbgp.Options{K: 2, Epsilon: 0.05, Seed: 42})
	if err != nil {
		panic(err)
	}
	ws, _ := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	fmt.Println("parts:", res.Assignment.K)
	fmt.Println("balanced:", mdbgp.IsBalanced(res.Assignment, ws, 0.05))
	fmt.Println("beats random cut:", res.EdgeLocality > 0.6)
	// Output:
	// parts: 2
	// balanced: true
	// beats random cut: true
}

// ExamplePartition_kway shows recursive k-way partitioning with a
// non-power-of-two part count.
func ExamplePartition_kway() {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 600, Communities: 3, AvgDegree: 10, InFraction: 0.85, Seed: 2,
	})
	res, err := mdbgp.Partition(g, mdbgp.Options{K: 3, Epsilon: 0.06, Seed: 7})
	if err != nil {
		panic(err)
	}
	empty := 0
	for _, s := range res.Assignment.PartSizes() {
		if s == 0 {
			empty++
		}
	}
	fmt.Println("parts:", res.Assignment.K, "empty:", empty)
	// Output:
	// parts: 3 empty: 0
}

// ExampleStandardWeights builds the paper's four standard balance
// dimensions.
func ExampleStandardWeights() {
	g := mdbgp.FromEdges(3, []mdbgp.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ws, err := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if err != nil {
		panic(err)
	}
	fmt.Println("dimensions:", len(ws))
	fmt.Println("vertex weights:", ws[0])
	fmt.Println("degree weights:", ws[1])
	// Output:
	// dimensions: 2
	// vertex weights: [1 1 1]
	// degree weights: [1 2 1]
}

// ExampleNewCluster simulates a PageRank job on a partitioned cluster.
func ExampleNewCluster() {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 500, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 3,
	})
	res, _ := mdbgp.Partition(g, mdbgp.Options{K: 4, Seed: 9})
	cluster, err := mdbgp.NewCluster(g, res.Assignment, mdbgp.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	ranks, stats := mdbgp.SimulatePageRank(cluster, 10, 0.85)
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	fmt.Printf("rank mass: %.3f\n", sum)
	fmt.Println("supersteps:", len(stats.Steps))
	// Output:
	// rank mass: 1.000
	// supersteps: 10
}
