package mdbgp

import (
	"fmt"
	"sort"
	"sync"

	"mdbgp/internal/baselines"
	"mdbgp/internal/core"
	"mdbgp/internal/metis"
	"mdbgp/internal/multilevel"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
	"mdbgp/internal/reorder"
)

// EngineInfo describes a registered solver: its registry name and the
// capabilities front ends use to validate requests before dispatching.
type EngineInfo struct {
	// Name is the registry key, as accepted by Options.Engine, the CLIs'
	// -engine flag and the daemon's ?engine= parameter.
	Name string
	// WarmStart reports whether the engine honors Options.WarmAssignment
	// (incremental repartitioning). Engines without it must be solved cold;
	// Partition rejects a warm request naming one.
	WarmStart bool
	// Weighted reports whether the engine balances the caller's
	// multi-dimensional Options.Weights. Engines without it balance a fixed
	// built-in dimension (Fennel: vertex count; SHP: a combined edge+vertex
	// mix) and silently ignore the weight vectors — Result.Imbalances still
	// reports how the requested dimensions came out.
	Weighted bool
	// Deterministic reports whether results are bit-identical for a fixed
	// Options.Seed at any Parallelism — the property the content-addressed
	// result cache relies on. Every built-in engine is deterministic.
	Deterministic bool
	// Kernel32 reports whether the engine honors Options.Kernel32 (float32
	// gradient kernels). Only engines that run gradient SpMVs can: the
	// option is fingerprinted, so Partition refuses it on any other engine
	// rather than letting an ignored flag split cache keys between
	// byte-identical results.
	Kernel32 bool
	// Streaming reports whether the engine has an out-of-core variant that
	// consumes adjacency rows in vertex order without a materialized CSR
	// (baselines.FennelStream). The serving layer routes graphs exceeding
	// its -max-resident-edges budget only through streaming engines; see
	// docs/WIRE_FORMAT.md for the ingest pipeline. Note the out-of-core
	// variant visits vertices in natural rather than seeded-random order, so
	// it produces a different (equally valid) partition than the in-core
	// solve and is cached under a separate key.
	Streaming bool
	// Description is a one-line summary for -engine help text and docs.
	Description string
}

// Engine is one partitioning strategy behind the shared solve API. Solve
// receives canonicalized options (defaults explicit, Engine resolved) and
// must be deterministic in opts.Seed when Info().Deterministic is set.
type Engine interface {
	Info() EngineInfo
	Solve(g *Graph, opts Options) (*Result, error)
}

// DefaultEngine is the engine Options.Engine == "" resolves to.
const DefaultEngine = "gd"

var (
	engineMu sync.RWMutex
	engines  = map[string]Engine{}
)

// RegisterEngine adds an engine to the registry under its Info().Name.
// Registering a duplicate name or an empty name is an error; the built-in
// engines register at init time.
func RegisterEngine(e Engine) error {
	name := e.Info().Name
	if name == "" {
		return fmt.Errorf("mdbgp: engine has empty name")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engines[name]; dup {
		return fmt.Errorf("mdbgp: engine %q already registered", name)
	}
	engines[name] = e
	return nil
}

// LookupEngine resolves an Options.Engine value ("" selects DefaultEngine).
func LookupEngine(name string) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	engineMu.RLock()
	e, ok := engines[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mdbgp: unknown engine %q (have %v)", name, EngineNames())
	}
	return e, nil
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Engines returns the EngineInfo of every registered engine, sorted by name
// — the capability matrix front ends render and validate against.
func Engines() []EngineInfo {
	engineMu.RLock()
	defer engineMu.RUnlock()
	infos := make([]EngineInfo, 0, len(engines))
	for _, e := range engines {
		infos = append(infos, e.Info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

func init() {
	for _, e := range []Engine{gdEngine{}, multilevelEngine{}, fennelEngine{}, blpEngine{}, shpEngine{}, metisEngine{}} {
		if err := RegisterEngine(e); err != nil {
			panic(err)
		}
	}
}

// resolveWeights returns the balance dimensions of a solve: the caller's
// Options.Weights, defaulting to vertex + edge.
func resolveWeights(g *Graph, opts Options) ([][]float64, error) {
	if opts.Weights != nil {
		return opts.Weights, nil
	}
	return StandardWeights(g, WeightVertices, WeightEdges)
}

// buildResult scores an assignment against the solve's weight dimensions.
func buildResult(g *Graph, ws [][]float64, asgn *Assignment) *Result {
	res := &Result{
		Assignment:   asgn,
		EdgeLocality: partition.EdgeLocality(g, asgn),
		CutEdges:     partition.CutEdges(g, asgn),
	}
	for _, w := range ws {
		res.Imbalances = append(res.Imbalances, partition.Imbalance(asgn, w))
	}
	return res
}

// gdCoreOptions maps canonicalized public options onto the GD core,
// including the damped warm-start trajectory when a warm assignment is set.
func gdCoreOptions(g *Graph, opts Options) (core.Options, error) {
	opt := core.DefaultOptions()
	opt.Epsilon = opts.Epsilon
	opt.Iterations = opts.Iterations
	opt.StepLength = opts.StepLength
	opt.Seed = opts.Seed
	opt.Workers = opts.Parallelism
	opt.Adaptive = !opts.DisableAdaptiveStep
	opt.VertexFixing = !opts.DisableVertexFixing
	m, err := reorder.Parse(opts.Reorder)
	if err != nil {
		return opt, err
	}
	opt.Reorder = m
	// An injected prep layout rides along only when it was built for exactly
	// this graph under exactly the requested ordering; the core re-verifies
	// shape and weighting again before trusting it.
	if pl := opts.PrepLayout; pl != nil && pl.graph == g && pl.method == m {
		opt.Layout = pl.layout
	}
	opt.Kernel32 = opts.Kernel32
	opt.IncrementalGradient = opts.IncrementalGradient
	opt.ResyncEvery = opts.ResyncEvery
	opt.Span = opts.Observer
	if opts.Projection != "" {
		m, err := project.ParseMethod(opts.Projection)
		if err != nil {
			return opt, err
		}
		opt.Projection = project.Options{Method: m, Center: m == project.AlternatingOneShot}
	}
	if opts.WarmAssignment != nil {
		warm, err := padWarm(opts.WarmAssignment, g.N(), opts.K)
		if err != nil {
			return opt, err
		}
		opt.WarmParts = warm
		// A warm start needs only a refinement budget, and — as in the
		// multilevel V-cycle's refinement — projects onto the slab itself
		// rather than its center: the prior solution is already feasible,
		// and re-centering every iteration would drag its near-integral
		// coordinates back toward the origin instead of polishing them.
		opt.Iterations = opts.WarmIterations
		opt.StepLength = opts.StepLength * float64(opts.WarmIterations) / float64(opts.Iterations)
		opt.Projection.Center = false
	}
	return opt, nil
}

// gdEngine is the paper's partitioner: randomized projected gradient ascent
// on the continuous relaxation, k-way via recursive bisection.
type gdEngine struct{}

func (gdEngine) Info() EngineInfo {
	return EngineInfo{
		Name: "gd", WarmStart: true, Weighted: true, Deterministic: true, Kernel32: true,
		Description: "projected gradient descent with recursive bisection (the paper's method)",
	}
}

func (gdEngine) Solve(g *Graph, opts Options) (*Result, error) {
	opts = opts.Canonical() // a no-op via Partition; direct Solve callers get the same defaults
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	opt, err := gdCoreOptions(g, opts)
	if err != nil {
		return nil, err
	}
	asgn, err := core.PartitionK(g, ws, opts.K, opt)
	if err != nil {
		return nil, err
	}
	return buildResult(g, ws, asgn), nil
}

// multilevelEngine is GD through the V-cycle: coarsen, solve coarse,
// prolongate as a warm start, refine per level.
type multilevelEngine struct{}

func (multilevelEngine) Info() EngineInfo {
	return EngineInfo{
		Name: "multilevel", WarmStart: true, Weighted: true, Deterministic: true, Kernel32: true,
		Description: "V-cycle multilevel GD (coarsen, solve coarse, warm-started refinement)",
	}
}

func (multilevelEngine) Solve(g *Graph, opts Options) (*Result, error) {
	// Canonical fills the multilevel knobs and the warm budget the step
	// formula below divides by — direct Solve callers skip Partition's
	// canonicalization.
	if opts.Engine == "" {
		opts.Engine = "multilevel"
	}
	opts = opts.Canonical()
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	opt, err := gdCoreOptions(g, opts)
	if err != nil {
		return nil, err
	}
	mlOpt := multilevel.Options{
		GD:               opt,
		CoarsenTo:        opts.CoarsenTo,
		ClusterSize:      opts.ClusterSize,
		RefineIterations: opts.RefineIterations,
	}
	// An injected hierarchy rides along only when it was prepared for this
	// engine; the V-cycle re-verifies graph, seed and coarsening knobs.
	if ph := opts.PrepHierarchy; ph != nil && ph.ml != nil {
		mlOpt.Prep = ph.ml
	}
	asgn, err := multilevel.PartitionK(g, ws, opts.K, mlOpt)
	if err != nil {
		return nil, err
	}
	return buildResult(g, ws, asgn), nil
}

// fennelEngine is the restreaming Fennel baseline: one-dimensional (vertex
// count) balance with a hard per-part cap of (1+ε)·n/k.
type fennelEngine struct{}

func (fennelEngine) Info() EngineInfo {
	return EngineInfo{
		Name: "fennel", WarmStart: false, Weighted: false, Deterministic: true, Streaming: true,
		Description: "restreaming Fennel (streaming heuristic; balances vertex count only)",
	}
}

func (fennelEngine) Solve(g *Graph, opts Options) (*Result, error) {
	opts = opts.Canonical()
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	asgn := baselines.Fennel(g, opts.K, baselines.FennelOptions{
		Slack: 1 + opts.Epsilon, Seed: opts.Seed,
	})
	return buildResult(g, ws, asgn), nil
}

// blpEngine is the two-phase balanced label propagation baseline; the
// cluster-merge phase balances every requested weight dimension.
type blpEngine struct{}

func (blpEngine) Info() EngineInfo {
	return EngineInfo{
		Name: "blp", WarmStart: false, Weighted: true, Deterministic: true,
		Description: "balanced label propagation (size-constrained clustering + multi-dim merge)",
	}
}

func (blpEngine) Solve(g *Graph, opts Options) (*Result, error) {
	opts = opts.Canonical()
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	asgn := baselines.BLP(g, ws, opts.K, baselines.BLPOptions{Seed: opts.Seed})
	return buildResult(g, ws, asgn), nil
}

// shpEngine is the Social-Hash-Partitioner-style local search: pairwise
// exchanges balancing one fixed combined edge+vertex dimension.
type shpEngine struct{}

func (shpEngine) Info() EngineInfo {
	return EngineInfo{
		Name: "shp", WarmStart: false, Weighted: false, Deterministic: true,
		Description: "SHP-style local search (balances a fixed combined edge+vertex dimension)",
	}
}

func (shpEngine) Solve(g *Graph, opts Options) (*Result, error) {
	opts = opts.Canonical()
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	asgn := baselines.SHP(g, opts.K, baselines.SHPOptions{
		Tol: opts.Epsilon, Seed: opts.Seed,
	})
	return buildResult(g, ws, asgn), nil
}

// PartitionDirect partitions with the non-recursive k-way relaxation of
// §3.3 of the paper: every vertex carries a probability vector over the k
// buckets and projected gradient ascent runs on the joint objective. Each
// iteration costs O(k·|E|) time and O(k·|V|) memory — the communication
// blowup that makes the paper prefer recursive bisection at scale — but it
// avoids the greedy top-level cut, which can help for moderate k. Options
// are interpreted as in Partition (Engine, Projection and the Disable*
// flags are ignored; the method has its own fixed projection scheme).
func PartitionDirect(g *Graph, opts Options) (*Result, error) {
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("mdbgp: K = %d, want >= 1", opts.K)
	}
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultDirectKOptions()
	opt.Epsilon = opts.Epsilon
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.05
	}
	if opts.Iterations > 0 {
		opt.Iterations = opts.Iterations
	}
	if opts.StepLength > 0 {
		opt.StepLength = opts.StepLength
	}
	opt.Seed = opts.Seed
	opt.Workers = opts.Parallelism
	asgn, err := core.DirectKWay(g, ws, opts.K, opt)
	if err != nil {
		return nil, err
	}
	return buildResult(g, ws, asgn), nil
}

// metisEngine is the METIS-style multi-constraint multilevel comparator:
// heavy-edge coarsening, greedy graph growing, FM refinement.
type metisEngine struct{}

func (metisEngine) Info() EngineInfo {
	return EngineInfo{
		Name: "metis", WarmStart: false, Weighted: true, Deterministic: true,
		Description: "METIS-style multi-constraint multilevel (heavy-edge matching + FM refinement)",
	}
}

func (metisEngine) Solve(g *Graph, opts Options) (*Result, error) {
	opts = opts.Canonical()
	ws, err := resolveWeights(g, opts)
	if err != nil {
		return nil, err
	}
	mo := metis.Options{UBFactor: 1 + opts.Epsilon, Seed: opts.Seed}
	// An injected hierarchy rides along only when it was prepared for this
	// engine; Bisect re-verifies graph, seed and coarsening knobs.
	if ph := opts.PrepHierarchy; ph != nil && ph.mt != nil {
		mo.Prep = ph.mt
	}
	asgn, err := metis.PartitionK(g, ws, opts.K, mo)
	if err != nil {
		return nil, err
	}
	return buildResult(g, ws, asgn), nil
}
