// Package reorder computes locality-improving vertex orderings over a CSR
// adjacency and exposes them as a kernel-level layout for the gradient SpMV.
//
// The orderings (degree-sorted, BFS, reverse Cuthill–McKee) are the standard
// bandwidth-reduction levers from the partitioning literature: after
// renumbering, the neighbors of consecutive rows land in a narrow index band,
// so the gather x[adj[i]] of the SpMV stays cache-resident instead of
// striding across the whole vector.
//
// Reordering here is strictly a kernel layout detail. A Layout permutes the
// CSR rows (and mirrors x into the permuted index space) but keeps every
// row's arc list in its ORIGINAL ascending-old-id order, so each output
// coordinate is accumulated in exactly the same floating-point order as the
// unreordered kernel. Combined with writing results back through the inverse
// permutation, a reordered solve is byte-identical to an unreordered one —
// assignments, goldens, and RNG streams never observe the permutation.
package reorder

import (
	"fmt"
	"sort"

	"mdbgp/internal/vecmath"
)

// Method selects a vertex ordering.
type Method int

const (
	// None keeps the ingest vertex order (the identity permutation).
	None Method = iota
	// Degree orders vertices by degree descending (id ascending on ties).
	// Hubs cluster at the front, which concentrates the hottest x entries.
	Degree
	// BFS orders vertices by breadth-first visit, components taken in
	// ascending order of their smallest vertex id, neighbors enqueued in
	// adjacency (ascending id) order.
	BFS
	// RCM is reverse Cuthill–McKee: BFS seeded per component at a
	// minimum-degree vertex with frontiers expanded in degree-ascending
	// order, then reversed. The classic bandwidth-reduction ordering.
	RCM
)

// Names lists the accepted method spellings in Parse order.
func Names() []string { return []string{"none", "degree", "bfs", "rcm"} }

// String returns the canonical spelling of the method.
func (m Method) String() string {
	switch m {
	case None:
		return "none"
	case Degree:
		return "degree"
	case BFS:
		return "bfs"
	case RCM:
		return "rcm"
	}
	return fmt.Sprintf("reorder.Method(%d)", int(m))
}

// Parse maps a user-facing name to a Method. The empty string means None.
func Parse(s string) (Method, error) {
	switch s {
	case "", "none":
		return None, nil
	case "degree":
		return Degree, nil
	case "bfs":
		return BFS, nil
	case "rcm":
		return RCM, nil
	}
	return None, fmt.Errorf("reorder: unknown method %q (want one of none, degree, bfs, rcm)", s)
}

// Permutation returns the ordering of method m over the CSR adjacency as a
// pair of mutually inverse maps: perm[newID] = oldID and inv[oldID] = newID.
// The adjacency must be sorted within each row (graph.Graph guarantees
// this); the result is then fully deterministic — ties are broken by vertex
// id, never by map iteration or scheduling.
func Permutation(offsets []int64, adj []int32, m Method) (perm, inv []int32) {
	n := len(offsets) - 1
	switch m {
	case Degree:
		perm = make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(a, b int) bool {
			da := offsets[perm[a]+1] - offsets[perm[a]]
			db := offsets[perm[b]+1] - offsets[perm[b]]
			if da != db {
				return da > db
			}
			return perm[a] < perm[b]
		})
	case BFS:
		perm = bfsOrder(offsets, adj, false)
	case RCM:
		perm = bfsOrder(offsets, adj, true)
		for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
			perm[i], perm[j] = perm[j], perm[i]
		}
	default:
		perm = make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
	}
	inv = make([]int32, n)
	for i, v := range perm {
		inv[v] = int32(i)
	}
	return perm, inv
}

// bfsOrder runs a deterministic BFS over every component. With cuthill set,
// components are seeded at their minimum-degree vertex and frontiers are
// expanded in (degree asc, id asc) order — the Cuthill–McKee visit; without
// it, seeds are the smallest unvisited id and neighbors are enqueued in
// adjacency order.
func bfsOrder(offsets []int64, adj []int32, cuthill bool) []int32 {
	n := len(offsets) - 1
	deg := func(v int32) int64 { return offsets[v+1] - offsets[v] }
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	if cuthill {
		sort.Slice(seeds, func(a, b int) bool {
			da, db := deg(seeds[a]), deg(seeds[b])
			if da != db {
				return da < db
			}
			return seeds[a] < seeds[b]
		})
	}
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	var nbr []int32
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			row := adj[offsets[v]:offsets[v+1]]
			if !cuthill {
				for _, u := range row {
					if !visited[u] {
						visited[u] = true
						queue = append(queue, u)
					}
				}
				continue
			}
			nbr = nbr[:0]
			for _, u := range row {
				if !visited[u] {
					visited[u] = true
					nbr = append(nbr, u)
				}
			}
			sort.Slice(nbr, func(a, b int) bool {
				da, db := deg(nbr[a]), deg(nbr[b])
				if da != db {
					return da < db
				}
				return nbr[a] < nbr[b]
			})
			queue = append(queue, nbr...)
		}
	}
	return order
}

// Bandwidth returns the maximum |v - u| over all arcs of a CSR adjacency —
// the matrix bandwidth the orderings try to shrink. Zero for arcless graphs.
func Bandwidth(offsets []int64, adj []int32) int64 {
	n := len(offsets) - 1
	var bw int64
	for v := 0; v < n; v++ {
		for _, u := range adj[offsets[v]:offsets[v+1]] {
			d := int64(v) - int64(u)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Layout is a reordered mirror of a weighted CSR adjacency, specialized for
// the masked gradient SpMV. Rows are stored in permutation order and arc
// targets are renumbered into the new index space so the gather runs over a
// bandwidth-reduced band — but each row keeps its ORIGINAL arc order, so
// per-coordinate sums associate exactly as in the unreordered kernel and
// SpMVMasked is bit-identical to vecmath.SpMVWeightedMaskedPool.
//
// A Layout owns scratch buffers and must not be used from concurrent SpMV
// calls (the GD loop issues one SpMV at a time, so this costs nothing).
// To share one layout across concurrent solves — the prep-cache case —
// hand each solve its own Clone: clones share the immutable permutation and
// permuted CSR but never the scratch.
type Layout struct {
	// Perm maps new id -> old id; Inv maps old id -> new id.
	Perm, Inv []int32

	// Immutable after NewLayout; shared between clones.
	offsets []int64
	adj     []int32
	ew      []float64

	// Per-instance scratch, allocated lazily on first use so cached layouts
	// (and fresh clones) cost nothing until they actually run an SpMV.
	xp   []float64
	yp   []float64
	fp   []bool
	xp32 []float32
	ew32 []float32 // permuted float32 mirror of ew, built on first 32-bit SpMV
}

// NewLayout builds the reordered mirror of the given weighted CSR adjacency
// (ew may be nil for unit weights). Method None yields a working identity
// layout, though callers normally skip the wrapper entirely in that case.
func NewLayout(offsets []int64, adj []int32, ew []float64, m Method) *Layout {
	perm, inv := Permutation(offsets, adj, m)
	n := len(offsets) - 1
	l := &Layout{
		Perm:    perm,
		Inv:     inv,
		offsets: make([]int64, n+1),
		adj:     make([]int32, len(adj)),
	}
	if ew != nil {
		l.ew = make([]float64, len(ew))
	}
	pos := int64(0)
	for nv := 0; nv < n; nv++ {
		ov := perm[nv]
		l.offsets[nv] = pos
		for i := offsets[ov]; i < offsets[ov+1]; i++ {
			l.adj[pos] = inv[adj[i]]
			if ew != nil {
				l.ew[pos] = ew[i]
			}
			pos++
		}
	}
	l.offsets[n] = pos
	return l
}

// N returns the number of vertices in the layout.
func (l *Layout) N() int { return len(l.Perm) }

// Arcs returns the number of arcs in the layout.
func (l *Layout) Arcs() int { return len(l.adj) }

// Bandwidth returns the arc bandwidth of the reordered adjacency.
func (l *Layout) Bandwidth() int64 { return Bandwidth(l.offsets, l.adj) }

// Weighted reports whether the layout carries per-arc edge weights (it was
// built with ew != nil). Injection paths use it to reject a cached layout
// whose weighting disagrees with the graph being solved.
func (l *Layout) Weighted() bool { return l.ew != nil }

// Clone returns a layout sharing the immutable permutation and permuted CSR
// with l but owning its own (lazily allocated) scratch. A cached layout is
// safe to hand to concurrent solves as long as each receives its own clone.
func (l *Layout) Clone() *Layout {
	return &Layout{
		Perm:    l.Perm,
		Inv:     l.Inv,
		offsets: l.offsets,
		adj:     l.adj,
		ew:      l.ew,
	}
}

// Bytes estimates the heap footprint of the layout's immutable parts — the
// permutation pair and the permuted CSR — for cache byte accounting. Scratch
// is excluded: cached layouts carry none, and clones pay for their own.
func (l *Layout) Bytes() int64 {
	b := int64(len(l.Perm))*4 + int64(len(l.Inv))*4 +
		int64(len(l.offsets))*8 + int64(len(l.adj))*4
	if l.ew != nil {
		b += int64(len(l.ew)) * 8
	}
	return b
}

// Matches reports whether the layout was built over a CSR of the same shape
// (vertex and arc counts). It is the cheap sanity check an injection path
// runs before trusting a cached layout; content equality is the caller's
// responsibility (prep caches key layouts by graph content hash).
func (l *Layout) Matches(offsets []int64, adj []int32) bool {
	return len(l.Perm) == len(offsets)-1 && len(l.adj) == len(adj)
}

// scratch ensures the float64 SpMV scratch is allocated.
func (l *Layout) scratch(masked bool) {
	n := len(l.Perm)
	if l.xp == nil {
		l.xp = make([]float64, n)
		l.yp = make([]float64, n)
	}
	if masked && l.fp == nil {
		l.fp = make([]bool, n)
	}
}

// SpMVMasked computes dst = A_w·x restricted to rows where fixed is false
// (fixed == nil computes every row), with x, dst and fixed indexed by
// ORIGINAL vertex ids. It mirrors x (and the mask) into the permuted index
// space, runs the register-blocked gather kernel over the bandwidth-reduced
// layout, and scatters results back through Perm, producing output
// bit-identical to vecmath.SpMVWeightedMaskedPool on the unreordered CSR at
// any worker count.
func (l *Layout) SpMVMasked(x, dst []float64, fixed []bool, p *vecmath.Pool) {
	n := len(l.Perm)
	l.scratch(fixed != nil)
	if fixed == nil {
		p.For(n, func(lo, hi int) {
			for nv := lo; nv < hi; nv++ {
				l.xp[nv] = x[l.Perm[nv]]
			}
		})
		vecmath.SpMVBlockedPool(l.offsets, l.adj, l.ew, l.xp, l.yp, nil, p)
		p.For(n, func(lo, hi int) {
			for nv := lo; nv < hi; nv++ {
				dst[l.Perm[nv]] = l.yp[nv]
			}
		})
		return
	}
	p.For(n, func(lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			ov := l.Perm[nv]
			l.xp[nv] = x[ov]
			l.fp[nv] = fixed[ov]
		}
	})
	vecmath.SpMVBlockedPool(l.offsets, l.adj, l.ew, l.xp, l.yp, l.fp, p)
	p.For(n, func(lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			if !l.fp[nv] {
				dst[l.Perm[nv]] = l.yp[nv]
			}
		}
	})
}

// scratch32 ensures the float32 gather scratch (and the permuted float32
// edge-weight mirror, when the layout is weighted) is allocated.
func (l *Layout) scratch32(masked bool) {
	n := len(l.Perm)
	if l.xp32 == nil {
		l.xp32 = make([]float32, n)
	}
	if l.yp == nil {
		l.yp = make([]float64, n)
	}
	if masked && l.fp == nil {
		l.fp = make([]bool, n)
	}
	if l.ew != nil && l.ew32 == nil {
		l.ew32 = make([]float32, len(l.ew))
		for i, w := range l.ew {
			l.ew32[i] = float32(w)
		}
	}
}

// SpMVMasked32 is SpMVMasked through the float32 gather kernel: x is mirrored
// into the permuted index space rounded to float32, the register-blocked
// 32-bit kernel accumulates each row in float64 in its original arc order,
// and results scatter back through Perm. The output is bit-identical to
// vecmath.SpMV32WeightedMaskedPool over the unreordered CSR with x and ew
// converted elementwise — the float32 rounding happens per value, before any
// ordering — at any worker count.
func (l *Layout) SpMVMasked32(x, dst []float64, fixed []bool, p *vecmath.Pool) {
	n := len(l.Perm)
	l.scratch32(fixed != nil)
	if fixed == nil {
		p.For(n, func(lo, hi int) {
			for nv := lo; nv < hi; nv++ {
				l.xp32[nv] = float32(x[l.Perm[nv]])
			}
		})
		vecmath.SpMVBlocked32Pool(l.offsets, l.adj, l.ew32, l.xp32, l.yp, nil, p)
		p.For(n, func(lo, hi int) {
			for nv := lo; nv < hi; nv++ {
				dst[l.Perm[nv]] = l.yp[nv]
			}
		})
		return
	}
	p.For(n, func(lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			ov := l.Perm[nv]
			l.xp32[nv] = float32(x[ov])
			l.fp[nv] = fixed[ov]
		}
	})
	vecmath.SpMVBlocked32Pool(l.offsets, l.adj, l.ew32, l.xp32, l.yp, l.fp, p)
	p.For(n, func(lo, hi int) {
		for nv := lo; nv < hi; nv++ {
			if !l.fp[nv] {
				dst[l.Perm[nv]] = l.yp[nv]
			}
		}
	})
}
