package reorder

import (
	"math/rand"
	"testing"

	"mdbgp/internal/graph"
	"mdbgp/internal/vecmath"
)

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// bandGraph builds a path-plus-band graph under a deterministically shuffled
// labeling, so the ingest order has terrible locality but a bandwidth-
// reducing ordering can recover a narrow band.
func bandGraph(seed int64, n, width int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	label := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for d := 1; d <= width; d++ {
			if i+d < n {
				b.AddEdge(label[i], label[i+d])
			}
		}
	}
	return b.Build()
}

func TestParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		m, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if m.String() != name {
			t.Fatalf("Parse(%q).String() = %q", name, m.String())
		}
	}
	if m, err := Parse(""); err != nil || m != None {
		t.Fatalf("Parse(\"\") = %v, %v; want None", m, err)
	}
	if _, err := Parse("hilbert"); err == nil {
		t.Fatal("Parse(\"hilbert\") succeeded, want error")
	}
}

func TestPermutationBijective(t *testing.T) {
	for _, m := range []Method{None, Degree, BFS, RCM} {
		for _, n := range []int{0, 1, 57, 2000} {
			g := randomGraph(int64(n)+int64(m)*1000, max(n, 1), 3*n)
			if n == 0 {
				g = graph.NewBuilder(0).Build()
			}
			offsets, adj := g.CSR()
			perm, inv := Permutation(offsets, adj, m)
			if len(perm) != n || len(inv) != n {
				t.Fatalf("%v n=%d: lengths %d/%d", m, n, len(perm), len(inv))
			}
			seen := make([]bool, n)
			for nv, ov := range perm {
				if ov < 0 || int(ov) >= n || seen[ov] {
					t.Fatalf("%v n=%d: perm[%d]=%d not a bijection", m, n, nv, ov)
				}
				seen[ov] = true
				if inv[ov] != int32(nv) {
					t.Fatalf("%v n=%d: inv[perm[%d]] = %d", m, n, nv, inv[ov])
				}
			}
		}
	}
}

func TestPermutationDeterministic(t *testing.T) {
	g := randomGraph(11, 3000, 12000)
	offsets, adj := g.CSR()
	for _, m := range []Method{Degree, BFS, RCM} {
		p1, _ := Permutation(offsets, adj, m)
		p2, _ := Permutation(offsets, adj, m)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%v: permutation not deterministic at %d", m, i)
			}
		}
	}
}

func TestDegreeOrdering(t *testing.T) {
	g := randomGraph(5, 500, 3000)
	offsets, adj := g.CSR()
	perm, _ := Permutation(offsets, adj, Degree)
	deg := func(v int32) int64 { return offsets[v+1] - offsets[v] }
	for i := 1; i < len(perm); i++ {
		da, db := deg(perm[i-1]), deg(perm[i])
		if da < db || (da == db && perm[i-1] > perm[i]) {
			t.Fatalf("degree order violated at %d: (%d,%d) then (%d,%d)",
				i, perm[i-1], da, perm[i], db)
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	g := bandGraph(23, 4000, 4)
	offsets, adj := g.CSR()
	before := Bandwidth(offsets, adj)
	for _, m := range []Method{BFS, RCM} {
		l := NewLayout(offsets, adj, nil, m)
		after := l.Bandwidth()
		if after*4 > before {
			t.Fatalf("%v: bandwidth %d -> %d, expected at least 4x reduction", m, before, after)
		}
	}
}

func TestLayoutSpMVBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"random", randomGraph(31, 7000, 30000)},
		{"band", bandGraph(37, 5000, 3)},
		{"tiny", randomGraph(41, 3, 3)},
		{"edgeless", graph.NewBuilder(10).Build()},
	}
	for _, tc := range cases {
		offsets, adj := tc.g.CSR()
		n := tc.g.N()
		rng := rand.New(rand.NewSource(43))
		ew := make([]float64, len(adj))
		for i := range ew {
			ew[i] = rng.Float64()*2 - 0.5
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		fixed := make([]bool, n)
		for i := range fixed {
			fixed[i] = rng.Intn(5) == 0
		}
		for _, m := range []Method{None, Degree, BFS, RCM} {
			for _, weights := range []string{"unit", "weighted"} {
				w := ew
				if weights == "unit" {
					w = nil
				}
				l := NewLayout(offsets, adj, w, m)
				for _, mask := range []string{"nil", "masked"} {
					f := fixed
					if mask == "nil" {
						f = nil
					}
					for _, workers := range []int{1, 2, 8} {
						p := vecmath.NewPool(workers)
						want := make([]float64, n)
						got := make([]float64, n)
						for i := range want {
							want[i] = 7.25
							got[i] = 7.25
						}
						vecmath.SpMVWeightedMaskedPool(offsets, adj, w, x, want, f, p)
						l.SpMVMasked(x, got, f, p)
						for i := range want {
							if want[i] != got[i] {
								t.Fatalf("%s %v %s/%s workers=%d: dst[%d]=%v want %v",
									tc.name, m, weights, mask, workers, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestLayoutCloneSharesImmutableParts: clones must produce identical SpMV
// results, be safe to run concurrently, and share the permuted CSR arrays.
func TestLayoutCloneSharesImmutableParts(t *testing.T) {
	g := bandGraph(53, 4000, 4)
	offsets, adj := g.CSR()
	n := g.N()
	l := NewLayout(offsets, adj, nil, RCM)
	if !l.Matches(offsets, adj) {
		t.Fatal("layout does not match its own CSR")
	}
	if l.Matches(offsets[:n], adj) {
		t.Fatal("Matches accepted a CSR with the wrong vertex count")
	}
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	vecmath.SpMVWeightedMaskedPool(offsets, adj, nil, x, want, nil, nil)

	const clones = 8
	results := make([][]float64, clones)
	done := make(chan int, clones)
	for c := 0; c < clones; c++ {
		go func(c int) {
			cl := l.Clone()
			dst := make([]float64, n)
			p := vecmath.NewPool(1 + c%3)
			for rep := 0; rep < 3; rep++ {
				cl.SpMVMasked(x, dst, nil, p)
			}
			results[c] = dst
			done <- c
		}(c)
	}
	for c := 0; c < clones; c++ {
		<-done
	}
	for c, dst := range results {
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("clone %d: dst[%d]=%v want %v", c, i, dst[i], want[i])
			}
		}
	}
	if l.Bytes() <= 0 {
		t.Fatal("Bytes() must be positive for a non-empty layout")
	}
	if cl := l.Clone(); cl.Bytes() != l.Bytes() {
		t.Fatalf("clone accounts %d bytes, original %d", cl.Bytes(), l.Bytes())
	}
}

// TestLayoutSpMV32MatchesUnreordered: the layout's float32 path must be
// bit-identical to the checked 32-bit kernel over the unreordered CSR with
// elementwise-converted inputs.
func TestLayoutSpMV32MatchesUnreordered(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random", randomGraph(61, 5000, 22000)},
		{"band", bandGraph(67, 3000, 3)},
	} {
		offsets, adj := tc.g.CSR()
		n := tc.g.N()
		rng := rand.New(rand.NewSource(71))
		ew := make([]float64, len(adj))
		for i := range ew {
			ew[i] = rng.Float64()*2 - 0.5
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		fixed := make([]bool, n)
		for i := range fixed {
			fixed[i] = rng.Intn(5) == 0
		}
		x32 := make([]float32, n)
		for i := range x32 {
			x32[i] = float32(x[i])
		}
		ew32 := make([]float32, len(ew))
		for i := range ew32 {
			ew32[i] = float32(ew[i])
		}
		for _, m := range []Method{Degree, RCM} {
			for _, weights := range []string{"unit", "weighted"} {
				w, w32 := ew, ew32
				if weights == "unit" {
					w, w32 = nil, nil
				}
				l := NewLayout(offsets, adj, w, m)
				for _, mask := range []string{"nil", "masked"} {
					f := fixed
					if mask == "nil" {
						f = nil
					}
					for _, workers := range []int{1, 2, 8} {
						p := vecmath.NewPool(workers)
						want := make([]float64, n)
						got := make([]float64, n)
						for i := range want {
							want[i] = 7.25
							got[i] = 7.25
						}
						vecmath.SpMV32WeightedMaskedPool(offsets, adj, w32, x32, want, f, p)
						l.SpMVMasked32(x, got, f, p)
						for i := range want {
							if want[i] != got[i] {
								t.Fatalf("%s %v %s/%s workers=%d: dst[%d]=%v want %v",
									tc.name, m, weights, mask, workers, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}
