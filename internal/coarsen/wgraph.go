// Package coarsen provides the shared weighted-graph representation and
// heavy-edge matching coarsening used across multilevel partitioners: the
// METIS-style comparator (internal/metis) and the multilevel GD V-cycle
// (internal/multilevel) both contract the same hierarchy.
//
// A Graph carries multi-dimensional vertex weights (one vector per balance
// constraint) and per-arc edge weights that accumulate contracted
// multi-edges across levels, so every coarse level remains a faithful
// instance of the multi-dimensional balanced partitioning problem: vertex
// weight totals are preserved per dimension, and the weight of any coarse
// cut equals the weight of the corresponding fine cut.
package coarsen

import (
	"sort"

	"mdbgp/internal/graph"
)

// Graph is a weighted graph in CSR form used across a multilevel hierarchy.
// Fields are exported for zero-cost access by the GD kernels; treat them as
// read-only after construction.
type Graph struct {
	// Offsets has length N()+1; the arcs of v are Adj[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	// Adj holds neighbor ids; every undirected edge appears twice. Graphs
	// produced by Wrap, FromGraph and Build have sorted rows; Contract
	// emits rows in deterministic first-touch order instead (nothing in the
	// multilevel pipeline needs sorted coarse rows, and the per-row sort is
	// a double-digit share of contraction time) — do not binary-search or
	// merge-join adjacency on a contracted level.
	Adj []int32
	// EW holds per-arc edge weights aligned with Adj. nil means every arc has
	// weight 1 (the zero-copy wrap of an unweighted level-0 graph).
	EW []float64
	// VW[j][v] is the weight of vertex v in balance dimension j.
	VW [][]float64
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// Neighbors returns the adjacency of v and the aligned edge weights. The
// weight slice is nil for unit-weight graphs (see EW); callers on hot paths
// should branch once on nil rather than materializing ones.
func (g *Graph) Neighbors(v int) ([]int32, []float64) {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	if g.EW == nil {
		return g.Adj[lo:hi], nil
	}
	return g.Adj[lo:hi], g.EW[lo:hi]
}

// Totals returns the per-dimension vertex weight sums.
func (g *Graph) Totals() []float64 {
	out := make([]float64, len(g.VW))
	for j, w := range g.VW {
		for _, x := range w {
			out[j] += x
		}
	}
	return out
}

// Bytes estimates the heap footprint of the graph's arrays (CSR, edge
// weights, vertex weights) for cache byte accounting. Levels that alias
// another graph's storage (Wrap, and the offsets/adjacency of FromGraph)
// are charged for the shared bytes anyway — prep caches prefer conservative
// over-counting to silent under-counting.
func (g *Graph) Bytes() int64 {
	b := int64(len(g.Offsets))*8 + int64(len(g.Adj))*4 + int64(len(g.EW))*8
	for _, w := range g.VW {
		b += int64(len(w)) * 8
	}
	return b
}

// TotalEdgeWeight returns the summed weight of all undirected edges.
func (g *Graph) TotalEdgeWeight() float64 {
	if g.EW == nil {
		return float64(len(g.Adj)) / 2
	}
	s := 0.0
	for _, w := range g.EW {
		s += w
	}
	return s / 2
}

// Cut returns the total weight of edges crossing the bisection given by
// side (two distinct labels, e.g. ±1).
func (g *Graph) Cut(side []int8) float64 {
	c := 0.0
	for v := 0; v < g.N(); v++ {
		ns, ws := g.Neighbors(v)
		for i, u := range ns {
			if int(u) > v && side[u] != side[v] {
				if ws == nil {
					c++
				} else {
					c += ws[i]
				}
			}
		}
	}
	return c
}

// Wrap views an unweighted CSR graph as a unit-edge-weight Graph without
// copying: Adj and Offsets alias g's storage and EW stays nil, so the GD
// kernels keep their unweighted fast path on level 0.
func Wrap(g *graph.Graph, vw [][]float64) *Graph {
	offsets, adj := g.CSR()
	return &Graph{Offsets: offsets, Adj: adj, VW: vw}
}

// FromGraph copies an unweighted CSR graph into a Graph with materialized
// unit edge weights, for consumers that index edge weights unconditionally
// (the METIS-style FM refinement).
func FromGraph(g *graph.Graph, vw [][]float64) *Graph {
	offsets, adj := g.CSR()
	ew := make([]float64, len(adj))
	for i := range ew {
		ew[i] = 1
	}
	return &Graph{Offsets: offsets, Adj: adj, EW: ew, VW: vw}
}

// Triple is a directed weighted edge used while assembling a Graph.
type Triple struct {
	U, V int32
	W    float64
}

// Build assembles a Graph from directed triples (both directions must be
// present), merging duplicate arcs by summing weights and dropping self
// loops. Rows come out sorted, matching the canonical CSR invariants.
func Build(n int, triples []Triple, vw [][]float64) *Graph {
	counts := make([]int64, n+1)
	for _, t := range triples {
		if t.U != t.V {
			counts[t.U+1]++
		}
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]int32, counts[n])
	ew := make([]float64, counts[n])
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for _, t := range triples {
		if t.U == t.V {
			continue
		}
		adj[cursor[t.U]] = t.V
		ew[cursor[t.U]] = t.W
		cursor[t.U]++
	}
	offsets := make([]int64, n+1)
	out := int64(0)
	var row []arc
	for v := 0; v < n; v++ {
		row = row[:0]
		for i := counts[v]; i < counts[v+1]; i++ {
			row = append(row, arc{adj[i], ew[i]})
		}
		sortArcs(row)
		offsets[v] = out
		for i := 0; i < len(row); {
			j := i
			sum := 0.0
			for j < len(row) && row[j].v == row[i].v {
				sum += row[j].w
				j++
			}
			adj[out] = row[i].v
			ew[out] = sum
			out++
			i = j
		}
	}
	offsets[n] = out
	return &Graph{Offsets: offsets, Adj: adj[:out:out], EW: ew[:out:out], VW: vw}
}

// arc is one (neighbor, weight) adjacency entry during row assembly.
type arc struct {
	v int32
	w float64
}

// sortArcs orders a row by neighbor id with a stable sort, so duplicate arcs
// are summed in their gather order regardless of row length or worker count.
func sortArcs(row []arc) {
	if len(row) < 24 {
		for i := 1; i < len(row); i++ {
			x := row[i]
			j := i - 1
			for j >= 0 && row[j].v > x.v {
				row[j+1] = row[j]
				j--
			}
			row[j+1] = x
		}
		return
	}
	sort.SliceStable(row, func(a, b int) bool { return row[a].v < row[b].v })
}
