package coarsen

import (
	"math"
	"math/rand"
	"sync"

	"mdbgp/internal/vecmath"
)

// mergeScratch is the per-goroutine workspace of the row merge: a dense
// fused epoch-mark/accumulator over coarse ids, plus the touched-id list.
type mergeScratch struct {
	am      []epochAcc
	touched []int32
}

// epochAcc is a fused epoch mark + accumulator entry: cluster scoring
// touches one cache line per candidate instead of two parallel arrays.
type epochAcc struct {
	epoch int32
	acc   float64
}

// arena recycles the row-assembly buffers across Contract calls (every row
// is written before it is read, so stale contents are harmless); a V-cycle
// contracts once per level and the buffers only shrink going coarser, so
// reuse avoids re-zeroing ~|arcs| of scratch per level.
type arena struct {
	adj []int32
	ew  []float64
}

var contractArena = sync.Pool{New: func() any { return &arena{} }}

// cnScorer scores candidate pairs by edge weight plus shared-neighbor
// weight — Σ_t min(w(v,t), w(u,t)) over common neighbors t — the signal both
// the CN-aware matching and cluster seeding use (a bare edge weight carries
// no information on a unit-weight level). mark/nw hold v's neighborhood,
// epoch-validated so no clearing is needed between vertices.
type cnScorer struct {
	mark []int32
	nw   []float64
	// degreeCap bounds the candidate degree scanned; hubs score by edge
	// weight alone.
	degreeCap int
}

func newCNScorer(n, degreeCap int) *cnScorer {
	return &cnScorer{mark: make([]int32, n), nw: make([]float64, n), degreeCap: degreeCap}
}

// begin loads v's neighborhood for the given epoch (any value unique to v
// within the current pass).
func (s *cnScorer) begin(ns []int32, ews []float64, epoch int32) {
	for i, t := range ns {
		s.mark[t] = epoch
		if ews == nil {
			s.nw[t] = 1
		} else {
			s.nw[t] = ews[i]
		}
	}
}

// score returns w plus the shared-neighbor weight of candidate u against
// the neighborhood loaded by begin.
func (s *cnScorer) score(g *Graph, u int32, w float64, epoch int32) float64 {
	uns, uews := g.Neighbors(int(u))
	if len(uns) > s.degreeCap {
		return w
	}
	for k, t := range uns {
		if s.mark[t] == epoch {
			uw := 1.0
			if uews != nil {
				uw = uews[k]
			}
			w += math.Min(s.nw[t], uw)
		}
	}
	return w
}

// MatchOptions tunes the heavy-edge matching.
type MatchOptions struct {
	// CommonNeighbors adds the weight of shared neighbors to each
	// candidate's score: score(u,v) = w(u,v) + Σ_t min(w(v,t), w(u,t)).
	// Plain heavy-edge matching carries no signal on a unit-weight finest
	// level (every edge weighs 1, so it contracts a RANDOM matching, and
	// every cross-cluster merge permanently forfeits cut options); shared
	// neighborhood weight is exactly the evidence that two endpoints belong
	// to the same cluster. Costs one sorted-adjacency mark pass per matched
	// vertex, skipped for hub candidates (degree > CommonNeighborCap).
	CommonNeighbors bool
	// CommonNeighborCap bounds the candidate degree scanned for shared
	// neighbors (default 96); hubs score by edge weight alone.
	CommonNeighborCap int
}

// defaultCNDegreeCap is the default hub cutoff for shared-neighbor scoring.
const defaultCNDegreeCap = 96

func (o *MatchOptions) normalize() {
	if o.CommonNeighborCap <= 0 {
		o.CommonNeighborCap = defaultCNDegreeCap
	}
}

// Coarsen contracts a heavy-edge matching of g [Karypis–Kumar SC'98],
// capping merged vertex weights per dimension so coarse vertices stay small
// enough to balance later. It returns the coarse graph and the fine→coarse
// vertex map.
//
// The matching itself is a cheap serial scan driven by rng (one Perm per
// level), so a fixed seed yields a fixed matching. Contraction — vertex
// weight accumulation and coarse CSR assembly — is sharded over the pool in
// fixed per-coarse-vertex units, so the coarse graph is bit-identical at any
// worker count (a nil pool runs serially).
func Coarsen(g *Graph, opt MatchOptions, rng *rand.Rand, pool *vecmath.Pool) (*Graph, []int32) {
	opt.normalize()
	n := g.N()
	totals := g.Totals()
	caps := make([]float64, len(totals))
	for j, t := range totals {
		caps[j] = math.Max(t/20, 4*t/float64(n))
	}
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	var scorer *cnScorer
	if opt.CommonNeighbors {
		scorer = newCNScorer(n, opt.CommonNeighborCap)
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		ns, ews := g.Neighbors(v)
		epoch := int32(v) + 1
		if scorer != nil {
			scorer.begin(ns, ews, epoch)
		}
		best, bestW := int32(-1), 0.0
		for i, u := range ns {
			if match[u] != -1 || int(u) == v {
				continue
			}
			ok := true
			for j := range caps {
				if g.VW[j][v]+g.VW[j][u] > caps[j] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			w := 1.0
			if ews != nil {
				w = ews[i]
			}
			if scorer != nil {
				w = scorer.score(g, u, w, epoch)
			}
			if w > bestW {
				best, bestW = u, w
			}
		}
		if best == -1 {
			match[v] = int32(v)
		} else {
			match[v] = best
			match[best] = int32(v)
		}
	}
	return contractMatching(g, match, pool)
}

// contractMatching reindexes a matching into a fine→coarse map (coarse ids
// assigned in ascending order of each pair's smaller fine id) and contracts
// it.
func contractMatching(g *Graph, match []int32, pool *vecmath.Pool) (*Graph, []int32) {
	n := g.N()
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = next
		if int(match[v]) != v {
			cmap[match[v]] = next
		}
		next++
	}
	return Contract(g, cmap, int(next), pool), cmap
}

// Contract builds the coarse graph for an arbitrary aggregation: cmap maps
// every fine vertex to one of cn coarse vertices. Vertex weights accumulate
// per dimension, parallel fine edges merge by summing weights, and
// intra-group edges vanish. Member lists are ordered by ascending fine id,
// which fixes every floating point summation order; each coarse row is
// produced by exactly one goroutine, so the result is bit-identical at any
// worker count.
func Contract(g *Graph, cmap []int32, cn int, pool *vecmath.Pool) *Graph {
	n := g.N()
	// Counting sort of fine vertices by coarse id: members of coarse c are
	// memberList[memberStart[c]:memberStart[c+1]] in ascending fine id.
	memberStart := make([]int32, cn+1)
	for _, c := range cmap {
		memberStart[c+1]++
	}
	for c := 0; c < cn; c++ {
		memberStart[c+1] += memberStart[c]
	}
	memberList := make([]int32, n)
	cursor := make([]int32, cn)
	copy(cursor, memberStart[:cn])
	for v := 0; v < n; v++ {
		c := cmap[v]
		memberList[cursor[c]] = int32(v)
		cursor[c]++
	}

	d := len(g.VW)
	cvw := make([][]float64, d)
	for j := range cvw {
		cvw[j] = make([]float64, cn)
	}
	pool.For(cn, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			for j := 0; j < d; j++ {
				w := 0.0
				for _, v := range memberList[memberStart[c]:memberStart[c+1]] {
					w += g.VW[j][v]
				}
				cvw[j][c] = w
			}
		}
	})

	// Coarse rows: gather the members' arcs mapped through cmap, drop
	// intra-pair arcs, merge duplicates with a dense accumulator (deep
	// levels have huge multi-edge fan-in; per-row sorting of un-merged arcs
	// would dominate the whole V-cycle), then sort only the merged neighbor
	// ids. Rows are assembled into an upper-bound-sized scratch area and
	// compacted afterwards. Accumulation order per row is the fixed gather
	// order and each row is produced by exactly one goroutine, so edge
	// weights are bit-identical at any worker count; the scratch buffers are
	// recycled through a sync.Pool, which never affects row content thanks
	// to the row-id epoch marks.
	bound := make([]int64, cn+1)
	for c := 0; c < cn; c++ {
		deg := int64(0)
		for _, v := range memberList[memberStart[c]:memberStart[c+1]] {
			deg += g.Offsets[v+1] - g.Offsets[v]
		}
		bound[c+1] = bound[c] + deg
	}
	ar := contractArena.Get().(*arena)
	defer contractArena.Put(ar)
	if int64(cap(ar.adj)) < bound[cn] {
		ar.adj = make([]int32, bound[cn])
		ar.ew = make([]float64, bound[cn])
	}
	scratchAdj := ar.adj[:bound[cn]]
	scratchEW := ar.ew[:bound[cn]]
	rowLen := make([]int32, cn)
	var scratchPool sync.Pool
	scratchPool.New = func() any {
		return &mergeScratch{am: make([]epochAcc, cn)}
	}
	pool.For(cn, func(lo, hi int) {
		sc := scratchPool.Get().(*mergeScratch)
		defer scratchPool.Put(sc)
		touched := sc.touched[:0]
		for c := lo; c < hi; c++ {
			touched = touched[:0]
			epoch := int32(c) + 1 // fresh zeroed marks never collide
			for _, v := range memberList[memberStart[c]:memberStart[c+1]] {
				rlo, rhi := g.Offsets[v], g.Offsets[v+1]
				if g.EW == nil {
					for _, u := range g.Adj[rlo:rhi] {
						cu := cmap[u]
						if cu == int32(c) {
							continue
						}
						if sc.am[cu].epoch != epoch {
							sc.am[cu] = epochAcc{epoch: epoch, acc: 1}
							touched = append(touched, cu)
						} else {
							sc.am[cu].acc++
						}
					}
				} else {
					arcs := g.Adj[rlo:rhi]
					ews := g.EW[rlo:rhi]
					for i, u := range arcs {
						cu := cmap[u]
						if cu == int32(c) {
							continue
						}
						if sc.am[cu].epoch != epoch {
							sc.am[cu] = epochAcc{epoch: epoch, acc: ews[i]}
							touched = append(touched, cu)
						} else {
							sc.am[cu].acc += ews[i]
						}
					}
				}
			}
			// Rows come out in first-touch order, NOT sorted: nothing in the
			// pipeline needs sorted coarse rows (SpMV, Cut, further
			// contraction and FM refinement are order-insensitive), the
			// order is a deterministic function of the aggregation, and
			// skipping the per-row sort is a double-digit share of
			// contraction time. Use Build if a canonical sorted graph is
			// required.
			out := bound[c]
			for _, cu := range touched {
				scratchAdj[out] = cu
				scratchEW[out] = sc.am[cu].acc
				out++
			}
			rowLen[c] = int32(len(touched))
		}
		sc.touched = touched
	})

	offsets := make([]int64, cn+1)
	for c := 0; c < cn; c++ {
		offsets[c+1] = offsets[c] + int64(rowLen[c])
	}
	adj := make([]int32, offsets[cn])
	ew := make([]float64, offsets[cn])
	pool.For(cn, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			copy(adj[offsets[c]:offsets[c+1]], scratchAdj[bound[c]:bound[c]+int64(rowLen[c])])
			copy(ew[offsets[c]:offsets[c+1]], scratchEW[bound[c]:bound[c]+int64(rowLen[c])])
		}
	})
	return &Graph{Offsets: offsets, Adj: adj, EW: ew, VW: cvw}
}

// ClusterOptions tunes the greedy cluster coarsening.
type ClusterOptions struct {
	// MaxClusterVertices scales the per-dimension cluster weight cap:
	// cap_j = min(totals_j/8, MaxClusterVertices·totals_j/n) with n the
	// CURRENT level's vertex count (default 8) — clusters may grow to this
	// multiple of the level's average vertex weight, never past ⅛ of a
	// dimension's total. Ignored when Caps is set.
	MaxClusterVertices int
	// Caps, when non-nil, are ABSOLUTE per-dimension cluster weight bounds.
	// A hierarchy must anchor the caps at the finest level (Hierarchy does
	// this): a per-level relative cap lets every level grow clusters by the
	// same factor again, and a "128-vertex" cap at level 1 really means 128
	// whole communities — the over-merge that destroys coarse solvability.
	Caps []float64
}

func (o *ClusterOptions) normalize() {
	if o.MaxClusterVertices <= 0 {
		o.MaxClusterVertices = 8
	}
}

// ClusterCaps derives the absolute per-dimension cluster weight caps for a
// hierarchy rooted at g: maxVertices multiples of g's average vertex weight,
// bounded by ⅛ of each dimension's total.
func ClusterCaps(g *Graph, maxVertices int) []float64 {
	totals := g.Totals()
	caps := make([]float64, len(totals))
	for j, t := range totals {
		caps[j] = math.Min(t/8, float64(maxVertices)*t/float64(g.N()))
	}
	return caps
}

// CoarsenClusters contracts size-capped greedy clusters instead of a
// matching: each vertex (in rng order) joins the neighboring cluster it is
// most strongly connected to — summing ALL its arcs into that cluster, which
// makes the score implicitly common-neighbor aware — or pairs with its
// heaviest free neighbor when no cluster is adjacent, subject to
// per-dimension weight caps. One level shrinks the graph by roughly the
// cluster size instead of 2×, so hierarchies are a third as deep as matching
// hierarchies and contraction touches each fine arc far fewer times; on
// graphs with community structure the clusters track communities the way
// label propagation does.
//
// The clustering scan is serial and rng-driven (deterministic for a fixed
// seed); contraction is the shared Contract, bit-identical at any worker
// count.
func CoarsenClusters(g *Graph, opt ClusterOptions, rng *rand.Rand, pool *vecmath.Pool) (*Graph, []int32) {
	opt.normalize()
	n := g.N()
	d := len(g.VW)
	caps := opt.Caps
	if caps == nil {
		caps = ClusterCaps(g, opt.MaxClusterVertices)
	}

	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	// Cluster weights interleaved per cluster (cwf[c*d+j]) so a cap check
	// touches one cache line, not d.
	cwf := make([]float64, 0, (n/2+1)*d)
	clusters := 0
	newCluster := func(v int) int32 {
		c := int32(clusters)
		clusters++
		for j := 0; j < d; j++ {
			cwf = append(cwf, g.VW[j][v])
		}
		return c
	}
	join := func(v int, c int32) {
		cmap[v] = c
		base := int(c) * d
		for j := 0; j < d; j++ {
			cwf[base+j] += g.VW[j][v]
		}
	}

	// Dense scoring scratch over clusters, epoch mark and accumulator fused
	// in one 16-byte entry so first-touch and re-touch hit a single cache
	// line (degenerate graphs can leave every vertex a singleton cluster,
	// hence size n). vmark/vnw hold v's own neighborhood for common-neighbor
	// scoring of seed pairs.
	am := make([]epochAcc, n)
	touched := make([]int32, 0, 64)
	freeCand := make([]int32, 0, 64)
	scorer := newCNScorer(n, defaultCNDegreeCap)

	// Unassigned vertices are tagged in cmap itself: freeLight marks
	// vertices below half the cap in every dimension — two such vertices
	// always pair within the caps — so the per-arc hot path reads ONE array
	// (cmap) instead of cmap plus a fits table; the d-way weight check runs
	// only for the rare heavy endpoints.
	const (
		freeLight = -2
		freeHeavy = -1
	)
	for u := 0; u < n; u++ {
		light := true
		for j := 0; j < d; j++ {
			if g.VW[j][u] > caps[j]/2 {
				light = false
				break
			}
		}
		if light {
			cmap[u] = freeLight
		}
	}
	pairFits := func(v int, u int32) bool {
		for j := 0; j < d; j++ {
			if g.VW[j][v]+g.VW[j][u] > caps[j] {
				return false
			}
		}
		return true
	}

	order := rng.Perm(n)
	for vi, v := range order {
		if cmap[v] >= 0 {
			continue
		}
		ns, ews := g.Neighbors(v)
		epoch := int32(vi) + 1
		touched = touched[:0]
		// Pass 1: score adjacent clusters only. Free neighbors are skipped
		// with a single compare — they matter only on the (rare) seed path,
		// which re-scans the row below.
		if ews == nil {
			for _, u := range ns {
				if c := cmap[u]; c >= 0 {
					if am[c].epoch != epoch {
						am[c] = epochAcc{epoch: epoch, acc: 1}
						touched = append(touched, c)
					} else {
						am[c].acc++
					}
				}
			}
		} else {
			for i, u := range ns {
				if c := cmap[u]; c >= 0 {
					if am[c].epoch != epoch {
						am[c] = epochAcc{epoch: epoch, acc: ews[i]}
						touched = append(touched, c)
					} else {
						am[c].acc += ews[i]
					}
				}
			}
		}
		bestC, bestCW := int32(-1), 0.0
		for _, c := range touched {
			if sc := am[c].acc; sc > bestCW {
				ok := true
				base := int(c) * d
				for j := 0; j < d; j++ {
					if cwf[base+j]+g.VW[j][v] > caps[j] {
						ok = false
						break
					}
				}
				if ok {
					bestC, bestCW = c, sc
				}
			}
		}
		if bestC != -1 {
			join(v, bestC)
			continue
		}
		// No joinable adjacent cluster: seed a new one. The partner choice
		// is what decides whether the seed respects community structure, and
		// a bare edge weight carries no signal on a unit-weight level — so
		// score partners by edge weight plus shared-neighbor weight, exactly
		// as MatchOptions.CommonNeighbors does for matchings.
		vLight := cmap[v] == freeLight
		freeCand = freeCand[:0]
		for i, u := range ns {
			if int(u) == v || cmap[u] >= 0 {
				continue
			}
			if (vLight && cmap[u] == freeLight) || pairFits(v, u) {
				freeCand = append(freeCand, int32(i))
			}
		}
		bestFree, bestFreeW := int32(-1), 0.0
		if len(freeCand) > 0 {
			// Scoring every candidate costs deg² per seed; the first dozen
			// (in adjacency order, deterministic) carry plenty of signal.
			if len(freeCand) > 12 {
				freeCand = freeCand[:12]
			}
			scorer.begin(ns, ews, epoch)
			for _, i := range freeCand {
				u := ns[i]
				w := 1.0
				if ews != nil {
					w = ews[i]
				}
				w = scorer.score(g, u, w, epoch)
				if w > bestFreeW {
					bestFree, bestFreeW = u, w
				}
			}
		}
		if bestFree != -1 {
			c := newCluster(v)
			cmap[v] = c
			join(int(bestFree), c)
		} else {
			cmap[v] = newCluster(v)
		}
	}

	// Renumber clusters in first-appearance order of fine ids: coarse ids
	// then correlate with fine id ranges, which keeps the contraction's
	// member walk and the coarse CSR cache-friendly. Purely a relabeling —
	// deterministic and independent of the worker count.
	cn := clusters
	renum := make([]int32, cn)
	for i := range renum {
		renum[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if c := cmap[v]; renum[c] == -1 {
			renum[c] = next
			next++
		}
	}
	for v := 0; v < n; v++ {
		cmap[v] = renum[cmap[v]]
	}
	return Contract(g, cmap, cn, pool), cmap
}

// HierarchyOptions bounds a coarsening hierarchy.
type HierarchyOptions struct {
	// CoarsenTo stops coarsening once a level has at most this many vertices
	// (default 160, METIS's grain).
	CoarsenTo int
	// MaxLevels bounds the number of coarse levels built (0 = unlimited).
	MaxLevels int
	// StallRatio aborts when a level shrinks to more than this fraction of
	// its parent — the matching has stalled (default 0.95).
	StallRatio float64
	// EdgeStallRatio, when in (0, 1), additionally aborts once a level keeps
	// more than this fraction of its parent's arcs: contraction is no longer
	// absorbing edge weight, so further levels just get denser and harder
	// (near-complete weighted graphs) without getting cheaper. The V-cycle
	// uses this to stop where coarsening stops paying; 0 disables the check
	// (the METIS comparator coarsens to its vertex threshold regardless).
	EdgeStallRatio float64
	// Match tunes the per-level matching (ignored when Clusters is set).
	Match MatchOptions
	// Clusters selects greedy cluster coarsening instead of pair matching:
	// ~3× fewer levels, implicitly community-aware. The METIS comparator
	// keeps classic matching; the GD V-cycle uses clusters.
	Clusters bool
	// Cluster tunes cluster coarsening when Clusters is set.
	Cluster ClusterOptions
}

func (o *HierarchyOptions) normalize() {
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 160
	}
	if o.StallRatio <= 0 || o.StallRatio >= 1 {
		o.StallRatio = 0.95
	}
}

// Hierarchy repeatedly coarsens g0 until the options say stop. It returns
// all levels finest-first (levels[0] == g0) and the fine→coarse maps
// (cmaps[i] maps levels[i] vertices to levels[i+1] vertices). The rng drives
// one matching per level; determinism follows from Coarsen's contract.
func Hierarchy(g0 *Graph, opt HierarchyOptions, rng *rand.Rand, pool *vecmath.Pool) (levels []*Graph, cmaps [][]int32) {
	opt.normalize()
	if opt.Clusters && opt.Cluster.Caps == nil {
		// Anchor cluster caps at the finest level so deeper levels cannot
		// re-grow clusters by the same relative factor (see ClusterOptions).
		opt.Cluster.normalize()
		opt.Cluster.Caps = ClusterCaps(g0, opt.Cluster.MaxClusterVertices)
	}
	levels = append(levels, g0)
	level := g0
	for level.N() > opt.CoarsenTo {
		if opt.MaxLevels > 0 && len(levels) > opt.MaxLevels {
			break
		}
		var coarse *Graph
		var cmap []int32
		if opt.Clusters {
			coarse, cmap = CoarsenClusters(level, opt.Cluster, rng, pool)
		} else {
			coarse, cmap = Coarsen(level, opt.Match, rng, pool)
		}
		if float64(coarse.N()) >= float64(level.N())*opt.StallRatio {
			break
		}
		if opt.EdgeStallRatio > 0 && opt.EdgeStallRatio < 1 &&
			float64(len(coarse.Adj)) >= float64(len(level.Adj))*opt.EdgeStallRatio {
			break
		}
		levels = append(levels, coarse)
		cmaps = append(cmaps, cmap)
		level = coarse
	}
	return levels, cmaps
}
