package coarsen

import (
	"math"
	"math/rand"
	"testing"

	"mdbgp/internal/gen"
	"mdbgp/internal/vecmath"
	"mdbgp/internal/weights"
)

func TestBuildMergesDuplicates(t *testing.T) {
	vw := [][]float64{{1, 1, 1}}
	triples := []Triple{
		{0, 1, 1}, {1, 0, 1},
		{0, 1, 2}, {1, 0, 2}, // duplicate edge: weights sum
		{1, 2, 1}, {2, 1, 1},
		{2, 2, 5}, // self loop dropped
	}
	g := Build(3, triples, vw)
	ns, ws := g.Neighbors(0)
	if len(ns) != 1 || ns[0] != 1 || ws[0] != 3 {
		t.Fatalf("vertex 0: ns=%v ws=%v", ns, ws)
	}
	ns, _ = g.Neighbors(2)
	if len(ns) != 1 || ns[0] != 1 {
		t.Fatalf("self loop not dropped: %v", ns)
	}
}

func TestWrapMatchesFromGraph(t *testing.T) {
	g := gen.Grid(8, 8, false)
	ws, _ := weights.Standard(g, 2)
	wrapped := Wrap(g, ws)
	copied := FromGraph(g, ws)
	if wrapped.N() != copied.N() || wrapped.TotalEdgeWeight() != copied.TotalEdgeWeight() {
		t.Fatalf("wrap/copy mismatch: n %d/%d, W %g/%g",
			wrapped.N(), copied.N(), wrapped.TotalEdgeWeight(), copied.TotalEdgeWeight())
	}
	side := make([]int8, g.N())
	for v := range side {
		side[v] = int8(1 - 2*(v%2))
	}
	if a, b := wrapped.Cut(side), copied.Cut(side); a != b {
		t.Fatalf("cut mismatch: wrap %g, copy %g", a, b)
	}
	for v := 0; v < g.N(); v++ {
		ns, ews := wrapped.Neighbors(v)
		if ews != nil {
			t.Fatal("wrapped graph should report nil edge weights")
		}
		ns2, ews2 := copied.Neighbors(v)
		if len(ns) != len(ns2) || len(ews2) != len(ns2) {
			t.Fatalf("vertex %d adjacency mismatch", v)
		}
	}
}

func TestCoarsenHalvesAndConserves(t *testing.T) {
	g := gen.Grid(20, 20, false)
	ws, _ := weights.Standard(g, 2)
	lvl := FromGraph(g, ws)
	rng := rand.New(rand.NewSource(1))
	coarse, cmap := Coarsen(lvl, MatchOptions{}, rng, nil)
	if coarse.N() >= lvl.N() {
		t.Fatalf("coarsening did not shrink: %d -> %d", lvl.N(), coarse.N())
	}
	if coarse.N() < lvl.N()/2 {
		t.Fatalf("matching contracted more than pairs: %d -> %d", lvl.N(), coarse.N())
	}
	assertConserved(t, lvl, coarse, cmap)
	for v, c := range cmap {
		if c < 0 || int(c) >= coarse.N() {
			t.Fatalf("bad cmap[%d]=%d", v, c)
		}
	}
}

// assertConserved checks the two coarsening invariants: per-dimension vertex
// weight totals are preserved exactly, and edge weight is conserved in the
// cut sense — the coarse total equals the weight of fine edges whose
// endpoints were not merged (contracted edges vanish into vertices; they can
// never be cut again).
func assertConserved(t *testing.T, fine, coarse *Graph, cmap []int32) {
	t.Helper()
	ft, ct := fine.Totals(), coarse.Totals()
	for j := range ft {
		if math.Abs(ft[j]-ct[j]) > 1e-9*math.Max(1, math.Abs(ft[j])) {
			t.Fatalf("dim %d: vertex weight not conserved: fine %g coarse %g", j, ft[j], ct[j])
		}
	}
	crossing := 0.0
	for v := 0; v < fine.N(); v++ {
		ns, ews := fine.Neighbors(v)
		for i, u := range ns {
			if int(u) > v && cmap[u] != cmap[v] {
				if ews == nil {
					crossing++
				} else {
					crossing += ews[i]
				}
			}
		}
	}
	if got := coarse.TotalEdgeWeight(); math.Abs(got-crossing) > 1e-6*math.Max(1, crossing) {
		t.Fatalf("edge weight not conserved: coarse total %g, fine crossing weight %g", got, crossing)
	}
}

func TestCoarsenPreservesCuts(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 2000, Communities: 4, AvgDegree: 10, InFraction: 0.8, DegreeExponent: 2, Seed: 3})
	ws, _ := weights.Standard(g, 2)
	lvl := Wrap(g, ws)
	rng := rand.New(rand.NewSource(4))
	coarse, cmap := Coarsen(lvl, MatchOptions{}, rng, nil)
	assertConserved(t, lvl, coarse, cmap)

	// Any coarse bisection lifted through cmap has exactly the same cut
	// weight on the fine graph.
	cside := make([]int8, coarse.N())
	r := rand.New(rand.NewSource(5))
	for c := range cside {
		cside[c] = int8(1 - 2*r.Intn(2))
	}
	fside := make([]int8, lvl.N())
	for v := range fside {
		fside[v] = cside[cmap[v]]
	}
	if cc, fc := coarse.Cut(cside), lvl.Cut(fside); math.Abs(cc-fc) > 1e-6 {
		t.Fatalf("lifted cut mismatch: coarse %g, fine %g", cc, fc)
	}
}

func TestCoarsenDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 9000, Communities: 3, AvgDegree: 12, InFraction: 0.7, DegreeExponent: 2, Seed: 6})
	ws, _ := weights.Standard(g, 2)
	lvl := Wrap(g, ws)
	ref, refMap := Coarsen(lvl, MatchOptions{CommonNeighbors: true}, rand.New(rand.NewSource(7)), vecmath.NewPool(1))
	for _, workers := range []int{2, 8} {
		got, gotMap := Coarsen(lvl, MatchOptions{CommonNeighbors: true}, rand.New(rand.NewSource(7)), vecmath.NewPool(workers))
		if got.N() != ref.N() {
			t.Fatalf("workers=%d: n %d, want %d", workers, got.N(), ref.N())
		}
		for v := range refMap {
			if refMap[v] != gotMap[v] {
				t.Fatalf("workers=%d: cmap[%d] = %d, want %d", workers, v, gotMap[v], refMap[v])
			}
		}
		for i := range ref.Offsets {
			if ref.Offsets[i] != got.Offsets[i] {
				t.Fatalf("workers=%d: offsets[%d] differ", workers, i)
			}
		}
		for i := range ref.Adj {
			if ref.Adj[i] != got.Adj[i] || ref.EW[i] != got.EW[i] {
				t.Fatalf("workers=%d: arc %d differs (not bit-identical)", workers, i)
			}
		}
		for j := range ref.VW {
			for v := range ref.VW[j] {
				if ref.VW[j][v] != got.VW[j][v] {
					t.Fatalf("workers=%d: vw[%d][%d] differs", workers, j, v)
				}
			}
		}
	}
}

func TestHierarchyInvariants(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 6000, Communities: 4, AvgDegree: 14, InFraction: 0.75, DegreeExponent: 2.2, Seed: 8})
	ws, _ := weights.Standard(g, 3)
	levels, cmaps := Hierarchy(Wrap(g, ws), HierarchyOptions{CoarsenTo: 200}, rand.New(rand.NewSource(9)), nil)
	if len(levels) < 3 {
		t.Fatalf("expected a real hierarchy, got %d levels", len(levels))
	}
	if len(cmaps) != len(levels)-1 {
		t.Fatalf("cmaps %d, levels %d", len(cmaps), len(levels))
	}
	for i := 0; i+1 < len(levels); i++ {
		if levels[i+1].N() >= levels[i].N() {
			t.Fatalf("level %d did not shrink: %d -> %d", i, levels[i].N(), levels[i+1].N())
		}
		assertConserved(t, levels[i], levels[i+1], cmaps[i])
	}
	if last := levels[len(levels)-1].N(); last > 6000 {
		t.Fatalf("coarsest level too large: %d", last)
	}
}

func TestHierarchyRespectsCoarsenTo(t *testing.T) {
	g := gen.Grid(40, 40, false)
	ws, _ := weights.Standard(g, 1)
	levels, _ := Hierarchy(Wrap(g, ws), HierarchyOptions{CoarsenTo: 1200}, rand.New(rand.NewSource(10)), nil)
	if coarsest := levels[len(levels)-1].N(); coarsest > 1200 {
		// One level above the threshold is allowed to stop only on stall.
		t.Fatalf("coarsest %d > CoarsenTo 1200 without stall", coarsest)
	}
}
