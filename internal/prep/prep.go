// Package prep is a byte-budgeted LRU over prepared solve artifacts — the
// assignment-independent preprocessing (reorder layouts, coarsening
// hierarchies) that depends only on a graph's structure and a handful of
// options, and is therefore reusable across every solve of the same graph.
//
// The cache is deliberately dumb about what it stores: artifacts are opaque
// values with a byte size, and keys are caller-composed strings (the daemon
// uses engine-version + graph hash + artifact kind + parameters). Correctness
// never depends on the cache — the engines re-verify every injected artifact
// against the graph and options actually being solved, so a wrong or stale
// entry degrades to an inline rebuild, never to a wrong answer. What the
// cache owes its callers is honest accounting: the byte gauge tracks what is
// retained, eviction is strictly LRU within the budget, and a gauge that goes
// negative (an accounting bug) is clamped and counted rather than silently
// rendered as a huge unsigned value.
package prep

import (
	"container/list"
	"sync"
)

// Artifact is one cached preprocessing product. Implementations must be
// immutable once cached — entries are shared by reference across concurrent
// solves — and Bytes must be stable for the artifact's lifetime, since the
// size charged at insert is the size credited at eviction.
type Artifact interface {
	// Bytes estimates the artifact's retained heap footprint.
	Bytes() int64
}

// Cache is a thread-safe LRU bounded by a byte budget rather than an entry
// count: artifacts range from a few-KB layout for a toy graph to a
// hundreds-of-MB hierarchy for a large one, so counting entries would make
// the bound meaningless. A nil *Cache is valid and behaves as disabled.
type Cache struct {
	mu     sync.Mutex
	budget int64      // max retained bytes; <= 0 disables the cache
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	bytes  int64 // approximate retained size (payloads + keys + bookkeeping)
	clamps int64 // times the byte gauge went negative and was clamped

	hits, misses, evictions int64
}

type entry struct {
	key   string
	art   Artifact
	bytes int64
}

// entryOverhead approximates the per-entry bookkeeping retained alongside a
// payload — the entry struct, its list element, and the map bucket share —
// matching the serving layer's other caches so the byte gauges are comparable.
const entryOverhead = 128

// New creates a cache holding at most budget bytes. A budget <= 0 disables
// the cache: Get always misses, Put is a no-op.
func New(budget int64) *Cache {
	return &Cache{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// Enabled reports whether the cache stores anything at all.
func (c *Cache) Enabled() bool { return c != nil && c.budget > 0 }

// Get returns the artifact cached under key, promoting it to most recently
// used. valid, when non-nil, re-checks the entry against the caller's current
// world — the daemon passes "was this built for exactly the graph instance I
// am about to solve?" — and an entry that fails is removed and reported as a
// miss: a stale artifact is not a hit that happens to be useless, it is a
// miss that was occupying budget.
func (c *Cache) Get(key string, valid func(Artifact) bool) (Artifact, bool) {
	if !c.Enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if valid != nil && !valid(e.art) {
		c.removeLocked(el, e)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.art, true
}

// Put inserts or replaces the artifact under key, evicting least-recently
// used entries until the budget holds, and returns how many entries were
// evicted. An artifact larger than the entire budget is not cached: it would
// evict everything else and still leave the gauge over budget, so the caller
// keeps its freshly built artifact for this one solve and the cache keeps its
// working set. A replaced key's previous entry is dropped even in that case —
// the caller just told us it is stale.
func (c *Cache) Put(key string, art Artifact) int {
	if !c.Enabled() {
		return 0
	}
	nb := int64(len(key)) + entryOverhead + art.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if nb > c.budget {
		if el, ok := c.items[key]; ok {
			c.removeLocked(el, el.Value.(*entry))
			clampBytes(&c.bytes, &c.clamps)
		}
		return 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += nb - e.bytes
		e.art, e.bytes = art, nb
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, art: art, bytes: nb})
		c.bytes += nb
	}
	evicted := 0
	// The just-inserted entry sits at the front and nb <= budget, so the
	// loop always terminates before evicting it.
	for c.bytes > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		c.removeLocked(back, back.Value.(*entry))
		evicted++
	}
	clampBytes(&c.bytes, &c.clamps)
	c.evictions += int64(evicted)
	return evicted
}

// removeLocked unlinks one entry and credits its bytes. Callers hold mu.
func (c *Cache) removeLocked(el *list.Element, e *entry) {
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}

// clampBytes resets a negative byte gauge to zero, counting the event: the
// gauge is a sum of per-entry deltas, so a negative value means an entry was
// charged less than it was later credited — an accounting bug worth a
// counter, not a silently wrapped dashboard gauge. Callers hold mu.
func clampBytes(bytes, clamps *int64) {
	if *bytes < 0 {
		*bytes = 0
		*clamps++
	}
}

// Stats is a consistent snapshot of the cache's counters and gauges.
type Stats struct {
	Entries   int
	Bytes     int64
	Budget    int64
	Hits      int64
	Misses    int64
	Evictions int64
	Clamps    int64
}

// Stats snapshots every counter and gauge under one lock acquisition, so a
// metrics scrape renders an internally consistent view. Nil-safe.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries: c.ll.Len(), Bytes: c.bytes, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Clamps: c.clamps,
	}
}
