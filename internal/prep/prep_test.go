package prep

import (
	"fmt"
	"sync"
	"testing"
)

// fakeArt is a test artifact with a fixed reported size and an identity tag
// for validation tests.
type fakeArt struct {
	size int64
	tag  int
}

func (a *fakeArt) Bytes() int64 { return a.size }

func key(i int) string { return fmt.Sprintf("k%02d", i) }

func TestDisabledCache(t *testing.T) {
	for _, c := range []*Cache{nil, New(0), New(-1)} {
		if c.Enabled() {
			t.Fatalf("cache %+v should be disabled", c)
		}
		if c != nil {
			if ev := c.Put("a", &fakeArt{size: 10}); ev != 0 {
				t.Fatalf("disabled Put evicted %d", ev)
			}
			if _, ok := c.Get("a", nil); ok {
				t.Fatal("disabled Get hit")
			}
		}
		if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
			t.Fatalf("disabled stats %+v", st)
		}
	}
}

func TestPutGetAndLRUEviction(t *testing.T) {
	// Budget fits exactly two entries: key(3) + overhead + 1000 payload.
	per := int64(3) + entryOverhead + 1000
	c := New(2 * per)
	for i := 0; i < 3; i++ {
		if ev := c.Put(key(i), &fakeArt{size: 1000, tag: i}); ev != 0 && i < 2 {
			t.Fatalf("premature eviction inserting %d", i)
		}
	}
	// k00 is the LRU and must be gone; k01 and k02 remain.
	if _, ok := c.Get(key(0), nil); ok {
		t.Fatal("k00 survived eviction")
	}
	for i := 1; i < 3; i++ {
		a, ok := c.Get(key(i), nil)
		if !ok || a.(*fakeArt).tag != i {
			t.Fatalf("k%02d missing after eviction", i)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 2*per || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries, %d bytes, 1 eviction", st, 2*per)
	}
	// Touch k01 so k02 becomes the LRU, then force one more eviction.
	c.Get(key(1), nil)
	c.Put(key(3), &fakeArt{size: 1000, tag: 3})
	if _, ok := c.Get(key(2), nil); ok {
		t.Fatal("k02 should have been evicted (k01 was touched more recently)")
	}
	if _, ok := c.Get(key(1), nil); !ok {
		t.Fatal("k01 should have survived (promoted by Get)")
	}
}

func TestReplaceAccountsBytes(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", &fakeArt{size: 1000})
	before := c.Stats().Bytes
	c.Put("a", &fakeArt{size: 4000})
	after := c.Stats().Bytes
	if after-before != 3000 {
		t.Fatalf("replace grew bytes by %d, want 3000", after-before)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("replace duplicated the entry: %+v", st)
	}
}

func TestOversizeArtifactNotCached(t *testing.T) {
	c := New(2048)
	c.Put("small", &fakeArt{size: 100})
	if ev := c.Put("huge", &fakeArt{size: 1 << 20}); ev != 0 {
		t.Fatalf("oversize Put evicted %d entries", ev)
	}
	if _, ok := c.Get("huge", nil); ok {
		t.Fatal("oversize artifact was cached")
	}
	if _, ok := c.Get("small", nil); !ok {
		t.Fatal("oversize Put disturbed the working set")
	}
	// An oversize replacement still drops the stale prior entry.
	c.Put("small", &fakeArt{size: 1 << 20})
	if _, ok := c.Get("small", nil); ok {
		t.Fatal("stale entry survived an oversize replacement")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after oversize replacement: %+v", st)
	}
}

func TestValidationFailureCountsAsMiss(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", &fakeArt{size: 100, tag: 1})
	if _, ok := c.Get("a", func(a Artifact) bool { return a.(*fakeArt).tag == 2 }); ok {
		t.Fatal("invalid entry served as a hit")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 0 hits / 1 miss", st)
	}
	// The stale entry must be gone, not just skipped.
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale entry retained: %+v", st)
	}
	// A later Get without a validator is a clean miss, not a resurrection.
	if _, ok := c.Get("a", nil); ok {
		t.Fatal("removed entry resurrected")
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New(1 << 20)
	c.Get("a", nil)
	c.Put("a", &fakeArt{size: 10})
	c.Get("a", nil)
	c.Get("b", nil)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(i % 16)
				if _, ok := c.Get(k, nil); !ok {
					c.Put(k, &fakeArt{size: int64(100 * (i%7 + 1)), tag: w})
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Clamps != 0 {
		t.Fatalf("byte accounting clamped %d times under concurrency", st.Clamps)
	}
	if st.Bytes < 0 || st.Entries > 16 {
		t.Fatalf("implausible stats %+v", st)
	}
	// Recount from scratch: the gauge must equal the sum of live entries.
	var want int64
	c.mu.Lock()
	for _, el := range c.items {
		want += el.Value.(*entry).bytes
	}
	got := c.bytes
	c.mu.Unlock()
	if got != want {
		t.Fatalf("byte gauge %d != live-entry sum %d", got, want)
	}
}
