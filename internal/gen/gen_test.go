package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSBMDeterminism(t *testing.T) {
	cfg := SBMConfig{N: 500, Communities: 4, AvgDegree: 10, InFraction: 0.8, DegreeExponent: 2, Seed: 42}
	g1, b1 := SBM(cfg)
	g2, b2 := SBM(cfg)
	if g1.M() != g2.M() || g1.N() != g2.N() {
		t.Fatalf("nondeterministic sizes: %v vs %v", g1, g2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("nondeterministic blocks")
		}
	}
	g1.EachEdge(func(u, v int) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge %d-%d missing from second run", u, v)
		}
		return true
	})
}

func TestSBMCommunityStructure(t *testing.T) {
	g, blocks := SBM(SBMConfig{N: 2000, Communities: 2, AvgDegree: 20, InFraction: 0.9, Seed: 7})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	intra := 0
	g.EachEdge(func(u, v int) bool {
		if blocks[u] == blocks[v] {
			intra++
		}
		return true
	})
	frac := float64(intra) / float64(g.M())
	// InFraction 0.9 plus ~50% by-chance collisions on the remaining 10%.
	if frac < 0.85 {
		t.Fatalf("intra-block edge fraction %.3f, want >= 0.85", frac)
	}
	// Blocks should be near-equal contiguous halves.
	c0 := 0
	for _, b := range blocks {
		if b == 0 {
			c0++
		}
	}
	if c0 != 1000 {
		t.Fatalf("block 0 size %d, want 1000", c0)
	}
}

func TestSBMMicroCommunities(t *testing.T) {
	cfg := SBMConfig{
		N: 3000, Communities: 3, AvgDegree: 16,
		InFraction: 0.4, MicroSize: 20, MicroFraction: 0.5, Seed: 21,
	}
	g, blocks := SBM(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count edges inside micro-communities (contiguous 20-vertex ranges
	// within each 1000-vertex block).
	inMicro := 0
	g.EachEdge(func(u, v int) bool {
		if blocks[u] == blocks[v] && u/20 == v/20 {
			inMicro++
		}
		return true
	})
	frac := float64(inMicro) / float64(g.M())
	if frac < 0.4 {
		t.Fatalf("micro-community edge fraction %.3f, want >= 0.4", frac)
	}
	// MicroSize without MicroFraction (or vice versa) must not panic and
	// must degrade gracefully to the flat model.
	flat, _ := SBM(SBMConfig{N: 500, Communities: 2, AvgDegree: 8, InFraction: 0.8, MicroFraction: 0.5, Seed: 1})
	if flat.N() != 500 {
		t.Fatal("flat fallback broken")
	}
}

func TestSBMDegreeSkew(t *testing.T) {
	flat, _ := SBM(SBMConfig{N: 3000, Communities: 1, AvgDegree: 16, Seed: 3})
	skew, _ := SBM(SBMConfig{N: 3000, Communities: 1, AvgDegree: 16, DegreeExponent: 1.5, Seed: 3})
	if skew.MaxDegree() <= 2*flat.MaxDegree() {
		t.Fatalf("expected heavy tail: skew max=%d flat max=%d", skew.MaxDegree(), flat.MaxDegree())
	}
}

func TestSBMEdgeCases(t *testing.T) {
	g, blocks := SBM(SBMConfig{N: 0})
	if g.N() != 0 || blocks != nil {
		t.Fatal("empty SBM not empty")
	}
	g, blocks = SBM(SBMConfig{N: 5, Communities: 10, AvgDegree: 2, Seed: 1})
	if g.N() != 5 {
		t.Fatal("communities capped at N")
	}
	if len(blocks) != 5 {
		t.Fatalf("blocks len %d", len(blocks))
	}
}

func TestChungLuAverageDegree(t *testing.T) {
	g := ChungLu(4000, 12, 0, 9)
	avg := 2 * float64(g.M()) / float64(g.N())
	// Dedup loses a few percent of sampled edges.
	if avg < 10 || avg > 12.5 {
		t.Fatalf("average degree %.2f, want ~12", avg)
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 11)
	if g.N() != 4096 {
		t.Fatalf("n=%d, want 4096", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 4*8 {
		t.Fatalf("R-MAT should produce skew; max degree %d", g.MaxDegree())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() < 4500 || g.M() > 5000 {
		t.Fatalf("m=%d, want ~5000 after dedup", g.M())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5, false)
	if g.N() != 20 {
		t.Fatalf("n=%d", g.N())
	}
	// 4 rows × 4 horizontal + 3 × 5 vertical = 16+15 = 31 edges.
	if g.M() != 31 {
		t.Fatalf("m=%d, want 31", g.M())
	}
	torus := Grid(4, 5, true)
	// Every vertex has degree 4 in a torus.
	for v := 0; v < torus.N(); v++ {
		if torus.Degree(v) != 4 {
			t.Fatalf("torus degree(%d)=%d, want 4", v, torus.Degree(v))
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(10)
	if g.Degree(0) != 9 || g.M() != 9 {
		t.Fatalf("star: deg(0)=%d m=%d", g.Degree(0), g.M())
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	want := int64(3*6 + 2) // 3 K4s + 2 bridges
	if g.M() != want {
		t.Fatalf("m=%d, want %d", g.M(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated SBM graph satisfies the CSR invariants and has
// blocks covering exactly the requested communities.
func TestQuickSBMValid(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 10
		k := int(kRaw)%8 + 1
		g, blocks := SBM(SBMConfig{N: n, Communities: k, AvgDegree: 6, InFraction: 0.7, DegreeExponent: 2, Seed: seed})
		if g.Validate() != nil || len(blocks) != n {
			return false
		}
		for _, b := range blocks {
			if int(b) < 0 || int(b) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropensityCap(t *testing.T) {
	g1 := ChungLu(2000, 10, 1.2, 5)
	maxAllowed := 2000 // hard sanity bound: cap prevents a single mega-hub
	if g1.MaxDegree() > maxAllowed {
		t.Fatalf("max degree %d exceeds propensity cap effect", g1.MaxDegree())
	}
	if math.IsNaN(float64(g1.M())) {
		t.Fatal("unreachable")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(5000, 4, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 5000 {
		t.Fatalf("n=%d", g.N())
	}
	// Every vertex attaches with m edges, so min degree >= m and m ≈ n·m.
	ds := g.Degrees()
	min := ds[0]
	for _, d := range ds {
		if d < min {
			min = d
		}
	}
	if min < 4 {
		t.Fatalf("min degree %d, want >= 4 (attachment count)", min)
	}
	// Exactly C(m+1,2) seed-clique edges plus m per attached vertex.
	if m := g.M(); m != 10+4*(5000-5) {
		t.Fatalf("m=%d, want %d", m, 10+4*(5000-5))
	}
	// Preferential attachment must yield genuine hubs: the maximum degree of
	// a BA graph grows like √n, far beyond the attachment count.
	if g.MaxDegree() < 40 {
		t.Fatalf("max degree %d, want heavy-tailed hubs (>= 40)", g.MaxDegree())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(2000, 3, 11)
	b := BarabasiAlbert(2000, 3, 11)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("shape differs: %v vs %v", a, b)
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d: adjacency differs", v)
			}
		}
	}
	if c := BarabasiAlbert(2000, 3, 12); c.M() == a.M() && func() bool {
		for v := 0; v < a.N(); v++ {
			na, nc := a.Neighbors(v), c.Neighbors(v)
			if len(na) != len(nc) {
				return false
			}
			for i := range na {
				if na[i] != nc[i] {
					return false
				}
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertTiny(t *testing.T) {
	// n <= m degenerates to a clique.
	g := BarabasiAlbert(3, 5, 1)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("tiny BA: %v, want triangle", g)
	}
}
