// Package gen provides deterministic synthetic graph generators.
//
// The paper evaluates on SNAP social networks and proprietary Facebook
// friendship subgraphs, none of which are available to this offline build.
// The experiments substitute degree-corrected stochastic block model (DC-SBM)
// graphs whose two knobs map directly onto the properties the partitioners
// are sensitive to: community strength (achievable edge locality) and degree
// skew (the vertex-vs-edge balance tension that motivates multi-dimensional
// balancing). R-MAT, Chung–Lu, Erdős–Rényi and several structured graphs are
// provided for tests and ablations.
//
// All generators are deterministic functions of their seed.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"mdbgp/internal/graph"
)

// SBMConfig configures a degree-corrected stochastic block model graph.
type SBMConfig struct {
	N           int     // number of vertices
	Communities int     // number of planted blocks (≥ 1)
	AvgDegree   float64 // target average degree (before dedup)
	InFraction  float64 // probability an edge stays inside its block (community strength)
	// DegreeExponent is the Pareto shape of the per-vertex degree propensity.
	// 0 disables skew (uniform propensities). Smaller values (≈1.5) give the
	// heavy tails of Twitter-like graphs; ≈2.5 gives mild friendship-like skew.
	DegreeExponent float64
	// MaxPropensity caps a single vertex's degree propensity as a multiple of
	// the mean propensity (0 = default 500).
	MaxPropensity float64
	// MicroSize > 0 adds a second, finer community level: each block is
	// subdivided into contiguous micro-communities of ~MicroSize vertices,
	// and a MicroFraction share of edges stays inside them. Real social
	// networks are hierarchical in exactly this way; the micro level is what
	// clustering-based partitioners (BLP) exploit.
	MicroSize     int
	MicroFraction float64
	// BlockDegreeSkew > 0 multiplies every block's degree propensity by
	// exp(U(−s, +s)), making communities differ in density as real ones do.
	// This is the property that forces multi-dimensional balance: a
	// partition with equal vertex counts then has unequal edge counts and
	// vice versa (the paper's Figure 1 phenomenon).
	BlockDegreeSkew float64
	Seed            int64
}

// SBM generates a degree-corrected stochastic block model graph and the
// planted block id of every vertex. Blocks are contiguous vertex ranges of
// near-equal size. The expected fraction of intra-block edges is
// cfg.InFraction plus the by-chance collision rate of the global sampler.
func SBM(cfg SBMConfig) (*graph.Graph, []int32) {
	if cfg.N <= 0 {
		return graph.NewBuilder(0).Build(), nil
	}
	k := cfg.Communities
	if k < 1 {
		k = 1
	}
	if k > cfg.N {
		k = cfg.N
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	blocks := make([]int32, cfg.N)
	starts := make([]int, k+1)
	for c := 0; c <= k; c++ {
		starts[c] = c * cfg.N / k
	}
	for c := 0; c < k; c++ {
		for v := starts[c]; v < starts[c+1]; v++ {
			blocks[v] = int32(c)
		}
	}

	theta := propensities(cfg.N, cfg.DegreeExponent, cfg.MaxPropensity, rng)
	if cfg.BlockDegreeSkew > 0 {
		mult := make([]float64, k)
		for c := range mult {
			mult[c] = math.Exp((rng.Float64()*2 - 1) * cfg.BlockDegreeSkew)
		}
		for i := range theta {
			theta[i] *= mult[blocks[i]]
		}
	}
	// Global and per-block cumulative propensity for O(log n) sampling.
	cum := make([]float64, cfg.N+1)
	for i, t := range theta {
		cum[i+1] = cum[i] + t
	}

	micro := cfg.MicroFraction
	if cfg.MicroSize <= 0 {
		micro = 0
	}
	targetEdges := int(float64(cfg.N) * cfg.AvgDegree / 2)
	b := graph.NewBuilder(cfg.N)
	for i := 0; i < targetEdges; i++ {
		u := sampleCum(cum, 0, cfg.N, rng)
		c := int(blocks[u])
		var v int
		r := rng.Float64()
		switch {
		case r < micro:
			lo, hi := microRange(u, starts[c], starts[c+1], cfg.MicroSize)
			v = sampleCum(cum, lo, hi, rng)
		case r < micro+cfg.InFraction:
			v = sampleCum(cum, starts[c], starts[c+1], rng)
		default:
			v = sampleCum(cum, 0, cfg.N, rng)
		}
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build(), blocks
}

// microRange returns the contiguous micro-community [lo, hi) of vertex u
// inside its block [blockLo, blockHi).
func microRange(u, blockLo, blockHi, size int) (int, int) {
	idx := (u - blockLo) / size
	lo := blockLo + idx*size
	hi := lo + size
	if hi > blockHi {
		hi = blockHi
	}
	return lo, hi
}

// propensities draws n positive degree propensities. With exponent <= 0 all
// propensities are 1; otherwise they follow a Pareto(exponent) distribution
// truncated at maxMult times the mean.
func propensities(n int, exponent, maxMult float64, rng *rand.Rand) []float64 {
	theta := make([]float64, n)
	if exponent <= 0 {
		for i := range theta {
			theta[i] = 1
		}
		return theta
	}
	if maxMult <= 0 {
		maxMult = 500
	}
	cap := maxMult // Pareto xmin is 1, so the mean is α/(α−1) ≈ O(1).
	for i := range theta {
		u := rng.Float64()
		t := math.Pow(1-u, -1/exponent)
		if t > cap {
			t = cap
		}
		theta[i] = t
	}
	return theta
}

// sampleCum samples an index in [lo, hi) with probability proportional to
// the propensity encoded in the cumulative array cum (len n+1).
func sampleCum(cum []float64, lo, hi int, rng *rand.Rand) int {
	total := cum[hi] - cum[lo]
	if total <= 0 {
		return lo + rng.Intn(hi-lo)
	}
	x := cum[lo] + rng.Float64()*total
	// Find the first index i in [lo,hi) with cum[i+1] > x.
	i := sort.Search(hi-lo, func(j int) bool { return cum[lo+j+1] > x })
	v := lo + i
	if v >= hi {
		v = hi - 1
	}
	return v
}

// ChungLu generates a power-law random graph: endpoints of each edge are
// drawn independently with probability proportional to a Pareto(exponent)
// propensity. Equivalent to SBM with a single block.
func ChungLu(n int, avgDegree, exponent float64, seed int64) *graph.Graph {
	g, _ := SBM(SBMConfig{
		N: n, Communities: 1, AvgDegree: avgDegree,
		InFraction: 0, DegreeExponent: exponent, Seed: seed,
	})
	return g
}

// RMAT generates a Recursive MATrix graph with 2^scale vertices and
// edgeFactor·2^scale sampled edges using quadrant probabilities (a, b, c,
// 1−a−b−c). Classic parameters (0.57, 0.19, 0.19) produce the skewed,
// weakly clustered structure of web/follower graphs.
func RMAT(scale, edgeFactor int, a, b, c float64, seed int64) *graph.Graph {
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(seed))
	bl := graph.NewBuilder(n)
	edges := edgeFactor * n
	for i := 0; i < edges; i++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			bl.AddEdge(u, v)
		}
	}
	return bl.Build()
}

// BarabasiAlbert generates a preferential-attachment power-law graph: each
// new vertex attaches m edges to existing vertices chosen with probability
// proportional to their current degree (the repeated-endpoints list trick
// makes each draw O(1)). The resulting degree distribution follows the
// ~k^-3 tail of the classic BA model — unlike Chung–Lu/R-MAT there are no
// isolated vertices, and the oldest vertices become genuine hubs, which is
// the degree profile that stresses multilevel coarsening (hub rows resist
// clustering) and multi-dimensional balance alike.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n <= m {
		// Too small for attachment: fall back to a clique on n vertices.
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.AddEdge(i, j)
			}
		}
		return b.Build()
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Seed core: an (m+1)-clique so every early vertex has degree ≥ m.
	repeated := make([]int32, 0, 2*n*m)
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.AddEdge(i, j)
			repeated = append(repeated, int32(i), int32(j))
		}
	}
	chosen := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := repeated[rng.Intn(len(repeated))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			b.AddEdge(v, int(t))
			repeated = append(repeated, int32(v), t)
		}
	}
	return b.Build()
}

// ErdosRenyi generates a uniform random graph with n vertices and m sampled
// edges (duplicates collapse, so the realized edge count can be lower).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// Grid generates a rows×cols lattice. With torus set, rows and columns wrap
// around. Grids have known perfectly balanced partitions with small cuts,
// which makes them useful fixtures for partitioner tests.
func Grid(rows, cols int, torus bool) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			} else if torus && cols > 2 {
				b.AddEdge(id(r, c), id(r, 0))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			} else if torus && rows > 2 {
				b.AddEdge(id(r, c), id(0, c))
			}
		}
	}
	return b.Build()
}

// Star generates a star: vertex 0 connected to vertices 1..n−1. The extreme
// degree skew makes it a worst case for vertex-count-only balancing.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// CliqueChain generates `cliques` cliques of `size` vertices each, joined in
// a chain by single bridge edges. The optimal bisection cuts exactly one
// bridge, making expected partition quality easy to assert in tests.
func CliqueChain(cliques, size int) *graph.Graph {
	b := graph.NewBuilder(cliques * size)
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		if c+1 < cliques {
			b.AddEdge(base+size-1, base+size)
		}
	}
	return b.Build()
}

// PerturbDelta builds a small deterministic edge delta against g — the
// canonical incremental-repartitioning workload used by tests, goldens and
// benchmarks: every `every`-th edge (in canonical EachEdge order) is removed
// and a fresh shifted edge {(u+uShift) mod n, (v+vShift) mod n} inserted in
// its place, so the edge count stays roughly constant while ~2/every of the
// edge set churns.
func PerturbDelta(g *graph.Graph, every, uShift, vShift int) *graph.Delta {
	d := &graph.Delta{}
	n := g.N()
	i := 0
	g.EachEdge(func(u, v int) bool {
		if i%every == 0 {
			d.Remove = append(d.Remove, graph.Edge{U: int32(u), V: int32(v)})
			d.Add = append(d.Add, graph.Edge{U: int32((u + uShift) % n), V: int32((v + vShift) % n)})
		}
		i++
		return true
	})
	return d
}
