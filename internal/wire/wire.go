// Package wire implements the mdbgp binary graph interchange format,
// version 1. The byte layout is specified normatively in docs/WIRE_FORMAT.md;
// this package is its implementation, and the test suite asserts the
// documented layout against hand-assembled fixtures so the two cannot drift.
//
// The payload is the graph's canonical CSR (sorted deduplicated symmetric
// adjacency, each undirected edge stored twice): a 28-byte header, a sequence
// of varint delta-encoded adjacency chunks each guarded by a CRC-32C, and an
// optional per-vertex weight section. Because the wire payload is the
// canonical form, decoding yields the same content hash as ingesting the
// equivalent text edge list — so cache keys, and therefore results, are
// identical across codecs.
//
// The decoder is written for hostile input: it never allocates from
// attacker-claimed sizes (buffers grow geometrically against bytes actually
// read), validates every row-local invariant (range, strict sort, no self
// loops, arc-count consistency), rejects unknown flag bits and trailing
// bytes, and returns errors rather than panicking — FuzzDecodeWire enforces
// the no-panic contract in CI.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"

	"mdbgp/internal/graph"
)

// ContentType is the HTTP media type that negotiates this format on
// POST /v1/partition. Bodies without it are parsed as text edge lists.
const ContentType = "application/x-mdbgp-csr"

// Magic is the 8-byte file signature, "MDBGPW1\n". The version lives in the
// magic; an incompatible layout change bumps it.
const Magic = "MDBGPW1\n"

// HeaderSize is the fixed byte length of the header: magic, flags, n, arcs.
const HeaderSize = 28

// FlagWeights (bit 0) marks the presence of the per-vertex weight section.
// All other flag bits are reserved and must be zero; decoders fail closed on
// unknown bits so a v1 reader can never misinterpret a newer stream.
const FlagWeights uint32 = 1 << 0

const (
	// maxChunkPayload bounds a single chunk's declared payload length (2^30).
	maxChunkPayload = 1 << 30
	// targetChunkPayload is the encoder's chunk size target (~256 KiB).
	targetChunkPayload = 256 << 10
	// MaxWeightDims bounds the weight section's dimension count.
	MaxWeightDims = 256
	// bufGrowStep is the granularity of decoder buffer growth: buffers grow
	// geometrically but are filled incrementally with io.ReadFull, so a lying
	// payload length backed by a short body allocates at most ~2× the bytes
	// actually present.
	bufGrowStep = 64 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded fixed header.
type Header struct {
	Flags uint32
	N     uint64 // vertex count
	Arcs  uint64 // stored adjacency entries, 2·m for a canonical graph
}

// Weighted reports whether the stream carries a weight section.
func (h Header) Weighted() bool { return h.Flags&FlagWeights != 0 }

// Edges returns the undirected edge count implied by the header.
func (h Header) Edges() int64 { return int64(h.Arcs / 2) }

// ParseHeader validates and decodes a fixed header from b, which must hold
// at least HeaderSize bytes.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("wire: short header: %d bytes, want %d", len(b), HeaderSize)
	}
	if string(b[:8]) != Magic {
		return Header{}, errors.New("wire: bad magic (not an mdbgp binary graph, or unsupported version)")
	}
	h := Header{
		Flags: binary.LittleEndian.Uint32(b[8:12]),
		N:     binary.LittleEndian.Uint64(b[12:20]),
		Arcs:  binary.LittleEndian.Uint64(b[20:28]),
	}
	if unknown := h.Flags &^ FlagWeights; unknown != 0 {
		return Header{}, fmt.Errorf("wire: unknown flag bits %#x (newer format feature; upgrade the reader)", unknown)
	}
	if h.N > math.MaxInt32 {
		return Header{}, fmt.Errorf("wire: n = %d exceeds vertex id limit %d", h.N, math.MaxInt32)
	}
	if h.Arcs%2 != 0 {
		return Header{}, fmt.Errorf("wire: odd arc count %d (canonical CSR stores each edge twice)", h.Arcs)
	}
	if h.N == 0 && h.Arcs != 0 {
		return Header{}, fmt.Errorf("wire: 0 vertices but %d arcs", h.Arcs)
	}
	if h.N > 0 && h.Arcs/2 > h.N*(h.N-1)/2 {
		return Header{}, fmt.Errorf("wire: %d arcs impossible for %d vertices", h.Arcs, h.N)
	}
	return h, nil
}

// Sniff reports whether b begins with the format magic. Callers peeking at a
// stream (the mdbgp CLI, mdbgp-convert auto-detection) need at least 8 bytes
// for a positive answer; shorter prefixes return false.
func Sniff(b []byte) bool {
	return len(b) >= 8 && string(b[:8]) == Magic
}

// IsContentType reports whether the Content-Type header value ct negotiates
// this format, ignoring case and any media-type parameters.
func IsContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), ContentType)
}

// Decoder reads a binary graph stream incrementally: header at construction,
// then adjacency rows in vertex order via Rows, then the optional weight
// section, then Finish to assert clean EOF. The decoder validates chunk CRCs,
// row invariants and arc-count consistency as it goes.
type Decoder struct {
	r    *bufio.Reader
	hdr  Header
	next int   // next undelivered vertex id
	arcs int64 // running degree total
	buf  []byte
	row  []int32
}

// NewDecoder reads and validates the header from r. The reader should not be
// used by the caller afterwards; the decoder owns it.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return nil, fmt.Errorf("wire: reading header: %w", err)
	}
	hdr, err := ParseHeader(hb[:])
	if err != nil {
		return nil, err
	}
	return &Decoder{r: br, hdr: hdr}, nil
}

// Header returns the decoded fixed header.
func (d *Decoder) Header() Header { return d.hdr }

// readChunk reads one length-framed, CRC-guarded chunk payload into d.buf.
func (d *Decoder) readChunk() ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(d.r, lb[:]); err != nil {
		return nil, fmt.Errorf("wire: vertex %d: reading chunk length: %w", d.next, err)
	}
	length := int(binary.LittleEndian.Uint32(lb[:]))
	if length < 1 || length > maxChunkPayload {
		return nil, fmt.Errorf("wire: chunk length %d out of range [1, %d]", length, maxChunkPayload)
	}
	// Grow the buffer geometrically while reading incrementally, so a
	// declared length far beyond the actual body never causes a huge
	// allocation: each growth step must be paid for by bytes actually read.
	got := 0
	for got < length {
		if got == len(d.buf) {
			grow := len(d.buf)
			if grow < bufGrowStep {
				grow = bufGrowStep
			}
			if got+grow > length {
				grow = length - got
			}
			d.buf = append(d.buf, make([]byte, grow)...)
		}
		nn, err := io.ReadFull(d.r, d.buf[got:min(length, len(d.buf))])
		got += nn
		if err != nil {
			return nil, fmt.Errorf("wire: chunk truncated at %d/%d payload bytes: %w", got, length, err)
		}
	}
	var cb [4]byte
	if _, err := io.ReadFull(d.r, cb[:]); err != nil {
		return nil, fmt.Errorf("wire: reading chunk CRC: %w", err)
	}
	want := binary.LittleEndian.Uint32(cb[:])
	if sum := crc32.Checksum(d.buf[:length], castagnoli); sum != want {
		return nil, fmt.Errorf("wire: chunk CRC mismatch: computed %#x, stored %#x", sum, want)
	}
	return d.buf[:length], nil
}

func uvarint(p []byte, pos int, what string) (uint64, int, error) {
	v, w := binary.Uvarint(p[pos:])
	if w <= 0 {
		return 0, 0, fmt.Errorf("wire: bad uvarint (%s) at payload offset %d", what, pos)
	}
	return v, pos + w, nil
}

// Rows invokes fn once per vertex in order 0..n-1 with the vertex id and its
// sorted adjacency row. The row slice is reused across calls and must not be
// retained. Returning an error from fn aborts decoding with that error.
// After Rows returns nil, all n rows have been delivered and the degree sum
// matched the header's arc count.
func (d *Decoder) Rows(fn func(v int, adj []int32) error) error {
	n := int(d.hdr.N)
	for d.next < n {
		payload, err := d.readChunk()
		if err != nil {
			return err
		}
		pos := 0
		first, pos, err := uvarint(payload, pos, "firstVertex")
		if err != nil {
			return err
		}
		if first != uint64(d.next) {
			return fmt.Errorf("wire: chunk starts at vertex %d, want %d (chunks must tile [0, n) in order)", first, d.next)
		}
		count, pos, err := uvarint(payload, pos, "vertexCount")
		if err != nil {
			return err
		}
		// Bound count before first+count to keep the sum overflow-free.
		if count < 1 || count > uint64(n) || first+count > uint64(n) {
			return fmt.Errorf("wire: chunk covers vertices [%d, %d), outside [0, %d)", first, first+count, n)
		}
		for v := d.next; v < d.next+int(count); v++ {
			var deg uint64
			deg, pos, err = uvarint(payload, pos, "degree")
			if err != nil {
				return err
			}
			if deg > uint64(n)-1 {
				return fmt.Errorf("wire: vertex %d: degree %d exceeds n-1 = %d", v, deg, n-1)
			}
			d.arcs += int64(deg)
			if d.arcs > int64(d.hdr.Arcs) {
				return fmt.Errorf("wire: degree sum exceeds header arc count %d at vertex %d", d.hdr.Arcs, v)
			}
			d.row = d.row[:0]
			prev := int64(-1)
			for i := uint64(0); i < deg; i++ {
				var raw uint64
				raw, pos, err = uvarint(payload, pos, "neighbor")
				if err != nil {
					return err
				}
				// Bound every raw value BEFORE widening to a signed id: a
				// uvarint >= 2^63 would wrap int64 negative and slip past
				// ordinary >= n range checks, smuggling negative adjacency
				// entries into downstream CSR indexing.
				var id int64
				if i == 0 {
					if raw >= uint64(n) {
						return fmt.Errorf("wire: vertex %d: neighbor %d out of range [0, %d)", v, raw, n)
					}
					id = int64(raw) // first neighbor is encoded raw
				} else {
					if raw == 0 {
						return fmt.Errorf("wire: vertex %d: zero gap (duplicate neighbor %d)", v, prev)
					}
					// prev is in [0, n), so n-1-prev is non-negative; the one
					// comparison rejects both ids >= n and gaps that would
					// overflow the signed accumulator.
					if raw > uint64(int64(n)-1-prev) {
						return fmt.Errorf("wire: vertex %d: gap %d from neighbor %d lands out of range [0, %d)", v, raw, prev, n)
					}
					id = prev + int64(raw)
				}
				if id == int64(v) {
					return fmt.Errorf("wire: vertex %d: self loop", v)
				}
				d.row = append(d.row, int32(id))
				prev = id
			}
			if err := fn(v, d.row); err != nil {
				return err
			}
		}
		if pos != len(payload) {
			return fmt.Errorf("wire: chunk has %d leftover payload bytes", len(payload)-pos)
		}
		d.next += int(count)
	}
	if d.arcs != int64(d.hdr.Arcs) {
		return fmt.Errorf("wire: degree sum %d != header arc count %d", d.arcs, d.hdr.Arcs)
	}
	return nil
}

// Weights reads the weight section: dims per-vertex float64 vectors, each
// CRC-guarded, finite and strictly positive. It must be called after Rows and
// only when Header().Weighted(); a stream without the flag returns (nil, nil).
func (d *Decoder) Weights() ([][]float64, error) {
	if !d.hdr.Weighted() {
		return nil, nil
	}
	if d.next != int(d.hdr.N) {
		return nil, errors.New("wire: Weights called before all rows were decoded")
	}
	var db [4]byte
	if _, err := io.ReadFull(d.r, db[:]); err != nil {
		return nil, fmt.Errorf("wire: reading weight dim count: %w", err)
	}
	dims := int(binary.LittleEndian.Uint32(db[:]))
	if dims < 1 || dims > MaxWeightDims {
		return nil, fmt.Errorf("wire: weight dim count %d out of range [1, %d]", dims, MaxWeightDims)
	}
	n := int(d.hdr.N)
	out := make([][]float64, dims)
	for k := 0; k < dims; k++ {
		crc := crc32.New(castagnoli)
		// Grow against bytes actually read (8 per value) instead of
		// allocating n×8 up front from the header-claimed vertex count.
		w := make([]float64, 0, min(n, bufGrowStep/8))
		var vb [8]byte
		for v := 0; v < n; v++ {
			if _, err := io.ReadFull(d.r, vb[:]); err != nil {
				return nil, fmt.Errorf("wire: weight dim %d truncated at vertex %d: %w", k, v, err)
			}
			crc.Write(vb[:])
			f := math.Float64frombits(binary.LittleEndian.Uint64(vb[:]))
			if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
				return nil, fmt.Errorf("wire: weight dim %d vertex %d: value %v (must be finite and > 0)", k, v, f)
			}
			w = append(w, f)
		}
		var cb [4]byte
		if _, err := io.ReadFull(d.r, cb[:]); err != nil {
			return nil, fmt.Errorf("wire: reading weight dim %d CRC: %w", k, err)
		}
		if want := binary.LittleEndian.Uint32(cb[:]); crc.Sum32() != want {
			return nil, fmt.Errorf("wire: weight dim %d CRC mismatch: computed %#x, stored %#x", k, crc.Sum32(), want)
		}
		out[k] = w
	}
	return out, nil
}

// Finish asserts clean EOF: any trailing byte after the last section is an
// error. Call after Rows (and Weights, if the flag is set).
func (d *Decoder) Finish() error {
	if d.next != int(d.hdr.N) {
		return fmt.Errorf("wire: stream ended with %d of %d vertices delivered", d.next, d.hdr.N)
	}
	if _, err := d.r.ReadByte(); err == nil {
		return errors.New("wire: trailing bytes after end of stream")
	} else if err != io.EOF {
		return err
	}
	return nil
}

// Decode materializes a full graph (and weights, if present) from r,
// building the CSR arrays directly — the payload is already canonical, so no
// sorting or deduplication pass is needed. It verifies clean EOF.
func Decode(r io.Reader) (*graph.Graph, [][]float64, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	n := int(d.hdr.N)
	// Cap both speculative allocations: the header's n and arc count are
	// attacker-controlled, so pre-size modestly and let append grow against
	// data actually decoded — a 28-byte body claiming n = 2^31-1 must not
	// allocate a multi-GB offsets array.
	offCap := n + 1
	if offCap > 1<<20 {
		offCap = 1 << 20
	}
	offsets := make([]int64, 1, offCap)
	capHint := d.hdr.Arcs
	if capHint > 1<<22 {
		capHint = 1 << 22
	}
	adj := make([]int32, 0, capHint)
	err = d.Rows(func(v int, row []int32) error {
		adj = append(adj, row...)
		offsets = append(offsets, int64(len(adj)))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	weights, err := d.Weights()
	if err != nil {
		return nil, nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, nil, err
	}
	return graph.FromCSR(offsets, adj), weights, nil
}

// HashGraph computes the canonical content hash of a wire stream without
// materializing the graph, using two passes over the source: one for degrees
// (offsets), one for adjacency rows. open must return a fresh reader over the
// same bytes on each call (closed after each pass) — the router hashes an
// in-memory body, the out-of-core ingest path re-opens its spill file. The
// returned hash is identical to Graph.HashString() of the decoded graph.
func HashGraph(open func() (io.ReadCloser, error)) (string, Header, error) {
	var hdr Header
	sh := (*graph.StreamHasher)(nil)
	pass := func(fn func(d *Decoder) error) error {
		r, err := open()
		if err != nil {
			return err
		}
		defer r.Close()
		d, err := NewDecoder(r)
		if err != nil {
			return err
		}
		hdr = d.Header()
		if sh == nil {
			sh = graph.NewStreamHasher(int(hdr.N), int64(hdr.Arcs))
		}
		return fn(d)
	}
	err := pass(func(d *Decoder) error {
		return d.Rows(func(v int, adj []int32) error {
			sh.AddDegree(len(adj))
			return nil
		})
	})
	if err != nil {
		return "", Header{}, err
	}
	err = pass(func(d *Decoder) error {
		return d.Rows(func(v int, adj []int32) error {
			sh.AddRow(adj)
			return nil
		})
	})
	if err != nil {
		return "", Header{}, err
	}
	return sh.SumString(), hdr, nil
}

// Encoder writes a binary graph stream: header at construction, rows in
// vertex order, then Close to flush the final chunk and optional weights.
type Encoder struct {
	w       *bufio.Writer
	hdr     Header
	next    int
	payload []byte
	start   int // first vertex in the pending chunk
	count   int // vertices in the pending chunk
	scratch []byte
}

// NewEncoder writes the header for a graph with n vertices and arcs stored
// adjacency entries, optionally flagged as carrying weights.
func NewEncoder(w io.Writer, n int, arcs int64, weighted bool) (*Encoder, error) {
	if n < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("wire: vertex count %d out of range", n)
	}
	if arcs < 0 || arcs%2 != 0 {
		return nil, fmt.Errorf("wire: arc count %d invalid", arcs)
	}
	var flags uint32
	if weighted {
		flags |= FlagWeights
	}
	e := &Encoder{
		w:       bufio.NewWriterSize(w, 256<<10),
		hdr:     Header{Flags: flags, N: uint64(n), Arcs: uint64(arcs)},
		scratch: make([]byte, binary.MaxVarintLen64),
	}
	var hb [HeaderSize]byte
	copy(hb[:8], Magic)
	binary.LittleEndian.PutUint32(hb[8:12], flags)
	binary.LittleEndian.PutUint64(hb[12:20], uint64(n))
	binary.LittleEndian.PutUint64(hb[20:28], uint64(arcs))
	if _, err := e.w.Write(hb[:]); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Encoder) putUvarint(v uint64) {
	w := binary.PutUvarint(e.scratch, v)
	e.payload = append(e.payload, e.scratch[:w]...)
}

// AddRow appends the next vertex's sorted strictly-ascending adjacency row.
// Rows must be added for every vertex 0..n-1 in order.
func (e *Encoder) AddRow(adj []int32) error {
	v := e.next
	if v >= int(e.hdr.N) {
		return fmt.Errorf("wire: AddRow past vertex count %d", e.hdr.N)
	}
	if e.count == 0 {
		e.start = v
		e.putUvarint(uint64(v))
		e.putUvarint(0) // vertexCount placeholder, patched in flushChunk
	}
	e.putUvarint(uint64(len(adj)))
	prev := int64(-1)
	for i, a := range adj {
		id := int64(a)
		if id < 0 || id >= int64(e.hdr.N) || id == int64(v) || (i > 0 && id <= prev) {
			return fmt.Errorf("wire: vertex %d: row not canonical at neighbor %d", v, a)
		}
		if i == 0 {
			e.putUvarint(uint64(id))
		} else {
			e.putUvarint(uint64(id - prev))
		}
		prev = id
	}
	e.count++
	e.next++
	if len(e.payload) >= targetChunkPayload {
		return e.flushChunk()
	}
	return nil
}

func (e *Encoder) flushChunk() error {
	if e.count == 0 {
		return nil
	}
	// The vertexCount placeholder was written as uvarint(0) = one byte right
	// after firstVertex. Re-encode the prefix now that the count is known.
	firstLen := binary.PutUvarint(e.scratch, uint64(e.start))
	head := make([]byte, firstLen+binary.MaxVarintLen64)
	copy(head, e.scratch[:firstLen])
	countLen := binary.PutUvarint(head[firstLen:], uint64(e.count))
	head = head[:firstLen+countLen]
	body := e.payload[firstLen+1:] // skip old firstVertex + 1-byte placeholder

	length := len(head) + len(body)
	if length > maxChunkPayload {
		return fmt.Errorf("wire: chunk payload %d exceeds limit %d", length, maxChunkPayload)
	}
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(length))
	if _, err := e.w.Write(lb[:]); err != nil {
		return err
	}
	sum := crc32.Update(0, castagnoli, head)
	sum = crc32.Update(sum, castagnoli, body)
	if _, err := e.w.Write(head); err != nil {
		return err
	}
	if _, err := e.w.Write(body); err != nil {
		return err
	}
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], sum)
	if _, err := e.w.Write(cb[:]); err != nil {
		return err
	}
	e.payload = e.payload[:0]
	e.count = 0
	return nil
}

// AddWeights writes the weight section. Call after all rows, once, and only
// when the encoder was constructed weighted. Each dimension must hold n
// finite strictly-positive values.
func (e *Encoder) AddWeights(weights [][]float64) error {
	if !e.hdr.Weighted() {
		return errors.New("wire: AddWeights on an unweighted encoder")
	}
	if e.next != int(e.hdr.N) {
		return fmt.Errorf("wire: AddWeights before all %d rows were added", e.hdr.N)
	}
	if err := e.flushChunk(); err != nil {
		return err
	}
	if len(weights) < 1 || len(weights) > MaxWeightDims {
		return fmt.Errorf("wire: weight dim count %d out of range [1, %d]", len(weights), MaxWeightDims)
	}
	var db [4]byte
	binary.LittleEndian.PutUint32(db[:], uint32(len(weights)))
	if _, err := e.w.Write(db[:]); err != nil {
		return err
	}
	var vb [8]byte
	for k, w := range weights {
		if len(w) != int(e.hdr.N) {
			return fmt.Errorf("wire: weight dim %d has %d values, want %d", k, len(w), e.hdr.N)
		}
		sum := uint32(0)
		for v, f := range w {
			if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
				return fmt.Errorf("wire: weight dim %d vertex %d: value %v (must be finite and > 0)", k, v, f)
			}
			binary.LittleEndian.PutUint64(vb[:], math.Float64bits(f))
			sum = crc32.Update(sum, castagnoli, vb[:])
			if _, err := e.w.Write(vb[:]); err != nil {
				return err
			}
		}
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], sum)
		if _, err := e.w.Write(cb[:]); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the pending chunk and the underlying writer. It errors if
// fewer than n rows were added, or if the encoder was constructed weighted
// but AddWeights was never called.
func (e *Encoder) Close() error {
	if e.next != int(e.hdr.N) {
		return fmt.Errorf("wire: Close after %d of %d rows", e.next, e.hdr.N)
	}
	if err := e.flushChunk(); err != nil {
		return err
	}
	return e.w.Flush()
}

// Encode writes g (and optional weights; pass nil for none) to w in wire
// format. The graph's CSR is already canonical, so rows stream straight out.
func Encode(w io.Writer, g *graph.Graph, weights [][]float64) error {
	e, err := NewEncoder(w, g.N(), g.DirectedSize(), len(weights) > 0)
	if err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if err := e.AddRow(g.Neighbors(v)); err != nil {
			return err
		}
	}
	if len(weights) > 0 {
		if err := e.AddWeights(weights); err != nil {
			return err
		}
	}
	return e.Close()
}
