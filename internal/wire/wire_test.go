package wire

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdbgp/internal/graph"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// buildGraph constructs a canonical graph from undirected edge pairs.
func buildGraph(t testing.TB, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("fixture graph invalid: %v", err)
	}
	return g
}

// workedExample is the 4-vertex graph from docs/WIRE_FORMAT.md §Worked example.
func workedExample(t testing.TB) *graph.Graph {
	return buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
}

// workedExampleBytes is the normative encoding from the spec, byte for byte.
var workedExampleBytes = []byte{
	'M', 'D', 'B', 'G', 'P', 'W', '1', '\n', // magic
	0x00, 0x00, 0x00, 0x00, // flags = 0
	0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // n = 4
	0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // arcs = 8
	0x0E, 0x00, 0x00, 0x00, // chunk length = 14
	0x00,             // firstVertex = 0
	0x04,             // vertexCount = 4
	0x02, 0x01, 0x01, // row 0: deg 2, first 1, gap 1
	0x02, 0x00, 0x02, // row 1: deg 2, first 0, gap 2
	0x03, 0x00, 0x01, 0x02, // row 2: deg 3, first 0, gaps 1, 2
	0x01, 0x02, // row 3: deg 1, first 2
	0x7F, 0xAA, 0x7F, 0xE2, // CRC-32C = 0xE27FAA7F
}

// TestEncodeWorkedExample pins the encoder to the spec's worked example.
// docs/WIRE_FORMAT.md names this test; if the layout changes, change the spec
// first and this fixture with it.
func TestEncodeWorkedExample(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, workedExample(t), nil); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), workedExampleBytes) {
		t.Errorf("encoding diverges from docs/WIRE_FORMAT.md worked example:\n got %x\nwant %x", buf.Bytes(), workedExampleBytes)
	}
}

func TestDecodeWorkedExample(t *testing.T) {
	g, weights, err := Decode(bytes.NewReader(workedExampleBytes))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if weights != nil {
		t.Errorf("unexpected weights: %v", weights)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("decoded graph invalid: %v", err)
	}
	want := workedExample(t)
	if g.HashString() != want.HashString() {
		t.Errorf("decoded hash %s != built hash %s", g.HashString(), want.HashString())
	}
}

func randomGraph(t testing.TB, n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return buildGraph(t, n, edges)
}

func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", buildGraph(t, 0, nil)},
		{"isolated", buildGraph(t, 5, nil)},
		{"single-edge", buildGraph(t, 2, [][2]int{{0, 1}})},
		{"worked-example", workedExample(t)},
		{"random-small", randomGraph(t, 100, 400, 1)},
		{"random-medium", randomGraph(t, 5000, 40000, 2)},
		{"isolated-tail", buildGraph(t, 10, [][2]int{{0, 1}})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Encode(&buf, tc.g, nil); err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, _, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if err := got.Validate(); err != nil {
				t.Errorf("decoded graph invalid: %v", err)
			}
			if got.HashString() != tc.g.HashString() {
				t.Errorf("round-trip hash mismatch: %s != %s", got.HashString(), tc.g.HashString())
			}
			// HashGraph (the streaming two-pass hash) must agree with the
			// materialized hash — the router and out-of-core path depend on it.
			streamed, hdr, err := HashGraph(func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
			})
			if err != nil {
				t.Fatalf("HashGraph: %v", err)
			}
			if streamed != tc.g.HashString() {
				t.Errorf("streamed hash %s != graph hash %s", streamed, tc.g.HashString())
			}
			if int(hdr.N) != tc.g.N() || int64(hdr.Arcs) != tc.g.DirectedSize() {
				t.Errorf("header (n=%d arcs=%d) != graph (n=%d arcs=%d)", hdr.N, hdr.Arcs, tc.g.N(), tc.g.DirectedSize())
			}
		})
	}
}

// TestMultiChunk forces several chunks and checks reassembly across the
// chunk boundaries (the encoder flushes at ~256 KiB; a dense-enough graph
// guarantees multiple chunks).
func TestMultiChunk(t *testing.T) {
	g := randomGraph(t, 20000, 400000, 3)
	var buf bytes.Buffer
	if err := Encode(&buf, g, nil); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if buf.Len() < targetChunkPayload {
		t.Fatalf("fixture too small to force multiple chunks: %d bytes", buf.Len())
	}
	got, _, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.HashString() != g.HashString() {
		t.Errorf("multi-chunk round-trip hash mismatch")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	g := workedExample(t)
	weights := [][]float64{
		{1, 1, 1, 1},
		{2.5, 0.5, 1.25, 3.75},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, g, weights); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, gotW, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.HashString() != g.HashString() {
		t.Errorf("weighted round-trip changed graph hash")
	}
	if len(gotW) != 2 {
		t.Fatalf("got %d weight dims, want 2", len(gotW))
	}
	for k := range weights {
		for v := range weights[k] {
			if gotW[k][v] != weights[k][v] {
				t.Errorf("weight[%d][%d] = %v, want %v", k, v, gotW[k][v], weights[k][v])
			}
		}
	}
	// The weight section must not perturb the graph content hash (it is
	// explicitly outside the content address).
	var plain bytes.Buffer
	if err := Encode(&plain, g, nil); err != nil {
		t.Fatal(err)
	}
	gp, _, err := Decode(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gp.HashString() != got.HashString() {
		t.Errorf("weight section changed the content hash")
	}
}

func TestEncodeRejectsBadWeights(t *testing.T) {
	g := workedExample(t)
	for _, w := range [][]float64{
		{1, 1, 1, 0},           // zero
		{1, 1, 1, -2},          // negative
		{1, 1, 1, math.NaN()},  // NaN
		{1, 1, 1, math.Inf(1)}, // +Inf
		{1, 1, 1},              // short
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, g, [][]float64{w}); err == nil {
			t.Errorf("Encode accepted bad weight vector %v", w)
		}
	}
}

// TestGolden pins the full encoding of a mid-size deterministic graph to a
// committed fixture, so any byte-level drift in the encoder (or decoder,
// which must still read the old bytes) is visible in review.
func TestGolden(t *testing.T) {
	g := randomGraph(t, 500, 2500, 42)
	var buf bytes.Buffer
	if err := Encode(&buf, g, [][]float64{{ /* filled below */ }}); err == nil {
		t.Fatal("Encode accepted an empty weight dim")
	}
	buf.Reset()
	w := make([]float64, g.N())
	for v := range w {
		w[v] = 1 + float64(v%7)
	}
	if err := Encode(&buf, g, [][]float64{w}); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join("testdata", "golden_v1.bin")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoding drifted from golden fixture %s (%d vs %d bytes); if intentional, update docs/WIRE_FORMAT.md first, then -update", path, buf.Len(), len(want))
	}
	gg, gw, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decoding golden fixture: %v", err)
	}
	if gg.HashString() != g.HashString() {
		t.Errorf("golden fixture decodes to a different graph")
	}
	if len(gw) != 1 || gw[0][3] != 1+float64(3%7) {
		t.Errorf("golden fixture weights wrong: %v", gw)
	}
}

// corrupt returns a copy of b with the byte at i XORed with mask.
func corrupt(b []byte, i int, mask byte) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= mask
	return c
}

func TestDecodeErrors(t *testing.T) {
	valid := workedExampleBytes
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "header"},
		{"short-header", valid[:10], "header"},
		{"bad-magic", corrupt(valid, 0, 0xFF), "magic"},
		{"future-version", corrupt(valid, 6, '1'^'2'), "magic"},
		{"unknown-flag", corrupt(valid, 9, 0x01), "unknown flag"},
		{"odd-arcs", corrupt(valid, 20, 0x01), "odd arc"},
		{"truncated-chunk", valid[:40], "truncated"},
		{"crc-flip", corrupt(valid, len(valid)-1, 0x01), "CRC mismatch"},
		{"payload-flip", corrupt(valid, 36, 0x40), "CRC mismatch"},
		{"trailing-bytes", append(append([]byte(nil), valid...), 0x00), "trailing"},
		{"zero-length-chunk", func() []byte {
			c := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(c[28:32], 0)
			return c
		}(), "length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("Decode accepted corrupt input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// reframe rebuilds the worked example with a custom chunk payload, fixing up
// length and CRC so only the payload-level violation under test remains.
func reframe(payload []byte) []byte {
	out := append([]byte(nil), workedExampleBytes[:HeaderSize]...)
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(payload)))
	out = append(out, lb[:]...)
	out = append(out, payload...)
	binary.LittleEndian.PutUint32(lb[:], crc32.Checksum(payload, castagnoli))
	return append(out, lb[:]...)
}

func TestDecodePayloadViolations(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		// Baseline payload: 00 04 | 02 01 01 | 02 00 02 | 03 00 01 02 | 01 02
		{"zero-gap", []byte{0x00, 0x04, 0x02, 0x01, 0x00, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "zero gap"},
		{"self-loop", []byte{0x00, 0x04, 0x02, 0x00, 0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "self loop"},
		{"neighbor-range", []byte{0x00, 0x04, 0x02, 0x01, 0x63, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "out of range"},
		{"wrong-first-vertex", []byte{0x01, 0x04, 0x02, 0x01, 0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "chunk starts"},
		{"count-overrun", []byte{0x00, 0x05, 0x02, 0x01, 0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "outside"},
		{"leftover-bytes", []byte{0x00, 0x04, 0x02, 0x01, 0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02, 0x00}, "leftover"},
		{"degree-overflow", []byte{0x00, 0x04, 0x7F, 0x01, 0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "degree"},
		{"arc-undercount", []byte{0x00, 0x04, 0x01, 0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "arc count"},
		// 10-byte varints carrying 2^63: as int64 these wrap negative, which
		// must be rejected as out of range, never truncated into the row.
		{"first-neighbor-wraps-negative", []byte{0x00, 0x04, 0x02,
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, // first = 2^63
			0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "out of range"},
		{"gap-wraps-negative", []byte{0x00, 0x04, 0x02, 0x01,
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, // gap = 2^63, prev+gap overflows int64
			0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(bytes.NewReader(reframe(tc.payload)))
			if err == nil {
				t.Fatalf("Decode accepted payload violation")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeHugeClaimedN: a header-only body claiming n near 2^31 must fail
// on the missing first chunk without allocating offsets (or weights) from the
// attacker-claimed vertex count — under the old eager make([]int64, n+1) this
// test allocated ~17 GB before reading a single payload byte.
func TestDecodeHugeClaimedN(t *testing.T) {
	b := append([]byte(nil), []byte(Magic)...)
	b = append(b, 0, 0, 0, 0) // flags
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], math.MaxInt32)
	b = append(b, u8[:]...) // n = 2^31-1
	binary.LittleEndian.PutUint64(u8[:], 2)
	b = append(b, u8[:]...) // arcs = 2
	if _, _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("Decode accepted a header-only stream")
	}
}

// TestDecodeNoSymmetryCheck documents the spec's explicit non-goal: an
// asymmetric stream decodes (self-keying its own content hash) rather than
// paying O(m log d) validation on the hot ingest path. Solving surfaces
// enforce symmetry themselves: cmd/mdbgp and the daemon's resident binary
// path run Graph.Validate after Decode, and the daemon's out-of-core path
// runs a streaming pairing check (internal/server).
func TestDecodeNoSymmetryCheck(t *testing.T) {
	// Rows 0:[1] 1:[2] 2:[] — arcs=2 (even, so the header check passes) but
	// no edge is reciprocated.
	payload := []byte{0x00, 0x03, 0x01, 0x01, 0x01, 0x02, 0x00}
	data := append([]byte(nil), []byte(Magic)...)
	var b8 [8]byte
	data = append(data, 0, 0, 0, 0) // flags
	binary.LittleEndian.PutUint64(b8[:], 3)
	data = append(data, b8[:]...) // n = 3
	binary.LittleEndian.PutUint64(b8[:], 2)
	data = append(data, b8[:]...) // arcs = 2
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(payload)))
	data = append(data, lb[:]...)
	data = append(data, payload...)
	binary.LittleEndian.PutUint32(lb[:], crc32.Checksum(payload, castagnoli))
	data = append(data, lb[:]...)

	g, _, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode rejected asymmetric stream: %v", err)
	}
	if g.Validate() == nil {
		t.Fatalf("fixture should be asymmetric")
	}
	if g.N() != 3 || g.DirectedSize() != 2 {
		t.Errorf("decoded shape n=%d arcs=%d", g.N(), g.DirectedSize())
	}
}

func TestSniffAndContentType(t *testing.T) {
	if !Sniff(workedExampleBytes) {
		t.Error("Sniff rejected a valid stream")
	}
	if Sniff([]byte("# 4 4\n0 1\n")) {
		t.Error("Sniff accepted a text edge list")
	}
	if Sniff([]byte("MDBGP")) {
		t.Error("Sniff accepted a short prefix")
	}
	for ct, want := range map[string]bool{
		ContentType:                     true,
		"Application/X-MDBGP-CSR":       true,
		ContentType + "; charset=utf-8": true,
		"  " + ContentType + " ; v=1":   true,
		"text/plain":                    false,
		"application/octet-stream":      false,
		"":                              false,
	} {
		if got := IsContentType(ct); got != want {
			t.Errorf("IsContentType(%q) = %v, want %v", ct, got, want)
		}
	}
}

// FuzzDecodeWire asserts the decoder's no-panic contract on arbitrary input,
// and on inputs that decode successfully, that re-encoding and re-decoding
// is hash-stable (the codec is a bijection on canonical streams up to
// chunking and varint minimality).
func FuzzDecodeWire(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(workedExampleBytes)
	f.Add(workedExampleBytes[:20])
	f.Add(corrupt(workedExampleBytes, 30, 0x80))
	var weighted bytes.Buffer
	g4 := buildGraph(f, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	if err := Encode(&weighted, g4, [][]float64{{1, 2, 3, 4}}); err != nil {
		f.Fatal(err)
	}
	f.Add(weighted.Bytes())
	// Seeds with 10-byte varints >= 2^63: int64-wrapping neighbor values that
	// must be rejected, not truncated into negative adjacency entries.
	f.Add(reframe([]byte{0x00, 0x04, 0x02,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
		0x01, 0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}))
	f.Add(reframe([]byte{0x00, 0x04, 0x02, 0x01,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
		0x02, 0x00, 0x02, 0x03, 0x00, 0x01, 0x02, 0x01, 0x02}))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, weights, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g, weights); err != nil {
			t.Fatalf("re-encoding a decoded graph failed: %v", err)
		}
		g2, _, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if g2.HashString() != g.HashString() {
			t.Fatalf("decode/encode/decode not hash-stable")
		}
	})
}
