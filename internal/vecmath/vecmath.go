// Package vecmath provides the dense-vector and sparse matrix–vector kernels
// used by the gradient descent partitioner. The graph's adjacency matrix is
// never materialized; SpMV runs directly over the CSR adjacency, which is the
// dominant cost of each GD iteration (Theorem 1.1: O(|E|) per step, O(|E|/m)
// when split across m workers).
package vecmath

import (
	"math"

	"mdbgp/internal/graph"
)

// SpMV computes dst = A·x where A is the (0/1) adjacency matrix of g:
// dst[v] = Σ_{u ∈ N(v)} x[u]. dst and x must have length g.N() and must not
// alias.
func SpMV(g *graph.Graph, x, dst []float64) {
	n := g.N()
	for v := 0; v < n; v++ {
		s := 0.0
		for _, u := range g.Neighbors(v) {
			s += x[u]
		}
		dst[v] = s
	}
}

// SpMVParallel is SpMV split across GOMAXPROCS goroutines in contiguous
// vertex ranges. It matches SpMV bit-for-bit because each output coordinate
// is produced by exactly one goroutine with the same summation order.
func SpMVParallel(g *graph.Graph, x, dst []float64) {
	SpMVPool(g, x, dst, NewPool(0))
}

// SpMVPool is SpMV sharded over the pool's workers in contiguous CSR row
// ranges. Each output coordinate is produced by exactly one goroutine with
// the same per-row summation order, so the result matches SpMV bit-for-bit
// at any worker count.
func SpMVPool(g *graph.Graph, x, dst []float64, p *Pool) {
	p.For(g.N(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s := 0.0
			for _, u := range g.Neighbors(v) {
				s += x[u]
			}
			dst[v] = s
		}
	})
}

// SpMVMasked computes dst = A·x restricted to output rows where fixed[v] is
// false; fixed rows keep their previous dst value. Input columns are not
// masked: fixed vertices still contribute to their neighbors' gradients,
// matching the vertex-fixing rule of §3.2 of the paper.
func SpMVMasked(g *graph.Graph, x, dst []float64, fixed []bool) {
	n := g.N()
	for v := 0; v < n; v++ {
		if fixed[v] {
			continue
		}
		s := 0.0
		for _, u := range g.Neighbors(v) {
			s += x[u]
		}
		dst[v] = s
	}
}

// SpMVMaskedPool is SpMVMasked sharded over the pool's workers; like
// SpMVPool it is bit-identical to the serial kernel at any worker count.
// It is the unit-edge-weight case of SpMVWeightedMaskedPool, whose nil-EW
// branch runs the identical inner loop.
func SpMVMaskedPool(g *graph.Graph, x, dst []float64, fixed []bool, p *Pool) {
	offsets, adj := g.CSR()
	SpMVWeightedMaskedPool(offsets, adj, nil, x, dst, fixed, p)
}

// SpMVWeightedMaskedPool computes dst = A_w·x over a raw weighted CSR
// adjacency (dst[v] = Σ_i ew[i]·x[adj[i]] over v's arc range), restricted to
// output rows where fixed[v] is false; fixed rows keep their previous dst
// value. ew == nil selects unit edge weights via the unweighted inner loop,
// so wrapping an unweighted graph costs nothing. fixed == nil computes every
// row. Like the unweighted kernels, rows are sharded in contiguous chunks
// and each output coordinate is produced by exactly one goroutine with a
// fixed summation order, so the result is bit-identical at any worker count.
//
// This is the gradient step of multilevel GD: coarse levels carry the edge
// weights accumulated by contraction, and the weighted quadratic form
// ½·xᵀA_w·x is exactly the expected uncut weight objective on that level.
func SpMVWeightedMaskedPool(offsets []int64, adj []int32, ew []float64, x, dst []float64, fixed []bool, p *Pool) {
	n := len(offsets) - 1
	p.For(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if fixed != nil && fixed[v] {
				continue
			}
			s := 0.0
			row := adj[offsets[v]:offsets[v+1]]
			if ew == nil {
				for _, u := range row {
					s += x[u]
				}
			} else {
				wrow := ew[offsets[v]:offsets[v+1]]
				for i, u := range row {
					s += wrow[i] * x[u]
				}
			}
			dst[v] = s
		}
	})
}

// QuadraticFormWeighted returns xᵀA_w x for a raw weighted CSR adjacency,
// computed row by row without materializing A_w. ew == nil means unit
// weights. Equals 2·Σ_{(u,v)∈E} w_uv·x_u·x_v.
func QuadraticFormWeighted(offsets []int64, adj []int32, ew []float64, x []float64) float64 {
	n := len(offsets) - 1
	s := 0.0
	for v := 0; v < n; v++ {
		row := 0.0
		if ew == nil {
			for _, u := range adj[offsets[v]:offsets[v+1]] {
				row += x[u]
			}
		} else {
			arcs := adj[offsets[v]:offsets[v+1]]
			wrow := ew[offsets[v]:offsets[v+1]]
			for i, u := range arcs {
				row += wrow[i] * x[u]
			}
		}
		s += x[v] * row
	}
	return s
}

// ExpectedLocalityWeighted returns the expected fraction of uncut edge
// WEIGHT under independent randomized rounding of the fractional solution x:
// (xᵀA_w x/4 + W/2) / W with W the total edge weight (Σ ew / 2, or |E| when
// ew is nil). On a coarse level this is the weighted counterpart of
// ExpectedLocality, and it equals the fine-graph expected locality of the
// lifted solution restricted to the edges still present at that level.
// Returns 1 for edgeless graphs.
func ExpectedLocalityWeighted(offsets []int64, adj []int32, ew []float64, x []float64) float64 {
	W := 0.0
	if ew == nil {
		W = float64(len(adj)) / 2
	} else {
		for _, w := range ew {
			W += w
		}
		W /= 2
	}
	if W == 0 {
		return 1
	}
	return (QuadraticFormWeighted(offsets, adj, ew, x)/4 + W/2) / W
}

// Dot returns the inner product Σ a[i]·b[i].
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DotPool is Dot with a chunk-ordered parallel reduction; the result is
// bit-identical for any worker count of p (but may differ in the last ulps
// from the serial left-to-right Dot, which uses a different association).
func DotPool(a, b []float64, p *Pool) float64 {
	return p.ReduceSum(len(a), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

// Norm2Pool is Norm2 with a chunk-ordered parallel reduction.
func Norm2Pool(a []float64, p *Pool) float64 {
	return math.Sqrt(p.ReduceSum(len(a), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a[i] * a[i]
		}
		return s
	}))
}

// AXPY computes dst[i] = x[i] + alpha·y[i].
func AXPY(dst []float64, x []float64, alpha float64, y []float64) {
	for i := range dst {
		dst[i] = x[i] + alpha*y[i]
	}
}

// AXPYPool is AXPY sharded over the pool's workers (elementwise, so
// bit-identical at any worker count).
func AXPYPool(dst []float64, x []float64, alpha float64, y []float64, p *Pool) {
	p.For(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = x[i] + alpha*y[i]
		}
	})
}

// Scale multiplies a by alpha in place.
func Scale(a []float64, alpha float64) {
	for i := range a {
		a[i] *= alpha
	}
}

// ScalePool is Scale sharded over the pool's workers.
func ScalePool(a []float64, alpha float64, p *Pool) {
	p.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] *= alpha
		}
	})
}

// Clamp truncates every coordinate into [-1, 1] in place: the projection
// onto the cube B∞.
func Clamp(a []float64) {
	for i, v := range a {
		if v > 1 {
			a[i] = 1
		} else if v < -1 {
			a[i] = -1
		}
	}
}

// ClampPool is Clamp sharded over the pool's workers.
func ClampPool(a []float64, p *Pool) {
	p.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if a[i] > 1 {
				a[i] = 1
			} else if a[i] < -1 {
				a[i] = -1
			}
		}
	})
}

// ClampVal returns min(1, max(-1, v)) — the truncated linear function [z]
// of §2.2 of the paper.
func ClampVal(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Copy duplicates a into a fresh slice.
func Copy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// QuadraticForm returns xᵀAx for the adjacency matrix of g, computed as
// Σ_v x[v]·(Ax)[v] without materializing A. Equals 2·Σ_{(u,v)∈E} x_u·x_v.
func QuadraticForm(g *graph.Graph, x []float64) float64 {
	s := 0.0
	for v := 0; v < g.N(); v++ {
		row := 0.0
		for _, u := range g.Neighbors(v) {
			row += x[u]
		}
		s += x[v] * row
	}
	return s
}

// ExpectedLocality returns the expected fraction of uncut edges under
// independent randomized rounding of the fractional solution x:
// (½ Σ_(u,v)∈E (x_u·x_v + 1)) / m  =  (xᵀAx/4 + m/2) / m.
// Returns 1 for edgeless graphs. It is the unit-edge-weight case of
// ExpectedLocalityWeighted.
func ExpectedLocality(g *graph.Graph, x []float64) float64 {
	offsets, adj := g.CSR()
	return ExpectedLocalityWeighted(offsets, adj, nil, x)
}
