package vecmath

import "unsafe"

// Float32 variants of the bandwidth-bound SpMV kernels. The gradient gather
// is memory-bound (one 4-byte arc target plus one x load per arc); storing x
// and the edge weights in float32 halves the gathered bytes per arc, which
// on bandwidth-saturated hardware converts directly into throughput. Every
// accumulation still runs in float64 — per row, left to right, exactly like
// the float64 kernels — so the result is a deterministic function of the
// float32 inputs: bit-identical at any worker count, but NOT bit-identical
// to the float64 kernels (the inputs themselves are rounded). Callers that
// promise byte-stable output must therefore treat the 32-bit path as a
// distinct, explicitly fingerprinted configuration (Options.Kernel32), never
// as a drop-in replacement.

// Convert32Pool fills dst with float32(src), sharded over the pool. dst and
// src must have equal length.
func Convert32Pool(dst []float32, src []float64, p *Pool) {
	if len(dst) != len(src) {
		panic("vecmath: Convert32Pool length mismatch")
	}
	p.For(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = float32(src[i])
		}
	})
}

// SpMV32WeightedMaskedPool is SpMVWeightedMaskedPool with float32 storage:
// dst[v] = Σ_i float64(ew32[i])·float64(x32[adj[i]]) over v's arc range,
// restricted to rows where fixed[v] is false (fixed rows keep their dst
// value). ew32 == nil selects unit edge weights; fixed == nil computes every
// row. Accumulation is float64 in original per-row arc order, so the output
// is bit-identical at any worker count.
func SpMV32WeightedMaskedPool(offsets []int64, adj []int32, ew32 []float32, x32 []float32, dst []float64, fixed []bool, p *Pool) {
	n := len(offsets) - 1
	p.For(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if fixed != nil && fixed[v] {
				continue
			}
			s := 0.0
			row := adj[offsets[v]:offsets[v+1]]
			if ew32 == nil {
				for _, u := range row {
					s += float64(x32[u])
				}
			} else {
				wrow := ew32[offsets[v]:offsets[v+1]]
				for i, u := range row {
					s += float64(wrow[i]) * float64(x32[u])
				}
			}
			dst[v] = s
		}
	})
}

// spmvRow32Unsafe continues accumulating a CSR row over arcs [b, e) starting
// from s with unchecked float32 loads, preserving the left-to-right arc
// order of the checked 32-bit kernel.
func spmvRow32Unsafe(ab, eb, xb unsafe.Pointer, b, e int64, s float64) float64 {
	if eb == nil {
		for i := b; i < e; i++ {
			u := *(*int32)(unsafe.Add(ab, uintptr(i)*4))
			s += float64(*(*float32)(unsafe.Add(xb, uintptr(u)*4)))
		}
	} else {
		for i := b; i < e; i++ {
			u := *(*int32)(unsafe.Add(ab, uintptr(i)*4))
			s += float64(*(*float32)(unsafe.Add(eb, uintptr(i)*4))) *
				float64(*(*float32)(unsafe.Add(xb, uintptr(u)*4)))
		}
	}
	return s
}

// SpMVBlocked32Pool is the register-blocked float32 gather: identical
// masking rules and per-row summation order to SpMV32WeightedMaskedPool
// (bit-identical output at any worker count), with rows interleaved in
// groups of four and unchecked loads. Like SpMVBlockedPool it REQUIRES the
// CSR validity invariant — every adj[i] in [0, len(offsets)-1) — which
// graph.Graph construction and reorder.NewLayout guarantee.
func SpMVBlocked32Pool(offsets []int64, adj []int32, ew32 []float32, x32 []float32, dst []float64, fixed []bool, p *Pool) {
	n := len(offsets) - 1
	if n <= 0 {
		return
	}
	if len(x32) != n || len(dst) != n {
		panic("vecmath: SpMVBlocked32Pool vector/offset length mismatch")
	}
	if int64(len(adj)) != offsets[n] {
		panic("vecmath: SpMVBlocked32Pool adjacency/offset length mismatch")
	}
	if ew32 != nil && len(ew32) != len(adj) {
		panic("vecmath: SpMVBlocked32Pool edge-weight length mismatch")
	}
	if fixed != nil && len(fixed) != n {
		panic("vecmath: SpMVBlocked32Pool mask length mismatch")
	}
	if len(adj) == 0 {
		p.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if fixed == nil || !fixed[v] {
					dst[v] = 0
				}
			}
		})
		return
	}
	xb := unsafe.Pointer(&x32[0])
	ab := unsafe.Pointer(&adj[0])
	var eb unsafe.Pointer
	if ew32 != nil {
		eb = unsafe.Pointer(&ew32[0])
	}
	p.For(n, func(lo, hi int) {
		v := lo
		for ; v+blockRows <= hi; v += blockRows {
			if fixed != nil && (fixed[v] || fixed[v+1] || fixed[v+2] || fixed[v+3]) {
				for w := v; w < v+blockRows; w++ {
					if !fixed[w] {
						dst[w] = spmvRow32Unsafe(ab, eb, xb, offsets[w], offsets[w+1], 0)
					}
				}
				continue
			}
			i0, e0 := offsets[v], offsets[v+1]
			i1, e1 := offsets[v+1], offsets[v+2]
			i2, e2 := offsets[v+2], offsets[v+3]
			i3, e3 := offsets[v+3], offsets[v+4]
			m := e0 - i0
			if c := e1 - i1; c < m {
				m = c
			}
			if c := e2 - i2; c < m {
				m = c
			}
			if c := e3 - i3; c < m {
				m = c
			}
			var s0, s1, s2, s3 float64
			if eb == nil {
				for k := int64(0); k < m; k++ {
					u0 := *(*int32)(unsafe.Add(ab, uintptr(i0+k)*4))
					u1 := *(*int32)(unsafe.Add(ab, uintptr(i1+k)*4))
					u2 := *(*int32)(unsafe.Add(ab, uintptr(i2+k)*4))
					u3 := *(*int32)(unsafe.Add(ab, uintptr(i3+k)*4))
					s0 += float64(*(*float32)(unsafe.Add(xb, uintptr(u0)*4)))
					s1 += float64(*(*float32)(unsafe.Add(xb, uintptr(u1)*4)))
					s2 += float64(*(*float32)(unsafe.Add(xb, uintptr(u2)*4)))
					s3 += float64(*(*float32)(unsafe.Add(xb, uintptr(u3)*4)))
				}
			} else {
				for k := int64(0); k < m; k++ {
					u0 := *(*int32)(unsafe.Add(ab, uintptr(i0+k)*4))
					u1 := *(*int32)(unsafe.Add(ab, uintptr(i1+k)*4))
					u2 := *(*int32)(unsafe.Add(ab, uintptr(i2+k)*4))
					u3 := *(*int32)(unsafe.Add(ab, uintptr(i3+k)*4))
					s0 += float64(*(*float32)(unsafe.Add(eb, uintptr(i0+k)*4))) * float64(*(*float32)(unsafe.Add(xb, uintptr(u0)*4)))
					s1 += float64(*(*float32)(unsafe.Add(eb, uintptr(i1+k)*4))) * float64(*(*float32)(unsafe.Add(xb, uintptr(u1)*4)))
					s2 += float64(*(*float32)(unsafe.Add(eb, uintptr(i2+k)*4))) * float64(*(*float32)(unsafe.Add(xb, uintptr(u2)*4)))
					s3 += float64(*(*float32)(unsafe.Add(eb, uintptr(i3+k)*4))) * float64(*(*float32)(unsafe.Add(xb, uintptr(u3)*4)))
				}
			}
			dst[v] = spmvRow32Unsafe(ab, eb, xb, i0+m, e0, s0)
			dst[v+1] = spmvRow32Unsafe(ab, eb, xb, i1+m, e1, s1)
			dst[v+2] = spmvRow32Unsafe(ab, eb, xb, i2+m, e2, s2)
			dst[v+3] = spmvRow32Unsafe(ab, eb, xb, i3+m, e3, s3)
		}
		for ; v < hi; v++ {
			if fixed == nil || !fixed[v] {
				dst[v] = spmvRow32Unsafe(ab, eb, xb, offsets[v], offsets[v+1], 0)
			}
		}
	})
}
