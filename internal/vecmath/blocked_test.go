package vecmath

import (
	"math/rand"
	"testing"
)

// blockedCase builds a random weighted CSR plus mask and input vector.
func blockedCase(seed int64, n, m int) (offsets []int64, adj []int32, ew []float64, x []float64, fixed []bool) {
	g := randomGraph(seed, n, m)
	offsets, adj = g.CSR()
	rng := rand.New(rand.NewSource(seed + 1))
	ew = make([]float64, len(adj))
	for i := range ew {
		ew[i] = rng.Float64()*3 - 1
	}
	x = make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	fixed = make([]bool, n)
	for i := range fixed {
		fixed[i] = rng.Intn(4) == 0
	}
	return
}

func TestSpMVBlockedMatchesPlainBitwise(t *testing.T) {
	cases := []struct {
		name string
		n, m int
	}{
		{"tiny", 5, 6},
		{"small", 300, 900},
		{"multi-chunk", 9000, 40000},
		{"sparse", 5000, 1500},
		{"non-multiple-of-4", 4099, 16000},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 8} {
			offsets, adj, ew, x, fixed := blockedCase(int64(tc.n+workers), tc.n, tc.m)
			p := NewPool(workers)
			for _, weights := range []string{"unit", "weighted"} {
				w := ew
				if weights == "unit" {
					w = nil
				}
				for _, mask := range []string{"nil", "masked"} {
					f := fixed
					if mask == "nil" {
						f = nil
					}
					want := make([]float64, tc.n)
					got := make([]float64, tc.n)
					for i := range want {
						want[i] = -99.5 // masked rows must keep prior dst
						got[i] = -99.5
					}
					SpMVWeightedMaskedPool(offsets, adj, w, x, want, f, p)
					SpMVBlockedPool(offsets, adj, w, x, got, f, p)
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("%s workers=%d %s/%s: dst[%d]=%v want %v",
								tc.name, workers, weights, mask, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestSpMVBlockedAllFixed(t *testing.T) {
	offsets, adj, ew, x, _ := blockedCase(7, 200, 600)
	fixed := make([]bool, 200)
	for i := range fixed {
		fixed[i] = true
	}
	dst := make([]float64, 200)
	for i := range dst {
		dst[i] = float64(i)
	}
	SpMVBlockedPool(offsets, adj, ew, x, dst, fixed, NewPool(4))
	for i := range dst {
		if dst[i] != float64(i) {
			t.Fatalf("fixed row %d overwritten: %v", i, dst[i])
		}
	}
}

func TestSpMVBlockedEmptyGraph(t *testing.T) {
	SpMVBlockedPool([]int64{0}, nil, nil, nil, nil, nil, NewPool(2))
	// n > 0 with zero arcs: live rows must still be zeroed.
	offsets := []int64{0, 0, 0, 0}
	dst := []float64{1, 2, 3}
	SpMVBlockedPool(offsets, nil, nil, make([]float64, 3), dst, nil, nil)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("arcless row %d: got %v, want 0", i, v)
		}
	}
}

func TestSpMVBlockedRejectsMismatchedLengths(t *testing.T) {
	offsets := []int64{0, 1, 2}
	adj := []int32{1, 0}
	cases := []struct {
		name string
		fn   func()
	}{
		{"short x", func() { SpMVBlockedPool(offsets, adj, nil, make([]float64, 1), make([]float64, 2), nil, nil) }},
		{"short dst", func() { SpMVBlockedPool(offsets, adj, nil, make([]float64, 2), make([]float64, 1), nil, nil) }},
		{"short adj", func() { SpMVBlockedPool(offsets, adj[:1], nil, make([]float64, 2), make([]float64, 2), nil, nil) }},
		{"short ew", func() { SpMVBlockedPool(offsets, adj, []float64{1}, make([]float64, 2), make([]float64, 2), nil, nil) }},
		{"short mask", func() { SpMVBlockedPool(offsets, adj, nil, make([]float64, 2), make([]float64, 2), []bool{false}, nil) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}
