package vecmath

import (
	"math/rand"
	"testing"
)

// f32Reference is the serial specification of the 32-bit kernel: float32
// inputs, float64 accumulation in per-row arc order.
func f32Reference(offsets []int64, adj []int32, ew32, x32 []float32, dst []float64, fixed []bool) {
	n := len(offsets) - 1
	for v := 0; v < n; v++ {
		if fixed != nil && fixed[v] {
			continue
		}
		s := 0.0
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if ew32 == nil {
				s += float64(x32[adj[i]])
			} else {
				s += float64(ew32[i]) * float64(x32[adj[i]])
			}
		}
		dst[v] = s
	}
}

func f32Case(seed int64, n, m int) (offsets []int64, adj []int32, ew32, x32 []float32, fixed []bool) {
	g := randomGraph(seed, n, m)
	offsets, adj = g.CSR()
	rng := rand.New(rand.NewSource(seed + 1))
	ew32 = make([]float32, len(adj))
	for i := range ew32 {
		ew32[i] = float32(rng.Float64()*3 - 1)
	}
	x32 = make([]float32, n)
	for i := range x32 {
		x32[i] = float32(rng.NormFloat64())
	}
	fixed = make([]bool, n)
	for i := range fixed {
		fixed[i] = rng.Intn(4) == 0
	}
	return
}

// TestSpMV32MatchesReferenceBitwise: both 32-bit kernels must reproduce the
// serial reference bit-for-bit at every worker count, with and without edge
// weights and masking.
func TestSpMV32MatchesReferenceBitwise(t *testing.T) {
	cases := []struct {
		name string
		n, m int
	}{
		{"tiny", 5, 6},
		{"small", 300, 900},
		{"multi-chunk", 9000, 40000},
		{"non-multiple-of-4", 4099, 16000},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 8} {
			offsets, adj, ew32, x32, fixed := f32Case(int64(tc.n+workers), tc.n, tc.m)
			p := NewPool(workers)
			for _, weights := range []string{"unit", "weighted"} {
				w := ew32
				if weights == "unit" {
					w = nil
				}
				for _, mask := range []string{"nil", "masked"} {
					f := fixed
					if mask == "nil" {
						f = nil
					}
					want := make([]float64, tc.n)
					checked := make([]float64, tc.n)
					blocked := make([]float64, tc.n)
					for i := range want {
						want[i] = -99.5 // masked rows must keep prior dst
						checked[i] = -99.5
						blocked[i] = -99.5
					}
					f32Reference(offsets, adj, w, x32, want, f)
					SpMV32WeightedMaskedPool(offsets, adj, w, x32, checked, f, p)
					SpMVBlocked32Pool(offsets, adj, w, x32, blocked, f, p)
					for i := range want {
						if checked[i] != want[i] {
							t.Fatalf("%s workers=%d %s/%s checked: dst[%d]=%v want %v",
								tc.name, workers, weights, mask, i, checked[i], want[i])
						}
						if blocked[i] != want[i] {
							t.Fatalf("%s workers=%d %s/%s blocked: dst[%d]=%v want %v",
								tc.name, workers, weights, mask, i, blocked[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestConvert32Pool: elementwise float32 conversion at several worker counts.
func TestConvert32Pool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]float64, 9001)
	for i := range src {
		src[i] = rng.NormFloat64() * 1e3
	}
	for _, workers := range []int{1, 2, 8} {
		dst := make([]float32, len(src))
		Convert32Pool(dst, src, NewPool(workers))
		for i := range src {
			if dst[i] != float32(src[i]) {
				t.Fatalf("workers=%d dst[%d]=%v want %v", workers, i, dst[i], float32(src[i]))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch: expected panic")
		}
	}()
	Convert32Pool(make([]float32, 2), make([]float64, 3), nil)
}

// TestSpMVBlocked32EmptyAndFixed covers the arcless zero-fill and the
// fixed-row skip of the blocked 32-bit kernel.
func TestSpMVBlocked32EmptyAndFixed(t *testing.T) {
	SpMVBlocked32Pool([]int64{0}, nil, nil, nil, nil, nil, NewPool(2))
	offsets := []int64{0, 0, 0, 0}
	dst := []float64{1, 2, 3}
	SpMVBlocked32Pool(offsets, nil, nil, make([]float32, 3), dst, nil, nil)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("arcless row %d: got %v, want 0", i, v)
		}
	}

	offs, adj, ew32, x32, _ := f32Case(7, 200, 600)
	fixed := make([]bool, 200)
	for i := range fixed {
		fixed[i] = true
	}
	out := make([]float64, 200)
	for i := range out {
		out[i] = float64(i)
	}
	SpMVBlocked32Pool(offs, adj, ew32, x32, out, fixed, NewPool(4))
	for i := range out {
		if out[i] != float64(i) {
			t.Fatalf("fixed row %d overwritten: %v", i, out[i])
		}
	}
}
