package vecmath

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

var poolSizes = []int{1, 2, 3, 4, 7, 16}

func TestPoolForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range poolSizes {
		n := 3*chunkSize + 17
		hits := make([]int32, n)
		NewPool(w).For(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("workers=%d: bad range [%d, %d)", w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
			}
		}
	}
}

func TestPoolForEmptyAndNil(t *testing.T) {
	called := false
	NewPool(4).For(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For(0) invoked fn")
	}
	var nilPool *Pool
	sum := 0
	nilPool.For(10, func(lo, hi int) { sum += hi - lo })
	if sum != 10 {
		t.Fatalf("nil pool covered %d of 10 indices", sum)
	}
	if got := nilPool.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
}

// The reduction contract: bit-identical sums for every worker count,
// including the nil/serial pool, because chunking depends only on n.
func TestPoolReduceSumDeterministicAcrossWorkers(t *testing.T) {
	n := 5*chunkSize + 123
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64() * 1e3
	}
	sum := func(p *Pool) float64 {
		return p.ReduceSum(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a[i]
			}
			return s
		})
	}
	var nilPool *Pool
	want := sum(nilPool)
	for _, w := range poolSizes {
		if got := sum(NewPool(w)); got != want {
			t.Fatalf("workers=%d: sum %v != serial %v", w, got, want)
		}
	}
}

func TestPoolReduceSum2MatchesPairOfReduceSums(t *testing.T) {
	n := 2*chunkSize + 9
	rng := rand.New(rand.NewSource(8))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	for _, w := range poolSizes {
		p := NewPool(w)
		ga, gb := p.ReduceSum2(n, func(lo, hi int) (float64, float64) {
			sa, sb := 0.0, 0.0
			for i := lo; i < hi; i++ {
				sa += a[i]
				sb += b[i]
			}
			return sa, sb
		})
		wa := p.ReduceSum(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a[i]
			}
			return s
		})
		wb := p.ReduceSum(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += b[i]
			}
			return s
		})
		if ga != wa || gb != wb {
			t.Fatalf("workers=%d: ReduceSum2 (%v, %v) != (%v, %v)", w, ga, gb, wa, wb)
		}
	}
}

func TestSpMVPoolMatchesSerialBitForBit(t *testing.T) {
	g := randomGraph(3, 2*chunkSize+100, 8*chunkSize)
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, g.N())
	SpMV(g, x, want)
	for _, w := range poolSizes {
		got := make([]float64, g.N())
		SpMVPool(g, x, got, NewPool(w))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: SpMVPool[%d] = %v, want %v", w, v, got[v], want[v])
			}
		}
	}
}

func TestSpMVMaskedPoolMatchesSerial(t *testing.T) {
	g := randomGraph(5, chunkSize+50, 4*chunkSize)
	rng := rand.New(rand.NewSource(6))
	n := g.N()
	x := make([]float64, n)
	fixed := make([]bool, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		fixed[i] = rng.Intn(3) == 0
	}
	want := make([]float64, n)
	SpMVMasked(g, x, want, fixed)
	for _, w := range poolSizes {
		got := make([]float64, n)
		SpMVMaskedPool(g, x, got, fixed, NewPool(w))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: masked SpMV differs at %d", w, v)
			}
		}
	}
}

func TestPooledElementwiseKernels(t *testing.T) {
	n := 2*chunkSize + 31
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 2
		y[i] = rng.NormFloat64()
	}
	wantAXPY := make([]float64, n)
	AXPY(wantAXPY, x, 0.7, y)
	wantScale := Copy(x)
	Scale(wantScale, -1.3)
	wantClamp := Copy(x)
	Clamp(wantClamp)
	for _, w := range poolSizes {
		p := NewPool(w)
		got := make([]float64, n)
		AXPYPool(got, x, 0.7, y, p)
		for i := range got {
			if got[i] != wantAXPY[i] {
				t.Fatalf("workers=%d: AXPYPool differs at %d", w, i)
			}
		}
		got = Copy(x)
		ScalePool(got, -1.3, p)
		for i := range got {
			if got[i] != wantScale[i] {
				t.Fatalf("workers=%d: ScalePool differs at %d", w, i)
			}
		}
		got = Copy(x)
		ClampPool(got, p)
		for i := range got {
			if got[i] != wantClamp[i] {
				t.Fatalf("workers=%d: ClampPool differs at %d", w, i)
			}
		}
	}
}

func TestDotAndNormPoolDeterministicAcrossWorkers(t *testing.T) {
	n := 4*chunkSize + 77
	rng := rand.New(rand.NewSource(10))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	var nilPool *Pool
	wantDot := DotPool(a, b, nilPool)
	wantNorm := Norm2Pool(a, nilPool)
	for _, w := range poolSizes {
		p := NewPool(w)
		if got := DotPool(a, b, p); got != wantDot {
			t.Fatalf("workers=%d: DotPool %v != %v", w, got, wantDot)
		}
		if got := Norm2Pool(a, p); got != wantNorm {
			t.Fatalf("workers=%d: Norm2Pool %v != %v", w, got, wantNorm)
		}
	}
}

func TestSpMVParallelStillMatchesSerial(t *testing.T) {
	g := randomGraph(11, 5000, 20000)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := make([]float64, g.N())
	SpMV(g, x, want)
	got := make([]float64, g.N())
	SpMVParallel(g, x, got)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("SpMVParallel differs at %d", v)
		}
	}
}
