package vecmath

import "unsafe"

// blockRows is the register-blocking factor of SpMVBlockedPool: rows are
// processed in groups of four with one independent accumulator chain each.
// A single row's gather is latency-bound on the serial float64 add chain
// (one add per arc); four interleaved chains keep the load ports busy
// instead. Groups start at multiples of four relative to row 0 and Pool
// chunks are 4096-aligned, so the grouping — and therefore the performance
// profile — is independent of the worker count, while each row's sum order
// never changes at all.
const blockRows = 4

// spmvRowUnsafe continues accumulating a CSR row over arcs [b, e) starting
// from s, with unchecked loads, preserving the left-to-right arc order of
// the checked kernels (the caller passes the running sum so a row split
// across the blocked loop and its tail keeps one association).
func spmvRowUnsafe(ab, eb, xb unsafe.Pointer, b, e int64, s float64) float64 {
	if eb == nil {
		for i := b; i < e; i++ {
			u := *(*int32)(unsafe.Add(ab, uintptr(i)*4))
			s += *(*float64)(unsafe.Add(xb, uintptr(u)*8))
		}
	} else {
		for i := b; i < e; i++ {
			u := *(*int32)(unsafe.Add(ab, uintptr(i)*4))
			s += *(*float64)(unsafe.Add(eb, uintptr(i)*8)) *
				*(*float64)(unsafe.Add(xb, uintptr(u)*8))
		}
	}
	return s
}

// SpMVBlockedPool computes dst = A_w·x over a raw weighted CSR adjacency
// exactly like SpMVWeightedMaskedPool — same masking rules, same per-row
// left-to-right summation order, bit-identical output at any worker count —
// but register-blocked: rows run in interleaved groups of four, and the
// gather x[adj[i]] uses unchecked loads. It is the speed-of-light variant
// of the gradient kernel for bandwidth-reduced (reordered) layouts, and is
// what internal/reorder's Layout drives.
//
// Unlike the checked kernels it REQUIRES the CSR validity invariant: every
// adj[i] must lie in [0, len(offsets)-1). graph.Graph construction and
// reorder.NewLayout guarantee this; callers handing in hand-built arrays
// must validate them first (graph.FromCSR does). Slice-length mismatches
// are rejected up front.
func SpMVBlockedPool(offsets []int64, adj []int32, ew []float64, x, dst []float64, fixed []bool, p *Pool) {
	n := len(offsets) - 1
	if n <= 0 {
		return
	}
	if len(x) != n || len(dst) != n {
		panic("vecmath: SpMVBlockedPool vector/offset length mismatch")
	}
	if int64(len(adj)) != offsets[n] {
		panic("vecmath: SpMVBlockedPool adjacency/offset length mismatch")
	}
	if ew != nil && len(ew) != len(adj) {
		panic("vecmath: SpMVBlockedPool edge-weight length mismatch")
	}
	if fixed != nil && len(fixed) != n {
		panic("vecmath: SpMVBlockedPool mask length mismatch")
	}
	if len(adj) == 0 {
		p.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if fixed == nil || !fixed[v] {
					dst[v] = 0
				}
			}
		})
		return
	}
	xb := unsafe.Pointer(&x[0])
	ab := unsafe.Pointer(&adj[0])
	var eb unsafe.Pointer
	if ew != nil {
		eb = unsafe.Pointer(&ew[0])
	}
	p.For(n, func(lo, hi int) {
		v := lo
		for ; v+blockRows <= hi; v += blockRows {
			if fixed != nil && (fixed[v] || fixed[v+1] || fixed[v+2] || fixed[v+3]) {
				for w := v; w < v+blockRows; w++ {
					if !fixed[w] {
						dst[w] = spmvRowUnsafe(ab, eb, xb, offsets[w], offsets[w+1], 0)
					}
				}
				continue
			}
			i0, e0 := offsets[v], offsets[v+1]
			i1, e1 := offsets[v+1], offsets[v+2]
			i2, e2 := offsets[v+2], offsets[v+3]
			i3, e3 := offsets[v+3], offsets[v+4]
			m := e0 - i0
			if c := e1 - i1; c < m {
				m = c
			}
			if c := e2 - i2; c < m {
				m = c
			}
			if c := e3 - i3; c < m {
				m = c
			}
			var s0, s1, s2, s3 float64
			if eb == nil {
				for k := int64(0); k < m; k++ {
					u0 := *(*int32)(unsafe.Add(ab, uintptr(i0+k)*4))
					u1 := *(*int32)(unsafe.Add(ab, uintptr(i1+k)*4))
					u2 := *(*int32)(unsafe.Add(ab, uintptr(i2+k)*4))
					u3 := *(*int32)(unsafe.Add(ab, uintptr(i3+k)*4))
					s0 += *(*float64)(unsafe.Add(xb, uintptr(u0)*8))
					s1 += *(*float64)(unsafe.Add(xb, uintptr(u1)*8))
					s2 += *(*float64)(unsafe.Add(xb, uintptr(u2)*8))
					s3 += *(*float64)(unsafe.Add(xb, uintptr(u3)*8))
				}
			} else {
				for k := int64(0); k < m; k++ {
					u0 := *(*int32)(unsafe.Add(ab, uintptr(i0+k)*4))
					u1 := *(*int32)(unsafe.Add(ab, uintptr(i1+k)*4))
					u2 := *(*int32)(unsafe.Add(ab, uintptr(i2+k)*4))
					u3 := *(*int32)(unsafe.Add(ab, uintptr(i3+k)*4))
					s0 += *(*float64)(unsafe.Add(eb, uintptr(i0+k)*8)) * *(*float64)(unsafe.Add(xb, uintptr(u0)*8))
					s1 += *(*float64)(unsafe.Add(eb, uintptr(i1+k)*8)) * *(*float64)(unsafe.Add(xb, uintptr(u1)*8))
					s2 += *(*float64)(unsafe.Add(eb, uintptr(i2+k)*8)) * *(*float64)(unsafe.Add(xb, uintptr(u2)*8))
					s3 += *(*float64)(unsafe.Add(eb, uintptr(i3+k)*8)) * *(*float64)(unsafe.Add(xb, uintptr(u3)*8))
				}
			}
			dst[v] = spmvRowUnsafe(ab, eb, xb, i0+m, e0, s0)
			dst[v+1] = spmvRowUnsafe(ab, eb, xb, i1+m, e1, s1)
			dst[v+2] = spmvRowUnsafe(ab, eb, xb, i2+m, e2, s2)
			dst[v+3] = spmvRowUnsafe(ab, eb, xb, i3+m, e3, s3)
		}
		for ; v < hi; v++ {
			if fixed == nil || !fixed[v] {
				dst[v] = spmvRowUnsafe(ab, eb, xb, offsets[v], offsets[v+1], 0)
			}
		}
	})
}
