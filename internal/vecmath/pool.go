package vecmath

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkSize is the fixed granularity of every parallel loop. Chunk
// boundaries depend only on the problem size — never on the worker count —
// and reductions combine per-chunk partial sums in chunk order, so a Pool
// produces bit-identical floating point results for any level of
// parallelism (including the serial nil pool). This is what keeps GD runs
// reproducible for a fixed seed regardless of -p.
const chunkSize = 4096

// Pool runs chunked data-parallel loops on up to Workers() goroutines.
// A nil *Pool is valid and runs everything on the calling goroutine with
// the same chunk-ordered reduction as the parallel paths. Pools are
// stateless and safe for concurrent use; goroutines are spawned per loop,
// which is cheap next to the O(|E|) kernels they execute.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given concurrency; workers <= 0 selects
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the resolved worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

func numChunks(n int) int { return (n + chunkSize - 1) / chunkSize }

func chunkBounds(c, n int) (int, int) {
	lo := c * chunkSize
	hi := lo + chunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// run executes fn(c) for every chunk index in [0, chunks). Workers pull
// chunk indices from a shared counter, so scheduling is dynamic but the
// work attached to each index is fixed.
func (p *Pool) run(chunks int, fn func(c int)) {
	workers := p.Workers()
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// For runs fn over [0, n) split into contiguous chunks. fn must only write
// indices within its [lo, hi) range.
func (p *Pool) For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.Workers() <= 1 || n <= chunkSize {
		fn(0, n)
		return
	}
	p.run(numChunks(n), func(c int) {
		lo, hi := chunkBounds(c, n)
		fn(lo, hi)
	})
}

// ReduceSum evaluates fn on every chunk of [0, n) and returns the sum of
// the per-chunk results, added in chunk order. Because the chunking is
// fixed, the float64 result is bit-identical for any worker count.
func (p *Pool) ReduceSum(n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunks := numChunks(n)
	if chunks == 1 {
		return fn(0, n)
	}
	partial := make([]float64, chunks)
	p.run(chunks, func(c int) {
		lo, hi := chunkBounds(c, n)
		partial[c] = fn(lo, hi)
	})
	s := 0.0
	for _, v := range partial {
		s += v
	}
	return s
}

// ReduceSum2 is ReduceSum for two simultaneous accumulators (e.g. ‖w‖² and
// ⟨w, x⟩ of a hyperplane projection computed in one pass).
func (p *Pool) ReduceSum2(n int, fn func(lo, hi int) (float64, float64)) (float64, float64) {
	if n <= 0 {
		return 0, 0
	}
	chunks := numChunks(n)
	if chunks == 1 {
		return fn(0, n)
	}
	partial := make([][2]float64, chunks)
	p.run(chunks, func(c int) {
		lo, hi := chunkBounds(c, n)
		a, b := fn(lo, hi)
		partial[c] = [2]float64{a, b}
	})
	var sa, sb float64
	for _, v := range partial {
		sa += v[0]
		sb += v[1]
	}
	return sa, sb
}
