package vecmath

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"mdbgp/internal/graph"
)

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func naiveSpMV(g *graph.Graph, x []float64) []float64 {
	n := g.N()
	dst := make([]float64, n)
	g.EachEdge(func(u, v int) bool {
		dst[u] += x[v]
		dst[v] += x[u]
		return true
	})
	return dst
}

func TestSpMVAgainstNaive(t *testing.T) {
	g := randomGraph(1, 50, 200)
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := naiveSpMV(g, x)
	got := make([]float64, g.N())
	SpMV(g, x, got)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("SpMV[%d]=%g, want %g", i, got[i], want[i])
		}
	}
}

func TestSpMVParallelMatchesSerialForced(t *testing.T) {
	// Force the concurrent code path even on single-CPU machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	g := randomGraph(13, 20000, 80000)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	serial := make([]float64, g.N())
	parallel := make([]float64, g.N())
	SpMV(g, x, serial)
	SpMVParallel(g, x, parallel)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("forced parallel mismatch at %d", i)
		}
	}
}

func TestSpMVParallelMatchesSerial(t *testing.T) {
	g := randomGraph(3, 10000, 40000)
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	serial := make([]float64, g.N())
	parallel := make([]float64, g.N())
	SpMV(g, x, serial)
	SpMVParallel(g, x, parallel)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel mismatch at %d: %g vs %g", i, parallel[i], serial[i])
		}
	}
}

func TestSpMVMaskedSkipsFixedRows(t *testing.T) {
	g := randomGraph(5, 30, 100)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	dst := make([]float64, g.N())
	for i := range dst {
		dst[i] = 42
	}
	fixed := make([]bool, g.N())
	for i := 0; i < g.N(); i += 2 {
		fixed[i] = true
	}
	SpMVMasked(g, x, dst, fixed)
	full := make([]float64, g.N())
	SpMV(g, x, full)
	for i := range dst {
		if fixed[i] {
			if dst[i] != 42 {
				t.Fatalf("fixed row %d overwritten", i)
			}
		} else if dst[i] != full[i] {
			t.Fatalf("free row %d: %g, want %g", i, dst[i], full[i])
		}
	}
}

func TestDotNormDist(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot=%g", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2=%g", got)
	}
	if got := Dist2([]float64{1, 1}, []float64{4, 5}); got != 5 {
		t.Fatalf("Dist2=%g", got)
	}
}

func TestAXPYScaleClampCopy(t *testing.T) {
	dst := make([]float64, 3)
	AXPY(dst, []float64{1, 2, 3}, 2, []float64{10, 20, 30})
	if dst[0] != 21 || dst[2] != 63 {
		t.Fatalf("AXPY=%v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 10.5 {
		t.Fatalf("Scale=%v", dst)
	}
	v := []float64{-3, 0.25, 7}
	Clamp(v)
	if v[0] != -1 || v[1] != 0.25 || v[2] != 1 {
		t.Fatalf("Clamp=%v", v)
	}
	c := Copy(v)
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Copy aliased input")
	}
}

func TestClampVal(t *testing.T) {
	cases := map[float64]float64{-2: -1, -1: -1, 0: 0, 0.5: 0.5, 1: 1, 3: 1}
	for in, want := range cases {
		if got := ClampVal(in); got != want {
			t.Fatalf("ClampVal(%g)=%g, want %g", in, got, want)
		}
	}
}

// Property: xᵀAx equals 2·Σ_{edges} x_u·x_v.
func TestQuickQuadraticForm(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 60)
		rng := rand.New(rand.NewSource(seed + 1))
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		edgeSum := 0.0
		g.EachEdge(func(u, v int) bool {
			edgeSum += x[u] * x[v]
			return true
		})
		return math.Abs(QuadraticForm(g, x)-2*edgeSum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: for integral x ∈ {-1,1}^n, expected locality equals the exact
// fraction of uncut edges.
func TestQuickExpectedLocalityIntegral(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 24, 80)
		if g.M() == 0 {
			return ExpectedLocality(g, make([]float64, g.N())) == 1
		}
		rng := rand.New(rand.NewSource(seed * 7))
		x := make([]float64, g.N())
		for i := range x {
			if rng.Intn(2) == 0 {
				x[i] = -1
			} else {
				x[i] = 1
			}
		}
		uncut := 0
		g.EachEdge(func(u, v int) bool {
			if x[u] == x[v] {
				uncut++
			}
			return true
		})
		want := float64(uncut) / float64(g.M())
		return math.Abs(ExpectedLocality(g, x)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedLocalityAtZeroIsHalf(t *testing.T) {
	g := randomGraph(11, 40, 120)
	x := make([]float64, g.N())
	if got := ExpectedLocality(g, x); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("locality at x=0 is %g, want 0.5", got)
	}
}
