package vecmath

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"mdbgp/internal/graph"
)

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func naiveSpMV(g *graph.Graph, x []float64) []float64 {
	n := g.N()
	dst := make([]float64, n)
	g.EachEdge(func(u, v int) bool {
		dst[u] += x[v]
		dst[v] += x[u]
		return true
	})
	return dst
}

func TestSpMVAgainstNaive(t *testing.T) {
	g := randomGraph(1, 50, 200)
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := naiveSpMV(g, x)
	got := make([]float64, g.N())
	SpMV(g, x, got)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("SpMV[%d]=%g, want %g", i, got[i], want[i])
		}
	}
}

func TestSpMVParallelMatchesSerialForced(t *testing.T) {
	// Force the concurrent code path even on single-CPU machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	g := randomGraph(13, 20000, 80000)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	serial := make([]float64, g.N())
	parallel := make([]float64, g.N())
	SpMV(g, x, serial)
	SpMVParallel(g, x, parallel)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("forced parallel mismatch at %d", i)
		}
	}
}

func TestSpMVParallelMatchesSerial(t *testing.T) {
	g := randomGraph(3, 10000, 40000)
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	serial := make([]float64, g.N())
	parallel := make([]float64, g.N())
	SpMV(g, x, serial)
	SpMVParallel(g, x, parallel)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel mismatch at %d: %g vs %g", i, parallel[i], serial[i])
		}
	}
}

func TestSpMVMaskedSkipsFixedRows(t *testing.T) {
	g := randomGraph(5, 30, 100)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	dst := make([]float64, g.N())
	for i := range dst {
		dst[i] = 42
	}
	fixed := make([]bool, g.N())
	for i := 0; i < g.N(); i += 2 {
		fixed[i] = true
	}
	SpMVMasked(g, x, dst, fixed)
	full := make([]float64, g.N())
	SpMV(g, x, full)
	for i := range dst {
		if fixed[i] {
			if dst[i] != 42 {
				t.Fatalf("fixed row %d overwritten", i)
			}
		} else if dst[i] != full[i] {
			t.Fatalf("free row %d: %g, want %g", i, dst[i], full[i])
		}
	}
}

func TestDotNormDist(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot=%g", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2=%g", got)
	}
	if got := Dist2([]float64{1, 1}, []float64{4, 5}); got != 5 {
		t.Fatalf("Dist2=%g", got)
	}
}

func TestAXPYScaleClampCopy(t *testing.T) {
	dst := make([]float64, 3)
	AXPY(dst, []float64{1, 2, 3}, 2, []float64{10, 20, 30})
	if dst[0] != 21 || dst[2] != 63 {
		t.Fatalf("AXPY=%v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 10.5 {
		t.Fatalf("Scale=%v", dst)
	}
	v := []float64{-3, 0.25, 7}
	Clamp(v)
	if v[0] != -1 || v[1] != 0.25 || v[2] != 1 {
		t.Fatalf("Clamp=%v", v)
	}
	c := Copy(v)
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Copy aliased input")
	}
}

func TestClampVal(t *testing.T) {
	cases := map[float64]float64{-2: -1, -1: -1, 0: 0, 0.5: 0.5, 1: 1, 3: 1}
	for in, want := range cases {
		if got := ClampVal(in); got != want {
			t.Fatalf("ClampVal(%g)=%g, want %g", in, got, want)
		}
	}
}

// Property: xᵀAx equals 2·Σ_{edges} x_u·x_v.
func TestQuickQuadraticForm(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 60)
		rng := rand.New(rand.NewSource(seed + 1))
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		edgeSum := 0.0
		g.EachEdge(func(u, v int) bool {
			edgeSum += x[u] * x[v]
			return true
		})
		return math.Abs(QuadraticForm(g, x)-2*edgeSum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: for integral x ∈ {-1,1}^n, expected locality equals the exact
// fraction of uncut edges.
func TestQuickExpectedLocalityIntegral(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 24, 80)
		if g.M() == 0 {
			return ExpectedLocality(g, make([]float64, g.N())) == 1
		}
		rng := rand.New(rand.NewSource(seed * 7))
		x := make([]float64, g.N())
		for i := range x {
			if rng.Intn(2) == 0 {
				x[i] = -1
			} else {
				x[i] = 1
			}
		}
		uncut := 0
		g.EachEdge(func(u, v int) bool {
			if x[u] == x[v] {
				uncut++
			}
			return true
		})
		want := float64(uncut) / float64(g.M())
		return math.Abs(ExpectedLocality(g, x)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedLocalityAtZeroIsHalf(t *testing.T) {
	g := randomGraph(11, 40, 120)
	x := make([]float64, g.N())
	if got := ExpectedLocality(g, x); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("locality at x=0 is %g, want 0.5", got)
	}
}

// --- Weighted (coarse-level) kernels ------------------------------------

func TestSpMVWeightedNilMatchesUnweighted(t *testing.T) {
	g := randomGraph(21, 8000, 40000)
	offsets, adj := g.CSR()
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want := make([]float64, g.N())
	SpMV(g, x, want)
	got := make([]float64, g.N())
	SpMVWeightedMaskedPool(offsets, adj, nil, x, got, nil, nil)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("nil-ew SpMV[%d]=%g, want %g (must be bit-identical)", i, got[i], want[i])
		}
	}
	// Materialized unit weights give the same values.
	ew := make([]float64, len(adj))
	for i := range ew {
		ew[i] = 1
	}
	SpMVWeightedMaskedPool(offsets, adj, ew, x, got, nil, nil)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("unit-ew SpMV[%d]=%g, want %g", i, got[i], want[i])
		}
	}
}

func TestSpMVWeightedAgainstNaive(t *testing.T) {
	g := randomGraph(22, 60, 240)
	offsets, adj := g.CSR()
	rng := rand.New(rand.NewSource(23))
	ew := make([]float64, len(adj))
	// Symmetric per-edge weights: weight of {u,v} must match both arcs.
	for v := 0; v < g.N(); v++ {
		for i := offsets[v]; i < offsets[v+1]; i++ {
			u := int(adj[i])
			if u > v {
				ew[i] = rng.Float64()*3 + 0.1
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		for i := offsets[v]; i < offsets[v+1]; i++ {
			u := int(adj[i])
			if u < v {
				for k := offsets[u]; k < offsets[u+1]; k++ {
					if int(adj[k]) == v {
						ew[i] = ew[k]
					}
				}
			}
		}
	}
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, g.N())
	g.EachEdge(func(u, v int) bool {
		var w float64
		for i := offsets[u]; i < offsets[u+1]; i++ {
			if int(adj[i]) == v {
				w = ew[i]
			}
		}
		want[u] += w * x[v]
		want[v] += w * x[u]
		return true
	})
	got := make([]float64, g.N())
	SpMVWeightedMaskedPool(offsets, adj, ew, x, got, nil, nil)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("weighted SpMV[%d]=%g, want %g", i, got[i], want[i])
		}
	}
	// Quadratic form agrees with Σ x·(A_w x).
	qf := QuadraticFormWeighted(offsets, adj, ew, x)
	dot := 0.0
	for i := range want {
		dot += x[i] * want[i]
	}
	if math.Abs(qf-dot) > 1e-9 {
		t.Fatalf("QuadraticFormWeighted=%g, want %g", qf, dot)
	}
}

func TestSpMVWeightedMaskedRespectsFixed(t *testing.T) {
	g := randomGraph(24, 500, 2000)
	offsets, adj := g.CSR()
	x := make([]float64, g.N())
	dst := make([]float64, g.N())
	fixed := make([]bool, g.N())
	for i := range x {
		x[i] = float64(i % 3)
		fixed[i] = i%4 == 0
		dst[i] = -99
	}
	SpMVWeightedMaskedPool(offsets, adj, nil, x, dst, fixed, NewPool(4))
	for i := range dst {
		if fixed[i] && dst[i] != -99 {
			t.Fatalf("fixed row %d overwritten", i)
		}
		if !fixed[i] && dst[i] == -99 {
			t.Fatalf("free row %d not computed", i)
		}
	}
}

func TestSpMVWeightedDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(25, 20000, 100000)
	offsets, adj := g.CSR()
	rng := rand.New(rand.NewSource(26))
	ew := make([]float64, len(adj))
	for i := range ew {
		ew[i] = rng.Float64() + 0.5
	}
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, g.N())
	SpMVWeightedMaskedPool(offsets, adj, ew, x, ref, nil, NewPool(1))
	for _, w := range []int{2, 8} {
		got := make([]float64, g.N())
		SpMVWeightedMaskedPool(offsets, adj, ew, x, got, nil, NewPool(w))
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d: row %d not bit-identical", w, i)
			}
		}
	}
}

func TestExpectedLocalityWeightedMatchesUnweighted(t *testing.T) {
	g := randomGraph(27, 2000, 8000)
	offsets, adj := g.CSR()
	rng := rand.New(rand.NewSource(28))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	want := ExpectedLocality(g, x)
	got := ExpectedLocalityWeighted(offsets, adj, nil, x)
	if math.Abs(want-got) > 1e-12 {
		t.Fatalf("nil-ew expected locality %g, want %g", got, want)
	}
	// Scaling every edge weight by a constant leaves the fraction unchanged.
	ew := make([]float64, len(adj))
	for i := range ew {
		ew[i] = 2.5
	}
	if got := ExpectedLocalityWeighted(offsets, adj, ew, x); math.Abs(want-got) > 1e-9 {
		t.Fatalf("scaled-ew expected locality %g, want %g", got, want)
	}
}
