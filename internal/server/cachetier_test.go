package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"mdbgp/internal/cachestore"
	"mdbgp/internal/ring"
)

// waitDiskEntries blocks until the write-behind queue has landed n entries.
func waitDiskEntries(t *testing.T, s *Server, n int64) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if _, _, _, _, entries := s.disk.Stats(); entries >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("disk tier never reached %d entries", n)
}

// TestDiskTierSurvivesRestart: a result solved before a restart is served as
// a cache hit — byte-identically — by a fresh server over the same cache
// dir, without re-solving.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, body := testGraph(t, 71)

	s1, ts1 := startServer(t, Config{Workers: 1, CacheDir: dir})
	code, m := submit(t, ts1, "seed=1&wait=true", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts1, m["job_id"].(string))
	asn1 := assignment(t, ts1, m["job_id"].(string))
	waitDiskEntries(t, s1, 1)
	ts1.Close()
	s1.Close()

	// "Restart": a brand-new process state over the surviving directory. The
	// memory LRU is empty, so only the disk tier can make this a hit.
	s2, ts2 := startServer(t, Config{Workers: 1, CacheDir: dir})
	code, m2 := submit(t, ts2, "seed=1", body)
	if code != http.StatusOK {
		t.Fatalf("post-restart submit: status %d, want 200 (disk-tier hit)", code)
	}
	if m2["cache"] != "hit" {
		t.Fatalf("post-restart cache = %v, want hit", m2["cache"])
	}
	asn2 := assignment(t, ts2, m2["job_id"].(string))
	if !bytes.Equal(asn1, asn2) {
		t.Fatal("restored result differs from the original solve")
	}
	if hits, _, _, _, _ := s2.disk.Stats(); hits != 1 {
		t.Fatalf("disk hits = %d, want 1", hits)
	}
	if v := metric(t, ts2, "mdbgpd_cache_disk_hits_total"); v != 1 {
		t.Fatalf("mdbgpd_cache_disk_hits_total = %v, want 1", v)
	}
	// The hit was promoted into memory: a repeat stays off the disk tier.
	if code, _ := submit(t, ts2, "seed=1", body); code != http.StatusOK {
		t.Fatal("promoted entry missed")
	}
	if hits, _, _, _, _ := s2.disk.Stats(); hits != 1 {
		t.Fatalf("repeat went back to disk: hits = %d, want still 1", hits)
	}
}

// TestCacheEndpoints: the peer-facing index and entry endpoints serve the
// durable tier (and only it), 404 without a configured tier, and the raw
// bytes they serve verify and decode.
func TestCacheEndpoints(t *testing.T) {
	dir := t.TempDir()
	_, body := testGraph(t, 72)
	s, ts := startServer(t, Config{Workers: 1, CacheDir: dir})

	code, m := submit(t, ts, "seed=1&wait=true", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts, m["job_id"].(string))
	waitDiskEntries(t, s, 1)
	key := m["key"].(string)

	code, idx := getJSON(t, ts.URL+"/v1/cache")
	if code != http.StatusOK {
		t.Fatalf("cache index: status %d", code)
	}
	keys, ok := idx["keys"].([]any)
	if !ok || len(keys) != 1 || keys[0] != key {
		t.Fatalf("cache index = %v, want [%s]", idx, key)
	}

	resp, err := http.Get(ts.URL + "/v1/cache/" + url.PathEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache entry: status %d (%s)", resp.StatusCode, raw)
	}
	gotKey, res, err := cachestore.DecodeEntry(raw)
	if err != nil || gotKey != key || res == nil {
		t.Fatalf("served entry does not verify: key %q err %v", gotKey, err)
	}

	if resp, err := http.Get(ts.URL + "/v1/cache/" + url.PathEscape("no:such:key:here")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown entry: status %d, want 404", resp.StatusCode)
		}
	}

	// No disk tier configured: both endpoints say so instead of panicking.
	_, tsNone := startServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/cache", "/v1/cache/x"} {
		if code, _ := getJSON(t, tsNone.URL+path); code != http.StatusNotFound {
			t.Fatalf("GET %s without a disk tier: status %d, want 404", path, code)
		}
	}
}

// TestWarmFromPeers: a fresh replica pulls exactly its ring-owned entries
// from a peer's durable tier and then serves them as local hits.
func TestWarmFromPeers(t *testing.T) {
	peer, peerTS := startServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	fresh, freshTS := startServer(t, Config{Workers: 1, CacheDir: t.TempDir()})
	self, peers := freshTS.URL, []string{peerTS.URL}

	// Ring ownership keys on the graph hash, and the ring members are the
	// httptest URLs (random ports) — so pick seeds until the fixture has at
	// least one graph on each side instead of praying over fixed seeds.
	rng := ring.New([]string{self, peerTS.URL}, 0)
	var bodies [][]byte
	wantFetched, wantSkipped := 0, 0
	for seed := int64(73); wantFetched == 0 || wantSkipped == 0; seed++ {
		g, body := testGraph(t, seed)
		if rng.Owner(g.HashString()) == self {
			wantFetched++
		} else {
			wantSkipped++
		}
		bodies = append(bodies, body)
	}

	for _, body := range bodies {
		code, m := submit(t, peerTS, "seed=1&wait=true", body)
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("peer submit: status %d", code)
		}
		pollDone(t, peerTS, m["job_id"].(string))
	}
	waitDiskEntries(t, peer, int64(len(bodies)))

	st := fresh.WarmFromPeers(self, peers, 2)
	if st.PeersPolled != 1 || st.KeysSeen != len(bodies) || st.Errors != 0 {
		t.Fatalf("warm stats = %+v, want %d keys seen", st, len(bodies))
	}
	if st.Fetched != wantFetched || st.Skipped != wantSkipped {
		t.Fatalf("warm stats = %+v, want fetched=%d skipped=%d", st, wantFetched, wantSkipped)
	}
	// Ring ownership decided what moved: every fetched entry's graph hash
	// must hash to self on the two-member ring, every skipped one must not.
	// Verify through the store rather than re-deriving the split.
	for _, key := range fresh.disk.Keys() {
		if got, ok := fresh.disk.Get(key); !ok || got == nil {
			t.Fatalf("warmed entry %s does not read back", key)
		}
		res, ok := peer.disk.Get(key)
		if !ok {
			t.Fatalf("warmed entry %s not present on the peer it came from", key)
		}
		_ = res
	}
	// Warming is idempotent: a second pass fetches nothing new.
	st2 := fresh.WarmFromPeers(self, peers, 2)
	if st2.Fetched != 0 || st2.Errors != 0 {
		t.Fatalf("second warm pass re-fetched: %+v", st2)
	}
	if v := metric(t, freshTS, "mdbgpd_cache_warm_fetched_total"); v != float64(st.Fetched) {
		t.Fatalf("mdbgpd_cache_warm_fetched_total = %v, want %d", v, st.Fetched)
	}
}

// TestTrustedHashHeader: with TrustHashHeader set, a well-formed
// X-Mdbgp-Graph-Hash wins over local hashing (normalized to lowercase); a
// malformed one falls back silently; without the flag the header is inert.
func TestTrustedHashHeader(t *testing.T) {
	_, body := testGraph(t, 76)
	fake := strings.Repeat("AB12", 16)
	post := func(ts *httptest.Server, header string) map[string]any {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/partition?seed=1&wait=true", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(GraphHashHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		pollDone(t, ts, m["job_id"].(string))
		return m
	}

	_, trusted := startServer(t, Config{Workers: 1, TrustHashHeader: true})
	real := post(trusted, "")["graph_hash"].(string)
	if got := post(trusted, fake)["graph_hash"]; got != strings.ToLower(fake) {
		t.Fatalf("trusted header ignored: graph_hash %v, want %s", got, strings.ToLower(fake))
	}
	if got := post(trusted, "not-a-hash")["graph_hash"]; got != real {
		t.Fatalf("malformed header did not fall back to local hashing: %v", got)
	}

	_, untrusted := startServer(t, Config{Workers: 1})
	if got := post(untrusted, fake)["graph_hash"]; got != real {
		t.Fatalf("header honored without TrustHashHeader: %v", got)
	}
}
