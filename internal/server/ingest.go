package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"

	"mdbgp"
	"mdbgp/internal/baselines"
	"mdbgp/internal/wire"
)

// Ingest modes reported in job JSON and submit responses. "resident" is a
// graph materialized as an in-memory CSR (text uploads, and binary uploads
// within budget); "out-of-core" is a binary upload above
// Config.MaxResidentEdges, validated and spilled to disk, solved by
// restreaming the spill through a streaming engine.
const (
	ingestModeResident = "resident"
	ingestModeOOC      = "out-of-core"
)

// ingestInfo is the outcome of body ingestion, whichever codec and mode
// produced it — the unit dispatch operates on.
type ingestInfo struct {
	g     *mdbgp.Graph // nil when mode is out-of-core
	n     int
	m     int64
	hash  string // canonical content hash
	mode  string
	spill *spillFile // non-nil only for out-of-core
}

// spillFile is a validated wire-format graph parked on disk for out-of-core
// solving. Exactly one dispatch outcome consumes it: the job that solves from
// it removes it on finish; every path that does not enqueue (cache hit,
// coalesce, 429, shutdown) removes it immediately. remove is idempotent so
// overlapping cleanup paths are safe.
type spillFile struct {
	path string
	hdr  wire.Header
	s    *Server
	once sync.Once
}

func (sp *spillFile) remove() {
	if sp == nil {
		return
	}
	sp.once.Do(func() {
		if err := os.Remove(sp.path); err != nil && !os.IsNotExist(err) {
			sp.s.log.Error("removing spill", "path", sp.path, "error", err.Error())
		}
		sp.s.met.spillActive.Add(-1)
	})
}

// rowSource returns a baselines.RowSource that re-opens and re-decodes the
// spill on every pass — the restreaming contract FennelStream needs. Each
// pass re-verifies the wire chunk CRCs, so bit rot between ingest and solve
// surfaces as a failed job, not a silently wrong partition (the same
// discipline internal/cachestore applies to cached results).
func (sp *spillFile) rowSource() baselines.RowSource {
	return func(fn func(v int, adj []int32) error) error {
		f, err := os.Open(sp.path)
		if err != nil {
			return fmt.Errorf("server: opening spill: %w", err)
		}
		defer f.Close()
		d, err := wire.NewDecoder(f)
		if err != nil {
			return fmt.Errorf("server: spill corrupted: %w", err)
		}
		return d.Rows(fn)
	}
}

// symmetryXOR is a one-pass probabilistic symmetry check for the out-of-core
// path, where the graph is never materialized so Graph.Validate's pairing
// check is unavailable. Every directed arc (v,w) XORs the seeded hash of its
// unordered pair {v,w} into an accumulator: each vertex's row appears exactly
// once and is internally duplicate-free, so a pair can contribute at most
// twice — a symmetric stream cancels to zero, an unpaired arc leaves a
// residue. The seed is drawn fresh per ingest, so a hostile uploader cannot
// precompute residues that cancel; a false accept requires a blind 64-bit
// hash collision across the unpaired arcs.
type symmetryXOR struct {
	seed maphash.Seed
	acc  uint64
}

func newSymmetryXOR() *symmetryXOR { return &symmetryXOR{seed: maphash.MakeSeed()} }

func (s *symmetryXOR) add(v int, adj []int32) {
	var b [8]byte
	for _, w := range adj {
		lo, hi := uint32(v), uint32(w)
		if lo > hi {
			lo, hi = hi, lo
		}
		binary.LittleEndian.PutUint32(b[:4], lo)
		binary.LittleEndian.PutUint32(b[4:], hi)
		s.acc ^= maphash.Bytes(s.seed, b[:])
	}
}

func (s *symmetryXOR) symmetric() bool { return s.acc == 0 }

// ingestBinary handles a Content-Type: application/x-mdbgp-csr body: parse
// and validate the wire header, then either materialize the CSR (within the
// resident-edge budget) or validate-and-spill the stream to disk for an
// out-of-core solve. On error it writes the HTTP response and returns nil.
// It may rewrite req.opts.Engine (and req.engine) when auto-routing an
// oversized graph to a streaming engine.
func (s *Server) ingestBinary(w http.ResponseWriter, r *http.Request, req *submitRequest) *ingestInfo {
	s.met.binarySubmitted.Add(1)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var hb [wire.HeaderSize]byte
	if _, err := io.ReadFull(body, hb[:]); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading wire header: %v (see docs/WIRE_FORMAT.md)", err))
		return nil
	}
	hdr, err := wire.ParseHeader(hb[:])
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	if hdr.N == 0 || hdr.Arcs == 0 {
		httpError(w, http.StatusBadRequest, "empty graph: the wire stream must carry at least one edge")
		return nil
	}
	if hdr.Weighted() {
		// The serving cache is keyed on the CSR content hash alone; accepting
		// side-channel weights would let two uploads with the same key ask for
		// different solves. Weighted files are an offline (CLI) feature.
		httpError(w, http.StatusBadRequest, "weight section not supported on this endpoint (the cache is keyed on the graph alone); strip weights or pass dims= instead")
		return nil
	}
	if s.cfg.MaxVertexID > 0 && hdr.N-1 > uint64(s.cfg.MaxVertexID) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("vertex id %d exceeds limit %d", hdr.N-1, s.cfg.MaxVertexID))
		return nil
	}

	if s.cfg.MaxResidentEdges > 0 && hdr.Edges() > s.cfg.MaxResidentEdges {
		return s.ingestOutOfCore(w, req, hdr, hb[:], body, r)
	}

	g, _, err := wire.Decode(io.MultiReader(bytes.NewReader(hb[:]), body))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return nil
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	// The wire decoder enforces row-local invariants only; the engines
	// additionally assume a symmetric canonical CSR, so validate before
	// dispatch exactly as cmd/mdbgp does after wire.Decode.
	if err := g.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("binary graph invalid: %v (the payload must be the canonical symmetric CSR; see docs/WIRE_FORMAT.md)", err))
		return nil
	}
	hash := ""
	if s.cfg.TrustHashHeader {
		hash = normalizeHash(r.Header.Get(GraphHashHeader))
	}
	if hash == "" {
		hash = g.HashString()
	}
	return &ingestInfo{g: g, n: g.N(), m: g.M(), hash: hash, mode: ingestModeResident}
}

// ingestOutOfCore is the above-budget binary path: route to a streaming
// engine (auto-selecting one for default requests), validate the stream
// chunk by chunk while teeing it to a spill file, and hand dispatch a
// graph-free ingestInfo. The spill write follows internal/cachestore's
// atomic discipline — write to a .tmp name, fsync, rename — so a crash
// mid-ingest leaves only a .tmp orphan, never a plausible-looking spill;
// the wire format's per-chunk CRCs take the role of the store's checksums
// and are re-verified on every later read pass.
func (s *Server) ingestOutOfCore(w http.ResponseWriter, req *submitRequest, hdr wire.Header, hb []byte, body io.Reader, r *http.Request) *ingestInfo {
	// Engine routing first — it needs no I/O, so an unroutable request fails
	// before the server spends disk bandwidth on it. Only a fully default
	// request (no explicit engine, no explicit dims) is auto-routed: changing
	// the solver behind an explicit choice would be a silent downgrade.
	if req.opts.Engine == "" && !req.opts.Multilevel {
		req.opts.Engine = "fennel"
		eng, err := mdbgp.LookupEngine(req.opts.Engine)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return nil
		}
		req.engine = eng.Info()
	}
	if !req.engine.Streaming || req.dimsExplicit {
		names := make([]string, 0, 2)
		for _, e := range mdbgp.Engines() {
			if e.Streaming {
				names = append(names, e.Name)
			}
		}
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf(
			"graph has %d edges, above the resident budget of %d; out-of-core solving requires a streaming engine (%s) with default dims — or raise -max-resident-edges",
			hdr.Edges(), s.cfg.MaxResidentEdges, strings.Join(names, ", ")))
		return nil
	}

	f, err := os.CreateTemp(s.cfg.SpillDir, "mdbgp-spill-*.tmp")
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("creating spill: %v", err))
		return nil
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := f.Write(hb); err != nil {
		cleanup()
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("writing spill: %v", err))
		return nil
	}
	// The decoder drives the tee: every body byte it consumes lands in the
	// spill, and because Finish rejects trailing bytes the spill ends up
	// holding exactly the wire stream — fully validated (structure + CRCs)
	// before anything downstream can trust it. The symmetry accumulator
	// rides the same pass: the streaming engines and ComputeStreamStats
	// assume a symmetric canonical CSR, and this path never materializes a
	// Graph to run Validate on.
	sym := newSymmetryXOR()
	d, err := wire.NewDecoder(io.MultiReader(bytes.NewReader(hb), io.TeeReader(body, f)))
	if err == nil {
		err = d.Rows(func(v int, adj []int32) error {
			sym.add(v, adj)
			return nil
		})
	}
	if err == nil {
		err = d.Finish()
	}
	if err == nil && !sym.symmetric() {
		err = errors.New("asymmetric adjacency: some edge is listed at only one endpoint (the payload must be the canonical symmetric CSR; see docs/WIRE_FORMAT.md)")
	}
	if err != nil {
		cleanup()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return nil
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	if err := f.Sync(); err != nil {
		cleanup()
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("syncing spill: %v", err))
		return nil
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("closing spill: %v", err))
		return nil
	}
	final := strings.TrimSuffix(tmp, ".tmp")
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("publishing spill: %v", err))
		return nil
	}
	s.met.spillActive.Add(1)
	s.met.spillBytes.Add(size)
	sp := &spillFile{path: final, hdr: hdr, s: s}

	hash := ""
	if s.cfg.TrustHashHeader {
		hash = normalizeHash(r.Header.Get(GraphHashHeader))
	}
	if hash == "" {
		hash, _, err = wire.HashGraph(func() (io.ReadCloser, error) {
			return os.Open(sp.path)
		})
		if err != nil {
			sp.remove()
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("hashing spill: %v", err))
			return nil
		}
	}
	s.met.oocSubmitted.Add(1)
	return &ingestInfo{n: int(hdr.N), m: hdr.Edges(), hash: hash, mode: ingestModeOOC, spill: sp}
}

// streamSolve runs the out-of-core solve: a streaming Fennel over the spill
// (opt.Passes restreams), then one extra scoring pass. Natural-order
// visiting makes it deterministic with no RNG, so results are identical at
// any worker count — but different from the in-core fennel engine's
// permuted-order solve, which is why dispatch keys out-of-core results under
// a distinct ":ooc" cache-key suffix.
func (s *Server) streamSolve(sp *spillFile, n int, m int64, opts mdbgp.Options) (*mdbgp.Result, error) {
	src := sp.rowSource()
	asgn, err := baselines.FennelStream(n, m, opts.K, src, baselines.FennelOptions{
		Slack: 1 + opts.Epsilon, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	st, err := baselines.ComputeStreamStats(n, m, opts.K, src, asgn)
	if err != nil {
		return nil, err
	}
	// Imbalances follow the default dims order (vertices, edges) — the only
	// dims an out-of-core request can reach dispatch with.
	return &mdbgp.Result{
		Assignment:   asgn,
		EdgeLocality: st.EdgeLocality,
		CutEdges:     st.CutEdges,
		Imbalances:   []float64{st.VertexImb, st.DegreeImb},
	}, nil
}
