package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"mdbgp"
	"mdbgp/internal/wire"
)

// submitWire POSTs body to /v1/partition?query under the binary content type.
func submitWire(t *testing.T, ts *httptest.Server, query string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/partition?"+query, wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp.StatusCode, m
}

// wireBody encodes g in the binary wire format.
func wireBody(t *testing.T, g *mdbgp.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.Encode(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinarySubmitSharesCacheWithText: the codec must be invisible to content
// addressing — a text upload and a binary upload of the same graph land on
// the same canonical hash, the same cache key, and therefore the same cached
// result.
func TestBinarySubmitSharesCacheWithText(t *testing.T) {
	g, text := testGraph(t, 7)
	_, ts := startServer(t, Config{Workers: 2})

	code, m1 := submit(t, ts, "k=4&seed=1&wait=true", text)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("text submit: status %d (%v)", code, m1)
	}
	done1 := pollDone(t, ts, m1["job_id"].(string))
	if done1["status"] != "done" {
		t.Fatalf("text job: %v", done1)
	}
	if done1["ingest_mode"] != "resident" {
		t.Fatalf("text job ingest_mode = %v, want resident", done1["ingest_mode"])
	}

	code, m2 := submitWire(t, ts, "k=4&seed=1&wait=true", wireBody(t, g))
	if code != http.StatusOK {
		t.Fatalf("binary submit after identical text submit: status %d (%v), want 200 cache hit", code, m2)
	}
	if m2["cache"] != "hit" {
		t.Fatalf("binary submit cache = %v, want hit", m2["cache"])
	}
	if m1["graph_hash"] != m2["graph_hash"] {
		t.Fatalf("codec changed the content address: text %v, binary %v", m1["graph_hash"], m2["graph_hash"])
	}
	if m1["key"] != m2["key"] {
		t.Fatalf("codec changed the cache key: text %v, binary %v", m1["key"], m2["key"])
	}
	a1 := assignment(t, ts, m1["job_id"].(string))
	a2 := assignment(t, ts, m2["job_id"].(string))
	if !bytes.Equal(a1, a2) {
		t.Fatal("text-solved and binary-hit assignments differ")
	}
}

// TestBinaryDeterminismAcrossWorkerCounts: a binary upload solves to
// byte-identical assignments at any worker count, same as text.
func TestBinaryDeterminismAcrossWorkerCounts(t *testing.T) {
	g, _ := testGraph(t, 11)
	body := wireBody(t, g)
	var ref []byte
	var refKey any
	for _, workers := range []int{1, 2, 8} {
		_, ts := startServer(t, Config{Workers: workers})
		code, m := submitWire(t, ts, "k=4&seed=3&wait=true", body)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("workers=%d: status %d (%v)", workers, code, m)
		}
		done := pollDone(t, ts, m["job_id"].(string))
		if done["status"] != "done" {
			t.Fatalf("workers=%d: %v", workers, done)
		}
		a := assignment(t, ts, m["job_id"].(string))
		if ref == nil {
			ref, refKey = a, m["key"]
			continue
		}
		if m["key"] != refKey {
			t.Fatalf("workers=%d: key %v, want %v", workers, m["key"], refKey)
		}
		if !bytes.Equal(a, ref) {
			t.Fatalf("workers=%d: assignment differs from workers=1", workers)
		}
	}
}

// TestOutOfCoreFlow drives the full above-budget path through real HTTP: a
// binary upload larger than MaxResidentEdges auto-routes to the streaming
// fennel engine, spills to disk, solves, reports ingest_mode=out-of-core,
// and leaves the spill directory empty when done. A repeat upload is a cache
// hit (and must clean up its own spill too).
func TestOutOfCoreFlow(t *testing.T) {
	g, text := testGraph(t, 13) // ~1600 edges
	spillDir := t.TempDir()
	_, ts := startServer(t, Config{Workers: 2, MaxResidentEdges: 100, SpillDir: spillDir})
	body := wireBody(t, g)

	code, m := submitWire(t, ts, "k=4&wait=true", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("ooc submit: status %d (%v)", code, m)
	}
	if m["ingest_mode"] != "out-of-core" {
		t.Fatalf("ingest_mode = %v, want out-of-core", m["ingest_mode"])
	}
	if m["engine"] != "fennel" {
		t.Fatalf("engine = %v, want auto-routed fennel", m["engine"])
	}
	done := pollDone(t, ts, m["job_id"].(string))
	if done["status"] != "done" {
		t.Fatalf("ooc job failed: %v", done)
	}
	res := done["result"].(map[string]any)
	if res["k"].(float64) != 4 {
		t.Fatalf("result k = %v", res["k"])
	}
	if loc := res["edge_locality"].(float64); loc <= 0.25 {
		t.Fatalf("ooc locality %v not better than random (0.25)", loc)
	}
	if got := len(assignment(t, ts, m["job_id"].(string))); got == 0 {
		t.Fatal("empty ooc assignment")
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir not cleaned after solve: %d entries", len(entries))
	}
	if v := metric(t, ts, "mdbgpd_ooc_jobs_total"); v != 1 {
		t.Fatalf("mdbgpd_ooc_jobs_total = %v, want 1", v)
	}
	if v := metric(t, ts, "mdbgpd_spill_active"); v != 0 {
		t.Fatalf("mdbgpd_spill_active = %v, want 0", v)
	}

	// Repeat: served from cache under the :ooc key, spill removed on the hit
	// path.
	code, m2 := submitWire(t, ts, "k=4&wait=true", body)
	if code != http.StatusOK || m2["cache"] != "hit" {
		t.Fatalf("ooc resubmit: status %d cache %v, want 200 hit", code, m2["cache"])
	}
	if m2["ingest_mode"] != "out-of-core" {
		t.Fatalf("ooc resubmit ingest_mode = %v", m2["ingest_mode"])
	}
	if entries, _ := os.ReadDir(spillDir); len(entries) != 0 {
		t.Fatalf("spill dir not cleaned after cache hit: %d entries", len(entries))
	}

	// The same graph as text is rejected with guidance, not materialized.
	if code, _ := submit(t, ts, "k=4", text); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget text submit: status %d, want 413", code)
	}

	// In-core fennel and out-of-core fennel must not share a cache key: the
	// same request against an unbudgeted server is a miss, not a hit.
	_, ts2 := startServer(t, Config{Workers: 2})
	code, m3 := submitWire(t, ts2, "k=4&engine=fennel&wait=true", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("resident fennel submit: status %d", code)
	}
	if key2, key := m3["key"].(string), m["key"].(string); key2+":ooc" != key {
		t.Fatalf("expected ooc key = resident key + \":ooc\"; got resident %q, ooc %q", key2, key)
	}
}

// TestOutOfCoreRequiresStreamingEngine: explicit engine or dims choices are
// never silently downgraded — above budget they fail with 413 and guidance.
func TestOutOfCoreRequiresStreamingEngine(t *testing.T) {
	g, _ := testGraph(t, 17)
	_, ts := startServer(t, Config{Workers: 1, MaxResidentEdges: 100, SpillDir: t.TempDir()})
	body := wireBody(t, g)

	for _, query := range []string{"k=4&engine=gd", "k=4&dims=vertices"} {
		code, m := submitWire(t, ts, query, body)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d (%v), want 413", query, code, m)
		}
	}
	// Explicitly asking for the streaming engine is fine.
	code, m := submitWire(t, ts, "k=4&engine=fennel&wait=true", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("explicit fennel: status %d (%v)", code, m)
	}
	if done := pollDone(t, ts, m["job_id"].(string)); done["status"] != "done" {
		t.Fatalf("explicit fennel ooc job: %v", done)
	}
}

// TestBinaryRejections covers the binary-specific 400s: corrupt streams,
// weighted uploads, deltas, and empty graphs.
func TestBinaryRejections(t *testing.T) {
	g, _ := testGraph(t, 19)
	_, ts := startServer(t, Config{Workers: 1})
	body := wireBody(t, g)

	// Corrupt one payload byte past the header: CRC catches it.
	bad := append([]byte(nil), body...)
	bad[wire.HeaderSize+10] ^= 0xFF
	if code, _ := submitWire(t, ts, "k=4", bad); code != http.StatusBadRequest {
		t.Fatalf("corrupt stream: status %d, want 400", code)
	}

	// Weighted files are a CLI feature; the endpoint refuses them.
	var weighted bytes.Buffer
	w := make([]float64, g.N())
	for i := range w {
		w[i] = 1
	}
	if err := wire.Encode(&weighted, g, [][]float64{w}); err != nil {
		t.Fatal(err)
	}
	if code, m := submitWire(t, ts, "k=4", weighted.Bytes()); code != http.StatusBadRequest {
		t.Fatalf("weighted upload: status %d (%v), want 400", code, m)
	}

	// Binary deltas have no defined semantics.
	if code, _ := submitWire(t, ts, "k=4&base="+g.HashString(), body); code != http.StatusBadRequest {
		t.Fatalf("binary delta: status %d, want 400", code)
	}

	// An empty graph is rejected before any chunk is read.
	var empty bytes.Buffer
	enc, err := wire.NewEncoder(&empty, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if code, _ := submitWire(t, ts, "k=4", empty.Bytes()); code != http.StatusBadRequest {
		t.Fatalf("empty graph: status %d, want 400", code)
	}

	// Garbage that is not even a header.
	if code, _ := submitWire(t, ts, "k=4", []byte("definitely not a wire stream")); code != http.StatusBadRequest {
		t.Fatalf("garbage: status %d, want 400", code)
	}
}

// asymmetricWireBody encodes a syntactically valid stream whose adjacency is
// not symmetric: vertex 0 lists 1..deg, but no row lists 0 back. The encoder
// only enforces row-local canonicality, so this passes every decoder check.
func asymmetricWireBody(t *testing.T, n, deg int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := wire.NewEncoder(&buf, n, int64(deg), false)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int32, deg)
	for i := range row {
		row[i] = int32(i + 1)
	}
	if err := enc.AddRow(row); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if err := enc.AddRow(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryRejectsAsymmetric: the engines assume a symmetric canonical CSR,
// so both ingest paths must refuse an asymmetric stream — the resident path
// via Graph.Validate, the out-of-core path via the streaming pairing check —
// and the out-of-core rejection must not leak its spill file.
func TestBinaryRejectsAsymmetric(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	code, m := submitWire(t, ts, "k=2", asymmetricWireBody(t, 8, 4))
	if code != http.StatusBadRequest {
		t.Fatalf("resident asymmetric upload: status %d (%v), want 400", code, m)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "symmetric") {
		t.Fatalf("resident rejection does not mention symmetry: %v", m)
	}

	spillDir := t.TempDir()
	_, ts2 := startServer(t, Config{Workers: 1, MaxResidentEdges: 100, SpillDir: spillDir})
	code, m = submitWire(t, ts2, "k=2", asymmetricWireBody(t, 300, 256)) // 128 claimed edges > budget
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-core asymmetric upload: status %d (%v), want 400", code, m)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "asymmetric") {
		t.Fatalf("ooc rejection does not mention asymmetry: %v", m)
	}
	if entries, _ := os.ReadDir(spillDir); len(entries) != 0 {
		t.Fatalf("spill dir not cleaned after rejection: %d entries", len(entries))
	}
}
