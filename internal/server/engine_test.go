package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"mdbgp"
)

// TestEngineSelection drives every registered engine through the HTTP
// surface: each must complete, report its engine in the submit response and
// the job JSON, and produce a valid full assignment.
func TestEngineSelection(t *testing.T) {
	g, body := testGraph(t, 31)
	_, ts := startServer(t, Config{Workers: 2})
	for _, name := range mdbgp.EngineNames() {
		code, m := submit(t, ts, "k=4&seed=42&iters=30&engine="+name+"&wait=true", body)
		if code != http.StatusOK || m["status"] != "done" {
			t.Fatalf("engine %s: %d %v", name, code, m)
		}
		if m["engine"] != name {
			t.Fatalf("engine %s: submit response reports %v", name, m["engine"])
		}
		job := pollDone(t, ts, m["job_id"].(string))
		if job["engine"] != name {
			t.Fatalf("engine %s: job JSON reports %v", name, job["engine"])
		}
		a := assignment(t, ts, m["job_id"].(string))
		if lines := bytes.Count(a, []byte("\n")); lines != g.N() {
			t.Fatalf("engine %s: assignment has %d lines, want %d", name, lines, g.N())
		}
	}
	// The per-engine Prometheus labels account for every submission and
	// solve.
	for _, name := range mdbgp.EngineNames() {
		if v := metric(t, ts, `mdbgpd_jobs_by_engine_total{engine="`+name+`"}`); v != 1 {
			t.Fatalf("jobs_by_engine{%s} = %v, want 1", name, v)
		}
		if v := metric(t, ts, `mdbgpd_solves_by_engine_total{engine="`+name+`"}`); v != 1 {
			t.Fatalf("solves_by_engine{%s} = %v, want 1", name, v)
		}
	}
}

// TestEngineOmittedDefaultsToGD: requests without ?engine= keep their
// historical meaning, and job metadata says so explicitly.
func TestEngineOmittedDefaultsToGD(t *testing.T) {
	_, body := testGraph(t, 32)
	_, ts := startServer(t, Config{Workers: 1})
	code, m := submit(t, ts, "k=2&seed=1&iters=20&wait=true", body)
	if code != http.StatusOK || m["engine"] != "gd" {
		t.Fatalf("default engine: %d %v", code, m)
	}
	// The deprecated multilevel=true spelling resolves to the multilevel
	// engine.
	code, m = submit(t, ts, "k=2&seed=1&iters=20&multilevel=true&wait=true", body)
	if code != http.StatusOK || m["engine"] != "multilevel" {
		t.Fatalf("multilevel alias: %d %v", code, m)
	}
	// And it is the SAME content address as the explicit spelling: the
	// second submission must hit the first's cache entry.
	code, m = submit(t, ts, "k=2&seed=1&iters=20&engine=multilevel&wait=true", body)
	if code != http.StatusOK || m["cache"] != "hit" {
		t.Fatalf("engine=multilevel should hit the alias's cache entry: %d %v", code, m)
	}
}

// TestEngineCacheKeysNeverCollide submits one graph under every engine and
// asserts each got a distinct content key and none was served from another
// engine's cache entry — the serving half of the fingerprint collision
// audit.
func TestEngineCacheKeysNeverCollide(t *testing.T) {
	_, body := testGraph(t, 33)
	_, ts := startServer(t, Config{Workers: 2})
	keys := map[string]string{}
	for _, name := range mdbgp.EngineNames() {
		code, m := submit(t, ts, "k=4&seed=42&iters=30&engine="+name+"&wait=true", body)
		if code != http.StatusOK {
			t.Fatalf("engine %s: %d %v", name, code, m)
		}
		if m["cache"] != "miss" {
			t.Fatalf("engine %s was served from another engine's cache entry: %v", name, m)
		}
		key := m["key"].(string)
		for prior, pk := range keys {
			if pk == key {
				t.Fatalf("engines %s and %s share cache key %s", prior, name, key)
			}
		}
		keys[name] = key
	}
}

func TestEngineParamErrors(t *testing.T) {
	_, body := testGraph(t, 34)
	_, ts := startServer(t, Config{Workers: 1})

	// Unknown engine: 400 naming the known engines.
	code, m := submit(t, ts, "k=2&engine=simulated-annealing", body)
	if code != http.StatusBadRequest || !strings.Contains(m["error"].(string), "unknown engine") {
		t.Fatalf("unknown engine: %d %v", code, m)
	}
	// Conflicting engine= and multilevel=: 400.
	code, m = submit(t, ts, "k=2&engine=fennel&multilevel=true", body)
	if code != http.StatusBadRequest || !strings.Contains(m["error"].(string), "conflicting") {
		t.Fatalf("conflict: %d %v", code, m)
	}
	// engine=multilevel plus multilevel=true agree: accepted.
	code, m = submit(t, ts, "k=2&seed=5&iters=20&engine=multilevel&multilevel=true&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("agreeing alias rejected: %d %v", code, m)
	}
	// Explicit dims on an engine without weighted support: 422, the request
	// is well-formed but semantically unsatisfiable.
	code, m = submit(t, ts, "k=2&engine=fennel&dims=vertices,edges", body)
	if code != http.StatusUnprocessableEntity || !strings.Contains(m["error"].(string), "cannot balance") {
		t.Fatalf("dims on non-weighted engine: %d %v", code, m)
	}
	// The same dims on a weighted engine are fine.
	code, _ = submit(t, ts, "k=2&seed=5&iters=20&engine=blp&dims=vertices,edges&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("dims on weighted engine: %d", code)
	}
	// Default dims on a non-weighted engine are fine too: the engine solves
	// on its own terms and the job reports how the defaults came out.
	code, _ = submit(t, ts, "k=2&seed=5&engine=fennel&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("default dims on non-weighted engine: %d", code)
	}
}

// TestDeltaEngineWithoutWarmFallsBackCold: a delta submission naming a
// cold-only engine is capability-degraded, not an error — the server
// materializes the target graph and solves cold, recording why.
func TestDeltaEngineWithoutWarmFallsBackCold(t *testing.T) {
	g, body := testGraph(t, 35)
	_, ts := startServer(t, Config{Workers: 1})

	code, m := submit(t, ts, "k=4&seed=42&engine=fennel&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d %v", code, m)
	}
	code, m2, dv := submitDelta(t, ts, "k=4&seed=42&engine=fennel&wait=true&base="+m["job_id"].(string), smallDelta(t, g))
	if code != http.StatusOK || m2["status"] != "done" {
		t.Fatalf("delta: %d %v", code, m2)
	}
	if dv["mode"] != "cold" || dv["cold_reason"] != "engine lacks warm-start capability" {
		t.Fatalf("delta resolution = %v, want capability-degraded cold", dv)
	}
	if dv["chain_depth"].(float64) != 0 {
		t.Fatalf("cold solve chain_depth = %v, want 0", dv["chain_depth"])
	}
	if v := metric(t, ts, "mdbgpd_delta_cold_total"); v != 1 {
		t.Fatalf("delta_cold_total = %v, want 1", v)
	}
}

// chainDelta builds a tiny always-applicable delta unique per hop: it adds
// one fresh edge between two fresh vertices (tethered to vertex 0 so the
// graph stays connected), so churn stays negligible and each hop's graph is
// distinct.
func chainDelta(hop int, n int) []byte {
	u := n + 2*hop
	return []byte(fmt.Sprintf("+ %d %d\n+ 0 %d\n", u, u+1, u))
}

// TestDeltaChainDepthLimit is the regression test for the base-chain depth
// bound: a delta-of-a-delta chain accrues chain_depth per warm hop, the hop
// that would exceed MaxChainDepth is forced cold ("chain depth limit"), the
// forced-cold solve resets the lineage to depth 0, and the hop after THAT
// warm-starts again from the fresh solution.
func TestDeltaChainDepthLimit(t *testing.T) {
	g, body := testGraph(t, 36)
	_, ts := startServer(t, Config{Workers: 1, MaxChainDepth: 2})

	code, m := submit(t, ts, "k=4&seed=42&iters=30&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d %v", code, m)
	}
	prev := m["job_id"].(string)

	type hop struct {
		mode   string
		reason string
		depth  float64
	}
	want := []hop{
		{mode: "warm", depth: 1},
		{mode: "warm", depth: 2},
		{mode: "cold", reason: "chain depth limit", depth: 0},
		{mode: "warm", depth: 1}, // the forced-cold solve restarted the lineage
	}
	for i, w := range want {
		code, m2, dv := submitDelta(t, ts, "k=4&seed=42&iters=30&wait=true&base="+prev, chainDelta(i, g.N()))
		if code != http.StatusOK || m2["status"] != "done" {
			t.Fatalf("hop %d: %d %v", i, code, m2)
		}
		if dv["mode"] != w.mode {
			t.Fatalf("hop %d mode = %v, want %s (%v)", i, dv["mode"], w.mode, dv)
		}
		reason, _ := dv["cold_reason"].(string)
		if w.reason != "" && reason != w.reason {
			t.Fatalf("hop %d cold_reason = %q, want %q", i, reason, w.reason)
		}
		if dv["chain_depth"].(float64) != w.depth {
			t.Fatalf("hop %d chain_depth = %v, want %g", i, dv["chain_depth"], w.depth)
		}
		prev = m2["job_id"].(string)
	}
	if v := metric(t, ts, "mdbgpd_delta_chain_resets_total"); v != 1 {
		t.Fatalf("delta_chain_resets_total = %v, want 1", v)
	}
}

// TestDeltaChainUnlimitedWhenDisabled: a negative MaxChainDepth lifts the
// bound — depth keeps accruing and no hop is forced cold.
func TestDeltaChainUnlimitedWhenDisabled(t *testing.T) {
	g, body := testGraph(t, 37)
	_, ts := startServer(t, Config{Workers: 1, MaxChainDepth: -1})

	code, m := submit(t, ts, "k=4&seed=42&iters=30&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d %v", code, m)
	}
	prev := m["job_id"].(string)
	for i := 0; i < 10; i++ {
		code, m2, dv := submitDelta(t, ts, "k=4&seed=42&iters=30&wait=true&base="+prev, chainDelta(i, g.N()))
		if code != http.StatusOK {
			t.Fatalf("hop %d: %d %v", i, code, m2)
		}
		if dv["mode"] != "warm" {
			t.Fatalf("hop %d went %v (%v) with the limit disabled", i, dv["mode"], dv)
		}
		if dv["chain_depth"].(float64) != float64(i+1) {
			t.Fatalf("hop %d chain_depth = %v, want %d", i, dv["chain_depth"], i+1)
		}
		prev = m2["job_id"].(string)
	}
}
