package server

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"mdbgp"
	"mdbgp/internal/obs"
)

// Status is the lifecycle state of a partition job.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// job is one partition request flowing through the queue. The graph is
// retained only until the job finishes (it lives on in the base-graph
// cache); results are shared with the result cache and must not be mutated.
type job struct {
	id        string
	key       string // content address: version + graph hash + dims + options fingerprint
	graphHash string // canonical CSR hash alone — what ?base= resolves to
	opts      mdbgp.Options
	engine    string // canonical engine name solving (or having solved) this job
	dims      []mdbgp.Weight
	dimNames  string     // canonical dims= spelling — part of prep-cache keys
	delta     *deltaView // non-nil for delta submissions; immutable

	// ingestMode records how the graph arrived ("resident" or "out-of-core");
	// spill is the disk-parked wire stream an out-of-core job solves from.
	// The job owns the spill from enqueue until finishJob removes it.
	ingestMode string
	spill      *spillFile

	// trace is the request's root span (nil when tracing is disabled) and
	// queueSpan its open queue-wait child. Both are set before the job is
	// published and never reassigned; Span itself is safe for concurrent
	// snapshot-while-recording.
	trace     *obs.Span
	queueSpan *obs.Span

	done chan struct{} // closed exactly once, when status becomes done/failed

	mu        sync.Mutex
	status    Status
	cache     string // "hit", "miss" or "pending" as reported at submit time
	errMsg    string
	n         int
	m         int64
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *mdbgp.Result
	g         *mdbgp.Graph
	conv      *convergenceView
}

// convergenceView summarizes the solver's convergence telemetry for the job
// JSON, aggregated over every GD run the solve performed (one per bisection
// of the recursive k-way split, plus the coarse and refinement solves of a
// multilevel V-cycle).
type convergenceView struct {
	// GDRuns is how many gradient-descent runs the solve performed.
	GDRuns int `json:"gd_runs"`
	// ItersTo90 is the worst (maximum) iterations-to-90%-of-final-locality
	// across all runs — how long the slowest bisection took to do 90% of its
	// useful work, in sampled iterations.
	ItersTo90 int `json:"iters_to_90"`
	// FinalLocality is the weakest (minimum) final sampled locality across
	// runs.
	FinalLocality float64 `json:"final_locality"`
}

// convergenceFromTrace walks a finished request trace and aggregates the gd
// spans' convergence attributes. Returns nil when there is nothing to report
// (tracing off, cache hit, or a non-GD engine).
func convergenceFromTrace(root *obs.Span) *convergenceView {
	if root == nil {
		return nil
	}
	var cv *convergenceView
	root.Snapshot().Walk(func(sp *obs.SpanView) {
		if sp.Name != "gd" {
			return
		}
		final, ok := sp.Float("final_locality")
		if !ok {
			return
		}
		to90, _ := sp.Float("iters_to_90")
		if cv == nil {
			cv = &convergenceView{GDRuns: 1, ItersTo90: int(to90), FinalLocality: final}
			return
		}
		cv.GDRuns++
		if int(to90) > cv.ItersTo90 {
			cv.ItersTo90 = int(to90)
		}
		if final < cv.FinalLocality {
			cv.FinalLocality = final
		}
	})
	return cv
}

// deltaView describes how a delta submission was resolved. It is fixed at
// submit time and shared read-only by the JSON renderers.
type deltaView struct {
	// Base is the canonical hash of the base graph the delta applied to.
	Base string `json:"base"`
	// Churn is the effective change fraction: symmetric-difference edges
	// over base edges.
	Churn float64 `json:"churn"`
	// Added and Removed count the effective edge insertions/deletions.
	Added   int64 `json:"added_edges"`
	Removed int64 `json:"removed_edges"`
	// NewVertices counts vertex ids introduced beyond the base's range.
	NewVertices int `json:"new_vertices"`
	// Mode is "warm" (the solve started from the base's cached solution) or
	// "cold".
	Mode string `json:"mode"`
	// ColdReason explains a cold solve: "churn above threshold", "base
	// solution not cached", "chain depth limit" or "engine lacks warm-start
	// capability".
	ColdReason string `json:"cold_reason,omitempty"`
	// ChainDepth counts warm hops since the last cold solve of this lineage:
	// 0 for cold solves, base depth + 1 for warm ones. Past
	// Config.MaxChainDepth the server forces a cold solve, resetting it.
	ChainDepth int `json:"chain_depth"`
}

// snapshot copies the mutable fields under the job lock for rendering.
type jobView struct {
	ID         string
	Key        string
	GraphHash  string
	Engine     string
	Status     Status
	Cache      string
	ErrMsg     string
	N          int
	M          int64
	IngestMode string
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	Res        *mdbgp.Result
	Delta      *deltaView
	Conv       *convergenceView
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID: j.id, Key: j.key, GraphHash: j.graphHash, Engine: j.engine,
		Status: j.status, Cache: j.cache, ErrMsg: j.errMsg,
		N: j.n, M: j.m, IngestMode: j.ingestMode,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Res: j.res, Delta: j.delta, Conv: j.conv,
	}
}

// worker drains the queue until the server is closed.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	g, opts, dims := j.g, j.opts, j.dims
	j.mu.Unlock()
	j.queueSpan.End()
	s.met.recordQueueWait(queueWait)
	s.met.jobsRunning.Add(1)
	defer s.met.jobsRunning.Add(-1)

	solve := s.solve
	if solve == nil {
		solve = s.defaultSolve
	}
	solveSpan := j.trace.Start("solve")
	if solveSpan != nil {
		solveSpan.SetAttr("engine", j.engine)
		if j.spill != nil {
			solveSpan.SetAttr("ingest_mode", j.ingestMode)
		}
	}
	// The solver publishes its span tree under the solve span. Observer is
	// excluded from option fingerprints, so attaching it here cannot fork the
	// cache key the job was dispatched under.
	opts.Observer = solveSpan
	if g != nil && j.spill == nil {
		// Prep amortization: reuse (or build and retain) the solve's
		// assignment-independent preprocessing. Like the observer, the
		// injected artifacts are excluded from fingerprints — a cached-prep
		// solve is byte-identical to a rebuilt-prep one.
		opts = s.attachPrep(g, j.graphHash, j.dimNames, dims, opts, solveSpan)
	}
	start := time.Now()
	var res *mdbgp.Result
	var err error
	if j.spill != nil {
		// Out-of-core: no materialized graph to hand the engine; stream the
		// spill instead. dims are the defaults by construction (ingestBinary
		// rejects explicit dims on this path).
		res, err = s.streamSolve(j.spill, j.n, j.m, opts)
	} else {
		res, err = solve(g, dims, opts)
	}
	elapsed := time.Since(start)
	solveSpan.End()
	s.met.recordEngineSolve(j.engine, elapsed)
	s.finishJob(j, res, err)
	s.logJob(j, queueWait, elapsed, err)
}

// logJob emits the structured per-job completion record, escalating to Warn
// when the solve blew the slow-request threshold.
func (s *Server) logJob(j *job, queueWait, elapsed time.Duration, err error) {
	attrs := []any{
		slog.String("job_id", j.id),
		slog.String("engine", j.engine),
		slog.Int("n", j.n),
		slog.Int64("m", j.m),
		slog.Duration("queue_wait", queueWait),
		slog.Duration("solve", elapsed),
	}
	if err != nil {
		s.log.Error("job failed", append(attrs, slog.String("error", err.Error()))...)
		return
	}
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		s.log.Warn("slow solve", append(attrs, slog.Duration("threshold", s.cfg.SlowRequest))...)
		return
	}
	s.log.Info("job done", attrs...)
}

// defaultSolve materializes the balance dimensions and runs the engine.
func (s *Server) defaultSolve(g *mdbgp.Graph, dims []mdbgp.Weight, opts mdbgp.Options) (*mdbgp.Result, error) {
	ws, err := mdbgp.StandardWeights(g, dims...)
	if err != nil {
		return nil, err
	}
	opts.Weights = ws
	opts.Parallelism = s.cfg.Parallelism
	return mdbgp.Partition(g, opts)
}

// finishJob records the outcome, publishes to the cache, releases the graph
// and wakes any waiters. It is also used for cache-hit jobs (err == nil,
// res from the cache) and shutdown failures.
func (s *Server) finishJob(j *job, res *mdbgp.Result, err error) {
	if err == nil && res != nil && j.cacheable() {
		if ev := s.cache.put(j.key, res); ev > 0 {
			s.met.cacheEvictions.Add(int64(ev))
		}
		if s.disk != nil {
			// Write-behind: the durable tier persists off the request path.
			s.disk.Put(j.key, res)
		}
	}
	// End is idempotent, so the shutdown path (which skips runJob) closes the
	// queue-wait span here and the normal path is unaffected.
	j.queueSpan.End()
	j.trace.End()
	// The spill's one consumer (this job) is done with it — success or not.
	// remove is idempotent, so a shutdown race with dispatch cleanup is safe.
	j.spill.remove()
	conv := convergenceFromTrace(j.trace)
	j.mu.Lock()
	j.conv = conv
	j.finished = time.Now()
	j.g = nil // the graph is no longer needed here; the graph cache owns it
	// Release the warm assignment: it can be as large as the graph's vertex
	// set and the retained job history would otherwise pin RetainJobs of
	// them. It has already been folded into the content key.
	j.opts.WarmAssignment = nil
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.res = res
	}
	j.mu.Unlock()
	close(j.done)
	if err != nil {
		s.met.jobsFailed.Add(1)
	} else {
		s.met.jobsCompleted.Add(1)
	}
	s.retire(j)
}

// cacheable reports whether the finished job should publish its result; a
// job created directly from a cache hit must not re-insert (put would just
// refresh recency, which get already did).
func (j *job) cacheable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cache != "hit"
}

// retire moves the job into the bounded completed-job history, evicting the
// oldest finished jobs beyond the retention cap so the store cannot grow
// without bound under sustained traffic.
func (s *Server) retire(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, j.key)
	s.doneOrder = append(s.doneOrder, j.id)
	// Evict by advancing doneHead instead of re-slicing: doneOrder[1:] keeps
	// the full backing array reachable, so under sustained traffic the window
	// crawls forward through an allocation that only ever grows. Advancing an
	// index (and zeroing the slot so the id string is collectable) keeps the
	// same array in use; once the dead prefix outweighs the live window the
	// live ids are copied down and the prefix reclaimed, bounding the backing
	// array at ~2× the retention cap.
	for len(s.doneOrder)-s.doneHead > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[s.doneHead])
		s.doneOrder[s.doneHead] = ""
		s.doneHead++
	}
	if s.doneHead > len(s.doneOrder)-s.doneHead {
		n := copy(s.doneOrder, s.doneOrder[s.doneHead:])
		clear(s.doneOrder[n:])
		s.doneOrder = s.doneOrder[:n]
		s.doneHead = 0
	}
}

// newJobID derives a short, unique, content-flavored id: a sequence number
// plus the head of the content key.
func (s *Server) newJobID(key string) string {
	seq := s.seq.Add(1)
	tail := key
	if len(tail) > 8 {
		tail = tail[:8]
	}
	return fmt.Sprintf("j%d-%s", seq, tail)
}
