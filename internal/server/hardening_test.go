package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mdbgp"
	"mdbgp/internal/obs"
)

// TestResolveWarmReturnsDefensiveCopy: the warm assignment handed to a delta
// solve must be a private copy — the solver mutates its working assignment,
// and before the fix that scribbled directly over the cached base result.
func TestResolveWarmReturnsDefensiveCopy(t *testing.T) {
	_, body := testGraph(t, 61)
	s, ts := startServer(t, Config{Workers: 1})

	code, m := submit(t, ts, "seed=1&wait=true", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts, m["job_id"].(string))
	hash := m["graph_hash"].(string)

	dims, names, err := mdbgp.ParseWeightDims("")
	if err != nil {
		t.Fatal(err)
	}
	req := submitRequest{opts: mdbgp.Options{Seed: 1}, dims: dims, dimNames: names}
	key := cacheKey(hash, names, req.opts.Canonical())
	cached, ok := s.cache.get(key)
	if !ok {
		t.Fatalf("base result not cached under %s", key)
	}
	before := append([]int32(nil), cached.Assignment.Parts...)

	// Path 1: warm start resolved from the result cache.
	warm := s.resolveWarm(hash, nil, req)
	if warm == nil {
		t.Fatal("resolveWarm found no cached base solution")
	}
	for i := range warm {
		warm[i] += 1000 // the solve "improving" its working assignment
	}
	after, ok := s.cache.get(key)
	if !ok {
		t.Fatal("base result vanished from the cache")
	}
	if !bytes.Equal(int32Bytes(before), int32Bytes(after.Assignment.Parts)) {
		t.Fatal("mutating a warm solve's input corrupted the cached base result")
	}

	// Path 2: warm start resolved from the retained base job.
	s.mu.Lock()
	baseJob := s.jobs[m["job_id"].(string)]
	s.mu.Unlock()
	if baseJob == nil {
		t.Fatal("base job not retained")
	}
	warm2 := s.resolveWarm(hash, baseJob, submitRequest{
		opts: mdbgp.Options{Seed: 2}, dims: dims, dimNames: names, // different seed: cache misses, job path resolves
	})
	if warm2 == nil {
		t.Fatal("resolveWarm did not fall back to the retained job result")
	}
	for i := range warm2 {
		warm2[i] = -1
	}
	if v := baseJob.view(); !bytes.Equal(int32Bytes(before), int32Bytes(v.Res.Assignment.Parts)) {
		t.Fatal("mutating a warm solve's input corrupted the retained job result")
	}
}

func int32Bytes(xs []int32) []byte {
	out := make([]byte, 0, len(xs)*4)
	for _, x := range xs {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

// assertAllSpansEnded walks a snapshot and fails on any span End never
// reached — a dangling span pins its subtree in the "still running" state
// forever in trace output.
func assertAllSpansEnded(t *testing.T, root *obs.Span, context string) {
	t.Helper()
	root.Snapshot().Walk(func(sp *obs.SpanView) {
		if !sp.Ended {
			t.Fatalf("%s: span %q left unended", context, sp.Name)
		}
	})
}

// TestRejectedSubmissionEndsSpans: the 429, coalesce and shutdown paths of
// dispatch must close every span they opened. Before the fix the 429 path
// dropped the request with its root trace and queue-wait spans still open.
func TestRejectedSubmissionEndsSpans(t *testing.T) {
	g, body := testGraph(t, 62)
	s, ts, entered, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})

	code, _ := submit(t, ts, "seed=1", body)
	if code != http.StatusAccepted {
		t.Fatalf("job A: status %d", code)
	}
	<-entered // A occupies the only worker
	if code, _ := submit(t, ts, "seed=2", body); code != http.StatusAccepted {
		t.Fatalf("job B: status %d", code)
	}

	// C: queue saturated — dispatch directly so the rejected request's trace
	// stays inspectable after the handler returns.
	hr := httptest.NewRequest("POST", "/v1/partition?seed=3", nil)
	req, err := parseSubmit(hr)
	if err != nil {
		t.Fatal(err)
	}
	ing := &ingestInfo{g: g, n: g.N(), m: g.M(), hash: g.HashString(), mode: ingestModeResident}
	root := obs.NewTrace("request")
	rec := httptest.NewRecorder()
	s.dispatch(rec, hr, req, ing, req.opts.Canonical(), nil, root)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated dispatch: status %d, want 429", rec.Code)
	}
	assertAllSpansEnded(t, root, "429 rejection")

	// Coalesce: an identical request attaching to an in-flight job ends its
	// own (discarded) root.
	hrA := httptest.NewRequest("POST", "/v1/partition?seed=1", nil)
	reqA, err := parseSubmit(hrA)
	if err != nil {
		t.Fatal(err)
	}
	rootA := obs.NewTrace("request")
	recA := httptest.NewRecorder()
	s.dispatch(recA, hrA, reqA, ing, reqA.opts.Canonical(), nil, rootA)
	if recA.Code != http.StatusAccepted {
		t.Fatalf("coalesced dispatch: status %d, want 202", recA.Code)
	}
	assertAllSpansEnded(t, rootA, "coalesced submission")
	close(release)

	// Shutdown: a dispatch losing the race with Close still ends its root.
	s2 := newServer(Config{})
	s2.down.Store(true)
	root2 := obs.NewTrace("request")
	rec2 := httptest.NewRecorder()
	s2.dispatch(rec2, hr, req, ing, req.opts.Canonical(), nil, root2)
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("down dispatch: status %d, want 503", rec2.Code)
	}
	assertAllSpansEnded(t, root2, "shutdown rejection")
}

// TestRetireBoundsBackingArray: retiring jobs far past the retention cap must
// not let doneOrder's backing array creep — the old doneOrder[1:] trim kept
// every evicted slot reachable, so the array only ever grew.
func TestRetireBoundsBackingArray(t *testing.T) {
	const retain = 16
	s := newServer(Config{RetainJobs: retain})
	const n = 10000
	for i := 0; i < n; i++ {
		j := &job{id: s.newJobID("k"), key: "k"}
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.retire(j)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) != retain {
		t.Fatalf("retained %d jobs, want %d", len(s.jobs), retain)
	}
	if live := len(s.doneOrder) - s.doneHead; live != retain {
		t.Fatalf("live window is %d ids, want %d", live, retain)
	}
	// The compaction bound: len stays within ~2× the retention cap, and cap —
	// the actual allocation — within append's growth slack of that. Before
	// the fix cap reached ~n.
	if cap(s.doneOrder) > 8*retain {
		t.Fatalf("doneOrder backing array crept to cap %d after %d retires (retain %d)", cap(s.doneOrder), n, retain)
	}
	// Every live slot names a retained job, every retained job is live.
	for _, id := range s.doneOrder[s.doneHead:] {
		if s.jobs[id] == nil {
			t.Fatalf("doneOrder lists evicted job %s", id)
		}
	}
}

// TestResolveBaseAcceptsUppercaseHex: a client echoing a graph hash in
// uppercase (a legitimate spelling of the same hex string) must resolve to
// the same base graph as the lowercase form the server reports.
func TestResolveBaseAcceptsUppercaseHex(t *testing.T) {
	_, body := testGraph(t, 63)
	_, ts := startServer(t, Config{Workers: 1})

	code, m := submit(t, ts, "seed=1&wait=true", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts, m["job_id"].(string))
	hash := m["graph_hash"].(string)

	delta := []byte("+0 399\n")
	code, dm := submit(t, ts, "seed=1&wait=true&base="+strings.ToUpper(hash), delta)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("uppercase base rejected: status %d (%v)", code, dm)
	}
	final := pollDone(t, ts, dm["job_id"].(string))
	if final["status"] != "done" {
		t.Fatalf("delta against uppercase base failed: %v", final)
	}
	if d, ok := dm["delta"].(map[string]any); !ok || d["base"] != hash {
		t.Fatalf("delta base = %v, want normalized %s", dm["delta"], hash)
	}
}
