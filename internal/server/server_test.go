package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdbgp"
)

// testGraph returns a small community-structured graph that solves in
// milliseconds, plus its canonical edge-list bytes.
func testGraph(t *testing.T, seed int64) (*mdbgp.Graph, []byte) {
	t.Helper()
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N: 400, Communities: 4, AvgDegree: 8, InFraction: 0.85, Seed: seed,
	})
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// submit POSTs body to /v1/partition?query and decodes the JSON response.
func submit(t *testing.T, ts *httptest.Server, query string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/partition?"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp.StatusCode, m
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, m
}

// pollDone polls the job until it reaches a terminal state.
func pollDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, m := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d (%v)", id, code, m)
		}
		switch m["status"] {
		case "done", "failed":
			return m
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

// assignment fetches the byte-exact "vertex part" body of a finished job.
func assignment(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/assignment")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assignment %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

func metric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxVertexID != 1<<24 {
		t.Fatalf("default MaxVertexID = %d, want 16M — unbounded ids let a 13-byte body allocate gigabytes", c.MaxVertexID)
	}
	if got := (Config{MaxVertexID: -1}).withDefaults().MaxVertexID; got != 0 {
		t.Fatalf("negative MaxVertexID should pass 0 (representation limit) to the reader, got %d", got)
	}
	if got := (Config{MaxVertexID: 500}).withDefaults().MaxVertexID; got != 500 {
		t.Fatalf("explicit MaxVertexID overridden: %d", got)
	}
}

func TestSubmitPollResult(t *testing.T) {
	g, body := testGraph(t, 3)
	_, ts := startServer(t, Config{Workers: 2})

	code, m := submit(t, ts, "k=4&seed=42&iters=30", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d (%v)", code, m)
	}
	if m["cache"] != "miss" {
		t.Fatalf("first submit should be a cache miss, got %v", m["cache"])
	}
	id, _ := m["job_id"].(string)
	if id == "" {
		t.Fatalf("submit response lacks job_id: %v", m)
	}

	final := pollDone(t, ts, id)
	if final["status"] != "done" {
		t.Fatalf("job failed: %v", final)
	}
	res, _ := final["result"].(map[string]any)
	if res == nil {
		t.Fatalf("done job has no result: %v", final)
	}
	if res["k"].(float64) != 4 {
		t.Fatalf("result k = %v, want 4", res["k"])
	}
	if loc := res["edge_locality"].(float64); loc <= 0 || loc > 1 {
		t.Fatalf("edge_locality %v out of range", loc)
	}
	gm, _ := final["graph"].(map[string]any)
	if int(gm["n"].(float64)) != g.N() || int64(gm["m"].(float64)) != g.M() {
		t.Fatalf("graph size %v, want n=%d m=%d", gm, g.N(), g.M())
	}

	// The assignment endpoint serves one "vertex part" line per vertex.
	lines := bytes.Split(bytes.TrimSuffix(assignment(t, ts, id), []byte("\n")), []byte("\n"))
	if len(lines) != g.N() {
		t.Fatalf("assignment has %d lines, want %d", len(lines), g.N())
	}

	// Liveness and accounting.
	if code, h := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, h)
	}
	if v := metric(t, ts, "mdbgpd_jobs_completed_total"); v != 1 {
		t.Fatalf("jobs_completed_total = %v, want 1", v)
	}
	if v := metric(t, ts, "mdbgpd_jobs_failed_total"); v != 0 {
		t.Fatalf("jobs_failed_total = %v, want 0", v)
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	_, body := testGraph(t, 5)
	_, ts := startServer(t, Config{Workers: 2})

	// First request: miss, solved.
	code, m := submit(t, ts, "k=2&seed=7&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("wait=true submit: status %d (%v)", code, m)
	}
	if m["cache"] != "miss" || m["status"] != "done" {
		t.Fatalf("first submit: %v", m)
	}
	first := assignment(t, ts, m["job_id"].(string))

	// Identical request: cache hit, byte-identical assignment, no re-solve.
	code, m2 := submit(t, ts, "k=2&seed=7&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("second submit: status %d", code)
	}
	if m2["cache"] != "hit" {
		t.Fatalf("identical request should hit the cache, got %v", m2["cache"])
	}
	if m2["key"] != m["key"] {
		t.Fatalf("content keys differ for identical requests: %v vs %v", m2["key"], m["key"])
	}
	second := assignment(t, ts, m2["job_id"].(string))
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit returned a different assignment")
	}
	if hits := metric(t, ts, "mdbgpd_cache_hits_total"); hits != 1 {
		t.Fatalf("cache_hits_total = %v, want 1", hits)
	}
	if miss := metric(t, ts, "mdbgpd_cache_misses_total"); miss != 1 {
		t.Fatalf("cache_misses_total = %v, want 1", miss)
	}
	if solved := metric(t, ts, "mdbgpd_jobs_completed_total"); solved != 2 {
		// Both jobs complete (one solved, one materialized from cache).
		t.Fatalf("jobs_completed_total = %v, want 2", solved)
	}
}

// TestNearDuplicateHitsCache proves the content addressing: a shuffled edge
// list with duplicate edges and self loops, submitted with every default
// spelled out explicitly, is the same request.
func TestNearDuplicateHitsCache(t *testing.T) {
	g, body := testGraph(t, 11)
	_, ts := startServer(t, Config{Workers: 2})

	code, m := submit(t, ts, "seed=9&wait=true", body)
	if code != http.StatusOK || m["status"] != "done" {
		t.Fatalf("first submit: %d %v", code, m)
	}

	// Re-serialize the same graph in a different order with noise.
	var edges [][2]int
	g.EachEdge(func(u, v int) bool { edges = append(edges, [2]int{u, v}); return true })
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	var buf bytes.Buffer
	buf.WriteString("% same graph, different bytes\n")
	for i, e := range edges {
		fmt.Fprintf(&buf, "%d %d\n", e[1], e[0]) // reversed endpoints
		if i%37 == 0 {
			fmt.Fprintf(&buf, "%d %d\n", e[0], e[1]) // duplicate
			fmt.Fprintf(&buf, "%d %d\n", e[0], e[0]) // self loop
		}
	}

	// Explicit defaults: k=2, eps=0.05, iters=100, step=2, default
	// projection — all of which the first request left implicit — plus an
	// irrelevant parallelism difference on the server side.
	code, m2 := submit(t, ts, "k=2&eps=0.05&iters=100&step=2&projection=alternating-oneshot&dims=vertices,edges&seed=9&wait=true", buf.Bytes())
	if code != http.StatusOK {
		t.Fatalf("near-duplicate submit: status %d (%v)", code, m2)
	}
	if m2["cache"] != "hit" {
		t.Fatalf("near-duplicate request should hit the cache, got cache=%v (key %v vs %v)", m2["cache"], m2["key"], m["key"])
	}
	if !bytes.Equal(assignment(t, ts, m["job_id"].(string)), assignment(t, ts, m2["job_id"].(string))) {
		t.Fatal("near-duplicate hit returned a different assignment")
	}
}

// TestDeterminismAcrossWorkerCounts is the API-level golden determinism
// check: a fixed seed must return byte-identical assignments from servers
// running 1, 2 and 8 workers (both queue workers and solver parallelism).
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	_, body := testGraph(t, 21)
	var golden []byte
	for _, w := range []int{1, 2, 8} {
		_, ts := startServer(t, Config{Workers: w, Parallelism: w})
		code, m := submit(t, ts, "k=4&seed=42&iters=40&wait=true", body)
		if code != http.StatusOK || m["status"] != "done" {
			t.Fatalf("workers=%d: submit %d %v", w, code, m)
		}
		a := assignment(t, ts, m["job_id"].(string))
		if golden == nil {
			golden = a
		} else if !bytes.Equal(golden, a) {
			t.Fatalf("workers=%d produced a different assignment than workers=1", w)
		}
	}
}

// blockingServer starts a server whose solver blocks until release is
// closed, signalling each entry on entered.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan string, chan struct{}) {
	t.Helper()
	entered := make(chan string, 16)
	release := make(chan struct{})
	s := newServer(cfg)
	s.solve = func(g *mdbgp.Graph, dims []mdbgp.Weight, opts mdbgp.Options) (*mdbgp.Result, error) {
		entered <- fmt.Sprintf("n=%d", g.N())
		<-release
		return &mdbgp.Result{
			Assignment:   &mdbgp.Assignment{Parts: make([]int32, g.N()), K: 1},
			EdgeLocality: 1,
		}, nil
	}
	s.startWorkers()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		ts.Close()
		s.Close()
	})
	return s, ts, entered, release
}

// TestQueueSaturationBackpressure drives the bounded queue into saturation
// deterministically: one worker blocked solving, one job queued, so the
// third distinct submission must be rejected with 429.
func TestQueueSaturationBackpressure(t *testing.T) {
	_, body := testGraph(t, 31)
	_, ts, entered, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})

	code, mA := submit(t, ts, "seed=1", body)
	if code != http.StatusAccepted {
		t.Fatalf("job A: status %d", code)
	}
	<-entered // A is now occupying the only worker

	code, mB := submit(t, ts, "seed=2", body)
	if code != http.StatusAccepted {
		t.Fatalf("job B: status %d", code)
	}

	resp, err := http.Post(ts.URL+"/v1/partition?seed=3", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rejBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429 (%s)", resp.StatusCode, rejBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response lacks Retry-After")
	}
	if v := metric(t, ts, "mdbgpd_jobs_rejected_total"); v != 1 {
		t.Fatalf("jobs_rejected_total = %v, want 1", v)
	}

	// Rejected work was not registered or counted anywhere: a 429 is not a
	// submission, a cache miss, or a queue entry.
	if depth := metric(t, ts, "mdbgpd_queue_depth"); depth != 1 {
		t.Fatalf("queue_depth = %v, want 1", depth)
	}
	if v := metric(t, ts, "mdbgpd_jobs_submitted_total"); v != 2 {
		t.Fatalf("jobs_submitted_total = %v, want 2", v)
	}
	if v := metric(t, ts, "mdbgpd_cache_misses_total"); v != 2 {
		t.Fatalf("cache_misses_total = %v, want 2", v)
	}

	close(release)
	for _, m := range []map[string]any{mA, mB} {
		if final := pollDone(t, ts, m["job_id"].(string)); final["status"] != "done" {
			t.Fatalf("job %v did not complete after release: %v", m["job_id"], final)
		}
	}

	// Capacity is available again.
	code, mD := submit(t, ts, "seed=4", body)
	if code != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d", code)
	}
	pollDone(t, ts, mD["job_id"].(string))
}

// TestInflightCoalescing: an identical request arriving while the first is
// still solving attaches to the same job instead of re-solving.
func TestInflightCoalescing(t *testing.T) {
	_, body := testGraph(t, 41)
	_, ts, entered, release := blockingServer(t, Config{Workers: 1, QueueDepth: 4})

	code, mA := submit(t, ts, "seed=5", body)
	if code != http.StatusAccepted {
		t.Fatalf("job A: status %d", code)
	}
	<-entered

	code, mB := submit(t, ts, "seed=5", body)
	if code != http.StatusAccepted {
		t.Fatalf("coalesced submit: status %d", code)
	}
	if mA["job_id"] != mB["job_id"] {
		t.Fatalf("identical in-flight requests got distinct jobs: %v vs %v", mA["job_id"], mB["job_id"])
	}
	if v := metric(t, ts, "mdbgpd_jobs_coalesced_total"); v != 1 {
		t.Fatalf("jobs_coalesced_total = %v, want 1", v)
	}

	// A coalesced ?wait=true submission honors the wait: it blocks until
	// the shared job finishes rather than returning the async envelope.
	waited := make(chan map[string]any, 1)
	go func() {
		_, m := submit(t, ts, "seed=5&wait=true", body)
		waited <- m
	}()
	select {
	case m := <-waited:
		t.Fatalf("coalesced wait=true returned before the solve finished: %v", m)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case m := <-waited:
		if m["status"] != "done" || m["job_id"] != mA["job_id"] {
			t.Fatalf("coalesced wait response: %v", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced wait=true never returned after release")
	}
	if final := pollDone(t, ts, mA["job_id"].(string)); final["status"] != "done" {
		t.Fatalf("coalesced job: %v", final)
	}
	// Only one solve happened for the two submissions.
	if v := metric(t, ts, "mdbgpd_jobs_completed_total"); v != 1 {
		t.Fatalf("jobs_completed_total = %v, want 1", v)
	}
}

func TestErrorPaths(t *testing.T) {
	_, body := testGraph(t, 51)
	_, ts := startServer(t, Config{Workers: 1, MaxBodyBytes: 1 << 20, MaxVertexID: 1 << 20})

	post := func(query string, body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/partition?"+query, "text/plain", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		name  string
		query string
		body  []byte
		want  int
	}{
		{"unknown param", "frobnicate=1", body, http.StatusBadRequest},
		{"bad k", "k=x", body, http.StatusBadRequest},
		{"negative k", "k=-2", body, http.StatusBadRequest},
		{"bad eps", "eps=1.5", body, http.StatusBadRequest},
		{"zero eps", "eps=0", body, http.StatusBadRequest}, // would silently become the 5% default
		{"bad seed", "seed=abc", body, http.StatusBadRequest},
		{"bad projection", "projection=nope", body, http.StatusBadRequest},
		{"bad dims", "dims=vertices,bogus", body, http.StatusBadRequest},
		{"malformed body", "", []byte("0 1\nnot an edge\n"), http.StatusBadRequest},
		{"empty body", "", nil, http.StatusBadRequest},
		{"comments only", "", []byte("# nothing\n"), http.StatusBadRequest},
		{"huge vertex id", "", []byte("0 2000000\n"), http.StatusBadRequest},
		{"oversized body", "", bytes.Repeat([]byte("1 2\n"), 1<<19), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if got := post(tc.query, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}

	// No submissions above were accepted.
	if v := metric(t, ts, "mdbgpd_jobs_submitted_total"); v != 0 {
		t.Fatalf("jobs_submitted_total = %v, want 0", v)
	}

	// Job lookups.
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/assignment")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown assignment: status %d, want 404", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/partition")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/partition: status %d, want 405", resp.StatusCode)
	}
}

// TestAssignmentBeforeDone: polling the assignment of an unfinished job is
// a 409, not a hang or a partial body.
func TestAssignmentBeforeDone(t *testing.T) {
	_, body := testGraph(t, 61)
	_, ts, entered, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})

	_, m := submit(t, ts, "seed=6", body)
	<-entered
	resp, err := http.Get(ts.URL + "/v1/jobs/" + m["job_id"].(string) + "/assignment")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("assignment of running job: status %d, want 409", resp.StatusCode)
	}
	close(release)
	pollDone(t, ts, m["job_id"].(string))
}

func TestRetentionEviction(t *testing.T) {
	_, body := testGraph(t, 71)
	_, ts := startServer(t, Config{Workers: 1, RetainJobs: 2})

	var ids []string
	for seed := 0; seed < 3; seed++ {
		code, m := submit(t, ts, fmt.Sprintf("seed=%d&iters=10&wait=true", seed+100), body)
		if code != http.StatusOK {
			t.Fatalf("submit %d: status %d", seed, code)
		}
		ids = append(ids, m["job_id"].(string))
	}
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job should have been evicted from the history, got %d", code)
	}
	for _, id := range ids[1:] {
		if code, _ := getJSON(t, ts.URL+"/v1/jobs/"+id); code != http.StatusOK {
			t.Fatalf("retained job %s: status %d", id, code)
		}
	}
}

func TestShutdown(t *testing.T) {
	_, body := testGraph(t, 81)
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, m := submit(t, ts, "seed=8&iters=10&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("pre-shutdown submit: %d", code)
	}
	s.Close()
	s.Close() // idempotent

	if code, _ := submit(t, ts, "seed=9", body); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", code)
	}
	if code, h := getJSON(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable || h["status"] == "ok" {
		t.Fatalf("post-shutdown healthz: %d %v", code, h)
	}
	// Completed jobs remain pollable after shutdown.
	if final := pollDone(t, ts, m["job_id"].(string)); final["status"] != "done" {
		t.Fatalf("job lost at shutdown: %v", final)
	}
}

// TestConcurrentClients hammers one server from many goroutines mixing
// repeat and distinct traffic with concurrent metric scrapes — the -race
// companion to the determinism tests. Every response for the same content
// key must be byte-identical.
func TestConcurrentClients(t *testing.T) {
	_, body := testGraph(t, 91)
	_, ts := startServer(t, Config{Workers: 4, QueueDepth: 256})

	const clients, perClient, distinct = 8, 6, 3
	var mu sync.Mutex
	results := make(map[int64][][]byte) // seed -> assignment bodies

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := int64(200 + (c*perClient+i)%distinct)
				code, m := submit(t, ts, fmt.Sprintf("k=4&iters=20&seed=%d", seed), body)
				if code != http.StatusAccepted && code != http.StatusOK {
					t.Errorf("client %d: submit status %d", c, code)
					return
				}
				final := pollDone(t, ts, m["job_id"].(string))
				if final["status"] != "done" {
					t.Errorf("client %d: job %v failed: %v", c, m["job_id"], final)
					return
				}
				a := assignment(t, ts, m["job_id"].(string))
				mu.Lock()
				results[seed] = append(results[seed], a)
				mu.Unlock()
				// Interleave scrapes to race the counters against traffic.
				metric(t, ts, "mdbgpd_jobs_submitted_total")
			}
		}(c)
	}
	wg.Wait()

	total := 0
	for seed, bodies := range results {
		total += len(bodies)
		for _, b := range bodies[1:] {
			if !bytes.Equal(bodies[0], b) {
				t.Fatalf("seed %d: divergent assignments under concurrency", seed)
			}
		}
	}
	if total != clients*perClient {
		t.Fatalf("collected %d results, want %d", total, clients*perClient)
	}
	if v := metric(t, ts, "mdbgpd_jobs_failed_total"); v != 0 {
		t.Fatalf("jobs_failed_total = %v, want 0", v)
	}
	// Conservation: every accepted submission was a hit, a miss, or a
	// coalesced attach; hits+misses count cache decisions.
	submitted := metric(t, ts, "mdbgpd_jobs_submitted_total")
	hits := metric(t, ts, "mdbgpd_cache_hits_total")
	misses := metric(t, ts, "mdbgpd_cache_misses_total")
	if submitted != hits+misses {
		t.Fatalf("accounting: submitted %v != hits %v + misses %v", submitted, hits, misses)
	}
	if misses < distinct {
		t.Fatalf("misses %v < distinct graphs %d", misses, distinct)
	}
}

// TestWaitFallsBackToAsync: a wait bounded by a tiny MaxWait still returns
// the async envelope instead of blocking.
func TestWaitFallsBackToAsync(t *testing.T) {
	_, body := testGraph(t, 95)
	_, ts, entered, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2, MaxWait: 20 * time.Millisecond})

	done := make(chan map[string]any, 1)
	go func() {
		_, m := submit(t, ts, "seed=5&wait=true", body)
		done <- m
	}()
	<-entered
	select {
	case m := <-done:
		if m["status"] == "done" {
			t.Fatalf("wait with blocked solver reported done: %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait=true did not fall back to async within MaxWait")
	}
	close(release)
}
