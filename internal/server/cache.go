package server

import (
	"container/list"
	"sync"

	"mdbgp"
)

// resultCache is a content-addressed LRU over completed partition results.
// Keys are graph-hash + canonical-options fingerprints (see (*Server).cacheKey),
// so any byte stream that canonicalizes to the same graph and the same
// solver configuration — reordered edge lists, duplicate edges, explicit
// defaults — addresses the same entry. Cached *mdbgp.Result values are
// shared across jobs and must be treated as immutable.
type resultCache struct {
	mu       sync.Mutex
	capacity int        // max entries; <= 0 disables the cache
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	bytes    int64 // approximate retained size (payload + key + bookkeeping)
	clamps   int64 // times the gauge went negative and was clamped (accounting bug)
}

type cacheEntry struct {
	key   string
	res   *mdbgp.Result
	bytes int64
}

// entryOverhead approximates the per-entry bookkeeping retained alongside a
// payload: the entry struct, its list element, and the map bucket share.
// The key string's bytes are counted separately — cache keys here are
// engine-version + graph-hash + fingerprint strings of ~140 bytes, which at
// small payloads (tiny graphs, delta metadata) rivals the payload itself, so
// ignoring them made the mdbgpd_*cache_bytes gauges drift far below the real
// footprint.
const entryOverhead = 128

// clampBytes resets a negative byte gauge to zero, counting the event: the
// gauge is a sum of per-entry deltas, so a negative value means an
// accounting bug (an entry charged less than it was later credited), and a
// silently negative gauge would render as a huge unsigned value in dashboards
// and hide the bug. Callers hold mu.
func clampBytes(bytes, clamps *int64) {
	if *bytes < 0 {
		*bytes = 0
		*clamps++
	}
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, promoting it to most recent.
func (c *resultCache) get(key string) (*mdbgp.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key and returns how many entries were evicted.
func (c *resultCache) put(key string, res *mdbgp.Result) int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		nb := resultEntryBytes(key, res)
		c.bytes += nb - e.bytes
		clampBytes(&c.bytes, &c.clamps)
		e.res, e.bytes = res, nb
		return 0
	}
	e := &cacheEntry{key: key, res: res, bytes: resultEntryBytes(key, res)}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	evicted := 0
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		old := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, old.key)
		c.bytes -= old.bytes
		evicted++
	}
	clampBytes(&c.bytes, &c.clamps)
	return evicted
}

func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// clampCount reports how often the byte gauge had to be clamped at zero.
func (c *resultCache) clampCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clamps
}

// resultEntryBytes is the full accounted size of one cache entry: the result
// payload plus the key string and the per-entry bookkeeping.
func resultEntryBytes(key string, res *mdbgp.Result) int64 {
	return int64(len(key)) + entryOverhead + resultBytes(res)
}

// resultBytes approximates the retained size of a result payload: the
// assignment dominates (4 bytes per vertex), plus the fixed-size quality
// fields.
func resultBytes(res *mdbgp.Result) int64 {
	b := int64(64)
	if res.Assignment != nil {
		b += int64(len(res.Assignment.Parts)) * 4
	}
	b += int64(len(res.Imbalances)) * 8
	return b
}

// graphCache is a content-addressed LRU over solved base graphs, keyed by
// canonical CSR hash. Delta submissions (?base=...) materialize their target
// graph by applying the delta to an entry here; evicting an entry therefore
// degrades the affected deltas to "resubmit the full graph", which is why
// the cache is bounded separately from (and typically smaller than) the
// result cache. Stored graphs are immutable and shared across requests.
type graphCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element
	bytes    int64
	clamps   int64
}

type graphEntry struct {
	key   string
	g     *mdbgp.Graph
	bytes int64
}

func newGraphCache(capacity int) *graphCache {
	return &graphCache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// getOrPut returns the canonical retained instance of the graph under hash,
// inserting g when the hash is new, plus how many entries were evicted. Every
// same-content submission is handed back the SAME *mdbgp.Graph — beyond
// deduplicating memory, pointer identity is what the prep cache's artifacts
// are validated against, so canonicalization is what lets a repeat submission
// (or a zero-churn delta) reuse a prepared layout or hierarchy at all. With
// the cache disabled each submission keeps its own instance and prep reuse
// degrades to per-instance.
func (c *graphCache) getOrPut(hash string, g *mdbgp.Graph) (*mdbgp.Graph, int) {
	if c.capacity <= 0 {
		return g, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[hash]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*graphEntry).g, 0
	}
	e := &graphEntry{key: hash, g: g, bytes: graphEntryBytes(hash, g)}
	c.items[hash] = c.ll.PushFront(e)
	c.bytes += e.bytes
	evicted := 0
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		old := back.Value.(*graphEntry)
		c.ll.Remove(back)
		delete(c.items, old.key)
		c.bytes -= old.bytes
		evicted++
	}
	clampBytes(&c.bytes, &c.clamps)
	return g, evicted
}

// get returns the cached graph for the hash, promoting it to most recent.
func (c *graphCache) get(hash string) (*mdbgp.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[hash]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*graphEntry).g, true
}

// put inserts or refreshes the graph under its hash and returns how many
// entries were evicted.
func (c *graphCache) put(hash string, g *mdbgp.Graph) int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[hash]; ok {
		// Same hash means the same canonical CSR; just refresh recency.
		c.ll.MoveToFront(el)
		return 0
	}
	e := &graphEntry{key: hash, g: g, bytes: graphEntryBytes(hash, g)}
	c.items[hash] = c.ll.PushFront(e)
	c.bytes += e.bytes
	evicted := 0
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		old := back.Value.(*graphEntry)
		c.ll.Remove(back)
		delete(c.items, old.key)
		c.bytes -= old.bytes
		evicted++
	}
	clampBytes(&c.bytes, &c.clamps)
	return evicted
}

func (c *graphCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// clampCount reports how often the byte gauge had to be clamped at zero.
func (c *graphCache) clampCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clamps
}

// graphEntryBytes is the full accounted size of one graph-cache entry: the
// CSR payload plus the hash key and the per-entry bookkeeping.
func graphEntryBytes(hash string, g *mdbgp.Graph) int64 {
	return int64(len(hash)) + entryOverhead + graphBytes(g)
}

// graphBytes approximates a CSR graph's retained size: 8 bytes per offset,
// 4 per directed adjacency entry.
func graphBytes(g *mdbgp.Graph) int64 {
	return 8*int64(g.N()+1) + 4*g.DirectedSize() + 64
}
