package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mdbgp/internal/obs"
)

// fetchTrace GETs a job's span tree and decodes it.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) *obs.SpanView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: status %d: %s", id, resp.StatusCode, body)
	}
	var v obs.SpanView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return &v
}

// TestTraceStructureDeterministicAcrossParallelism is the serving half of
// the acceptance criterion: the span tree a traced request produces — names,
// nesting, order and attributes, everything except timings — must be
// byte-identical whether the daemon solves with 1, 2 or 8 solver workers.
func TestTraceStructureDeterministicAcrossParallelism(t *testing.T) {
	_, body := testGraph(t, 3)
	structure := func(par int) string {
		_, ts := startServer(t, Config{Parallelism: par})
		code, m := submit(t, ts, "k=4&seed=5&iters=30&wait=true", body)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit: status %d (%v)", code, m)
		}
		id := m["job_id"].(string)
		pollDone(t, ts, id)
		return fetchTrace(t, ts, id).Structure()
	}
	ref := structure(1)
	for _, part := range []string{"request", "ingest", "cache-lookup", "queue-wait", "solve", "bisect", "gd{", "round{"} {
		if !strings.Contains(ref, part) {
			t.Fatalf("trace structure missing %q:\n%s", part, ref)
		}
	}
	for _, par := range []int{2, 8} {
		if got := structure(par); got != ref {
			t.Fatalf("trace structure differs between parallelism 1 and %d:\n%s\nvs\n%s", par, ref, got)
		}
	}
}

// TestJobConvergenceTelemetry: a finished GD job reports the solver's
// convergence summary in its JSON and links its trace.
func TestJobConvergenceTelemetry(t *testing.T) {
	_, body := testGraph(t, 7)
	_, ts := startServer(t, Config{})
	_, m := submit(t, ts, "k=4&seed=1&wait=true", body)
	id := m["job_id"].(string)
	v := pollDone(t, ts, id)
	conv, ok := v["convergence"].(map[string]any)
	if !ok {
		t.Fatalf("job JSON has no convergence object: %v", v)
	}
	if runs := conv["gd_runs"].(float64); runs < 3 {
		t.Fatalf("gd_runs = %v, want >= 3 for k=4 recursive bisection", runs)
	}
	if loc := conv["final_locality"].(float64); loc <= 0 || loc > 1 {
		t.Fatalf("final_locality = %v out of (0,1]", loc)
	}
	if _, ok := conv["iters_to_90"]; !ok {
		t.Fatal("iters_to_90 missing from convergence object")
	}
	if link, _ := v["trace"].(string); link != "/v1/jobs/"+id+"/trace" {
		t.Fatalf("trace link = %q", v["trace"])
	}
}

// TestTraceCacheHit: a submission served from the result cache still gets a
// trace — ingest and a hit-flagged cache lookup, no solve.
func TestTraceCacheHit(t *testing.T) {
	_, body := testGraph(t, 9)
	_, ts := startServer(t, Config{})
	_, m1 := submit(t, ts, "k=2&seed=4&wait=true", body)
	pollDone(t, ts, m1["job_id"].(string))
	code, m2 := submit(t, ts, "k=2&seed=4", body)
	if code != http.StatusOK || m2["cache"] != "hit" {
		t.Fatalf("second submit: status %d cache %v", code, m2["cache"])
	}
	tr := fetchTrace(t, ts, m2["job_id"].(string))
	st := tr.Structure()
	if !strings.Contains(st, "cache-lookup{hit=true}") {
		t.Fatalf("hit trace lacks hit-flagged lookup: %s", st)
	}
	if strings.Contains(st, "solve") {
		t.Fatalf("cache-hit trace contains a solve span: %s", st)
	}
}

// TestTraceDisabled: DisableTracing removes the trace link and the endpoint
// 404s, but jobs still solve.
func TestTraceDisabled(t *testing.T) {
	_, body := testGraph(t, 11)
	_, ts := startServer(t, Config{DisableTracing: true})
	_, m := submit(t, ts, "k=2&seed=2&wait=true", body)
	id := m["job_id"].(string)
	v := pollDone(t, ts, id)
	if _, ok := v["trace"]; ok {
		t.Fatal("trace link present with tracing disabled")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint status %d with tracing disabled", resp.StatusCode)
	}
}

// TestMetricsExpositionLints scrapes a live /metrics page — after real
// traffic across two engines, a cache hit and a failed lookup — and runs the
// zero-dep exposition linter over it: well-formed comments, sorted labels,
// no duplicate series, cumulative histogram buckets.
func TestMetricsExpositionLints(t *testing.T) {
	_, body := testGraph(t, 13)
	_, ts := startServer(t, Config{})
	_, m := submit(t, ts, "k=2&seed=1&wait=true", body)
	pollDone(t, ts, m["job_id"].(string))
	submit(t, ts, "k=2&seed=1", body) // cache hit
	_, m2 := submit(t, ts, "k=2&seed=1&engine=fennel&wait=true", body)
	pollDone(t, ts, m2["job_id"].(string))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	if errs := obs.LintExposition(string(page)); len(errs) > 0 {
		t.Fatalf("exposition lint errors: %v", errs)
	}
	for _, want := range []string{
		`mdbgpd_solve_duration_seconds_bucket{engine="fennel",le="+Inf"}`,
		`mdbgpd_solve_duration_seconds_bucket{engine="gd",le="+Inf"}`,
		"mdbgpd_queue_wait_seconds_count",
		"mdbgpd_ingest_duration_seconds_count",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("exposition lacks %q", want)
		}
	}
}

// TestEngineSnapshotLabelOrdering: the per-engine snapshot returns its
// labels sorted regardless of observation order, and every map — including
// the histograms — is keyed consistently with that label list.
func TestEngineSnapshotLabelOrdering(t *testing.T) {
	var m metrics
	m.init()
	m.recordEngineSubmit("metis")
	m.recordEngineSubmit("blp")
	m.recordEngineSolve("gd", 5*time.Millisecond)
	m.recordEngineSolve("fennel", time.Millisecond)
	m.recordEngineSubmit("gd")
	labels, submitted, solves, _, hists := m.engineSnapshot()
	want := []string{"blp", "fennel", "gd", "metis"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if submitted["gd"] != 1 || solves["gd"] != 1 || solves["fennel"] != 1 {
		t.Fatalf("snapshot counts wrong: submitted=%v solves=%v", submitted, solves)
	}
	for _, e := range []string{"gd", "fennel"} {
		h, ok := hists[e]
		if !ok || h.Count != 1 {
			t.Fatalf("histogram snapshot for %q: %+v (ok=%v)", e, h, ok)
		}
	}
}

// TestReadyzDrain: SetDraining flips only the readiness probe — liveness and
// the API keep serving, so a load balancer can bleed traffic before the
// process exits.
func TestReadyzDrain(t *testing.T) {
	s, ts := startServer(t, Config{})
	if code, _ := getJSON(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	s.SetDraining(true)
	code, m := getJSON(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("readyz while draining: %d %v", code, m)
	}
	if code, _ := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must stay 200 while draining, got %d", code)
	}
	_, body := testGraph(t, 17)
	if code, _ := submit(t, ts, "k=2&wait=true", body); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submissions must keep working while draining, got %d", code)
	}
	s.SetDraining(false)
	if code, _ := getJSON(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after undrain: %d", code)
	}
	s.Close()
	code, m = getJSON(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || m["status"] != "shutting down" {
		t.Fatalf("readyz after close: %d %v", code, m)
	}
}
