package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"mdbgp/internal/ring"
)

// warmFetchTimeout bounds one peer HTTP call during warming; a slow or dead
// neighbor must not stall startup, only shrink how much gets prefetched.
const warmFetchTimeout = 30 * time.Second

// warmMaxEntryBytes caps one fetched entry. A partition entry is ~4 bytes per
// vertex plus a small header, so this admits graphs far past MaxVertexID's
// default while still refusing a misbehaving peer that streams forever.
const warmMaxEntryBytes = 1 << 30

// WarmStats summarizes one WarmFromPeers pass.
type WarmStats struct {
	// PeersPolled counts peers whose cache index answered.
	PeersPolled int
	// KeysSeen is the total keys listed across peer indexes (duplicates
	// across peers counted once per listing).
	KeysSeen int
	// Fetched is how many entries landed in the local disk tier.
	Fetched int
	// Skipped counts keys passed over: not owned by this replica on the
	// ring, already present locally, or unparseable.
	Skipped int
	// Errors counts failed index polls, failed fetches and rejected entries.
	Errors int
}

// WarmFromPeers prefetches this replica's ring-owned cache entries from its
// peers' durable tiers: it polls each peer's GET /v1/cache index, keeps the
// keys whose graph hash this replica owns on the consistent-hash ring over
// {self} ∪ peers, and pulls the missing ones via GET /v1/cache/{key} with
// bounded concurrency. Every fetched entry re-verifies its checksum and
// embedded key before landing (cachestore.PutRaw), so a corrupt or lying
// peer can waste bandwidth but never poison the cache.
//
// self and peers must be the same member strings the routing tier was given
// (the ring is deterministic, so identical member lists yield identical
// ownership). A replica without a disk tier has nowhere durable to put
// entries and warms nothing. Blocking; callers wanting a non-blocking warm
// run it in a goroutine — the read-through path needs no coordination with
// it, since entries become visible atomically as they land.
func (s *Server) WarmFromPeers(self string, peers []string, concurrency int) WarmStats {
	var st WarmStats
	if s.disk == nil || len(peers) == 0 {
		return st
	}
	if concurrency <= 0 {
		concurrency = 4
	}
	rng := ring.New(append([]string{self}, peers...), 0)
	client := &http.Client{Timeout: warmFetchTimeout}

	type fetch struct{ peer, key string }
	var wanted []fetch
	seen := map[string]bool{}
	for _, peer := range peers {
		keys, err := fetchCacheIndex(client, peer)
		if err != nil {
			st.Errors++
			s.log.Warn("cache warming: peer index unavailable", slog.String("peer", peer), slog.String("error", err.Error()))
			continue
		}
		st.PeersPolled++
		st.KeysSeen += len(keys)
		for _, key := range keys {
			// Ownership rides on the graph hash — the same component of the
			// key the router hashes — so all of one graph's option variants
			// live on (and warm to) the same replica.
			hash := graphHashOfKey(key)
			if hash == "" || rng.Owner(hash) != self || seen[key] || s.disk.Has(key) {
				st.Skipped++
				continue
			}
			seen[key] = true
			wanted = append(wanted, fetch{peer: peer, key: key})
		}
	}

	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, concurrency)
	)
	for _, f := range wanted {
		wg.Add(1)
		sem <- struct{}{}
		go func(f fetch) {
			defer func() { <-sem; wg.Done() }()
			err := s.fetchCacheEntry(client, f.peer, f.key)
			mu.Lock()
			if err != nil {
				st.Errors++
			} else {
				st.Fetched++
			}
			mu.Unlock()
			if err != nil {
				s.log.Warn("cache warming: fetch failed", slog.String("peer", f.peer), slog.String("key", f.key), slog.String("error", err.Error()))
			}
		}(f)
	}
	wg.Wait()
	s.met.warmFetched.Add(int64(st.Fetched))
	s.met.warmErrors.Add(int64(st.Errors))
	s.log.Info("cache warming done",
		slog.Int("peers", st.PeersPolled), slog.Int("keys_seen", st.KeysSeen),
		slog.Int("fetched", st.Fetched), slog.Int("skipped", st.Skipped), slog.Int("errors", st.Errors))
	return st
}

// graphHashOfKey extracts the canonical graph hash from a cache key
// (version:hash:dims:fingerprint); "" when the key does not look like one.
func graphHashOfKey(key string) string {
	parts := strings.SplitN(key, ":", 3)
	if len(parts) < 3 {
		return ""
	}
	return normalizeHash(parts[1])
}

func fetchCacheIndex(client *http.Client, peer string) ([]string, error) {
	resp, err := client.Get(peer + "/v1/cache")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer index: %s", resp.Status)
	}
	var idx struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		return nil, err
	}
	return idx.Keys, nil
}

func (s *Server) fetchCacheEntry(client *http.Client, peer, key string) error {
	resp, err := client.Get(peer + "/v1/cache/" + url.PathEscape(key))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer entry: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, warmMaxEntryBytes+1))
	if err != nil {
		return err
	}
	if len(data) > warmMaxEntryBytes {
		return fmt.Errorf("entry exceeds %d bytes", warmMaxEntryBytes)
	}
	gotKey, err := s.disk.PutRaw(data)
	if err != nil {
		return err
	}
	if gotKey != key {
		return fmt.Errorf("peer served entry for %q when asked for %q", gotKey, key)
	}
	return nil
}
