package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mdbgp"
)

// solveAndFetch submits with wait=true, polls to completion and returns the
// byte-exact assignment.
func solveAndFetch(t *testing.T, ts *httptest.Server, query string, body []byte) []byte {
	t.Helper()
	code, m := submit(t, ts, query+"&wait=true", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit %q: status %d (%v)", query, code, m)
	}
	id := m["job_id"].(string)
	if v := pollDone(t, ts, id); v["status"] != "done" {
		t.Fatalf("job %s: %v", id, v)
	}
	return assignment(t, ts, id)
}

// TestPrepCachedSolveByteIdentical is the injection contract end to end: a
// solve that reuses a cached prep artifact (layout or hierarchy) must produce
// the same assignment, byte for byte, as a solve that rebuilds it — across
// every prep-capable engine and at several worker counts. The second request
// varies iters so it misses the RESULT cache (a real solve runs) while
// hitting the PREP cache (same graph, same artifact parameters).
func TestPrepCachedSolveByteIdentical(t *testing.T) {
	_, body := testGraph(t, 3)
	engines := []struct{ name, extra string }{
		{"gd", "&reorder=bfs"},         // layout artifact
		{"multilevel", "&reorder=bfs"}, // layout + hierarchy artifacts
		{"metis", ""},                  // hierarchy artifact
	}
	for _, eng := range engines {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s_p%d", eng.name, workers), func(t *testing.T) {
				_, tsCached := startServer(t, Config{Workers: 2, Parallelism: workers})
				_, tsRebuild := startServer(t, Config{Workers: 2, Parallelism: workers, PrepCacheBytes: -1})
				prime := "k=4&seed=7&engine=" + eng.name + eng.extra + "&iters=40"
				reuse := "k=4&seed=7&engine=" + eng.name + eng.extra + "&iters=60"
				solveAndFetch(t, tsCached, prime, body)
				if hits := metric(t, tsCached, "mdbgpd_prep_cache_hits_total"); hits != 0 {
					t.Fatalf("priming solve hit the prep cache (%g hits) — nothing could have built the artifact yet", hits)
				}
				got := solveAndFetch(t, tsCached, reuse, body)
				if hits := metric(t, tsCached, "mdbgpd_prep_cache_hits_total"); hits == 0 {
					t.Fatal("repeat solve did not hit the prep cache; injection is not wired")
				}
				want := solveAndFetch(t, tsRebuild, reuse, body)
				if !bytes.Equal(got, want) {
					t.Fatalf("cached-prep assignment differs from rebuilt-prep assignment (engine=%s workers=%d)", eng.name, workers)
				}
			})
		}
	}
}

// TestPrepKeyResolvedReorderMethod audits satellite concern #2: prep-cache
// keys must derive from the RESOLVED reorder method, so a request riding the
// fleet-wide -reorder default and a request spelling the same method
// explicitly share one artifact, while "none" builds nothing and a different
// method gets its own entry.
func TestPrepKeyResolvedReorderMethod(t *testing.T) {
	_, body := testGraph(t, 4)
	_, ts := startServer(t, Config{Workers: 1, Reorder: "bfs"})

	// No ?reorder=: the fleet default (bfs) applies; first sight builds.
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&iters=40", body)
	if e := metric(t, ts, "mdbgpd_prep_cache_entries"); e != 1 {
		t.Fatalf("after fleet-default solve: %g entries, want 1 layout", e)
	}
	// Explicit ?reorder=bfs must address the SAME artifact — resolved method,
	// not raw request spelling.
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&iters=50&reorder=bfs", body)
	if h := metric(t, ts, "mdbgpd_prep_cache_hits_total"); h != 1 {
		t.Fatalf("explicit reorder=bfs got %g prep hits, want 1 (shared with the fleet-default artifact)", h)
	}
	// Explicit ?reorder=none opts out of reordering entirely: no lookup, no
	// build, no new entry.
	before := metric(t, ts, "mdbgpd_prep_cache_misses_total")
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&iters=60&reorder=none", body)
	if e := metric(t, ts, "mdbgpd_prep_cache_entries"); e != 1 {
		t.Fatalf("reorder=none changed the entry count to %g", e)
	}
	if m := metric(t, ts, "mdbgpd_prep_cache_misses_total"); m != before {
		t.Fatalf("reorder=none performed a prep lookup (misses %g -> %g)", before, m)
	}
	// A different method is a different artifact.
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&iters=70&reorder=degree", body)
	if e := metric(t, ts, "mdbgpd_prep_cache_entries"); e != 2 {
		t.Fatalf("reorder=degree: %g entries, want 2 distinct layouts", e)
	}
}

// TestPrepKeyDerivation pins the key composition directly: every input that
// shapes an artifact must fork its key. The engines would catch a collision
// by degrading to a rebuild, but a collision still means one artifact family
// silently evicting the other on every alternation.
func TestPrepKeyDerivation(t *testing.T) {
	if layoutPrepKey("h", "bfs") == layoutPrepKey("h", "degree") {
		t.Fatal("layout keys collide across methods")
	}
	if layoutPrepKey("h1", "bfs") == layoutPrepKey("h2", "bfs") {
		t.Fatal("layout keys collide across graphs")
	}
	base := mdbgp.Options{Engine: "multilevel", Seed: 1, CoarsenTo: 100, ClusterSize: 8}
	k0 := hierarchyPrepKey("h", base, "deg")
	vary := map[string]mdbgp.Options{
		"engine":      {Engine: "metis", Seed: 1, CoarsenTo: 100, ClusterSize: 8},
		"seed":        {Engine: "multilevel", Seed: 2, CoarsenTo: 100, ClusterSize: 8},
		"coarsento":   {Engine: "multilevel", Seed: 1, CoarsenTo: 200, ClusterSize: 8},
		"clustersize": {Engine: "multilevel", Seed: 1, CoarsenTo: 100, ClusterSize: 16},
	}
	for name, o := range vary {
		if hierarchyPrepKey("h", o, "deg") == k0 {
			t.Fatalf("hierarchy key ignores %s", name)
		}
	}
	if hierarchyPrepKey("h", base, "unit") == k0 {
		t.Fatal("hierarchy key ignores the balance dimensions")
	}
	if hierarchyPrepKey("g", base, "deg") == k0 {
		t.Fatal("hierarchy key ignores the graph hash")
	}
	// Layout and hierarchy kinds must never collide even on equal params.
	if layoutPrepKey("h", "bfs") == hierarchyPrepKey("h", base, "deg") {
		t.Fatal("artifact kinds collide")
	}
}

// TestPrepEvictionMidFlight forces artifact eviction while solves are in
// flight: the budget is sized (by probing a real artifact) so two graphs'
// prep cannot coexist, then the two graphs alternate. Every solve must still
// complete and match a prep-disabled server byte for byte — an evicted
// artifact is only a lost amortization, never a lost (or corrupted) solve,
// because in-flight solves hold their own reference to the immutable
// artifact.
func TestPrepEvictionMidFlight(t *testing.T) {
	_, bodyA := testGraph(t, 1)
	_, bodyB := testGraph(t, 2)
	const q = "k=4&seed=7&engine=multilevel&reorder=bfs"

	// Probe: solve A once on a generously-budgeted server and read back how
	// many bytes its artifacts retain, so the real budget tracks the
	// generator instead of hard-coding sizes.
	_, tsProbe := startServer(t, Config{Workers: 1})
	solveAndFetch(t, tsProbe, q+"&iters=40", bodyA)
	perGraph := int64(metric(t, tsProbe, "mdbgpd_prep_cache_bytes"))
	if perGraph <= 0 {
		t.Fatalf("probe retained %d bytes; cannot size the eviction budget", perGraph)
	}

	_, ts := startServer(t, Config{Workers: 2, PrepCacheBytes: perGraph * 3 / 2})
	_, tsRebuild := startServer(t, Config{Workers: 2, PrepCacheBytes: -1})
	for i := 0; i < 3; i++ {
		iters := fmt.Sprintf("&iters=%d", 40+10*i)
		for _, body := range [][]byte{bodyA, bodyB} {
			got := solveAndFetch(t, ts, q+iters, body)
			want := solveAndFetch(t, tsRebuild, q+iters, body)
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: assignment diverged under prep eviction pressure", i)
			}
		}
	}
	if ev := metric(t, ts, "mdbgpd_prep_cache_evictions_total"); ev == 0 {
		t.Fatal("budget never forced an eviction; the test exercised nothing")
	}
	if cl := metric(t, ts, "mdbgpd_prep_cache_accounting_clamps_total"); cl != 0 {
		t.Fatalf("prep byte accounting clamped %g times", cl)
	}
}

// TestPrepConcurrentSameGraph races many submissions of one graph through a
// multi-worker server: concurrent misses double-build the same artifact (last
// Put wins), concurrent hits share one immutable instance, and every solve
// with identical options must come out byte-identical. Run under -race this
// also proves the cache and the shared artifacts are data-race free.
func TestPrepConcurrentSameGraph(t *testing.T) {
	_, body := testGraph(t, 5)
	_, ts := startServer(t, Config{Workers: 4})

	const lanes, perLane = 4, 3 // 4 distinct option sets × 3 identical requests
	results := make([][]byte, lanes*perLane)
	errs := make(chan error, len(results))
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf("k=4&seed=9&engine=multilevel&reorder=bfs&iters=%d&wait=true", 40+10*(i%lanes))
			resp, err := http.Post(ts.URL+"/v1/partition?"+q, "text/plain", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			var m map[string]any
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			id, _ := m["job_id"].(string)
			if id == "" {
				errs <- fmt.Errorf("submit %q: no job id in %v", q, m)
				return
			}
			// wait=true returned, but guard against a MaxWait fallback by
			// polling the assignment until it stops answering 409.
			for {
				r2, err := http.Get(ts.URL + "/v1/jobs/" + id + "/assignment")
				if err != nil {
					errs <- err
					return
				}
				b, _ := io.ReadAll(r2.Body)
				r2.Body.Close()
				if r2.StatusCode == http.StatusOK {
					results[i] = b
					return
				}
				if r2.StatusCode != http.StatusConflict {
					errs <- fmt.Errorf("assignment %s: status %d: %s", id, r2.StatusCode, b)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for lane := 0; lane < lanes; lane++ {
		want := results[lane]
		for rep := 1; rep < perLane; rep++ {
			if got := results[lane+rep*lanes]; !bytes.Equal(got, want) {
				t.Fatalf("lane %d: concurrent identical submissions produced different assignments", lane)
			}
		}
	}
	if cl := metric(t, ts, "mdbgpd_prep_cache_accounting_clamps_total"); cl != 0 {
		t.Fatalf("prep byte accounting clamped %g times under concurrency", cl)
	}
}

// TestKernel32Param covers the float32-kernel opt-in at the HTTP surface:
// accepted on gradient engines (and forking the result-cache key, since the
// option is fingerprinted), refused with a 400 on engines that cannot honor
// it and on the incompatible incgrad combination.
func TestKernel32Param(t *testing.T) {
	_, body := testGraph(t, 6)
	_, ts := startServer(t, Config{Workers: 1})

	a64 := solveAndFetch(t, ts, "k=4&seed=7&engine=gd", body)
	a32 := solveAndFetch(t, ts, "k=4&seed=7&engine=gd&kernel32=true", body)
	if h := metric(t, ts, "mdbgpd_cache_hits_total"); h != 0 {
		t.Fatalf("kernel32=true shared a result-cache entry with the float64 solve (%g hits)", h)
	}
	// Same determinism contract, different rounding: both are valid
	// assignments of the same length.
	if len(a64) == 0 || len(a32) == 0 {
		t.Fatal("empty assignment")
	}
	// Re-submitting the kernel32 solve hits its own cache entry.
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&kernel32=true", body)
	if h := metric(t, ts, "mdbgpd_cache_hits_total"); h != 1 {
		t.Fatalf("repeat kernel32 solve: %g result-cache hits, want 1", h)
	}

	for _, q := range []string{
		"k=4&engine=fennel&kernel32=true",
		"k=4&engine=metis&kernel32=true",
		"k=4&engine=gd&kernel32=true&incgrad=true",
	} {
		if code, m := submit(t, ts, q, body); code != http.StatusBadRequest {
			t.Fatalf("submit %q: status %d (%v), want 400", q, code, m)
		}
	}
}

// TestPrepSurvivesResubmission is the pointer-canonicalization contract: a
// byte-identical resubmission parses into a NEW graph object, and prep
// artifacts validate by instance identity — so reuse only works because the
// graph cache canonicalizes same-content submissions onto the retained
// instance. Disable the graph cache and the same traffic degrades to rebuilds
// (honestly counted as misses), never to errors.
func TestPrepSurvivesResubmission(t *testing.T) {
	_, body := testGraph(t, 8)
	_, ts := startServer(t, Config{Workers: 1})
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&reorder=bfs&iters=40", body)
	solveAndFetch(t, ts, "k=4&seed=7&engine=gd&reorder=bfs&iters=50", body)
	if h := metric(t, ts, "mdbgpd_prep_cache_hits_total"); h != 1 {
		t.Fatalf("resubmission got %g prep hits, want 1 (graph canonicalization broken?)", h)
	}

	_, tsNoGraph := startServer(t, Config{Workers: 1, GraphCacheEntries: -1})
	solveAndFetch(t, tsNoGraph, "k=4&seed=7&engine=gd&reorder=bfs&iters=40", body)
	solveAndFetch(t, tsNoGraph, "k=4&seed=7&engine=gd&reorder=bfs&iters=50", body)
	if h := metric(t, tsNoGraph, "mdbgpd_prep_cache_hits_total"); h != 0 {
		t.Fatalf("without graph canonicalization the stale artifact must not hit (got %g hits)", h)
	}
}
