package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the daemon's counters. All fields are atomics so the hot
// paths never take a lock; gauges derived from other subsystems (queue
// depth, cache size) are sampled at scrape time. The per-engine maps are the
// one exception: engine labels are few and a solve takes milliseconds, so a
// mutex per completed solve is noise.
type metrics struct {
	httpRequests    atomic.Int64
	jobsSubmitted   atomic.Int64
	jobsCompleted   atomic.Int64
	jobsFailed      atomic.Int64
	jobsRejected    atomic.Int64 // 429s from a saturated queue
	jobsCoalesced   atomic.Int64 // submissions attached to an identical in-flight job
	jobsRunning     atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheEvictions  atomic.Int64
	deltaSubmitted  atomic.Int64 // delta (?base=) submissions received
	deltaWarm       atomic.Int64 // delta jobs dispatched with a warm start
	deltaCold       atomic.Int64 // delta jobs dispatched cold (churn, depth, capability or evicted solution)
	deltaChainReset atomic.Int64 // delta solves forced cold by the chain-depth limit
	baseMisses      atomic.Int64 // delta submissions whose base graph was unknown/evicted
	graphEvictions  atomic.Int64 // base graphs evicted from the graph cache
	solveNanos      atomic.Int64 // cumulative wall time inside the partitioner
	ingestNanos     atomic.Int64 // cumulative wall time parsing + hashing request bodies

	engineMu         sync.Mutex
	engineSubmitted  map[string]int64 // submissions accepted, by engine label
	engineSolves     map[string]int64 // solves executed (cache hits excluded), by engine
	engineSolveNanos map[string]int64 // cumulative solver wall time, by engine
}

// recordEngineSubmit counts an accepted submission under its engine label.
func (m *metrics) recordEngineSubmit(engine string) {
	m.engineMu.Lock()
	if m.engineSubmitted == nil {
		m.engineSubmitted = map[string]int64{}
	}
	m.engineSubmitted[engine]++
	m.engineMu.Unlock()
}

// recordEngineSolve counts one executed solve and its wall time under the
// engine label.
func (m *metrics) recordEngineSolve(engine string, d time.Duration) {
	m.engineMu.Lock()
	if m.engineSolves == nil {
		m.engineSolves = map[string]int64{}
		m.engineSolveNanos = map[string]int64{}
	}
	m.engineSolves[engine]++
	m.engineSolveNanos[engine] += int64(d)
	m.engineMu.Unlock()
}

// engineSnapshot copies the per-engine maps for rendering, with labels
// sorted so the exposition is stable across scrapes.
func (m *metrics) engineSnapshot() (labels []string, submitted, solves, nanos map[string]int64) {
	m.engineMu.Lock()
	defer m.engineMu.Unlock()
	submitted = make(map[string]int64, len(m.engineSubmitted))
	solves = make(map[string]int64, len(m.engineSolves))
	nanos = make(map[string]int64, len(m.engineSolveNanos))
	seen := map[string]bool{}
	for e, v := range m.engineSubmitted {
		submitted[e] = v
		seen[e] = true
	}
	for e, v := range m.engineSolves {
		solves[e] = v
		seen[e] = true
	}
	for e, v := range m.engineSolveNanos {
		nanos[e] = v
	}
	for e := range seen {
		labels = append(labels, e)
	}
	sort.Strings(labels)
	return labels, submitted, solves, nanos
}

// handleMetrics serves the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	m := &s.met
	counter("mdbgpd_http_requests_total", "HTTP requests received.", m.httpRequests.Load())
	counter("mdbgpd_jobs_submitted_total", "Partition jobs accepted (cache hits included).", m.jobsSubmitted.Load())
	counter("mdbgpd_jobs_completed_total", "Partition jobs solved successfully.", m.jobsCompleted.Load())
	counter("mdbgpd_jobs_failed_total", "Partition jobs that errored.", m.jobsFailed.Load())
	counter("mdbgpd_jobs_rejected_total", "Submissions rejected with 429 (queue saturated).", m.jobsRejected.Load())
	counter("mdbgpd_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job.", m.jobsCoalesced.Load())
	counter("mdbgpd_cache_hits_total", "Result-cache hits.", m.cacheHits.Load())
	counter("mdbgpd_cache_misses_total", "Result-cache misses.", m.cacheMisses.Load())
	counter("mdbgpd_cache_evictions_total", "Results evicted from the LRU cache.", m.cacheEvictions.Load())
	counter("mdbgpd_delta_submitted_total", "Delta (?base=) submissions received.", m.deltaSubmitted.Load())
	counter("mdbgpd_delta_warm_total", "Delta jobs dispatched with a warm start.", m.deltaWarm.Load())
	counter("mdbgpd_delta_cold_total", "Delta jobs dispatched cold (churn, chain depth, engine capability or evicted solution).", m.deltaCold.Load())
	counter("mdbgpd_delta_chain_resets_total", "Delta solves forced cold by the warm-chain depth limit.", m.deltaChainReset.Load())
	counter("mdbgpd_delta_base_misses_total", "Delta submissions rejected because the base graph was unknown or evicted.", m.baseMisses.Load())
	counter("mdbgpd_graph_cache_evictions_total", "Base graphs evicted from the graph cache.", m.graphEvictions.Load())
	fmt.Fprintf(w, "# HELP mdbgpd_solve_seconds_total Cumulative wall time inside the partitioner.\n# TYPE mdbgpd_solve_seconds_total counter\nmdbgpd_solve_seconds_total %g\n",
		time.Duration(m.solveNanos.Load()).Seconds())
	fmt.Fprintf(w, "# HELP mdbgpd_ingest_seconds_total Cumulative wall time parsing and hashing request bodies.\n# TYPE mdbgpd_ingest_seconds_total counter\nmdbgpd_ingest_seconds_total %g\n",
		time.Duration(m.ingestNanos.Load()).Seconds())
	labels, submitted, solves, nanos := m.engineSnapshot()
	fmt.Fprintf(w, "# HELP mdbgpd_jobs_by_engine_total Submissions accepted, by solver engine.\n# TYPE mdbgpd_jobs_by_engine_total counter\n")
	for _, e := range labels {
		fmt.Fprintf(w, "mdbgpd_jobs_by_engine_total{engine=%q} %d\n", e, submitted[e])
	}
	fmt.Fprintf(w, "# HELP mdbgpd_solves_by_engine_total Solves executed (cache hits excluded), by solver engine.\n# TYPE mdbgpd_solves_by_engine_total counter\n")
	for _, e := range labels {
		fmt.Fprintf(w, "mdbgpd_solves_by_engine_total{engine=%q} %d\n", e, solves[e])
	}
	fmt.Fprintf(w, "# HELP mdbgpd_solve_seconds_by_engine_total Cumulative solver wall time, by engine.\n# TYPE mdbgpd_solve_seconds_by_engine_total counter\n")
	for _, e := range labels {
		fmt.Fprintf(w, "mdbgpd_solve_seconds_by_engine_total{engine=%q} %g\n", e, time.Duration(nanos[e]).Seconds())
	}
	gauge("mdbgpd_jobs_running", "Jobs currently being solved.", m.jobsRunning.Load())
	gauge("mdbgpd_queue_depth", "Jobs waiting in the bounded queue.", int64(len(s.queue)))
	gauge("mdbgpd_queue_capacity", "Capacity of the bounded queue.", int64(cap(s.queue)))
	gauge("mdbgpd_workers", "Worker goroutines draining the queue.", int64(s.cfg.Workers))
	entries, bytes := s.cache.stats()
	gauge("mdbgpd_cache_entries", "Results held in the LRU cache.", int64(entries))
	gauge("mdbgpd_cache_bytes", "Approximate bytes held by cached results (payloads + keys + bookkeeping).", bytes)
	counter("mdbgpd_cache_accounting_clamps_total", "Times the result-cache byte gauge went negative and was clamped (accounting bug).", s.cache.clampCount())
	gentries, gbytes := s.graphs.stats()
	gauge("mdbgpd_graph_cache_entries", "Base graphs held for delta submissions.", int64(gentries))
	gauge("mdbgpd_graph_cache_bytes", "Approximate bytes held by cached base graphs (payloads + keys + bookkeeping).", gbytes)
	counter("mdbgpd_graph_cache_accounting_clamps_total", "Times the graph-cache byte gauge went negative and was clamped (accounting bug).", s.graphs.clampCount())
	gauge("mdbgpd_uptime_seconds", "Seconds since the server started.", int64(time.Since(s.start).Seconds()))
}
