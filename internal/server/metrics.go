package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdbgp/internal/obs"
	"mdbgp/internal/prep"
)

// metrics holds the daemon's counters and latency histograms. Counter fields
// are atomics so the hot paths never take a lock; the per-engine maps are the
// one exception — engine labels are few and a solve takes milliseconds, so a
// mutex per completed solve is noise. Scrapes go through snapshot(), which
// gathers every subsystem once before any rendering happens, so a single
// exposition page is internally consistent (the per-engine series, the queue
// gauges and the cache gauges all describe the same instant instead of
// drifting apart while the page is written).
type metrics struct {
	httpRequests    atomic.Int64
	jobsSubmitted   atomic.Int64
	jobsCompleted   atomic.Int64
	jobsFailed      atomic.Int64
	jobsRejected    atomic.Int64 // 429s from a saturated queue
	jobsCoalesced   atomic.Int64 // submissions attached to an identical in-flight job
	jobsRunning     atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	cacheEvictions  atomic.Int64
	deltaSubmitted  atomic.Int64 // delta (?base=) submissions received
	deltaWarm       atomic.Int64 // delta jobs dispatched with a warm start
	deltaCold       atomic.Int64 // delta jobs dispatched cold (churn, depth, capability or evicted solution)
	deltaChainReset atomic.Int64 // delta solves forced cold by the chain-depth limit
	baseMisses      atomic.Int64 // delta submissions whose base graph was unknown/evicted
	graphEvictions  atomic.Int64 // base graphs evicted from the graph cache
	warmFetched     atomic.Int64 // entries pulled from peers during cache warming
	warmErrors      atomic.Int64 // failed peer polls/fetches during cache warming
	binarySubmitted atomic.Int64 // submissions in the binary wire format
	oocSubmitted    atomic.Int64 // submissions that took the out-of-core path
	spillBytes      atomic.Int64 // cumulative bytes written to spill files
	spillActive     atomic.Int64 // spill files currently on disk

	// Latency histograms. ingestHist and queueWaitHist are unlabeled;
	// solveHist is per-engine and lives under engineMu with the other
	// per-engine state. All are created by init (or lazily for new engine
	// labels), never replaced, so Observe never races with construction.
	ingestHist    *obs.Histogram
	queueWaitHist *obs.Histogram

	engineMu         sync.Mutex
	engineSubmitted  map[string]int64 // submissions accepted, by engine label
	engineSolves     map[string]int64 // solves executed (cache hits excluded), by engine
	engineSolveNanos map[string]int64 // cumulative solver wall time, by engine
	engineSolveHist  map[string]*obs.Histogram
}

// init creates the histograms. Must run before the server starts observing.
func (m *metrics) init() {
	m.ingestHist = obs.NewHistogram(nil)
	m.queueWaitHist = obs.NewHistogram(nil)
}

// recordIngest records one request-body parse+hash duration.
func (m *metrics) recordIngest(d time.Duration) {
	if m.ingestHist != nil {
		m.ingestHist.Observe(d)
	}
}

// recordQueueWait records how long a job sat in the queue before a worker
// picked it up.
func (m *metrics) recordQueueWait(d time.Duration) {
	if m.queueWaitHist != nil {
		m.queueWaitHist.Observe(d)
	}
}

// recordEngineSubmit counts an accepted submission under its engine label.
func (m *metrics) recordEngineSubmit(engine string) {
	m.engineMu.Lock()
	if m.engineSubmitted == nil {
		m.engineSubmitted = map[string]int64{}
	}
	m.engineSubmitted[engine]++
	m.engineMu.Unlock()
}

// recordEngineSolve counts one executed solve and its wall time under the
// engine label, and feeds the per-engine latency histogram.
func (m *metrics) recordEngineSolve(engine string, d time.Duration) {
	m.engineMu.Lock()
	if m.engineSolves == nil {
		m.engineSolves = map[string]int64{}
		m.engineSolveNanos = map[string]int64{}
	}
	m.engineSolves[engine]++
	m.engineSolveNanos[engine] += int64(d)
	if m.engineSolveHist == nil {
		m.engineSolveHist = map[string]*obs.Histogram{}
	}
	h := m.engineSolveHist[engine]
	if h == nil {
		h = obs.NewHistogram(nil)
		m.engineSolveHist[engine] = h
	}
	m.engineMu.Unlock()
	h.Observe(d)
}

// engineSnapshot copies the per-engine state for rendering, with labels
// sorted so the exposition is stable across scrapes. Every returned map is
// keyed by the same sorted label set.
func (m *metrics) engineSnapshot() (labels []string, submitted, solves, nanos map[string]int64, hists map[string]obs.HistSnapshot) {
	m.engineMu.Lock()
	defer m.engineMu.Unlock()
	submitted = make(map[string]int64, len(m.engineSubmitted))
	solves = make(map[string]int64, len(m.engineSolves))
	nanos = make(map[string]int64, len(m.engineSolveNanos))
	hists = make(map[string]obs.HistSnapshot, len(m.engineSolveHist))
	seen := map[string]bool{}
	for e, v := range m.engineSubmitted {
		submitted[e] = v
		seen[e] = true
	}
	for e, v := range m.engineSolves {
		solves[e] = v
		seen[e] = true
	}
	for e, v := range m.engineSolveNanos {
		nanos[e] = v
	}
	for e, h := range m.engineSolveHist {
		hists[e] = h.Snapshot()
		seen[e] = true
	}
	for e := range seen {
		labels = append(labels, e)
	}
	sort.Strings(labels)
	return labels, submitted, solves, nanos, hists
}

// metricsSnapshot is one consistent view of every exported series, gathered
// before rendering starts.
type metricsSnapshot struct {
	httpRequests, jobsSubmitted, jobsCompleted, jobsFailed int64
	jobsRejected, jobsCoalesced, jobsRunning               int64
	cacheHits, cacheMisses, cacheEvictions                 int64
	deltaSubmitted, deltaWarm, deltaCold                   int64
	deltaChainReset, baseMisses, graphEvictions            int64
	binarySubmitted, oocSubmitted, spillBytes, spillActive int64
	diskEnabled                                            bool
	diskHits, diskMisses, diskErrors, diskBytes            int64
	diskEntries, warmFetched, warmErrors                   int64
	engineLabels                                           []string
	engineSubmitted, engineSolves, engineSolveNanos        map[string]int64
	engineSolveHist                                        map[string]obs.HistSnapshot
	ingest, queueWait                                      obs.HistSnapshot
	queueDepth, queueCap, workers                          int64
	cacheEntries, graphEntries                             int
	cacheBytes, cacheClamps, graphBytes, graphClamps       int64
	prepStats                                              prep.Stats
	uptimeSec                                              int64
}

// snapshotMetrics gathers every subsystem's state once. The engine maps, the
// queue gauges and the cache gauges are all read here, before any byte of the
// exposition is written.
func (s *Server) snapshotMetrics() metricsSnapshot {
	m := &s.met
	snap := metricsSnapshot{
		httpRequests:    m.httpRequests.Load(),
		jobsSubmitted:   m.jobsSubmitted.Load(),
		jobsCompleted:   m.jobsCompleted.Load(),
		jobsFailed:      m.jobsFailed.Load(),
		jobsRejected:    m.jobsRejected.Load(),
		jobsCoalesced:   m.jobsCoalesced.Load(),
		jobsRunning:     m.jobsRunning.Load(),
		cacheHits:       m.cacheHits.Load(),
		cacheMisses:     m.cacheMisses.Load(),
		cacheEvictions:  m.cacheEvictions.Load(),
		deltaSubmitted:  m.deltaSubmitted.Load(),
		deltaWarm:       m.deltaWarm.Load(),
		deltaCold:       m.deltaCold.Load(),
		deltaChainReset: m.deltaChainReset.Load(),
		baseMisses:      m.baseMisses.Load(),
		graphEvictions:  m.graphEvictions.Load(),
		binarySubmitted: m.binarySubmitted.Load(),
		oocSubmitted:    m.oocSubmitted.Load(),
		spillBytes:      m.spillBytes.Load(),
		spillActive:     m.spillActive.Load(),
		ingest:          m.ingestHist.Snapshot(),
		queueWait:       m.queueWaitHist.Snapshot(),
		queueDepth:      int64(len(s.queue)),
		queueCap:        int64(cap(s.queue)),
		workers:         int64(s.cfg.Workers),
		uptimeSec:       int64(time.Since(s.start).Seconds()),
	}
	if s.disk != nil {
		snap.diskEnabled = true
		snap.diskHits, snap.diskMisses, snap.diskErrors, snap.diskBytes, snap.diskEntries = s.disk.Stats()
		snap.warmFetched = m.warmFetched.Load()
		snap.warmErrors = m.warmErrors.Load()
	}
	snap.engineLabels, snap.engineSubmitted, snap.engineSolves, snap.engineSolveNanos, snap.engineSolveHist = m.engineSnapshot()
	snap.cacheEntries, snap.cacheBytes = s.cache.stats()
	snap.cacheClamps = s.cache.clampCount()
	snap.graphEntries, snap.graphBytes = s.graphs.stats()
	snap.graphClamps = s.graphs.clampCount()
	snap.prepStats = s.preps.Stats()
	return snap
}

// handleMetrics serves the Prometheus text exposition format from one
// consistent snapshot (see snapshotMetrics).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshotMetrics()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("mdbgpd_http_requests_total", "HTTP requests received.", snap.httpRequests)
	counter("mdbgpd_jobs_submitted_total", "Partition jobs accepted (cache hits included).", snap.jobsSubmitted)
	counter("mdbgpd_jobs_completed_total", "Partition jobs solved successfully.", snap.jobsCompleted)
	counter("mdbgpd_jobs_failed_total", "Partition jobs that errored.", snap.jobsFailed)
	counter("mdbgpd_jobs_rejected_total", "Submissions rejected with 429 (queue saturated).", snap.jobsRejected)
	counter("mdbgpd_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job.", snap.jobsCoalesced)
	counter("mdbgpd_cache_hits_total", "Result-cache hits.", snap.cacheHits)
	counter("mdbgpd_cache_misses_total", "Result-cache misses.", snap.cacheMisses)
	counter("mdbgpd_cache_evictions_total", "Results evicted from the LRU cache.", snap.cacheEvictions)
	counter("mdbgpd_delta_submitted_total", "Delta (?base=) submissions received.", snap.deltaSubmitted)
	counter("mdbgpd_delta_warm_total", "Delta jobs dispatched with a warm start.", snap.deltaWarm)
	counter("mdbgpd_delta_cold_total", "Delta jobs dispatched cold (churn, chain depth, engine capability or evicted solution).", snap.deltaCold)
	counter("mdbgpd_delta_chain_resets_total", "Delta solves forced cold by the warm-chain depth limit.", snap.deltaChainReset)
	counter("mdbgpd_delta_base_misses_total", "Delta submissions rejected because the base graph was unknown or evicted.", snap.baseMisses)
	counter("mdbgpd_graph_cache_evictions_total", "Base graphs evicted from the graph cache.", snap.graphEvictions)
	counter("mdbgpd_ingest_binary_total", "Submissions received in the binary wire format (application/x-mdbgp-csr).", snap.binarySubmitted)
	counter("mdbgpd_ooc_jobs_total", "Submissions that exceeded the resident-edge budget and took the out-of-core path.", snap.oocSubmitted)
	counter("mdbgpd_spill_bytes_total", "Cumulative bytes written to out-of-core spill files.", snap.spillBytes)
	gauge("mdbgpd_spill_active", "Out-of-core spill files currently on disk.", snap.spillActive)
	fmt.Fprintf(&b, "# HELP mdbgpd_jobs_by_engine_total Submissions accepted, by solver engine.\n# TYPE mdbgpd_jobs_by_engine_total counter\n")
	for _, e := range snap.engineLabels {
		fmt.Fprintf(&b, "mdbgpd_jobs_by_engine_total{engine=%q} %d\n", e, snap.engineSubmitted[e])
	}
	fmt.Fprintf(&b, "# HELP mdbgpd_solves_by_engine_total Solves executed (cache hits excluded), by solver engine.\n# TYPE mdbgpd_solves_by_engine_total counter\n")
	for _, e := range snap.engineLabels {
		fmt.Fprintf(&b, "mdbgpd_solves_by_engine_total{engine=%q} %d\n", e, snap.engineSolves[e])
	}
	fmt.Fprintf(&b, "# HELP mdbgpd_solve_seconds_by_engine_total Cumulative solver wall time, by engine.\n# TYPE mdbgpd_solve_seconds_by_engine_total counter\n")
	for _, e := range snap.engineLabels {
		fmt.Fprintf(&b, "mdbgpd_solve_seconds_by_engine_total{engine=%q} %g\n", e, time.Duration(snap.engineSolveNanos[e]).Seconds())
	}
	fmt.Fprintf(&b, "# HELP mdbgpd_solve_duration_seconds Wall time of one executed solve (cache hits excluded), by solver engine.\n# TYPE mdbgpd_solve_duration_seconds histogram\n")
	for _, e := range snap.engineLabels {
		if h, ok := snap.engineSolveHist[e]; ok {
			obs.WritePromHistogram(&b, "mdbgpd_solve_duration_seconds", fmt.Sprintf("engine=%q", e), h)
		}
	}
	fmt.Fprintf(&b, "# HELP mdbgpd_queue_wait_seconds Time a job waited in the bounded queue before a worker picked it up.\n# TYPE mdbgpd_queue_wait_seconds histogram\n")
	obs.WritePromHistogram(&b, "mdbgpd_queue_wait_seconds", "", snap.queueWait)
	fmt.Fprintf(&b, "# HELP mdbgpd_ingest_duration_seconds Wall time parsing and hashing one request body.\n# TYPE mdbgpd_ingest_duration_seconds histogram\n")
	obs.WritePromHistogram(&b, "mdbgpd_ingest_duration_seconds", "", snap.ingest)
	gauge("mdbgpd_jobs_running", "Jobs currently being solved.", snap.jobsRunning)
	gauge("mdbgpd_queue_depth", "Jobs waiting in the bounded queue.", snap.queueDepth)
	gauge("mdbgpd_queue_capacity", "Capacity of the bounded queue.", snap.queueCap)
	gauge("mdbgpd_workers", "Worker goroutines draining the queue.", snap.workers)
	gauge("mdbgpd_cache_entries", "Results held in the LRU cache.", int64(snap.cacheEntries))
	gauge("mdbgpd_cache_bytes", "Approximate bytes held by cached results (payloads + keys + bookkeeping).", snap.cacheBytes)
	counter("mdbgpd_cache_accounting_clamps_total", "Times the result-cache byte gauge went negative and was clamped (accounting bug).", snap.cacheClamps)
	gauge("mdbgpd_graph_cache_entries", "Base graphs held for delta submissions.", int64(snap.graphEntries))
	gauge("mdbgpd_graph_cache_bytes", "Approximate bytes held by cached base graphs (payloads + keys + bookkeeping).", snap.graphBytes)
	counter("mdbgpd_graph_cache_accounting_clamps_total", "Times the graph-cache byte gauge went negative and was clamped (accounting bug).", snap.graphClamps)
	counter("mdbgpd_prep_cache_hits_total", "Prep-artifact lookups served from cache (reorder layouts, coarsening hierarchies).", snap.prepStats.Hits)
	counter("mdbgpd_prep_cache_misses_total", "Prep-artifact lookups that built the artifact inline (stale entries included).", snap.prepStats.Misses)
	counter("mdbgpd_prep_cache_evictions_total", "Prep artifacts evicted to hold the byte budget.", snap.prepStats.Evictions)
	gauge("mdbgpd_prep_cache_entries", "Prep artifacts currently retained.", int64(snap.prepStats.Entries))
	gauge("mdbgpd_prep_cache_bytes", "Approximate bytes held by retained prep artifacts (payloads + keys + bookkeeping).", snap.prepStats.Bytes)
	counter("mdbgpd_prep_cache_accounting_clamps_total", "Times the prep-cache byte gauge went negative and was clamped (accounting bug).", snap.prepStats.Clamps)
	if snap.diskEnabled {
		counter("mdbgpd_cache_disk_hits_total", "Results served from the durable disk tier.", snap.diskHits)
		counter("mdbgpd_cache_disk_misses_total", "Disk-tier lookups that found no entry.", snap.diskMisses)
		counter("mdbgpd_cache_disk_errors_total", "Disk-tier failures: corrupt entries quarantined, write/IO errors, dropped spills.", snap.diskErrors)
		gauge("mdbgpd_cache_disk_bytes", "Bytes held by the durable disk tier.", snap.diskBytes)
		gauge("mdbgpd_cache_disk_entries", "Entries held by the durable disk tier.", snap.diskEntries)
		counter("mdbgpd_cache_warm_fetched_total", "Cache entries pulled from peers during startup warming.", snap.warmFetched)
		counter("mdbgpd_cache_warm_errors_total", "Failed peer polls or entry fetches during startup warming.", snap.warmErrors)
	}
	gauge("mdbgpd_uptime_seconds", "Seconds since the server started.", snap.uptimeSec)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
