package server

import (
	"fmt"
	"testing"

	"mdbgp"
)

func fakeResult(n int) *mdbgp.Result {
	return &mdbgp.Result{
		Assignment:   &mdbgp.Assignment{Parts: make([]int32, n), K: 2},
		EdgeLocality: 0.5,
		Imbalances:   []float64{0.01},
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", fakeResult(10))
	c.put("b", fakeResult(10))
	if ev := c.put("c", fakeResult(10)); ev != 1 {
		t.Fatalf("third insert evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %q missing", k)
		}
	}
}

func TestCacheGetPromotes(t *testing.T) {
	c := newResultCache(2)
	c.put("a", fakeResult(10))
	c.put("b", fakeResult(10))
	c.get("a") // a is now most recent; b must be the eviction victim
	c.put("c", fakeResult(10))
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("stale entry survived")
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := newResultCache(4)
	c.put("a", fakeResult(10))
	bigger := fakeResult(100)
	if ev := c.put("a", bigger); ev != 0 {
		t.Fatalf("refresh evicted %d entries", ev)
	}
	got, ok := c.get("a")
	if !ok || got != bigger {
		t.Fatal("refresh did not replace the value")
	}
	entries, bytes := c.stats()
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if want := resultBytes(bigger); bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", fakeResult(10))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if entries, bytes := c.stats(); entries != 0 || bytes != 0 {
		t.Fatalf("disabled cache reports entries=%d bytes=%d", entries, bytes)
	}
}

func TestCacheBytesAccounting(t *testing.T) {
	c := newResultCache(8)
	var want int64
	for i := 0; i < 5; i++ {
		r := fakeResult(10 * (i + 1))
		want += resultBytes(r)
		c.put(fmt.Sprintf("k%d", i), r)
	}
	if _, bytes := c.stats(); bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
	// Eviction releases the accounted bytes.
	c2 := newResultCache(1)
	c2.put("a", fakeResult(1000))
	c2.put("b", fakeResult(10))
	if _, bytes := c2.stats(); bytes != resultBytes(fakeResult(10)) {
		t.Fatalf("post-eviction bytes = %d", bytes)
	}
}
