package server

import (
	"fmt"
	"math/rand"
	"testing"

	"mdbgp"
)

func fakeResult(n int) *mdbgp.Result {
	return &mdbgp.Result{
		Assignment:   &mdbgp.Assignment{Parts: make([]int32, n), K: 2},
		EdgeLocality: 0.5,
		Imbalances:   []float64{0.01},
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", fakeResult(10))
	c.put("b", fakeResult(10))
	if ev := c.put("c", fakeResult(10)); ev != 1 {
		t.Fatalf("third insert evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %q missing", k)
		}
	}
}

func TestCacheGetPromotes(t *testing.T) {
	c := newResultCache(2)
	c.put("a", fakeResult(10))
	c.put("b", fakeResult(10))
	c.get("a") // a is now most recent; b must be the eviction victim
	c.put("c", fakeResult(10))
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("stale entry survived")
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := newResultCache(4)
	c.put("a", fakeResult(10))
	bigger := fakeResult(100)
	if ev := c.put("a", bigger); ev != 0 {
		t.Fatalf("refresh evicted %d entries", ev)
	}
	got, ok := c.get("a")
	if !ok || got != bigger {
		t.Fatal("refresh did not replace the value")
	}
	entries, bytes := c.stats()
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if want := resultEntryBytes("a", bigger); bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", fakeResult(10))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if entries, bytes := c.stats(); entries != 0 || bytes != 0 {
		t.Fatalf("disabled cache reports entries=%d bytes=%d", entries, bytes)
	}
}

func TestCacheBytesAccounting(t *testing.T) {
	c := newResultCache(8)
	var want int64
	for i := 0; i < 5; i++ {
		r := fakeResult(10 * (i + 1))
		key := fmt.Sprintf("k%d", i)
		want += resultEntryBytes(key, r)
		c.put(key, r)
	}
	if _, bytes := c.stats(); bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
	// Eviction releases the accounted bytes — key and overhead included.
	c2 := newResultCache(1)
	c2.put("a", fakeResult(1000))
	c2.put("b", fakeResult(10))
	if _, bytes := c2.stats(); bytes != resultEntryBytes("b", fakeResult(10)) {
		t.Fatalf("post-eviction bytes = %d", bytes)
	}
}

// recomputeResultBytes walks the live entries and recomputes the ground-truth
// byte total from scratch — what the incremental gauge must always equal.
func recomputeResultBytes(c *resultCache) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		total += resultEntryBytes(e.key, e.res)
	}
	return total
}

// TestCacheBytesHammer churns the cache with interleaved inserts, updates of
// varying payload sizes, and evictions, asserting after every operation that
// the incrementally-maintained byte gauge matches a recomputed ground truth
// and never needs the negative clamp.
func TestCacheBytesHammer(t *testing.T) {
	c := newResultCache(16)
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 5000; op++ {
		key := fmt.Sprintf("key-%d", rng.Intn(48)) // collisions force the update path
		c.put(key, fakeResult(rng.Intn(2000)))
		if rng.Intn(3) == 0 {
			c.get(fmt.Sprintf("key-%d", rng.Intn(48))) // promotions reshuffle eviction order
		}
		if got, want := func() int64 { _, b := c.stats(); return b }(), recomputeResultBytes(c); got != want {
			t.Fatalf("op %d: bytes gauge = %d, ground truth = %d (drift %d)", op, got, want, got-want)
		}
	}
	if entries, _ := c.stats(); entries != 16 {
		t.Fatalf("entries = %d, want capacity 16", entries)
	}
	if c.clampCount() != 0 {
		t.Fatalf("correct accounting still clamped %d times", c.clampCount())
	}
}

// TestCacheBytesClamp corrupts an entry's accounted size to force the gauge
// negative and asserts the clamp fires: the gauge floors at zero and the
// error counter records the event instead of the gauge silently underflowing.
func TestCacheBytesClamp(t *testing.T) {
	c := newResultCache(4)
	c.put("a", fakeResult(10))
	c.mu.Lock()
	c.items["a"].Value.(*cacheEntry).bytes += 1 << 40 // simulate a mischarge
	c.mu.Unlock()
	c.put("a", fakeResult(10)) // update path credits the inflated size
	if _, bytes := c.stats(); bytes != 0 {
		t.Fatalf("bytes = %d, want clamp at 0", bytes)
	}
	if c.clampCount() != 1 {
		t.Fatalf("clamps = %d, want 1", c.clampCount())
	}

	g := newGraphCache(1)
	g.put("h1", mdbgp.FromEdges(2, []mdbgp.Edge{{U: 0, V: 1}}))
	g.mu.Lock()
	g.items["h1"].Value.(*graphEntry).bytes += 1 << 40
	g.mu.Unlock()
	g.put("h2", mdbgp.FromEdges(2, []mdbgp.Edge{{U: 0, V: 1}})) // evicts the mischarged entry
	if _, bytes := g.stats(); bytes != 0 {
		t.Fatalf("graph bytes = %d, want clamp at 0", bytes)
	}
	if g.clampCount() != 1 {
		t.Fatalf("graph clamps = %d, want 1", g.clampCount())
	}
}
