package server

import (
	"net/http"

	"mdbgp"
)

// lookupResult is the tiered result-cache read: the in-memory LRU first, then
// the durable disk tier (when configured), promoting disk hits into memory so
// repeats of a restored key stay at memory speed. Disk hit/miss accounting
// lives in the store itself; the caller-visible contract is simply "was this
// key's result available anywhere".
func (s *Server) lookupResult(key string) (*mdbgp.Result, bool) {
	if res, ok := s.cache.get(key); ok {
		return res, true
	}
	if s.disk == nil {
		return nil, false
	}
	res, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	if ev := s.cache.put(key, res); ev > 0 {
		s.met.cacheEvictions.Add(int64(ev))
	}
	return res, true
}

// handleCacheIndex lists the durable tier's cache keys. Peers use it at
// startup to discover which of their ring-owned entries a neighbor can hand
// over (see WarmFromPeers); operators use it to see what a replica holds.
func (s *Server) handleCacheIndex(w http.ResponseWriter, r *http.Request) {
	if s.disk == nil {
		httpError(w, http.StatusNotFound, "no disk cache tier (start with -cache-dir)")
		return
	}
	keys := s.disk.Keys()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "keys": keys})
}

// handleCacheEntry serves one durable entry verbatim — the checksummed
// on-disk bytes, not a JSON rendering — so a warming peer can verify and
// store it without a decode/re-encode round trip. Disk tier only: the
// in-memory LRU is deliberately not consulted, keeping the endpoint cheap
// and its semantics simple ("what this replica has made durable").
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	if s.disk == nil {
		httpError(w, http.StatusNotFound, "no disk cache tier (start with -cache-dir)")
		return
	}
	data, ok := s.disk.GetRaw(r.PathValue("key"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such cache entry")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}
