package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mdbgp"
	"mdbgp/internal/gen"
)

// smallDelta builds a ~1%-churn delta body against g: one existing edge
// removed and one fresh edge added per 100 edges.
func smallDelta(t *testing.T, g *mdbgp.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeDelta(&buf, gen.PerturbDelta(g, 100, 7, 13)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// submitDelta POSTs a delta body with ?base= and returns the decoded
// response plus its "delta" sub-object.
func submitDelta(t *testing.T, ts *httptest.Server, query string, body []byte) (int, map[string]any, map[string]any) {
	t.Helper()
	code, m := submit(t, ts, query, body)
	dv, _ := m["delta"].(map[string]any)
	return code, m, dv
}

func TestDeltaWarmSolveEndToEnd(t *testing.T) {
	g, body := testGraph(t, 7)
	_, ts := startServer(t, Config{Workers: 2})

	// Cold base solve.
	code, m := submit(t, ts, "k=4&seed=42&iters=40&wait=true", body)
	if code != http.StatusOK || m["status"] != "done" {
		t.Fatalf("base submit: %d %v", code, m)
	}
	baseID := m["job_id"].(string)
	baseHash := m["graph_hash"].(string)
	if len(baseHash) != 64 {
		t.Fatalf("graph_hash %q is not a sha256 hex digest", baseHash)
	}

	// Delta against the base job id: must be warm.
	code, m2, dv := submitDelta(t, ts, "k=4&seed=42&iters=40&base="+baseID+"&wait=true", smallDelta(t, g))
	if code != http.StatusOK || m2["status"] != "done" {
		t.Fatalf("delta submit: %d %v", code, m2)
	}
	if dv == nil {
		t.Fatalf("delta response lacks the delta object: %v", m2)
	}
	if dv["mode"] != "warm" {
		t.Fatalf("delta solve mode = %v, want warm (%v)", dv["mode"], dv)
	}
	if dv["base"] != baseHash {
		t.Fatalf("delta base = %v, want %v", dv["base"], baseHash)
	}
	if churn := dv["churn"].(float64); churn <= 0 || churn > 0.05 {
		t.Fatalf("churn = %v, want a small positive fraction", churn)
	}
	// The materialized graph differs from the base.
	if m2["graph_hash"] == baseHash {
		t.Fatal("delta job reports the base's graph hash")
	}
	final := pollDone(t, ts, m2["job_id"].(string))
	res, _ := final["result"].(map[string]any)
	if res == nil || res["k"].(float64) != 4 {
		t.Fatalf("delta job result: %v", final)
	}
	if v := metric(t, ts, "mdbgpd_delta_warm_total"); v != 1 {
		t.Fatalf("delta_warm_total = %v, want 1", v)
	}

	// The same delta against the base's graph HASH addresses the same
	// content: cache hit, byte-identical assignment.
	first := assignment(t, ts, m2["job_id"].(string))
	code, m3, dv3 := submitDelta(t, ts, "k=4&seed=42&iters=40&base="+baseHash+"&wait=true", smallDelta(t, g))
	if code != http.StatusOK {
		t.Fatalf("hash-addressed delta: %d %v", code, m3)
	}
	if m3["cache"] != "hit" {
		t.Fatalf("repeat delta should hit the result cache, got %v", m3["cache"])
	}
	if dv3["mode"] != "warm" {
		t.Fatalf("repeat delta mode = %v", dv3["mode"])
	}
	if !bytes.Equal(first, assignment(t, ts, m3["job_id"].(string))) {
		t.Fatal("repeat delta returned a different assignment")
	}
}

// TestDeltaWarmDiffersFromColdKey: a warm-started solve follows a different
// trajectory than a cold solve of the identical graph+options, so the two
// must occupy distinct cache entries — submitting the materialized graph in
// full must NOT serve the warm delta's cached result.
func TestDeltaWarmDiffersFromColdKey(t *testing.T) {
	g, body := testGraph(t, 17)
	_, ts := startServer(t, Config{Workers: 2})

	code, m := submit(t, ts, "k=2&seed=9&iters=40&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d", code)
	}
	code, m2, dv := submitDelta(t, ts, "k=2&seed=9&iters=40&wait=true&base="+m["job_id"].(string), smallDelta(t, g))
	if code != http.StatusOK || dv["mode"] != "warm" {
		t.Fatalf("delta: %d %v", code, m2)
	}

	// Rebuild the materialized graph client-side and submit it in full.
	d, err := mdbgp.ParseEdgeDelta(bytes.NewReader(smallDelta(t, g)), 0)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := mdbgp.ApplyEdgeDelta(g, d)
	var buf bytes.Buffer
	if err := mdbgp.WriteEdgeList(&buf, target); err != nil {
		t.Fatal(err)
	}
	code, m3 := submit(t, ts, "k=2&seed=9&iters=40&wait=true", buf.Bytes())
	if code != http.StatusOK {
		t.Fatalf("full target submit: %d", code)
	}
	if m3["graph_hash"] != m2["graph_hash"] {
		t.Fatalf("full submit and delta materialized different graphs: %v vs %v", m3["graph_hash"], m2["graph_hash"])
	}
	if m3["cache"] != "miss" {
		t.Fatalf("cold solve of the target must not reuse the warm entry, got cache=%v", m3["cache"])
	}
	if m3["key"] == m2["key"] {
		t.Fatal("warm and cold solves of the same graph share a content key")
	}
}

// TestDeltaEvictedBaseSolutionDegradesToCold is the regression test for the
// eviction fix: when memory pressure evicts the base's SOLUTION from the
// result cache (the base graph itself is still cached), a delta submission
// must degrade to a cold solve of the materialized graph — never a 500.
func TestDeltaEvictedBaseSolutionDegradesToCold(t *testing.T) {
	g, body := testGraph(t, 27)
	// CacheEntries=1: the second solve evicts the first's result.
	_, ts := startServer(t, Config{Workers: 1, CacheEntries: 1})

	code, m := submit(t, ts, "k=2&seed=5&iters=30&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d", code)
	}
	baseHash := m["graph_hash"].(string)

	// A different solve of another graph evicts the base's result.
	g2, body2 := testGraph(t, 28)
	_ = g2
	if code, _ := submit(t, ts, "k=2&seed=5&iters=30&wait=true", body2); code != http.StatusOK {
		t.Fatalf("evictor: %d", code)
	}

	code, m2, dv := submitDelta(t, ts, "k=2&seed=5&iters=30&wait=true&base="+baseHash, smallDelta(t, g))
	if code != http.StatusOK || m2["status"] != "done" {
		t.Fatalf("delta against evicted solution: %d %v", code, m2)
	}
	if dv["mode"] != "cold" {
		t.Fatalf("mode = %v, want cold", dv["mode"])
	}
	if !strings.Contains(dv["cold_reason"].(string), "not cached") {
		t.Fatalf("cold_reason = %v", dv["cold_reason"])
	}
	if v := metric(t, ts, "mdbgpd_delta_cold_total"); v != 1 {
		t.Fatalf("delta_cold_total = %v, want 1", v)
	}
	if v := metric(t, ts, "mdbgpd_jobs_failed_total"); v != 0 {
		t.Fatalf("jobs_failed_total = %v, want 0", v)
	}
}

// TestDeltaEvictedBaseGraphIsClientError: when the base GRAPH itself has
// been evicted there is nothing to apply the delta to; the client gets a
// clean 410 telling it to resubmit the full graph — never a 500.
func TestDeltaEvictedBaseGraphIsClientError(t *testing.T) {
	g, body := testGraph(t, 37)
	_, ts := startServer(t, Config{Workers: 1, GraphCacheEntries: 1})

	code, m := submit(t, ts, "k=2&seed=5&iters=30&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d", code)
	}
	// Another graph evicts the base from the 1-entry graph cache.
	_, body2 := testGraph(t, 38)
	if code, _ := submit(t, ts, "k=2&seed=5&iters=30&wait=true", body2); code != http.StatusOK {
		t.Fatalf("evictor: %d", code)
	}

	code, m2, _ := submitDelta(t, ts, "k=2&seed=5&iters=30&base="+m["job_id"].(string), smallDelta(t, g))
	if code != http.StatusGone {
		t.Fatalf("delta against evicted base graph: %d %v, want 410", code, m2)
	}
	if v := metric(t, ts, "mdbgpd_delta_base_misses_total"); v != 1 {
		t.Fatalf("base_misses_total = %v, want 1", v)
	}
	if v := metric(t, ts, "mdbgpd_graph_cache_evictions_total"); v < 1 {
		t.Fatalf("graph_cache_evictions_total = %v, want >= 1", v)
	}
}

// TestDeltaChurnThresholdForcesCold: a delta rewriting most of the graph is
// past the point where the base solution helps; the server must solve cold.
func TestDeltaChurnThresholdForcesCold(t *testing.T) {
	g, body := testGraph(t, 47)
	_, ts := startServer(t, Config{Workers: 1, MaxChurn: 0.01})

	code, m := submit(t, ts, "k=2&seed=3&iters=30&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d", code)
	}
	// Remove every 10th edge: ~10% churn against a 1% threshold.
	var buf bytes.Buffer
	i := 0
	g.EachEdge(func(u, v int) bool {
		if i%10 == 0 {
			fmt.Fprintf(&buf, "-%d %d\n", u, v)
		}
		i++
		return true
	})
	code, m2, dv := submitDelta(t, ts, "k=2&seed=3&iters=30&wait=true&base="+m["job_id"].(string), buf.Bytes())
	if code != http.StatusOK || m2["status"] != "done" {
		t.Fatalf("big delta: %d %v", code, m2)
	}
	if dv["mode"] != "cold" || !strings.Contains(dv["cold_reason"].(string), "churn") {
		t.Fatalf("mode=%v reason=%v, want cold/churn", dv["mode"], dv["cold_reason"])
	}
}

// TestDeltaChaining: a delta whose base is itself a (warm-solved) delta job
// still warm-starts, via the retained base job's result.
func TestDeltaChaining(t *testing.T) {
	g, body := testGraph(t, 57)
	_, ts := startServer(t, Config{Workers: 1})

	code, m := submit(t, ts, "k=4&seed=11&iters=40&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d", code)
	}
	code, m2, dv2 := submitDelta(t, ts, "k=4&seed=11&iters=40&wait=true&base="+m["job_id"].(string), smallDelta(t, g))
	if code != http.StatusOK || dv2["mode"] != "warm" {
		t.Fatalf("first delta: %d %v", code, m2)
	}
	// Second delta against the first delta's job: its result is keyed with
	// a warm fingerprint, so this exercises the job-result fallback.
	code, m3, dv3 := submitDelta(t, ts, "k=4&seed=11&iters=40&wait=true&base="+m2["job_id"].(string), []byte("+1 5\n+2 9\n"))
	if code != http.StatusOK || m3["status"] != "done" {
		t.Fatalf("chained delta: %d %v", code, m3)
	}
	if dv3["mode"] != "warm" {
		t.Fatalf("chained delta mode = %v, want warm (%v)", dv3["mode"], dv3)
	}
}

// TestDeltaCoalescedKeepsDeltaMetadata: a delta submission that coalesces
// onto an identical in-flight job must still report its own delta
// resolution (mode, churn, cold_reason) in the submit response — the
// in-flight job's view has no delta to fall back on.
func TestDeltaCoalescedKeepsDeltaMetadata(t *testing.T) {
	g, body := testGraph(t, 87)
	// MaxChurn < 0 forces every delta cold, so no base solution is needed
	// and two identical deltas share a content key with no warm component.
	_, ts, entered, release := blockingServer(t, Config{Workers: 1, QueueDepth: 4, MaxChurn: -1})

	code, m := submit(t, ts, "seed=5", body)
	if code != http.StatusAccepted {
		t.Fatalf("base submit: %d", code)
	}
	<-entered // base occupies the only worker; its graph is already cached

	delta := smallDelta(t, g)
	code, m2, dv2 := submitDelta(t, ts, "seed=5&base="+m["job_id"].(string), delta)
	if code != http.StatusAccepted {
		t.Fatalf("first delta: %d %v", code, m2)
	}
	if dv2 == nil || dv2["mode"] != "cold" {
		t.Fatalf("first delta resolution: %v", dv2)
	}

	code, m3, dv3 := submitDelta(t, ts, "seed=5&base="+m["job_id"].(string), delta)
	if code != http.StatusAccepted || m3["job_id"] != m2["job_id"] {
		t.Fatalf("second delta should coalesce onto %v: %d %v", m2["job_id"], code, m3)
	}
	if dv3 == nil || dv3["mode"] != "cold" || dv3["cold_reason"] == "" {
		t.Fatalf("coalesced delta response lost its delta metadata: %v", m3)
	}
	if v := metric(t, ts, "mdbgpd_delta_cold_total"); v != 2 {
		t.Fatalf("delta_cold_total = %v, want 2 (both submissions dispatched)", v)
	}

	close(release)
	pollDone(t, ts, m2["job_id"].(string))
}

func TestDeltaErrorPaths(t *testing.T) {
	g, body := testGraph(t, 67)
	_, ts := startServer(t, Config{Workers: 1, MaxVertexID: 1 << 20})

	code, m := submit(t, ts, "k=2&seed=1&iters=20&wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("base: %d", code)
	}
	baseID := m["job_id"].(string)

	post := func(query string, body []byte) int {
		code, _, _ := submitDelta(t, ts, query, body)
		return code
	}
	if got := post("base=nope", smallDelta(t, g)); got != http.StatusNotFound {
		t.Errorf("unknown base: %d, want 404", got)
	}
	if got := post("base="+strings.Repeat("ab", 32), smallDelta(t, g)); got != http.StatusGone {
		t.Errorf("well-formed but uncached hash: %d, want 410", got)
	}
	if got := post("base="+baseID, []byte("1 2\n")); got != http.StatusBadRequest {
		t.Errorf("unsigned delta line: %d, want 400", got)
	}
	if got := post("base="+baseID, []byte("+1 9999999\n")); got != http.StatusBadRequest {
		t.Errorf("delta id above bound: %d, want 400", got)
	}
	// A delta that removes every edge leaves nothing to partition.
	var all bytes.Buffer
	g.EachEdge(func(u, v int) bool { fmt.Fprintf(&all, "-%d %d\n", u, v); return true })
	if got := post("base="+baseID, all.Bytes()); got != http.StatusBadRequest {
		t.Errorf("empty result graph: %d, want 400", got)
	}
}

// TestDeltaWarmDeterminism: same base, same delta, same seed — byte-identical
// assignments across server parallelism, the serving-level warm determinism
// contract.
func TestDeltaWarmDeterminism(t *testing.T) {
	g, body := testGraph(t, 77)
	delta := smallDelta(t, g)
	var golden []byte
	for _, p := range []int{1, 2, 8} {
		_, ts := startServer(t, Config{Workers: p, Parallelism: p})
		code, m := submit(t, ts, "k=4&seed=21&iters=40&wait=true", body)
		if code != http.StatusOK {
			t.Fatalf("p=%d base: %d", p, code)
		}
		code, m2, dv := submitDelta(t, ts, "k=4&seed=21&iters=40&wait=true&base="+m["job_id"].(string), delta)
		if code != http.StatusOK || dv["mode"] != "warm" {
			t.Fatalf("p=%d delta: %d %v", p, code, m2)
		}
		a := assignment(t, ts, m2["job_id"].(string))
		if golden == nil {
			golden = a
		} else if !bytes.Equal(golden, a) {
			t.Fatalf("p=%d: warm delta assignment diverged", p)
		}
	}
}

func TestGraphCache(t *testing.T) {
	c := newGraphCache(2)
	g1, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{N: 50, Communities: 2, AvgDegree: 4, Seed: 1})
	g2, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{N: 60, Communities: 2, AvgDegree: 4, Seed: 2})
	g3, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{N: 70, Communities: 2, AvgDegree: 4, Seed: 3})

	if ev := c.put(g1.HashString(), g1); ev != 0 {
		t.Fatalf("evicted %d on first insert", ev)
	}
	c.put(g2.HashString(), g2)
	// Touch g1 so g2 is the LRU victim.
	if _, ok := c.get(g1.HashString()); !ok {
		t.Fatal("g1 missing")
	}
	if ev := c.put(g3.HashString(), g3); ev != 1 {
		t.Fatalf("expected one eviction, got %d", ev)
	}
	if _, ok := c.get(g2.HashString()); ok {
		t.Fatal("g2 should have been evicted (LRU)")
	}
	if _, ok := c.get(g1.HashString()); !ok {
		t.Fatal("g1 lost")
	}
	entries, bytes := c.stats()
	if entries != 2 || bytes <= 0 {
		t.Fatalf("stats = %d entries / %d bytes", entries, bytes)
	}
	// Re-putting a present hash only refreshes recency.
	before := bytes
	c.put(g1.HashString(), g1)
	if _, after := c.stats(); after != before {
		t.Fatalf("refresh changed byte accounting: %d -> %d", before, after)
	}
	// Disabled cache accepts nothing.
	d := newGraphCache(-1)
	d.put(g1.HashString(), g1)
	if n, _ := d.stats(); n != 0 {
		t.Fatal("disabled graph cache retained an entry")
	}
}

// TestDeltaPoisonedWarmBase400: a resolved warm assignment carrying a part
// id outside [0, K) — a corrupted retained result, or a prior from a
// different K — must be rejected with a 400 at submit time, not dispatched
// into a failed job (or surfaced as a 500).
func TestDeltaPoisonedWarmBase400(t *testing.T) {
	g, body := testGraph(t, 23)
	srv, ts := startServer(t, Config{Workers: 2})

	code, m := submit(t, ts, "k=4&seed=1&iters=30&wait=true", body)
	if code != http.StatusOK || m["status"] != "done" {
		t.Fatalf("base submit: %d %v", code, m)
	}
	baseID := m["job_id"].(string)

	// Poison the retained result in place (the result cache and the job
	// share the same *Result, so both warm-resolution paths see it).
	srv.mu.Lock()
	j := srv.jobs[baseID]
	srv.mu.Unlock()
	j.mu.Lock()
	j.res.Assignment.Parts[0] = 99 // >= K: not a usable prior
	j.mu.Unlock()

	code, m2, _ := submitDelta(t, ts, "k=4&seed=1&iters=30&wait=true&base="+baseID, smallDelta(t, g))
	if code != http.StatusBadRequest {
		t.Fatalf("poisoned warm base: status %d (%v), want 400", code, m2)
	}
	msg, _ := m2["error"].(string)
	if !strings.Contains(msg, "warm") || !strings.Contains(msg, "99") {
		t.Fatalf("error %q should name the warm assignment and the bad part id", msg)
	}
}
