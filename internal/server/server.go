// Package server implements partitioning-as-a-service: a long-running HTTP
// daemon (cmd/mdbgpd) wrapping the mdbgp engine with a bounded asynchronous
// job queue, a configurable worker pool, and a content-addressed LRU result
// cache.
//
// The API is deliberately small:
//
//	POST /v1/partition            submit an edge list (text body) + options
//	                              (query params, including ?engine= to pick
//	                              any registered solver); returns a job id.
//	                              200 on a cache hit, 202 when queued, 429
//	                              when the queue is saturated, 400 on an
//	                              unknown engine, 422 when the named engine
//	                              cannot balance an explicit dims= request.
//	POST /v1/partition?base=...   submit an edge DELTA ("+u v"/"-u v" lines)
//	                              against a previous job id or graph hash;
//	                              the server materializes the updated graph
//	                              from its base-graph cache and warm-starts
//	                              GD from the base's cached solution (cold
//	                              solve when the solution was evicted or the
//	                              churn exceeds Config.MaxChurn).
//	GET  /v1/jobs/{id}            poll a job: status, quality metrics, timings
//	GET  /v1/jobs/{id}/assignment the partition as "vertex part" text lines
//	GET  /v1/jobs/{id}/trace      the request's span tree as JSON: ingest,
//	                              cache lookup, queue wait, and the solve's
//	                              internal phases (coarsening levels, per-
//	                              bisection GD with convergence telemetry,
//	                              rounding)
//	GET  /healthz                 liveness + queue summary (503 only once the
//	                              server is closed)
//	GET  /readyz                  readiness: 503 while draining for shutdown,
//	                              so load balancers stop routing before the
//	                              listener goes away
//	GET  /metrics                 Prometheus text exposition
//
// Requests are content-addressed: the edge-list body is streamed into the
// canonical CSR builder and hashed, options are canonicalized and
// fingerprinted (mdbgp.Options.Fingerprint), and the pair keys the result
// cache. Repeat and near-duplicate traffic — reordered edge lists, duplicate
// edges, explicitly spelled-out defaults, any Parallelism — is served from
// the cache without re-solving; identical requests already in flight are
// coalesced onto the same job. Results are deterministic for a fixed seed
// at any worker count, so cached and freshly solved responses are
// byte-identical.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdbgp"
	"mdbgp/internal/cachestore"
	"mdbgp/internal/obs"
	"mdbgp/internal/prep"
	"mdbgp/internal/wire"
)

// Config tunes the daemon. The zero value serves with sensible defaults.
type Config struct {
	// Workers is the number of goroutines draining the job queue, i.e. how
	// many partitions are solved concurrently (0 = 2).
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it get
	// 429 (0 = 64).
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity in entries (0 = 256,
	// negative disables caching).
	CacheEntries int
	// MaxBodyBytes caps the request body (0 = 256 MiB).
	MaxBodyBytes int64
	// MaxVertexID rejects edge lists mentioning ids above this. The graph
	// is allocated densely over [0, max id], so a single line naming a huge
	// id costs memory proportional to the id regardless of body size; the
	// default (0) is 16M ids to keep one request's allocation bounded.
	// Negative lifts the bound to the representation limit (int32 ids).
	MaxVertexID int
	// Parallelism is the solver worker count per job (0 = GOMAXPROCS).
	// Results are bit-identical at any value, so it is a pure throughput
	// knob and is excluded from cache keys.
	Parallelism int
	// RetainJobs bounds the completed-job history kept for polling (0 =
	// 1024).
	RetainJobs int
	// MaxWait caps how long a ?wait=true submission blocks before falling
	// back to the async response (0 = 30s).
	MaxWait time.Duration
	// GraphCacheEntries bounds the base-graph cache delta submissions
	// (?base=...) resolve against (0 = 64, negative disables — every delta
	// then fails with "resubmit the full graph"). Graphs are much larger
	// than results, hence the separate, smaller bound.
	GraphCacheEntries int
	// MaxChurn is the effective edge-churn fraction (symmetric difference /
	// base edges) above which a delta submission is solved cold even when a
	// warm base solution is available: past it, the prior solution stops
	// being a useful prior and warm-starting only biases the solve (0 =
	// 0.25, negative forces every delta cold).
	MaxChurn float64
	// MaxChainDepth bounds how many warm hops a delta-of-a-delta chain may
	// accumulate before the server forces a cold re-solve: each warm start
	// re-polishes the previous solution, and past a depth the accumulated
	// drift deserves a fresh solve more than it deserves another polish.
	// A cold solve (forced or otherwise) resets the chain to depth zero
	// (0 = 8, negative disables the limit).
	MaxChainDepth int
	// PrepCacheBytes budgets the prep-artifact cache: reorder layouts and
	// coarsening hierarchies built for one solve are retained (keyed by graph
	// hash, artifact kind and parameters) and injected into later solves of
	// the same graph, which skip the rebuild. Injection never changes
	// results — a cached-prep solve is byte-identical to a rebuilt-prep
	// solve, and the artifacts stay out of option fingerprints — so this is
	// purely a latency/CPU-for-memory trade (0 = 256 MiB, negative
	// disables).
	PrepCacheBytes int64
	// Reorder is the vertex-reordering pass applied to the gradient kernels
	// of submissions that do not pass ?reorder= themselves ("" = none; see
	// mdbgp.ReorderNames). Reordering never changes results — it is a
	// throughput default the operator picks for the fleet — but it is part
	// of the options fingerprint, so flipping it starts a fresh cache
	// generation.
	Reorder string
	// Logger receives structured request/job logs (nil = discard). Every
	// record carries the job id, so a log line joins against the polling API
	// and the trace endpoint.
	Logger *slog.Logger
	// SlowRequest is the solve-duration threshold above which a completed job
	// is logged at Warn instead of Info (0 = 2s, negative disables slow-solve
	// warnings).
	SlowRequest time.Duration
	// DisableTracing turns off the per-request span trees (and with them
	// GET /v1/jobs/{id}/trace). Tracing is cheap by construction — the solver
	// samples convergence in O(n) on a fixed stride — so it defaults to on;
	// the traced and untraced configurations share cache entries either way
	// because the observer is excluded from option fingerprints.
	DisableTracing bool
	// CacheDir, when non-empty, enables the durable disk tier of the result
	// cache (internal/cachestore): completed results spill write-behind to
	// one checksummed file per cache key, misses read through to disk lazily,
	// and GET /v1/cache/{key} serves entries to warming peers. Results are
	// deterministic and keys carry EngineVersion, so entries survive restarts
	// and algorithm upgrades invalidate cleanly. Empty disables the tier
	// (memory-only, the previous behavior).
	CacheDir string
	// TrustHashHeader accepts the X-Mdbgp-Graph-Hash request header as the
	// canonical graph hash on full submissions, skipping the server's own
	// hash pass — the routing tier (cmd/mdbgp-router) computes the hash once
	// at the edge to pick the replica and forwards it. Enable ONLY behind a
	// trusted router: a lying client could poison the content-addressed cache.
	TrustHashHeader bool
	// MaxResidentEdges is the largest graph (in undirected edges) the server
	// will materialize as an in-memory CSR (0 = unlimited). Binary wire-format
	// submissions above the budget take the out-of-core path: the stream is
	// validated and spilled to SpillDir, then solved by a streaming engine
	// that re-reads the spill once per pass. Text submissions above the budget
	// are rejected with 413 and pointed at the binary codec (the text parser
	// cannot bound memory without first materializing the graph).
	MaxResidentEdges int64
	// SpillDir is where out-of-core submissions park their validated wire
	// streams between ingest and solve ("" = os.TempDir()). Spills are
	// transient — one job each, removed when the job finishes — but the
	// directory should have room for MaxBodyBytes-sized files.
	SpillDir string
}

// GraphHashHeader is the request header the routing tier uses to forward the
// canonical graph hash it computed at the edge (see Config.TrustHashHeader).
const GraphHashHeader = "X-Mdbgp-Graph-Hash"

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxVertexID == 0 {
		c.MaxVertexID = 1 << 24
	}
	// Negative means "representation limit": pass 0 through to the reader,
	// which clamps to graph.MaxVertexID.
	if c.MaxVertexID < 0 {
		c.MaxVertexID = 0
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.GraphCacheEntries == 0 {
		c.GraphCacheEntries = 64
	}
	if c.MaxChurn == 0 {
		c.MaxChurn = 0.25
	}
	if c.MaxChainDepth == 0 {
		c.MaxChainDepth = 8
	}
	if c.PrepCacheBytes == 0 {
		c.PrepCacheBytes = 256 << 20
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = 2 * time.Second
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	return c
}

// Server is the partitioning service. Create with New, serve via ServeHTTP
// (it implements http.Handler), stop with Close.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	queue    chan *job
	quit     chan struct{}
	wg       sync.WaitGroup
	down     atomic.Bool
	draining atomic.Bool // readiness only: /readyz says 503, everything still serves
	log      *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // content key -> queued/running job, for coalescing
	// doneOrder is the completed-job retention window, oldest first, with a
	// consumed head prefix: retire appends at the tail and advances doneHead
	// past evicted ids instead of re-slicing (doneOrder[1:] would pin an
	// ever-growing backing array under sustained traffic), compacting the
	// array in place once the dead prefix dominates.
	doneOrder []string
	doneHead  int

	cache  *resultCache
	graphs *graphCache
	preps  *prep.Cache       // prepared layouts/hierarchies, keyed per graph
	disk   *cachestore.Store // durable tier; nil when Config.CacheDir is empty
	met    metrics
	seq    atomic.Int64
	start  time.Time

	// solve replaces defaultSolve when non-nil — a test seam for
	// deterministic backpressure/coalescing tests. Set before startWorkers.
	solve func(g *mdbgp.Graph, dims []mdbgp.Weight, opts mdbgp.Options) (*mdbgp.Result, error)
}

// New starts a server with cfg's worker pool running.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.startWorkers()
	return s
}

func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newResultCache(cfg.CacheEntries),
		graphs:   newGraphCache(cfg.GraphCacheEntries),
		preps:    prep.New(cfg.PrepCacheBytes),
		start:    time.Now(),
		log:      cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if cfg.CacheDir != "" {
		disk, err := cachestore.Open(cfg.CacheDir)
		if err != nil {
			// A broken cache dir degrades to memory-only serving rather than
			// refusing to boot: durability is an optimization, correctness is
			// not at stake. The daemon front end validates the flag up front
			// so operators still get a fail-fast on typos.
			s.log.Error("disk cache tier disabled", slog.String("dir", cfg.CacheDir), slog.String("error", err.Error()))
		} else {
			s.disk = disk
		}
	}
	s.met.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/partition", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/assignment", s.handleAssignment)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheIndex)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheEntry)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// SetDraining flips the readiness signal: while draining, GET /readyz
// answers 503 so load balancers pull the instance, but submissions, polls and
// scrapes keep working — the daemon uses it to bleed traffic before the
// listener shuts down.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Config returns the effective configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.httpRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool (in-flight solves complete) and fails any
// still-queued jobs so their waiters are released. Subsequent submissions
// get 503.
func (s *Server) Close() {
	if s.down.Swap(true) {
		return
	}
	// Barrier: every enqueue happens under s.mu with a down re-check, so
	// once this lock is acquired no further job can enter the queue — the
	// drain below cannot race with a late submission.
	s.mu.Lock()
	s.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(s.quit)
	s.wg.Wait()
drain:
	for {
		select {
		case j := <-s.queue:
			s.finishJob(j, nil, errors.New("server shutting down"))
		default:
			break drain
		}
	}
	// After the drain no worker can spill another result; flush the
	// write-behind queue so everything solved before shutdown survives it.
	if s.disk != nil {
		s.disk.Close()
	}
}

// submitRequest is the parsed form of POST /v1/partition.
type submitRequest struct {
	opts         mdbgp.Options
	engine       mdbgp.EngineInfo // resolved capabilities of opts.Engine
	dims         []mdbgp.Weight
	dimNames     string
	dimsExplicit bool // the client passed dims= rather than taking the default
	wait         bool
	base         string // job id or graph hash; non-empty marks a delta submission
}

var allowedParams = map[string]bool{
	"k": true, "eps": true, "dims": true, "iters": true, "step": true,
	"projection": true, "seed": true, "engine": true, "multilevel": true,
	"coarsento": true, "clustersize": true, "refineiters": true,
	"reorder": true, "incgrad": true, "resync": true, "kernel32": true,
	"wait": true, "base": true,
}

func parseSubmit(r *http.Request) (submitRequest, error) {
	q := r.URL.Query()
	for k := range q {
		if !allowedParams[k] {
			return submitRequest{}, fmt.Errorf("unknown query parameter %q", k)
		}
	}
	var req submitRequest
	intParam := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s=%q: %v", name, v, err)
			}
			*dst = n
		}
		return nil
	}
	if err := intParam("k", &req.opts.K); err != nil {
		return req, err
	}
	if req.opts.K < 0 || req.opts.K > 1<<20 {
		return req, fmt.Errorf("k=%d out of range", req.opts.K)
	}
	if v := q.Get("eps"); v != "" {
		// eps=0 is rejected rather than accepted-and-ignored: the engine
		// treats Epsilon<=0 as "use the 5% default", which is not what a
		// client asking for exact balance means.
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || eps <= 0 || eps >= 1 {
			return req, fmt.Errorf("bad eps=%q (want a float in (0,1))", v)
		}
		req.opts.Epsilon = eps
	}
	if err := intParam("iters", &req.opts.Iterations); err != nil {
		return req, err
	}
	if v := q.Get("step"); v != "" {
		st, err := strconv.ParseFloat(v, 64)
		if err != nil || st <= 0 {
			return req, fmt.Errorf("bad step=%q", v)
		}
		req.opts.StepLength = st
	}
	req.opts.Projection = q.Get("projection")
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("bad seed=%q: %v", v, err)
		}
		req.opts.Seed = seed
	}
	boolParam := func(name string, dst *bool) error {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("bad %s=%q: %v", name, v, err)
			}
			*dst = b
		}
		return nil
	}
	req.opts.Engine = q.Get("engine")
	if err := boolParam("multilevel", &req.opts.Multilevel); err != nil {
		return req, err
	}
	// multilevel= is the deprecated alias for engine=multilevel; a request
	// naming both with different meanings is contradictory, and silently
	// letting one win would surprise whichever client loses.
	if req.opts.Multilevel && req.opts.Engine != "" && req.opts.Engine != "multilevel" {
		return req, fmt.Errorf("conflicting engine=%s and multilevel=true (multilevel is an alias for engine=multilevel)", req.opts.Engine)
	}
	eng, err := mdbgp.LookupEngine(req.opts.Canonical().Engine)
	if err != nil {
		return req, err // unknown engine: the error lists the known names
	}
	req.engine = eng.Info()
	if err := intParam("coarsento", &req.opts.CoarsenTo); err != nil {
		return req, err
	}
	if err := intParam("clustersize", &req.opts.ClusterSize); err != nil {
		return req, err
	}
	if err := intParam("refineiters", &req.opts.RefineIterations); err != nil {
		return req, err
	}
	if err := boolParam("wait", &req.wait); err != nil {
		return req, err
	}
	req.opts.Reorder = q.Get("reorder")
	if err := mdbgp.ValidateReorder(req.opts.Reorder); err != nil {
		return req, err
	}
	if err := boolParam("incgrad", &req.opts.IncrementalGradient); err != nil {
		return req, err
	}
	if err := intParam("resync", &req.opts.ResyncEvery); err != nil {
		return req, err
	}
	if req.opts.ResyncEvery < 0 {
		return req, fmt.Errorf("resync=%d out of range (want >= 0; 0 selects the default)", req.opts.ResyncEvery)
	}
	if err := boolParam("kernel32", &req.opts.Kernel32); err != nil {
		return req, err
	}
	// kernel32 is validated at submit time for the same reason projection is:
	// the engine would refuse it anyway (it is fingerprinted, so an ignored
	// flag would split cache keys between byte-identical results), and a 400
	// here beats a failed job later.
	if req.opts.Kernel32 {
		if !req.engine.Kernel32 {
			return req, fmt.Errorf("engine %q does not support kernel32 (float32 gradient kernels); use a gradient engine", req.engine.Name)
		}
		if req.opts.IncrementalGradient {
			return req, fmt.Errorf("kernel32 and incgrad are mutually exclusive (incremental updates assume the float64 kernels)")
		}
	}
	req.base = q.Get("base")
	req.dimsExplicit = q.Get("dims") != ""
	dims, names, err := mdbgp.ParseWeightDims(q.Get("dims"))
	if err != nil {
		return req, err
	}
	req.dims, req.dimNames = dims, names
	// Validate the projection name at submit time so typos fail fast with a
	// 400 instead of a failed job.
	if err := mdbgp.ValidateProjection(req.opts.Projection); err != nil {
		return req, err
	}
	return req, nil
}

// cacheKey is the content address of a request: the engine generation (so a
// persistent or shared cache can never serve results across algorithm
// changes), the canonical graph hash, the balance dimensions (order matters
// — projections visit them in order), and the canonicalized options
// fingerprint. The fingerprint covers the warm assignment when one is set:
// a warm-started solve follows a different trajectory than a cold one, so
// the two must never share an entry.
func cacheKey(graphHash, dimNames string, opts mdbgp.Options) string {
	return mdbgp.EngineVersion + ":" + graphHash + ":" + dimNames + ":" + opts.Fingerprint()
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.down.Load() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	req, err := parseSubmit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The operator's fleet-wide reordering default applies only when the
	// client has no opinion; an explicit ?reorder= (including "none") wins.
	if req.opts.Reorder == "" {
		req.opts.Reorder = s.cfg.Reorder
	}
	// Capability gate: an engine without weighted support balances a fixed
	// built-in dimension and cannot honor an explicit dims= request — that
	// is a semantic mismatch (422), not a syntax error. Requests that merely
	// take the default dims still work: the engine solves on its own terms
	// and the job reports how the default dimensions came out.
	if req.dimsExplicit && !req.engine.Weighted {
		httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf(
			"engine %q cannot balance requested dims=%s (it balances a fixed built-in dimension); drop dims or pick a weighted engine",
			req.engine.Name, req.dimNames))
		return
	}
	// Codec negotiation: Content-Type application/x-mdbgp-csr selects the
	// binary wire format (docs/WIRE_FORMAT.md); anything else is the text
	// edge-list codec, the historical default.
	binary := wire.IsContentType(r.Header.Get("Content-Type"))
	if req.base != "" {
		if binary {
			// Deltas are line-oriented "+u v"/"-u v" edits; the wire format
			// carries whole adjacency structures. Mixing them has no defined
			// semantics, so fail loudly rather than misparse.
			httpError(w, http.StatusBadRequest, "binary edge deltas are not supported: ?base= takes the text \"+u v\"/\"-u v\" codec only")
			return
		}
		s.handleDeltaSubmit(w, r, req)
		return
	}

	root := s.newRequestTrace()
	ingSpan := root.Start("ingest")
	ingestStart := time.Now()
	var ing *ingestInfo
	if binary {
		if ing = s.ingestBinary(w, r, &req); ing == nil {
			root.End() // error response already written; leave no dangling span
			return
		}
	} else if ing = s.ingestText(w, r); ing == nil {
		root.End()
		return
	}
	s.met.recordIngest(time.Since(ingestStart))
	if ingSpan != nil {
		ingSpan.SetAttr("n", ing.n)
		ingSpan.SetAttr("m", ing.m)
		ingSpan.SetAttr("mode", ing.mode)
		ingSpan.End()
	}
	s.dispatch(w, r, req, ing, req.opts.Canonical(), nil, root)
}

// ingestText is the text edge-list codec: stream "u v" lines into the
// canonical CSR builder. On error it writes the HTTP response and returns
// nil. The resident-edge budget applies here too, but as policy rather than
// protection — the text parser must materialize the graph before it knows
// the edge count, so memory during parse is bounded by MaxBodyBytes, not by
// the budget. Clients with genuinely large graphs are pointed at the binary
// codec, whose header announces the size up front.
func (s *Server) ingestText(w http.ResponseWriter, r *http.Request) *ingestInfo {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	b := mdbgp.NewBuilder(0)
	if err := mdbgp.ReadEdgeListInto(b, body, s.cfg.MaxVertexID); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return nil
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	g := b.Build()
	if g.N() == 0 || g.M() == 0 {
		httpError(w, http.StatusBadRequest, "empty graph: body must contain at least one 'u v' edge line")
		return nil
	}
	if s.cfg.MaxResidentEdges > 0 && g.M() > s.cfg.MaxResidentEdges {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf(
			"graph has %d edges, above the resident budget of %d; submit in binary wire format (Content-Type: %s) for out-of-core solving",
			g.M(), s.cfg.MaxResidentEdges, wire.ContentType))
		return nil
	}
	// Hashing is part of the ingest cost — unless a trusted router already
	// paid it at the edge and forwarded the result. A malformed header falls
	// back to hashing locally rather than erroring: the header is an
	// optimization hint, never load-bearing for correctness.
	hash := ""
	if s.cfg.TrustHashHeader {
		hash = normalizeHash(r.Header.Get(GraphHashHeader))
	}
	if hash == "" {
		hash = g.HashString()
	}
	return &ingestInfo{g: g, n: g.N(), m: g.M(), hash: hash, mode: ingestModeResident}
}

// newRequestTrace opens the root span of one submission, or nil (a no-op
// observer all the way down) when tracing is off.
func (s *Server) newRequestTrace() *obs.Span {
	if s.cfg.DisableTracing {
		return nil
	}
	return obs.NewTrace("request")
}

// handleDeltaSubmit is the incremental path: the body is an edge delta
// against ?base= (a retained job id or a canonical graph hash), the target
// graph is materialized from the base-graph cache, and the solve warm-starts
// from the base's cached solution when one is available and the churn is
// within bounds — otherwise it degrades to a cold solve of the materialized
// graph. Only a missing base GRAPH is an error (there is nothing to apply
// the delta to); a missing base SOLUTION never is.
func (s *Server) handleDeltaSubmit(w http.ResponseWriter, r *http.Request, req submitRequest) {
	root := s.newRequestTrace()
	ingSpan := root.Start("ingest")
	ingestStart := time.Now()
	s.met.deltaSubmitted.Add(1)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	d, err := mdbgp.ParseEdgeDelta(body, s.cfg.MaxVertexID)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	baseHash, baseJob := s.resolveBase(req.base)
	if baseHash == "" {
		s.met.baseMisses.Add(1)
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown base %q: not a retained job id or a known graph hash; resubmit the full graph", req.base))
		return
	}
	baseG, ok := s.graphs.get(baseHash)
	if !ok {
		s.met.baseMisses.Add(1)
		httpError(w, http.StatusGone, fmt.Sprintf("base graph %s is no longer cached; resubmit the full graph", baseHash[:8]))
		return
	}
	g, stats := mdbgp.ApplyEdgeDelta(baseG, d)
	if g.N() == 0 || g.M() == 0 {
		httpError(w, http.StatusBadRequest, "delta leaves the graph empty")
		return
	}

	opts := req.opts
	dv := &deltaView{
		Base: baseHash, Churn: stats.Churn(baseG.M()),
		Added: stats.AddedNew, Removed: stats.RemovedExisting,
		NewVertices: stats.NewVertices, Mode: "cold",
	}
	// Chain depth: warm hops accumulated since the last cold solve of this
	// lineage. A base resolved by bare graph hash has no job metadata and
	// counts as depth 0.
	baseDepth := 0
	if baseJob != nil && baseJob.delta != nil {
		baseDepth = baseJob.delta.ChainDepth
	}
	switch {
	case !req.engine.WarmStart:
		// Capability-degraded, not an error: the delta still names a valid
		// target graph, the engine just cannot use the prior solution.
		dv.ColdReason = "engine lacks warm-start capability"
	case dv.Churn > s.cfg.MaxChurn:
		dv.ColdReason = "churn above threshold"
	case s.cfg.MaxChainDepth > 0 && baseDepth+1 > s.cfg.MaxChainDepth:
		// Past the depth limit the accumulated warm-start drift deserves a
		// fresh solve; going cold also resets the chain to depth 0, so the
		// NEXT delta of this lineage warm-starts again.
		dv.ColdReason = coldReasonChainDepth
	default:
		if warm := s.resolveWarm(baseHash, baseJob, req); warm != nil {
			// Validate the prior assignment BEFORE dispatch: a part id
			// outside [0, K) (a base solved under a different K, or a
			// corrupted retained result) is a client-visible 400 here, not a
			// failed job — and certainly not a 500.
			if err := mdbgp.ValidateWarmAssignment(warm, g.N(), req.opts.Canonical().K); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("base %q is not a usable warm start: %v", req.base, err))
				return
			}
			opts.WarmAssignment = warm
			dv.Mode = "warm"
			dv.ChainDepth = baseDepth + 1
		} else {
			dv.ColdReason = "base solution not cached"
		}
	}
	hash := g.HashString() // hashing is part of the ingest cost
	s.met.recordIngest(time.Since(ingestStart))
	if ingSpan != nil {
		ingSpan.SetAttr("n", g.N())
		ingSpan.SetAttr("m", g.M())
		ingSpan.SetAttr("delta_mode", dv.Mode)
		ingSpan.End()
	}
	s.dispatch(w, r, req, &ingestInfo{g: g, n: g.N(), m: g.M(), hash: hash, mode: ingestModeResident}, opts.Canonical(), dv, root)
}

// resolveBase maps ?base= to a canonical graph hash: a retained job id
// (preferred — it survives graph-hash ignorance on the client) or a literal
// hash string.
func (s *Server) resolveBase(base string) (string, *job) {
	s.mu.Lock()
	j := s.jobs[base]
	s.mu.Unlock()
	if j != nil {
		return j.graphHash, j
	}
	if h := normalizeHash(base); h != "" {
		return h, nil
	}
	return "", nil
}

// normalizeHash validates a client-supplied canonical graph hash, folding
// uppercase hex (a legitimate spelling of the same hash) to the lowercase form
// the server uses internally. Anything that is not 64 hex characters maps to
// "".
func normalizeHash(h string) string {
	if len(h) != 64 {
		return ""
	}
	h = strings.ToLower(h)
	if strings.Trim(h, "0123456789abcdef") != "" {
		return ""
	}
	return h
}

// resolveWarm finds a prior solution of the base graph to warm-start from:
// first the result cache under the delta request's own options (a base
// solved cold with the same configuration), then — for chained deltas,
// whose base result is keyed with its own warm fingerprint — the base job's
// retained result, provided its K matches.
// The returned slice is always a private copy: WarmAssignment travels into
// the solver's mutable working state, and handing out the cached slice by
// reference would let one request's solve scribble over another's cached
// (and supposedly immutable) result.
func (s *Server) resolveWarm(baseHash string, baseJob *job, req submitRequest) []int32 {
	if res, ok := s.lookupResult(cacheKey(baseHash, req.dimNames, req.opts.Canonical())); ok {
		return cloneParts(res.Assignment.Parts)
	}
	if baseJob != nil {
		if v := baseJob.view(); v.Status == StatusDone && v.Res != nil &&
			v.Res.Assignment.K == req.opts.Canonical().K {
			return cloneParts(v.Res.Assignment.Parts)
		}
	}
	return nil
}

// cloneParts copies an assignment out of cache ownership before a caller may
// mutate it.
func cloneParts(parts []int32) []int32 {
	return append([]int32(nil), parts...)
}

// coldReasonChainDepth marks a delta solve forced cold by the warm-chain
// depth limit — the reason countDelta's reset counter keys on.
const coldReasonChainDepth = "chain depth limit"

// countDelta records a delta submission's warm/cold outcome. It runs only
// on the dispatch paths that actually serve the request (cache hit,
// coalesce, enqueue) — a 429 rejection must not move the warm-rate needle,
// nor the chain-reset counter.
func (s *Server) countDelta(dv *deltaView) {
	if dv == nil {
		return
	}
	if dv.Mode == "warm" {
		s.met.deltaWarm.Add(1)
		return
	}
	s.met.deltaCold.Add(1)
	if dv.ColdReason == coldReasonChainDepth {
		s.met.deltaChainReset.Add(1)
	}
}

// dispatch runs the shared submit tail for full and delta submissions:
// content addressing, the base-graph cache, the result-cache fast path,
// coalescing, and the bounded enqueue.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, req submitRequest, ing *ingestInfo, opts mdbgp.Options, dv *deltaView, root *obs.Span) {
	key := cacheKey(ing.hash, req.dimNames, opts)
	if ing.mode == ingestModeOOC {
		// The out-of-core solve streams vertices in natural order while the
		// in-core fennel engine visits a seeded permutation — same graph, same
		// options, different (both valid) results. A distinct key suffix keeps
		// the two from ever serving each other's cache entries.
		key += ":ooc"
	} else {
		// Every materialized graph becomes a warm-start base for future deltas
		// (including delta-produced graphs — that is what makes chains work).
		// Out-of-core graphs never materialize, so they never become bases.
		// The cache also canonicalizes: a repeat submission of the same graph
		// bytes proceeds with the RETAINED instance, so prep artifacts keyed
		// by pointer identity survive resubmission.
		canon, ev := s.graphs.getOrPut(ing.hash, ing.g)
		ing.g = canon
		if ev > 0 {
			s.met.graphEvictions.Add(int64(ev))
		}
	}

	lookSpan := root.Start("cache-lookup")
	res, hit := s.lookupResult(key)
	if lookSpan != nil {
		lookSpan.SetAttr("hit", hit)
		lookSpan.End()
	}

	// Cache hit: materialize a completed job so the polling endpoints work
	// uniformly, and answer immediately.
	if hit {
		ing.spill.remove() // the cached result serves; the spill has no consumer
		s.met.jobsSubmitted.Add(1)
		s.met.recordEngineSubmit(opts.Engine)
		s.met.cacheHits.Add(1)
		s.countDelta(dv)
		root.End()
		j := &job{
			id: s.newJobID(key), key: key, graphHash: ing.hash, engine: opts.Engine, dims: req.dims,
			done: make(chan struct{}), status: StatusDone, cache: "hit",
			n: ing.n, m: ing.m, delta: dv, submitted: time.Now(), ingestMode: ing.mode,
			started: time.Now(), finished: time.Now(), res: res, trace: root,
		}
		close(j.done)
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.met.jobsCompleted.Add(1)
		s.retire(j)
		s.respondSubmit(w, j, http.StatusOK, nil)
		return
	}

	// Coalesce-or-enqueue must be atomic with respect to the inflight map:
	// the enqueue happens under the same lock as the coalesce check, so a
	// rejected submission can never have been observed (and attached to) by
	// a concurrent identical request, and Close's drain barrier (which takes
	// this lock after setting down) can never miss a late enqueue.
	s.mu.Lock()
	if s.down.Load() {
		s.mu.Unlock()
		ing.spill.remove()
		root.End() // the request dies here; leave no dangling span
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if prior, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		ing.spill.remove() // the prior job's spill (or graph) serves both
		s.met.jobsSubmitted.Add(1)
		s.met.recordEngineSubmit(opts.Engine)
		s.met.cacheMisses.Add(1)
		s.met.jobsCoalesced.Add(1)
		s.countDelta(dv)
		// This submission rides the prior job's trace; its own root span ends
		// now so the snapshot never shows a request still "running".
		root.End()
		s.waitIfRequested(req, r, prior)
		s.respondSubmit(w, prior, http.StatusAccepted, dv)
		return
	}
	j := &job{
		id: s.newJobID(key), key: key, graphHash: ing.hash, opts: opts, engine: opts.Engine,
		dims: req.dims, dimNames: req.dimNames,
		done: make(chan struct{}), status: StatusQueued, cache: "miss",
		n: ing.n, m: ing.m, delta: dv, submitted: time.Now(), g: ing.g,
		ingestMode: ing.mode, spill: ing.spill,
		trace: root, queueSpan: root.Start("queue-wait"),
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.inflight[key] = j
	default:
		// Saturated: the job was never published anywhere, so rejection
		// leaves no trace beyond its counter — but the spans opened for it
		// must still be closed, or the rejected request's trace tree (and the
		// timers behind it) dangles open forever.
		s.mu.Unlock()
		ing.spill.remove()
		s.met.jobsRejected.Add(1)
		j.queueSpan.End()
		root.End()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue is full; retry later")
		return
	}
	s.mu.Unlock()
	s.met.jobsSubmitted.Add(1)
	s.met.recordEngineSubmit(opts.Engine)
	s.met.cacheMisses.Add(1)
	s.countDelta(dv)
	s.waitIfRequested(req, r, j)
	s.respondSubmit(w, j, http.StatusAccepted, nil)
}

// waitIfRequested blocks a ?wait=true submission until the job finishes,
// bounded by MaxWait and the client disconnecting.
func (s *Server) waitIfRequested(req submitRequest, r *http.Request, j *job) {
	if !req.wait {
		return
	}
	// A stopped timer, not time.After: the After channel (and its runtime
	// timer) would live until MaxWait elapses even when the job finishes in
	// milliseconds — under load that is QueueDepth×MaxWait of dead timers.
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	select {
	case <-j.done:
	case <-timer.C:
	case <-r.Context().Done():
	}
}

// respondSubmit writes the submit response: the job id plus enough state to
// decide whether to poll. dv carries the submission's own delta resolution
// when it differs from the job's — a delta submission coalesced onto an
// in-flight job (whose view has no delta) must still report its documented
// delta.mode/churn metadata.
func (s *Server) respondSubmit(w http.ResponseWriter, j *job, code int, dv *deltaView) {
	v := j.view()
	if v.Status == StatusDone || v.Status == StatusFailed {
		code = http.StatusOK
	}
	resp := map[string]any{
		"job_id":      v.ID,
		"status":      v.Status,
		"cache":       v.Cache,
		"key":         v.Key,
		"graph_hash":  v.GraphHash,
		"engine":      v.Engine,
		"queue_depth": len(s.queue),
	}
	if v.IngestMode != "" {
		resp["ingest_mode"] = v.IngestMode
	}
	if dv == nil {
		dv = v.Delta
	}
	if dv != nil {
		resp["delta"] = dv
	}
	writeJSON(w, code, resp)
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q (completed jobs are retained for the last %d)", id, s.cfg.RetainJobs))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	v := j.view()
	resp := map[string]any{
		"id":           v.ID,
		"status":       v.Status,
		"cache":        v.Cache,
		"key":          v.Key,
		"graph_hash":   v.GraphHash,
		"engine":       v.Engine,
		"graph":        map[string]any{"n": v.N, "m": v.M},
		"submitted_at": v.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if v.IngestMode != "" {
		resp["ingest_mode"] = v.IngestMode
	}
	if v.Delta != nil {
		resp["delta"] = v.Delta
	}
	if v.ErrMsg != "" {
		resp["error"] = v.ErrMsg
	}
	if !v.Finished.IsZero() {
		resp["total_ms"] = v.Finished.Sub(v.Submitted).Seconds() * 1e3
		if !v.Started.IsZero() {
			resp["solve_ms"] = v.Finished.Sub(v.Started).Seconds() * 1e3
		}
	}
	if v.Res != nil {
		resp["result"] = map[string]any{
			"k":             v.Res.Assignment.K,
			"edge_locality": v.Res.EdgeLocality,
			"cut_edges":     v.Res.CutEdges,
			"imbalances":    v.Res.Imbalances,
			"assignment":    fmt.Sprintf("/v1/jobs/%s/assignment", v.ID),
		}
	}
	if v.Conv != nil {
		resp["convergence"] = v.Conv
	}
	if j.trace != nil {
		resp["trace"] = fmt.Sprintf("/v1/jobs/%s/trace", v.ID)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves the request's span tree: names, nesting, microsecond
// timings and attributes, from ingest down to the solver's per-bisection GD
// spans. It works on running jobs too (a consistent point-in-time snapshot),
// which is exactly when an operator wants to see where a slow solve is.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	if j.trace == nil {
		httpError(w, http.StatusNotFound, "no trace for this job (server runs with tracing disabled)")
		return
	}
	writeJSON(w, http.StatusOK, j.trace.Snapshot())
}

// handleAssignment streams the partition as "vertex part" lines — the same
// format cmd/mdbgp writes — so clients (and the golden determinism tests)
// can compare results byte for byte.
func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	v := j.view()
	switch v.Status {
	case StatusDone:
	case StatusFailed:
		httpError(w, http.StatusConflict, "job failed: "+v.ErrMsg)
		return
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "job not finished; poll /v1/jobs/"+v.ID)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriterSize(w, 1<<16)
	for vertex, part := range v.Res.Assignment.Parts {
		fmt.Fprintf(bw, "%d %d\n", vertex, part)
	}
	bw.Flush()
}

// handleHealthz is the LIVENESS probe: it only fails once the server has
// actually been closed. A draining server is still alive — restarting it
// because it stopped being ready would defeat the graceful drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.down.Load() {
		status, code = "shutting down", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"uptime_s":       time.Since(s.start).Seconds(),
		"workers":        s.cfg.Workers,
		"queue_depth":    len(s.queue),
		"queue_capacity": cap(s.queue),
		"jobs_running":   s.met.jobsRunning.Load(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
	})
}

// handleReadyz is the READINESS probe: 503 while the server is draining
// ahead of shutdown (SetDraining) or already down, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.down.Load():
		status, code = "shutting down", http.StatusServiceUnavailable
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"queue_depth": len(s.queue),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
