package server

import (
	"fmt"

	"mdbgp"
	"mdbgp/internal/obs"
	"mdbgp/internal/prep"
)

// Prep-cache wiring: the assignment-independent half of a solve (reorder
// layouts, coarsening hierarchies) is retained per graph in a byte-budgeted
// LRU (internal/prep) and injected into later solves of the same graph.
//
// Keys are derived from what the ARTIFACT depends on, not from what the
// request happened to spell: the reorder method is the resolved one (the
// fleet-wide -reorder default already folded in by handleSubmit, then
// canonicalized — so a fleet-default request and an explicit ?reorder= naming
// the same method share an artifact, while "none" builds nothing), and
// hierarchy keys cover every input that shapes the hierarchy or that the
// engines' injection checks compare (seed, coarsening knobs, balance
// dimensions). Under-keying here could not produce a wrong answer — the
// engines re-verify every artifact and rebuild on mismatch — but it COULD
// quietly serve zero reuse or, worse for debuggability, bias which requests
// hit; the key-audit tests pin the derivation.

// preppedLayout pairs a prepared reorder layout with the exact graph instance
// it was built against. The graph cache canonicalizes same-content
// submissions onto one instance (graphCache.getOrPut), so pointer identity is
// the cheap and airtight "same graph" check; an entry whose graph instance
// was since evicted fails validation and is dropped as a miss.
type preppedLayout struct {
	g  *mdbgp.Graph
	pl *mdbgp.PreparedLayout
}

func (a *preppedLayout) Bytes() int64 { return a.pl.Bytes() }

// preppedHierarchy pairs a prepared coarsening hierarchy with its graph
// instance, same contract as preppedLayout.
type preppedHierarchy struct {
	g  *mdbgp.Graph
	ph *mdbgp.PreparedHierarchy
}

func (a *preppedHierarchy) Bytes() int64 { return a.ph.Bytes() }

// prepKey composes one prep-cache address. kind distinguishes artifact
// families ("layout:<method>", "hierarchy:<engine>"); params carries the
// option inputs the artifact was built under.
func prepKey(graphHash, kind, params string) string {
	return mdbgp.EngineVersion + ":" + graphHash + ":" + kind + ":" + params
}

// layoutPrepKey keys a reorder layout: the graph plus the RESOLVED method.
// Nothing else — layouts are built unweighted from the CSR alone.
func layoutPrepKey(graphHash, method string) string {
	return prepKey(graphHash, "layout:"+method, "")
}

// hierarchyPrepKey keys a coarsening hierarchy: the graph, the engine whose
// coarsener built it, and every option that shapes the hierarchy's content —
// the seed (both coarseners draw from seeded RNG streams), the coarsening
// knobs, and the balance dimensions (vertex weights ride the hierarchy's
// levels, and clustering consults them).
func hierarchyPrepKey(graphHash string, c mdbgp.Options, dimNames string) string {
	params := fmt.Sprintf("seed=%d|coarsen=%d|cluster=%d|dims=%s",
		c.Seed, c.CoarsenTo, c.ClusterSize, dimNames)
	return prepKey(graphHash, "hierarchy:"+c.Engine, params)
}

// attachPrep injects cached prep artifacts into a solve's options, building
// and retaining them on a miss. opts must already be canonical (it is j.opts,
// canonicalized at dispatch). Everything here is best-effort amortization:
// any error or mismatch leaves opts unchanged and the solve rebuilds inline.
func (s *Server) attachPrep(g *mdbgp.Graph, hash, dimNames string, dims []mdbgp.Weight, opts mdbgp.Options, parent *obs.Span) mdbgp.Options {
	if !s.preps.Enabled() || hash == "" {
		return opts
	}
	gradient := opts.Engine == "gd" || opts.Engine == "multilevel"
	wantLayout := gradient && opts.Reorder != "none"
	// Warm-started multilevel solves skip coarsening entirely, so preparing
	// a hierarchy for them would be pure waste.
	wantHierarchy := opts.Engine == "metis" ||
		(opts.Engine == "multilevel" && opts.WarmAssignment == nil)
	if !wantLayout && !wantHierarchy {
		return opts
	}
	sp := parent.Start("prep")
	hits, wants := 0, 0

	if wantLayout {
		wants++
		key := layoutPrepKey(hash, opts.Reorder)
		if art, ok := s.preps.Get(key, func(a prep.Artifact) bool {
			pa, ok := a.(*preppedLayout)
			return ok && pa.g == g
		}); ok {
			opts.PrepLayout = art.(*preppedLayout).pl
			hits++
			sp.SetAttr("layout", "hit")
		} else if pl, err := mdbgp.PrepareLayout(g, opts.Reorder); err == nil {
			opts.PrepLayout = pl
			s.preps.Put(key, &preppedLayout{g: g, pl: pl})
			sp.SetAttr("layout", "build")
		}
	}

	if wantHierarchy {
		wants++
		key := hierarchyPrepKey(hash, opts, dimNames)
		if art, ok := s.preps.Get(key, func(a prep.Artifact) bool {
			pa, ok := a.(*preppedHierarchy)
			return ok && pa.g == g
		}); ok {
			opts.PrepHierarchy = art.(*preppedHierarchy).ph
			hits++
			sp.SetAttr("hierarchy", "hit")
		} else {
			// The hierarchy embeds the solve's vertex weights, so it must be
			// built under exactly the weights the solve will run with —
			// defaultSolve resolves them from the same dims with the same
			// StandardWeights call.
			popts := opts
			if ws, err := mdbgp.StandardWeights(g, dims...); err == nil {
				popts.Weights = ws
				if ph, err := mdbgp.PrepareHierarchy(g, popts); err == nil {
					opts.PrepHierarchy = ph
					s.preps.Put(key, &preppedHierarchy{g: g, ph: ph})
					sp.SetAttr("hierarchy", "build")
				}
			}
		}
	}

	sp.SetAttr("cache_hit", wants > 0 && hits == wants)
	sp.End()
	return opts
}
