// Package giraph simulates a Giraph-style distributed vertex-centric
// processing cluster: vertices live on workers according to a partition
// assignment, computation proceeds in bulk-synchronous supersteps separated
// by global barriers, and messages between vertices on different workers are
// remote (network) while same-worker messages are local.
//
// The simulator executes the actual vertex programs (PageRank values,
// component labels, mutual-friend counts are all genuinely computed) while
// charging each worker a calibrated cost per vertex, per edge scanned, and
// per local/remote message. A superstep's wall time is the maximum worker
// busy time plus the barrier cost — which is precisely the mechanism behind
// the paper's §1 observation that a single overloaded worker determines job
// runtime, motivating multi-dimensional balance.
//
// Runtimes are model seconds on the scaled-down synthetic graphs, not
// wall-clock measurements; the reproduction target is the relative behavior
// of partitioning policies (Figures 1 and 7, Table 2).
package giraph

import (
	"fmt"
	"math"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// CostModel holds the per-operation costs (model seconds) charged to
// workers, plus message size accounting for communication volume.
type CostModel struct {
	// VertexOverhead is charged per hosted vertex per superstep
	// (bookkeeping, serialization buffers — the cost that makes vertex
	// count a balance dimension).
	VertexOverhead float64
	// EdgeCompute is charged per edge stub scanned by an active vertex (the
	// cost that makes edge count a balance dimension).
	EdgeCompute float64
	// LocalMsg / RemoteMsg are charged per message unit delivered within a
	// worker / across workers (RemoteMsg split half to sender, half to
	// receiver).
	LocalMsg  float64
	RemoteMsg float64
	// BytesPerUnit converts message size units to bytes for communication
	// volume accounting.
	BytesPerUnit float64
	// Barrier is the fixed global synchronization cost per superstep.
	Barrier float64
}

// DefaultCostModel returns constants calibrated so that PageRank on the
// fb400-sim graph over 128 workers reproduces the orderings of Table 2:
// per-edge compute dominates (which is what the paper's numbers imply —
// hash's mean busy time is within 2% of vertex partitioning's despite 3.7×
// the communication), so the slowest worker's edge load decides the wall
// time; remote messages add a moderate surcharge that makes hash lose on
// average and vertex-edge balance win overall.
func DefaultCostModel() CostModel {
	return CostModel{
		VertexOverhead: 5e-3,
		EdgeCompute:    3e-4,
		LocalMsg:       5e-6,
		RemoteMsg:      8e-5,
		BytesPerUnit:   2048,
		Barrier:        1.0,
	}
}

// Cluster binds a graph to a worker assignment under a cost model.
type Cluster struct {
	G      *graph.Graph
	Assign *partition.Assignment
	Cost   CostModel
}

// NewCluster validates and builds a cluster. The number of workers is the
// assignment's K.
func NewCluster(g *graph.Graph, a *partition.Assignment, cost CostModel) (*Cluster, error) {
	if len(a.Parts) != g.N() {
		return nil, fmt.Errorf("giraph: assignment covers %d vertices, graph has %d", len(a.Parts), g.N())
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{G: g, Assign: a, Cost: cost}, nil
}

// Workers returns the cluster size.
func (c *Cluster) Workers() int { return c.Assign.K }

// StepStats records one superstep.
type StepStats struct {
	// Busy is the per-worker busy time (model seconds).
	Busy []float64
	// SentBytes is the per-worker remote bytes sent.
	SentBytes []float64
	// Wall is max(Busy) + barrier.
	Wall float64
}

// RunStats aggregates a whole job.
type RunStats struct {
	Steps []StepStats
}

// TotalWall returns the job's total wall time (Σ superstep walls).
func (r *RunStats) TotalWall() float64 {
	t := 0.0
	for _, s := range r.Steps {
		t += s.Wall
	}
	return t
}

// WorkerBusyStats returns the mean, max and standard deviation of
// per-worker busy time per superstep, averaged over supersteps — the
// "Runtime" columns of Table 2.
func (r *RunStats) WorkerBusyStats() (mean, max, stdev float64) {
	if len(r.Steps) == 0 {
		return 0, 0, 0
	}
	for _, s := range r.Steps {
		m, mx, sd := distStats(s.Busy)
		mean += m
		max += mx
		stdev += sd
	}
	k := float64(len(r.Steps))
	return mean / k, max / k, stdev / k
}

// CommGBStats returns the mean, max and stdev per superstep of the
// cluster-wide remote communication volume in GB — the "Communication"
// columns of Table 2 (mean/max/stdev over supersteps of the total).
func (r *RunStats) CommGBStats() (mean, max, stdev float64) {
	if len(r.Steps) == 0 {
		return 0, 0, 0
	}
	vals := make([]float64, len(r.Steps))
	for i, s := range r.Steps {
		total := 0.0
		for _, b := range s.SentBytes {
			total += b
		}
		vals[i] = total / 1e9
	}
	return distStats(vals)
}

// TotalCommGB returns the job-total remote traffic in GB.
func (r *RunStats) TotalCommGB() float64 {
	total := 0.0
	for _, s := range r.Steps {
		for _, b := range s.SentBytes {
			total += b
		}
	}
	return total / 1e9
}

func distStats(xs []float64) (mean, max, stdev float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	for _, x := range xs {
		mean += x
		if x > max {
			max = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		stdev += d * d
	}
	stdev = math.Sqrt(stdev / float64(len(xs)))
	return mean, max, stdev
}

// structural holds the static per-worker message/edge aggregates for
// all-vertices-active supersteps (PageRank, HC) so each superstep is O(k)
// instead of O(m).
type structural struct {
	vertices   []int64
	edgeStubs  []int64
	localMsgs  []int64
	remoteSent []int64
	remoteRecv []int64
}

func (c *Cluster) structure() *structural {
	k := c.Workers()
	s := &structural{
		vertices:   make([]int64, k),
		edgeStubs:  make([]int64, k),
		localMsgs:  make([]int64, k),
		remoteSent: make([]int64, k),
		remoteRecv: make([]int64, k),
	}
	g := c.G
	parts := c.Assign.Parts
	for v := 0; v < g.N(); v++ {
		pv := parts[v]
		s.vertices[pv]++
		s.edgeStubs[pv] += int64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			pu := parts[u]
			if pu == pv {
				s.localMsgs[pv]++
			} else {
				s.remoteSent[pv]++
				s.remoteRecv[pu]++
			}
		}
	}
	return s
}

// uniformStep builds the StepStats of a superstep where every vertex is
// active and sends one message of the given unit size along every out-edge.
func (c *Cluster) uniformStep(s *structural, msgUnits float64, computeScale float64) StepStats {
	k := c.Workers()
	busy := make([]float64, k)
	sent := make([]float64, k)
	cm := c.Cost
	for w := 0; w < k; w++ {
		busy[w] = cm.VertexOverhead*float64(s.vertices[w]) +
			cm.EdgeCompute*computeScale*float64(s.edgeStubs[w]) +
			cm.LocalMsg*msgUnits*float64(s.localMsgs[w]) +
			cm.RemoteMsg*msgUnits*(float64(s.remoteSent[w])+float64(s.remoteRecv[w]))/2
		sent[w] = cm.BytesPerUnit * msgUnits * float64(s.remoteSent[w])
	}
	wall := 0.0
	for _, b := range busy {
		if b > wall {
			wall = b
		}
	}
	return StepStats{Busy: busy, SentBytes: sent, Wall: wall + cm.Barrier}
}
