package giraph

import (
	"sort"
)

// PageRank runs `iters` power-iteration supersteps (the paper uses 30) with
// the given damping factor and returns the final probability vector together
// with the run statistics. Every vertex is active every superstep and sends
// rank/deg along each out-edge.
func PageRank(c *Cluster, iters int, damping float64) ([]float64, *RunStats) {
	if iters <= 0 {
		iters = 30
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	g := c.G
	n := g.N()
	stats := &RunStats{}
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	s := c.structure()
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if g.Degree(v) == 0 {
				dangling += pr[v]
			}
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			share := pr[v] / float64(d)
			for _, u := range g.Neighbors(v) {
				next[u] += share
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + damping*next[v]
		}
		pr, next = next, pr
		stats.Steps = append(stats.Steps, c.uniformStep(s, 1, 1))
	}
	return pr, stats
}

// ConnectedComponents runs min-label propagation until convergence (at most
// maxSteps supersteps; the paper observes ≤ 50 rounds). Only vertices whose
// label changed in the previous round send messages, so late supersteps are
// cheap — the simulator charges costs accordingly.
func ConnectedComponents(c *Cluster, maxSteps int) ([]int32, *RunStats) {
	if maxSteps <= 0 {
		maxSteps = 50
	}
	g := c.G
	n := g.N()
	parts := c.Assign.Parts
	k := c.Workers()
	cm := c.Cost
	stats := &RunStats{}

	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	vertices := make([]int64, k)
	for v := 0; v < n; v++ {
		vertices[parts[v]]++
	}

	for step := 0; step < maxSteps; step++ {
		busy := make([]float64, k)
		sent := make([]float64, k)
		for w := 0; w < k; w++ {
			busy[w] = cm.VertexOverhead * float64(vertices[w])
		}
		// Message phase: active vertices push their labels.
		inbox := make([]int32, n)
		for v := range inbox {
			inbox[v] = labels[v]
		}
		anyActive := false
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			anyActive = true
			pv := parts[v]
			busy[pv] += cm.EdgeCompute * float64(g.Degree(v))
			lv := labels[v]
			for _, u := range g.Neighbors(v) {
				pu := parts[u]
				if pu == pv {
					busy[pv] += cm.LocalMsg
				} else {
					busy[pv] += cm.RemoteMsg / 2
					busy[pu] += cm.RemoteMsg / 2
					sent[pv] += cm.BytesPerUnit
				}
				if lv < inbox[u] {
					inbox[u] = lv
				}
			}
		}
		if !anyActive {
			break
		}
		changed := false
		for v := 0; v < n; v++ {
			if inbox[v] < labels[v] {
				labels[v] = inbox[v]
				active[v] = true
				changed = true
			} else {
				active[v] = false
			}
		}
		wall := 0.0
		for _, b := range busy {
			if b > wall {
				wall = b
			}
		}
		stats.Steps = append(stats.Steps, StepStats{Busy: busy, SentBytes: sent, Wall: wall + cm.Barrier})
		if !changed {
			break
		}
	}
	return labels, stats
}

// MutualFriends computes, for every vertex, the total number of common
// neighbors shared with its neighbors — the paper's friend-recommendation
// feature workload. Superstep 1 sends each vertex's adjacency list to every
// neighbor (message size = deg(v) units); superstep 2 intersects the
// received lists with the local one. CapDegree truncates lists, as
// production systems do for mega-hubs; 0 means the default 2048.
func MutualFriends(c *Cluster, capDegree int) ([]int64, *RunStats) {
	if capDegree <= 0 {
		capDegree = 2048
	}
	g := c.G
	n := g.N()
	parts := c.Assign.Parts
	k := c.Workers()
	cm := c.Cost
	stats := &RunStats{}
	counts := make([]int64, n)
	if n == 0 {
		return counts, stats
	}

	effDeg := func(v int) float64 {
		d := g.Degree(v)
		if d > capDegree {
			d = capDegree
		}
		return float64(d)
	}

	// Superstep 1: adjacency exchange.
	busy := make([]float64, k)
	sent := make([]float64, k)
	for v := 0; v < n; v++ {
		pv := parts[v]
		busy[pv] += cm.VertexOverhead + cm.EdgeCompute*float64(g.Degree(v))
		units := effDeg(v)
		for _, u := range g.Neighbors(v) {
			pu := parts[u]
			if pu == pv {
				busy[pv] += cm.LocalMsg * units
			} else {
				busy[pv] += cm.RemoteMsg * units / 2
				busy[pu] += cm.RemoteMsg * units / 2
				sent[pv] += cm.BytesPerUnit * units
			}
		}
	}
	stats.Steps = append(stats.Steps, finishStep(busy, sent, cm))

	// Superstep 2: intersect received lists with the local list.
	busy = make([]float64, k)
	sent = make([]float64, k)
	for v := 0; v < n; v++ {
		pv := parts[v]
		nv := g.Neighbors(v)
		lv := nv
		if len(lv) > capDegree {
			lv = lv[:capDegree]
		}
		busy[pv] += cm.VertexOverhead
		total := int64(0)
		for _, u := range nv {
			lu := g.Neighbors(int(u))
			if len(lu) > capDegree {
				lu = lu[:capDegree]
			}
			busy[pv] += cm.EdgeCompute * float64(len(lu)+len(lv))
			total += int64(sortedIntersectCount(lv, lu))
		}
		counts[v] = total
	}
	stats.Steps = append(stats.Steps, finishStep(busy, sent, cm))
	return counts, stats
}

func finishStep(busy, sent []float64, cm CostModel) StepStats {
	wall := 0.0
	for _, b := range busy {
		if b > wall {
			wall = b
		}
	}
	return StepStats{Busy: busy, SentBytes: sent, Wall: wall + cm.Barrier}
}

// sortedIntersectCount counts common elements of two sorted int32 slices.
func sortedIntersectCount(a, b []int32) int {
	// Galloping for very lopsided pairs keeps hub intersections cheap.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= 16*len(a) {
		cnt := 0
		for _, x := range a {
			i := sort.Search(len(b), func(j int) bool { return b[j] >= x })
			if i < len(b) && b[i] == x {
				cnt++
			}
		}
		return cnt
	}
	cnt, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			cnt++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return cnt
}

// HypergraphClustering models the paper's production clustering workload: a
// fixed number of label-exchange supersteps in which every vertex sends a
// 4-unit message (cluster id plus metadata) along every edge and does twice
// the per-edge compute of PageRank. Labels follow most-frequent-neighbor
// updates, yielding a genuine clustering.
func HypergraphClustering(c *Cluster, rounds int) ([]int32, *RunStats) {
	if rounds <= 0 {
		rounds = 10
	}
	g := c.G
	n := g.N()
	stats := &RunStats{}
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	if n == 0 {
		return labels, stats
	}
	s := c.structure()
	next := make([]int32, n)
	counts := make(map[int32]int, 16)
	for it := 0; it < rounds; it++ {
		for v := 0; v < n; v++ {
			ns := g.Neighbors(v)
			if len(ns) == 0 {
				next[v] = labels[v]
				continue
			}
			clear(counts)
			best, bestCnt := labels[v], 0
			for _, u := range ns {
				l := labels[u]
				counts[l]++
				if c := counts[l]; c > bestCnt || (c == bestCnt && l < best) {
					best, bestCnt = l, c
				}
			}
			next[v] = best
		}
		labels, next = next, labels
		stats.Steps = append(stats.Steps, c.uniformStep(s, 4, 2))
	}
	return labels, stats
}
