package giraph

import (
	"math"
	"testing"

	"mdbgp/internal/baselines"
	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

func testCluster(t *testing.T, g *graph.Graph, k int) *Cluster {
	t.Helper()
	a := baselines.Hash(g.N(), k, 1)
	c, err := NewCluster(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	g := gen.Grid(3, 3, false)
	short := partition.NewAssignment(4, 2)
	if _, err := NewCluster(g, short, DefaultCostModel()); err == nil {
		t.Fatal("short assignment should error")
	}
	bad := partition.NewAssignment(9, 2)
	bad.Parts[0] = 7
	if _, err := NewCluster(g, bad, DefaultCostModel()); err == nil {
		t.Fatal("invalid assignment should error")
	}
}

func TestPageRankMatchesSerialReference(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 800, Communities: 3, AvgDegree: 10, InFraction: 0.8, DegreeExponent: 2, Seed: 2})
	c := testCluster(t, g, 4)
	pr, stats := PageRank(c, 20, 0.85)
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank mass %g, want 1", sum)
	}
	// The weights-package implementation scales to mean 1: compare shapes.
	ref := weights.PageRank(g, 0.85, 20)
	for v := range pr {
		if math.Abs(pr[v]*float64(g.N())-ref[v]) > 1e-6*math.Max(1, ref[v]) {
			t.Fatalf("vertex %d: sim %g, ref %g", v, pr[v]*float64(g.N()), ref[v])
		}
	}
	if len(stats.Steps) != 20 {
		t.Fatalf("steps %d, want 20", len(stats.Steps))
	}
}

func TestConnectedComponentsCorrect(t *testing.T) {
	// Two disjoint cliques plus isolated vertices.
	b := graph.NewBuilder(12)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j)
			b.AddEdge(4+i, 4+j)
		}
	}
	g := b.Build()
	c := testCluster(t, g, 3)
	labels, stats := ConnectedComponents(c, 0)
	for v := 0; v < 4; v++ {
		if labels[v] != 0 {
			t.Fatalf("first clique label %d at %d", labels[v], v)
		}
		if labels[4+v] != 4 {
			t.Fatalf("second clique label %d", labels[4+v])
		}
	}
	for v := 8; v < 12; v++ {
		if labels[v] != int32(v) {
			t.Fatalf("isolated vertex %d got label %d", v, labels[v])
		}
	}
	if len(stats.Steps) == 0 {
		t.Fatal("no supersteps recorded")
	}
}

func TestConnectedComponentsConvergesEarlyOnPath(t *testing.T) {
	b := graph.NewBuilder(64)
	for i := 0; i+1 < 64; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	c := testCluster(t, g, 2)
	labels, stats := ConnectedComponents(c, 200)
	for _, l := range labels {
		if l != 0 {
			t.Fatal("path should converge to label 0")
		}
	}
	// 63 propagation rounds + 1 quiescent check at most.
	if len(stats.Steps) > 65 {
		t.Fatalf("too many supersteps: %d", len(stats.Steps))
	}
	// Later supersteps must be cheaper than the first (active set shrinks).
	first := stats.Steps[0]
	last := stats.Steps[len(stats.Steps)-2]
	if sumF(last.Busy) >= sumF(first.Busy) {
		t.Fatalf("active-set costing broken: first %g last %g", sumF(first.Busy), sumF(last.Busy))
	}
}

func sumF(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestMutualFriendsKnownCounts(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 2.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	c := testCluster(t, g, 2)
	counts, stats := MutualFriends(c, 0)
	// v0: neighbors 1,2 — shares 2 with 1, shares 1 with 2 → 2.
	want := []int64{2, 2, 2, 0}
	for v, w := range want {
		if counts[v] != w {
			t.Fatalf("MF counts = %v, want %v", counts, want)
		}
	}
	if len(stats.Steps) != 2 {
		t.Fatalf("MF supersteps %d, want 2", len(stats.Steps))
	}
}

func TestMutualFriendsCapDegree(t *testing.T) {
	g := gen.Star(200)
	c := testCluster(t, g, 2)
	_, uncapped := MutualFriends(c, 199)
	_, capped := MutualFriends(c, 8)
	if capped.TotalWall() >= uncapped.TotalWall() {
		t.Fatalf("degree cap did not reduce cost: %g vs %g", capped.TotalWall(), uncapped.TotalWall())
	}
}

func TestHypergraphClusteringClusters(t *testing.T) {
	g, blocks := gen.SBM(gen.SBMConfig{N: 600, Communities: 3, AvgDegree: 14, InFraction: 0.95, Seed: 3})
	c := testCluster(t, g, 4)
	labels, stats := HypergraphClustering(c, 10)
	if len(stats.Steps) != 10 {
		t.Fatalf("HC steps %d", len(stats.Steps))
	}
	// Most vertices should share a label with the majority of their block.
	agree := 0
	for v := range labels {
		// Compare against block representative's label.
		rep := int(blocks[v]) * 200
		if labels[v] == labels[rep] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(labels)); frac < 0.5 {
		t.Fatalf("HC block coherence %.3f", frac)
	}
}

func TestCommunicationTracksLocality(t *testing.T) {
	g, blocks := gen.SBM(gen.SBMConfig{N: 2000, Communities: 4, AvgDegree: 12, InFraction: 0.9, Seed: 5})
	// Good assignment: planted blocks; bad: hash.
	good := partition.NewAssignment(g.N(), 4)
	copy(good.Parts, blocks)
	hash := baselines.Hash(g.N(), 4, 5)
	cGood, _ := NewCluster(g, good, DefaultCostModel())
	cBad, _ := NewCluster(g, hash, DefaultCostModel())
	_, sGood := PageRank(cGood, 5, 0.85)
	_, sBad := PageRank(cBad, 5, 0.85)
	if sGood.TotalCommGB() >= sBad.TotalCommGB() {
		t.Fatalf("good partition should communicate less: %g vs %g",
			sGood.TotalCommGB(), sBad.TotalCommGB())
	}
	if sGood.TotalWall() >= sBad.TotalWall() {
		t.Fatalf("good partition should be faster: %g vs %g",
			sGood.TotalWall(), sBad.TotalWall())
	}
}

func TestStragglerDeterminesWall(t *testing.T) {
	// All edges on worker 0 → worker 0 is the straggler and wall time
	// reflects it, even though worker 1 holds as many vertices.
	g := gen.CliqueChain(1, 30) // one clique of 30
	a := partition.NewAssignment(60, 2)
	// 30 clique vertices on worker 0; builder made n=30, so build a padded
	// graph instead.
	b := graph.NewBuilder(60)
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			b.AddEdge(i, j)
		}
	}
	g = b.Build()
	for v := 30; v < 60; v++ {
		a.Parts[v] = 1
	}
	c, err := NewCluster(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	_, stats := PageRank(c, 3, 0.85)
	for _, s := range stats.Steps {
		if s.Busy[0] <= s.Busy[1] {
			t.Fatalf("worker 0 should be the straggler: %v", s.Busy)
		}
		if s.Wall < s.Busy[0] {
			t.Fatalf("wall %g below straggler busy %g", s.Wall, s.Busy[0])
		}
	}
	mean, max, stdev := stats.WorkerBusyStats()
	if max < mean || stdev <= 0 {
		t.Fatalf("busy stats mean=%g max=%g stdev=%g", mean, max, stdev)
	}
}

func TestRunStatsEmpty(t *testing.T) {
	var r RunStats
	if r.TotalWall() != 0 || r.TotalCommGB() != 0 {
		t.Fatal("empty stats should be zero")
	}
	m, x, s := r.WorkerBusyStats()
	if m != 0 || x != 0 || s != 0 {
		t.Fatal("empty busy stats should be zero")
	}
	m, x, s = r.CommGBStats()
	if m != 0 || x != 0 || s != 0 {
		t.Fatal("empty comm stats should be zero")
	}
}

func TestEmptyGraphApps(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	a := partition.NewAssignment(0, 2)
	c, err := NewCluster(g, a, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if pr, _ := PageRank(c, 3, 0.85); len(pr) != 0 {
		t.Fatal("empty PageRank")
	}
	if labels, _ := ConnectedComponents(c, 5); len(labels) != 0 {
		t.Fatal("empty CC")
	}
	if counts, _ := MutualFriends(c, 0); len(counts) != 0 {
		t.Fatal("empty MF")
	}
	if labels, _ := HypergraphClustering(c, 3); len(labels) != 0 {
		t.Fatal("empty HC")
	}
}
