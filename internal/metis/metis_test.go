package metis

import (
	"testing"
	"testing/quick"

	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

func TestBisectGridBalancedSmallCut(t *testing.T) {
	g := gen.Grid(24, 24, false)
	ws, _ := weights.Standard(g, 2)
	a, err := Bisect(g, ws, 0.5, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := partition.MaxImbalance(a, ws); im > 0.03 {
		t.Fatalf("grid d=2 imbalance %.4f, want <= 0.03", im)
	}
	// Optimal grid bisection cuts 24 edges; multilevel should be close.
	if cut := partition.CutEdges(g, a); cut > 80 {
		t.Fatalf("grid cut %d, want small", cut)
	}
}

func TestBisectCliqueChain(t *testing.T) {
	g := gen.CliqueChain(2, 16)
	ws, _ := weights.Standard(g, 2)
	a, err := Bisect(g, ws, 0.5, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutEdges(g, a); cut != 1 {
		t.Fatalf("clique chain cut %d, want 1", cut)
	}
}

func TestBisectBalanceD2VsD3(t *testing.T) {
	// The Table 3 phenomenon: d=2 balance is tight, d>=3 cannot be
	// guaranteed. We assert only the d=2 side (the d=3 behavior is
	// reported, not asserted, since it varies by instance).
	g, _ := gen.SBM(gen.SBMConfig{N: 3000, Communities: 4, AvgDegree: 12, InFraction: 0.8, DegreeExponent: 2, Seed: 4})
	ws2, _ := weights.Standard(g, 2)
	a2, err := Bisect(g, ws2, 0.5, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if im := partition.MaxImbalance(a2, ws2); im > 0.05 {
		t.Fatalf("d=2 imbalance %.4f, want <= 0.05", im)
	}
	ws3, _ := weights.Standard(g, 3)
	a3, err := Bisect(g, ws3, 0.5, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a3.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("d=3 max imbalance: %.4f (not guaranteed)", partition.MaxImbalance(a3, ws3))
}

func TestBisectBeatsRandomCut(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 2000, Communities: 2, AvgDegree: 14, InFraction: 0.9, Seed: 6})
	ws, _ := weights.Standard(g, 2)
	a, err := Bisect(g, ws, 0.5, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if loc := partition.EdgeLocality(g, a); loc < 0.8 {
		t.Fatalf("metis locality %.3f on 2-community SBM, want >= 0.8", loc)
	}
}

func TestPartitionK(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 2000, Communities: 4, AvgDegree: 12, InFraction: 0.85, Seed: 8})
	ws, _ := weights.Standard(g, 2)
	a, err := PartitionK(g, ws, 4, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := partition.MaxImbalance(a, ws); im > 0.1 {
		t.Fatalf("4-way imbalance %.4f", im)
	}
	hashLoc := 0.25
	if loc := partition.EdgeLocality(g, a); loc < 2*hashLoc {
		t.Fatalf("4-way locality %.3f", loc)
	}
}

func TestPartitionKEdgeCases(t *testing.T) {
	g := gen.Grid(4, 4, false)
	ws, _ := weights.Standard(g, 1)
	if _, err := PartitionK(g, ws, 0, Options{}); err == nil {
		t.Fatal("k=0 should error")
	}
	a, err := PartitionK(g, ws, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Parts {
		if p != 0 {
			t.Fatal("k=1 all zero")
		}
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := Bisect(empty, [][]float64{{}}, 0.5, Options{}); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
}

func TestBisectAsymmetricAlpha(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 1500, Communities: 3, AvgDegree: 10, InFraction: 0.85, Seed: 10})
	ws, _ := weights.Standard(g, 1)
	a, err := Bisect(g, ws, 2.0/3.0, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	loads := partition.Loads(a, ws[0])
	frac := loads[0] / (loads[0] + loads[1])
	if frac < 0.6 || frac > 0.73 {
		t.Fatalf("asymmetric split fraction %.3f, want ~0.667", frac)
	}
}

func TestBisectErrors(t *testing.T) {
	g := gen.Grid(3, 3, false)
	if _, err := Bisect(g, nil, 0.5, Options{}); err == nil {
		t.Fatal("missing weights should error")
	}
	if _, err := Bisect(g, [][]float64{{1}}, 0.5, Options{}); err == nil {
		t.Fatal("short weights should error")
	}
}

// Property: bisect always returns a valid assignment with d=1 balance
// within a loose bound on arbitrary connected-ish random graphs.
func TestQuickBisectValid(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := gen.SBM(gen.SBMConfig{N: 300, Communities: 2, AvgDegree: 8, InFraction: 0.7, Seed: seed})
		ws, _ := weights.Standard(g, 1)
		a, err := Bisect(g, ws, 0.5, Options{Seed: seed})
		if err != nil || a.Validate() != nil {
			return false
		}
		return partition.Imbalance(a, ws[0]) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
