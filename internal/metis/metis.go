package metis

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// Options configures the multilevel partitioner.
type Options struct {
	// UBFactor is the allowed part overweight factor per constraint during
	// refinement, e.g. 1.005 allows 0.5% imbalance (METIS's default grain).
	UBFactor float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices (default 160).
	CoarsenTo int
	// InitialTries is the number of greedy-graph-growing attempts at the
	// coarsest level (default 8).
	InitialTries int
	// RefinePasses bounds FM passes per uncoarsening level (default 6).
	RefinePasses int
	Seed         int64
	// Prep, when non-nil and built for exactly the graph being solved (see
	// Prep.Matches), injects a prebuilt matching hierarchy: Bisect skips its
	// coarsening pass and refines over the cached levels. Because the
	// hierarchy and the solve consume separate RNG streams, an injected
	// solve is byte-identical to one that rebuilds. Ignored (with a rebuild)
	// for any other graph, so PartitionK's child subgraphs — fresh
	// allocations — never see a stale hierarchy.
	Prep *Prep
}

// Prep is a prebuilt matching hierarchy for one specific graph — the
// assignment-independent half of a METIS-style solve. Immutable and safe to
// share across concurrent solves; only valid for the exact vertex weights
// and options it was built with (prep caches key artifacts by graph content
// hash plus every hierarchy-shaping parameter, seed included).
type Prep struct {
	graph  *graph.Graph
	levels []*coarsen.Graph
	cmaps  [][]int32
	// Hierarchy-shaping parameters recorded at build time; usable rejects an
	// injection whose solve disagrees, degrading a mis-keyed cache to a
	// rebuild instead of a divergent solve.
	seed      int64
	coarsenTo int
}

// BuildPrep runs the coarsening pass of Bisect(g, ws, ·, opt) and captures
// the hierarchy, consuming the same hierarchy RNG stream the inline pass
// would.
func BuildPrep(g *graph.Graph, ws [][]float64, opt Options) *Prep {
	opt.normalize()
	level0 := coarsen.FromGraph(g, ws)
	rng := rand.New(rand.NewSource(opt.Seed))
	levels, cmaps := coarsen.Hierarchy(level0, hierarchyOptions(opt), rng, nil)
	return &Prep{graph: g, levels: levels, cmaps: cmaps, seed: opt.Seed, coarsenTo: opt.CoarsenTo}
}

// Matches reports whether the prep was built for exactly this graph value
// (pointer identity — content identity is the cache key's responsibility).
func (p *Prep) Matches(g *graph.Graph) bool { return p != nil && p.graph == g }

// usable additionally verifies the normalized solve options agree with the
// hierarchy-shaping parameters the prep was built under.
func (p *Prep) usable(g *graph.Graph, opt *Options) bool {
	return p.Matches(g) && p.seed == opt.Seed && p.coarsenTo == opt.CoarsenTo
}

// Bytes estimates the heap footprint for cache byte accounting. Conservative:
// the finest level's CSR aliases the base graph (only its unit edge weights
// are materialized) and the shared bytes are charged anyway.
func (p *Prep) Bytes() int64 {
	var b int64
	for _, lv := range p.levels {
		b += lv.Bytes()
	}
	for _, cm := range p.cmaps {
		b += int64(len(cm)) * 4
	}
	return b
}

// hierarchyOptions is the single source of truth for how the comparator
// coarsens, shared by Bisect's inline pass and BuildPrep so cached and
// rebuilt hierarchies can never diverge.
func hierarchyOptions(opt Options) coarsen.HierarchyOptions {
	return coarsen.HierarchyOptions{
		CoarsenTo:  opt.CoarsenTo,
		StallRatio: 0.95,
		// Plain heavy-edge matching is blind on the unit-weight finest level
		// (every edge weighs 1); shared-neighbor scoring keeps the matching
		// inside clusters, which is what lets FM refinement find low cuts.
		Match: coarsen.MatchOptions{CommonNeighbors: true},
	}
}

// solveSeed derives the initial-bisection/refinement RNG stream from the
// configured seed. It is distinct from the hierarchy stream (seeded with
// opt.Seed directly) so the solve consumes identical randomness whether the
// hierarchy was rebuilt or injected — Hierarchy draws a variable number of
// permutations, including for rejected stall attempts, and sharing one
// stream would make the solve depend on how coarsening went.
func solveSeed(seed int64) int64 { return seed*1000003 + 13 }

func (o *Options) normalize() {
	if o.UBFactor <= 1 {
		o.UBFactor = 1.005
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 160
	}
	if o.InitialTries <= 0 {
		o.InitialTries = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
}

// Bisect computes a multi-constraint bisection of g with target split
// fractions (alpha, 1−alpha) per dimension.
func Bisect(g *graph.Graph, ws [][]float64, alpha float64, opt Options) (*partition.Assignment, error) {
	opt.normalize()
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	n := g.N()
	if len(ws) == 0 {
		return nil, fmt.Errorf("metis: at least one weight function required")
	}
	for j, w := range ws {
		if len(w) != n {
			return nil, fmt.Errorf("metis: weight %d length %d != n %d", j, len(w), n)
		}
	}
	a := partition.NewAssignment(n, 2)
	if n == 0 {
		return a, nil
	}

	var hierarchy []*coarsen.Graph
	var maps [][]int32
	if opt.Prep.usable(g, &opt) {
		hierarchy, maps = opt.Prep.levels, opt.Prep.cmaps
	} else {
		// Level 0: the shared weighted-graph wrapper with materialized unit
		// edge weights (FM refinement indexes edge weights unconditionally).
		level0 := coarsen.FromGraph(g, ws)
		hrng := rand.New(rand.NewSource(opt.Seed))
		hierarchy, maps = coarsen.Hierarchy(level0, hierarchyOptions(opt), hrng, nil)
	}
	rng := rand.New(rand.NewSource(solveSeed(opt.Seed)))

	coarsest := hierarchy[len(hierarchy)-1]
	side := initialBisect(coarsest, alpha, opt, rng)
	refine(coarsest, side, alpha, opt, rng)

	for li := len(hierarchy) - 2; li >= 0; li-- {
		fine := hierarchy[li]
		cmap := maps[li]
		fineSide := make([]int8, fine.N())
		for v := range fineSide {
			fineSide[v] = side[cmap[v]]
		}
		side = fineSide
		refine(fine, side, alpha, opt, rng)
	}

	for v := 0; v < n; v++ {
		if side[v] < 0 {
			a.Parts[v] = 1
		}
	}
	return a, nil
}

// PartitionK partitions into k parts by recursive bisection, the mode the
// paper uses for multi-constraint METIS.
func PartitionK(g *graph.Graph, ws [][]float64, k int, opt Options) (*partition.Assignment, error) {
	opt.normalize()
	if k <= 0 {
		return nil, fmt.Errorf("metis: k = %d, want >= 1", k)
	}
	n := g.N()
	asgn := partition.NewAssignment(n, k)
	if k == 1 || n == 0 {
		return asgn, nil
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	var rec func(sub *graph.Graph, subWs [][]float64, subIDs []int32, k, base int, seed int64) error
	rec = func(sub *graph.Graph, subWs [][]float64, subIDs []int32, k, base int, seed int64) error {
		if k == 1 {
			for _, id := range subIDs {
				asgn.Parts[id] = int32(base)
			}
			return nil
		}
		k1 := (k + 1) / 2
		o := opt
		o.Seed = seed
		bi, err := Bisect(sub, subWs, float64(k1)/float64(k), o)
		if err != nil {
			return err
		}
		var left, right []int32
		for v := 0; v < sub.N(); v++ {
			if bi.Parts[v] == 0 {
				left = append(left, int32(v))
			} else {
				right = append(right, int32(v))
			}
		}
		split := func(local []int32) (*graph.Graph, [][]float64, []int32) {
			if len(local) == 0 {
				return graph.NewBuilder(0).Build(), make([][]float64, len(subWs)), nil
			}
			child, _ := graph.Subgraph(sub, local)
			cw := make([][]float64, len(subWs))
			for j := range subWs {
				cw[j] = make([]float64, len(local))
				for i, lv := range local {
					cw[j][i] = subWs[j][lv]
				}
			}
			cids := make([]int32, len(local))
			for i, lv := range local {
				cids[i] = subIDs[lv]
			}
			return child, cw, cids
		}
		lg, lw, lids := split(left)
		rg, rw, rids := split(right)
		if err := rec(lg, lw, lids, k1, base, seed*31+1); err != nil {
			return err
		}
		return rec(rg, rw, rids, k-k1, base+k1, seed*31+2)
	}
	if err := rec(g, ws, ids, k, 0, opt.Seed); err != nil {
		return nil, err
	}
	return asgn, nil
}

// initialBisect runs greedy graph growing from several random seeds and
// keeps the lowest-cut result whose primary dimension hits the target.
func initialBisect(g *coarsen.Graph, alpha float64, opt Options, rng *rand.Rand) []int8 {
	n := g.N()
	totals := g.Totals()
	target0 := alpha * totals[0]
	bestSide := make([]int8, n)
	bestCut := math.Inf(1)
	queue := make([]int32, 0, n)
	inSide := make([]bool, n)
	for try := 0; try < opt.InitialTries; try++ {
		for i := range inSide {
			inSide[i] = false
		}
		queue = queue[:0]
		seed := rng.Intn(n)
		queue = append(queue, int32(seed))
		inSide[seed] = true
		w0 := g.VW[0][seed]
		for qi := 0; qi < len(queue) && w0 < target0; qi++ {
			v := queue[qi]
			ns, _ := g.Neighbors(int(v))
			for _, u := range ns {
				if !inSide[u] && w0 < target0 {
					inSide[u] = true
					w0 += g.VW[0][u]
					queue = append(queue, u)
				}
			}
		}
		// Disconnected leftovers: add random vertices until target reached.
		for w0 < target0 {
			v := rng.Intn(n)
			if !inSide[v] {
				inSide[v] = true
				w0 += g.VW[0][v]
			}
		}
		side := make([]int8, n)
		for v := range side {
			if inSide[v] {
				side[v] = 1
			} else {
				side[v] = -1
			}
		}
		if c := g.Cut(side); c < bestCut {
			bestCut = c
			copy(bestSide, side)
		}
	}
	return bestSide
}

// refine runs FM-style passes: first restore any violated constraint with
// least-damage moves, then make positive-gain moves that keep every
// dimension inside the UBFactor bounds. Each vertex moves at most once per
// pass.
func refine(g *coarsen.Graph, side []int8, alpha float64, opt Options, rng *rand.Rand) {
	n := g.N()
	d := len(g.VW)
	totals := g.Totals()
	load0 := make([]float64, d) // weight of side +1
	for j := 0; j < d; j++ {
		for v := 0; v < n; v++ {
			if side[v] > 0 {
				load0[j] += g.VW[j][v]
			}
		}
	}
	hi := make([]float64, d) // max allowed side-+1 weight
	lo := make([]float64, d)
	for j := 0; j < d; j++ {
		hi[j] = opt.UBFactor * alpha * totals[j]
		lo[j] = totals[j] - opt.UBFactor*(1-alpha)*totals[j]
	}

	gain := func(v int) float64 {
		ns, ews := g.Neighbors(v)
		gn := 0.0
		for i, u := range ns {
			if side[u] == side[v] {
				gn -= ews[i]
			} else {
				gn += ews[i]
			}
		}
		return gn
	}
	feasibleMove := func(v int) bool {
		dir := -float64(side[v]) // moving v changes load0 by dir·w
		for j := 0; j < d; j++ {
			nl := load0[j] + dir*g.VW[j][v]
			if nl > hi[j]+1e-9 || nl < lo[j]-1e-9 {
				return false
			}
		}
		return true
	}
	apply := func(v int) {
		dir := -float64(side[v])
		for j := 0; j < d; j++ {
			load0[j] += dir * g.VW[j][v]
		}
		side[v] = -side[v]
	}

	moved := make([]bool, n)
	for pass := 0; pass < opt.RefinePasses; pass++ {
		for i := range moved {
			moved[i] = false
		}
		// Balance phase: pull the worst violated dimension back in bounds.
		// As in multi-constraint FM, a balance move may not push any OTHER
		// currently-satisfied dimension out of its bounds — this is exactly
		// why the multilevel approach gets stuck when d ≥ 3 constraints
		// conflict (Table 3 of the paper).
		balanceOK := func(v int, worstJ int) bool {
			dir := -float64(side[v])
			for j := 0; j < d; j++ {
				if j == worstJ {
					continue
				}
				nl := load0[j] + dir*g.VW[j][v]
				cur := load0[j]
				inBounds := cur <= hi[j]+1e-9 && cur >= lo[j]-1e-9
				if inBounds && (nl > hi[j]+1e-9 || nl < lo[j]-1e-9) {
					return false
				}
				if !inBounds { // never worsen an already-violated dimension
					curEx := math.Max(cur-hi[j], lo[j]-cur)
					newEx := math.Max(nl-hi[j], lo[j]-nl)
					if newEx > curEx+1e-9 {
						return false
					}
				}
			}
			return true
		}
		for bal := 0; bal < n; bal++ {
			worstJ, excess, fromSide := -1, 0.0, int8(1)
			for j := 0; j < d; j++ {
				if over := load0[j] - hi[j]; over > excess {
					worstJ, excess, fromSide = j, over, 1
				}
				if under := lo[j] - load0[j]; under > excess {
					worstJ, excess, fromSide = j, under, -1
				}
			}
			if worstJ < 0 {
				break
			}
			best, bestScore := -1, math.Inf(-1)
			for c := 0; c < 256; c++ {
				v := rng.Intn(n)
				if side[v] != fromSide || moved[v] || g.VW[worstJ][v] <= 0 || !balanceOK(v, worstJ) {
					continue
				}
				score := gain(v) / (1 + g.VW[worstJ][v])
				if score > bestScore {
					best, bestScore = v, score
				}
			}
			if best == -1 {
				for v := 0; v < n; v++ {
					if side[v] == fromSide && !moved[v] && g.VW[worstJ][v] > 0 && balanceOK(v, worstJ) {
						best = v
						break
					}
				}
			}
			if best == -1 {
				break // stuck: conflicting constraints (the d ≥ 3 regime)
			}
			apply(best)
			moved[best] = true
		}
		// Gain phase: positive-gain boundary moves respecting all bounds.
		var cands []cand
		for v := 0; v < n; v++ {
			if moved[v] {
				continue
			}
			if gn := gain(v); gn > 0 {
				cands = append(cands, cand{int32(v), gn})
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].g > cands[b].g })
		applied := 0
		for _, c := range cands {
			v := int(c.v)
			if moved[v] {
				continue
			}
			if gn := gain(v); gn > 0 && feasibleMove(v) {
				apply(v)
				moved[v] = true
				applied++
			}
		}
		if applied == 0 {
			break
		}
	}
}

// cand is a refinement move candidate with its cut gain.
type cand struct {
	v int32
	g float64
}
