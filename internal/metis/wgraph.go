// Package metis implements a METIS-style multilevel multi-constraint graph
// partitioner [Karypis–Kumar SC'98], the comparator of Table 3: heavy-edge
// matching coarsening with per-dimension vertex-weight caps, greedy graph
// growing for the initial partition, and FM-style boundary refinement that
// respects all weight constraints. As the paper reports for real METIS, the
// multilevel approach achieves tight balance for d ≤ 2 but cannot guarantee
// balance as d grows — refinement gets stuck when constraints conflict.
package metis

import (
	"sort"
)

// wgraph is a weighted graph used across the multilevel hierarchy: edge
// weights accumulate contracted multi-edges and vertex weights are vectors
// (one entry per balance constraint).
type wgraph struct {
	offsets []int64
	adj     []int32
	ew      []float64   // edge weight, aligned with adj
	vw      [][]float64 // vw[j][v]: weight of vertex v in dimension j
}

func (g *wgraph) n() int { return len(g.offsets) - 1 }

func (g *wgraph) neighbors(v int) ([]int32, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.adj[lo:hi], g.ew[lo:hi]
}

// triple is a directed weighted edge used while building a wgraph.
type triple struct {
	u, v int32
	w    float64
}

// buildWGraph assembles a wgraph from directed triples (both directions must
// be present), merging duplicate edges by summing weights and dropping self
// loops.
func buildWGraph(n int, triples []triple, vw [][]float64) *wgraph {
	counts := make([]int64, n+1)
	for _, t := range triples {
		if t.u != t.v {
			counts[t.u+1]++
		}
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]int32, counts[n])
	ew := make([]float64, counts[n])
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for _, t := range triples {
		if t.u == t.v {
			continue
		}
		adj[cursor[t.u]] = t.v
		ew[cursor[t.u]] = t.w
		cursor[t.u]++
	}
	offsets := make([]int64, n+1)
	out := int64(0)
	type pair struct {
		v int32
		w float64
	}
	var row []pair
	for v := 0; v < n; v++ {
		row = row[:0]
		for i := counts[v]; i < counts[v+1]; i++ {
			row = append(row, pair{adj[i], ew[i]})
		}
		sort.Slice(row, func(a, b int) bool { return row[a].v < row[b].v })
		offsets[v] = out
		for i := 0; i < len(row); {
			j := i
			sum := 0.0
			for j < len(row) && row[j].v == row[i].v {
				sum += row[j].w
				j++
			}
			adj[out] = row[i].v
			ew[out] = sum
			out++
			i = j
		}
	}
	offsets[n] = out
	return &wgraph{offsets: offsets, adj: adj[:out:out], ew: ew[:out:out], vw: vw}
}

// totals returns the per-dimension vertex weight sums.
func (g *wgraph) totals() []float64 {
	out := make([]float64, len(g.vw))
	for j, w := range g.vw {
		for _, x := range w {
			out[j] += x
		}
	}
	return out
}

// cut returns the total weight of edges crossing the bisection.
func (g *wgraph) cut(side []int8) float64 {
	c := 0.0
	for v := 0; v < g.n(); v++ {
		ns, ws := g.neighbors(v)
		for i, u := range ns {
			if int(u) > v && side[u] != side[v] {
				c += ws[i]
			}
		}
	}
	return c
}
