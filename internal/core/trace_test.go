package core

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/obs"
	"mdbgp/internal/vecmath"
)

// TestKWayTraceMultiplexed covers the regression where PartitionK nulled the
// caller's Trace hook: every bisection of a k-way solve must now report,
// tagged with its recursion path.
func TestKWayTraceMultiplexed(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 400, Communities: 4, AvgDegree: 12, InFraction: 0.85, Seed: 5})
	ws := vertexEdgeWeights(g)
	for _, workers := range []int{1, 4} {
		opt := DefaultOptions()
		opt.Seed = 7
		opt.Iterations = 20
		opt.Workers = workers
		var mu sync.Mutex
		byPath := map[string]int{}
		opt.Trace = func(st IterStats) {
			mu.Lock()
			byPath[st.Path]++
			mu.Unlock()
		}
		if _, err := PartitionK(g, ws, 4, opt); err != nil {
			t.Fatal(err)
		}
		// k=4 recursive bisection: root split "" plus child splits "0", "1".
		for _, path := range []string{"", "0", "1"} {
			if byPath[path] == 0 {
				t.Fatalf("workers=%d: no IterStats for bisection path %q (got %v)", workers, path, byPath)
			}
		}
		if len(byPath) != 3 {
			t.Fatalf("workers=%d: unexpected paths %v", workers, byPath)
		}
	}
}

// TestSpanStructureDeterministicAcrossWorkers is the core half of the
// acceptance criterion: span names, nesting, order and attributes must be
// byte-identical at workers 1/2/8 for a fixed seed.
func TestSpanStructureDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 600, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 11})
	ws := vertexEdgeWeights(g)
	structure := func(workers int) string {
		opt := DefaultOptions()
		opt.Seed = 3
		opt.Iterations = 25
		opt.Workers = workers
		root := obs.NewTrace("solve")
		opt.Span = root
		if _, err := PartitionK(g, ws, 5, opt); err != nil {
			t.Fatal(err)
		}
		root.End()
		return root.Snapshot().Structure()
	}
	ref := structure(1)
	if !strings.Contains(ref, "bisect") || !strings.Contains(ref, "gd{") || !strings.Contains(ref, "round{") {
		t.Fatalf("structure missing expected spans:\n%s", ref)
	}
	for _, workers := range []int{2, 8} {
		if got := structure(workers); got != ref {
			t.Fatalf("span structure differs between workers=1 and workers=%d:\n%s\nvs\n%s", workers, ref, got)
		}
	}
}

// TestGDSpanConvergenceTelemetry checks the gd span carries the sampled
// trajectory and the derived convergence attributes, and that the round span
// reports repair moves.
func TestGDSpanConvergenceTelemetry(t *testing.T) {
	g := gen.CliqueChain(2, 20)
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 1
	root := obs.NewTrace("solve")
	opt.Span = root
	if _, err := Bisect(g, ws, opt); err != nil {
		t.Fatal(err)
	}
	root.End()
	v := root.Snapshot()

	var gd, round *obs.SpanView
	v.Walk(func(s *obs.SpanView) {
		switch s.Name {
		case "gd":
			gd = s
		case "round":
			round = s
		}
	})
	if gd == nil || round == nil {
		t.Fatalf("missing gd/round spans:\n%s", v.Structure())
	}
	final, ok := gd.Float("final_locality")
	if !ok || final <= 0 || final > 1 {
		t.Fatalf("final_locality = %v, %v", final, ok)
	}
	if _, ok := gd.Float("iters_to_90"); !ok {
		t.Fatal("iters_to_90 attr missing")
	}
	traj, _ := gd.Attrs["trajectory"].(string)
	if traj == "" || !strings.HasPrefix(traj, "0:") {
		t.Fatalf("trajectory attr = %q", traj)
	}
	if _, ok := round.Float("repair_moves"); !ok {
		t.Fatal("repair_moves attr missing")
	}
}

// TestConvSamplerMatchesExactLocality validates the O(n) locality sampling
// against the O(m) reference: at iteration t (t > 0, no noise) the sampler
// evaluates EL at z = x(t−1), which is exactly what the per-iteration Trace
// hook reports after iteration t−1. Vertex fixing is disabled so the
// frozen-contribution estimator is exact for the whole run (with fixing on,
// locked vertices contribute their lock-time value and the tail of the
// trajectory is a documented underestimate).
func TestConvSamplerMatchesExactLocality(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 800, Communities: 2, AvgDegree: 14, InFraction: 0.9, Seed: 9})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 4
	opt.Iterations = 48
	opt.VertexFixing = false
	opt.Workers = 3 // exercise the pooled reduction path of the sampler
	exact := map[int]float64{}
	opt.Trace = func(st IterStats) { exact[st.Iter] = st.ExpectedLocality }
	root := obs.NewTrace("solve")
	opt.Span = root
	if _, err := Bisect(g, ws, opt); err != nil {
		t.Fatal(err)
	}
	root.End()

	var traj string
	root.Snapshot().Walk(func(s *obs.SpanView) {
		if s.Name == "gd" {
			traj, _ = s.Attrs["trajectory"].(string)
		}
	})
	if traj == "" {
		t.Fatal("no trajectory recorded")
	}
	compared := 0
	for _, sample := range strings.Fields(traj) {
		it, loc, ok := strings.Cut(sample, ":")
		if !ok {
			t.Fatalf("malformed trajectory sample %q", sample)
		}
		iter, err := strconv.Atoi(it)
		if err != nil {
			t.Fatal(err)
		}
		got, err := strconv.ParseFloat(loc, 64)
		if err != nil {
			t.Fatal(err)
		}
		if iter == 0 {
			continue // t=0 samples the noisy start, which Trace never sees
		}
		want, ok := exact[iter-1]
		if !ok {
			continue
		}
		// Tolerance covers summation-order differences plus the %.6f
		// rounding of the trajectory attribute.
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("sampled locality at iter %d = %v, exact = %v", iter, got, want)
		}
		compared++
	}
	if compared < 2 {
		t.Fatalf("only %d trajectory samples compared against the exact reference", compared)
	}
}

// TestConvFinalLocalityExact: the final_locality attribute is not read off
// the estimated trajectory — it is an exact quadratic-form pass over the
// fractional solution, and must match the O(m) reference bit-for-bit up to
// summation order, with vertex fixing on (the default).
func TestConvFinalLocalityExact(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 800, Communities: 2, AvgDegree: 14, InFraction: 0.9, Seed: 9})
	ws := vertexEdgeWeights(g)
	wg := coarsen.Wrap(g, ws)
	opt := DefaultOptions()
	opt.Seed = 4
	opt.Iterations = 48
	opt.Workers = 3
	root := obs.NewTrace("solve")
	opt.Span = root
	x, _, err := OptimizeWeighted(wg, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	var got float64
	ok := false
	root.Snapshot().Walk(func(s *obs.SpanView) {
		if s.Name == "gd" {
			got, ok = s.Float("final_locality")
		}
	})
	if !ok {
		t.Fatal("gd span lacks final_locality")
	}
	want := vecmath.ExpectedLocalityWeighted(wg.Offsets, wg.Adj, wg.EW, x)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("final_locality = %v, exact EL(x) = %v", got, want)
	}
}

// TestSpanDoesNotChangeResult: tracing must be a pure observer — the
// partition with a span attached is bit-identical to one without.
func TestSpanDoesNotChangeResult(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 500, Communities: 3, AvgDegree: 10, InFraction: 0.85, Seed: 13})
	ws := vertexEdgeWeights(g)
	run := func(withSpan bool) []int32 {
		opt := DefaultOptions()
		opt.Seed = 6
		opt.Iterations = 20
		if withSpan {
			opt.Span = obs.NewTrace("solve")
		}
		asgn, err := PartitionK(g, ws, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		return asgn.Parts
	}
	plain, traced := run(false), run(true)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("tracing changed the partition at vertex %d", i)
		}
	}
}

// TestConvSamplerZeroEdges: a graph with no edges must sample locality 1
// without dividing by zero.
func TestConvSamplerZeroEdges(t *testing.T) {
	g := graph.NewBuilder(16).Build()
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1
	}
	wg := coarsen.Wrap(g, [][]float64{w})
	c := newConvSampler(wg, 10, vecmath.NewPool(1))
	if !c.wantSample(0) {
		t.Fatal("iteration 0 must be sampled")
	}
	c.record(0, 0)
	if len(c.locs) != 1 || c.locs[0] != 1 {
		t.Fatalf("zero-edge sample = %v", c.locs)
	}
}
