package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
	"mdbgp/internal/vecmath"
)

// DirectKOptions configures the direct (non-recursive) k-way relaxation.
type DirectKOptions struct {
	// Epsilon is the per-dimension, per-bucket balance tolerance: every
	// bucket must hold (1±ε)·W_j/k of each weight function.
	Epsilon float64
	// Iterations of projected gradient ascent (default 100).
	Iterations int
	// StepLength scales the per-iteration progress target (default 2).
	StepLength float64
	Seed       int64
	// RepairBalance greedily restores ε-balance after rounding (default
	// behavior of DefaultDirectKOptions).
	RepairBalance bool
	// MaxCells caps n·k, the memory footprint that makes this formulation
	// impractical at scale (the paper's reason for recursive bisection,
	// §3.3). 0 defaults to 2e7 cells (~160 MB of float64).
	MaxCells int64
	// Workers is the number of goroutines used by the gradient, projection
	// and reduction loops; 0 selects GOMAXPROCS, 1 forces the serial path.
	// Results are bit-identical for a fixed Seed regardless of Workers.
	Workers int
}

// DefaultDirectKOptions mirrors DefaultOptions for the direct relaxation.
func DefaultDirectKOptions() DirectKOptions {
	return DirectKOptions{Epsilon: 0.05, Iterations: 100, StepLength: 2, RepairBalance: true}
}

func (o *DirectKOptions) normalize() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.05
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.StepLength <= 0 {
		o.StepLength = 2
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 2e7
	}
}

// DirectKWay implements the §3.3 "problem relaxation for k buckets" that
// the paper describes but sets aside for scalability reasons: each vertex v
// carries a probability vector p_v over the k buckets, and projected
// gradient ascent maximizes Σ_(u,v)∈E Σ_j p_uj·p_vj subject to the
// per-vertex simplex constraints and per-bucket balance slabs
// |Σ_v w(j)_v·p_vb − W_j/k| ≤ ε·W_j/k. Each iteration costs O(k·|E|) time
// and O(k·|V|) memory — fine for moderate k, and the reason the paper's
// production setting uses recursive bisection instead. Rounding samples a
// bucket per vertex from p_v and a greedy repair restores exact ε-balance.
func DirectKWay(g *graph.Graph, ws [][]float64, k int, opt DirectKOptions) (*partition.Assignment, error) {
	opt.normalize()
	n := g.N()
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d, want >= 1", k)
	}
	if err := checkWeights(n, ws); err != nil {
		return nil, err
	}
	if int64(n)*int64(k) > opt.MaxCells {
		return nil, fmt.Errorf("core: direct k-way needs %d cells > cap %d; use PartitionK (recursive bisection)",
			int64(n)*int64(k), opt.MaxCells)
	}
	asgn := partition.NewAssignment(n, k)
	if n == 0 || k == 1 {
		return asgn, nil
	}

	d := len(ws)
	totals := make([]float64, d)
	for j, w := range ws {
		for _, v := range w {
			totals[j] += v
		}
	}
	wNormSq := make([]float64, d)
	for j, w := range ws {
		for _, v := range w {
			wNormSq[j] += v * v
		}
	}

	pool := vecmath.NewPool(opt.Workers)
	rng := rand.New(rand.NewSource(opt.Seed))
	p := make([]float64, n*k)
	prev := make([]float64, n*k)
	grad := make([]float64, n*k)
	buf := make([]float64, k)
	// Uniform start plus noise (the analog of the t=0 Gaussian kick; the
	// uniform point is the saddle).
	noise := opt.StepLength / float64(opt.Iterations)
	for v := 0; v < n; v++ {
		row := p[v*k : v*k+k]
		for j := range row {
			row[j] = 1.0/float64(k) + rng.NormFloat64()*noise
		}
		projectSimplex(row, buf)
	}

	L := opt.StepLength * math.Sqrt(float64(n)) / float64(opt.Iterations)
	for t := 0; t < opt.Iterations; t++ {
		// Gradient: G[v][b] = Σ_{u∈N(v)} p[u][b] — k values per edge stub.
		// Rows (vertices) are independent, so they shard over the pool.
		pool.For(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				gv := grad[v*k : v*k+k]
				for b := range gv {
					gv[b] = 0
				}
				for _, u := range g.Neighbors(v) {
					pu := p[int(u)*k : int(u)*k+k]
					for b := 0; b < k; b++ {
						gv[b] += pu[b]
					}
				}
			}
		})
		gnorm := vecmath.Norm2Pool(grad, pool)
		if gnorm < 1e-12 {
			break
		}
		gamma := L / gnorm
		copy(prev, p)
		// Adaptive step: the simplex clipping can absorb most of the move,
		// so double γ until the realized progress reaches L/2 (the same
		// §3.2 rule as the 2-way algorithm).
		for attempt := 0; ; attempt++ {
			vecmath.AXPYPool(p, prev, gamma, grad, pool)
			// One-shot alternating projection: per-bucket balance
			// hyperplanes (centered, as in the 2-way algorithm), then the
			// vertex simplices. The column sums are chunk-ordered
			// reductions so the step is worker-count independent.
			for j := 0; j < d; j++ {
				if wNormSq[j] <= 0 {
					continue
				}
				wj := ws[j]
				target := totals[j] / float64(k)
				for b := 0; b < k; b++ {
					col := pool.ReduceSum(n, func(lo, hi int) float64 {
						s := 0.0
						for v := lo; v < hi; v++ {
							s += wj[v] * p[v*k+b]
						}
						return s
					})
					alpha := (col - target) / wNormSq[j]
					pool.For(n, func(lo, hi int) {
						for v := lo; v < hi; v++ {
							p[v*k+b] -= alpha * wj[v]
						}
					})
				}
			}
			pool.For(n, func(lo, hi int) {
				scratch := make([]float64, k) // per-range: buf would race
				for v := lo; v < hi; v++ {
					projectSimplex(p[v*k:v*k+k], scratch)
				}
			})
			progress := pool.ReduceSum(n*k, func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					dlt := p[i] - prev[i]
					s += dlt * dlt
				}
				return s
			})
			if math.Sqrt(progress) >= L/2 || attempt >= 4 {
				break
			}
			gamma *= 2
		}
	}

	// Randomized rounding: sample a bucket from each vertex's distribution.
	for v := 0; v < n; v++ {
		row := p[v*k : v*k+k]
		r := rng.Float64()
		acc := 0.0
		choice := k - 1
		for b := 0; b < k; b++ {
			acc += row[b]
			if r < acc {
				choice = b
				break
			}
		}
		asgn.Parts[v] = int32(choice)
	}
	if opt.RepairBalance {
		repairKWay(g, ws, asgn, totals, opt.Epsilon, rng)
	}
	return asgn, nil
}

// projectSimplex projects row onto the probability simplex in place
// (Duchi et al. 2008: sort, find the threshold τ, clip). buf is scratch of
// the same length.
func projectSimplex(row, buf []float64) {
	k := len(row)
	copy(buf, row)
	sort.Sort(sort.Reverse(sort.Float64Slice(buf)))
	cum := 0.0
	tau := 0.0
	for i := 0; i < k; i++ {
		cum += buf[i]
		if t := (cum - 1) / float64(i+1); buf[i]-t > 0 {
			tau = t
		}
	}
	for i := range row {
		v := row[i] - tau
		if v < 0 {
			v = 0
		}
		row[i] = v
	}
}

// repairKWay restores ε-balance after rounding by greedy vertex moves. A
// move is accepted when it strictly decreases the balance potential
// Φ = Σ_{j,b} (overload²+underload²), which — unlike requiring the maximum
// violation to drop — can trade a large overload in one dimension for a
// small underload in another and therefore escapes hub-concentration
// deadlocks (a bucket with few vertices but many edges). Φ is bounded below
// and strictly decreasing, and a move cap guards unattainable instances.
func repairKWay(g *graph.Graph, ws [][]float64, asgn *partition.Assignment, totals []float64, eps float64, rng *rand.Rand) {
	n := len(asgn.Parts)
	k := asgn.K
	d := len(ws)
	loads := make([][]float64, d)
	for j := range loads {
		loads[j] = partition.Loads(asgn, ws[j])
	}
	// excess returns the normalized violation of one (dim, load) pair.
	excess := func(j int, load float64) float64 {
		target := totals[j] / float64(k)
		if target <= 0 {
			return 0
		}
		if over := load - (1+eps)*target; over > 0 {
			return over / totals[j]
		}
		if under := (1-eps)*target - load; under > 0 {
			return under / totals[j]
		}
		return 0
	}
	// bucketPot is Φ restricted to one bucket (sum over dims).
	bucketPot := func(b int) float64 {
		p := 0.0
		for j := 0; j < d; j++ {
			e := excess(j, loads[j][b])
			p += e * e
		}
		return p
	}
	// worstPair drives candidate selection: the most violated (dim, bucket).
	worstPair := func() (int, int, bool) {
		worst, wj, wb, over := 0.0, -1, -1, true
		for j := 0; j < d; j++ {
			target := totals[j] / float64(k)
			if target <= 0 {
				continue
			}
			for b := 0; b < k; b++ {
				if ex := (loads[j][b] - (1+eps)*target) / totals[j]; ex > worst+1e-12 {
					worst, wj, wb, over = ex, j, b, true
				}
				if ex := ((1-eps)*target - loads[j][b]) / totals[j]; ex > worst+1e-12 {
					worst, wj, wb, over = ex, j, b, false
				}
			}
		}
		return wj, wb, over
	}
	// deltaPot is the change of Φ when v moves from bucket a to bucket b.
	deltaPot := func(v, a, b int) float64 {
		before := bucketPot(a) + bucketPot(b)
		after := 0.0
		for j := 0; j < d; j++ {
			ea := excess(j, loads[j][a]-ws[j][v])
			eb := excess(j, loads[j][b]+ws[j][v])
			after += ea*ea + eb*eb
		}
		return after - before
	}

	for move := 0; move < 4*n; move++ {
		j, bucket, over := worstPair()
		if j < 0 {
			break
		}
		bestV, bestFrom, bestTo := -1, -1, -1
		bestDelta, bestDamage := -1e-15, 0
		consider := func(v, from, to int) {
			if int(asgn.Parts[v]) != from {
				return
			}
			dp := deltaPot(v, from, to)
			if dp >= bestDelta {
				return
			}
			same, other := 0, 0
			for _, u := range g.Neighbors(v) {
				switch int(asgn.Parts[u]) {
				case from:
					same++
				case to:
					other++
				}
			}
			dm := same - other
			if bestV == -1 || dp < bestDelta-1e-15 || dm < bestDamage {
				bestV, bestFrom, bestTo = v, from, to
				bestDelta, bestDamage = dp, dm
			}
		}
		for partner := 0; partner < k; partner++ {
			if partner == bucket {
				continue
			}
			from, to := bucket, partner
			if !over {
				from, to = partner, bucket
			}
			if n <= 1024 {
				for v := 0; v < n; v++ {
					consider(v, from, to)
				}
			} else {
				for c := 0; c < 192; c++ {
					consider(rng.Intn(n), from, to)
				}
			}
		}
		if bestV == -1 && n > 1024 {
			// Sampling found nothing: fall back to a full scan once.
			for partner := 0; partner < k; partner++ {
				if partner == bucket {
					continue
				}
				from, to := bucket, partner
				if !over {
					from, to = partner, bucket
				}
				for v := 0; v < n; v++ {
					consider(v, from, to)
				}
			}
		}
		if bestV == -1 {
			break // no potential-reducing single move exists
		}
		for jj := 0; jj < d; jj++ {
			loads[jj][bestFrom] -= ws[jj][bestV]
			loads[jj][bestTo] += ws[jj][bestV]
		}
		asgn.Parts[bestV] = int32(bestTo)
	}
}
