package core

import (
	"math"
	"math/rand"

	"mdbgp/internal/coarsen"
)

// repairBalance greedily restores ε-balance after randomized rounding. It
// repeatedly picks the dimension with the worst relative violation and moves
// one vertex from its heavy side, choosing the move that (a) strictly
// reduces the maximum violation across all dimensions and (b) among those,
// does the least locality damage (in edge WEIGHT, so coarse levels count
// their accumulated multi-edges), preferring vertices whose fractional
// value was most uncertain. Max-violation decreases strictly every move, so
// the loop terminates; a move cap guards degenerate instances where ε-balance
// is unattainable (e.g. a vertex heavier than ε·W).
func repairBalance(wg *coarsen.Graph, side []int8, x []float64,
	targets, halves, totals []float64, rng *rand.Rand) int {

	ws := wg.VW
	n := len(side)
	d := len(ws)
	if n == 0 {
		return 0
	}
	diff := make([]float64, d) // Σ w(j)·side − target_j
	for j, w := range ws {
		v := -targets[j]
		for i, wi := range w {
			v += wi * float64(side[i])
		}
		diff[j] = v
	}

	relViol := func(dd []float64) (float64, int) {
		worst, worstJ := 0.0, -1
		for j := range dd {
			if totals[j] <= 0 {
				continue
			}
			excess := (math.Abs(dd[j]) - halves[j]) / totals[j]
			if excess > worst+1e-12 {
				worst, worstJ = excess, j
			}
		}
		return worst, worstJ
	}

	damage := func(v int) float64 {
		same, other := 0.0, 0.0
		ns, ews := wg.Neighbors(v)
		for i, u := range ns {
			w := 1.0
			if ews != nil {
				w = ews[i]
			}
			if side[u] == side[v] {
				same += w
			} else {
				other += w
			}
		}
		return same - other
	}

	newMaxViol := func(v int) float64 {
		delta := -2 * float64(side[v])
		worst := 0.0
		for j := range diff {
			if totals[j] <= 0 {
				continue
			}
			nd := diff[j] + delta*ws[j][v]
			excess := (math.Abs(nd) - halves[j]) / totals[j]
			if excess > worst {
				worst = excess
			}
		}
		return worst
	}

	maxMoves := 2*n + 64
	moves := 0
	for ; moves < maxMoves; moves++ {
		cur, j := relViol(diff)
		if j < 0 {
			break
		}
		heavy := int8(1)
		if diff[j] < 0 {
			heavy = -1
		}

		// Candidate pool: random sample on the heavy side; full scan for
		// small graphs or when sampling comes up empty.
		best, bestDamage := -1, 0.0
		bestViol := cur
		consider := func(v int) {
			if side[v] != heavy {
				return
			}
			nv := newMaxViol(v)
			if nv >= cur-1e-12 {
				return // must strictly reduce the max violation
			}
			dm := damage(v)
			if best == -1 || nv < bestViol-1e-12 ||
				(nv <= bestViol+1e-12 && (dm < bestDamage ||
					(dm == bestDamage && math.Abs(x[v]) < math.Abs(x[best])))) {
				best, bestDamage, bestViol = v, dm, nv
			}
		}
		if n <= 512 {
			for v := 0; v < n; v++ {
				consider(v)
			}
		} else {
			for c := 0; c < 192; c++ {
				consider(rng.Intn(n))
			}
			if best == -1 {
				for v := 0; v < n && best == -1; v++ {
					consider(v)
				}
			}
		}
		if best == -1 {
			break // ε-balance unattainable by single moves
		}
		delta := -2 * float64(side[best])
		for jj := range diff {
			diff[jj] += delta * ws[jj][best]
		}
		side[best] = -side[best]
	}
	return moves
}
