package core

import (
	"fmt"
	"strings"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/obs"
	"mdbgp/internal/vecmath"
)

// convSampler records the expected-locality trajectory of one GD run for the
// span tree, cheaply enough to leave on in production: the <2% trace-overhead
// budget rules out touching the arc arrays per sample (the naive
// ExpectedLocalityWeighted pass is one extra SpMV each), so samples are
// computed in O(n) from state the loop already has.
//
// At sample time grad holds the masked gradient A_w·z — exact row sums for
// every FREE row — so the free half of zᵀA_wz is Σ_{u free} z_u·grad_u, one
// sequential pass over vectors already hot in cache. Fixed rows are skipped
// by the masked SpMV, and recovering their true row sums would cost arc-array
// work the budget does not allow; instead each vertex contributes
// x_u·(A_w·z)_u frozen at the moment it locks (its gradient entry is still
// exact that iteration), accumulated into qLocked as an O(1) side effect of
// the fixing loop:
//
//	zᵀA_wz ≈ Σ_{u free} z_u·grad_u + Σ_{u fixed} x_u·(A_w·z(t_u))_u
//
// The trajectory is therefore an estimator: exact until the first vertex
// locks (and for the whole run when vertex fixing is off), and a slight
// underestimate late in the run, since a locked vertex's neighbors keep
// aligning with it after its contribution froze. The headline
// final_locality attribute is NOT taken from the trajectory: annotate
// computes it with one exact quadratic-form pass over the arcs, paid once
// per GD run rather than once per sample. iters_to_90 is resolved against
// the trajectory's own final sample, so it is self-consistent with the
// curve it summarizes.
//
// Everything here reduces through the pool's fixed-chunk ReduceSum and a
// serially-ordered fixing loop, so the recorded values are bit-identical at
// any worker count, matching the structural determinism of the span tree.
type convSampler struct {
	wg     *coarsen.Graph
	pool   *vecmath.Pool
	w      float64 // total edge weight W (each edge once)
	stride int
	// qLocked = Σ_{u fixed} x_u·(A_w·z(t_u))_u, frozen at each lock.
	qLocked float64
	iters   []int
	locs    []float64
}

// convSamples caps the trajectory length; the stride spreads them evenly
// over the iteration budget.
const convSamples = 8

func newConvSampler(wg *coarsen.Graph, iterations int, pool *vecmath.Pool) *convSampler {
	w := 0.0
	if wg.EW == nil {
		w = float64(len(wg.Adj)) / 2
	} else {
		w = pool.ReduceSum(len(wg.EW), func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += wg.EW[i]
			}
			return s
		}) / 2
	}
	stride := (iterations + convSamples - 1) / convSamples
	if stride < 1 {
		stride = 1
	}
	return &convSampler{wg: wg, pool: pool, w: w, stride: stride}
}

// onFix freezes a just-fixed vertex's locality contribution: xi is its
// snapped ±1 value and gi its gradient entry, still the exact row sum
// (A_w·z)_i this iteration because the vertex was free during the SpMV.
func (c *convSampler) onFix(gi, xi float64) {
	c.qLocked += xi * gi
}

// wantSample reports whether iteration t falls on the sampling stride. The
// caller then folds Σ_{u free} z_u·grad_u into the masked-norm reduction it
// performs anyway and hands the sum to record — fusing the two passes keeps
// a sample's marginal cost to the one extra z read.
func (c *convSampler) wantSample(t int) bool {
	return t%c.stride == 0
}

// record appends the sample for iteration t. freeQuad must be
// Σ_{u free} z_u·grad_u with grad the masked gradient A_w·z (computed before
// any fallback overwrites it).
func (c *convSampler) record(t int, freeQuad float64) {
	if c.w == 0 {
		c.iters = append(c.iters, t)
		c.locs = append(c.locs, 1)
		return
	}
	quad := c.qLocked + freeQuad
	c.iters = append(c.iters, t)
	c.locs = append(c.locs, (quad/4+c.w/2)/c.w)
}

// finalLocality computes the exact EL(x) = (xᵀA_wx/4 + W/2)/W with one
// parallel pass over the arcs. Each arc is visited once per endpoint, so the
// row-major sum is exactly xᵀA_wx.
func (c *convSampler) finalLocality(x []float64) float64 {
	if c.w == 0 {
		return 1
	}
	wg := c.wg
	quad := c.pool.ReduceSum(wg.N(), func(lo, hi int) float64 {
		s := 0.0
		for u := lo; u < hi; u++ {
			row := wg.Adj[wg.Offsets[u]:wg.Offsets[u+1]]
			ru := 0.0
			if wg.EW == nil {
				for _, v := range row {
					ru += x[v]
				}
			} else {
				wrow := wg.EW[wg.Offsets[u]:wg.Offsets[u+1]]
				for j, v := range row {
					ru += wrow[j] * x[v]
				}
			}
			s += x[u] * ru
		}
		return s
	})
	return (quad/4 + c.w/2) / c.w
}

// annotate writes the convergence telemetry onto the gd span: the sampled
// locality trajectory, the exact final locality of x, and the first sampled
// iteration reaching 90% of the trajectory's final sample (the headline
// iterations-to-90% number).
func (c *convSampler) annotate(sp *obs.Span, x []float64) {
	if len(c.locs) == 0 {
		return
	}
	last := c.locs[len(c.locs)-1]
	to90 := c.iters[len(c.iters)-1]
	for i, l := range c.locs {
		if l >= 0.9*last {
			to90 = c.iters[i]
			break
		}
	}
	var b strings.Builder
	for i := range c.locs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.6f", c.iters[i], c.locs[i])
	}
	sp.SetAttr("final_locality", c.finalLocality(x))
	sp.SetAttr("iters_to_90", to90)
	sp.SetAttr("trajectory", b.String())
}
