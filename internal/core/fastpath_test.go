package core

// Coverage for the speed-of-light kernel paths: reordered SpMV layouts must
// be byte-identical to the plain path, and the incremental-gradient path
// must be deterministic across worker counts while staying close to the
// full-recompute trajectory in solution quality.

import (
	"testing"

	"mdbgp/internal/gen"
	"mdbgp/internal/partition"
	"mdbgp/internal/reorder"
)

func TestReorderByteIdenticalToPlain(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 9000, Communities: 3, AvgDegree: 12, InFraction: 0.8, Seed: 7})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 11
	opt.Workers = 1
	ref, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []reorder.Method{reorder.Degree, reorder.BFS, reorder.RCM} {
		for _, w := range workerCounts {
			opt.Reorder = m
			opt.Workers = w
			res, err := Bisect(g, ws, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.X {
				if res.X[i] != ref.X[i] {
					t.Fatalf("reorder=%v workers=%d: X[%d] = %v, want %v (not byte-identical)",
						m, w, i, res.X[i], ref.X[i])
				}
			}
			assertSameParts(t, "reorder "+m.String(), ref.Assignment, res.Assignment)
			if res.Iterations != ref.Iterations || res.RepairMoves != ref.RepairMoves {
				t.Fatalf("reorder=%v workers=%d: iterations/moves %d/%d, want %d/%d",
					m, w, res.Iterations, res.RepairMoves, ref.Iterations, ref.RepairMoves)
			}
		}
	}
}

func TestReorderKWayByteIdentical(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 8000, Communities: 5, AvgDegree: 10, InFraction: 0.8, Seed: 19})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 23
	ref, err := PartitionK(g, ws, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Reorder = reorder.Degree
	res, err := PartitionK(g, ws, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameParts(t, "kway reorder", ref, res)
}

func TestIncrementalGradientDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 9000, Communities: 2, AvgDegree: 12, InFraction: 0.85, Seed: 5})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 31
	opt.IncrementalGradient = true
	opt.Workers = 1
	ref, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		opt.Workers = w
		res, err := Bisect(g, ws, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.X {
			if res.X[i] != ref.X[i] {
				t.Fatalf("workers=%d: incremental X[%d] = %v, want %v (not bit-identical)",
					w, i, res.X[i], ref.X[i])
			}
		}
		assertSameParts(t, "incremental", ref.Assignment, res.Assignment)
	}
	// Reorder composes with the incremental path and must not change results.
	opt.Workers = 2
	opt.Reorder = reorder.RCM
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if res.X[i] != ref.X[i] {
			t.Fatalf("incremental+reorder: X[%d] = %v, want %v", i, res.X[i], ref.X[i])
		}
	}
}

func TestIncrementalResyncOneMatchesFull(t *testing.T) {
	// ResyncEvery = 1 means every gradient is an exact recompute, so the run
	// must be byte-identical to a plain one.
	g, _ := gen.SBM(gen.SBMConfig{N: 6000, Communities: 2, AvgDegree: 10, InFraction: 0.85, Seed: 3})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 17
	ref, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.IncrementalGradient = true
	opt.ResyncEvery = 1
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if res.X[i] != ref.X[i] {
			t.Fatalf("resync=1: X[%d] = %v, want %v", i, res.X[i], ref.X[i])
		}
	}
	assertSameParts(t, "resync=1", ref.Assignment, res.Assignment)
}

func TestIncrementalGradientQuality(t *testing.T) {
	// The incremental trajectory drifts from the full one only between
	// resyncs; final solution quality must stay comparable.
	g, _ := gen.SBM(gen.SBMConfig{N: 9000, Communities: 2, AvgDegree: 12, InFraction: 0.85, Seed: 41})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 43
	full, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.IncrementalGradient = true
	inc, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	lf := partition.EdgeLocality(g, full.Assignment)
	li := partition.EdgeLocality(g, inc.Assignment)
	if li < lf-0.05 {
		t.Fatalf("incremental locality %.4f, full %.4f: degraded more than 5pp", li, lf)
	}
}
