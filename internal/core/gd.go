// Package core implements GD, the paper's contribution (Algorithm 1):
// multi-dimensional balanced graph 2-partitioning by randomized projected
// gradient ascent on the continuous relaxation
//
//	maximize ½·xᵀAx   subject to   x ∈ B∞ ∩ ⋂_j S^j_ε,
//
// followed by randomized rounding. Each iteration adds Gaussian noise (only
// at t = 0 in practice, §3.2), takes a gradient step y = (I + γ_t·A)·z, and
// projects back onto the feasible region. The practical refinements of §3.2
// — adaptive step size targeting constant per-iteration progress and vertex
// fixing — are implemented and individually switchable so the Figure 8–10
// ablations can be reproduced. k-way partitions use recursive bisection
// (§3.3) with asymmetric split targets for non-powers of two.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/graph"
	"mdbgp/internal/obs"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
	"mdbgp/internal/reorder"
	"mdbgp/internal/vecmath"
)

// Options configures a GD run. Use DefaultOptions as the starting point;
// zero numeric fields fall back to the paper's defaults.
type Options struct {
	// Epsilon is the per-dimension balance tolerance ε of Definition 2.1.
	Epsilon float64
	// Iterations is I, the fixed iteration budget (paper default 100).
	Iterations int
	// StepLength is the target per-iteration progress in units of √n/I; the
	// paper finds 2 works well across graphs (Figure 8).
	StepLength float64
	// Adaptive rescales γ_t every iteration so ‖x(t+1) − x(t)‖ stays close
	// to the target step length (§3.2). When false, γ is frozen to
	// FixedGamma (or derived once from the first gradient if zero).
	Adaptive bool
	// FixedGamma is the constant step size used when Adaptive is false.
	FixedGamma float64
	// NoiseScale is the standard deviation of the t=0 Gaussian noise per
	// coordinate; 0 defaults to StepLength/Iterations so the initial kick
	// has the same norm as a regular step.
	NoiseScale float64
	// VertexFixing snaps coordinates with |x_i| ≥ FixThreshold to ±1 and
	// removes them from the optimization (§3.2).
	VertexFixing bool
	// FixThreshold is the |x_i| snap threshold (default 0.99).
	FixThreshold float64
	// Projection selects and configures the projection algorithm (§3.1).
	Projection project.Options
	// Seed drives all randomness (noise, rounding, repair); runs are
	// deterministic given a seed.
	Seed int64
	// Workers is the number of goroutines used by the SpMV gradient step,
	// the vector kernels, the projection, and — in PartitionK — concurrent
	// recursive bisection of sibling subgraphs; 0 selects GOMAXPROCS, 1
	// forces the serial path. All reductions are chunk-ordered, so for a
	// fixed Seed the result is bit-identical regardless of Workers.
	Workers int
	// TargetFraction α is the weight fraction assigned to side V1 (part 0);
	// 0 defaults to ½. Recursive partitioning uses α = ⌈k/2⌉/k.
	TargetFraction float64
	// RepairBalance greedily moves the most fractional vertices after
	// rounding until every dimension is within ε (the paper notes residual
	// rounding imbalance is "fixed in the end", Figure 9).
	RepairBalance bool
	// WarmStart, when non-nil, initializes the fractional solution x instead
	// of the origin (values are clamped into [-1, 1]) and suppresses the
	// t = 0 Gaussian noise — the multilevel V-cycle prolongates each coarse
	// solution through this field. Must have length n when set.
	WarmStart []float64
	// WarmParts, when non-nil, carries a prior k-way assignment into
	// PartitionK's recursive bisection: before each 2-way split, vertices
	// whose prior part falls in the split's left (right) part range seed the
	// fractional solution at +WarmPartDamp (−WarmPartDamp) via WarmStart,
	// and the slice is restricted alongside the weights for the child
	// recursions. Values outside the subtree's part range (including -1 for
	// vertices unknown to the prior solution) start neutral at 0. Must have
	// one entry per vertex when set. This is the incremental-repartitioning
	// entry point: the warm solve runs the same projection constraints,
	// rounding and balance repair as a cold one, so ε-balance guarantees are
	// unchanged.
	WarmParts []int32
	// Trace, when set, receives per-iteration statistics (costs one extra
	// SpMV per iteration). PartitionK multiplexes the hook across the
	// recursive bisection tree — calls are serialized, and IterStats.Path
	// identifies the bisection reporting.
	Trace func(IterStats)
	// Span, when set, is the parent observability span: the run records a
	// "gd" child span with convergence telemetry (sampled locality
	// trajectory, iterations to 90% of final locality) and BisectWeighted a
	// "round" span for rounding + repair. Unlike Trace, span telemetry is
	// sampled at a fixed iteration stride and adds O(n) per sample, cheap
	// enough to leave on for every served request. Span structure and
	// attributes are deterministic for a fixed Seed at any Workers.
	Span *obs.Span
	// Reorder selects a locality-improving vertex ordering for the gradient
	// SpMV (internal/reorder): degree-sorted, BFS, or reverse Cuthill–McKee.
	// The ordering is strictly a kernel-layout detail — per-row sums keep
	// their original floating-point order and results are written back
	// through the inverse permutation — so for a fixed Seed the run is
	// byte-identical to an unreordered one; only the SpMV gets faster.
	Reorder reorder.Method
	// Layout, when non-nil and Reorder is set, injects a prebuilt reorder
	// layout instead of rebuilding one per solve. The layout must mirror this
	// exact CSR and edge weighting under the same Reorder method — callers
	// key cached layouts by graph content hash plus method — and optimize
	// falls back to a rebuild whenever the shape or weighting disagrees, so a
	// stale injection degrades to a rebuild, never to a wrong answer. The run
	// clones the layout before use (clones share the immutable permuted CSR,
	// never scratch), so one cached layout serves concurrent solves. Because
	// a reordered solve is byte-identical to an unreordered one, injection
	// can never change results and the field stays outside every fingerprint.
	Layout *reorder.Layout
	// Kernel32 runs the gradient SpMV through the float32 kernels: x and the
	// edge weights are rounded to float32 per value, halving the gathered
	// bytes per arc, while every row still accumulates in float64 in its
	// original arc order. Results remain bit-identical at any worker count
	// and with or without Reorder/Layout, but NOT bit-identical to the
	// float64 kernels — the option is part of the cache fingerprint and is
	// refused by engines whose byte-stability contract it would break.
	// Kernel32 disables IncrementalGradient (the delta scatter maintains the
	// float64 gradient and would diverge from the 32-bit full recompute).
	Kernel32 bool
	// IncrementalGradient maintains the gradient across iterations by
	// scattering only the deltas of coordinates that actually moved
	// (snippet idiom of the reference GD implementations): once warmed up,
	// each iteration updates grad[v] += w_uv·(z_u − prev_u) for moved
	// neighbors u instead of recomputing the full SpMV, with an exact
	// recompute every ResyncEvery iterations to stop float drift. The
	// delta scatter is serial and ordered, so results remain bit-identical
	// at any worker count — but the trajectory differs in the last ulps
	// from a full-recompute run, so the option is part of the cache
	// fingerprint and has its own goldens.
	IncrementalGradient bool
	// ResyncEvery is the exact-recompute period of IncrementalGradient
	// (default 16): at most ResyncEvery−1 consecutive incremental updates
	// run between full SpMVs. 1 disables incremental updates entirely.
	ResyncEvery int
}

// DefaultOptions returns the configuration used for the paper's headline
// results: ε = 5%, 100 iterations, step length 2·√n/100, adaptive step size
// with vertex fixing, one-shot alternating projection onto the balance
// hyperplanes.
func DefaultOptions() Options {
	return Options{
		Epsilon:       0.05,
		Iterations:    100,
		StepLength:    2,
		Adaptive:      true,
		VertexFixing:  true,
		FixThreshold:  0.99,
		Projection:    project.Options{Method: project.AlternatingOneShot, Center: true},
		RepairBalance: true,
	}
}

func (o *Options) normalize() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.05
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.StepLength <= 0 {
		o.StepLength = 2
	}
	if o.FixThreshold <= 0 || o.FixThreshold > 1 {
		o.FixThreshold = 0.99
	}
	if o.TargetFraction <= 0 || o.TargetFraction >= 1 {
		o.TargetFraction = 0.5
	}
	if o.NoiseScale <= 0 {
		o.NoiseScale = o.StepLength / float64(o.Iterations)
	}
	if o.ResyncEvery <= 0 {
		o.ResyncEvery = 16
	}
	if o.Kernel32 {
		// The delta scatter maintains grad from float64 deltas of z; under
		// the 32-bit kernels a full recompute would disagree with the
		// maintained value, breaking the resync contract.
		o.IncrementalGradient = false
	}
}

// incrementalWarmup is the number of leading iterations that always run the
// full SpMV before incremental updates may engage: early iterations move
// every coordinate, so a delta scatter would touch the whole edge set anyway.
const incrementalWarmup = 3

// IterStats reports the state of GD after one iteration, feeding the
// convergence plots of Figures 8–10.
type IterStats struct {
	// Path locates the reporting bisection inside a recursive k-way solve:
	// "" for the root (or a direct 2-way run), then one digit per level —
	// "0" for the left child, "1" for the right, "01" for the left child's
	// right child, and so on.
	Path string
	Iter int
	// ExpectedLocality is the expected fraction of uncut edges under
	// randomized rounding of the current fractional x.
	ExpectedLocality float64
	// MaxImbalance is max_j |Σ_i w(j)_i·x_i − target_j| / W_j, the
	// fractional counterpart of the plotted max imbalance.
	MaxImbalance float64
	// Fixed is the number of vertices snapped to ±1 so far.
	Fixed int
	// Gamma is the step size used this iteration.
	Gamma float64
	// StepNorm is ‖x(t+1) − x(t)‖₂ over free coordinates.
	StepNorm float64
}

// Result is the outcome of a 2-way GD run.
type Result struct {
	// X is the final fractional solution (fixed coordinates are exactly ±1).
	X []float64
	// Assignment maps x = +1 to part 0 and x = −1 to part 1 after rounding
	// and repair.
	Assignment *partition.Assignment
	// Iterations is the number of gradient iterations actually executed.
	Iterations int
	// RepairMoves counts vertices moved by the balance repair pass.
	RepairMoves int
}

// Bisect partitions g into two sides with per-dimension weight targets
// (α, 1−α)·W ± ε·W/2 while maximizing edge locality. It is the unit-edge-
// weight case of BisectWeighted (the wrap is zero-copy and keeps the
// unweighted SpMV fast path).
func Bisect(g *graph.Graph, ws [][]float64, opt Options) (*Result, error) {
	return BisectWeighted(coarsen.Wrap(g, ws), opt)
}

// BisectWeighted runs the full GD bisection — gradient ascent, randomized
// rounding, balance repair — on an edge-weighted graph. Coarse levels of a
// multilevel hierarchy are first-class inputs: the gradient is the weighted
// SpMV A_w·x and the objective is the expected uncut edge WEIGHT, so
// optimizing a coarse level optimizes exactly the fine-graph objective
// restricted to the surviving edges.
func BisectWeighted(wg *coarsen.Graph, opt Options) (*Result, error) {
	opt.normalize()
	n := wg.N()
	if err := checkWeights(n, wg.VW); err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{X: nil, Assignment: partition.NewAssignment(0, 2)}, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	x, fixed, itersRun, targets, halves, totals, err := optimize(wg, opt, rng)
	if err != nil {
		return nil, err
	}
	roundSpan := opt.Span.Start("round")
	side := roundSides(x, fixed, rng)
	moves := 0
	if opt.RepairBalance {
		moves = repairBalance(wg, side, x, targets, halves, totals, rng)
	}
	roundSpan.SetAttr("repair_moves", moves)
	roundSpan.End()
	asgn := partition.NewAssignment(n, 2)
	for i, sd := range side {
		if sd < 0 {
			asgn.Parts[i] = 1
		}
		x[i] = float64(sd)
	}
	return &Result{X: x, Assignment: asgn, Iterations: itersRun, RepairMoves: moves}, nil
}

// OptimizeWeighted runs only the projected gradient ascent and returns the
// FRACTIONAL solution (fixed coordinates are exactly ±1, free ones lie in
// [-1, 1]) together with the iteration count. The multilevel V-cycle uses it
// on every level except the finest, where BisectWeighted performs the final
// rounding and repair.
func OptimizeWeighted(wg *coarsen.Graph, opt Options) ([]float64, int, error) {
	opt.normalize()
	if err := checkWeights(wg.N(), wg.VW); err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	x, _, iters, _, _, _, err := optimize(wg, opt, rng)
	return x, iters, err
}

// optimize is the shared gradient loop of Algorithm 1. opt must already be
// normalized; rng carries the caller's stream so rounding continues it.
func optimize(wg *coarsen.Graph, opt Options, rng *rand.Rand) (xOut []float64, fixedOut []bool, itersRun int, targets, halves, totals []float64, err error) {
	n := wg.N()
	ws := wg.VW
	pool := vecmath.NewPool(opt.Workers)
	if opt.Projection.Workers == 0 {
		opt.Projection.Workers = opt.Workers
	}

	gdSpan := opt.Span.Start("gd")
	defer gdSpan.End()
	var conv *convSampler
	if gdSpan != nil {
		gdSpan.SetAttr("n", n)
		gdSpan.SetAttr("arcs", len(wg.Adj))
		conv = newConvSampler(wg, opt.Iterations, pool)
	}

	d := len(ws)
	totals = make([]float64, d)
	for j, w := range ws {
		for _, v := range w {
			totals[j] += v
		}
	}
	s := 2*opt.TargetFraction - 1
	targets = make([]float64, d) // slab centers: Σ w x = s·W
	halves = make([]float64, d)  // slab half-widths: ε·W
	for j := range targets {
		targets[j] = s * totals[j]
		halves[j] = opt.Epsilon * totals[j]
	}

	x := make([]float64, n)
	if opt.WarmStart != nil {
		if len(opt.WarmStart) != n {
			return nil, nil, 0, nil, nil, nil,
				fmt.Errorf("core: warm start length %d, graph has %d vertices", len(opt.WarmStart), n)
		}
		for i, v := range opt.WarmStart {
			x[i] = vecmath.ClampVal(v)
		}
	}
	z := make([]float64, n)
	grad := make([]float64, n)
	fixed := make([]bool, n)
	fixedWeight := make([]float64, d) // C_j = Σ_fixed w(j)·x
	freeWeight := make([]float64, d)  // Σ_free w(j)
	copy(freeWeight, totals)
	fixedCount := 0

	// Compact buffers for the free subproblem.
	freeIdx := make([]int32, 0, n)
	yF := make([]float64, n)
	xF := make([]float64, n)
	wF := make([][]float64, d)
	for j := range wF {
		wF[j] = make([]float64, n)
	}
	freeDirty := true

	L := opt.StepLength * math.Sqrt(float64(n)) / float64(opt.Iterations)
	gammaFrozen := opt.FixedGamma
	var st project.State

	// Reordering is a kernel-layout detail: the layout runs the register-
	// blocked gather over a bandwidth-reduced row order but accumulates each
	// row in its original arc order and scatters through the inverse
	// permutation, so spmvFull stays bit-identical either way. An injected
	// prep-cache layout is trusted only if its shape and weighting agree with
	// this CSR; otherwise the solve rebuilds as if nothing were injected.
	var lay *reorder.Layout
	if opt.Reorder != reorder.None {
		if opt.Layout != nil && opt.Layout.Matches(wg.Offsets, wg.Adj) &&
			opt.Layout.Weighted() == (wg.EW != nil) {
			lay = opt.Layout.Clone()
		} else {
			lay = reorder.NewLayout(wg.Offsets, wg.Adj, wg.EW, opt.Reorder)
		}
	}
	// The 32-bit path converts z per value each iteration (edge weights only
	// once — they never change); the layout variant keeps its own permuted
	// float32 mirrors. Both produce identical bits (rounding is per value,
	// before any ordering).
	var x32, ew32 []float32
	if opt.Kernel32 && lay == nil {
		x32 = make([]float32, n)
		if wg.EW != nil {
			ew32 = make([]float32, len(wg.Adj))
			vecmath.Convert32Pool(ew32, wg.EW, pool)
		}
	}
	spmvFull := func() {
		switch {
		case lay != nil && opt.Kernel32:
			lay.SpMVMasked32(z, grad, fixed, pool)
		case lay != nil:
			lay.SpMVMasked(z, grad, fixed, pool)
		case opt.Kernel32:
			vecmath.Convert32Pool(x32, z, pool)
			vecmath.SpMVBlocked32Pool(wg.Offsets, wg.Adj, ew32, x32, grad, fixed, pool)
		default:
			vecmath.SpMVWeightedMaskedPool(wg.Offsets, wg.Adj, wg.EW, z, grad, fixed, pool)
		}
	}

	// Incremental-gradient state: prevZ is the input the current grad was
	// computed from; gradValid goes false whenever grad stops being A_w·z
	// (random-direction fallback); sinceFull counts incremental updates
	// since the last exact recompute.
	var prevZ []float64
	if opt.IncrementalGradient {
		prevZ = make([]float64, n)
	}
	gradValid := false
	sinceFull := 0
	// Failed gate checks back off geometrically (capped): early iterations
	// move every coordinate, so rescanning z against prevZ — and keeping
	// prevZ fresh — every iteration is pure overhead until the moved set
	// shrinks. The schedule depends only on the iteration number and the
	// scan results, so it is identical at every worker count.
	checkBackoff, skipUntil := 1, 0

	for t := 0; t < opt.Iterations; t++ {
		if fixedCount == n {
			break
		}
		itersRun++

		copy(z, x)
		if t == 0 && opt.WarmStart == nil {
			for i := 0; i < n; i++ {
				if !fixed[i] {
					z[i] += rng.NormFloat64() * opt.NoiseScale
				}
			}
		}

		incremental := false
		if opt.IncrementalGradient && gradValid && t >= incrementalWarmup && sinceFull+1 < opt.ResyncEvery {
			// Delta pass: grad currently equals A_w·prevZ on free rows. Count
			// the arc work of the moved coordinates first — the serial scatter
			// must beat the full SpMV, and the full SpMV is masked, so the
			// fair comparison is against the arcs of the FREE rows (with
			// vertex fixing on, the masked kernel already skips most of the
			// graph late in the run). The scatter's random writes cost ~2x a
			// streaming gather per arc, hence the factor. Both the decision
			// and the scatter depend only on z/prevZ/fixed, never on the
			// worker count.
			movedArcs, freeArcs := int64(0), int64(0)
			for i := 0; i < n; i++ {
				deg := wg.Offsets[i+1] - wg.Offsets[i]
				if !fixed[i] {
					freeArcs += deg
				}
				if z[i] != prevZ[i] {
					movedArcs += deg
				}
			}
			if 2*movedArcs > freeArcs {
				// Too much moved: pause the checks and let prevZ go stale
				// (gradValid=false below skips its maintenance cost too).
				skipUntil = t + checkBackoff
				if checkBackoff < 8 {
					checkBackoff *= 2
				}
				gradValid = false
			} else {
				for u := 0; u < n; u++ {
					if z[u] == prevZ[u] {
						continue
					}
					d := z[u] - prevZ[u]
					row := wg.Adj[wg.Offsets[u]:wg.Offsets[u+1]]
					if wg.EW == nil {
						for _, v := range row {
							if !fixed[v] {
								grad[v] += d
							}
						}
					} else {
						wrow := wg.EW[wg.Offsets[u]:wg.Offsets[u+1]]
						for i, v := range row {
							if !fixed[v] {
								grad[v] += wrow[i] * d
							}
						}
					}
					prevZ[u] = z[u]
				}
				sinceFull++
				checkBackoff = 1
				incremental = true
			}
		}
		if !incremental {
			spmvFull()
			sinceFull = 0
			// Keeping prevZ fresh costs a full vector copy; pay it only if
			// the next iteration is actually allowed to use it.
			if opt.IncrementalGradient && t+1 >= skipUntil {
				copy(prevZ, z)
				gradValid = true
			} else {
				gradValid = false
			}
		}
		gradIsNoise := false
		maskedNormSq := func() float64 {
			return pool.ReduceSum(n, func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi; i++ {
					if !fixed[i] {
						s += grad[i] * grad[i]
					}
				}
				return s
			})
		}
		var gnorm float64
		if conv != nil && conv.wantSample(t) {
			// Sampling iteration: fold the trajectory's Σ z·grad into the
			// norm reduction so the sample costs one extra vector read, and
			// take it before the saddle fallback below can overwrite grad.
			// The norm partials accumulate in the same order as the unfused
			// reduction, so gnorm is bit-identical with tracing off.
			normSq, freeQuad := pool.ReduceSum2(n, func(lo, hi int) (float64, float64) {
				s, q := 0.0, 0.0
				for i := lo; i < hi; i++ {
					if !fixed[i] {
						g := grad[i]
						s += g * g
						q += z[i] * g
					}
				}
				return s, q
			})
			conv.record(t, freeQuad)
			gnorm = math.Sqrt(normSq)
		} else {
			gnorm = math.Sqrt(maskedNormSq())
		}
		if gnorm < 1e-12 {
			// Saddle/flat region: fall back to a random direction so the
			// iteration still makes progress (noise escape, §2.1 Step 1).
			// grad is no longer A_w·z after this, so the incremental path
			// must recompute from scratch next iteration.
			gradValid = false
			gradIsNoise = true
			for i := 0; i < n; i++ {
				if !fixed[i] {
					grad[i] = rng.NormFloat64()
				}
			}
			gnorm = math.Sqrt(maskedNormSq())
			if gnorm == 0 {
				break
			}
		}
		gamma := L / gnorm
		if !opt.Adaptive {
			if gammaFrozen == 0 {
				gammaFrozen = gamma
			}
			gamma = gammaFrozen
		}

		if freeDirty {
			freeIdx = freeIdx[:0]
			for i := 0; i < n; i++ {
				if !fixed[i] {
					freeIdx = append(freeIdx, int32(i))
				}
			}
			for j := 0; j < d; j++ {
				for fi, i := range freeIdx {
					wF[j][fi] = ws[j][i]
				}
			}
			freeDirty = false
		}
		nf := len(freeIdx)
		cons := make([]project.Constraint, d)
		for j := 0; j < d; j++ {
			lo := targets[j] - halves[j] - fixedWeight[j]
			hi := targets[j] + halves[j] - fixedWeight[j]
			// Clamp the interval to what the free coordinates can achieve.
			if lo > freeWeight[j] {
				lo, hi = freeWeight[j], freeWeight[j]
			} else if hi < -freeWeight[j] {
				lo, hi = -freeWeight[j], -freeWeight[j]
			} else {
				if hi > freeWeight[j] {
					hi = freeWeight[j]
				}
				if lo < -freeWeight[j] {
					lo = -freeWeight[j]
				}
			}
			cons[j] = project.Constraint{W: wF[j][:nf], Lo: lo, Hi: hi}
		}

		stepNorm := 0.0
		for attempt := 0; ; attempt++ {
			pool.For(nf, func(lo, hi int) {
				for fi := lo; fi < hi; fi++ {
					i := freeIdx[fi]
					yF[fi] = z[i] + gamma*grad[i]
				}
			})
			if err := project.Project(xF[:nf], yF[:nf], cons, opt.Projection, &st); err != nil {
				return nil, nil, 0, nil, nil, nil,
					fmt.Errorf("core: projection failed at iteration %d: %w", t, err)
			}
			stepNorm = math.Sqrt(pool.ReduceSum(nf, func(lo, hi int) float64 {
				s := 0.0
				for fi := lo; fi < hi; fi++ {
					dlt := xF[fi] - x[freeIdx[fi]]
					s += dlt * dlt
				}
				return s
			}))
			// The doubling loop enforces minimum per-iteration progress so a
			// cold start escapes the flat region around the origin (§3.2).
			// A warm-started refinement is the opposite situation: it is
			// already near a good solution, and forcing L/2 of movement onto
			// the few coordinates the warm start left free just jolts them
			// off it — so refinement takes the plain projected step.
			if !opt.Adaptive || opt.WarmStart != nil || stepNorm >= L/2 || attempt >= 3 {
				break
			}
			gamma *= 2
		}
		pool.For(nf, func(lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				x[freeIdx[fi]] = xF[fi]
			}
		})

		if opt.VertexFixing {
			for _, i := range freeIdx {
				if v := x[i]; v >= opt.FixThreshold || v <= -opt.FixThreshold {
					snapped := 1.0
					if v < 0 {
						snapped = -1.0
					}
					x[i] = snapped
					fixed[i] = true
					fixedCount++
					freeDirty = true
					for j := 0; j < d; j++ {
						fixedWeight[j] += ws[j][i] * snapped
						freeWeight[j] -= ws[j][i]
					}
					if conv != nil {
						// After the saddle fallback grad holds noise, not row
						// sums; freezing 0 is the honest stand-in (the true
						// sum is ~0 in that flat region anyway).
						gi := grad[i]
						if gradIsNoise {
							gi = 0
						}
						conv.onFix(gi, snapped)
					}
				}
			}
		}

		if opt.Trace != nil {
			opt.Trace(IterStats{
				Iter:             t,
				ExpectedLocality: vecmath.ExpectedLocalityWeighted(wg.Offsets, wg.Adj, wg.EW, x),
				MaxImbalance:     fracImbalance(x, ws, totals, targets),
				Fixed:            fixedCount,
				Gamma:            gamma,
				StepNorm:         stepNorm,
			})
		}
	}

	if gdSpan != nil {
		gdSpan.SetAttr("iters", itersRun)
		gdSpan.SetAttr("fixed", fixedCount)
		conv.annotate(gdSpan, x)
	}
	return x, fixed, itersRun, targets, halves, totals, nil
}

// roundSides applies the randomized rounding of §2: side +1 with probability
// (1 + x_i)/2.
func roundSides(x []float64, fixed []bool, rng *rand.Rand) []int8 {
	side := make([]int8, len(x))
	for i, v := range x {
		switch {
		case fixed[i] && v > 0:
			side[i] = 1
		case fixed[i]:
			side[i] = -1
		case rng.Float64() < (1+v)/2:
			side[i] = 1
		default:
			side[i] = -1
		}
	}
	return side
}

// fracImbalance is max_j |Σ w(j)·x − target_j| / W_j — for a two-way split
// this equals (max side weight / average − 1) of the fractional solution.
func fracImbalance(x []float64, ws [][]float64, totals, targets []float64) float64 {
	worst := 0.0
	for j, w := range ws {
		v := 0.0
		for i, wi := range w {
			v += wi * x[i]
		}
		if totals[j] <= 0 {
			continue
		}
		if im := math.Abs(v-targets[j]) / totals[j]; im > worst {
			worst = im
		}
	}
	return worst
}

func checkWeights(n int, ws [][]float64) error {
	if len(ws) == 0 {
		return fmt.Errorf("core: at least one weight function required")
	}
	for j, w := range ws {
		if len(w) != n {
			return fmt.Errorf("core: weight %d has length %d, graph has %d vertices", j, len(w), n)
		}
		for i, v := range w {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: weight %d at vertex %d is %g, want > 0", j, i, v)
			}
		}
	}
	return nil
}
