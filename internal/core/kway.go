package core

import (
	"fmt"
	"math"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// PartitionK partitions g into k parts by recursive bisection (§3.3 of the
// paper): ⌈log2 k⌉ levels of GD, each splitting its subgraph with target
// fraction ⌈k'/2⌉/k'. The per-level ε budget is opt.Epsilon/⌈log2 k⌉ so the
// leaf imbalance stays ≈ ε after multiplicative accumulation; k need not be
// a power of two.
func PartitionK(g *graph.Graph, ws [][]float64, k int, opt Options) (*partition.Assignment, error) {
	opt.normalize()
	if k <= 0 {
		return nil, fmt.Errorf("core: k = %d, want >= 1", k)
	}
	n := g.N()
	if err := checkWeights(n, ws); err != nil {
		return nil, err
	}
	asgn := partition.NewAssignment(n, k)
	if k == 1 || n == 0 {
		return asgn, nil
	}
	levels := int(math.Ceil(math.Log2(float64(k))))
	opt.Epsilon /= float64(levels)
	opt.Trace = nil // traces are only meaningful for a single bisection

	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	if err := recurse(g, ws, ids, k, 0, opt, asgn); err != nil {
		return nil, err
	}
	return asgn, nil
}

// recurse bisects sub (whose local vertex i is global ids[i]) into k parts
// labeled base..base+k−1 in asgn.
func recurse(sub *graph.Graph, ws [][]float64, ids []int32, k, base int, opt Options, asgn *partition.Assignment) error {
	if k == 1 {
		for _, id := range ids {
			asgn.Parts[id] = int32(base)
		}
		return nil
	}
	k1 := (k + 1) / 2
	o := opt
	o.TargetFraction = float64(k1) / float64(k)
	res, err := Bisect(sub, ws, o)
	if err != nil {
		return err
	}

	var leftLocal, rightLocal []int32
	for v := 0; v < sub.N(); v++ {
		if res.Assignment.Parts[v] == 0 {
			leftLocal = append(leftLocal, int32(v))
		} else {
			rightLocal = append(rightLocal, int32(v))
		}
	}

	build := func(local []int32) (*graph.Graph, [][]float64, []int32) {
		if len(local) == 0 {
			return graph.NewBuilder(0).Build(), restrictWeights(ws, nil), nil
		}
		child, _ := graph.Subgraph(sub, local)
		childWs := restrictWeights(ws, local)
		childIDs := make([]int32, len(local))
		for i, lv := range local {
			childIDs[i] = ids[lv]
		}
		return child, childWs, childIDs
	}

	leftG, leftWs, leftIDs := build(leftLocal)
	rightG, rightWs, rightIDs := build(rightLocal)

	oLeft := opt
	oLeft.Seed = opt.Seed*1000003 + 1
	oRight := opt
	oRight.Seed = opt.Seed*1000003 + 2
	if err := recurse(leftG, leftWs, leftIDs, k1, base, oLeft, asgn); err != nil {
		return err
	}
	return recurse(rightG, rightWs, rightIDs, k-k1, base+k1, oRight, asgn)
}

func restrictWeights(ws [][]float64, local []int32) [][]float64 {
	out := make([][]float64, len(ws))
	for j, w := range ws {
		sub := make([]float64, len(local))
		for i, v := range local {
			sub[i] = w[v]
		}
		out[j] = sub
	}
	return out
}
