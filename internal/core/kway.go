package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mdbgp/internal/graph"
	"mdbgp/internal/obs"
	"mdbgp/internal/partition"
)

// PartitionK partitions g into k parts by recursive bisection (§3.3 of the
// paper): ⌈log2 k⌉ levels of GD, each splitting its subgraph with target
// fraction ⌈k'/2⌉/k'. The per-level ε budget is opt.Epsilon/⌈log2 k⌉ so the
// leaf imbalance stays ≈ ε after multiplicative accumulation; k need not be
// a power of two.
//
// Sibling subgraphs after a split are vertex-disjoint and are bisected
// concurrently when opt.Workers allows: a shared semaphore bounds the extra
// goroutines, each branch derives its own RNG seed, and branches write
// disjoint entries of the assignment, so the result is identical to the
// serial recursion.
func PartitionK(g *graph.Graph, ws [][]float64, k int, opt Options) (*partition.Assignment, error) {
	return PartitionKWith(g, ws, k, opt, Bisect)
}

// BisectFunc computes one 2-way split during recursive k-way partitioning.
// Implementations must honor opt.Seed, opt.Workers and opt.TargetFraction
// the way Bisect does; the multilevel driver plugs its V-cycle in here.
type BisectFunc func(g *graph.Graph, ws [][]float64, opt Options) (*Result, error)

// PartitionKWith is PartitionK with a pluggable bisection: the same ε
// budgeting, seed derivation and concurrent sibling recursion, but each
// 2-way split delegated to bisect.
func PartitionKWith(g *graph.Graph, ws [][]float64, k int, opt Options, bisect BisectFunc) (*partition.Assignment, error) {
	opt.normalize()
	if k <= 0 {
		return nil, fmt.Errorf("core: k = %d, want >= 1", k)
	}
	n := g.N()
	if err := checkWeights(n, ws); err != nil {
		return nil, err
	}
	if opt.WarmParts != nil && len(opt.WarmParts) != n {
		return nil, fmt.Errorf("core: warm parts length %d, graph has %d vertices", len(opt.WarmParts), n)
	}
	asgn := partition.NewAssignment(n, k)
	if k == 1 || n == 0 {
		return asgn, nil
	}
	levels := int(math.Ceil(math.Log2(float64(k))))
	opt.Epsilon /= float64(levels)
	// Multiplex a caller's per-iteration Trace across the bisection tree
	// instead of dropping it: concurrent sibling bisections share the hook,
	// so calls are serialized here, and each bisection tags its IterStats
	// with its recursion path (recurse installs the tagging wrapper).
	if tr := opt.Trace; tr != nil {
		var mu sync.Mutex
		opt.Trace = func(st IterStats) {
			mu.Lock()
			defer mu.Unlock()
			tr(st)
		}
	}
	// The root bisection span is created here; recurse creates each child's
	// span before forking the branch, so the span tree's structure depends
	// only on the recursion shape, never on the goroutine schedule.
	rootSpan := opt.Span.Start("bisect")
	opt.Span = nil

	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	// Resolve the worker budget once so recursion can split it between
	// concurrent branches (a branch forking with budget w hands ⌈w/2⌉ and
	// ⌊w/2⌋ to its children, keeping the total pool goroutines across all
	// concurrent Bisect calls ≈ workers instead of workers²).
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	var sem chan struct{}
	if opt.Workers > 1 {
		// Tokens for branches forked off the current goroutine; the
		// recursion itself always keeps running, so workers−1 tokens give
		// at most `workers` concurrent branches.
		sem = make(chan struct{}, opt.Workers-1)
	}
	if err := recurse(g, ws, ids, k, 0, opt, asgn, sem, bisect, rootSpan, ""); err != nil {
		return nil, err
	}
	return asgn, nil
}

// recurse bisects sub (whose local vertex i is global ids[i]) into k parts
// labeled base..base+k−1 in asgn. sp is this subtree's span (created by the
// caller, nil when untraced) and path its position in the bisection tree
// ("" root, then "0"/"1" appended per level).
func recurse(sub *graph.Graph, ws [][]float64, ids []int32, k, base int, opt Options, asgn *partition.Assignment, sem chan struct{}, bisect BisectFunc, sp *obs.Span, path string) error {
	if k == 1 {
		for _, id := range ids {
			asgn.Parts[id] = int32(base)
		}
		return nil
	}
	defer sp.End()
	k1 := (k + 1) / 2
	o := opt
	o.TargetFraction = float64(k1) / float64(k)
	o.Span = sp
	if sp != nil {
		sp.SetAttr("path", path)
		sp.SetAttr("k", k)
		sp.SetAttr("n", sub.N())
	}
	if tr := opt.Trace; tr != nil {
		p := path
		o.Trace = func(st IterStats) {
			st.Path = p
			tr(st)
		}
	}
	if opt.WarmParts != nil {
		// The bisection consumes the prior assignment in fractional form;
		// children receive the restricted integral slice below.
		o.WarmStart = warmFromParts(opt.WarmParts, base, k1, k)
		o.WarmParts = nil
	}
	res, err := bisect(sub, ws, o)
	if err != nil {
		return err
	}

	var leftLocal, rightLocal []int32
	for v := 0; v < sub.N(); v++ {
		if res.Assignment.Parts[v] == 0 {
			leftLocal = append(leftLocal, int32(v))
		} else {
			rightLocal = append(rightLocal, int32(v))
		}
	}

	build := func(local []int32) (*graph.Graph, [][]float64, []int32) {
		if len(local) == 0 {
			return graph.NewBuilder(0).Build(), restrictWeights(ws, nil), nil
		}
		child, _ := graph.Subgraph(sub, local)
		childWs := restrictWeights(ws, local)
		childIDs := make([]int32, len(local))
		for i, lv := range local {
			childIDs[i] = ids[lv]
		}
		return child, childWs, childIDs
	}

	leftG, leftWs, leftIDs := build(leftLocal)
	rightG, rightWs, rightIDs := build(rightLocal)

	// An injected prep layout belongs to the root graph only; child subgraphs
	// are fresh CSRs that must rebuild (or skip) their own layouts. Matches
	// would almost always reject it anyway — clearing makes root-only a
	// guarantee instead of a probability.
	oLeft := opt
	oLeft.Seed = opt.Seed*1000003 + 1
	oLeft.Layout = nil
	oRight := opt
	oRight.Seed = opt.Seed*1000003 + 2
	oRight.Layout = nil
	if opt.WarmParts != nil {
		oLeft.WarmParts = restrictParts(opt.WarmParts, leftLocal)
		oRight.WarmParts = restrictParts(opt.WarmParts, rightLocal)
	}
	// Child spans are created here, in the parent's goroutine and in fixed
	// left-then-right order, BEFORE the left branch may fork: sibling order
	// in the trace is part of the determinism contract. A k==1 child runs no
	// bisection and gets no span.
	var spLeft, spRight *obs.Span
	if k1 > 1 {
		spLeft = sp.Start("bisect")
	}
	if k-k1 > 1 {
		spRight = sp.Start("bisect")
	}

	// The two branches touch disjoint vertices (and disjoint asgn entries)
	// and carry independently derived seeds, so running them concurrently
	// cannot change the result (Workers never affects the bits, only the
	// schedule). Fork the left branch onto another goroutine when a
	// semaphore token is free, halving each side's kernel-worker budget so
	// concurrent branches don't oversubscribe the CPU; otherwise recurse
	// serially with the full budget.
	if sem != nil && opt.Workers > 1 {
		select {
		case sem <- struct{}{}:
			oLeft.Workers = (opt.Workers + 1) / 2
			oRight.Workers = opt.Workers - oLeft.Workers
			var wg sync.WaitGroup
			var errLeft error
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				errLeft = recurse(leftG, leftWs, leftIDs, k1, base, oLeft, asgn, sem, bisect, spLeft, path+"0")
			}()
			errRight := recurse(rightG, rightWs, rightIDs, k-k1, base+k1, oRight, asgn, sem, bisect, spRight, path+"1")
			wg.Wait()
			if errLeft != nil {
				return errLeft
			}
			return errRight
		default:
		}
	}
	if err := recurse(leftG, leftWs, leftIDs, k1, base, oLeft, asgn, sem, bisect, spLeft, path+"0"); err != nil {
		return err
	}
	return recurse(rightG, rightWs, rightIDs, k-k1, base+k1, oRight, asgn, sem, bisect, spRight, path+"1")
}

// WarmPartDamp scales the ±1 encoding of a prior assignment before it seeds
// a warm-started bisection. The rationale mirrors the multilevel V-cycle's
// prolongation damping: an undamped ±1 coordinate would re-fix on the first
// iteration, freezing the prior decision before the new graph's gradient
// ever votes; 0.98 stays below the 0.99 fix threshold, so one agreeing step
// re-saturates it and one disagreeing step pulls it free.
const WarmPartDamp = 0.98

// warmFromParts encodes a prior k-way assignment as a fractional warm start
// for the split of parts [base, base+k) into [base, base+k1) (side +1) and
// [base+k1, base+k) (side −1). Parts outside the range — vertices the prior
// solution assigned elsewhere, or -1 for vertices it never saw — stay 0.
func warmFromParts(parts []int32, base, k1, k int) []float64 {
	x := make([]float64, len(parts))
	for i, p := range parts {
		switch {
		case int(p) >= base && int(p) < base+k1:
			x[i] = WarmPartDamp
		case int(p) >= base+k1 && int(p) < base+k:
			x[i] = -WarmPartDamp
		}
	}
	return x
}

func restrictParts(parts []int32, local []int32) []int32 {
	sub := make([]int32, len(local))
	for i, v := range local {
		sub[i] = parts[v]
	}
	return sub
}

func restrictWeights(ws [][]float64, local []int32) [][]float64 {
	out := make([][]float64, len(ws))
	for j, w := range ws {
		sub := make([]float64, len(local))
		for i, v := range local {
			sub[i] = w[v]
		}
		out[j] = sub
	}
	return out
}
