package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdbgp/internal/gen"
	"mdbgp/internal/partition"
)

func TestDirectKWaySBM(t *testing.T) {
	g, blocks := gen.SBM(gen.SBMConfig{N: 1200, Communities: 4, AvgDegree: 14, InFraction: 0.9, Seed: 31})
	ws := vertexEdgeWeights(g)
	opt := DefaultDirectKOptions()
	opt.Seed = 32
	asgn, err := DirectKWay(g, ws, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
	loc := partition.EdgeLocality(g, asgn)
	if loc < 0.55 {
		t.Fatalf("direct 4-way locality %.3f (hash gives 0.25)", loc)
	}
	if !partition.IsBalanced(asgn, ws, opt.Epsilon+1e-9) {
		t.Fatalf("direct 4-way imbalance %.4f", partition.MaxImbalance(asgn, ws))
	}
	// The buckets should align with the planted blocks: count the majority
	// block per bucket and require most vertices to follow it.
	majority := make([]map[int32]int, 4)
	for b := range majority {
		majority[b] = map[int32]int{}
	}
	for v, p := range asgn.Parts {
		majority[p][blocks[v]]++
	}
	aligned := 0
	for b := range majority {
		best := 0
		for _, c := range majority[b] {
			if c > best {
				best = c
			}
		}
		aligned += best
	}
	if frac := float64(aligned) / float64(g.N()); frac < 0.7 {
		t.Fatalf("block alignment %.3f, want >= 0.7", frac)
	}
}

func TestDirectKWayMatchesRecursiveQuality(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 800, Communities: 4, AvgDegree: 12, InFraction: 0.85, Seed: 33})
	ws := vertexEdgeWeights(g)
	dOpt := DefaultDirectKOptions()
	dOpt.Seed = 34
	direct, err := DirectKWay(g, ws, 4, dOpt)
	if err != nil {
		t.Fatal(err)
	}
	rOpt := DefaultOptions()
	rOpt.Seed = 34
	recursive, err := PartitionK(g, ws, 4, rOpt)
	if err != nil {
		t.Fatal(err)
	}
	dl := partition.EdgeLocality(g, direct)
	rl := partition.EdgeLocality(g, recursive)
	t.Logf("direct %.3f vs recursive %.3f", dl, rl)
	// The direct relaxation avoids the greedy first cut, so it should land
	// in the same quality regime (within 15 points).
	if dl < rl-0.15 {
		t.Fatalf("direct locality %.3f far below recursive %.3f", dl, rl)
	}
}

func TestDirectKWayEdgeCases(t *testing.T) {
	g := gen.Grid(5, 5, false)
	ws := vertexEdgeWeights(g)
	if _, err := DirectKWay(g, ws, 0, DefaultDirectKOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	a, err := DirectKWay(g, ws, 1, DefaultDirectKOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Parts {
		if p != 0 {
			t.Fatal("k=1 all zero")
		}
	}
	// Memory guard.
	opt := DefaultDirectKOptions()
	opt.MaxCells = 10
	if _, err := DirectKWay(g, ws, 8, opt); err == nil {
		t.Fatal("cell cap should error")
	}
}

func TestProjectSimplex(t *testing.T) {
	buf := make([]float64, 4)
	cases := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{1, 0, 0, 0},
		{10, -5, 3, 0.5},
		{-1, -2, -3, -4},
		{0.5, 0.5, 0.5, 0.5},
	}
	for _, c := range cases {
		row := append([]float64(nil), c...)
		projectSimplex(row, buf)
		sum := 0.0
		for _, v := range row {
			if v < -1e-12 {
				t.Fatalf("negative simplex coord %v from %v", row, c)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("simplex sum %g from %v", sum, c)
		}
	}
}

// Property: simplex projection is idempotent and distance-optimal vs the
// naive candidate (uniform distribution).
func TestQuickSimplexProjection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 2
		row := make([]float64, k)
		for i := range row {
			row[i] = rng.NormFloat64() * 3
		}
		orig := append([]float64(nil), row...)
		buf := make([]float64, k)
		projectSimplex(row, buf)
		once := append([]float64(nil), row...)
		projectSimplex(row, buf)
		for i := range row {
			if math.Abs(row[i]-once[i]) > 1e-9 {
				return false
			}
		}
		// Projection is no farther from orig than the uniform point.
		dp, du := 0.0, 0.0
		for i := range orig {
			dp += (orig[i] - once[i]) * (orig[i] - once[i])
			du += (orig[i] - 1/float64(k)) * (orig[i] - 1/float64(k))
		}
		return dp <= du+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DirectKWay yields valid ε-balanced assignments on random small
// graphs for generous ε.
func TestQuickDirectKWayBalanced(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%3 + 2
		g, _ := gen.SBM(gen.SBMConfig{N: 200, Communities: k, AvgDegree: 8, InFraction: 0.8, Seed: seed})
		ws := vertexEdgeWeights(g)
		opt := DefaultDirectKOptions()
		opt.Iterations = 40
		opt.Epsilon = 0.15
		opt.Seed = seed
		asgn, err := DirectKWay(g, ws, k, opt)
		if err != nil || asgn.Validate() != nil {
			return false
		}
		return partition.IsBalanced(asgn, ws, 0.15+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
