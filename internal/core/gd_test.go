package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
	"mdbgp/internal/weights"
)

func vertexEdgeWeights(g *graph.Graph) [][]float64 {
	ws, err := weights.Standard(g, 2)
	if err != nil {
		panic(err)
	}
	return ws
}

func TestBisectCliqueChain(t *testing.T) {
	// Two 20-cliques joined by one bridge: the optimal bisection cuts only
	// the bridge.
	g := gen.CliqueChain(2, 20)
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 1
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	loc := partition.EdgeLocality(g, res.Assignment)
	if loc < 0.99 {
		t.Fatalf("clique chain locality %.4f, want ~1 (only bridge cut)", loc)
	}
	if !partition.IsBalanced(res.Assignment, ws, opt.Epsilon+1e-9) {
		t.Fatalf("not ε-balanced: vertex imbalance %.4f edge imbalance %.4f",
			partition.Imbalance(res.Assignment, ws[0]), partition.Imbalance(res.Assignment, ws[1]))
	}
}

func TestBisectSBMRecoversCommunities(t *testing.T) {
	g, blocks := gen.SBM(gen.SBMConfig{N: 1000, Communities: 2, AvgDegree: 16, InFraction: 0.9, Seed: 2})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 3
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	loc := partition.EdgeLocality(g, res.Assignment)
	if loc < 0.75 {
		t.Fatalf("SBM locality %.4f, want >= 0.75 (hash gives 0.5)", loc)
	}
	// The found sides should mostly agree with the planted blocks (up to
	// relabeling).
	agree := 0
	for v, b := range blocks {
		if int32(res.Assignment.Parts[v]) == b {
			agree++
		}
	}
	frac := float64(agree) / float64(len(blocks))
	if frac < 0.5 {
		frac = 1 - frac
	}
	if frac < 0.85 {
		t.Fatalf("planted-block agreement %.3f, want >= 0.85", frac)
	}
}

func TestBisectDeterminism(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 400, Communities: 2, AvgDegree: 10, InFraction: 0.85, Seed: 4})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 99
	r1, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Assignment.Parts {
		if r1.Assignment.Parts[v] != r2.Assignment.Parts[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestBisectSkewedDegreeTwoDimBalance(t *testing.T) {
	// Heavy power-law graph: vertex balance and edge balance fight each
	// other; GD must satisfy both.
	g := gen.ChungLu(1500, 14, 1.6, 5)
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 6
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	vi := partition.Imbalance(res.Assignment, ws[0])
	ei := partition.Imbalance(res.Assignment, ws[1])
	if vi > opt.Epsilon+1e-9 || ei > opt.Epsilon+1e-9 {
		t.Fatalf("imbalance vertex=%.4f edge=%.4f, want <= %.3f", vi, ei, opt.Epsilon)
	}
}

func TestBisectAsymmetricTarget(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 900, Communities: 3, AvgDegree: 12, InFraction: 0.85, Seed: 7})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 8
	opt.TargetFraction = 2.0 / 3.0
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	loads := partition.Loads(res.Assignment, ws[0])
	frac := loads[0] / (loads[0] + loads[1])
	// |Σwx − sW| ≤ εW ⇒ part-0 fraction within α ± ε/2.
	if math.Abs(frac-2.0/3.0) > opt.Epsilon/2+1e-9 {
		t.Fatalf("part-0 fraction %.4f, want 0.667 ± %.3f", frac, opt.Epsilon/2)
	}
}

func TestBisectTrace(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 300, Communities: 2, AvgDegree: 8, InFraction: 0.8, Seed: 9})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Iterations = 25
	opt.Seed = 10
	var stats []IterStats
	opt.Trace = func(s IterStats) { stats = append(stats, s) }
	if _, err := Bisect(g, ws, opt); err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 || len(stats) > 25 {
		t.Fatalf("trace called %d times, want 1..25", len(stats))
	}
	first := stats[0]
	if first.ExpectedLocality < 0.3 || first.ExpectedLocality > 0.75 {
		t.Fatalf("first-iteration locality %.3f, want ≈ 0.5", first.ExpectedLocality)
	}
	last := stats[len(stats)-1]
	if last.ExpectedLocality < first.ExpectedLocality {
		t.Fatalf("locality decreased: %.3f -> %.3f", first.ExpectedLocality, last.ExpectedLocality)
	}
	for _, s := range stats {
		if s.ExpectedLocality < 0 || s.ExpectedLocality > 1 || math.IsNaN(s.MaxImbalance) {
			t.Fatalf("bad stats %+v", s)
		}
	}
}

func TestBisectVertexFixingProgress(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 500, Communities: 2, AvgDegree: 12, InFraction: 0.9, Seed: 11})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 12
	var lastFixed int
	opt.Trace = func(s IterStats) { lastFixed = s.Fixed }
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if lastFixed == 0 {
		t.Fatal("vertex fixing never fixed anything on a well-separated SBM")
	}
	if !partition.IsBalanced(res.Assignment, ws, opt.Epsilon+1e-9) {
		t.Fatal("fixing broke ε-balance")
	}
}

func TestBisectNonAdaptive(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 400, Communities: 2, AvgDegree: 10, InFraction: 0.85, Seed: 13})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Adaptive = false
	opt.VertexFixing = false
	opt.Seed = 14
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if loc := partition.EdgeLocality(g, res.Assignment); loc <= 0.5 {
		t.Fatalf("nonadaptive locality %.3f, want > 0.5", loc)
	}
}

func TestBisectExactProjection(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 300, Communities: 2, AvgDegree: 10, InFraction: 0.85, Seed: 15})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Projection = project.Options{Method: project.Exact}
	opt.Seed = 16
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.IsBalanced(res.Assignment, ws, opt.Epsilon+1e-9) {
		t.Fatal("exact projection result not balanced")
	}
	if loc := partition.EdgeLocality(g, res.Assignment); loc < 0.7 {
		t.Fatalf("exact projection locality %.3f", loc)
	}
}

func TestBisectEdgeCases(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if _, err := Bisect(empty, [][]float64{{}}, DefaultOptions()); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	single := graph.NewBuilder(1).Build()
	res, err := Bisect(single, [][]float64{{1}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment.Parts) != 1 {
		t.Fatal("single vertex")
	}
	edgeless := graph.NewBuilder(10).Build()
	ws := [][]float64{{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}}
	opt := DefaultOptions()
	opt.Epsilon = 0.2
	opt.Seed = 17
	res, err = Bisect(edgeless, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.IsBalanced(res.Assignment, ws, 0.21) {
		t.Fatalf("edgeless graph not balanced: sizes %v", res.Assignment.PartSizes())
	}
}

func TestBisectErrors(t *testing.T) {
	g := gen.Grid(3, 3, false)
	if _, err := Bisect(g, nil, DefaultOptions()); err == nil {
		t.Fatal("no weights should error")
	}
	if _, err := Bisect(g, [][]float64{{1, 1}}, DefaultOptions()); err == nil {
		t.Fatal("wrong length should error")
	}
	bad := make([]float64, 9)
	for i := range bad {
		bad[i] = 1
	}
	bad[4] = 0
	if _, err := Bisect(g, [][]float64{bad}, DefaultOptions()); err == nil {
		t.Fatal("zero weight should error")
	}
}

func TestPartitionK4SBM(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 1200, Communities: 4, AvgDegree: 14, InFraction: 0.9, Seed: 18})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 19
	asgn, err := PartitionK(g, ws, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
	if asgn.K != 4 {
		t.Fatalf("K=%d", asgn.K)
	}
	if !partition.IsBalanced(asgn, ws, opt.Epsilon+0.02) {
		t.Fatalf("4-way not balanced: max imbalance %.4f", partition.MaxImbalance(asgn, ws))
	}
	if loc := partition.EdgeLocality(g, asgn); loc < 0.6 {
		t.Fatalf("4-way locality %.3f (hash would give 0.25)", loc)
	}
}

func TestPartitionKNonPowerOfTwo(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 900, Communities: 3, AvgDegree: 12, InFraction: 0.85, Seed: 20})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 21
	asgn, err := PartitionK(g, ws, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	sizes := asgn.PartSizes()
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d empty: %v", p, sizes)
		}
	}
	if im := partition.Imbalance(asgn, ws[0]); im > 0.1 {
		t.Fatalf("3-way vertex imbalance %.4f", im)
	}
}

func TestPartitionKEdgeCases(t *testing.T) {
	g := gen.Grid(4, 4, false)
	ws := vertexEdgeWeights(g)
	if _, err := PartitionK(g, ws, 0, DefaultOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	asgn, err := PartitionK(g, ws, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range asgn.Parts {
		if p != 0 {
			t.Fatal("k=1 should assign everything to part 0")
		}
	}
	// k > n: parts may be empty but the call must succeed and be valid.
	asgn, err = PartitionK(g, ws, 32, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairBalanceDirect(t *testing.T) {
	g := gen.ErdosRenyi(400, 1600, 22)
	ws := vertexEdgeWeights(g)
	n := g.N()
	side := make([]int8, n)
	x := make([]float64, n)
	for i := range side {
		side[i] = 1 // grossly unbalanced start
	}
	totals := make([]float64, len(ws))
	for j, w := range ws {
		for _, v := range w {
			totals[j] += v
		}
	}
	targets := []float64{0, 0}
	halves := []float64{0.05 * totals[0], 0.05 * totals[1]}
	rng := rand.New(rand.NewSource(23))
	moves := repairBalance(coarsen.Wrap(g, ws), side, x, targets, halves, totals, rng)
	if moves == 0 {
		t.Fatal("repair did nothing on an all-ones assignment")
	}
	for j, w := range ws {
		v := 0.0
		for i, wi := range w {
			v += wi * float64(side[i])
		}
		if math.Abs(v) > halves[j]+1e-9 {
			t.Fatalf("dim %d not repaired: |%g| > %g", j, v, halves[j])
		}
	}
}

func TestRepairBalanceUnattainableTerminates(t *testing.T) {
	// Three vertices of weight 10 cannot be split within ε=1%: the repair
	// must terminate anyway.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ws := [][]float64{{10, 10, 10}}
	side := []int8{1, 1, 1}
	x := make([]float64, 3)
	rng := rand.New(rand.NewSource(24))
	repairBalance(coarsen.Wrap(g, ws), side, x, []float64{0}, []float64{0.3}, []float64{30}, rng)
	// No assertion on balance — only termination (the test would time out
	// otherwise) and validity of sides.
	for _, s := range side {
		if s != 1 && s != -1 {
			t.Fatal("invalid side")
		}
	}
}

// Property: on arbitrary random graphs GD returns a valid, ε-balanced
// 2-partition for a generous ε.
func TestQuickBisectBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 50
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		ws := vertexEdgeWeights(g)
		opt := DefaultOptions()
		opt.Iterations = 30
		opt.Epsilon = 0.1
		opt.Seed = seed
		res, err := Bisect(g, ws, opt)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Assignment.Validate() != nil {
			return false
		}
		return partition.IsBalanced(res.Assignment, ws, 0.1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBisectTinyEpsilonTerminates(t *testing.T) {
	// ε far below what rounding noise can hit: the algorithm must still
	// terminate and return a valid assignment (repair caps its moves).
	g, _ := gen.SBM(gen.SBMConfig{N: 300, Communities: 2, AvgDegree: 8, InFraction: 0.8, Seed: 40})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Epsilon = 1e-6
	opt.Iterations = 20
	opt.Seed = 41
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	// Not asserting ε-balance at 1e-6 — only that the near-balance is sane.
	if im := partition.MaxImbalance(res.Assignment, ws); im > 0.1 {
		t.Fatalf("tiny-eps run wildly unbalanced: %.4f", im)
	}
}

func TestBisectDisconnectedGraph(t *testing.T) {
	// Two components of different sizes plus isolated vertices.
	b := graph.NewBuilder(60)
	for i := 0; i < 30; i++ {
		b.AddEdge(i, (i+1)%30)
	}
	for i := 30; i < 50; i++ {
		b.AddEdge(i, 30+(i-29)%20)
	}
	g := b.Build()
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Epsilon = 0.1
	opt.Seed = 42
	res, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !partition.IsBalanced(res.Assignment, ws, 0.1+1e-9) {
		t.Fatalf("disconnected graph imbalance %.4f", partition.MaxImbalance(res.Assignment, ws))
	}
}

func TestPartitionKDisconnected(t *testing.T) {
	// k greater than the number of components still must produce a valid,
	// roughly balanced partition.
	b := graph.NewBuilder(0)
	for c := 0; c < 3; c++ {
		base := c * 40
		for i := 0; i < 39; i++ {
			b.AddEdge(base+i, base+i+1)
		}
	}
	g := b.Build()
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Epsilon = 0.15
	opt.Seed = 43
	asgn, err := PartitionK(g, ws, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
	for p, s := range asgn.PartSizes() {
		if s == 0 {
			t.Fatalf("part %d empty on disconnected graph", p)
		}
	}
}

func TestDefaultOptionsNormalization(t *testing.T) {
	var o Options
	o.normalize()
	if o.Epsilon != 0.05 || o.Iterations != 100 || o.StepLength != 2 ||
		o.FixThreshold != 0.99 || o.TargetFraction != 0.5 {
		t.Fatalf("normalized zero options: %+v", o)
	}
	if o.NoiseScale != 0.02 {
		t.Fatalf("noise scale %g, want 0.02", o.NoiseScale)
	}
}
