package core

// Determinism and race coverage for the parallel execution engine: for a
// fixed seed the fractional solution and the rounded partition must be
// bit-identical at every worker count, and concurrent Partition calls on
// shared graphs must be race-free (run with -race).

import (
	"sync"
	"testing"

	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
)

var workerCounts = []int{1, 2, 8}

// Graph sizes must exceed vecmath's 4096-element chunk size: smaller inputs
// short-circuit to the single-chunk serial path and would make these
// determinism tests vacuous (they'd compare identical serial executions).

func assertSameParts(t *testing.T, label string, want, got *partition.Assignment) {
	t.Helper()
	if want.K != got.K || len(want.Parts) != len(got.Parts) {
		t.Fatalf("%s: shape mismatch K=%d/%d n=%d/%d", label, want.K, got.K, len(want.Parts), len(got.Parts))
	}
	for v := range want.Parts {
		if want.Parts[v] != got.Parts[v] {
			t.Fatalf("%s: vertex %d in part %d, want %d", label, v, got.Parts[v], want.Parts[v])
		}
	}
}

func TestBisectDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 9000, Communities: 2, AvgDegree: 12, InFraction: 0.85, Seed: 5})
	ws := vertexEdgeWeights(g)
	opt := DefaultOptions()
	opt.Seed = 31
	opt.Workers = 1
	ref, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		opt.Workers = w
		res, err := Bisect(g, ws, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.X {
			if res.X[i] != ref.X[i] {
				t.Fatalf("workers=%d: fractional X[%d] = %v, want %v (not bit-identical)", w, i, res.X[i], ref.X[i])
			}
		}
		assertSameParts(t, "bisect", ref.Assignment, res.Assignment)
		if res.Iterations != ref.Iterations || res.RepairMoves != ref.RepairMoves {
			t.Fatalf("workers=%d: iterations/moves %d/%d, want %d/%d",
				w, res.Iterations, res.RepairMoves, ref.Iterations, ref.RepairMoves)
		}
	}
}

// The exact projection drives solveLambda + pooled apply passes; it must be
// deterministic across worker counts too.
func TestBisectExactProjectionDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 6000, Communities: 2, AvgDegree: 10, InFraction: 0.8, Seed: 6})
	ws := [][]float64{vertexEdgeWeights(g)[0]} // d=1 exercises exact1D
	opt := DefaultOptions()
	opt.Projection = project.Options{Method: project.Exact}
	opt.Seed = 32
	opt.Workers = 1
	ref, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		opt.Workers = w
		res, err := Bisect(g, ws, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameParts(t, "bisect-exact", ref.Assignment, res.Assignment)
	}
}

func TestPartitionKDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 10000, Communities: 5, AvgDegree: 12, InFraction: 0.85, Seed: 7})
	ws := vertexEdgeWeights(g)
	for _, k := range []int{5, 8} {
		opt := DefaultOptions()
		opt.Seed = 33
		opt.Workers = 1
		ref, err := PartitionK(g, ws, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts[1:] {
			opt.Workers = w
			asgn, err := PartitionK(g, ws, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertSameParts(t, "kway", ref, asgn)
		}
	}
}

func TestDirectKWayDeterministicAcrossWorkers(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 5000, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 8})
	ws := vertexEdgeWeights(g)
	opt := DefaultDirectKOptions()
	opt.Seed = 34
	opt.Iterations = 40
	opt.Workers = 1
	ref, err := DirectKWay(g, ws, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		opt.Workers = w
		asgn, err := DirectKWay(g, ws, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameParts(t, "directk", ref, asgn)
	}
}

// Concurrent stress: several Partition calls race on the same shared graph
// and weight vectors (all read-only). Run under -race this is the primary
// data-race check for the whole engine.
func TestPartitionConcurrentStress(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 6000, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 9})
	ws := vertexEdgeWeights(g)
	calls := 8
	if testing.Short() {
		calls = 4
	}
	results := make([]*partition.Assignment, calls)
	errs := make([]error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := DefaultOptions()
			opt.Seed = 55
			opt.Iterations = 40
			opt.Workers = 1 + i%3 // mix of worker counts on shared inputs
			results[i], errs[i] = PartitionK(g, ws, 4, opt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	for i := 1; i < calls; i++ {
		assertSameParts(t, "stress", results[0], results[i])
	}
}

// Mixed direct/recursive concurrent calls plus an edge-case subgraph shape:
// deep recursion (k larger than some sibling sizes) while other goroutines
// run the direct relaxation on the same graph.
func TestPartitionConcurrentMixed(t *testing.T) {
	b := graph.NewBuilder(0)
	for c := 0; c < 3; c++ {
		base := c * 50
		for i := 0; i < 49; i++ {
			b.AddEdge(base+i, base+i+1)
		}
	}
	g := b.Build()
	ws := vertexEdgeWeights(g)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				opt := DefaultOptions()
				opt.Seed = int64(60)
				opt.Epsilon = 0.15
				opt.Workers = 4
				_, errs[i] = PartitionK(g, ws, 7, opt)
			} else {
				opt := DefaultDirectKOptions()
				opt.Seed = int64(61)
				opt.Iterations = 25
				opt.Workers = 4
				_, errs[i] = DirectKWay(g, ws, 3, opt)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mixed call %d: %v", i, err)
		}
	}
}
