package baselines

import (
	"testing"
	"testing/quick"

	"mdbgp/internal/gen"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

func TestHashBalanceAndLocality(t *testing.T) {
	n, k := 20000, 8
	a := Hash(n, k, 1)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := partition.VertexImbalance(a); im > 0.05 {
		t.Fatalf("hash vertex imbalance %.4f, want < 0.05", im)
	}
	g, _ := gen.SBM(gen.SBMConfig{N: n, Communities: 4, AvgDegree: 10, InFraction: 0.9, Seed: 2})
	loc := partition.EdgeLocality(g, a)
	// Hash keeps ≈ 1/k of edges local regardless of structure.
	if loc < 0.08 || loc > 0.18 {
		t.Fatalf("hash locality %.3f, want ~1/8", loc)
	}
}

func TestHashDeterministicAcrossSeeds(t *testing.T) {
	a := Hash(100, 4, 7)
	b := Hash(100, 4, 7)
	c := Hash(100, 4, 8)
	same, diff := true, false
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			same = false
		}
		if a.Parts[v] != c.Parts[v] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed differs")
	}
	if !diff {
		t.Fatal("different seeds should differ somewhere")
	}
}

func TestSpinnerImprovesLocality(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 3000, Communities: 8, AvgDegree: 12, InFraction: 0.9, Seed: 3})
	ws, _ := weights.Standard(g, 2)
	k := 8
	hash := Hash(g.N(), k, 4)
	sp := Spinner(g, ws, k, SpinnerOptions{Seed: 4})
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	hl := partition.EdgeLocality(g, hash)
	sl := partition.EdgeLocality(g, sp)
	if sl < 2*hl {
		t.Fatalf("spinner locality %.3f not clearly above hash %.3f", sl, hl)
	}
}

func TestSpinnerImbalanceOnSkewedGraph(t *testing.T) {
	// On a heavy power-law graph Spinner cannot balance vertices and edges
	// simultaneously — the Figure 4 phenomenon. We only assert it stays
	// within loose soft bounds and produces a valid assignment.
	g := gen.ChungLu(4000, 12, 1.5, 5)
	ws, _ := weights.Standard(g, 2)
	sp := Spinner(g, ws, 8, SpinnerOptions{Seed: 6})
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := partition.MaxImbalance(sp, ws); im > 3 {
		t.Fatalf("spinner imbalance %.3f looks broken", im)
	}
}

func TestSpinnerTrivialCases(t *testing.T) {
	g := gen.Grid(3, 3, false)
	ws, _ := weights.Standard(g, 1)
	a := Spinner(g, ws, 1, SpinnerOptions{Seed: 1})
	for _, p := range a.Parts {
		if p != 0 {
			t.Fatal("k=1 must be all zeros")
		}
	}
	empty, _ := gen.SBM(gen.SBMConfig{N: 0})
	a = Spinner(empty, nil, 4, SpinnerOptions{Seed: 1})
	if len(a.Parts) != 0 {
		t.Fatal("empty graph")
	}
}

func TestBLPBalancedBothDims(t *testing.T) {
	g := gen.ChungLu(4000, 12, 1.7, 7)
	ws, _ := weights.Standard(g, 2)
	k := 8
	a := BLP(g, ws, k, BLPOptions{Seed: 8})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// BLP's merge phase balances all provided dimensions.
	if im := partition.MaxImbalance(a, ws); im > 0.15 {
		t.Fatalf("BLP max imbalance %.4f, want <= 0.15", im)
	}
	hash := Hash(g.N(), k, 8)
	if partition.EdgeLocality(g, a) <= partition.EdgeLocality(g, hash) {
		t.Fatal("BLP locality not above hash")
	}
}

func TestBLPLocalityOnCommunities(t *testing.T) {
	// Hierarchical communities: the micro level is what cluster-then-merge
	// methods exploit on real social networks.
	g, _ := gen.SBM(gen.SBMConfig{
		N: 4000, Communities: 8, AvgDegree: 14,
		InFraction: 0.45, MicroSize: 16, MicroFraction: 0.45, Seed: 9,
	})
	ws, _ := weights.Standard(g, 2)
	a := BLP(g, ws, 8, BLPOptions{Seed: 10})
	if loc := partition.EdgeLocality(g, a); loc < 0.3 {
		t.Fatalf("BLP locality %.3f too low on a strongly clustered graph", loc)
	}
}

func TestBLPClusterCapAdaptsToSmallGraphs(t *testing.T) {
	g := gen.Grid(6, 6, false)
	ws, _ := weights.Standard(g, 2)
	a := BLP(g, ws, 4, BLPOptions{Seed: 11}) // default c=1024 must scale down
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := partition.VertexImbalance(a); im > 0.6 {
		t.Fatalf("BLP on tiny graph imbalance %.3f", im)
	}
}

func TestSHPImprovesLocalityKeepsCombinedBalance(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 3000, Communities: 4, AvgDegree: 12, InFraction: 0.85, DegreeExponent: 2, Seed: 12})
	k := 4
	a := SHP(g, k, SHPOptions{Seed: 13})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	hash := Hash(g.N(), k, 13)
	if partition.EdgeLocality(g, a) <= partition.EdgeLocality(g, hash) {
		t.Fatal("SHP locality not above hash")
	}
	// The combined dimension stays near-balanced even though individual
	// dimensions may drift.
	avgDeg := float64(2*g.M()) / float64(g.N())
	cw := make([]float64, g.N())
	for v := range cw {
		cw[v] = 0.75*float64(g.Degree(v))/avgDeg + 0.25
	}
	if im := partition.Imbalance(a, cw); im > 0.2 {
		t.Fatalf("SHP combined imbalance %.4f, want small", im)
	}
}

func TestSHPTrivial(t *testing.T) {
	g := gen.Star(10)
	a := SHP(g, 1, SHPOptions{Seed: 1})
	for _, p := range a.Parts {
		if p != 0 {
			t.Fatal("k=1")
		}
	}
}

// Property: every baseline returns a valid assignment for arbitrary small
// graphs and k.
func TestQuickAllBaselinesValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		g, _ := gen.SBM(gen.SBMConfig{N: 120, Communities: 3, AvgDegree: 6, InFraction: 0.8, Seed: seed})
		ws, err := weights.Standard(g, 2)
		if err != nil {
			return false
		}
		for _, a := range []*partition.Assignment{
			Hash(g.N(), k, seed),
			Spinner(g, ws, k, SpinnerOptions{Iterations: 5, Seed: seed}),
			BLP(g, ws, k, BLPOptions{Iterations: 5, Seed: seed}),
			SHP(g, k, SHPOptions{Iterations: 5, Seed: seed}),
		} {
			if a.Validate() != nil || a.K != k || len(a.Parts) != g.N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
