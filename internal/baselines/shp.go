package baselines

import (
	"math/rand"
	"sort"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// SHPOptions configures the SHP-style local-search baseline.
type SHPOptions struct {
	// Iterations of the probabilistic exchange rounds (default 20).
	Iterations int
	// EdgeCoeff and VertexCoeff combine degree and unit weight into the
	// single dimension SHP balances: cw(v) = EdgeCoeff·deg(v)/avgdeg +
	// VertexCoeff. The paper configures edges with the higher coefficient.
	// Defaults: 0.75 / 0.25.
	EdgeCoeff   float64
	VertexCoeff float64
	// Tol is the allowed relative overload of the combined dimension
	// (default 0.02).
	Tol  float64
	Seed int64
}

func (o *SHPOptions) normalize() {
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.EdgeCoeff == 0 && o.VertexCoeff == 0 {
		o.EdgeCoeff, o.VertexCoeff = 0.75, 0.25
	}
	if o.Tol <= 0 {
		o.Tol = 0.02
	}
}

// SHP implements a Social-Hash-Partitioner-style local search [Kabiljo et
// al., PVLDB'17; Kernighan–Lin moves]: starting from the hash assignment,
// each round collects the positive-gain relocation wishes of all vertices
// and applies them pairwise between parts so that the *combined* dimension
// (a fixed linear mix of edge and vertex weight) stays balanced. As the
// paper notes, SHP "does not provide balancing on multiple dimensions":
// each individual dimension can drift, which Figure 4 measures.
func SHP(g *graph.Graph, k int, opt SHPOptions) *partition.Assignment {
	opt.normalize()
	n := g.N()
	a := Hash(n, k, opt.Seed)
	if n == 0 || k <= 1 {
		return a
	}
	avgDeg := float64(2*g.M()) / float64(n)
	if avgDeg <= 0 {
		avgDeg = 1
	}
	cw := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		cw[v] = opt.EdgeCoeff*float64(g.Degree(v))/avgDeg + opt.VertexCoeff
		total += cw[v]
	}
	cap := total / float64(k) * (1 + opt.Tol)
	loads := make([]float64, k)
	for v := 0; v < n; v++ {
		loads[a.Parts[v]] += cw[v]
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	lc := newLabelCounter(k)

	type wish struct {
		v    int32
		gain int32
	}
	for it := 0; it < opt.Iterations; it++ {
		// Gather relocation wishes grouped by (from, to).
		wishes := make(map[[2]int32][]wish)
		for v := 0; v < n; v++ {
			if g.Degree(v) == 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				lc.add(a.Parts[u], 1)
			}
			cur := a.Parts[v]
			best, bestGain := cur, 0.0
			for _, cand := range lc.touched {
				if cand == cur {
					continue
				}
				if gain := lc.cnt[cand] - lc.cnt[cur]; gain > bestGain {
					best, bestGain = cand, gain
				}
			}
			lc.reset()
			if best != cur {
				key := [2]int32{cur, best}
				wishes[key] = append(wishes[key], wish{v: int32(v), gain: int32(bestGain)})
			}
		}
		if len(wishes) == 0 {
			break
		}
		keys := make([][2]int32, 0, len(wishes))
		for key, list := range wishes {
			sort.Slice(list, func(x, y int) bool { return list[x].gain > list[y].gain })
			if key[0] < key[1] {
				keys = append(keys, key)
			}
		}
		sort.Slice(keys, func(x, y int) bool {
			if keys[x][0] != keys[y][0] {
				return keys[x][0] < keys[y][0]
			}
			return keys[x][1] < keys[y][1]
		})
		moved := 0
		apply := func(v int32, to int32) {
			from := a.Parts[v]
			loads[from] -= cw[v]
			loads[to] += cw[v]
			a.Parts[v] = to
			moved++
		}
		for _, key := range keys {
			ab := wishes[key]
			ba := wishes[[2]int32{key[1], key[0]}]
			// Pairwise swaps keep the combined load balanced regardless of
			// individual weights.
			swaps := len(ab)
			if len(ba) < swaps {
				swaps = len(ba)
			}
			for i := 0; i < swaps; i++ {
				if a.Parts[ab[i].v] != key[0] || a.Parts[ba[i].v] != key[1] {
					continue
				}
				if rng.Float64() < 0.9 {
					apply(ab[i].v, key[1])
					apply(ba[i].v, key[0])
				}
			}
			// One-directional spill while the target stays under cap.
			for i := swaps; i < len(ab); i++ {
				v := ab[i].v
				if a.Parts[v] != key[0] {
					continue
				}
				if loads[key[1]]+cw[v] <= cap {
					apply(v, key[1])
				}
			}
			for i := swaps; i < len(ba); i++ {
				v := ba[i].v
				if a.Parts[v] != key[1] {
					continue
				}
				if loads[key[0]]+cw[v] <= cap {
					apply(v, key[0])
				}
			}
		}
		if moved == 0 {
			break
		}
	}
	return a
}
