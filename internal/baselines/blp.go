package baselines

import (
	"math/rand"
	"sort"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// BLPOptions configures the balanced-label-propagation baseline.
type BLPOptions struct {
	// ClustersPerPart is c: phase 1 builds c·k size-constrained clusters
	// (paper: c = 1024; scale down for small graphs — the effective value
	// is capped so clusters hold at least ~4 vertices).
	ClustersPerPart int
	// Iterations of constrained label propagation (default 20).
	Iterations int
	Seed       int64
}

func (o *BLPOptions) normalize(n, k int) {
	if o.ClustersPerPart <= 0 {
		o.ClustersPerPart = 1024
	}
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	// The paper's c = 1024 on million-vertex graphs yields clusters of a few
	// hundred vertices; scale c down so clusters hold at least ~32 vertices,
	// enough to capture the micro-communities that give BLP its locality.
	for o.ClustersPerPart > 1 && n/(o.ClustersPerPart*k) < 32 {
		o.ClustersPerPart /= 2
	}
}

// BLP implements the two-phase balanced label propagation of §4
// [Ugander–Backstrom WSDM'13 + Meyerhenke et al. SEA'14 as combined in the
// paper]: phase 1 clusters the graph into c·k clusters, forbidding any
// cluster from exceeding |V|/(c·k) vertices or 2|E|/(c·k) degree mass;
// phase 2 merges the small clusters into k parts, balancing every provided
// weight dimension greedily over a seeded random order. Because clusters are
// small, the merge achieves multi-dimensional balance even though phase 1
// optimizes only edge locality.
func BLP(g *graph.Graph, ws [][]float64, k int, opt BLPOptions) *partition.Assignment {
	n := g.N()
	a := partition.NewAssignment(n, k)
	if n == 0 || k <= 1 {
		return a
	}
	opt.normalize(n, k)
	clusters := opt.ClustersPerPart * k
	if clusters > n {
		clusters = n
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Phase 1: size-constrained clustering.
	label := make([]int32, n)
	for v := range label {
		label[v] = int32(splitmix64(uint64(v)+uint64(opt.Seed)) % uint64(clusters))
	}
	vCount := make([]float64, clusters)
	dMass := make([]float64, clusters)
	for v := 0; v < n; v++ {
		vCount[label[v]]++
		dMass[label[v]] += float64(g.Degree(v))
	}
	vCap := float64(n)/float64(clusters)*1.25 + 1
	dCap := float64(2*g.M())/float64(clusters)*1.25 + 1

	lc := newLabelCounter(clusters)
	order := rng.Perm(n)
	for it := 0; it < opt.Iterations; it++ {
		moved := 0
		for _, v := range order {
			if g.Degree(v) == 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				lc.add(label[u], 1)
			}
			cur := label[v]
			best := cur
			bestCnt := lc.cnt[cur]
			for _, cand := range lc.touched {
				if cand == cur || lc.cnt[cand] <= bestCnt {
					continue
				}
				if vCount[cand]+1 > vCap || dMass[cand]+float64(g.Degree(v)) > dCap {
					continue
				}
				best, bestCnt = cand, lc.cnt[cand]
			}
			lc.reset()
			if best != cur {
				vCount[cur]--
				dMass[cur] -= float64(g.Degree(v))
				vCount[best]++
				dMass[best] += float64(g.Degree(v))
				label[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}

	// Phase 2: merge clusters into k parts, greedily keeping every weight
	// dimension balanced. Heaviest clusters placed first (shuffled ties).
	d := len(ws)
	clusterW := make([][]float64, d)
	for j := range clusterW {
		clusterW[j] = make([]float64, clusters)
		for v := 0; v < n; v++ {
			clusterW[j][label[v]] += ws[j][v]
		}
	}
	totals := make([]float64, d)
	for j := range totals {
		for _, w := range clusterW[j] {
			totals[j] += w
		}
		if totals[j] <= 0 {
			totals[j] = 1
		}
	}
	ids := rng.Perm(clusters)
	sort.SliceStable(ids, func(x, y int) bool {
		wx, wy := 0.0, 0.0
		for j := 0; j < d; j++ {
			wx += clusterW[j][ids[x]] / totals[j]
			wy += clusterW[j][ids[y]] / totals[j]
		}
		return wx > wy
	})
	partW := make([][]float64, d)
	for j := range partW {
		partW[j] = make([]float64, k)
	}
	clusterPart := make([]int32, clusters)
	for _, c := range ids {
		bestPart, bestLoad := 0, 0.0
		for p := 0; p < k; p++ {
			load := 0.0
			for j := 0; j < d; j++ {
				l := (partW[j][p] + clusterW[j][c]) / totals[j]
				if l > load {
					load = l
				}
			}
			if p == 0 || load < bestLoad {
				bestPart, bestLoad = p, load
			}
		}
		clusterPart[c] = int32(bestPart)
		for j := 0; j < d; j++ {
			partW[j][bestPart] += clusterW[j][c]
		}
	}
	for v := 0; v < n; v++ {
		a.Parts[v] = clusterPart[label[v]]
	}
	return a
}
