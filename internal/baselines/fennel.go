package baselines

import (
	"math"
	"math/rand"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// FennelOptions configures the streaming partitioner.
type FennelOptions struct {
	// Gamma is the load-penalty exponent (default 1.5, the paper's choice).
	Gamma float64
	// Slack is the hard per-part vertex cap as a multiple of n/k
	// (default 1.1).
	Slack float64
	// Passes re-streams the graph (restreaming à la Nishimura–Ugander
	// improves quality substantially; default 5).
	Passes int
	Seed   int64
}

func (o *FennelOptions) normalize() {
	if o.Gamma <= 1 {
		o.Gamma = 1.5
	}
	if o.Slack <= 1 {
		o.Slack = 1.1
	}
	if o.Passes <= 0 {
		o.Passes = 5
	}
}

// Fennel implements the one-pass streaming partitioner of Tsourakakis et
// al. [WSDM'14], reference [41] of the paper's related work, with the
// restreaming extension of [35]: each vertex is assigned on arrival to the
// part maximizing |N(v) ∩ P_i| − α·γ·|P_i|^(γ−1), subject to a hard vertex
// cap. Fennel balances a single dimension (vertex count) — like the other
// 1-D baselines it cannot provide multi-dimensional balance, which is the
// gap GD fills; it is included for completeness of the baseline suite.
func Fennel(g *graph.Graph, k int, opt FennelOptions) *partition.Assignment {
	opt.normalize()
	n := g.N()
	a := partition.NewAssignment(n, k)
	if n == 0 || k <= 1 {
		return a
	}
	m := float64(g.M())
	if m == 0 {
		return Hash(n, k, opt.Seed)
	}
	alpha := m * math.Pow(float64(k), opt.Gamma-1) / math.Pow(float64(n), opt.Gamma)
	cap := opt.Slack * float64(n) / float64(k)

	rng := rand.New(rand.NewSource(opt.Seed))
	order := rng.Perm(n)
	sizes := make([]float64, k)
	assigned := make([]bool, n)
	nbrCount := make([]float64, k)

	for pass := 0; pass < opt.Passes; pass++ {
		for _, v := range order {
			// Remove v from its current part (no-op on the first pass).
			if assigned[v] {
				sizes[a.Parts[v]]--
			}
			for i := range nbrCount {
				nbrCount[i] = 0
			}
			for _, u := range g.Neighbors(v) {
				if assigned[u] || int(u) < v {
					nbrCount[a.Parts[u]]++
				}
			}
			best, bestScore := -1, math.Inf(-1)
			for i := 0; i < k; i++ {
				if sizes[i]+1 > cap {
					continue
				}
				score := nbrCount[i] - alpha*opt.Gamma*math.Pow(sizes[i], opt.Gamma-1)
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			if best == -1 { // every part at cap (numerical corner): smallest
				best = 0
				for i := 1; i < k; i++ {
					if sizes[i] < sizes[best] {
						best = i
					}
				}
			}
			a.Parts[v] = int32(best)
			sizes[best]++
			assigned[v] = true
		}
	}
	return a
}
