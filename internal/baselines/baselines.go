// Package baselines implements the partitioning strategies the paper
// compares GD against (§4): Hash, Spinner (penalized label propagation),
// BLP (balanced label propagation via size-constrained clustering), and SHP
// (combined-dimension local search in the spirit of the Social Hash
// Partitioner). The implementations reproduce each algorithm's balance
// *semantics* — which dimensions it can and cannot control — because that is
// what Figures 4–6 measure.
package baselines

import (
	"math/rand"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// splitmix64 is the stateless hash used by the Hash partitioner.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash assigns vertices to parts by hashing vertex ids — Giraph's stateless
// default. It is almost perfectly balanced on vertex count (and on any
// weight uncorrelated with the hash) but keeps only ≈ 1/k of edges local.
func Hash(n, k int, seed int64) *partition.Assignment {
	a := partition.NewAssignment(n, k)
	for v := 0; v < n; v++ {
		a.Parts[v] = int32(splitmix64(uint64(v)+uint64(seed)*0x9e3779b9) % uint64(k))
	}
	return a
}

// labelCounter counts neighbor labels with O(deg) work and O(1) amortized
// resets via a touched list.
type labelCounter struct {
	cnt     []float64
	touched []int32
}

func newLabelCounter(labels int) *labelCounter {
	return &labelCounter{cnt: make([]float64, labels)}
}

func (lc *labelCounter) add(label int32, v float64) {
	if lc.cnt[label] == 0 {
		lc.touched = append(lc.touched, label)
	}
	lc.cnt[label] += v
}

func (lc *labelCounter) reset() {
	for _, l := range lc.touched {
		lc.cnt[l] = 0
	}
	lc.touched = lc.touched[:0]
}

// SpinnerOptions configures the Spinner baseline.
type SpinnerOptions struct {
	// Iterations of label propagation (default 30).
	Iterations int
	// Penalty scales the load-imbalance penalty in the move score
	// (default 0.75). Spinner only *discourages* imbalance; it cannot
	// enforce ε-balance, which is exactly the behavior Figure 4 reports.
	Penalty float64
	// MoveProb is the probability of applying an improving move, damping
	// label oscillation (default 0.5).
	MoveProb float64
	Seed     int64
}

func (o *SpinnerOptions) normalize() {
	if o.Iterations <= 0 {
		o.Iterations = 30
	}
	if o.Penalty <= 0 {
		o.Penalty = 0.75
	}
	if o.MoveProb <= 0 || o.MoveProb > 1 {
		o.MoveProb = 0.5
	}
}

// Spinner runs penalized label propagation [Martella et al., ICDE'17]:
// vertices adopt the label most frequent among their neighbors, scored with
// a penalty proportional to the target part's normalized load on each of the
// penalized weight dimensions. Balance is best-effort only.
func Spinner(g *graph.Graph, ws [][]float64, k int, opt SpinnerOptions) *partition.Assignment {
	opt.normalize()
	n := g.N()
	a := Hash(n, k, opt.Seed)
	if n == 0 || k <= 1 {
		return a
	}
	d := len(ws)
	loads := make([][]float64, d)
	caps := make([]float64, d)
	for j := range ws {
		loads[j] = make([]float64, k)
		total := 0.0
		for v, w := range ws[j] {
			loads[j][a.Parts[v]] += w
			total += w
		}
		caps[j] = total / float64(k)
		if caps[j] <= 0 {
			caps[j] = 1
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	lc := newLabelCounter(k)
	order := rng.Perm(n)

	penalty := func(label int32, v int) float64 {
		p := 0.0
		for j := 0; j < d; j++ {
			l := loads[j][label]
			if a.Parts[v] == label {
				l -= ws[j][v]
			}
			p += l / caps[j]
		}
		return opt.Penalty * p / float64(d)
	}

	for it := 0; it < opt.Iterations; it++ {
		moved := 0
		for _, v := range order {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				lc.add(a.Parts[u], 1)
			}
			cur := a.Parts[v]
			best := cur
			bestScore := lc.cnt[cur]/float64(deg) - penalty(cur, v)
			for _, cand := range lc.touched {
				if cand == cur {
					continue
				}
				score := lc.cnt[cand]/float64(deg) - penalty(cand, v)
				if score > bestScore+1e-12 {
					best, bestScore = cand, score
				}
			}
			lc.reset()
			if best != cur && rng.Float64() < opt.MoveProb {
				for j := 0; j < d; j++ {
					loads[j][cur] -= ws[j][v]
					loads[j][best] += ws[j][v]
				}
				a.Parts[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return a
}
