package baselines

import (
	"fmt"
	"math"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

// RowSource delivers every adjacency row of a graph exactly once, in vertex
// order 0..n-1, to fn. The row slice may be reused between calls. A
// RowSource must be restreamable: each invocation performs one full fresh
// pass, so restreaming algorithms (Fennel's multi-pass refinement, the final
// scoring pass) can call it repeatedly. internal/wire's Decoder.Rows over a
// re-opened spill file satisfies this contract; so does an in-memory graph's
// Neighbors sweep.
type RowSource func(fn func(v int, adj []int32) error) error

// FennelStream is the out-of-core variant of Fennel: it partitions a graph
// it never materializes, consuming adjacency rows from src once per pass.
// Vertices are visited in natural order (0..n-1) — the order the wire format
// delivers rows — rather than the in-core version's seeded random
// permutation, so the two variants produce different (both valid) partitions
// and the serving layer keys their cached results separately. Given the same
// source, the result is fully deterministic: no RNG is involved (opt.Seed
// only seeds the degenerate m==0 fallback).
//
// Memory is O(n + k): the assignment, an assigned bitmap and per-part
// counters — no adjacency is retained, which is the point.
func FennelStream(n int, m int64, k int, src RowSource, opt FennelOptions) (*partition.Assignment, error) {
	opt.normalize()
	a := partition.NewAssignment(n, k)
	if n == 0 || k <= 1 {
		return a, nil
	}
	if m == 0 {
		return Hash(n, k, opt.Seed), nil
	}
	mf := float64(m)
	alpha := mf * math.Pow(float64(k), opt.Gamma-1) / math.Pow(float64(n), opt.Gamma)
	cap := opt.Slack * float64(n) / float64(k)

	sizes := make([]float64, k)
	assigned := make([]bool, n)
	nbrCount := make([]float64, k)

	for pass := 0; pass < opt.Passes; pass++ {
		err := src(func(v int, adj []int32) error {
			if v < 0 || v >= n {
				return fmt.Errorf("baselines: row source delivered vertex %d outside [0, %d)", v, n)
			}
			if assigned[v] {
				sizes[a.Parts[v]]--
			}
			for i := range nbrCount {
				nbrCount[i] = 0
			}
			for _, u := range adj {
				// In natural visit order, "u already placed" covers both
				// earlier vertices this pass and everyone on later passes —
				// the same information the in-core variant uses.
				if assigned[u] {
					nbrCount[a.Parts[u]]++
				}
			}
			best, bestScore := -1, math.Inf(-1)
			for i := 0; i < k; i++ {
				if sizes[i]+1 > cap {
					continue
				}
				score := nbrCount[i] - alpha*opt.Gamma*math.Pow(sizes[i], opt.Gamma-1)
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			if best == -1 { // every part at cap (numerical corner): smallest
				best = 0
				for i := 1; i < k; i++ {
					if sizes[i] < sizes[best] {
						best = i
					}
				}
			}
			a.Parts[v] = int32(best)
			sizes[best]++
			assigned[v] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// StreamStats holds partition quality metrics computed in one extra pass
// over a RowSource, mirroring what the serving layer reports from a
// materialized graph (edge locality, cut edges, vertex/edge-degree
// imbalance) without needing one.
type StreamStats struct {
	CutEdges     int64
	EdgeLocality float64 // 1 − cut/m; 1 for m == 0
	VertexImb    float64 // max part vertex count / (n/k) − 1
	DegreeImb    float64 // max part degree sum / (2m/k) − 1
}

// ComputeStreamStats scores an assignment against the graph behind src.
// Each undirected edge is counted once (at its higher endpoint); degrees
// accumulate per part from row lengths.
func ComputeStreamStats(n int, m int64, k int, src RowSource, a *partition.Assignment) (StreamStats, error) {
	if len(a.Parts) != n {
		return StreamStats{}, fmt.Errorf("baselines: assignment covers %d vertices, graph has %d", len(a.Parts), n)
	}
	vcount := make([]int64, k)
	dsum := make([]int64, k)
	var cut int64
	err := src(func(v int, adj []int32) error {
		p := a.Parts[v]
		if int(p) < 0 || int(p) >= k {
			return fmt.Errorf("baselines: vertex %d assigned to part %d outside [0, %d)", v, p, k)
		}
		vcount[p]++
		dsum[p] += int64(len(adj))
		for _, u := range adj {
			if int(u) < v && a.Parts[u] != p {
				cut++
			}
		}
		return nil
	})
	if err != nil {
		return StreamStats{}, err
	}
	st := StreamStats{CutEdges: cut, EdgeLocality: 1}
	if m > 0 {
		st.EdgeLocality = 1 - float64(cut)/float64(m)
	}
	if n > 0 && k > 0 {
		maxV := int64(0)
		for _, c := range vcount {
			if c > maxV {
				maxV = c
			}
		}
		st.VertexImb = float64(maxV)/(float64(n)/float64(k)) - 1
	}
	if m > 0 && k > 0 {
		maxD := int64(0)
		for _, d := range dsum {
			if d > maxD {
				maxD = d
			}
		}
		st.DegreeImb = float64(maxD)/(float64(2*m)/float64(k)) - 1
	}
	return st, nil
}

// GraphRowSource adapts a materialized graph to the RowSource contract, for
// tests and in-memory callers (the out-of-core path streams from a spill
// file instead).
func GraphRowSource(g *graph.Graph) RowSource {
	return func(fn func(v int, adj []int32) error) error {
		for v := 0; v < g.N(); v++ {
			if err := fn(v, g.Neighbors(v)); err != nil {
				return err
			}
		}
		return nil
	}
}
