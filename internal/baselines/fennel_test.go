package baselines

import (
	"testing"
	"testing/quick"

	"mdbgp/internal/gen"
	"mdbgp/internal/partition"
)

func TestFennelBeatsHashOnCommunities(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 3000, Communities: 8, AvgDegree: 12, InFraction: 0.85, Seed: 21})
	k := 8
	f := Fennel(g, k, FennelOptions{Seed: 22})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	h := Hash(g.N(), k, 22)
	fl := partition.EdgeLocality(g, f)
	hl := partition.EdgeLocality(g, h)
	if fl < 2*hl {
		t.Fatalf("fennel locality %.3f not clearly above hash %.3f", fl, hl)
	}
}

func TestFennelVertexCapHolds(t *testing.T) {
	g := gen.ChungLu(2000, 10, 1.6, 23)
	k := 4
	a := Fennel(g, k, FennelOptions{Slack: 1.1, Seed: 24})
	cap := 1.1 * float64(g.N()) / float64(k)
	for p, s := range a.PartSizes() {
		if float64(s) > cap+1 {
			t.Fatalf("part %d size %d exceeds cap %.0f", p, s, cap)
		}
	}
}

func TestFennelRestreamingImproves(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 2000, Communities: 4, AvgDegree: 10, InFraction: 0.85, Seed: 25})
	one := Fennel(g, 4, FennelOptions{Passes: 1, Seed: 26})
	five := Fennel(g, 4, FennelOptions{Passes: 5, Seed: 26})
	l1 := partition.EdgeLocality(g, one)
	l5 := partition.EdgeLocality(g, five)
	if l5 < l1-0.01 {
		t.Fatalf("restreaming degraded locality: %.3f -> %.3f", l1, l5)
	}
}

func TestFennelTrivialCases(t *testing.T) {
	empty, _ := gen.SBM(gen.SBMConfig{N: 0})
	if a := Fennel(empty, 4, FennelOptions{}); len(a.Parts) != 0 {
		t.Fatal("empty graph")
	}
	g := gen.Grid(3, 3, false)
	a := Fennel(g, 1, FennelOptions{})
	for _, p := range a.Parts {
		if p != 0 {
			t.Fatal("k=1 all zero")
		}
	}
	// Edgeless graph degenerates to hash.
	edgeless, _ := gen.SBM(gen.SBMConfig{N: 50})
	a = Fennel(edgeless, 4, FennelOptions{Seed: 9})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: valid assignments and bounded vertex imbalance on arbitrary
// community graphs.
func TestQuickFennelValid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%5 + 2
		g, _ := gen.SBM(gen.SBMConfig{N: 300, Communities: 4, AvgDegree: 8, InFraction: 0.8, Seed: seed})
		a := Fennel(g, k, FennelOptions{Seed: seed})
		if a.Validate() != nil {
			return false
		}
		return partition.VertexImbalance(a) <= 0.12+float64(k)/300.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
