package baselines

import (
	"math/rand"
	"testing"

	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
)

func streamTestGraph(t testing.TB, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestFennelStreamDeterministic(t *testing.T) {
	g := streamTestGraph(t, 2000, 10000, 7)
	opt := FennelOptions{Slack: 1.1}
	a1, err := FennelStream(g.N(), g.M(), 8, GraphRowSource(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := FennelStream(g.N(), g.M(), 8, GraphRowSource(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Parts {
		if a1.Parts[v] != a2.Parts[v] {
			t.Fatalf("nondeterministic at vertex %d: %d vs %d", v, a1.Parts[v], a2.Parts[v])
		}
	}
}

func TestFennelStreamBalanceAndQuality(t *testing.T) {
	g := streamTestGraph(t, 5000, 25000, 11)
	k, slack := 10, 1.1
	a, err := FennelStream(g.N(), g.M(), k, GraphRowSource(g), FennelOptions{Slack: slack})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hard cap must hold: no part exceeds slack·n/k.
	cap := int64(slack * float64(g.N()) / float64(k))
	for p, s := range a.PartSizes() {
		if s > cap+1 {
			t.Errorf("part %d has %d vertices, cap %d", p, s, cap)
		}
	}
	// Better than random assignment on locality: random expects ≈ 1/k.
	loc := partition.EdgeLocality(g, a)
	if loc < 1.0/float64(k) {
		t.Errorf("streamed fennel locality %.3f worse than random %.3f", loc, 1.0/float64(k))
	}
}

func TestComputeStreamStatsMatchesPartition(t *testing.T) {
	g := streamTestGraph(t, 3000, 15000, 13)
	k := 6
	a, err := FennelStream(g.N(), g.M(), k, GraphRowSource(g), FennelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStreamStats(g.N(), g.M(), k, GraphRowSource(g), a)
	if err != nil {
		t.Fatal(err)
	}
	if want := partition.CutEdges(g, a); st.CutEdges != want {
		t.Errorf("streamed cut %d != partition.CutEdges %d", st.CutEdges, want)
	}
	if want := partition.EdgeLocality(g, a); abs(st.EdgeLocality-want) > 1e-12 {
		t.Errorf("streamed locality %v != partition.EdgeLocality %v", st.EdgeLocality, want)
	}
	if want := partition.VertexImbalance(a); abs(st.VertexImb-want) > 1e-12 {
		t.Errorf("streamed vertex imbalance %v != partition %v", st.VertexImb, want)
	}
	if want := partition.EdgeImbalance(g, a); abs(st.DegreeImb-want) > 1e-12 {
		t.Errorf("streamed degree imbalance %v != partition %v", st.DegreeImb, want)
	}
}

func TestFennelStreamDegenerate(t *testing.T) {
	// k <= 1: everything in part 0.
	a, err := FennelStream(100, 50, 1, nil, FennelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Parts {
		if p != 0 {
			t.Fatal("k=1 must place everything in part 0")
		}
	}
	// m == 0 falls back to hashing, never calls the source.
	a, err = FennelStream(100, 0, 4, nil, FennelOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// n == 0 empty.
	if a, err = FennelStream(0, 0, 4, nil, FennelOptions{}); err != nil || len(a.Parts) != 0 {
		t.Fatalf("empty graph: %v, %d parts", err, len(a.Parts))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
