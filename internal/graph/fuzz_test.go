package graph

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzMaxID bounds vertex ids during fuzzing so a single adversarial line
// ("0 2000000000") cannot make Build allocate gigabytes; the production
// bound is graph.MaxVertexID and servers pick their own tighter limit.
const fuzzMaxID = 1 << 20

// FuzzParseEdgeList feeds arbitrary bytes through the wire/ingestion format.
// The invariant: ReadEdgeListInto either returns a clean error or yields a
// builder whose Build passes Validate and round-trips — it must never panic,
// whatever the input (malformed lines, duplicate edges, self loops, huge or
// negative ids, stray comments, binary garbage).
func FuzzParseEdgeList(f *testing.F) {
	f.Add([]byte("# 4 3\n0 1\n1 2\n2 3\n"))
	f.Add([]byte("0 1\n0 1\n1 0\n"))                          // duplicates both directions
	f.Add([]byte("5 5\n"))                                    // self loop
	f.Add([]byte("% matrix-market style comment\n1 2 0.5\n")) // extra fields tolerated
	f.Add([]byte("0 1048576\n"))                              // at the fuzz id bound
	f.Add([]byte("0 1048577\n"))                              // beyond the fuzz id bound
	f.Add([]byte("0 99999999999999999999\n"))                 // overflows int64
	f.Add([]byte("-1 2\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("7\n"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(strings.Repeat("x", 2<<20))) // line longer than scanner buffer
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder(0)
		err := ReadEdgeListInto(b, bytes.NewReader(data), fuzzMaxID)
		g := b.Build()
		if err != nil {
			return
		}
		if g.N() > fuzzMaxID+1 {
			t.Fatalf("accepted graph has %d vertices, limit %d", g.N(), fuzzMaxID+1)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input built invalid graph: %v", err)
		}
		// Round-trip: write canonical form, re-read, same hash.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-reading our own output failed: %v", err)
		}
		// The rewrite drops isolated trailing vertices only if the input had
		// none; vertex count may legitimately shrink when the original input
		// mentioned a high id solely in a dropped self loop. Compare edge
		// structure via hash only when vertex counts agree.
		if g2.N() == g.N() && g2.Hash() != g.Hash() {
			t.Fatal("edge list round-trip changed the graph")
		}
		if g2.M() != g.M() {
			t.Fatalf("round-trip changed edge count: %d != %d", g2.M(), g.M())
		}
	})
}

// FuzzParseDelta feeds arbitrary bytes through the delta ingestion format.
// The invariant mirrors FuzzParseEdgeList: ParseDelta either returns a clean
// error or yields a delta that ApplyDelta turns into a valid graph whose
// edge churn matches the reported stats — never a panic, whatever the input.
func FuzzParseDelta(f *testing.F) {
	f.Add([]byte("+0 1\n-1 2\n"))
	f.Add([]byte("+ 0 1\n- 1 2\n"))     // detached signs
	f.Add([]byte("+0 1 2.5\n"))         // optional weight, ignored
	f.Add([]byte("+5 5\n-3 3\n"))       // self loops
	f.Add([]byte("+0 1\n+1 0\n-0 1\n")) // duplicate ops both orders
	f.Add([]byte("+0 1048577\n"))       // beyond the fuzz id bound
	f.Add([]byte("+-1 2\n"))            // negative id
	f.Add([]byte("-0 99999999999999999999\n"))
	f.Add([]byte("# comment\n% other\n\n"))
	f.Add([]byte("0 1\n")) // unsigned line
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(strings.Repeat("+1 2\n", 1000)))

	// A small fixed base so application semantics get exercised too.
	baseBuilder := NewBuilder(8)
	for i := 0; i < 7; i++ {
		baseBuilder.AddEdge(i, i+1)
	}
	base := baseBuilder.Build()

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDelta(bytes.NewReader(data), fuzzMaxID)
		if err != nil {
			return
		}
		g, stats := ApplyDelta(base, d)
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted delta built invalid graph: %v", err)
		}
		if g.N() > fuzzMaxID+1 {
			t.Fatalf("accepted graph has %d vertices, limit %d", g.N(), fuzzMaxID+1)
		}
		// Stats must equal the symmetric difference the application produced.
		if got := g.M() - base.M(); got != stats.AddedNew-stats.RemovedExisting {
			t.Fatalf("edge count delta %d inconsistent with stats %+v", got, stats)
		}
		if stats.AddedNew < 0 || stats.RemovedExisting < 0 || stats.Churn(base.M()) < 0 {
			t.Fatalf("negative stats: %+v", stats)
		}
		// Applying the same delta twice is idempotent (set semantics).
		g2, _ := ApplyDelta(g, d)
		if g2.HashString() != g.HashString() {
			t.Fatal("delta application is not idempotent")
		}
	})
}

func TestReadEdgeListIntoErrors(t *testing.T) {
	cases := map[string]string{
		"short line":     "0 1\n7\n",
		"bad vertex":     "0 x\n",
		"negative":       "-4 2\n",
		"huge id":        "0 3000000000\n", // exceeds int32 — previously silently overflowed
		"int64 overflow": "1 123456789012345678901234567890\n",
	}
	for name, in := range cases {
		b := NewBuilder(0)
		if err := ReadEdgeListInto(b, strings.NewReader(in), 0); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestReadEdgeListIntoLimit(t *testing.T) {
	b := NewBuilder(0)
	if err := ReadEdgeListInto(b, strings.NewReader("0 100\n"), 100); err != nil {
		t.Fatalf("id at limit rejected: %v", err)
	}
	if err := ReadEdgeListInto(b, strings.NewReader("0 101\n"), 100); err == nil {
		t.Fatal("id beyond limit accepted")
	}
	// Streaming: edges from the first (successful) read are retained.
	g := b.Build()
	if g.N() != 101 || g.M() != 1 {
		t.Fatalf("builder state after streaming reads: n=%d m=%d", g.N(), g.M())
	}
}

func TestAddEdgeHugeIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge accepted an id beyond MaxVertexID (would overflow int32 storage)")
		}
	}()
	NewBuilder(0).AddEdge(0, MaxVertexID+1)
}

func TestReadEdgeListIntoAccumulates(t *testing.T) {
	b := NewBuilder(0)
	if err := ReadEdgeListInto(b, strings.NewReader("0 1\n1 2\n"), 0); err != nil {
		t.Fatal(err)
	}
	if err := ReadEdgeListInto(b, strings.NewReader("2 3\n"), 0); err != nil {
		t.Fatal(err)
	}
	b.AddEdge(3, 4)
	g := b.Build()
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("accumulated graph: n=%d m=%d, want n=5 m=4", g.N(), g.M())
	}
}
