package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// StreamHasher computes the canonical graph content hash — the same digest
// Graph.Hash produces — without requiring a materialized CSR. Callers that
// only have a row stream (the binary wire decoder, the out-of-core ingest
// path) feed it in two phases:
//
//  1. AddDegree(d) exactly n times, in vertex order. This reconstructs and
//     hashes the offsets array.
//  2. AddRow(adj) exactly n times, in vertex order, with each row's sorted
//     adjacency. This hashes the adjacency array.
//
// then Sum/SumString. The digest byte layout is: a 16-byte header
// {u64 LE n, u64 LE arcs}, all n+1 offsets as u64 LE, all adjacency entries
// as u32 LE — identical to hashing the materialized canonical CSR, so a
// streamed hash and Graph.Hash of the same graph always agree.
type StreamHasher struct {
	h      hash.Hash
	buf    []byte
	fill   int
	offset int64
}

// NewStreamHasher starts a hash for a graph with n vertices and arcs stored
// adjacency entries (2·m for a canonical undirected graph). The counts are
// part of the digest, so they must match what AddDegree/AddRow deliver.
func NewStreamHasher(n int, arcs int64) *StreamHasher {
	sh := &StreamHasher{h: sha256.New(), buf: make([]byte, 8*1024)}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(n))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(arcs))
	sh.h.Write(hdr[:])
	sh.putU64(0) // offsets[0]
	return sh
}

func (sh *StreamHasher) putU64(v uint64) {
	if sh.fill+8 > len(sh.buf) {
		sh.flush()
	}
	binary.LittleEndian.PutUint64(sh.buf[sh.fill:], v)
	sh.fill += 8
}

func (sh *StreamHasher) putU32(v uint32) {
	if sh.fill+4 > len(sh.buf) {
		sh.flush()
	}
	binary.LittleEndian.PutUint32(sh.buf[sh.fill:], v)
	sh.fill += 4
}

func (sh *StreamHasher) flush() {
	if sh.fill > 0 {
		sh.h.Write(sh.buf[:sh.fill])
		sh.fill = 0
	}
}

// AddDegree appends the next vertex's degree, hashing the resulting
// cumulative offset. Call exactly n times before the first AddRow.
func (sh *StreamHasher) AddDegree(d int) {
	sh.offset += int64(d)
	sh.putU64(uint64(sh.offset))
}

// AddRow appends the next vertex's sorted adjacency row. Call exactly n
// times, after all AddDegree calls.
func (sh *StreamHasher) AddRow(adj []int32) {
	for _, a := range adj {
		sh.putU32(uint32(a))
	}
}

// Sum finalizes and returns the digest. The hasher must not be used after.
func (sh *StreamHasher) Sum() [sha256.Size]byte {
	sh.flush()
	var out [sha256.Size]byte
	sh.h.Sum(out[:0])
	return out
}

// SumString returns Sum hex-encoded.
func (sh *StreamHasher) SumString() string {
	sum := sh.Sum()
	return hex.EncodeToString(sum[:])
}

// Hash returns a SHA-256 digest of the graph's canonical CSR form. The
// builder canonicalizes (sorts, deduplicates, symmetrizes) adjacency, so two
// graphs built from the same edge set — regardless of edge order, duplicate
// edges or self loops in the input — hash identically. This is the
// content-address used by the serving cache. The digest covers both the
// offsets and adjacency arrays: offsets are determined by adjacency row
// lengths, but row boundaries must be part of the digest for it to be a
// direct function of the canonical CSR.
func (g *Graph) Hash() [sha256.Size]byte {
	sh := NewStreamHasher(g.N(), int64(len(g.adj)))
	for v := 0; v < g.N(); v++ {
		sh.AddDegree(g.Degree(v))
	}
	for v := 0; v < g.N(); v++ {
		sh.AddRow(g.Neighbors(v))
	}
	return sh.Sum()
}

// HashString returns Hash hex-encoded.
func (g *Graph) HashString() string {
	sum := g.Hash()
	return hex.EncodeToString(sum[:])
}
