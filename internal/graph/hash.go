package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Hash returns a SHA-256 digest of the graph's canonical CSR form. The
// builder canonicalizes (sorts, deduplicates, symmetrizes) adjacency, so two
// graphs built from the same edge set — regardless of edge order, duplicate
// edges or self loops in the input — hash identically. This is the
// content-address used by the serving cache.
func (g *Graph) Hash() [sha256.Size]byte {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(g.adj)))
	h.Write(hdr[:])

	// Offsets are determined by adjacency row lengths and adjacency rows are
	// hashed in offset order, so hashing adj alone plus the header captures
	// the whole structure only if row boundaries are included. Hash both
	// arrays to keep the digest a direct function of the canonical CSR.
	buf := make([]byte, 8*1024)
	n := 0
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(buf[n:], uint64(o))
		n += 8
		if n == len(buf) {
			h.Write(buf)
			n = 0
		}
	}
	if n > 0 {
		h.Write(buf[:n])
		n = 0
	}
	for _, a := range g.adj {
		binary.LittleEndian.PutUint32(buf[n:], uint32(a))
		n += 4
		if n == len(buf) {
			h.Write(buf)
			n = 0
		}
	}
	if n > 0 {
		h.Write(buf[:n])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// HashString returns Hash hex-encoded.
func (g *Graph) HashString() string {
	sum := g.Hash()
	return hex.EncodeToString(sum[:])
}
