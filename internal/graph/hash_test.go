package graph

import (
	"strings"
	"testing"
)

func TestHashContentAddressing(t *testing.T) {
	// Same edge set in different input orders, with duplicates and self
	// loops, must hash identically: the builder canonicalizes.
	a := FromEdges(0, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	b := FromEdges(0, []Edge{{3, 0}, {2, 1}, {1, 0}, {3, 2}, {1, 0}, {2, 2}})
	if a.Hash() != b.Hash() {
		t.Fatal("canonically equal graphs hash differently")
	}
	if a.HashString() != b.HashString() {
		t.Fatal("HashString disagrees with Hash")
	}
	if len(a.HashString()) != 64 || strings.Trim(a.HashString(), "0123456789abcdef") != "" {
		t.Fatalf("HashString %q is not hex sha256", a.HashString())
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	base := FromEdges(0, []Edge{{0, 1}, {1, 2}})
	cases := map[string]*Graph{
		"extra edge":     FromEdges(0, []Edge{{0, 1}, {1, 2}, {0, 2}}),
		"extra vertex":   FromEdges(4, []Edge{{0, 1}, {1, 2}}),
		"different edge": FromEdges(0, []Edge{{0, 1}, {0, 2}}),
		"empty":          FromEdges(0, nil),
		"isolated-only":  FromEdges(3, nil),
	}
	seen := map[[32]byte]string{base.Hash(): "base"}
	for name, g := range cases {
		h := g.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
}

// TestHashLayoutPinned pins the digest byte layout (16-byte {n, arcs} header,
// offsets as u64 LE, adjacency as u32 LE) to an externally computed constant,
// so neither Hash nor the StreamHasher it is built on can silently change the
// content-address scheme — wire streams, disk caches and the router all key
// on it.
func TestHashLayoutPinned(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	const want = "a987bf3932ef13c1beae056f0732feb624bf23944cc2df3f991c56769c7c6876"
	if got := g.HashString(); got != want {
		t.Fatalf("digest layout drifted: got %s, want %s", got, want)
	}
}

// TestStreamHasherMatchesHash feeds the two-phase StreamHasher from graph
// rows and requires byte-identical digests to the materialized Hash.
func TestStreamHasherMatchesHash(t *testing.T) {
	for _, g := range []*Graph{
		FromEdges(0, nil),
		FromEdges(7, nil),
		FromEdges(0, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}}),
		FromEdges(2500, func() []Edge {
			es := make([]Edge, 0, 6000)
			for i := 0; i < 6000; i++ {
				es = append(es, Edge{int32((i * 37) % 2500), int32((i*i + 11) % 2500)})
			}
			return es
		}()),
	} {
		sh := NewStreamHasher(g.N(), int64(len(g.adj)))
		for v := 0; v < g.N(); v++ {
			sh.AddDegree(g.Degree(v))
		}
		for v := 0; v < g.N(); v++ {
			sh.AddRow(g.Neighbors(v))
		}
		if sh.SumString() != g.HashString() {
			t.Fatalf("%v: streamed digest differs from Hash", g)
		}
	}
}
