package graph

import (
	"strings"
	"testing"
)

func TestHashContentAddressing(t *testing.T) {
	// Same edge set in different input orders, with duplicates and self
	// loops, must hash identically: the builder canonicalizes.
	a := FromEdges(0, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	b := FromEdges(0, []Edge{{3, 0}, {2, 1}, {1, 0}, {3, 2}, {1, 0}, {2, 2}})
	if a.Hash() != b.Hash() {
		t.Fatal("canonically equal graphs hash differently")
	}
	if a.HashString() != b.HashString() {
		t.Fatal("HashString disagrees with Hash")
	}
	if len(a.HashString()) != 64 || strings.Trim(a.HashString(), "0123456789abcdef") != "" {
		t.Fatalf("HashString %q is not hex sha256", a.HashString())
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	base := FromEdges(0, []Edge{{0, 1}, {1, 2}})
	cases := map[string]*Graph{
		"extra edge":     FromEdges(0, []Edge{{0, 1}, {1, 2}, {0, 2}}),
		"extra vertex":   FromEdges(4, []Edge{{0, 1}, {1, 2}}),
		"different edge": FromEdges(0, []Edge{{0, 1}, {0, 2}}),
		"empty":          FromEdges(0, nil),
		"isolated-only":  FromEdges(3, nil),
	}
	seen := map[[32]byte]string{base.Hash(): "base"}
	for name, g := range cases {
		h := g.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
}
