// Package graph provides a compact immutable undirected graph in compressed
// sparse row (CSR) form, a counting-sort based builder, induced subgraphs and
// a simple edge-list exchange format.
//
// Vertices are dense integers 0..N()-1. The adjacency of every vertex is
// stored sorted and deduplicated; every undirected edge {u,v} appears twice,
// once in each endpoint's adjacency list. Self loops are dropped by the
// builder. The representation is optimized for the access pattern of the
// partitioner: sequential sweeps over all adjacency lists (sparse
// matrix–vector products) and O(deg) neighborhood scans.
package graph

import (
	"fmt"
)

// Graph is an immutable undirected graph in CSR form.
//
// The zero value is the empty graph. Graphs are safe for concurrent readers.
type Graph struct {
	offsets []int64 // len N()+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // sorted neighbor ids, each undirected edge stored twice
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return int64(len(g.adj)) / 2 }

// DirectedSize returns the number of stored adjacency entries (2·M()).
func (g *Graph) DirectedSize() int64 { return int64(len(g.adj)) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u,v} is present, using binary
// search over the smaller adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ns[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && int(ns[lo]) == v
}

// MaxDegree returns the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Degrees returns a freshly allocated slice of all vertex degrees.
func (g *Graph) Degrees() []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	return ds
}

// EachEdge calls fn(u, v) exactly once per undirected edge, with u < v.
// Iteration stops early if fn returns false.
func (g *Graph) EachEdge(fn func(u, v int) bool) {
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			v := int(w)
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Validate checks the CSR invariants: monotone offsets, in-range sorted
// deduplicated adjacency without self loops, and symmetry (u in adj(v) iff
// v in adj(u)). It is intended for tests and debugging; it runs in
// O(n + m log d) time.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.offsets) > 0 {
		if g.offsets[0] != 0 {
			return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
		}
		if g.offsets[n] != int64(len(g.adj)) {
			return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
		}
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		ns := g.Neighbors(v)
		for i, w := range ns {
			if int(w) < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge %d->%d not symmetric", v, w)
			}
		}
	}
	return nil
}

// FromCSR constructs a graph directly from CSR arrays. The arrays are taken
// over by the graph and must satisfy Validate; this is intended for internal
// constructors (builder, subgraph, coarsening) that produce canonical CSR.
func FromCSR(offsets []int64, adj []int32) *Graph {
	return &Graph{offsets: offsets, adj: adj}
}

// CSR exposes the raw CSR arrays for zero-copy consumers (the weighted
// coarsening wrapper, SpMV kernels). The returned slices alias the graph's
// internal storage and must not be modified.
func (g *Graph) CSR() (offsets []int64, adj []int32) {
	return g.offsets, g.adj
}
