package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var zero Graph
	if zero.N() != 0 || zero.M() != 0 {
		t.Fatalf("zero value graph: n=%d m=%d", zero.N(), zero.M())
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("cycle: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d)=%d, want 2", v, g.Degree(v))
		}
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 1) // self loop
	b.AddEdge(2, 2) // self loop
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("degree(2)=%d, want 0", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderGrowsVertexSet(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.N() != 10 {
		t.Fatalf("n=%d, want 10", g.N())
	}
	if !g.HasEdge(5, 9) || !g.HasEdge(9, 5) {
		t.Fatal("edge 5-9 missing")
	}
}

func TestHasEdge(t *testing.T) {
	g := path(5)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false}, {3, 4, true},
		{4, 4, false}, {-1, 0, false}, {0, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d)=%v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEachEdgeVisitsOncePerEdge(t *testing.T) {
	g := path(6)
	seen := map[[2]int]int{}
	g.EachEdge(func(u, v int) bool {
		if u >= v {
			t.Fatalf("EachEdge emitted u=%d >= v=%d", u, v)
		}
		seen[[2]int{u, v}]++
		return true
	})
	if int64(len(seen)) != g.M() {
		t.Fatalf("visited %d edges, want %d", len(seen), g.M())
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v visited %d times", e, c)
		}
	}
}

func TestEachEdgeEarlyStop(t *testing.T) {
	g := path(10)
	count := 0
	g.EachEdge(func(u, v int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestMaxDegreeAndDegrees(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree %d, want 3", g.MaxDegree())
	}
	ds := g.Degrees()
	want := []int{3, 1, 1, 1, 0}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("degrees = %v, want %v", ds, want)
		}
	}
}

// Property: degree sum equals twice the edge count, for arbitrary random
// multigraph inputs (duplicates and self loops included in input).
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%64 + 2
		m := int(mRaw) % 512
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		sum := int64(0)
		for v := 0; v < g.N(); v++ {
			sum += int64(g.Degree(v))
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: building from the emitted edge list reproduces the same graph.
func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.M() != g.M() {
			return false
		}
		equal := true
		g.EachEdge(func(u, v int) bool {
			if !g2.HasEdge(u, v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# header\n% matrix-market style comment\n0 1\n\n1 2 extra-ignored\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestSubgraphInduced(t *testing.T) {
	// Square 0-1-2-3 with a diagonal 0-2 and a pendant 4 attached to 3.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	g := b.Build()

	sub, ids := Subgraph(g, []int32{0, 1, 2})
	if sub.N() != 3 || sub.M() != 3 { // triangle 0-1-2
		t.Fatalf("sub: n=%d m=%d, want 3,3", sub.N(), sub.M())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids=%v", ids)
	}
}

func TestSubgraphNonMonotoneOrder(t *testing.T) {
	g := path(4)
	sub, ids := Subgraph(g, []int32{3, 2, 1})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub: n=%d m=%d, want 3,2", sub.N(), sub.M())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// new 0 = old 3, new 1 = old 2: must be adjacent.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatalf("subgraph structure wrong: ids=%v", ids)
	}
}

func TestSubgraphEmptyKeep(t *testing.T) {
	g := path(4)
	sub, ids := Subgraph(g, nil)
	if sub.N() != 0 || sub.M() != 0 || len(ids) != 0 {
		t.Fatalf("empty keep: n=%d m=%d ids=%v", sub.N(), sub.M(), ids)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphDuplicatePanics(t *testing.T) {
	g := path(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate vertex in keep")
		}
	}()
	Subgraph(g, []int32{1, 1})
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestSortInt32LongRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	row := make([]int32, 200)
	for i := range row {
		row[i] = int32(rng.Intn(1000))
	}
	sortInt32(row)
	for i := 1; i < len(row); i++ {
		if row[i-1] > row[i] {
			t.Fatal("long row not sorted")
		}
	}
}

func TestStringer(t *testing.T) {
	g := path(3)
	if got := g.String(); got != "graph{n=3 m=2}" {
		t.Fatalf("String()=%q", got)
	}
}
