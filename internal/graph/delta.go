package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Delta is a batch of edge insertions and deletions against a base graph —
// the wire unit of incremental repartitioning. Endpoint order within an
// edge is irrelevant (the graph is undirected) and duplicates are tolerated:
// applying a delta is a set operation, base ∪ Add \ (Remove \ Add).
type Delta struct {
	Add    []Edge
	Remove []Edge
}

// Len returns the raw number of operations in the delta.
func (d *Delta) Len() int { return len(d.Add) + len(d.Remove) }

// DeltaStats reports what applying a delta actually changed. Operations that
// were already true of the base (adding a present edge, removing an absent
// one) do not count: AddedNew + RemovedExisting is exactly the size of the
// symmetric difference between the base and the materialized edge sets, the
// quantity edge-churn thresholds are defined over.
type DeltaStats struct {
	// AddedNew counts added edges the base did not have.
	AddedNew int64
	// RemovedExisting counts removed base edges (not re-added by the same
	// delta).
	RemovedExisting int64
	// NewVertices counts vertex ids introduced beyond the base's range.
	NewVertices int
}

// Churn returns the fraction of the base edge set the delta effectively
// changed: |symmetric difference| / max(1, base edges).
func (s DeltaStats) Churn(baseEdges int64) float64 {
	if baseEdges < 1 {
		baseEdges = 1
	}
	return float64(s.AddedNew+s.RemovedExisting) / float64(baseEdges)
}

// ParseDelta reads an edge delta: one operation per line, "+u v" to insert
// the undirected edge {u,v} and "-u v" to delete it. The sign may be its own
// token ("+ u v") or attached to the first id ("+u v"); an optional trailing
// weight field is accepted for forward compatibility and ignored (graphs are
// unweighted). '#'/'%' comment lines and blank lines are skipped. The same
// hardening as ReadEdgeListInto applies: malformed lines, negative ids and
// ids above maxVertexID (0 means MaxVertexID) fail with the offending line,
// so a single hostile line cannot force a huge allocation downstream.
func ParseDelta(r io.Reader, maxVertexID int) (*Delta, error) {
	if maxVertexID <= 0 || maxVertexID > MaxVertexID {
		maxVertexID = MaxVertexID
	}
	d := &Delta{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		sign := line[0]
		if sign != '+' && sign != '-' {
			return nil, fmt.Errorf("graph: delta line %d: want '+u v' or '-u v', got %q", lineNo, line)
		}
		fields := strings.Fields(line[1:])
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: delta line %d: want '%cu v', got %q", lineNo, sign, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: delta line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: delta line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		if len(fields) == 3 {
			// The optional weight is validated but unused: rejecting garbage
			// here beats surprising the sender later.
			if _, err := strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("graph: delta line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: delta line %d: negative vertex id", lineNo)
		}
		if u > maxVertexID || v > maxVertexID {
			return nil, fmt.Errorf("graph: delta line %d: vertex id %d exceeds limit %d", lineNo, max(u, v), maxVertexID)
		}
		e := Edge{U: int32(u), V: int32(v)}
		if sign == '+' {
			d.Add = append(d.Add, e)
		} else {
			d.Remove = append(d.Remove, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteDelta writes the delta in the format ParseDelta reads: one "-u v"
// line per removal, then one "+u v" line per insertion. (ParseDelta and
// ApplyDelta are order-insensitive, so the grouping is purely cosmetic.)
func WriteDelta(w io.Writer, d *Delta) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, e := range d.Remove {
		if _, err := fmt.Fprintf(bw, "-%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	for _, e := range d.Add {
		if _, err := fmt.Fprintf(bw, "+%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// packEdge canonicalizes an undirected edge into one comparable key.
func packEdge(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// ApplyDelta materializes base with the delta applied: every Remove edge
// dropped, every Add edge inserted, an edge listed in both ends up present.
// Self loops and duplicate operations are ignored, and operations that were
// already true of the base are no-ops (counted separately in the stats, so
// churn reflects real change). The base is not modified; vertex ids beyond
// the base's range grow the vertex set, and removing all edges of a vertex
// keeps the vertex (assignments stay index-aligned with the base).
func ApplyDelta(base *Graph, d *Delta) (*Graph, DeltaStats) {
	removeSet := make(map[int64]struct{}, len(d.Remove))
	for _, e := range d.Remove {
		if e.U == e.V {
			continue
		}
		removeSet[packEdge(e.U, e.V)] = struct{}{}
	}
	addSet := make(map[int64]struct{}, len(d.Add))
	maxID := int32(base.N() - 1)
	for _, e := range d.Add {
		if e.U == e.V {
			continue
		}
		addSet[packEdge(e.U, e.V)] = struct{}{}
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}

	var stats DeltaStats
	if n := int(maxID) + 1; n > base.N() {
		stats.NewVertices = n - base.N()
	}
	b := NewBuilder(int(maxID) + 1)
	base.EachEdge(func(u, v int) bool {
		key := packEdge(int32(u), int32(v))
		if _, added := addSet[key]; added {
			// Present in base and re-asserted by the delta: keep it, and do
			// not add it again below (delete marks it consumed).
			delete(addSet, key)
			b.AddEdge(u, v)
			return true
		}
		if _, removed := removeSet[key]; removed {
			stats.RemovedExisting++
			return true
		}
		b.AddEdge(u, v)
		return true
	})
	for key := range addSet {
		stats.AddedNew++
		b.AddEdge(int(key>>32), int(key&0xffffffff))
	}
	return b.Build(), stats
}
