package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseDelta(t *testing.T) {
	in := `# a comment
% another
+0 1
+ 2 3 1.5
-4 5
- 6 7
+8 9 2

`
	d, err := ParseDelta(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantAdd := []Edge{{0, 1}, {2, 3}, {8, 9}}
	wantRemove := []Edge{{4, 5}, {6, 7}}
	if len(d.Add) != len(wantAdd) || len(d.Remove) != len(wantRemove) {
		t.Fatalf("parsed %d adds / %d removes, want %d / %d", len(d.Add), len(d.Remove), len(wantAdd), len(wantRemove))
	}
	for i, e := range wantAdd {
		if d.Add[i] != e {
			t.Fatalf("Add[%d] = %v, want %v", i, d.Add[i], e)
		}
	}
	for i, e := range wantRemove {
		if d.Remove[i] != e {
			t.Fatalf("Remove[%d] = %v, want %v", i, d.Remove[i], e)
		}
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
}

func TestParseDeltaErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		max  int
	}{
		{"no sign", "0 1\n", 0},
		{"missing endpoint", "+0\n", 0},
		{"too many fields", "+0 1 2 3\n", 0},
		{"bad id", "+a 1\n", 0},
		{"bad second id", "+1 b\n", 0},
		{"bad weight", "+1 2 heavy\n", 0},
		{"negative id", "+-1 2\n", 0},
		{"id above bound", "+0 100\n", 50},
		{"id above representation limit", "+0 4294967296\n", 0},
	}
	for _, tc := range cases {
		if _, err := ParseDelta(strings.NewReader(tc.in), tc.max); err == nil {
			t.Errorf("%s: ParseDelta(%q) succeeded, want error", tc.name, tc.in)
		}
	}
}

// pathGraph returns the n-vertex path graph 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestApplyDelta(t *testing.T) {
	base := pathGraph(5) // edges 01 12 23 34
	d := &Delta{
		Add:    []Edge{{0, 2}, {0, 1}, {3, 4}}, // 02 new; 01, 34 already present
		Remove: []Edge{{1, 2}, {3, 4}, {0, 4}}, // 12 removed; 34 re-added above; 04 absent
	}
	g, stats := ApplyDelta(base, d)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Fatalf("n = %d, want 5", g.N())
	}
	type pair struct{ u, v int }
	want := map[pair]bool{{0, 1}: true, {0, 2}: true, {2, 3}: true, {3, 4}: true}
	got := map[pair]bool{}
	g.EachEdge(func(u, v int) bool { got[pair{u, v}] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("edges %v, want %v", got, want)
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("missing edge %v (got %v)", e, got)
		}
	}
	// Churn counts only real change: +02 (new) and -12 (existing); the
	// re-asserted 01, the remove+add 34 and the absent 04 are no-ops.
	if stats.AddedNew != 1 || stats.RemovedExisting != 1 || stats.NewVertices != 0 {
		t.Fatalf("stats = %+v, want AddedNew=1 RemovedExisting=1 NewVertices=0", stats)
	}
	if c := stats.Churn(base.M()); c != 0.5 {
		t.Fatalf("churn = %g, want 2/4", c)
	}
	// The base is untouched.
	if base.HasEdge(0, 2) || !base.HasEdge(1, 2) {
		t.Fatal("ApplyDelta mutated the base graph")
	}
}

func TestApplyDeltaGrowsVertexSet(t *testing.T) {
	base := pathGraph(3)
	g, stats := ApplyDelta(base, &Delta{Add: []Edge{{2, 6}}})
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7 (ids up to 6)", g.N())
	}
	if stats.NewVertices != 4 {
		t.Fatalf("NewVertices = %d, want 4", stats.NewVertices)
	}
	if !g.HasEdge(2, 6) {
		t.Fatal("added edge missing")
	}
}

func TestApplyDeltaIgnoresNoise(t *testing.T) {
	base := pathGraph(4)
	g, stats := ApplyDelta(base, &Delta{
		Add:    []Edge{{1, 1}, {0, 2}, {2, 0}}, // self loop + duplicate pair (both orders)
		Remove: []Edge{{3, 3}},
	})
	if !g.HasEdge(0, 2) || g.M() != base.M()+1 {
		t.Fatalf("m = %d, want %d", g.M(), base.M()+1)
	}
	if stats.AddedNew != 1 || stats.RemovedExisting != 0 {
		t.Fatalf("stats = %+v, want AddedNew=1", stats)
	}
}

func TestApplyDeltaEmpty(t *testing.T) {
	base := pathGraph(6)
	g, stats := ApplyDelta(base, &Delta{})
	if g.N() != base.N() || g.M() != base.M() {
		t.Fatalf("empty delta changed the graph: %v vs %v", g, base)
	}
	if stats != (DeltaStats{}) {
		t.Fatalf("empty delta has stats %+v", stats)
	}
	// Same canonical CSR, same hash: an empty delta addresses the base's
	// cache entry.
	if g.HashString() != base.HashString() {
		t.Fatal("empty delta changed the canonical hash")
	}
}

// TestApplyDeltaMatchesRebuild cross-checks ApplyDelta against rebuilding
// from scratch on randomized graphs and deltas.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(40)
		b := NewBuilder(n)
		edges := map[int64][2]int{}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			edges[packEdge(int32(u), int32(v))] = [2]int{u, v}
		}
		base := b.Build()

		d := &Delta{}
		want := map[int64][2]int{}
		for k, e := range edges {
			want[k] = e
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			key := packEdge(int32(u), int32(v))
			if rng.Intn(2) == 0 {
				d.Add = append(d.Add, Edge{int32(u), int32(v)})
				want[key] = [2]int{u, v}
			} else {
				d.Remove = append(d.Remove, Edge{int32(u), int32(v)})
				delete(want, key)
			}
		}
		// An edge both removed and added ends present: replay the delta on
		// the reference model with the same semantics.
		for _, e := range d.Add {
			want[packEdge(e.U, e.V)] = [2]int{int(e.U), int(e.V)}
		}

		got, _ := ApplyDelta(base, d)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rb := NewBuilder(n)
		for _, e := range want {
			rb.AddEdge(e[0], e[1])
		}
		ref := rb.Build()
		if got.HashString() != ref.HashString() {
			t.Fatalf("trial %d: ApplyDelta diverged from rebuild (n=%d, ops=%d)", trial, n, d.Len())
		}
	}
}
