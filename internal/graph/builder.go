package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a canonical CSR Graph.
// Duplicate edges and self loops are dropped at Build time. The builder uses
// a counting sort over source vertices, so Build runs in O(n + m·log d̄)
// where d̄ is the average degree (the log factor is the per-row sort).
type Builder struct {
	n    int
	srcs []int32
	dsts []int32
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// Grow ensures the builder accommodates at least n vertices.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records the undirected edge {u,v}. Self loops are silently
// ignored. Out-of-range endpoints grow the vertex set. Ids outside
// [0, MaxVertexID] panic: the CSR representation stores neighbors as int32,
// and narrowing silently here would corrupt the graph (callers ingesting
// untrusted input should bound ids first — see ReadEdgeListInto).
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative vertex id (%d,%d)", u, v))
	}
	if u > MaxVertexID || v > MaxVertexID {
		panic(fmt.Sprintf("graph: vertex id %d exceeds MaxVertexID (%d)", max(u, v), MaxVertexID))
	}
	if u >= b.n || v >= b.n {
		m := u
		if v > m {
			m = v
		}
		b.Grow(m + 1)
	}
	b.srcs = append(b.srcs, int32(u), int32(v))
	b.dsts = append(b.dsts, int32(v), int32(u))
}

// EdgeCount returns the number of (possibly duplicate) edges added so far.
func (b *Builder) EdgeCount() int { return len(b.srcs) / 2 }

// Build produces the canonical CSR graph and leaves the builder empty.
func (b *Builder) Build() *Graph {
	n := b.n
	counts := make([]int64, n+1)
	for _, s := range b.srcs {
		counts[s+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	adj := make([]int32, len(b.srcs))
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for i, s := range b.srcs {
		adj[cursor[s]] = b.dsts[i]
		cursor[s]++
	}
	b.srcs, b.dsts = nil, nil

	// Sort and deduplicate each row, compacting in place.
	offsets := make([]int64, n+1)
	out := int64(0)
	for v := 0; v < n; v++ {
		row := adj[counts[v]:counts[v+1]]
		sortInt32(row)
		offsets[v] = out
		var prev int32 = -1
		for _, w := range row {
			if w == prev {
				continue
			}
			prev = w
			adj[out] = w
			out++
		}
	}
	offsets[n] = out
	adj = adj[:out:out]

	// Dedup can leave an odd asymmetry only if input was asymmetric, which
	// AddEdge prevents; both directions deduplicate identically.
	return &Graph{offsets: offsets, adj: adj}
}

func sortInt32(a []int32) {
	if len(a) < 24 {
		// Insertion sort dominates for the short adjacency rows typical of
		// power-law graphs.
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// Edge is an undirected edge between two vertex ids.
type Edge struct {
	U, V int32
}

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build()
}

// Subgraph returns the subgraph induced by the given vertex set together
// with the mapping from new ids to original ids. keep[i] is the original id
// of new vertex i; the order of keep is preserved. Vertices listed twice
// panic.
func Subgraph(g *Graph, keep []int32) (*Graph, []int32) {
	remap := make([]int32, g.N())
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range keep {
		if remap[old] != -1 {
			panic(fmt.Sprintf("graph: vertex %d listed twice in subgraph", old))
		}
		remap[old] = int32(newID)
	}
	offsets := make([]int64, len(keep)+1)
	for newID, old := range keep {
		cnt := int64(0)
		for _, w := range g.Neighbors(int(old)) {
			if remap[w] != -1 {
				cnt++
			}
		}
		offsets[newID+1] = offsets[newID] + cnt
	}
	adj := make([]int32, offsets[len(keep)])
	for newID, old := range keep {
		pos := offsets[newID]
		for _, w := range g.Neighbors(int(old)) {
			if nw := remap[w]; nw != -1 {
				adj[pos] = nw
				pos++
			}
		}
		// Rows stay sorted only if keep is monotone; sort to be canonical.
		sortInt32(adj[offsets[newID]:pos])
	}
	ids := make([]int32, len(keep))
	copy(ids, keep)
	return &Graph{offsets: offsets, adj: adj}, ids
}
