package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as whitespace-separated "u v" lines, one
// per undirected edge with u < v, preceded by a "# n m" header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var writeErr error
	g.EachEdge(func(u, v int) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' or '%' are treated as comments; the optional "# n m" header is
// used only to pre-size the builder. Vertex ids may appear in any order and
// duplicates are tolerated.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
