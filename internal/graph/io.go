package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MaxVertexID is the largest vertex id accepted by the edge-list readers.
// The CSR representation stores neighbor ids as int32, so ids beyond this
// bound cannot be represented and are rejected with an error instead of
// silently overflowing.
const MaxVertexID = math.MaxInt32 - 1

// WriteEdgeList writes the graph as whitespace-separated "u v" lines, one
// per undirected edge with u < v, preceded by a "# n m" header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var writeErr error
	g.EachEdge(func(u, v int) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' or '%' are treated as comments; the optional "# n m" header is
// used only to pre-size the builder. Vertex ids may appear in any order and
// duplicates are tolerated.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	if err := ReadEdgeListInto(b, r, 0); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadEdgeListInto streams an edge list into an existing builder, so callers
// (the serving ingest path, incremental loaders) can accumulate several
// sources or bound resources before Build. It is the text codec; the binary
// counterpart is internal/wire (see docs/WIRE_FORMAT.md).
//
// maxVertexID bounds the accepted vertex ids: any id above it returns an
// error identifying the offending line. Passing 0 (or any value outside
// (0, MaxVertexID]) means "no bound beyond the representation limit" — the
// effective bound becomes MaxVertexID. The serving daemon passes its
// -max-vertex-id resource cap here, while trusted in-process callers (the
// router's edge hashing, ReadEdgeList, the CLIs) pass 0 for the unbounded
// mode. Malformed lines and negative ids also error; the builder is left
// with every edge parsed up to that point. Self loops are dropped by the
// builder as usual.
func ReadEdgeListInto(b *Builder, r io.Reader, maxVertexID int) error {
	if maxVertexID <= 0 || maxVertexID > MaxVertexID {
		maxVertexID = MaxVertexID
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		if u > maxVertexID || v > maxVertexID {
			return fmt.Errorf("graph: line %d: vertex id %d exceeds limit %d", lineNo, max(u, v), maxVertexID)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}
