// Package multilevel implements the V-cycle multilevel driver for the GD
// partitioner: coarsen the graph with size-capped greedy clustering until it
// is small, run the projected-gradient bisection on the coarsest level,
// then walk back up the hierarchy — prolongate each fractional solution to
// the next finer level as a damped warm start and spend a small budget of GD
// refinement iterations there — and round only at the finest level.
//
// Direct GD costs O(I·|E|) for I iterations on the full edge set. The
// V-cycle pays roughly one contraction pass per level plus a shrinking
// number of refinement iterations, so total work is a small multiple of |E|
// instead of I·|E|; on graphs with community structure (where cluster
// coarsening finds and absorbs the clusters GD would otherwise spend
// iterations discovering) it reaches the locality of direct GD at a
// fraction of its running time. Every coarse level is an exact instance of
// the multi-dimensional problem — vertex weight totals per dimension and
// cut weights are preserved by contraction — so the coarse gradient
// optimizes exactly the fine objective restricted to the surviving edges,
// and ε-balance of a prolongated fractional solution carries down the
// hierarchy unchanged (see Prolongate).
//
// Determinism: the clustering order, the per-level GD seeds and the
// rounding stream are all derived from Options.GD.Seed, and every parallel
// kernel (contraction, weighted SpMV, projection) is chunk-ordered, so the
// result is bit-identical for a fixed seed at any worker count — the same
// contract the flat engine established.
package multilevel

import (
	"math/rand"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/core"
	"mdbgp/internal/graph"
	"mdbgp/internal/obs"
	"mdbgp/internal/partition"
	"mdbgp/internal/vecmath"
)

// Options configures the V-cycle. GD supplies the inner gradient-descent
// configuration (seed, workers, ε, target fraction, projection all apply
// unchanged).
type Options struct {
	// GD configures the inner solver. Its Iterations field is the reference
	// budget direct GD would use; the V-cycle derives its per-level budgets
	// from it.
	GD core.Options
	// CoarsenTo stops coarsening once a level has at most this many vertices
	// (default 8000). Graphs already at or below it run plain GD — the
	// V-cycle only pays off once the finest level dwarfs the coarsest.
	CoarsenTo int
	// MaxLevels bounds the hierarchy depth (default 32).
	MaxLevels int
	// ClusterSize caps coarsening clusters at this multiple of the finest
	// level's average vertex weight per dimension (default 32; see
	// coarsen.ClusterCaps).
	ClusterSize int
	// CoarsestIterations is the GD budget of the coarsest-level solve
	// (default 2/5 of GD.Iterations — the coarse level starts from cluster
	// structure, not from scratch, and needs correspondingly fewer steps).
	CoarsestIterations int
	// RefineIterations is the GD refinement budget at the FINEST level
	// (default 16). Each coarser intermediate level uses half the previous,
	// floored at 4: the finest level is where refinement buys locality, the
	// intermediate levels only smooth the prolongation.
	RefineIterations int
	// Prep, when non-nil and built for exactly the graph being solved (see
	// Prep.Matches), injects a prebuilt coarsening hierarchy: Bisect skips
	// its coarsening pass and solves over the cached levels, byte-identically
	// to a rebuild. For any other graph the field is ignored and the solve
	// rebuilds — PartitionK's child subgraphs are fresh allocations, so the
	// injection is automatically root-only and a stale prep degrades to a
	// rebuild, never to a wrong answer. Invisible to fingerprints.
	Prep *Prep
}

// Prep is a prebuilt coarsening hierarchy for one specific graph — the
// assignment-independent half of a V-cycle solve, cacheable across repeat
// solves of the same graph. It is immutable and safe to share across
// concurrent solves, but only valid for the exact vertex weights and options
// it was built with: prep caches must key artifacts by graph content hash
// plus every hierarchy-shaping parameter (seed, CoarsenTo, MaxLevels,
// ClusterSize, weight spec).
type Prep struct {
	graph  *graph.Graph
	levels []*coarsen.Graph
	cmaps  [][]int32
	// Hierarchy-shaping parameters recorded at build time; usable rejects an
	// injection whose solve disagrees on any of them, so a mis-keyed cache
	// degrades to a rebuild instead of a divergent solve.
	gdSeed                         int64
	coarsenTo, maxLevels, clusters int
}

// BuildPrep runs the coarsening pass of Bisect(g, ws, opt) and captures the
// hierarchy. Construction consumes its own RNG stream derived from GD.Seed —
// the same stream Bisect's inline pass uses — so a solve with the prep
// injected is byte-identical to one that rebuilds it.
func BuildPrep(g *graph.Graph, ws [][]float64, opt Options) *Prep {
	opt.normalize()
	wg0 := coarsen.Wrap(g, ws)
	pool := vecmath.NewPool(opt.GD.Workers)
	rng := rand.New(rand.NewSource(opt.GD.Seed*1000003 + 77))
	levels, cmaps := coarsen.Hierarchy(wg0, hierarchyOptions(opt), rng, pool)
	return &Prep{
		graph: g, levels: levels, cmaps: cmaps,
		gdSeed: opt.GD.Seed, coarsenTo: opt.CoarsenTo,
		maxLevels: opt.MaxLevels, clusters: opt.ClusterSize,
	}
}

// Matches reports whether the prep was built for exactly this graph value
// (pointer identity — content identity is the cache key's responsibility).
func (p *Prep) Matches(g *graph.Graph) bool { return p != nil && p.graph == g }

// usable additionally verifies the normalized solve options agree with the
// hierarchy-shaping parameters the prep was built under.
func (p *Prep) usable(g *graph.Graph, opt *Options) bool {
	return p.Matches(g) && p.gdSeed == opt.GD.Seed && p.coarsenTo == opt.CoarsenTo &&
		p.maxLevels == opt.MaxLevels && p.clusters == opt.ClusterSize
}

// Bytes estimates the heap footprint for cache byte accounting. Conservative:
// the finest level aliases the base graph's CSR and weights (coarsen.Wrap is
// zero-copy) and those shared bytes are charged anyway.
func (p *Prep) Bytes() int64 {
	var b int64
	for _, lv := range p.levels {
		b += lv.Bytes()
	}
	for _, cm := range p.cmaps {
		b += int64(len(cm)) * 4
	}
	return b
}

// hierarchyOptions is the single source of truth for how the V-cycle
// coarsens, shared by Bisect's inline pass and BuildPrep so cached and
// rebuilt hierarchies can never diverge.
func hierarchyOptions(opt Options) coarsen.HierarchyOptions {
	return coarsen.HierarchyOptions{
		CoarsenTo: opt.CoarsenTo,
		MaxLevels: opt.MaxLevels,
		Clusters:  true,
		Cluster:   coarsen.ClusterOptions{MaxClusterVertices: opt.ClusterSize},
		// Stop descending as soon as a level stops shedding arcs: on graphs
		// without local clustering the hierarchy would otherwise grind all
		// the way to CoarsenTo only for the edge-absorption check to throw
		// it away.
		EdgeStallRatio: 0.9,
	}
}

func (o *Options) normalize() {
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 8000
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 32
	}
	if o.ClusterSize <= 0 {
		o.ClusterSize = 32
	}
	if o.GD.Iterations <= 0 {
		o.GD.Iterations = 100
	}
	if o.GD.StepLength <= 0 {
		o.GD.StepLength = 2
	}
	if o.CoarsestIterations <= 0 {
		o.CoarsestIterations = (2*o.GD.Iterations + 4) / 5
	}
	if o.RefineIterations <= 0 {
		o.RefineIterations = 16
	}
}

// warmDamp scales a prolongated solution before it seeds the next
// refinement: coarse solutions are near-integral (vertex fixing drives
// coordinates to ±1), and an undamped ±1 coordinate would re-fix on the
// first refinement iteration, freezing the coarse decision before the finer
// level ever votes. 0.98 keeps every coordinate below the 0.99 fix
// threshold — one aligned gradient step re-saturates it, a disagreeing one
// pulls it free.
const warmDamp = 0.98

// minEdgeAbsorption is the fallback threshold: if the coarsest level still
// carries more than this fraction of the finest level's edge weight, the
// graph did not really coarsen and the V-cycle yields to direct GD.
const minEdgeAbsorption = 0.5

// Prolongate lifts a coarse fractional solution to the parent level:
// fine[v] = coarse[cmap[v]]. Because a coarse vertex's weight is exactly the
// sum of its members' weights, Σ_v w(j)_v·fine_v = Σ_c w(j)_c·coarse_c per
// dimension, so any balance slab the coarse solution satisfies, the
// prolongated one satisfies too.
func Prolongate(coarseX []float64, cmap []int32) []float64 {
	fine := make([]float64, len(cmap))
	for v, c := range cmap {
		fine[v] = coarseX[c]
	}
	return fine
}

// Bisect computes a 2-way multilevel GD partition of g. The result has the
// same shape and guarantees as core.Bisect; small graphs (n ≤ CoarsenTo, or
// a stalled clustering) fall back to plain GD transparently.
func Bisect(g *graph.Graph, ws [][]float64, opt Options) (*core.Result, error) {
	opt.normalize()
	wg0 := coarsen.Wrap(g, ws)
	// A caller-supplied warm start (incremental repartitioning: the k-way
	// recursion dampens a prior assignment into GD.WarmStart) means we are
	// refining a known-good solution — the hierarchy would only spend a
	// coarsening pass rediscovering structure the warm start already
	// encodes. Refine directly at the finest level; rounding and balance
	// repair run as usual, so the guarantees are those of a cold solve.
	if opt.GD.WarmStart != nil {
		return core.BisectWeighted(wg0, opt.GD)
	}
	coarsenSpan := opt.GD.Span.Start("coarsen")
	var levels []*coarsen.Graph
	var cmaps [][]int32
	cached := opt.Prep.usable(g, &opt)
	if cached {
		levels, cmaps = opt.Prep.levels, opt.Prep.cmaps
	} else {
		// The coarsening stream is independent of the GD streams so hierarchy
		// shape never shifts the solver's randomness — which is also what
		// makes an injected hierarchy byte-identical to this rebuild.
		rng := rand.New(rand.NewSource(opt.GD.Seed*1000003 + 77))
		levels, cmaps = coarsen.Hierarchy(wg0, hierarchyOptions(opt), rng,
			vecmath.NewPool(opt.GD.Workers))
	}
	if coarsenSpan != nil {
		coarsenSpan.SetAttr("levels", len(levels))
		coarsenSpan.SetAttr("coarse_n", levels[len(levels)-1].N())
		coarsenSpan.SetAttr("cached", cached)
		coarsenSpan.End()
	}

	// Coarsening only helps when contraction absorbs edge weight (clusters
	// internalize their edges, which both shrinks the levels and hands the
	// coarse solver a solvable instance). On graphs without local
	// clustering the hierarchy stays dense and the coarse solution caps the
	// achievable locality — detect that and fall back to direct GD, which
	// keeps Multilevel safe to enable on arbitrary inputs.
	if len(levels) == 1 ||
		levels[len(levels)-1].TotalEdgeWeight() > minEdgeAbsorption*wg0.TotalEdgeWeight() {
		return core.BisectWeighted(wg0, opt.GD)
	}

	// Coarsest-level solve; keep the solution fractional.
	copt := opt.GD
	copt.Iterations = opt.CoarsestIterations
	copt.Seed = levelSeed(opt.GD.Seed, len(levels)-1)
	copt.Span = levelSpan(opt.GD.Span, "coarse-solve", len(levels)-1, levels[len(levels)-1].N())
	x, _, err := core.OptimizeWeighted(levels[len(levels)-1], copt)
	copt.Span.End()
	if err != nil {
		return nil, err
	}

	// Uncoarsen: warm-started refinement on every intermediate level.
	for li := len(levels) - 2; li >= 1; li-- {
		ropt := refineOptions(opt, li)
		ropt.WarmStart = dampInPlace(Prolongate(x, cmaps[li]))
		ropt.Span = levelSpan(opt.GD.Span, "refine", li, levels[li].N())
		x, _, err = core.OptimizeWeighted(levels[li], ropt)
		ropt.Span.End()
		if err != nil {
			return nil, err
		}
	}

	// Finest level: refinement plus the usual rounding and balance repair.
	ropt := refineOptions(opt, 0)
	ropt.WarmStart = dampInPlace(Prolongate(x, cmaps[0]))
	ropt.Span = levelSpan(opt.GD.Span, "refine", 0, wg0.N())
	res, err := core.BisectWeighted(wg0, ropt)
	ropt.Span.End()
	return res, err
}

// levelSpan opens the span of one hierarchy level's solve (nil-safe).
func levelSpan(parent *obs.Span, name string, level, n int) *obs.Span {
	sp := parent.Start(name)
	if sp != nil {
		sp.SetAttr("level", level)
		sp.SetAttr("n", n)
	}
	return sp
}

// refineOptions derives the GD options for refinement at level li (level 0
// finest). The iteration budget
// halves per level going coarser (floored at 4), and StepLength is rescaled
// so each refinement iteration moves like a late-stage iteration of the
// full run: the adaptive step targets StepLength·√n/Iterations per
// iteration, and refinement must not take full-run-sized leaps away from
// its warm start. Refinement also projects onto the slab itself rather than
// its center (Projection.Center off): the warm start is already feasible,
// and re-centering every iteration would drag saturated coordinates back
// off ±1, undoing the coarse solution instead of polishing it.
func refineOptions(opt Options, li int) core.Options {
	budget := opt.RefineIterations
	for l := 0; l < li && budget > 4; l++ {
		budget /= 2
		if budget < 4 {
			budget = 4
		}
	}
	ropt := opt.GD
	ropt.Iterations = budget
	ropt.StepLength = opt.GD.StepLength * float64(budget) / float64(opt.GD.Iterations)
	ropt.Projection.Center = false
	ropt.Seed = levelSeed(opt.GD.Seed, li)
	return ropt
}

// levelSeed derives a per-level GD seed the way the recursive k-way split
// derives per-branch seeds.
func levelSeed(seed int64, li int) int64 {
	return seed*1000003 + 101 + int64(li)
}

func dampInPlace(x []float64) []float64 {
	for i := range x {
		x[i] *= warmDamp
	}
	return x
}

// PartitionK computes a k-way partition by recursive multilevel bisection:
// the flat engine's ε budgeting, per-branch seed derivation and concurrent
// sibling recursion, with each 2-way split replaced by a V-cycle.
func PartitionK(g *graph.Graph, ws [][]float64, k int, opt Options) (*partition.Assignment, error) {
	opt.normalize()
	return core.PartitionKWith(g, ws, k, opt.GD,
		func(sub *graph.Graph, subWs [][]float64, gdOpt core.Options) (*core.Result, error) {
			o := opt
			o.GD = gdOpt
			return Bisect(sub, subWs, o)
		})
}
