package multilevel

import (
	"math"
	"math/rand"
	"testing"

	"mdbgp/internal/coarsen"
	"mdbgp/internal/core"
	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

// clusteredGraph builds the multilevel-friendly fixture: many small
// high-locality communities, the structure cluster coarsening absorbs.
// Sizes must exceed vecmath's 4096-element chunk size so the worker
// determinism tests exercise the genuinely parallel paths.
func clusteredGraph(t *testing.T, n int, seed int64) (*graph.Graph, [][]float64) {
	t.Helper()
	g, _ := gen.SBM(gen.SBMConfig{
		N: n, Communities: n / 25, AvgDegree: 14, InFraction: 0.8, Seed: seed,
	})
	ws, err := weights.Standard(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, ws
}

func testOptions(workers int) Options {
	gd := core.DefaultOptions()
	gd.Seed = 71
	gd.Workers = workers
	return Options{GD: gd, CoarsenTo: 1500}
}

func TestBisectQualityAndBalance(t *testing.T) {
	g, ws := clusteredGraph(t, 20000, 5)
	res, err := Bisect(g, ws, testOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if !partition.IsBalanced(res.Assignment, ws, 0.05+1e-9) {
		t.Fatalf("not ε-balanced: %.4f", partition.MaxImbalance(res.Assignment, ws))
	}
	loc := partition.EdgeLocality(g, res.Assignment)
	// Direct GD reaches ~0.87 on this family; the V-cycle must stay close.
	direct, err := core.Bisect(g, ws, testOptions(0).GD)
	if err != nil {
		t.Fatal(err)
	}
	directLoc := partition.EdgeLocality(g, direct.Assignment)
	if loc < directLoc-0.02 {
		t.Fatalf("multilevel locality %.4f, want within 2%% of direct %.4f", loc, directLoc)
	}
}

func TestBisectDeterministicAcrossWorkers(t *testing.T) {
	g, ws := clusteredGraph(t, 20000, 6)
	ref, err := Bisect(g, ws, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		res, err := Bisect(g, ws, testOptions(w))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.X {
			if res.X[i] != ref.X[i] {
				t.Fatalf("workers=%d: X[%d] = %v, want %v (not bit-identical)", w, i, res.X[i], ref.X[i])
			}
		}
		for v := range ref.Assignment.Parts {
			if res.Assignment.Parts[v] != ref.Assignment.Parts[v] {
				t.Fatalf("workers=%d: vertex %d differs", w, v)
			}
		}
	}
}

func TestPartitionKDeterministicAcrossWorkers(t *testing.T) {
	g, ws := clusteredGraph(t, 16000, 7)
	opt := testOptions(1)
	ref, err := PartitionK(g, ws, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		o := testOptions(w)
		asgn, err := PartitionK(g, ws, 4, o)
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.Parts {
			if asgn.Parts[v] != ref.Parts[v] {
				t.Fatalf("workers=%d: vertex %d in part %d, want %d", w, v, asgn.Parts[v], ref.Parts[v])
			}
		}
	}
}

// TestHierarchyInvariants re-checks the coarsening invariants on the exact
// hierarchy the V-cycle builds: per-dimension vertex weight totals and
// cut-conserved edge weight at every level.
func TestHierarchyInvariants(t *testing.T) {
	g, ws := clusteredGraph(t, 12000, 8)
	opt := testOptions(0)
	opt.normalize()
	rng := rand.New(rand.NewSource(opt.GD.Seed*1000003 + 77))
	levels, cmaps := coarsen.Hierarchy(coarsen.Wrap(g, ws), coarsen.HierarchyOptions{
		CoarsenTo: opt.CoarsenTo,
		MaxLevels: opt.MaxLevels,
		Clusters:  true,
		Cluster:   coarsen.ClusterOptions{MaxClusterVertices: opt.ClusterSize},
	}, rng, nil)
	if len(levels) < 2 {
		t.Fatalf("expected a real hierarchy, got %d levels", len(levels))
	}
	for li := 0; li+1 < len(levels); li++ {
		fine, coarse, cmap := levels[li], levels[li+1], cmaps[li]
		ft, ct := fine.Totals(), coarse.Totals()
		for j := range ft {
			if math.Abs(ft[j]-ct[j]) > 1e-9*math.Max(1, ft[j]) {
				t.Fatalf("level %d dim %d: vertex weight %g -> %g", li, j, ft[j], ct[j])
			}
		}
		crossing := 0.0
		for v := 0; v < fine.N(); v++ {
			ns, ews := fine.Neighbors(v)
			for i, u := range ns {
				if int(u) > v && cmap[u] != cmap[v] {
					if ews == nil {
						crossing++
					} else {
						crossing += ews[i]
					}
				}
			}
		}
		if got := coarse.TotalEdgeWeight(); math.Abs(got-crossing) > 1e-6*math.Max(1, crossing) {
			t.Fatalf("level %d: edge weight %g, want crossing weight %g", li, got, crossing)
		}
	}
}

// TestProlongationPreservesBalance checks the warm-start contract: the
// prolongated fractional solution satisfies exactly the balance sums its
// coarse parent satisfied, at every level of the V-cycle.
func TestProlongationPreservesBalance(t *testing.T) {
	g, ws := clusteredGraph(t, 12000, 9)
	opt := testOptions(0)
	opt.normalize()
	rng := rand.New(rand.NewSource(opt.GD.Seed*1000003 + 77))
	levels, cmaps := coarsen.Hierarchy(coarsen.Wrap(g, ws), coarsen.HierarchyOptions{
		CoarsenTo: opt.CoarsenTo,
		MaxLevels: opt.MaxLevels,
		Clusters:  true,
		Cluster:   coarsen.ClusterOptions{MaxClusterVertices: opt.ClusterSize},
	}, rng, nil)
	if len(levels) < 2 {
		t.Fatalf("expected a real hierarchy, got %d levels", len(levels))
	}
	coarsest := levels[len(levels)-1]
	copt := opt.GD
	copt.Iterations = 40
	x, _, err := core.OptimizeWeighted(coarsest, copt)
	if err != nil {
		t.Fatal(err)
	}
	for li := len(levels) - 2; li >= 0; li-- {
		coarse, fine := levels[li+1], levels[li]
		fx := Prolongate(x, cmaps[li])
		for j := range coarse.VW {
			cs, fs := 0.0, 0.0
			for c, xc := range x {
				cs += coarse.VW[j][c] * xc
			}
			for v, xv := range fx {
				fs += fine.VW[j][v] * xv
			}
			if math.Abs(cs-fs) > 1e-6*math.Max(1, math.Abs(cs)) {
				t.Fatalf("level %d dim %d: balance sum %g -> %g after prolongation", li, j, cs, fs)
			}
		}
		x = fx
	}
	// The fully prolongated solution still fits the ε slab the coarsest
	// solve targeted (|Σ w x| ≤ ε·W for the symmetric split).
	totals := make([]float64, len(ws))
	for j, w := range ws {
		for _, v := range w {
			totals[j] += v
		}
	}
	for j, w := range ws {
		s := 0.0
		for i, wi := range w {
			s += wi * x[i]
		}
		if math.Abs(s) > 0.05*totals[j]+1e-6 {
			t.Fatalf("dim %d: prolongated solution violates the ε slab: |%g| > %g", j, s, 0.05*totals[j])
		}
	}
}

// TestFallbackOnUncoarsenableGraph: a triangle-free random graph absorbs
// almost no edge weight under contraction; the V-cycle must detect it and
// return exactly what direct GD returns.
func TestFallbackOnUncoarsenableGraph(t *testing.T) {
	g := gen.ErdosRenyi(9000, 50000, 10)
	ws, err := weights.Standard(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(0)
	ml, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Bisect(g, ws, opt.GD)
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Assignment.Parts {
		if ml.Assignment.Parts[v] != direct.Assignment.Parts[v] {
			t.Fatalf("fallback is not bit-identical to direct GD at vertex %d", v)
		}
	}
}

// TestSmallGraphFallsBack: below CoarsenTo the V-cycle is plain GD.
func TestSmallGraphFallsBack(t *testing.T) {
	g, ws := clusteredGraph(t, 1200, 11)
	opt := testOptions(0)
	opt.CoarsenTo = 8000
	ml, err := Bisect(g, ws, opt)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Bisect(g, ws, opt.GD)
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Assignment.Parts {
		if ml.Assignment.Parts[v] != direct.Assignment.Parts[v] {
			t.Fatal("small-graph fallback differs from direct GD")
		}
	}
}

func TestPartitionKBalanced(t *testing.T) {
	g, ws := clusteredGraph(t, 16000, 12)
	asgn, err := PartitionK(g, ws, 6, testOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := asgn.Validate(); err != nil {
		t.Fatal(err)
	}
	if im := partition.MaxImbalance(asgn, ws); im > 0.06 {
		t.Fatalf("k=6 imbalance %.4f", im)
	}
	if loc := partition.EdgeLocality(g, asgn); loc < 0.5 {
		t.Fatalf("k=6 locality %.4f", loc)
	}
}
