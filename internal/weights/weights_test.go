package weights

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestUnit(t *testing.T) {
	g := lineGraph(5)
	w := Unit(g)
	for _, x := range w {
		if x != 1 {
			t.Fatalf("unit weight %g", x)
		}
	}
	if Total(w) != 5 {
		t.Fatalf("total=%g", Total(w))
	}
}

func TestDegree(t *testing.T) {
	g := lineGraph(4) // degrees 1,2,2,1
	w := Degree(g)
	want := []float64{1, 2, 2, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("degree weights %v", w)
		}
	}
	// Sum of degrees is 2m.
	if Total(w) != float64(2*g.M()) {
		t.Fatalf("degree total %g != 2m", Total(w))
	}
}

func TestDegreeIsolatedFloor(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	w := Degree(g)
	for _, x := range w {
		if x <= 0 {
			t.Fatal("degree weight not floored for isolated vertex")
		}
	}
	if err := Validate(g, w); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	g := gen.Grid(10, 10, true) // 4-regular torus: PageRank is uniform
	pr := PageRank(g, 0.85, 50)
	for v, x := range pr {
		if math.Abs(x-1) > 1e-6 {
			t.Fatalf("torus PageRank[%d]=%g, want 1", v, x)
		}
	}
}

func TestPageRankMassConservation(t *testing.T) {
	g, _ := gen.SBM(gen.SBMConfig{N: 500, Communities: 3, AvgDegree: 8, InFraction: 0.8, DegreeExponent: 2, Seed: 5})
	pr := PageRank(g, 0.85, 30)
	// Scaled to mean 1 → total ≈ n.
	if math.Abs(Total(pr)-float64(g.N())) > 1e-3*float64(g.N()) {
		t.Fatalf("PageRank total %g, want ~%d", Total(pr), g.N())
	}
}

func TestPageRankHubDominates(t *testing.T) {
	g := gen.Star(50)
	pr := PageRank(g, 0.85, 40)
	for v := 1; v < 50; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %g not above leaf %g", pr[0], pr[v])
		}
	}
}

func TestPageRankDefaultsAndEmpty(t *testing.T) {
	if PageRank(graph.NewBuilder(0).Build(), 0.85, 10) != nil {
		t.Fatal("empty graph should give nil")
	}
	g := lineGraph(3)
	a := PageRank(g, -1, 0) // defaults kick in
	if len(a) != 3 {
		t.Fatal("defaults failed")
	}
}

func TestNeighborDegreeSum(t *testing.T) {
	g := lineGraph(4) // degrees 1,2,2,1
	w := NeighborDegreeSum(g)
	want := []float64{2, 3, 3, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("nds weights %v, want %v", w, want)
		}
	}
}

func TestNeighborDegreeSumBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(30)
	for i := 0; i < 90; i++ {
		b.AddEdge(rng.Intn(30), rng.Intn(30))
	}
	g := b.Build()
	w := NeighborDegreeSum(g)
	for v := 0; v < g.N(); v++ {
		s := 0.0
		for _, u := range g.Neighbors(v) {
			s += float64(g.Degree(int(u)))
		}
		if s == 0 {
			s = 1e-3
		}
		if w[v] != s {
			t.Fatalf("nds[%d]=%g, want %g", v, w[v], s)
		}
	}
}

func TestStandard(t *testing.T) {
	g := lineGraph(6)
	for d := 1; d <= 4; d++ {
		ws, err := Standard(g, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != d {
			t.Fatalf("Standard(%d) returned %d dims", d, len(ws))
		}
		for j, w := range ws {
			if err := Validate(g, w); err != nil {
				t.Fatalf("dim %d: %v", j, err)
			}
		}
	}
	if _, err := Standard(g, 0); err == nil {
		t.Fatal("d=0 should error")
	}
	if _, err := Standard(g, 5); err == nil {
		t.Fatal("d=5 should error")
	}
}

func TestValidateErrors(t *testing.T) {
	g := lineGraph(3)
	if err := Validate(g, []float64{1, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := Validate(g, []float64{1, 0, 1}); err == nil {
		t.Fatal("zero weight should error")
	}
}

// Property: all standard weight functions are strictly positive on random
// graphs (including ones with isolated vertices).
func TestQuickStandardPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 5
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ { // sparse: isolated vertices likely
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		ws, err := Standard(g, 4)
		if err != nil {
			return false
		}
		for _, w := range ws {
			if Validate(g, w) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
