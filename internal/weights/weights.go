// Package weights provides the vertex weight functions used as balance
// dimensions in the paper: unit (vertex count), degree (edge count),
// PageRank (activity proxy) and sum-of-neighbor-degrees (2-hop size proxy).
// See §4.1 and Appendix C.1 of the paper.
package weights

import (
	"fmt"

	"mdbgp/internal/graph"
)

// Unit returns the all-ones weight function: balancing on it equalizes
// vertex counts (the classic vertex partitioning model).
func Unit(g *graph.Graph) []float64 {
	w := make([]float64, g.N())
	for i := range w {
		w[i] = 1
	}
	return w
}

// Degree returns w(v) = deg(v): balancing on it equalizes per-part edge
// counts (the edge partitioning model), since Σ_v deg(v) = 2|E|.
// Isolated vertices receive a small positive floor so the weight function
// stays strictly positive, as the problem definition requires (w: V → R+).
func Degree(g *graph.Graph) []float64 {
	w := make([]float64, g.N())
	for v := range w {
		d := float64(g.Degree(v))
		if d == 0 {
			d = 1e-3
		}
		w[v] = d
	}
	return w
}

// PageRank runs `iters` power-iteration steps with the given damping factor
// and returns scores scaled so they average 1 (making imbalance percentages
// comparable across dimensions). Dangling mass is redistributed uniformly.
func PageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iters <= 0 {
		iters = 20
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if g.Degree(v) == 0 {
				dangling += pr[v]
			}
			next[v] = 0
		}
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			share := pr[v] / float64(d)
			for _, u := range g.Neighbors(v) {
				next[u] += share
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + damping*next[v]
		}
		pr, next = next, pr
	}
	// Scale to mean 1 and floor at a small positive value.
	for v := range pr {
		pr[v] *= float64(n)
		if pr[v] < 1e-6 {
			pr[v] = 1e-6
		}
	}
	return pr
}

// NeighborDegreeSum returns w(v) = Σ_{u ∈ N(v)} deg(u), the paper's proxy
// for the size of the 2-hop neighborhood (Appendix C.1). Values are floored
// at a small positive constant.
func NeighborDegreeSum(g *graph.Graph) []float64 {
	w := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		s := 0.0
		for _, u := range g.Neighbors(v) {
			s += float64(g.Degree(int(u)))
		}
		if s == 0 {
			s = 1e-3
		}
		w[v] = s
	}
	return w
}

// Standard produces the first d standard balance dimensions used throughout
// the paper's experiments, in order: vertices, degrees, neighbor-degree
// sums, PageRank. d must be between 1 and 4.
func Standard(g *graph.Graph, d int) ([][]float64, error) {
	if d < 1 || d > 4 {
		return nil, fmt.Errorf("weights: standard dimensions d=%d, want 1..4", d)
	}
	out := make([][]float64, 0, d)
	out = append(out, Unit(g))
	if d >= 2 {
		out = append(out, Degree(g))
	}
	if d >= 3 {
		out = append(out, NeighborDegreeSum(g))
	}
	if d >= 4 {
		out = append(out, PageRank(g, 0.85, 20))
	}
	return out, nil
}

// Total returns the sum of a weight function over all vertices.
func Total(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

// Validate checks that a weight vector matches the graph and is strictly
// positive, as required by the MDBGP definition.
func Validate(g *graph.Graph, w []float64) error {
	if len(w) != g.N() {
		return fmt.Errorf("weights: length %d, graph has %d vertices", len(w), g.N())
	}
	for v, x := range w {
		if x <= 0 {
			return fmt.Errorf("weights: w[%d] = %g, want > 0", v, x)
		}
	}
	return nil
}
