package experiments

import (
	"fmt"

	"mdbgp/internal/giraph"
	"mdbgp/internal/partition"
)

func init() {
	register(Experiment{
		Name:  "fig1",
		Paper: "Figure 1",
		Desc:  "Per-worker PageRank iteration time on a 16-worker cluster (fb80 analog) under hash / vertex / edge / vertex-edge partitioning, with the average % of local edges per worker.",
		Run:   runFig1,
	})
	register(Experiment{
		Name:  "fig7",
		Paper: "Figure 7",
		Desc:  "Speedup over Hash of PageRank, Connected Components, Mutual Friends and Hypergraph Clustering under 1-D and 2-D GD partitionings; small = fb80@16 workers, large = fb400@128 workers.",
		Run:   runFig7,
	})
	register(Experiment{
		Name:  "table2",
		Paper: "Table 2",
		Desc:  "Per-superstep runtime and communication statistics of PageRank on fb400@128 workers per partitioning policy.",
		Run:   runTable2,
	})
}

// policies are the partitioning strategies compared in Figures 1, 7 and
// Table 2, in paper order.
var policies = []string{"hash", ModeVertex, ModeEdge, ModeVertexEdge}

func (c *Context) policyPartition(name, policy string, k int) (*partition.Assignment, error) {
	if policy == "hash" {
		return c.HashPartition(name, k)
	}
	return c.GDPartition(name, policy, k)
}

func runFig1(ctx *Context) ([]*Table, error) {
	const name = "fb80-sim"
	const workers = 16
	g, err := ctx.Graph(name)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  "Figure 1: PageRank iteration time per worker, 16 workers, fb80 analog",
		Note:   "paper: hash 6.25% local; vertex partitioning has the slowest straggler (1.5×); vertex-edge trades locality for balance and wins ≈25% over hash",
		Header: []string{"policy", "local edges %", "busy min s", "busy mean s", "busy max s", "busy stdev s", "iter wall s"},
	}
	for _, policy := range policies {
		a, err := ctx.policyPartition(name, policy, workers)
		if err != nil {
			return nil, err
		}
		cluster, err := giraph.NewCluster(g, a, giraph.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		_, stats := giraph.PageRank(cluster, 30, 0.85)
		mean, max, stdev := stats.WorkerBusyStats()
		min := minBusy(stats)
		shares := partition.LocalEdgeShares(g, a)
		avgShare := 0.0
		for _, s := range shares {
			avgShare += s
		}
		avgShare /= float64(len(shares))
		tab.Rows = append(tab.Rows, []string{
			policy, pct2(avgShare),
			fmt.Sprintf("%.1f", min), fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.1f", max), fmt.Sprintf("%.1f", stdev),
			fmt.Sprintf("%.1f", stats.TotalWall()/float64(len(stats.Steps))),
		})
	}
	return []*Table{tab}, nil
}

func minBusy(stats *giraph.RunStats) float64 {
	if len(stats.Steps) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range stats.Steps {
		m := s.Busy[0]
		for _, b := range s.Busy {
			if b < m {
				m = b
			}
		}
		total += m
	}
	return total / float64(len(stats.Steps))
}

// fig7Config pairs a dataset with its cluster size.
type fig7Config struct {
	label   string
	dataset string
	workers int
}

func runFig7(ctx *Context) ([]*Table, error) {
	configs := []fig7Config{
		{"small", "fb80-sim", 16},
		{"large", "fb400-sim", 128},
	}
	apps := []struct {
		name string
		run  func(*giraph.Cluster) *giraph.RunStats
	}{
		{"PR", func(c *giraph.Cluster) *giraph.RunStats { _, s := giraph.PageRank(c, 30, 0.85); return s }},
		{"CC", func(c *giraph.Cluster) *giraph.RunStats { _, s := giraph.ConnectedComponents(c, 50); return s }},
		{"MF", func(c *giraph.Cluster) *giraph.RunStats { _, s := giraph.MutualFriends(c, 0); return s }},
		{"HC", func(c *giraph.Cluster) *giraph.RunStats { _, s := giraph.HypergraphClustering(c, 10); return s }},
	}
	tab := &Table{
		Title:  "Figure 7: Giraph job speedup over Hash (%, positive = faster)",
		Note:   "paper: 1-D partitionings regress on the large config (down to −53.7% for vertex on CC-large); vertex+edge improves everywhere by 4.6–29.3%",
		Header: []string{"app-config", "vertex %", "edge %", "vertex+edge %"},
	}
	for _, cfg := range configs {
		g, err := ctx.Graph(cfg.dataset)
		if err != nil {
			return nil, err
		}
		// Hash baseline walls per app.
		hashAsgn, err := ctx.HashPartition(cfg.dataset, cfg.workers)
		if err != nil {
			return nil, err
		}
		hashCluster, err := giraph.NewCluster(g, hashAsgn, giraph.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		hashWall := make([]float64, len(apps))
		for ai, app := range apps {
			hashWall[ai] = app.run(hashCluster).TotalWall()
			ctx.Logf("fig7 %s %s hash wall=%.0f", cfg.label, app.name, hashWall[ai])
		}
		rows := make([][]string, len(apps))
		for ai, app := range apps {
			rows[ai] = []string{fmt.Sprintf("%s-%s", app.name, cfg.label)}
			_ = app
		}
		for _, policy := range []string{ModeVertex, ModeEdge, ModeVertexEdge} {
			a, err := ctx.GDPartition(cfg.dataset, policy, cfg.workers)
			if err != nil {
				return nil, err
			}
			cluster, err := giraph.NewCluster(g, a, giraph.DefaultCostModel())
			if err != nil {
				return nil, err
			}
			for ai, app := range apps {
				wall := app.run(cluster).TotalWall()
				speedup := 100 * (hashWall[ai] - wall) / hashWall[ai]
				rows[ai] = append(rows[ai], fmt.Sprintf("%+.1f", speedup))
				ctx.Logf("fig7 %s %s %s wall=%.0f speedup=%+.1f%%", cfg.label, app.name, policy, wall, speedup)
			}
		}
		tab.Rows = append(tab.Rows, rows...)
	}
	return []*Table{tab}, nil
}

func runTable2(ctx *Context) ([]*Table, error) {
	const name = "fb400-sim"
	const workers = 128
	g, err := ctx.Graph(name)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  "Table 2: PageRank on fb400 analog across 128 workers (per-superstep statistics)",
		Note:   "paper: hash 95/102/27 s and 69.5/69.6/2.4 GB; vertex has the worst max (143 s); vertex-edge the best max (88 s) and tightest stdev",
		Header: []string{"policy", "runtime mean s", "runtime max s", "runtime stdev s", "comm mean GB", "comm max GB", "comm stdev GB"},
	}
	for _, policy := range policies {
		a, err := ctx.policyPartition(name, policy, workers)
		if err != nil {
			return nil, err
		}
		cluster, err := giraph.NewCluster(g, a, giraph.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		_, stats := giraph.PageRank(cluster, 30, 0.85)
		rm, rx, rs := stats.WorkerBusyStats()
		cm, cx, cs := stats.CommGBStats()
		tab.Rows = append(tab.Rows, []string{
			policy,
			fmt.Sprintf("%.1f", rm), fmt.Sprintf("%.1f", rx), fmt.Sprintf("%.1f", rs),
			fmt.Sprintf("%.1f", cm), fmt.Sprintf("%.1f", cx), fmt.Sprintf("%.1f", cs),
		})
	}
	return []*Table{tab}, nil
}
