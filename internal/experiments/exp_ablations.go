package experiments

import (
	"fmt"

	"mdbgp/internal/core"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
)

func init() {
	register(Experiment{
		Name:  "ablations",
		Paper: "Design ablations (beyond paper)",
		Desc: "Component ablations of GD on the LiveJournal analog: balance repair off, initial noise off, " +
			"nearest-face instead of centered alternating projection, Dykstra projection, and the direct " +
			"(non-recursive) k-way relaxation vs recursive bisection at k = 8.",
		Run: runAblations,
	})
}

func runAblations(ctx *Context) ([]*Table, error) {
	const ds = "lj-sim"
	g, err := ctx.Graph(ds)
	if err != nil {
		return nil, err
	}
	ws, err := ctx.Weights(ds, 2)
	if err != nil {
		return nil, err
	}

	bisectTab := &Table{
		Title:  "Ablations (2-way GD on " + ds + ")",
		Note:   "each row disables/replaces one component of the default configuration",
		Header: []string{"variant", "locality %", "max imbalance %", "repair moves"},
	}
	variants := []struct {
		label  string
		mutate func(*core.Options)
	}{
		{"default", func(o *core.Options) {}},
		{"no balance repair", func(o *core.Options) { o.RepairBalance = false }},
		{"no initial noise", func(o *core.Options) { o.NoiseScale = 1e-12 }},
		{"nearest-face alternating", func(o *core.Options) {
			o.Projection = project.Options{Method: project.AlternatingOneShot, Center: false}
		}},
		{"dykstra projection", func(o *core.Options) {
			o.Projection = project.Options{Method: project.DykstraMethod, MaxIter: 30}
		}},
		{"no vertex fixing", func(o *core.Options) { o.VertexFixing = false }},
	}
	for _, v := range variants {
		opt := ctx.GDOptions()
		v.mutate(&opt)
		res, err := core.Bisect(g, ws, opt)
		if err != nil {
			return nil, err
		}
		bisectTab.Rows = append(bisectTab.Rows, []string{
			v.label,
			pct(partition.EdgeLocality(g, res.Assignment)),
			pct2(partition.MaxImbalance(res.Assignment, ws)),
			fmt.Sprint(res.RepairMoves),
		})
		ctx.Logf("ablation %s done", v.label)
	}

	kwayTab := &Table{
		Title:  "Ablations: recursive bisection vs direct k-way relaxation (k = 8, " + ds + ")",
		Note:   "the direct O(k·|E|)-per-iteration relaxation of §3.3 vs the production recursive scheme",
		Header: []string{"method", "locality %", "max imbalance %"},
	}
	recOpt := ctx.GDOptions()
	rec, err := core.PartitionK(g, ws, 8, recOpt)
	if err != nil {
		return nil, err
	}
	dirOpt := core.DefaultDirectKOptions()
	dirOpt.Seed = ctx.Seed
	dirOpt.Workers = ctx.Parallelism
	direct, err := core.DirectKWay(g, ws, 8, dirOpt)
	if err != nil {
		return nil, err
	}
	kwayTab.Rows = append(kwayTab.Rows,
		[]string{"recursive bisection", pct(partition.EdgeLocality(g, rec)), pct2(partition.MaxImbalance(rec, ws))},
		[]string{"direct relaxation", pct(partition.EdgeLocality(g, direct)), pct2(partition.MaxImbalance(direct, ws))},
	)
	return []*Table{bisectTab, kwayTab}, nil
}
