package experiments

import (
	"fmt"

	"mdbgp/internal/core"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
)

func init() {
	register(Experiment{
		Name:  "fig8",
		Paper: "Figure 8",
		Desc:  "Edge locality vs iteration for fixed step lengths {10, 5, 2, 1}·√n/100 on the LiveJournal and Orkut analogs; step length 2·ξ performs best.",
		Run: func(ctx *Context) ([]*Table, error) {
			return runStepLengthStudy(ctx, "Figure 8", []string{"lj-sim", "orkut-sim"})
		},
	})
	register(Experiment{
		Name:  "fig9",
		Paper: "Figure 9",
		Desc:  "Locality and max imbalance vs iteration for GD without adaptive step size, with adaptive step size, and with adaptive step size + vertex fixing.",
		Run: func(ctx *Context) ([]*Table, error) {
			return runAdaptivityStudy(ctx, "Figure 9", []string{"lj-sim", "orkut-sim"})
		},
	})
	register(Experiment{
		Name:  "fig10",
		Paper: "Figure 10",
		Desc:  "Locality vs iteration under exact projection (allowed imbalance ε ∈ {0.1, 0.01, 0.001}) vs one-shot alternating projection.",
		Run: func(ctx *Context) ([]*Table, error) {
			return runProjectionStudy(ctx, "Figure 10", []string{"lj-sim", "orkut-sim"})
		},
	})
	register(Experiment{
		Name:  "fig15",
		Paper: "Figure 15 (Appendix C.2)",
		Desc:  "Figure 9's adaptivity study on the sx-stackoverflow analog.",
		Run: func(ctx *Context) ([]*Table, error) {
			return runAdaptivityStudy(ctx, "Figure 15", []string{"stackoverflow-sim", "lj-sim"})
		},
	})
	register(Experiment{
		Name:  "fig16",
		Paper: "Figure 16 (Appendix C.2)",
		Desc:  "Figure 8's step-length study on the sx-stackoverflow analog.",
		Run: func(ctx *Context) ([]*Table, error) {
			return runStepLengthStudy(ctx, "Figure 16", []string{"stackoverflow-sim", "lj-sim"})
		},
	})
	register(Experiment{
		Name:  "fig17",
		Paper: "Figure 17 (Appendix C.2)",
		Desc:  "Figure 10's projection study on the sx-stackoverflow analog (the LiveJournal panel is Figure 10's).",
		Run: func(ctx *Context) ([]*Table, error) {
			return runProjectionStudy(ctx, "Figure 17", []string{"stackoverflow-sim"})
		},
	})
}

// sampleIters are the iterations at which the convergence tables sample the
// per-iteration curves.
var sampleIters = []int{0, 4, 9, 24, 49, 74, 99}

// tracedRun executes a 2-D GD bisection with tracing and returns the curve
// plus the final rounded result.
func tracedRun(ctx *Context, dataset string, mutate func(*core.Options)) ([]core.IterStats, *core.Result, error) {
	g, err := ctx.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	ws, err := ctx.Weights(dataset, 2)
	if err != nil {
		return nil, nil, err
	}
	opt := ctx.GDOptions()
	var curve []core.IterStats
	opt.Trace = func(s core.IterStats) { curve = append(curve, s) }
	if mutate != nil {
		mutate(&opt)
	}
	res, err := core.Bisect(g, ws, opt)
	if err != nil {
		return nil, nil, err
	}
	return curve, res, nil
}

// curveRow renders sampled locality values plus the final rounded locality.
func curveRow(label string, curve []core.IterStats, pick func(core.IterStats) float64, final float64) []string {
	row := []string{label}
	for _, it := range sampleIters {
		if it < len(curve) {
			row = append(row, pct(pick(curve[it])))
		} else if len(curve) > 0 {
			row = append(row, pct(pick(curve[len(curve)-1])))
		} else {
			row = append(row, "-")
		}
	}
	row = append(row, pct(final))
	return row
}

func curveHeader(first string) []string {
	h := []string{first}
	for _, it := range sampleIters {
		h = append(h, fmt.Sprintf("it%d", it+1))
	}
	return append(h, "final")
}

func runStepLengthStudy(ctx *Context, figure string, datasets []string) ([]*Table, error) {
	var tables []*Table
	for _, ds := range datasets {
		g, err := ctx.Graph(ds)
		if err != nil {
			return nil, err
		}
		tab := &Table{
			Title:  fmt.Sprintf("%s: edge locality (%%) vs iteration on %s, fixed step length s·√n/100", figure, ds),
			Note:   "paper: s = 2 reaches the best locality; s = 10 overshoots, s = 1 converges too slowly",
			Header: curveHeader("step s"),
		}
		for _, s := range []float64{10, 5, 2, 1} {
			step := s
			curve, res, err := tracedRun(ctx, ds, func(o *core.Options) {
				o.StepLength = step
			})
			if err != nil {
				return nil, err
			}
			final := partition.EdgeLocality(g, res.Assignment)
			tab.Rows = append(tab.Rows, curveRow(fmt.Sprintf("%.0f", s), curve,
				func(st core.IterStats) float64 { return st.ExpectedLocality }, final))
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

func runAdaptivityStudy(ctx *Context, figure string, datasets []string) ([]*Table, error) {
	variants := []struct {
		label  string
		mutate func(*core.Options)
	}{
		{"nonadaptive", func(o *core.Options) { o.Adaptive = false; o.VertexFixing = false }},
		{"adaptive", func(o *core.Options) { o.VertexFixing = false }},
		{"adaptive+fixing", func(o *core.Options) {}},
	}
	var tables []*Table
	for _, ds := range datasets {
		g, err := ctx.Graph(ds)
		if err != nil {
			return nil, err
		}
		ws, err := ctx.Weights(ds, 2)
		if err != nil {
			return nil, err
		}
		locTab := &Table{
			Title:  fmt.Sprintf("%s (left): edge locality (%%) vs iteration on %s", figure, ds),
			Note:   "paper: adaptive + vertex fixing reaches the best locality",
			Header: curveHeader("variant"),
		}
		imbTab := &Table{
			Title:  fmt.Sprintf("%s (right): max imbalance (%%) vs iteration on %s", figure, ds),
			Note:   "paper: vertex fixing keeps near-perfect balance throughout; the others accumulate imbalance that is repaired at the end",
			Header: curveHeader("variant"),
		}
		for _, v := range variants {
			curve, res, err := tracedRun(ctx, ds, v.mutate)
			if err != nil {
				return nil, err
			}
			finalLoc := partition.EdgeLocality(g, res.Assignment)
			finalImb := partition.MaxImbalance(res.Assignment, ws)
			locTab.Rows = append(locTab.Rows, curveRow(v.label, curve,
				func(st core.IterStats) float64 { return st.ExpectedLocality }, finalLoc))
			imbTab.Rows = append(imbTab.Rows, curveRow(v.label, curve,
				func(st core.IterStats) float64 { return st.MaxImbalance }, finalImb))
		}
		tables = append(tables, locTab, imbTab)
	}
	return tables, nil
}

func runProjectionStudy(ctx *Context, figure string, datasets []string) ([]*Table, error) {
	variants := []struct {
		label  string
		mutate func(*core.Options)
	}{
		{"exact eps=0.1", func(o *core.Options) { o.Epsilon = 0.1; o.Projection = project.Options{Method: project.Exact} }},
		{"exact eps=0.01", func(o *core.Options) { o.Epsilon = 0.01; o.Projection = project.Options{Method: project.Exact} }},
		{"exact eps=0.001", func(o *core.Options) { o.Epsilon = 0.001; o.Projection = project.Options{Method: project.Exact} }},
		{"alternating", func(o *core.Options) {}},
	}
	var tables []*Table
	for _, ds := range datasets {
		g, err := ctx.Graph(ds)
		if err != nil {
			return nil, err
		}
		tab := &Table{
			Title:  fmt.Sprintf("%s: edge locality (%%) vs iteration on %s by projection method", figure, ds),
			Note:   "paper: larger allowed imbalance gives better locality; one-shot alternating is comparable to exact (Dykstra ≡ exact, not shown)",
			Header: curveHeader("projection"),
		}
		for _, v := range variants {
			curve, res, err := tracedRun(ctx, ds, v.mutate)
			if err != nil {
				return nil, err
			}
			final := partition.EdgeLocality(g, res.Assignment)
			tab.Rows = append(tab.Rows, curveRow(v.label, curve,
				func(st core.IterStats) float64 { return st.ExpectedLocality }, final))
			ctx.Logf("%s %s %s done", figure, ds, v.label)
		}
		tables = append(tables, tab)
	}
	return tables, nil
}
