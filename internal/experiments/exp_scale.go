package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mdbgp/internal/core"
	"mdbgp/internal/metis"
	"mdbgp/internal/partition"
)

func init() {
	register(Experiment{
		Name:  "fig11",
		Paper: "Figure 11",
		Desc:  "GD running time (machine-seconds of a 2-D bisection) across the graph size ladder; the paper reports near-linear growth in |E|.",
		Run:   runFig11,
	})
	register(Experiment{
		Name:  "table3",
		Paper: "Table 3 (Appendix C.1)",
		Desc:  "GD vs the multilevel multi-constraint (METIS-style) partitioner for d ∈ {2, 3, 4} on the LiveJournal, Orkut and sx-stackoverflow analogs: locality, max imbalance, memory, time.",
		Run:   runTable3,
	})
}

func runFig11(ctx *Context) ([]*Table, error) {
	ladder := []string{"orkut-sim", "lj-sim", "fb3-sim", "friendster-sim", "fb80-sim", "fb400-sim"}
	tab := &Table{
		Title:  "Figure 11: GD scalability (2-D bisection, 100 iterations)",
		Note:   "paper: machine-hours grow linearly with |E| up to 800B edges; here: seconds per million edges should stay roughly constant",
		Header: []string{"graph", "n", "m", "time s", "s per 1M edges"},
	}
	for _, name := range ladder {
		g, err := ctx.Graph(name)
		if err != nil {
			return nil, err
		}
		ws, err := ctx.Weights(name, 2)
		if err != nil {
			return nil, err
		}
		opt := ctx.GDOptions()
		start := time.Now()
		if _, err := core.Bisect(g, ws, opt); err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		perM := secs / (float64(g.M()) / 1e6)
		tab.Rows = append(tab.Rows, []string{
			name, fmt.Sprint(g.N()), fmt.Sprint(g.M()),
			fmt.Sprintf("%.2f", secs), fmt.Sprintf("%.2f", perM),
		})
	}
	return []*Table{tab}, nil
}

// measure runs fn and reports (wall seconds, MB allocated during the call).
func measure(fn func() error) (float64, float64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	mb := float64(after.TotalAlloc-before.TotalAlloc) / 1e6
	return secs, mb, err
}

func runTable3(ctx *Context) ([]*Table, error) {
	datasets := []string{"lj-sim", "orkut-sim", "stackoverflow-sim"}
	var tables []*Table
	for _, d := range []int{2, 3, 4} {
		tab := &Table{
			Title: fmt.Sprintf("Table 3 (d=%d): GD vs multilevel multi-constraint partitioner", d),
			Note: "paper: METIS cannot guarantee balance beyond d=2 (up to 38% imbalance at d=4); " +
				"GD stays ε-balanced in every dimension. Memory = MB allocated during the call.",
			Header: []string{"graph", "algo", "locality %", "max imbalance %", "memory MB", "time s"},
		}
		for _, name := range datasets {
			g, err := ctx.Graph(name)
			if err != nil {
				return nil, err
			}
			ws, err := ctx.Weights(name, d)
			if err != nil {
				return nil, err
			}

			var gdAsgn *partition.Assignment
			gdSecs, gdMB, err := measure(func() error {
				opt := ctx.GDOptions()
				res, err := core.Bisect(g, ws, opt)
				if err != nil {
					return err
				}
				gdAsgn = res.Assignment
				return nil
			})
			if err != nil {
				return nil, err
			}

			var mAsgn *partition.Assignment
			mSecs, mMB, err := measure(func() error {
				a, err := metis.Bisect(g, ws, 0.5, metis.Options{Seed: ctx.Seed})
				if err != nil {
					return err
				}
				mAsgn = a
				return nil
			})
			if err != nil {
				return nil, err
			}

			tab.Rows = append(tab.Rows,
				[]string{name, "GD",
					pct(partition.EdgeLocality(g, gdAsgn)),
					pct2(partition.MaxImbalance(gdAsgn, ws)),
					fmt.Sprintf("%.0f", gdMB), fmt.Sprintf("%.1f", gdSecs)},
				[]string{name, "METIS-ML",
					pct(partition.EdgeLocality(g, mAsgn)),
					pct2(partition.MaxImbalance(mAsgn, ws)),
					fmt.Sprintf("%.0f", mMB), fmt.Sprintf("%.1f", mSecs)},
			)
			ctx.Logf("table3 d=%d %s done (GD %.1fs, METIS %.1fs)", d, name, gdSecs, mSecs)
		}
		tables = append(tables, tab)
	}
	return tables, nil
}
