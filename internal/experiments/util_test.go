package experiments

import "fmt"

// fmtSscan is a thin indirection so tests read cleanly.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
