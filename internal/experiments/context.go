package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mdbgp/internal/baselines"
	"mdbgp/internal/core"
	"mdbgp/internal/graph"
	"mdbgp/internal/multilevel"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

// Context carries the shared state of an experiment run: dataset cache,
// partition cache (the Figure 1 / Figure 7 / Table 2 experiments reuse the
// same GD partitions), scale factor, and a progress log sink.
type Context struct {
	// ScaleDiv divides dataset sizes: 1 = full paper-analog scale, 8 =
	// quick mode for benches and smoke tests.
	ScaleDiv int
	// Seed drives every randomized algorithm in the run.
	Seed int64
	// Log receives progress lines (nil discards them).
	Log io.Writer
	// Parallelism is the GD worker count (core.Options.Workers): 0 uses
	// GOMAXPROCS, 1 forces the serial path. Partitions are seed-
	// deterministic regardless, so cached results stay comparable.
	Parallelism int
	// Multilevel routes every GD partition through the V-cycle multilevel
	// path (multilevel.PartitionK) instead of direct recursive GD.
	Multilevel bool
	// Engine, when set to a registered engine name other than "gd" or
	// "multilevel", routes the partitions GDPartition would compute through
	// that engine instead — the tables then report the named engine in the
	// role the paper gives GD, for cross-engine comparisons. EngineSolve
	// must be wired alongside it.
	Engine string
	// EngineSolve performs the dispatch for Engine. It is injected by
	// cmd/experiments (wired to the public mdbgp engine registry): this
	// package cannot import the root package, whose benchmarks import it.
	EngineSolve func(g *graph.Graph, ws [][]float64, k int) (*partition.Assignment, error)

	graphs map[string]*graph.Graph
	parts  map[string]*partition.Assignment
	wcache map[string][][]float64
}

// NewContext creates a context at the given scale divisor.
func NewContext(scaleDiv int, seed int64, log io.Writer) *Context {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return &Context{
		ScaleDiv: scaleDiv,
		Seed:     seed,
		Log:      log,
		graphs:   map[string]*graph.Graph{},
		parts:    map[string]*partition.Assignment{},
		wcache:   map[string][][]float64{},
	}
}

// Logf writes a progress line.
func (c *Context) Logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Graph returns the named dataset, generating and caching it on first use.
func (c *Context) Graph(name string) (*graph.Graph, error) {
	if g, ok := c.graphs[name]; ok {
		return g, nil
	}
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	g := spec.Generate(c.ScaleDiv)
	c.Logf("dataset %-18s n=%-8d m=%-9d (%.1fs)", name, g.N(), g.M(), time.Since(start).Seconds())
	c.graphs[name] = g
	return g, nil
}

// Weights returns the first d standard balance dimensions of the dataset,
// cached.
func (c *Context) Weights(name string, d int) ([][]float64, error) {
	key := fmt.Sprintf("%s:d=%d", name, d)
	if ws, ok := c.wcache[key]; ok {
		return ws, nil
	}
	g, err := c.Graph(name)
	if err != nil {
		return nil, err
	}
	ws, err := weights.Standard(g, d)
	if err != nil {
		return nil, err
	}
	c.wcache[key] = ws
	return ws, nil
}

// GD partitioning modes used throughout the experiments.
const (
	ModeVertex     = "vertex"      // 1-D balance on vertex count
	ModeEdge       = "edge"        // 1-D balance on edge (degree) count
	ModeVertexEdge = "vertex-edge" // 2-D balance on both
)

func modeWeights(g *graph.Graph, mode string) ([][]float64, error) {
	switch mode {
	case ModeVertex:
		return [][]float64{weights.Unit(g)}, nil
	case ModeEdge:
		return [][]float64{weights.Degree(g)}, nil
	case ModeVertexEdge:
		return [][]float64{weights.Unit(g), weights.Degree(g)}, nil
	}
	return nil, fmt.Errorf("experiments: unknown GD mode %q", mode)
}

// GDOptions returns the paper-default GD options with the context's seed
// and worker parallelism applied; every experiment that runs GD directly
// must start from this so -p is honored uniformly.
func (c *Context) GDOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Seed = c.Seed
	opt.Workers = c.Parallelism
	return opt
}

// GDPartition runs (and caches) the context's solver with the given balance
// mode and k: direct GD by default, the multilevel V-cycle when c.Multilevel
// is set, or any registered engine when c.Engine names one.
func (c *Context) GDPartition(name, mode string, k int) (*partition.Assignment, error) {
	engine := c.Engine
	if engine == "" || engine == "gd" {
		engine = "gd"
		if c.Multilevel {
			engine = "gdml"
		}
	}
	key := fmt.Sprintf("%s:%s:%s:k=%d", engine, name, mode, k)
	if a, ok := c.parts[key]; ok {
		return a, nil
	}
	g, err := c.Graph(name)
	if err != nil {
		return nil, err
	}
	ws, err := modeWeights(g, mode)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var a *partition.Assignment
	switch engine {
	case "gd":
		a, err = core.PartitionK(g, ws, k, c.GDOptions())
	case "gdml", "multilevel":
		a, err = multilevel.PartitionK(g, ws, k, multilevel.Options{GD: c.GDOptions()})
	default:
		// Every other engine dispatches through the injected registry hook;
		// the gd/multilevel fast paths above stay on the historical option
		// mapping so cached experiment outputs remain comparable.
		if c.EngineSolve == nil {
			return nil, fmt.Errorf("experiments: engine %q requested but no EngineSolve dispatch wired", engine)
		}
		a, err = c.EngineSolve(g, ws, k)
	}
	if err != nil {
		return nil, err
	}
	c.Logf("%-3s %-18s mode=%-11s k=%-3d locality=%5.1f%% (%.1fs)",
		strings.ToUpper(engine), name, mode, k, 100*partition.EdgeLocality(g, a), time.Since(start).Seconds())
	c.parts[key] = a
	return a, nil
}

// HashPartition returns the cached hash assignment.
func (c *Context) HashPartition(name string, k int) (*partition.Assignment, error) {
	key := fmt.Sprintf("hash:%s:k=%d", name, k)
	if a, ok := c.parts[key]; ok {
		return a, nil
	}
	g, err := c.Graph(name)
	if err != nil {
		return nil, err
	}
	a := baselines.Hash(g.N(), k, c.Seed)
	c.parts[key] = a
	return a, nil
}

// BLPPartition returns the cached BLP assignment (balanced on vertex+edge).
func (c *Context) BLPPartition(name string, k int) (*partition.Assignment, error) {
	key := fmt.Sprintf("blp:%s:k=%d", name, k)
	if a, ok := c.parts[key]; ok {
		return a, nil
	}
	g, err := c.Graph(name)
	if err != nil {
		return nil, err
	}
	ws, err := c.Weights(name, 2)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	a := baselines.BLP(g, ws, k, baselines.BLPOptions{Seed: c.Seed})
	c.Logf("BLP %-18s k=%-3d locality=%5.1f%% (%.1fs)",
		name, k, 100*partition.EdgeLocality(g, a), time.Since(start).Seconds())
	c.parts[key] = a
	return a, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Experiment is one registered reproduction target.
type Experiment struct {
	Name  string // registry key, e.g. "fig5"
	Paper string // e.g. "Figure 5"
	Desc  string
	Run   func(*Context) ([]*Table, error)
}

// registry holds all experiments in paper order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByName finds an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, len(registry))
	for _, e := range registry {
		names = append(names, e.Name)
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
}

func pct(x float64) string  { return fmt.Sprintf("%.1f", 100*x) }
func pct2(x float64) string { return fmt.Sprintf("%.2f", 100*x) }
