package experiments

import (
	"fmt"
	"time"

	"mdbgp/internal/core"
	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/metis"
	"mdbgp/internal/multilevel"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

func init() {
	register(Experiment{
		Name:  "mlscale",
		Paper: "Multilevel (new)",
		Desc: "V-cycle multilevel GD vs direct GD vs the METIS-style comparator on large generated graphs: " +
			"2-D bisection locality, max imbalance and wall time, plus the multilevel speedup over direct GD.",
		Run: runMLScale,
	})
}

// mlDataset is one row source of the mlscale experiment: either a registry
// dataset (paper analog) or a locally-clustered generated graph — the
// clustered graphs are the regime the multilevel paradigm targets (real
// social networks have tight friend circles; the SBM paper-analogs have no
// triangle structure, so contraction cannot absorb their edges and the
// V-cycle falls back to direct GD).
type mlDataset struct {
	name string
	spec string // registry dataset, or "" for a generated clustered graph
	n    int
}

func runMLScale(ctx *Context) ([]*Table, error) {
	datasets := []mlDataset{
		{name: "lj-sim", spec: "lj-sim"},
		{name: "clustered-100k", n: 100_000},
		{name: "clustered-200k", n: 200_000},
		{name: "clustered-400k", n: 400_000},
	}
	tab := &Table{
		Title: "Multilevel scale: multilevel GD vs direct GD vs METIS-ML (2-D bisection)",
		Note: "clustered-N: social graphs with tight communities (size ~25, 80% local edges), the multilevel regime; " +
			"lj-sim: triangle-free SBM analog where coarsening cannot absorb edges and the V-cycle falls back to direct GD",
		Header: []string{"graph", "n", "m", "algo", "locality %", "max imbalance %", "time s", "speedup vs GD"},
	}
	for _, ds := range datasets {
		var g *graph.Graph
		var err error
		if ds.spec != "" {
			if g, err = ctx.Graph(ds.spec); err != nil {
				return nil, err
			}
		} else {
			n := ds.n / ctx.ScaleDiv
			if n < 5000 {
				n = 5000
			}
			start := time.Now()
			g, _ = gen.SBM(gen.SBMConfig{
				N: n, Communities: n / 25, AvgDegree: 14, InFraction: 0.8, Seed: ctx.Seed,
			})
			ctx.Logf("dataset %-18s n=%-8d m=%-9d (%.1fs)", ds.name, g.N(), g.M(), time.Since(start).Seconds())
		}
		ws, err := weights.Standard(g, 2)
		if err != nil {
			return nil, err
		}
		name := ds.name

		var direct *core.Result
		opt := ctx.GDOptions()
		start := time.Now()
		if direct, err = core.Bisect(g, ws, opt); err != nil {
			return nil, err
		}
		directSecs := time.Since(start).Seconds()

		var ml *core.Result
		start = time.Now()
		if ml, err = multilevel.Bisect(g, ws, multilevel.Options{GD: ctx.GDOptions()}); err != nil {
			return nil, err
		}
		mlSecs := time.Since(start).Seconds()

		var ma *partition.Assignment
		start = time.Now()
		if ma, err = metis.Bisect(g, ws, 0.5, metis.Options{Seed: ctx.Seed}); err != nil {
			return nil, err
		}
		metisSecs := time.Since(start).Seconds()

		row := func(algo string, a *partition.Assignment, secs, speedup float64) []string {
			sp := "-"
			if speedup > 0 {
				sp = fmt.Sprintf("%.2fx", speedup)
			}
			return []string{name, fmt.Sprint(g.N()), fmt.Sprint(g.M()), algo,
				pct(partition.EdgeLocality(g, a)), pct2(partition.MaxImbalance(a, ws)),
				fmt.Sprintf("%.2f", secs), sp}
		}
		tab.Rows = append(tab.Rows,
			row("GD-direct", direct.Assignment, directSecs, 0),
			row("GD-multilevel", ml.Assignment, mlSecs, directSecs/mlSecs),
			row("METIS-ML", ma, metisSecs, 0),
		)
		ctx.Logf("mlscale %s done (direct %.1fs, multilevel %.1fs, metis %.1fs)",
			name, directSecs, mlSecs, metisSecs)
	}
	return []*Table{tab}, nil
}
