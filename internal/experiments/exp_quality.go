package experiments

import (
	"fmt"

	"mdbgp/internal/baselines"
	"mdbgp/internal/partition"
	"mdbgp/internal/weights"
)

// publicGraphs are the three public networks of Figures 4 and 5.
var publicGraphs = []string{"lj-sim", "twitter-sim", "friendster-sim"}

// fbGraphs are the Facebook friendship analogs of Figure 6.
var fbGraphs = []string{"fb3-sim", "fb80-sim", "fb400-sim"}

func init() {
	register(Experiment{
		Name:  "fig4",
		Paper: "Figure 4",
		Desc:  "Vertex and edge imbalance of Spinner, BLP and SHP on the public networks, k ∈ {2, 8}. Spinner and SHP cannot balance both dimensions; Hash and GD stay below 0.01 (reported for reference).",
		Run:   runFig4,
	})
	register(Experiment{
		Name:  "fig5",
		Paper: "Figure 5",
		Desc:  "Edge locality (% uncut edges) of Hash, BLP and GD (vertex-edge mode) on the public networks, k ∈ {2, 8}.",
		Run:   runFig5,
	})
	register(Experiment{
		Name:  "fig6",
		Paper: "Figure 6",
		Desc:  "Edge locality of Hash, BLP and GD on the Facebook friendship analogs, k ∈ {16, 128}.",
		Run:   runFig6,
	})
}

func runFig4(ctx *Context) ([]*Table, error) {
	vertexTab := &Table{
		Title:  "Figure 4 (top): vertex imbalance (max/avg − 1)",
		Note:   "lower is better; paper: Spinner/SHP up to 0.41 on Twitter, BLP ≤ 0.05, Hash/GD < 0.01",
		Header: []string{"graph", "k", "Spinner", "BLP", "SHP", "Hash", "GD"},
	}
	edgeTab := &Table{
		Title:  "Figure 4 (bottom): edge imbalance (max/avg − 1)",
		Note:   "lower is better",
		Header: []string{"graph", "k", "Spinner", "BLP", "SHP", "Hash", "GD"},
	}
	for _, name := range publicGraphs {
		g, err := ctx.Graph(name)
		if err != nil {
			return nil, err
		}
		ws, err := ctx.Weights(name, 2)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{2, 8} {
			// Spinner's Giraph default balances edge load only.
			sp := baselines.Spinner(g, [][]float64{weights.Degree(g)}, k, baselines.SpinnerOptions{Seed: ctx.Seed})
			blp, err := ctx.BLPPartition(name, k)
			if err != nil {
				return nil, err
			}
			shp := baselines.SHP(g, k, baselines.SHPOptions{Seed: ctx.Seed})
			hash, err := ctx.HashPartition(name, k)
			if err != nil {
				return nil, err
			}
			gd, err := ctx.GDPartition(name, ModeVertexEdge, k)
			if err != nil {
				return nil, err
			}
			row := func(w []float64) []string {
				return []string{
					name, fmt.Sprint(k),
					fmt.Sprintf("%.3f", partition.Imbalance(sp, w)),
					fmt.Sprintf("%.3f", partition.Imbalance(blp, w)),
					fmt.Sprintf("%.3f", partition.Imbalance(shp, w)),
					fmt.Sprintf("%.3f", partition.Imbalance(hash, w)),
					fmt.Sprintf("%.3f", partition.Imbalance(gd, w)),
				}
			}
			vertexTab.Rows = append(vertexTab.Rows, row(ws[0]))
			edgeTab.Rows = append(edgeTab.Rows, row(ws[1]))
		}
	}
	return []*Table{vertexTab, edgeTab}, nil
}

func localityTable(ctx *Context, title, note string, graphs []string, ks []int) (*Table, error) {
	tab := &Table{
		Title:  title,
		Note:   note,
		Header: []string{"graph", "k", "Hash %", "BLP %", "GD %"},
	}
	for _, name := range graphs {
		g, err := ctx.Graph(name)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			hash, err := ctx.HashPartition(name, k)
			if err != nil {
				return nil, err
			}
			blp, err := ctx.BLPPartition(name, k)
			if err != nil {
				return nil, err
			}
			gd, err := ctx.GDPartition(name, ModeVertexEdge, k)
			if err != nil {
				return nil, err
			}
			tab.Rows = append(tab.Rows, []string{
				name, fmt.Sprint(k),
				pct(partition.EdgeLocality(g, hash)),
				pct(partition.EdgeLocality(g, blp)),
				pct(partition.EdgeLocality(g, gd)),
			})
		}
	}
	return tab, nil
}

func runFig5(ctx *Context) ([]*Table, error) {
	tab, err := localityTable(ctx,
		"Figure 5: edge locality on public networks (higher is better)",
		"paper (LiveJournal k=2): Hash 50, BLP 75.2, GD 87.7; GD wins everywhere by 2–13 points",
		publicGraphs, []int{2, 8})
	if err != nil {
		return nil, err
	}
	return []*Table{tab}, nil
}

func runFig6(ctx *Context) ([]*Table, error) {
	tab, err := localityTable(ctx,
		"Figure 6: edge locality on Facebook friendship analogs (higher is better)",
		"paper (FB-400B k=16): Hash 6.25, BLP 43.19, GD 52.09; GD's margin grows with graph size",
		fbGraphs, []int{16, 128})
	if err != nil {
		return nil, err
	}
	return []*Table{tab}, nil
}
