// Package experiments regenerates every table and figure of the paper's
// evaluation section on synthetic analogs of its datasets. Each experiment
// is registered under the paper's figure/table number; cmd/experiments runs
// them and renders plain-text tables mirroring the paper's plots.
package experiments

import (
	"fmt"
	"sort"

	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
)

// DatasetSpec describes one synthetic analog of a paper dataset. All analogs
// are degree-corrected two-level stochastic block models; the knobs encode
// the properties the partitioning algorithms are sensitive to (community
// strength → achievable locality, degree skew → vertex/edge balance
// tension). Sizes are ~1000× below the paper's graphs; see DESIGN.md §4.
type DatasetSpec struct {
	Name        string
	PaperName   string // dataset it stands in for
	N           int
	AvgDegree   float64
	Communities int
	InFraction  float64
	MicroSize   int
	MicroFrac   float64
	Exponent    float64 // Pareto degree-skew exponent (0 = none)
	BlockSkew   float64 // per-community density skew (exp(U(−s,s)) multiplier)
	Seed        int64
}

// specs is the dataset registry, ordered as in the paper (§4: public
// networks, then Facebook friendship subgraphs, then the appendix Q&A
// graph).
var specs = []DatasetSpec{
	{Name: "lj-sim", PaperName: "LiveJournal (4.8M/69M)", N: 100_000, AvgDegree: 40,
		Communities: 50, InFraction: 0.38, MicroSize: 20, MicroFrac: 0.25, Exponent: 2.5, BlockSkew: 0.8, Seed: 101},
	{Name: "orkut-sim", PaperName: "Orkut (3.1M/117M)", N: 60_000, AvgDegree: 80,
		Communities: 30, InFraction: 0.45, MicroSize: 25, MicroFrac: 0.30, Exponent: 2.2, BlockSkew: 0.8, Seed: 102},
	{Name: "twitter-sim", PaperName: "Twitter (41M/1.2B)", N: 150_000, AvgDegree: 40,
		Communities: 60, InFraction: 0.30, MicroSize: 30, MicroFrac: 0.12, Exponent: 1.5, BlockSkew: 1.2, Seed: 103},
	{Name: "friendster-sim", PaperName: "Friendster (65M/1.8B)", N: 240_000, AvgDegree: 33,
		Communities: 80, InFraction: 0.35, MicroSize: 25, MicroFrac: 0.20, Exponent: 2.3, BlockSkew: 0.8, Seed: 104},
	{Name: "fb3-sim", PaperName: "FB-3B", N: 150_000, AvgDegree: 40,
		Communities: 128, InFraction: 0.30, MicroSize: 25, MicroFrac: 0.22, Exponent: 2.6, BlockSkew: 1.0, Seed: 105},
	{Name: "fb80-sim", PaperName: "FB-80B", N: 300_000, AvgDegree: 53,
		Communities: 256, InFraction: 0.30, MicroSize: 25, MicroFrac: 0.22, Exponent: 2.6, BlockSkew: 1.0, Seed: 106},
	{Name: "fb400-sim", PaperName: "FB-400B", N: 600_000, AvgDegree: 53,
		Communities: 512, InFraction: 0.30, MicroSize: 25, MicroFrac: 0.22, Exponent: 2.6, BlockSkew: 1.0, Seed: 107},
	{Name: "stackoverflow-sim", PaperName: "sx-stackoverflow (2.6M/28M)", N: 80_000, AvgDegree: 30,
		Communities: 40, InFraction: 0.28, MicroSize: 20, MicroFrac: 0.20, Exponent: 1.8, BlockSkew: 1.0, Seed: 108},
}

// Specs returns the registry in order.
func Specs() []DatasetSpec {
	out := make([]DatasetSpec, len(specs))
	copy(out, specs)
	return out
}

// SpecByName looks up a dataset spec.
func SpecByName(name string) (DatasetSpec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return DatasetSpec{}, fmt.Errorf("experiments: unknown dataset %q (have %v)", name, names)
}

// Generate materializes the dataset at the given scale divisor (1 = full;
// quick mode uses 8). Vertex counts shrink by the divisor; average degree is
// kept, preserving skew and community structure.
func (s DatasetSpec) Generate(scaleDiv int) *graph.Graph {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	n := s.N / scaleDiv
	if n < 1000 {
		n = 1000
	}
	comm := s.Communities
	if comm > n/50 {
		comm = n / 50
		if comm < 2 {
			comm = 2
		}
	}
	g, _ := gen.SBM(gen.SBMConfig{
		N:               n,
		Communities:     comm,
		AvgDegree:       s.AvgDegree,
		InFraction:      s.InFraction,
		MicroSize:       s.MicroSize,
		MicroFraction:   s.MicroFrac,
		DegreeExponent:  s.Exponent,
		BlockDegreeSkew: s.BlockSkew,
		Seed:            s.Seed,
	})
	return g
}
