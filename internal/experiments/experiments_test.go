package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCtx() *Context {
	return NewContext(16, 42, nil) // 16× scale-down: every dataset ≥ 1000 vertices
}

func TestSpecRegistry(t *testing.T) {
	ss := Specs()
	if len(ss) != 8 {
		t.Fatalf("expected 8 dataset specs, got %d", len(ss))
	}
	seen := map[string]bool{}
	for _, s := range ss {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
		if s.N <= 0 || s.AvgDegree <= 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
	if _, err := SpecByName("lj-sim"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestGenerateScaling(t *testing.T) {
	spec, _ := SpecByName("lj-sim")
	small := spec.Generate(16)
	if small.N() != spec.N/16 {
		t.Fatalf("scaled n=%d, want %d", small.N(), spec.N/16)
	}
	// Floor at 1000 vertices.
	tiny := spec.Generate(1 << 20)
	if tiny.N() != 1000 {
		t.Fatalf("floor n=%d, want 1000", tiny.N())
	}
}

func TestContextCaches(t *testing.T) {
	ctx := quickCtx()
	g1, err := ctx.Graph("orkut-sim")
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := ctx.Graph("orkut-sim")
	if g1 != g2 {
		t.Fatal("graph not cached")
	}
	a1, err := ctx.GDPartition("orkut-sim", ModeVertexEdge, 2)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := ctx.GDPartition("orkut-sim", ModeVertexEdge, 2)
	if a1 != a2 {
		t.Fatal("partition not cached")
	}
	w1, err := ctx.Weights("orkut-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := ctx.Weights("orkut-sim", 2)
	if &w1[0][0] != &w2[0][0] {
		t.Fatal("weights not cached")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig4", "fig5", "fig6", "fig7", "table2",
		"fig8", "fig9", "fig10", "fig11", "table3", "fig15", "fig16", "fig17", "ablations"}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.Name] = true
		if e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %s incompletely registered", e.Name)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("experiment %s not registered", w)
		}
	}
	if _, err := ByName("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T", "n", "a", "bb", "xxx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Smoke-run the cheap experiments end to end at 16× reduction. The heavy
// Giraph/FB experiments are exercised by the benchmarks instead.
func TestRunFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := quickCtx()
	e, err := ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 6 {
		t.Fatalf("fig5: %d tables, %d rows", len(tables), len(tables[0].Rows))
	}
	// GD must beat hash on every row.
	for _, row := range tables[0].Rows {
		hash := parsePct(t, row[2])
		gd := parsePct(t, row[4])
		if gd <= hash {
			t.Fatalf("GD %.1f <= hash %.1f in row %v", gd, hash, row)
		}
	}
}

func TestRunFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := quickCtx()
	e, _ := ByName("fig4")
	tables, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig4: %d tables", len(tables))
	}
	// GD column must stay within ~ε on both dimensions everywhere.
	for _, tab := range tables {
		for _, row := range tab.Rows {
			var gd float64
			if _, err := fmtSscan(row[6], &gd); err != nil {
				t.Fatalf("bad GD cell %q", row[6])
			}
			if gd > 0.06 {
				t.Fatalf("GD imbalance %v in row %v", gd, row)
			}
		}
	}
}

func TestRunFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := quickCtx()
	e, _ := ByName("fig9")
	tables, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two datasets × (locality + imbalance) tables.
	if len(tables) != 4 {
		t.Fatalf("fig9: %d tables", len(tables))
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
