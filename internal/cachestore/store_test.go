package cachestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mdbgp"
)

func testResult(n, k int, seed int64) *mdbgp.Result {
	parts := make([]int32, n)
	for i := range parts {
		parts[i] = int32((int64(i)*2654435761 + seed) % int64(k))
	}
	return &mdbgp.Result{
		Assignment:   &mdbgp.Assignment{Parts: parts, K: k},
		EdgeLocality: 0.8125 + float64(seed)/1e6,
		CutEdges:     int64(n) * 3,
		Imbalances:   []float64{0.01, 0.02 + float64(seed)/1e9},
	}
}

// flushPut writes an entry and waits for the write-behind queue to land it.
func flushPut(t *testing.T, s *Store, key string, res *mdbgp.Result) {
	t.Helper()
	s.Put(key, res)
	deadline := time.Now().Add(5 * time.Second)
	for !s.Has(key) {
		if time.Now().After(deadline) {
			t.Fatalf("entry for %q never landed on disk", key)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := "gd2:abcd1234:vertices,edges:fp0001"
	want := testResult(1000, 8, 1)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	flushPut(t, s, key, want)
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated the result:\n got %+v\nwant %+v", got, want)
	}
	hits, misses, errs, bytes_, entries := s.Stats()
	if hits != 1 || misses != 1 || errs != 0 || entries != 1 || bytes_ <= 0 {
		t.Fatalf("stats = hits %d misses %d errors %d bytes %d entries %d", hits, misses, errs, bytes_, entries)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "gd2:feed0000:vertices:fp"
	want := testResult(500, 4, 7)
	flushPut(t, s, key, want)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, _, _, bytes_, entries := s2.Stats()
	if entries != 1 || bytes_ <= 0 {
		t.Fatalf("reopen scan: entries %d bytes %d, want 1 and > 0", entries, bytes_)
	}
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("entry mutated across reopen")
	}
	if keys := s2.Keys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys() = %v, want [%s]", keys, key)
	}
}

// TestStoreCrashMidWrite simulates kill -9 between tmp create and rename: a
// torn .tmp file must be swept at Open, never served, and never counted.
func TestStoreCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "gd2:aa00:vertices,edges:fp"
	flushPut(t, s, key, testResult(200, 2, 3))
	s.Close()

	// The "crash": a partially written tmp file for another key.
	torn := EncodeEntry("gd2:bb11:vertices:fp2", testResult(100, 2, 4))
	tornPath := filepath.Join(dir, fileName("gd2:bb11:vertices:fp2")+".tmp")
	if err := os.WriteFile(tornPath, torn[:len(torn)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
		t.Fatal("torn tmp file survived Open")
	}
	if _, ok := s2.Get("gd2:bb11:vertices:fp2"); ok {
		t.Fatal("torn write became visible")
	}
	if got, ok := s2.Get(key); !ok || got == nil {
		t.Fatal("healthy entry lost in crash recovery")
	}
}

// TestStoreQuarantinesCorruptEntries covers the three corruption classes:
// truncation under the final name, a flipped payload byte, and an entry whose
// embedded key disagrees with its file name. Each must quarantine + miss, and
// the quarantined file must not reappear on reload.
func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)-40] }},
		{"bitflip", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(magic)+10] ^= 0x40
			return out
		}},
		{"wrong-key", func(d []byte) []byte {
			// A valid entry for a DIFFERENT key placed under this key's file
			// name: checksum passes, key verification must catch it.
			return EncodeEntry("gd2:other:vertices:fp", testResult(50, 2, 9))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// The corruption predates the process: plant the bad file, then
			// open the store over it, as a restarted daemon would.
			key := "gd2:cafe0123:vertices,edges:fpX"
			good := EncodeEntry(key, testResult(300, 4, 11))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, fileName(key)), tc.corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served")
			}
			if _, _, errs, _, entries := s.Stats(); errs == 0 || entries != 0 {
				t.Fatalf("corruption not accounted: errors %d entries %d", errs, entries)
			}
			// Quarantined, not deleted: the bytes moved under quarantine/.
			qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(qents) != 1 {
				t.Fatalf("quarantine dir has %d files (err %v), want 1", len(qents), err)
			}
			// A second Get is a clean miss (no re-quarantine, no crash), and a
			// fresh store over the same dir reloads without the corrupt entry.
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry resurrected")
			}
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if _, ok := s2.Get(key); ok {
				t.Fatal("corrupt entry survived reload")
			}
			if keys := s2.Keys(); len(keys) != 0 {
				t.Fatalf("Keys() lists quarantined entries: %v", keys)
			}
		})
	}
}

func TestStoreRawTransfer(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	key := "gd2:0011:vertices,edges:fpT"
	want := testResult(400, 4, 21)
	flushPut(t, src, key, want)
	raw, ok := src.GetRaw(key)
	if !ok {
		t.Fatal("GetRaw missed a stored entry")
	}
	gotKey, err := dst.PutRaw(raw)
	if err != nil || gotKey != key {
		t.Fatalf("PutRaw = (%q, %v), want (%q, nil)", gotKey, err, key)
	}
	got, ok := dst.Get(key)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("transferred entry does not round-trip byte-identically")
	}
	// Corrupt raw bytes are rejected, not stored.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 1
	if _, err := dst.PutRaw(bad); err == nil {
		t.Fatal("PutRaw accepted corrupt bytes")
	}
}

func TestStoreKeysReadsHeadersOnly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("gd2:%04d:vertices:fp%d", i, i)
		want[key] = true
		flushPut(t, s, key, testResult(50+i, 2, int64(i)))
	}
	keys := s.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys() = %d entries, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("Keys() invented %q", k)
		}
	}
}

func TestEncodeDecodeCanonical(t *testing.T) {
	key := "gd2:beef:vertices,edges:fpC"
	res := testResult(123, 5, 99)
	data := EncodeEntry(key, res)
	gotKey, gotRes, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || !reflect.DeepEqual(gotRes, res) {
		t.Fatal("decode does not invert encode")
	}
	if re := EncodeEntry(gotKey, gotRes); !bytes.Equal(re, data) {
		t.Fatal("encoding is not canonical: decode→encode changed bytes")
	}
	// Nil-assignment results encode too (defensive: the server never caches
	// these, but the codec must not crash).
	data2 := EncodeEntry("k", &mdbgp.Result{EdgeLocality: 0.5})
	if _, _, err := DecodeEntry(data2); err != nil {
		t.Fatalf("nil-assignment entry failed to decode: %v", err)
	}
}

func TestFileNameIsSafeHex(t *testing.T) {
	// Keys contain ':' and arbitrary fingerprint text; file names must not.
	name := fileName("gd2:../../etc/passwd:dims:fp")
	if filepath.Base(name) != name {
		t.Fatalf("file name %q escapes the store directory", name)
	}
	if _, err := hex.DecodeString(name[:len(name)-len(".mdc")]); err != nil {
		t.Fatalf("file name %q is not hex: %v", name, err)
	}
	if len(name) != 2*sha256.Size+len(".mdc") {
		t.Fatalf("file name %q has unexpected length", name)
	}
}
