package cachestore

import (
	"bytes"
	"testing"

	"mdbgp"
)

// FuzzDecodeEntry drives the on-disk entry decoder with arbitrary bytes: it
// must never panic or over-allocate, and whenever it does accept an input,
// the decode must be canonical — re-encoding the decoded entry reproduces
// the input byte for byte (the format allows no trailing garbage and no
// redundant spellings, which is what lets quarantine decisions be exact).
func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	good := EncodeEntry("gd2:abcd:vertices,edges:fp1", &mdbgp.Result{
		Assignment:   &mdbgp.Assignment{Parts: []int32{0, 1, 1, 0, 2}, K: 3},
		EdgeLocality: 0.875,
		CutEdges:     12,
		Imbalances:   []float64{0.01, 0.04},
	})
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	f.Add(EncodeEntry("", &mdbgp.Result{Assignment: &mdbgp.Assignment{K: 1}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		key, res, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if res == nil || res.Assignment == nil {
			t.Fatal("successful decode returned a nil result")
		}
		if !bytes.Equal(EncodeEntry(key, res), data) {
			t.Fatalf("decode accepted a non-canonical encoding (%d bytes)", len(data))
		}
	})
}
