// Package cachestore is the durable disk tier of the daemon's
// content-addressed result cache: one checksummed file per cache key under a
// directory the operator names with -cache-dir. Results are deterministic
// for a fixed key (EngineVersion + graph hash + dims + options fingerprint),
// so an entry written once is valid forever within an engine generation —
// the store never needs invalidation logic beyond the version prefix already
// baked into every key.
//
// Durability posture:
//
//   - Writes are write-behind: Put enqueues onto a bounded channel drained by
//     one writer goroutine, so the serving hot path never blocks on disk. A
//     full queue drops the spill (counted) — a dropped spill is a future
//     cache miss, not an error.
//   - Every write is atomic: encode to <name>.tmp, then rename onto the final
//     <name>.mdc. A crash mid-write leaves only a tmp file, which Open sweeps;
//     readers can never observe a torn entry under the final name.
//   - Every entry is checksummed (SHA-256 over the full header+payload) and
//     self-describing (the entry stores its own key). Get verifies both; any
//     mismatch — truncation, bit rot, a key collision on the file name —
//     quarantines the file under quarantine/ and reports a miss instead of
//     crashing or serving garbage.
//   - Reads are lazy: nothing is loaded at Open beyond a size scan, so a
//     restarted daemon recovers its hit rate entry by entry as traffic asks
//     for it, with no warm-up storm.
package cachestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"mdbgp"
)

// magic heads every entry file; the trailing version byte ("1") changes if
// the layout ever does, so old files fail fast instead of misparsing.
const magic = "MDBGPC1\n"

// maxKeyLen bounds the stored-key length the decoder will allocate for. Real
// keys (engine version + graph hash + dims + fingerprint) are ~150 bytes;
// anything near the bound is corrupt.
const maxKeyLen = 4096

// quarantineDir is the subdirectory corrupt entries are moved into.
const quarantineDir = "quarantine"

// Store is the on-disk cache tier. Open creates it; all methods are safe for
// concurrent use. The zero value is not usable.
type Store struct {
	dir string

	queue  chan writeReq
	wg     sync.WaitGroup
	closed atomic.Bool

	// seq disambiguates quarantine file names when the same entry is
	// quarantined twice (e.g. two concurrent readers hitting the same corrupt
	// file).
	seq atomic.Int64

	hits    atomic.Int64
	misses  atomic.Int64
	errors  atomic.Int64 // decode/IO failures, including quarantines and dropped spills
	bytes   atomic.Int64 // bytes currently held by entry files
	entries atomic.Int64 // entry files currently on disk
}

type writeReq struct {
	key  string
	data []byte
}

// Open prepares dir as a cache store: creates it (and its quarantine
// subdirectory) if missing, sweeps torn .tmp files left by a crash mid-write,
// and totals the existing entries for the byte gauge. No entry payloads are
// read — recovery is lazy, on first Get of each key.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s := &Store{dir: dir, queue: make(chan writeReq, 256)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash between create and rename left a torn temp file; it was
			// never visible under a final name, so removal loses nothing.
			os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, ".mdc"):
			if info, err := e.Info(); err == nil {
				s.bytes.Add(info.Size())
				s.entries.Add(1)
			}
		}
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileName maps a cache key to its entry file: keys contain ':' and
// arbitrary fingerprint bytes, so the name is the hex SHA-256 of the key —
// collision-safe in the same sense the content addressing itself is, and the
// entry stores the full key for verification anyway.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".mdc"
}

// Get returns the stored result for key, or false on a miss. A file that
// exists but fails verification (torn write that somehow got renamed, bit
// rot, wrong key inside) is quarantined and reported as a miss.
func (s *Store) Get(key string) (*mdbgp.Result, bool) {
	data, ok := s.getRaw(key)
	if !ok {
		return nil, false
	}
	storedKey, res, err := DecodeEntry(data)
	if err != nil || storedKey != key {
		if err == nil {
			err = fmt.Errorf("entry holds key %.32q..., want %.32q...", storedKey, key)
		}
		s.quarantine(fileName(key), err)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// GetRaw returns the verbatim on-disk entry bytes for key — the unit the
// peer-warming protocol transfers, so the receiving replica re-verifies the
// same checksum end to end. Verification still runs here (quarantine on
// corruption) so a replica never serves a torn entry to a peer.
func (s *Store) GetRaw(key string) ([]byte, bool) {
	data, ok := s.getRaw(key)
	if !ok {
		return nil, false
	}
	if storedKey, _, err := DecodeEntry(data); err != nil || storedKey != key {
		if err == nil {
			err = fmt.Errorf("entry holds key %.32q..., want %.32q...", storedKey, key)
		}
		s.quarantine(fileName(key), err)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return data, true
}

// getRaw reads the entry file without verification or hit/miss accounting
// for the success path (callers verify and count).
func (s *Store) getRaw(key string) ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, fileName(key)))
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	return data, true
}

// Has reports whether an entry file exists for key, without reading or
// verifying it. Used by peer warming to skip keys already spilled locally.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(filepath.Join(s.dir, fileName(key)))
	return err == nil
}

// Put spills a result under key, write-behind: the encode and the disk write
// happen on the store's writer goroutine. When the queue is full the spill
// is dropped (counted in errors) rather than blocking the serving path —
// the entry can always be rewritten by a future solve.
func (s *Store) Put(key string, res *mdbgp.Result) {
	if s.closed.Load() {
		return
	}
	select {
	case s.queue <- writeReq{key: key, data: EncodeEntry(key, res)}:
	default:
		s.errors.Add(1)
	}
}

// PutRaw verifies and stores pre-encoded entry bytes under their embedded
// key — the receiving half of a peer-warming transfer. Unlike Put it is
// synchronous (warming already runs on background goroutines with bounded
// concurrency) and returns the verification error: a peer serving corrupt
// bytes must be visible to the warmer, not silently dropped.
func (s *Store) PutRaw(data []byte) (string, error) {
	key, _, err := DecodeEntry(data)
	if err != nil {
		s.errors.Add(1)
		return "", err
	}
	if err := s.writeEntry(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// Keys lists the keys of every verifiable entry on disk, by reading just
// each file's header (magic + key), not its payload. Unreadable headers are
// skipped — Get will quarantine them when (if) they are actually requested.
func (s *Store) Keys() []string {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		s.errors.Add(1)
		return nil
	}
	var keys []string
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".mdc") {
			continue
		}
		key, err := readEntryKey(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		keys = append(keys, key)
	}
	return keys
}

// Stats returns the store's counters: verified hits, misses, error events
// (IO failures, quarantines, dropped spills), and the bytes and entry count
// currently on disk.
func (s *Store) Stats() (hits, misses, errors, bytes, entries int64) {
	return s.hits.Load(), s.misses.Load(), s.errors.Load(), s.bytes.Load(), s.entries.Load()
}

// writer drains the write-behind queue.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.queue {
		if err := s.writeEntry(req.key, req.data); err != nil {
			// writeEntry already counted it; nothing else to do — a failed
			// spill is a future miss.
			_ = err
		}
	}
}

// writeEntry performs one atomic entry write: create tmp, write, rename.
func (s *Store) writeEntry(key string, data []byte) error {
	name := fileName(key)
	final := filepath.Join(s.dir, name)
	prevSize := int64(0)
	existed := false
	if info, err := os.Stat(final); err == nil {
		prevSize, existed = info.Size(), true
	}
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.errors.Add(1)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		s.errors.Add(1)
		return err
	}
	s.bytes.Add(int64(len(data)) - prevSize)
	if !existed {
		s.entries.Add(1)
	}
	return nil
}

// quarantine moves a corrupt entry file out of the serving directory so it
// can never be re-read (or re-quarantined by a later scan), preserving the
// bytes for post-mortem instead of deleting evidence.
func (s *Store) quarantine(name string, cause error) {
	s.errors.Add(1)
	src := filepath.Join(s.dir, name)
	size := int64(0)
	if info, err := os.Stat(src); err == nil {
		size = info.Size()
	} else {
		return // already gone (e.g. a concurrent reader quarantined it first)
	}
	dst := filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", name, s.seq.Add(1)))
	if err := os.Rename(src, dst); err != nil {
		return
	}
	s.bytes.Add(-size)
	s.entries.Add(-1)
	_ = cause
}

// Close drains the write-behind queue and stops the writer. Further Puts are
// dropped silently; reads keep working (the files are still there).
func (s *Store) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.queue)
	s.wg.Wait()
}

// EncodeEntry serializes one cache entry:
//
//	magic (8 bytes: "MDBGPC1\n")
//	uint32 LE key length, key bytes
//	uint32 LE K
//	uint32 LE len(Parts), Parts as int32 LE
//	float64 LE EdgeLocality
//	int64  LE CutEdges
//	uint32 LE len(Imbalances), Imbalances as float64 LE
//	sha256 over everything above (32 bytes)
//
// The encoding is canonical — DecodeEntry rejects trailing bytes — so a
// successful decode re-encodes to the identical byte string, which the fuzz
// harness asserts.
func EncodeEntry(key string, res *mdbgp.Result) []byte {
	n := 0
	if res.Assignment != nil {
		n = len(res.Assignment.Parts)
	}
	size := len(magic) + 4 + len(key) + 4 + 4 + 4*n + 8 + 8 + 4 + 8*len(res.Imbalances) + sha256.Size
	out := make([]byte, 0, size)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(key)))
	out = append(out, key...)
	k := 0
	if res.Assignment != nil {
		k = res.Assignment.K
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(k))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	if res.Assignment != nil {
		for _, p := range res.Assignment.Parts {
			out = binary.LittleEndian.AppendUint32(out, uint32(p))
		}
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(res.EdgeLocality))
	out = binary.LittleEndian.AppendUint64(out, uint64(res.CutEdges))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(res.Imbalances)))
	for _, im := range res.Imbalances {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(im))
	}
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// DecodeEntry parses and verifies EncodeEntry's output. Every length is
// validated against the remaining input before allocation, the checksum is
// verified over the full prefix, and trailing bytes are rejected, so the
// decoder is safe on arbitrary (fuzzed, truncated, bit-flipped) input.
func DecodeEntry(data []byte) (key string, res *mdbgp.Result, err error) {
	if len(data) < len(magic)+sha256.Size {
		return "", nil, fmt.Errorf("cachestore: entry too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("cachestore: bad magic %q", data[:len(magic)])
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); string(got[:]) != string(sum) {
		return "", nil, fmt.Errorf("cachestore: checksum mismatch")
	}
	p := body[len(magic):]
	u32 := func(what string) (uint32, error) {
		if len(p) < 4 {
			return 0, fmt.Errorf("cachestore: truncated before %s", what)
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	u64 := func(what string) (uint64, error) {
		if len(p) < 8 {
			return 0, fmt.Errorf("cachestore: truncated before %s", what)
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	keyLen, err := u32("key length")
	if err != nil {
		return "", nil, err
	}
	if keyLen > maxKeyLen || int(keyLen) > len(p) {
		return "", nil, fmt.Errorf("cachestore: key length %d out of range", keyLen)
	}
	key = string(p[:keyLen])
	p = p[keyLen:]
	kParts, err := u32("K")
	if err != nil {
		return "", nil, err
	}
	n, err := u32("parts length")
	if err != nil {
		return "", nil, err
	}
	if int64(n)*4 > int64(len(p)) {
		return "", nil, fmt.Errorf("cachestore: parts length %d exceeds payload", n)
	}
	parts := make([]int32, n)
	for i := range parts {
		parts[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	p = p[4*n:]
	locBits, err := u64("edge locality")
	if err != nil {
		return "", nil, err
	}
	cut, err := u64("cut edges")
	if err != nil {
		return "", nil, err
	}
	nImb, err := u32("imbalances length")
	if err != nil {
		return "", nil, err
	}
	if int64(nImb)*8 > int64(len(p)) {
		return "", nil, fmt.Errorf("cachestore: imbalances length %d exceeds payload", nImb)
	}
	var imb []float64
	if nImb > 0 {
		imb = make([]float64, nImb)
		for i := range imb {
			imb[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*nImb:]
	}
	if len(p) != 0 {
		return "", nil, fmt.Errorf("cachestore: %d trailing bytes", len(p))
	}
	return key, &mdbgp.Result{
		Assignment:   &mdbgp.Assignment{Parts: parts, K: int(kParts)},
		EdgeLocality: math.Float64frombits(locBits),
		CutEdges:     int64(cut),
		Imbalances:   imb,
	}, nil
}

// readEntryKey reads just the header of an entry file — magic and key — for
// Keys() listings, without loading (or verifying) the payload.
func readEntryKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	hdr := make([]byte, len(magic)+4)
	if _, err := readFull(f, hdr); err != nil {
		return "", err
	}
	if string(hdr[:len(magic)]) != magic {
		return "", fmt.Errorf("cachestore: bad magic")
	}
	keyLen := binary.LittleEndian.Uint32(hdr[len(magic):])
	if keyLen == 0 || keyLen > maxKeyLen {
		return "", fmt.Errorf("cachestore: key length %d out of range", keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := readFull(f, key); err != nil {
		return "", err
	}
	return string(key), nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := f.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
