// Package partition defines the assignment type shared by all partitioners
// and the quality metrics reported throughout the paper's evaluation: edge
// locality (fraction of uncut edges), cut size, and per-dimension imbalance
// (max_i w(V_i) / avg_i w(V_i) − 1).
package partition

import (
	"fmt"

	"mdbgp/internal/graph"
)

// Assignment maps every vertex to one of K parts.
type Assignment struct {
	Parts []int32 // len = number of vertices; Parts[v] ∈ [0, K)
	K     int
}

// NewAssignment allocates an all-zero assignment for n vertices and k parts.
func NewAssignment(n, k int) *Assignment {
	return &Assignment{Parts: make([]int32, n), K: k}
}

// Validate checks that every vertex is assigned to a part in [0, K).
func (a *Assignment) Validate() error {
	if a.K <= 0 {
		return fmt.Errorf("partition: K = %d, want > 0", a.K)
	}
	for v, p := range a.Parts {
		if p < 0 || int(p) >= a.K {
			return fmt.Errorf("partition: vertex %d assigned to part %d, K=%d", v, p, a.K)
		}
	}
	return nil
}

// PartSizes returns the number of vertices in each part.
func (a *Assignment) PartSizes() []int64 {
	sizes := make([]int64, a.K)
	for _, p := range a.Parts {
		sizes[p]++
	}
	return sizes
}

// Members returns the vertex ids assigned to part p, in increasing order.
func (a *Assignment) Members(p int) []int32 {
	var out []int32
	for v, q := range a.Parts {
		if int(q) == p {
			out = append(out, int32(v))
		}
	}
	return out
}

// CutEdges returns the number of edges whose endpoints lie in different
// parts.
func CutEdges(g *graph.Graph, a *Assignment) int64 {
	cut := int64(0)
	g.EachEdge(func(u, v int) bool {
		if a.Parts[u] != a.Parts[v] {
			cut++
		}
		return true
	})
	return cut
}

// EdgeLocality returns the fraction of edges with both endpoints in the same
// part — the paper's primary quality metric (it is proportional to the
// number of local messages in a vertex-centric job). Returns 1 for edgeless
// graphs.
func EdgeLocality(g *graph.Graph, a *Assignment) float64 {
	if g.M() == 0 {
		return 1
	}
	return 1 - float64(CutEdges(g, a))/float64(g.M())
}

// Loads returns the per-part totals of a weight function.
func Loads(a *Assignment, w []float64) []float64 {
	loads := make([]float64, a.K)
	for v, p := range a.Parts {
		loads[p] += w[v]
	}
	return loads
}

// Imbalance returns max_i w(V_i) / avg_i w(V_i) − 1 for one weight function,
// the metric plotted in Figure 4 of the paper. Zero total weight yields 0.
func Imbalance(a *Assignment, w []float64) float64 {
	loads := Loads(a, w)
	total, max := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total <= 0 {
		return 0
	}
	avg := total / float64(a.K)
	return max/avg - 1
}

// MaxImbalance returns the worst Imbalance across several weight functions —
// "max imbalance over all dimensions" in Figures 9 and 15 and Table 3.
func MaxImbalance(a *Assignment, weights [][]float64) float64 {
	max := 0.0
	for _, w := range weights {
		if im := Imbalance(a, w); im > max {
			max = im
		}
	}
	return max
}

// IsBalanced reports whether every part's weight is within (1±ε)·total/K for
// every weight function — the ε-balance requirement of Definition 2.1.
func IsBalanced(a *Assignment, weights [][]float64, eps float64) bool {
	for _, w := range weights {
		loads := Loads(a, w)
		total := 0.0
		for _, l := range loads {
			total += l
		}
		avg := total / float64(a.K)
		for _, l := range loads {
			if l > (1+eps)*avg+1e-9 || l < (1-eps)*avg-1e-9 {
				return false
			}
		}
	}
	return true
}

// VertexImbalance is Imbalance with the unit weight function.
func VertexImbalance(a *Assignment) float64 {
	w := make([]float64, len(a.Parts))
	for i := range w {
		w[i] = 1
	}
	return Imbalance(a, w)
}

// EdgeImbalance is Imbalance with the degree weight function (each part's
// load is the sum of degrees of its vertices, i.e. ≈ 2× its edge count plus
// its cut stubs).
func EdgeImbalance(g *graph.Graph, a *Assignment) float64 {
	w := make([]float64, g.N())
	for v := range w {
		w[v] = float64(g.Degree(v))
	}
	return Imbalance(a, w)
}

// LocalEdgeShares returns, for each part, the fraction of its incident edge
// stubs that are local (both endpoints inside the part) — the per-worker
// "% local edges" annotation of Figure 1.
func LocalEdgeShares(g *graph.Graph, a *Assignment) []float64 {
	local := make([]float64, a.K)
	total := make([]float64, a.K)
	g.EachEdge(func(u, v int) bool {
		pu, pv := a.Parts[u], a.Parts[v]
		total[pu]++
		total[pv]++
		if pu == pv {
			local[pu] += 2
		}
		return true
	})
	out := make([]float64, a.K)
	for i := range out {
		if total[i] > 0 {
			out[i] = local[i] / total[i]
		} else {
			out[i] = 1
		}
	}
	return out
}
