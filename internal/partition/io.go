package partition

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadParts parses "vertex part" lines — the format written by cmd/mdbgp and
// the daemon's /assignment endpoint — into a parts slice indexed by vertex
// id. '#'/'%' comment lines and blanks are skipped; vertices may appear in
// any order, later lines win, and ids never mentioned are left at -1 (no
// prior opinion — exactly what warm starts expect for unseen vertices).
// Negative ids, ids above maxVertexID (0 means the int32 representation
// limit) and negative or overflowing parts are rejected with the offending
// line, so a single hostile line cannot force a huge allocation.
func ReadParts(r io.Reader, maxVertexID int) ([]int32, error) {
	const absMax = math.MaxInt32 - 1
	if maxVertexID <= 0 || maxVertexID > absMax {
		maxVertexID = absMax
	}
	var parts []int32
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("partition: line %d: want 'vertex part', got %q", lineNo, line)
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		p, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: bad part %q: %v", lineNo, fields[1], err)
		}
		if v < 0 || p < 0 {
			return nil, fmt.Errorf("partition: line %d: negative vertex or part", lineNo)
		}
		if v > maxVertexID {
			return nil, fmt.Errorf("partition: line %d: vertex id %d exceeds limit %d", lineNo, v, maxVertexID)
		}
		for v >= len(parts) {
			grown := make([]int32, max(v+1, 2*len(parts)))
			for i := range grown {
				grown[i] = -1
			}
			copy(grown, parts)
			parts = grown
		}
		parts[v] = int32(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Trim the growth slack: the result length is the highest vertex id + 1.
	last := len(parts) - 1
	for last >= 0 && parts[last] == -1 {
		last--
	}
	return parts[:last+1], nil
}
