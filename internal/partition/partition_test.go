package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdbgp/internal/graph"
)

func twoTriangles() *graph.Graph {
	// Vertices 0,1,2 form a triangle; 3,4,5 form a triangle; bridge 2-3.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	return b.Build()
}

func TestValidate(t *testing.T) {
	a := NewAssignment(3, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	a.Parts[1] = 5
	if err := a.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
	bad := &Assignment{Parts: []int32{0}, K: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected K error")
	}
}

func TestCutAndLocality(t *testing.T) {
	g := twoTriangles()
	a := NewAssignment(6, 2)
	for v := 3; v < 6; v++ {
		a.Parts[v] = 1
	}
	if cut := CutEdges(g, a); cut != 1 {
		t.Fatalf("cut=%d, want 1", cut)
	}
	want := 1 - 1.0/7.0
	if got := EdgeLocality(g, a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("locality=%g, want %g", got, want)
	}
}

func TestEdgeLocalityEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	a := NewAssignment(3, 2)
	if EdgeLocality(g, a) != 1 {
		t.Fatal("edgeless locality should be 1")
	}
}

func TestLoadsAndImbalance(t *testing.T) {
	a := &Assignment{Parts: []int32{0, 0, 1, 1}, K: 2}
	w := []float64{3, 1, 2, 2}
	loads := Loads(a, w)
	if loads[0] != 4 || loads[1] != 4 {
		t.Fatalf("loads=%v", loads)
	}
	if im := Imbalance(a, w); im != 0 {
		t.Fatalf("balanced imbalance=%g", im)
	}
	w2 := []float64{6, 0, 1, 1}
	// loads 6,2; avg 4; max/avg-1 = 0.5
	if im := Imbalance(a, w2); math.Abs(im-0.5) > 1e-12 {
		t.Fatalf("imbalance=%g, want 0.5", im)
	}
}

func TestImbalanceZeroWeights(t *testing.T) {
	a := &Assignment{Parts: []int32{0, 1}, K: 2}
	if im := Imbalance(a, []float64{0, 0}); im != 0 {
		t.Fatalf("zero-weight imbalance=%g", im)
	}
}

func TestMaxImbalance(t *testing.T) {
	a := &Assignment{Parts: []int32{0, 0, 1, 1}, K: 2}
	w1 := []float64{1, 1, 1, 1} // balanced
	w2 := []float64{3, 0, 1, 0} // loads 3,1 → max/avg−1 = 0.5
	if got := MaxImbalance(a, [][]float64{w1, w2}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("max imbalance=%g", got)
	}
}

func TestIsBalanced(t *testing.T) {
	a := &Assignment{Parts: []int32{0, 0, 1, 1}, K: 2}
	w := [][]float64{{1, 1, 1, 1}}
	if !IsBalanced(a, w, 0) {
		t.Fatal("exactly balanced should pass eps=0")
	}
	w2 := [][]float64{{2, 1, 1, 1}} // loads 3,2, avg 2.5: 3 > 1.1*2.5? no (2.75); 3 > 1.05*2.5 yes
	if IsBalanced(a, w2, 0.05) {
		t.Fatal("3 vs 2 should violate eps=0.05")
	}
	if !IsBalanced(a, w2, 0.25) {
		t.Fatal("3 vs 2 within eps=0.25")
	}
}

func TestVertexEdgeImbalance(t *testing.T) {
	g := twoTriangles()
	a := NewAssignment(6, 2)
	for v := 3; v < 6; v++ {
		a.Parts[v] = 1
	}
	if im := VertexImbalance(a); im != 0 {
		t.Fatalf("vertex imbalance=%g", im)
	}
	// Degrees: 2,2,3,3,2,2 — loads 7,7 → balanced.
	if im := EdgeImbalance(g, a); im != 0 {
		t.Fatalf("edge imbalance=%g", im)
	}
	// Skewed assignment: all in part 0 except vertex 5.
	b := NewAssignment(6, 2)
	b.Parts[5] = 1
	if im := VertexImbalance(b); math.Abs(im-(5.0/3.0-1)) > 1e-12 {
		t.Fatalf("skewed vertex imbalance=%g", im)
	}
}

func TestPartSizesMembers(t *testing.T) {
	a := &Assignment{Parts: []int32{1, 0, 1, 1}, K: 2}
	sizes := a.PartSizes()
	if sizes[0] != 1 || sizes[1] != 3 {
		t.Fatalf("sizes=%v", sizes)
	}
	m := a.Members(1)
	if len(m) != 3 || m[0] != 0 || m[1] != 2 || m[2] != 3 {
		t.Fatalf("members=%v", m)
	}
}

func TestLocalEdgeShares(t *testing.T) {
	g := twoTriangles()
	a := NewAssignment(6, 2)
	for v := 3; v < 6; v++ {
		a.Parts[v] = 1
	}
	shares := LocalEdgeShares(g, a)
	// Part 0 stubs: triangle (6) local + 1 cut stub = 6/7.
	if math.Abs(shares[0]-6.0/7.0) > 1e-12 || math.Abs(shares[1]-6.0/7.0) > 1e-12 {
		t.Fatalf("shares=%v", shares)
	}
	// Empty part reports 1.
	b := NewAssignment(6, 3)
	shares = LocalEdgeShares(g, b)
	if shares[2] != 1 {
		t.Fatalf("empty part share=%g", shares[2])
	}
}

// Property: locality == 1 − cut/m and both are invariant to part relabeling.
func TestQuickLocalityCutIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 4
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		if g.M() == 0 {
			return true
		}
		k := rng.Intn(3) + 2
		a := NewAssignment(n, k)
		for v := range a.Parts {
			a.Parts[v] = int32(rng.Intn(k))
		}
		loc := EdgeLocality(g, a)
		cut := CutEdges(g, a)
		if math.Abs(loc-(1-float64(cut)/float64(g.M()))) > 1e-12 {
			return false
		}
		// Relabel parts by a permutation: metrics unchanged.
		perm := rng.Perm(k)
		rel := NewAssignment(n, k)
		for v := range rel.Parts {
			rel.Parts[v] = int32(perm[a.Parts[v]])
		}
		return CutEdges(g, rel) == cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
