package project

import (
	"math"
	"sort"
)

// exact2D computes the exact projection onto B∞ ∩ S¹ ∩ S², following §2.2
// and Appendix A.2 of the paper:
//
//  1. clamp; if both slabs hold the clamp is the projection (λ = 0);
//  2. otherwise enumerate the 3²−1 sign guesses for (λ1, λ2); each guess
//     reduces to an equality-constrained instance (Proposition 2.1);
//  3. single-dimension guesses are 1-D breakpoint sweeps; the two-dimension
//     guess is solved by strip bisection on λ1 (monotone ∆, Theorem A.5)
//     followed by the bottom-to-top region walk of Theorem A.8;
//  4. accept the first KKT-feasible solution (unique by Lemma A.1).
func exact2D(dst, y []float64, con1, con2 Constraint, st *State) error {
	copy(dst, y)
	BoxClamp(dst)
	v1 := con1.Value(dst)
	v2 := con2.Value(dst)
	tol := feasTol(con1, con2)
	if v1 >= con1.Lo-tol && v1 <= con1.Hi+tol && v2 >= con2.Lo-tol && v2 <= con2.Hi+tol {
		if st != nil {
			st.Lambda = append(st.Lambda[:0], 0, 0)
		}
		return nil
	}

	ev := newEval2D(y, con1.W, con2.W)
	guesses := signGuesses2(violSign(v1, con1), violSign(v2, con2))
	for _, g := range guesses {
		if tryGuess2D(dst, y, con1, con2, ev, g[0], g[1], tol, st) {
			return nil
		}
	}
	return ErrInfeasible
}

// feasTol derives an absolute feasibility tolerance from the constraint
// scales.
func feasTol(cons ...Constraint) float64 {
	scale := 1.0
	for _, c := range cons {
		if t := c.TotalWeight(); t > scale {
			scale = t
		}
	}
	return 1e-9 * scale
}

// violSign returns +1/-1/0 according to which slab face v violates.
func violSign(v float64, c Constraint) int {
	if v > c.Hi {
		return +1
	}
	if v < c.Lo {
		return -1
	}
	return 0
}

// signGuesses2 enumerates the sign guesses (s1, s2) ∈ {−1,0,+1}² \ {(0,0)},
// ordered so the guess matching the observed violation directions comes
// first.
func signGuesses2(h1, h2 int) [][2]int {
	all := make([][2]int, 0, 8)
	for _, s1 := range []int{+1, 0, -1} {
		for _, s2 := range []int{+1, 0, -1} {
			if s1 == 0 && s2 == 0 {
				continue
			}
			all = append(all, [2]int{s1, s2})
		}
	}
	dist := func(g [2]int) int {
		d := 0
		if g[0] != h1 {
			d++
		}
		if g[1] != h2 {
			d++
		}
		return d
	}
	sort.SliceStable(all, func(a, b int) bool { return dist(all[a]) < dist(all[b]) })
	return all
}

// faceTarget returns the equality target for an active sign.
func faceTarget(c Constraint, sign int) float64 {
	if sign > 0 {
		return c.Hi
	}
	return c.Lo
}

// signOK verifies the KKT sign condition λ·sign ≥ 0 (within tolerance).
func signOK(lam float64, sign int) bool {
	const lamTol = 1e-7
	if sign > 0 {
		return lam >= -lamTol
	}
	return lam <= lamTol
}

// tryGuess2D attempts one sign guess. On success dst holds the projection
// and the warm-start state is updated.
func tryGuess2D(dst, y []float64, con1, con2 Constraint, ev *eval2D, s1, s2 int, tol float64, st *State) bool {
	switch {
	case s1 != 0 && s2 == 0:
		lam, ok := solveLambda(y, con1.W, faceTarget(con1, s1))
		if !ok || !signOK(lam, s1) {
			return false
		}
		applyLambda1(dst, y, con1.W, lam)
		if !con2.Satisfied(dst, tol) {
			return false
		}
		saveState(st, lam, 0)
		return true
	case s1 == 0 && s2 != 0:
		lam, ok := solveLambda(y, con2.W, faceTarget(con2, s2))
		if !ok || !signOK(lam, s2) {
			return false
		}
		applyLambda1(dst, y, con2.W, lam)
		if !con1.Satisfied(dst, tol) {
			return false
		}
		saveState(st, 0, lam)
		return true
	default:
		c1 := faceTarget(con1, s1)
		c2 := faceTarget(con2, s2)
		lam1, lam2, ok := ev.solveEquality(c1, c2, st)
		if !ok || !signOK(lam1, s1) || !signOK(lam2, s2) {
			return false
		}
		ev.apply(dst, lam1, lam2)
		// The equality solve can be a high-precision fallback rather than a
		// closed-form region solution; verify both equalities actually hold.
		if math.Abs(con1.Value(dst)-c1) > 100*tol || math.Abs(con2.Value(dst)-c2) > 100*tol {
			return false
		}
		saveState(st, lam1, lam2)
		return true
	}
}

func saveState(st *State, l1, l2 float64) {
	if st != nil {
		st.Lambda = append(st.Lambda[:0], l1, l2)
	}
}

// eval2D solves the two-dimensional equality system
//
//	h(1)(λ1,λ2) = c1,  h(2)(λ1,λ2) = c2,
//	h(j)(λ) = Σ_i w(j)_i · clamp(y_i − λ1·w(1)_i − λ2·w(2)_i)
//
// via bisection on λ1 (∆ of Definition A.2 is monotone) plus the region
// walk of Theorem A.8 once the strip is crossing-free.
type eval2D struct {
	y, w1, w2 []float64
	lineIdx   []int32 // coords with w2 > 0: two boundary lines each
	vertIdx   []int32 // coords with w2 = 0, w1 > 0: vertical breakpoints
	yShift    []float64
	totalW1   float64
	totalW2   float64
}

func newEval2D(y, w1, w2 []float64) *eval2D {
	ev := &eval2D{y: y, w1: w1, w2: w2, yShift: make([]float64, len(y))}
	for i := range y {
		switch {
		case w2[i] > 0:
			ev.lineIdx = append(ev.lineIdx, int32(i))
			ev.totalW2 += w2[i]
		case w1[i] > 0:
			ev.vertIdx = append(ev.vertIdx, int32(i))
		}
		ev.totalW1 += w1[i]
	}
	return ev
}

// apply writes x_i = clamp(y_i − λ1·w1_i − λ2·w2_i) into dst.
func (ev *eval2D) apply(dst []float64, lam1, lam2 float64) {
	for i := range ev.y {
		v := ev.y[i] - lam1*ev.w1[i] - lam2*ev.w2[i]
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		dst[i] = v
	}
}

// inner solves h(2)(λ1, λ2) = c2 for λ2 at fixed λ1 (a 1-D sweep on the
// shifted point y − λ1·w1).
func (ev *eval2D) inner(lam1, c2 float64) (float64, bool) {
	for i := range ev.y {
		ev.yShift[i] = ev.y[i] - lam1*ev.w1[i]
	}
	return solveLambda(ev.yShift, ev.w2, c2)
}

// delta evaluates ∆(λ1) = h(1)(λ1, λ2*(λ1)) where λ2* solves the inner
// problem.
func (ev *eval2D) delta(lam1, c2 float64) (float64, float64, bool) {
	lam2, ok := ev.inner(lam1, c2)
	if !ok {
		return 0, 0, false
	}
	h1 := 0.0
	for i := range ev.y {
		v := ev.y[i] - lam1*ev.w1[i] - lam2*ev.w2[i]
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		h1 += ev.w1[i] * v
	}
	return h1, lam2, true
}

// solveEquality finds (λ1, λ2) with h(1) = c1 and h(2) = c2. The returned
// bool is false when the system is infeasible. Warm-start state seeds the
// λ1 bracket.
func (ev *eval2D) solveEquality(c1, c2 float64, st *State) (float64, float64, bool) {
	scale := math.Max(1, math.Max(ev.totalW1, ev.totalW2))
	eps := 1e-12 * scale
	if math.Abs(c1) > ev.totalW1+eps || math.Abs(c2) > ev.totalW2+eps {
		return 0, 0, false
	}

	center := 0.0
	half := 1.0
	if st != nil && len(st.Lambda) >= 1 {
		// Warm start: GD iterates move slowly, so the previous λ1 is close.
		center = st.Lambda[0]
		half = 0.125 * (1 + math.Abs(center))
	}
	var lo, hi, dLo, dHi float64
	bracketed := false
	for try := 0; try < 70; try++ {
		lo, hi = center-half, center+half
		var ok1, ok2 bool
		dLo, _, ok1 = ev.delta(lo, c2)
		dHi, _, ok2 = ev.delta(hi, c2)
		if !ok1 || !ok2 {
			return 0, 0, false
		}
		if math.Min(dLo, dHi)-eps <= c1 && c1 <= math.Max(dLo, dHi)+eps {
			bracketed = true
			break
		}
		half *= 4
	}
	if !bracketed {
		// ∆ may be constant (e.g. proportional weight functions): accept if
		// it already matches, otherwise infeasible.
		if math.Abs(dLo-c1) <= 1e-7*scale {
			lam2, ok := ev.inner(center, c2)
			return center, lam2, ok
		}
		return 0, 0, false
	}
	increasing := dHi >= dLo

	// Root-find ∆(λ1) = c1 with the Illinois (modified regula falsi)
	// method: ∆ is monotone piecewise linear, so the secant step converges
	// in a handful of evaluations where plain bisection needs ~60 O(n log n)
	// sweeps; bisection remains the safeguard when the secant step stalls.
	fLo, fHi := dLo-c1, dHi-c1
	if !increasing {
		fLo, fHi = -fLo, -fHi
	}
	tolF := 1e-13 * scale
	for it := 0; it < 100; it++ {
		if hi-lo < 1e-15*(1+math.Abs(lo)+math.Abs(hi)) {
			break
		}
		var next float64
		if fHi != fLo {
			next = hi - fHi*(hi-lo)/(fHi-fLo)
		}
		if fHi == fLo || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if next == lo || next == hi {
			break
		}
		dNext, _, ok := ev.delta(next, c2)
		if !ok {
			return 0, 0, false
		}
		fNext := dNext - c1
		if !increasing {
			fNext = -fNext
		}
		if math.Abs(fNext) <= tolF {
			// The inner solve already enforces h(2) = c2 exactly; h(1) is
			// within tolerance, so (next, λ2(next)) is the projection point.
			lam2, ok := ev.inner(next, c2)
			return next, lam2, ok
		}
		if fNext < 0 {
			lo, fLo = next, fNext
			fHi /= 2 // Illinois: damp the retained endpoint
		} else {
			hi, fHi = next, fNext
			fLo /= 2
		}
		// Attempt the exact region walk once the strip is narrow; for big
		// instances the walk itself costs a sort, so gate it.
		if it >= 6 && it%6 == 0 {
			if l1, l2, ok := ev.regionWalk(lo, hi, c1, c2); ok {
				return l1, l2, true
			}
		}
	}
	if l1, l2, ok := ev.regionWalk(lo, hi, c1, c2); ok {
		return l1, l2, true
	}
	// Fallback: the interval has collapsed to float precision; the midpoint
	// with its inner solve is the projection up to ~1e-13 relative.
	mid := (lo + hi) / 2
	lam2, ok := ev.inner(mid, c2)
	return mid, lam2, ok
}

// regionWalk implements Theorem A.8: when the strip (lo1, hi1) contains no
// boundary-line intersections, the plane restricted to the strip is
// partitioned by the lines into O(n) regions inside which both h(j) are
// linear; walking the regions bottom-to-top with O(1) coefficient updates
// finds the exact (λ1, λ2) if it lies in the strip.
func (ev *eval2D) regionWalk(lo1, hi1, c1, c2 float64) (float64, float64, bool) {
	y, w1, w2 := ev.y, ev.w1, ev.w2
	// Vertical breakpoints (w2 = 0 coords) must not cross the strip,
	// otherwise classification is not constant in it.
	for _, i := range ev.vertIdx {
		b1 := (y[i] - 1) / w1[i]
		b2 := (y[i] + 1) / w1[i]
		if (b1 > lo1 && b1 < hi1) || (b2 > lo1 && b2 < hi1) {
			return 0, 0, false
		}
	}

	k := 2 * len(ev.lineIdx)
	coord := make([]int32, k)
	upper := make([]bool, k)
	valLo := make([]float64, k)
	valHi := make([]float64, k)
	for li, i := range ev.lineIdx {
		for b := 0; b < 2; b++ {
			j := 2*li + b
			t := y[i] - 1
			if b == 1 {
				t = y[i] + 1
			}
			coord[j] = i
			upper[j] = b == 1
			valLo[j] = (t - lo1*w1[i]) / w2[i]
			valHi[j] = (t - hi1*w1[i]) / w2[i]
		}
	}
	order := make([]int, k)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		return valLo[order[a]]+valHi[order[a]] < valLo[order[b]]+valHi[order[b]]
	})
	// Crossing-free check: the order by λ2 must agree at both strip borders.
	for j := 1; j < k; j++ {
		a, b := order[j-1], order[j]
		if valLo[a] > valLo[b]+1e-15 || valHi[a] > valHi[b]+1e-15 {
			return 0, 0, false
		}
	}

	mid := (lo1 + hi1) / 2
	// Accumulators: cs = clamped contributions, P/Q = linear coefficients of
	// the middle set: h(j) = cs_j + P_j − Q_j1·λ1 − Q_j2·λ2.
	var cs1, cs2, p1, p2, q11, q12, q22 float64
	for _, i := range ev.lineIdx {
		cs1 += w1[i] // bottom region: σ → −∞ ⇒ x_i = +1
		cs2 += w2[i]
	}
	for _, i := range ev.vertIdx {
		sigma := mid * w1[i]
		switch {
		case sigma < y[i]-1:
			cs1 += w1[i]
		case sigma > y[i]+1:
			cs1 -= w1[i]
		default:
			p1 += w1[i] * y[i]
			q11 += w1[i] * w1[i]
		}
	}

	lineValAt := func(j int, lam1 float64) float64 {
		i := coord[j]
		t := y[i] - 1
		if upper[j] {
			t = y[i] + 1
		}
		return (t - lam1*w1[i]) / w2[i]
	}
	lamTol := 1e-9 * math.Max(1, math.Abs(lo1)+math.Abs(hi1))

	trySolve := func(low, high int) (float64, float64, bool) {
		det := q11*q22 - q12*q12
		if math.Abs(det) < 1e-30 {
			return 0, 0, false
		}
		r1 := cs1 + p1 - c1
		r2 := cs2 + p2 - c2
		l1 := (r1*q22 - r2*q12) / det
		l2 := (q11*r2 - q12*r1) / det
		if l1 < lo1-lamTol || l1 > hi1+lamTol {
			return 0, 0, false
		}
		if low >= 0 {
			b := lineValAt(order[low], l1)
			if l2 < b-1e-9*math.Max(1, math.Abs(b)) {
				return 0, 0, false
			}
		}
		if high < k {
			b := lineValAt(order[high], l1)
			if l2 > b+1e-9*math.Max(1, math.Abs(b)) {
				return 0, 0, false
			}
		}
		return l1, l2, true
	}

	for t := 0; t <= k; t++ {
		if l1, l2, ok := trySolve(t-1, t); ok {
			return l1, l2, true
		}
		if t == k {
			break
		}
		// Cross line order[t] from below: its coordinate moves to the next
		// clamp case.
		j := order[t]
		i := coord[j]
		if !upper[j] {
			// +1 → middle
			cs1 -= w1[i]
			cs2 -= w2[i]
			p1 += w1[i] * y[i]
			p2 += w2[i] * y[i]
			q11 += w1[i] * w1[i]
			q12 += w1[i] * w2[i]
			q22 += w2[i] * w2[i]
		} else {
			// middle → −1
			p1 -= w1[i] * y[i]
			p2 -= w2[i] * y[i]
			q11 -= w1[i] * w1[i]
			q12 -= w1[i] * w2[i]
			q22 -= w2[i] * w2[i]
			cs1 -= w1[i]
			cs2 -= w2[i]
		}
	}
	return 0, 0, false
}
