package project

// FuzzProject checks the invariants every projection method must keep on
// randomized instances:
//
//  1. the output always lies in the cube B∞ (within tolerance);
//  2. Workers=1 and Workers=3 agree bit-for-bit (at fuzz sizes n ≤ 64 both
//     take the single-chunk path, so this only guards the Options plumbing;
//     the multi-chunk parallel machinery is covered by
//     TestProjectDeterministicAcrossWorkersMultiChunk below);
//  3. the exact method (d ≤ 2) lands inside every slab when it reports
//     success, and is idempotent (projecting its output is a no-op);
//  4. no NaN/Inf coordinates ever appear.

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzInstance derives a deterministic instance from the fuzz inputs.
func fuzzInstance(seed int64, n, d int, centerFrac, widthFrac float64) ([]float64, []Constraint) {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64() * 1.5
	}
	if centerFrac < -1 {
		centerFrac = -1
	} else if centerFrac > 1 {
		centerFrac = 1
	}
	if widthFrac < 0 {
		widthFrac = -widthFrac
	}
	if widthFrac > 0.5 || math.IsNaN(widthFrac) {
		widthFrac = 0.05
	}
	if math.IsNaN(centerFrac) {
		centerFrac = 0
	}
	cons := make([]Constraint, d)
	for j := range cons {
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = rng.Float64()*2 + 0.01
			total += w[i]
		}
		center := centerFrac * total * 0.5
		half := widthFrac * total
		cons[j] = Constraint{W: w, Lo: center - half, Hi: center + half}
	}
	return y, cons
}

func checkBoxAndFinite(t *testing.T, label string, x []float64) {
	t.Helper()
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: coordinate %d is %v", label, i, v)
		}
		if v > 1+1e-9 || v < -1-1e-9 {
			t.Fatalf("%s: coordinate %d = %v outside the cube", label, i, v)
		}
	}
}

func FuzzProject(f *testing.F) {
	f.Add(int64(1), 8, 1, 0.0, 0.05)
	f.Add(int64(2), 40, 2, 0.3, 0.1)
	f.Add(int64(3), 64, 3, -0.5, 0.02)
	f.Add(int64(4), 5, 2, 0.9, 0.0)
	f.Add(int64(5), 33, 1, -1.0, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, n, d int, centerFrac, widthFrac float64) {
		n = 1 + abs(n)%64
		d = 1 + abs(d)%3
		y, cons := fuzzInstance(seed, n, d, centerFrac, widthFrac)
		tol := 1e-6 * (1 + cons[0].TotalWeight())

		for _, m := range []Method{AlternatingOneShot, Alternating, DykstraMethod, Exact, Nested} {
			for _, center := range []bool{false, true} {
				if center && m != AlternatingOneShot && m != Alternating {
					continue
				}
				opt := Options{Method: m, Center: center, Workers: 1}
				dst := make([]float64, n)
				err := Project(dst, y, cons, opt, nil)

				// Worker determinism: the parallel path must be
				// bit-identical to the serial one.
				optP := opt
				optP.Workers = 3
				dstP := make([]float64, n)
				errP := Project(dstP, y, cons, optP, nil)
				if (err == nil) != (errP == nil) {
					t.Fatalf("%v: err %v with 1 worker, %v with 3", m, err, errP)
				}
				if err != nil {
					continue // infeasible instance: nothing more to check
				}
				for i := range dst {
					if dst[i] != dstP[i] {
						t.Fatalf("%v center=%v: output[%d] differs across workers: %v vs %v",
							m, center, i, dst[i], dstP[i])
					}
				}
				checkBoxAndFinite(t, m.String(), dst)

				// The exact method guarantees feasibility and idempotence
				// for d ≤ 2 (d > 2 delegates to tight-tolerance Dykstra,
				// which only approximates).
				if m == Exact && d <= 2 {
					for j, c := range cons {
						if !c.Satisfied(dst, tol) {
							t.Fatalf("exact: constraint %d violated: value %v not in [%v, %v]",
								j, c.Value(dst), c.Lo, c.Hi)
						}
					}
					again := make([]float64, n)
					if err := Project(again, dst, cons, opt, nil); err != nil {
						t.Fatalf("exact: re-projection failed: %v", err)
					}
					for i := range again {
						if math.Abs(again[i]-dst[i]) > 1e-7 {
							t.Fatalf("exact not idempotent at %d: %v -> %v", i, dst[i], again[i])
						}
					}
				}
			}
		}
	})
}

// The fuzzer keeps n small for throughput, which stays below vecmath's
// 4096-element chunk size; this companion test runs every method on a
// multi-chunk instance so the parallel reduction machinery itself is
// exercised and must stay bit-identical across worker counts.
func TestProjectDeterministicAcrossWorkersMultiChunk(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		y, cons := fuzzInstance(17, 12000, d, 0.2, 0.03)
		for _, m := range []Method{AlternatingOneShot, Alternating, DykstraMethod, Exact} {
			ref := make([]float64, len(y))
			if err := Project(ref, y, cons, Options{Method: m, Center: true, Workers: 1}, nil); err != nil {
				t.Fatalf("d=%d %v workers=1: %v", d, m, err)
			}
			for _, w := range []int{2, 4, 8} {
				got := make([]float64, len(y))
				if err := Project(got, y, cons, Options{Method: m, Center: true, Workers: w}, nil); err != nil {
					t.Fatalf("d=%d %v workers=%d: %v", d, m, w, err)
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("d=%d %v workers=%d: output[%d] = %v, want %v (not bit-identical)",
							d, m, w, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		if v == math.MinInt {
			return 0
		}
		return -v
	}
	return v
}
